package hyperhammer_test

import (
	"errors"
	"testing"

	"hyperhammer"
)

// smallHost builds a 512 MiB S1-flavoured host for fast API tests.
func smallHost(t *testing.T, seed uint64) *hyperhammer.Host {
	t.Helper()
	geo, err := hyperhammer.NewGeometry(hyperhammer.Geometry{
		Name:      "api-test-512M",
		Size:      512 * hyperhammer.MiB,
		BankMasks: hyperhammer.S1BankFunction(),
		RowShift:  18,
		RowBits:   11,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := hyperhammer.S1(seed)
	cfg.Geometry = geo
	cfg.BootNoisePages = 500
	host, err := hyperhammer.NewHost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return host
}

func TestPublicAPIPipeline(t *testing.T) {
	host := smallHost(t, 9)
	vm, err := host.CreateVM(hyperhammer.VMConfig{
		MemSize: 384 * hyperhammer.MiB, VFIOGroups: 1, BootSplits: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	gos := hyperhammer.BootGuest(vm)

	cfg := hyperhammer.DefaultAttackConfig(hyperhammer.S1BankFunction())
	cfg.HostMemBits = 29
	cfg.IOVAMappings = 1500
	cfg.TargetBits = 2
	// A dense fault model would live on the host config; the standard
	// S1 model at 512 MiB still yields a handful of bits.
	prof, err := hyperhammer.Profile(gos, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Total < 0 || prof.HammerOps == 0 {
		t.Fatalf("profile: %+v", prof)
	}
	victims := prof.ExploitableBits(0)
	if len(victims) == 0 {
		t.Skip("no usable bits at this scale/seed; pipeline exercised through Profile")
	}
	steer, err := hyperhammer.PageSteer(gos, cfg, prof.Buffer, victims)
	if err != nil {
		t.Fatal(err)
	}
	expl, err := hyperhammer.Exploit(gos, cfg, prof.Buffer, steer)
	if err != nil {
		t.Fatal(err)
	}
	_ = expl.Success() // either outcome is legitimate for one attempt
}

func TestPublicAPIQuarantine(t *testing.T) {
	guard, stats := hyperhammer.Quarantine()
	geo, _ := hyperhammer.NewGeometry(hyperhammer.Geometry{
		Name: "api-test-512M", Size: 512 * hyperhammer.MiB,
		BankMasks: hyperhammer.S1BankFunction(), RowShift: 18, RowBits: 11,
	})
	cfg := hyperhammer.S1(3)
	cfg.Geometry = geo
	cfg.BootNoisePages = 300
	cfg.Quarantine = guard
	host, err := hyperhammer.NewHost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := host.CreateVM(hyperhammer.VMConfig{MemSize: 192 * hyperhammer.MiB, VFIOGroups: 1})
	if err != nil {
		t.Fatal(err)
	}
	gos := hyperhammer.BootGuest(vm)
	gos.InstallAttackDriver()
	base, err := gos.AllocHuge(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := gos.ReleaseHugepage(base); !errors.Is(err, hyperhammer.ErrNACK) {
		t.Errorf("quarantined release: %v", err)
	}
	if stats.Blocked == 0 {
		t.Error("no blocked decisions recorded")
	}
}

func TestPublicAPIAnalysis(t *testing.T) {
	bound := hyperhammer.SuccessBound(13*hyperhammer.GiB, 16*hyperhammer.GiB)
	attempts := hyperhammer.ExpectedAttempts(13*hyperhammer.GiB, 16*hyperhammer.GiB)
	if bound <= 0 || attempts < 600 || attempts > 660 {
		t.Errorf("bound=%v attempts=%v", bound, attempts)
	}
}

func TestPublicAPIDRAMDig(t *testing.T) {
	cfg := hyperhammer.S1(1)
	res, err := hyperhammer.RecoverBankFunction(cfg.Geometry, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Banks != 32 || !res.AllBitsBelow(22) {
		t.Errorf("recovery: %+v", res)
	}
}

func TestPublicAPIXenHeap(t *testing.T) {
	heap := hyperhammer.XenHeap(0, 65536)
	dom, err := heap.CreateDomain(64 * hyperhammer.MiB)
	if err != nil {
		t.Fatal(err)
	}
	released, reused, err := dom.SteeringReuse([]hyperhammer.GPA{2 * hyperhammer.MiB}, 512)
	if err != nil {
		t.Fatal(err)
	}
	if released != 512 || reused == 0 {
		t.Errorf("xen steering: released=%d reused=%d", released, reused)
	}
}

func TestPublicAPIHammerPattern(t *testing.T) {
	host := smallHost(t, 5)
	vm, err := host.CreateVM(hyperhammer.VMConfig{MemSize: 256 * hyperhammer.MiB, VFIOGroups: 1})
	if err != nil {
		t.Fatal(err)
	}
	gos := hyperhammer.BootGuest(vm)
	best, err := hyperhammer.FindHammerPattern(gos, hyperhammer.S1BankFunction())
	if err != nil {
		t.Fatal(err)
	}
	if len(best.Pattern.RowOffsets) == 0 {
		t.Error("no pattern found")
	}
}
