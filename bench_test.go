// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the Section 6 analyses and the DESIGN.md ablations.
// Each benchmark runs the corresponding experiment end to end on the
// simulated machines and reports the headline quantities as custom
// metrics, logging the fully rendered table on the first iteration.
//
//	go test -bench=. -benchmem            # full paper scale
//	go test -bench=. -benchmem -short     # reduced 4 GiB scale
//
// The durations these benchmarks report are *host CPU* costs of the
// simulation; the paper's wall-clock quantities (profiling hours,
// minutes per attempt) are simulated time and appear in the logged
// tables and metrics.
package hyperhammer_test

import (
	"os"
	"strconv"
	"strings"
	"testing"

	"hyperhammer/experiments"
)

func benchOpts(b *testing.B) experiments.Options {
	o := experiments.DefaultOptions()
	o.Short = testing.Short()
	// HH_PARALLEL sets the experiment worker-pool size, like the CLIs'
	// -parallel flag (0/unset = GOMAXPROCS, 1 = sequential). Results
	// are identical at any setting; only wall clock changes.
	if v := os.Getenv("HH_PARALLEL"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			b.Fatalf("bad HH_PARALLEL %q: %v", v, err)
		}
		o.Parallel = n
	}
	return o
}

// BenchmarkTable1MemoryProfiling reproduces Table 1: profile the
// attacker VM's memory on S1 and S2.
func BenchmarkTable1MemoryProfiling(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table().String())
			for _, row := range res.Rows {
				pfx := row.System.String() + "-"
				b.ReportMetric(float64(row.Total), pfx+"total-flips")
				b.ReportMetric(float64(row.Stable), pfx+"stable")
				b.ReportMetric(float64(row.Exploitable), pfx+"exploitable")
				b.ReportMetric(row.Time.Hours(), pfx+"profile-hours")
			}
		}
	}
}

// BenchmarkTable2PageSteering reproduces Table 2: released pages
// reused by EPTs across the (S, B) grid on S1, S2 and S3.
func BenchmarkTable2PageSteering(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table().String())
			// Headline: best and worst R_E per system.
			first, last := res.Rows[0], res.Rows[4]
			b.ReportMetric(100*first.RE(), "S1-RE-smallspray-%")
			b.ReportMetric(100*last.RN(), "S1-RN-fewblocks-%")
		}
	}
}

// BenchmarkTable3AttackCost reproduces Table 3: repeated attack
// attempts to first verified escape on S1 and S2. The heavyweight
// benchmark — a full campaign per system.
func BenchmarkTable3AttackCost(b *testing.B) {
	o := benchOpts(b)
	if o.MaxAttempts == 0 && !o.Short {
		o.MaxAttempts = 800
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table().String())
			for _, row := range res.Rows {
				pfx := row.System.String() + "-"
				b.ReportMetric(row.AvgAttempt.Minutes(), pfx+"attempt-minutes")
				b.ReportMetric(float64(row.AttemptsToFirstSuccess), pfx+"attempts-to-escape")
			}
		}
	}
}

// BenchmarkFigure3aNoisePages reproduces Figure 3(a): the noise-page
// traces of the plain-KVM hosts S1 and S2 during vIOMMU exhaustion.
func BenchmarkFigure3aNoisePages(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Figure().Summary())
			b.ReportMetric(res.DropBelow(experiments.SystemS1, 1024), "S1-secs-below-1024")
			b.ReportMetric(res.DropBelow(experiments.SystemS2, 1024), "S2-secs-below-1024")
		}
	}
}

// BenchmarkFigure3bNoisePagesS3 reproduces Figure 3(b): the same trace
// on the OpenStack host S3, which starts with far more noise pages.
func BenchmarkFigure3bNoisePagesS3(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range res.Series {
				if s.System == experiments.SystemS3 {
					b.ReportMetric(float64(s.Points[0].NoisePages), "S3-initial-noise")
				}
			}
			b.ReportMetric(res.DropBelow(experiments.SystemS3, 1024), "S3-secs-below-1024")
		}
	}
}

// BenchmarkAnalysisSuccessProbability reproduces the Section 5.3.1
// bound and its Monte-Carlo cross-check.
func BenchmarkAnalysisSuccessProbability(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		res := experiments.Analysis(o, nil)
		if i == 0 {
			b.ReportMetric(1/res.Bound, "expected-attempts")
			b.ReportMetric(res.MonteCarlo*1e6, "montecarlo-ppm")
		}
	}
}

// BenchmarkAnalysisEndToEndTime reproduces the Section 5.3.3 estimate
// (192 days on S1, 137 on S2 with the paper's Table 1 inputs).
func BenchmarkAnalysisEndToEndTime(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		res := experiments.Analysis(o, nil)
		if i == 0 {
			b.Log("\n" + res.Table().String())
			for _, row := range res.EndToEnd {
				b.ReportMetric(row.ExpectedTotal.Hours()/24, row.System.String()+"-days")
			}
		}
	}
}

// BenchmarkAnalysisVMSizeSweep reproduces the Section 5.3.1
// sensitivity analysis: attack prospects versus attacker VM size.
func BenchmarkAnalysisVMSizeSweep(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		res := experiments.VMSize(o)
		if i == 0 {
			b.Log("\n" + res.Table().String())
			b.ReportMetric(res.Rows[0].ExpectedDays, "smallest-vm-days")
			b.ReportMetric(res.Rows[len(res.Rows)-1].ExpectedDays, "13GiB-days")
		}
	}
}

// BenchmarkDRAMDigRecovery reproduces the Section 5.1 bank-function
// recovery on both processors.
func BenchmarkDRAMDigRecovery(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.DRAMDig(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table().String())
			b.ReportMetric(float64(res.Rows[0].Probes), "S1-probes")
		}
	}
}

// BenchmarkMitigationQuarantine evaluates the Section 6 quarantine
// countermeasure.
func BenchmarkMitigationQuarantine(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Mitigation(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table().String())
			b.ReportMetric(float64(res.StockReleased), "stock-releases")
			b.ReportMetric(float64(res.QuarantinedReleased), "quarantined-releases")
		}
	}
}

// BenchmarkXenLiteSteering runs the Section 6 Xen comparison.
func BenchmarkXenLiteSteering(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Xen(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table().String())
			b.ReportMetric(100*res.XenRE(), "xen-reuse-%")
			b.ReportMetric(100*res.KVMRE(), "kvm-noexhaust-reuse-%")
		}
	}
}

// BenchmarkBalloonSteering runs the Section 6 virtio-balloon
// feasibility analysis.
func BenchmarkBalloonSteering(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Balloon(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table().String())
			for _, row := range res.Rows {
				// ReportMetric units must not contain whitespace.
				unit := strings.NewReplacer(" ", "-", "(", "", ")", "").Replace(row.Path)
				b.ReportMetric(100*row.RN(), unit+"-RN-%")
			}
		}
	}
}

// BenchmarkMitigationTRR evaluates in-DRAM Target Row Refresh against
// the paper's single-sided pattern and a TRRespass many-sided one.
func BenchmarkMitigationTRR(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.TRR(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table().String())
			for _, row := range res.Rows {
				if row.DIMM == "TRR (4 slots)" {
					b.ReportMetric(float64(row.Flips), "trr-"+row.Pattern+"-flips")
				}
			}
		}
	}
}

// BenchmarkMitigationECC evaluates SECDED ECC against profiling.
func BenchmarkMitigationECC(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.ECC(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table().String())
			b.ReportMetric(float64(res.FlipsNonECC), "flips-non-ecc")
			b.ReportMetric(float64(res.FlipsECC), "flips-ecc")
			b.ReportMetric(float64(res.Corrected), "ecc-corrected")
		}
	}
}

// BenchmarkMultihitTradeoff measures the iTLB-Multihit DoS versus the
// hugepage splits the countermeasure hands to HyperHammer.
func BenchmarkMultihitTradeoff(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Multihit(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table().String())
			b.ReportMetric(float64(res.SplitsWithMitigation), "splits-with-nx")
			b.ReportMetric(boolMetric(res.DoSWithoutMitigation), "dos-without-nx")
		}
	}
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// BenchmarkAblationHammerSidedness quantifies why the attack is
// single-sided.
func BenchmarkAblationHammerSidedness(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationSidedness(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table().String())
			b.ReportMetric(float64(res.SingleSidedUsable), "single-sided-usable")
			b.ReportMetric(float64(res.DoubleSidedUsable), "double-sided-usable")
		}
	}
}

// BenchmarkAblationNoExhaust compares steering with and without the
// exhaustion step.
func BenchmarkAblationNoExhaust(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationNoExhaust(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table().String())
			b.ReportMetric(100*res.WithExhaust.RN(), "with-exhaust-RN-%")
			b.ReportMetric(100*res.WithoutExhaust.RN(), "without-exhaust-RN-%")
		}
	}
}

// BenchmarkAblationSpraySize sweeps the spray budget around the
// 512*(N+2) rule.
func BenchmarkAblationSpraySize(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationSpraySize(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table().String())
			b.ReportMetric(100*res.Rows[len(res.Rows)-1].RN(), "full-spray-RN-%")
		}
	}
}

// BenchmarkAblationTHP compares profiling with and without host THP.
func BenchmarkAblationTHP(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationTHP(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table().String())
			b.ReportMetric(float64(res.FlipsWithTHP), "flips-thp")
			b.ReportMetric(float64(res.FlipsWithoutTHP), "flips-no-thp")
		}
	}
}

// BenchmarkAblationPCPNoise compares the exact and padded spray
// budgets.
func BenchmarkAblationPCPNoise(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationPCPNoise(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Table().String())
			b.ReportMetric(float64(res.ExactSpray.Reused), "exact-reused")
			b.ReportMetric(float64(res.HeadroomSpray.Reused), "headroom-reused")
		}
	}
}
