# Convenience targets for the HyperHammer reproduction.

GO ?= go

.PHONY: all build test test-short test-race vet lint bench bench-short bench-verify tables demo fuzz profile-gate parallel-gate history-gate hotpath-gate ledger-gate clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. staticcheck is optional locally (offline
# containers can't fetch it); CI installs it and fails on findings.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, ran go vet only"; \
		echo "lint: install with: go install honnef.co/go/tools/cmd/staticcheck@latest"; \
	fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass; the trace and metrics packages have dedicated
# concurrency tests.
test-race:
	$(GO) test -race ./...

# Every table/figure experiment as benchmarks, full paper scale.
# Table 3 runs two complete attack campaigns and dominates the time.
# The raw log is kept and also parsed into a machine-readable
# BENCH_*.json (names, iteration counts, ns/op, allocations, and the
# custom sim-time metrics reported via b.ReportMetric). Both
# bench_output.txt and BENCH_full.json are committed; commit the
# refreshed pair together so bench-verify stays green.
bench:
	$(GO) test -bench=. -benchmem ./... > bench_output.txt || { cat bench_output.txt; exit 1; }
	cat bench_output.txt
	$(GO) run ./cmd/hh-benchjson -o BENCH_full.json bench_output.txt

# Staleness gate for the committed benchmark document: BENCH_full.json
# must be exactly what hh-benchjson derives from the committed
# bench_output.txt (the generatedAt timestamp aside). On FAIL: run
# `make bench` and commit both files together.
bench-verify:
	$(GO) run ./cmd/hh-benchjson -o BENCH_check.json bench_output.txt
	@grep -v '"generatedAt"' BENCH_full.json > BENCH_full.stripped
	@grep -v '"generatedAt"' BENCH_check.json > BENCH_check.stripped
	@cmp BENCH_full.stripped BENCH_check.stripped || { \
		echo "bench-verify: BENCH_full.json is stale vs bench_output.txt; run 'make bench' and commit both"; \
		rm -f BENCH_check.json BENCH_full.stripped BENCH_check.stripped; exit 1; }
	@rm -f BENCH_check.json BENCH_full.stripped BENCH_check.stripped
	@echo "bench-verify: BENCH_full.json matches bench_output.txt"

bench-short:
	$(GO) test -bench=. -benchmem -short ./... > bench_output.txt || { cat bench_output.txt; exit 1; }
	cat bench_output.txt
	$(GO) run ./cmd/hh-benchjson -o BENCH_short.json bench_output.txt

# Regenerate the paper's evaluation artifacts as text.
tables:
	$(GO) run ./cmd/hh-tables -all

# The end-to-end attack demo at reduced scale.
demo:
	$(GO) run ./cmd/hyperhammer -short

# Regression gate: record a short deterministic run's artifact and
# compare it against the committed baseline with hh-diff. Simulated
# figures are seed-deterministic, so the tolerances below are already
# generous; a FAIL means behavior changed — either fix the regression
# or regenerate the baseline (same command as below with the output
# path pointed at testdata/baselines/short-seed4.json) and review the
# diff. The campaign's own exit status is ignored: 2 attempts rarely
# escape, and the artifact is written on every exit path.
profile-gate: build
	$(GO) run ./cmd/hyperhammer -short -attempts 2 -artifact run_artifact.json > /dev/null; test -s run_artifact.json
	$(GO) run ./cmd/hh-diff -sim-tol 0.05 -count-tol 0.05 testdata/baselines/short-seed4.json run_artifact.json

# Parallel-determinism gate: the full short evaluation run twice, at
# -parallel 1 and -parallel 4, must produce byte-identical stdout and
# trace streams and a zero-tolerance hh-diff match on the artifact.
# The plan section (host-cost schedule) is the one sanctioned
# exception: hh-diff compares its shape exactly but its host timings
# loosely, and the Chrome trace rides along without perturbing any
# deterministic stream.
parallel-gate:
	$(GO) build -o bin/ ./cmd/hh-tables ./cmd/hh-diff ./cmd/hh-plan
	bin/hh-tables -short -all -parallel 1 -trace seq.trace -artifact seq.json > seq.txt
	bin/hh-tables -short -all -parallel 4 -trace par.trace -artifact par.json -chrome-trace par_chrome.json > par.txt
	diff seq.txt par.txt
	cmp seq.trace par.trace
	bin/hh-diff seq.json par.json
	grep -q '"criticalPath"' par.json
	bin/hh-plan -artifact par.json > /dev/null
	rm -f seq.trace par.trace seq.json par.json seq.txt par.txt par_chrome.json

# Run-history gate: two identical short runs ingested into a fresh
# store must trend with zero simulated-figure drift (hh-trend exit 0);
# a third run with a different hammer budget must be flagged (exit 1),
# attributed to that run, and classified as config drift. The
# campaigns' own exit statuses are ignored (2 attempts rarely escape;
# the artifact is ingested on every exit path).
history-gate:
	$(GO) build -o bin/ ./cmd/hyperhammer ./cmd/hh-trend ./cmd/hh-inspect
	rm -rf history_store
	bin/hyperhammer -short -attempts 2 -store history_store > /dev/null || true
	bin/hyperhammer -short -attempts 2 -store history_store > /dev/null || true
	bin/hh-trend -store history_store
	bin/hyperhammer -short -attempts 2 -hammer-rounds 400000 -store history_store > /dev/null || true
	if bin/hh-trend -store history_store > history_drift.txt; then \
		echo "history-gate: hh-trend failed to flag the perturbed run"; cat history_drift.txt; exit 1; fi
	grep -q 'DRIFT (config)' history_drift.txt
	grep -q '000003-' history_drift.txt
	bin/hh-inspect history history_store > /dev/null
	rm -rf history_store history_drift.txt
	@echo "history-gate: determinism held across identical runs; drift attributed"

# Hammer hot-path gate: re-run the dram hammer microbenchmarks and
# the Table 3 campaign benchmark, then check with hh-hotpath that the
# batched steady-state hammer path still reports 0 allocs/op and that
# the end-to-end attack cost has not regressed more than 25% against
# the committed bench_output.txt (same tolerance rule as hh-trend's
# -bench-tol). On a legitimate speedup or workload change, run
# `make bench` and commit the refreshed log pair.
hotpath-gate:
	$(GO) test -run xxx -bench 'BenchmarkHammer(Op|Batch|TRRAudit)$$' -benchmem -benchtime 20000x ./internal/dram/ > hotpath_bench.txt || { cat hotpath_bench.txt; exit 1; }
	$(GO) test -run xxx -bench 'BenchmarkTable3AttackCost$$' -benchmem -benchtime 1x . >> hotpath_bench.txt || { cat hotpath_bench.txt; exit 1; }
	$(GO) run ./cmd/hh-hotpath -committed bench_output.txt -fresh hotpath_bench.txt \
		-zero-alloc BenchmarkHammerOp,BenchmarkHammerBatch -compare BenchmarkTable3AttackCost -bench-tol 0.25
	rm -f hotpath_bench.txt

# Determinism-ledger gate: the short matrix run twice with the ledger
# on must produce identical fingerprint trails (hh-bisect exit 0, and
# hh-diff holds the ledger section at zero tolerance); a campaign with
# a perturbed hammer budget must be flagged (hh-bisect exit 1) and
# localized to the expected stream and epoch — the drift first touches
# the DRAM row-activation stream in the first hammering epoch. The
# campaigns' own exit statuses are ignored (2 attempts rarely escape;
# the artifact is written on every exit path).
ledger-gate:
	$(GO) build -o bin/ ./cmd/hh-tables ./cmd/hyperhammer ./cmd/hh-bisect ./cmd/hh-diff
	bin/hh-tables -short -all -parallel 4 -ledger-epoch 250ms -artifact led_a.json > /dev/null
	bin/hh-tables -short -all -parallel 4 -ledger-epoch 250ms -artifact led_b.json > /dev/null
	bin/hh-bisect led_a.json led_b.json
	bin/hh-diff led_a.json led_b.json
	bin/hyperhammer -short -attempts 2 -ledger-epoch 100ms -artifact led_c.json > /dev/null || true
	bin/hyperhammer -short -attempts 2 -ledger-epoch 100ms -hammer-rounds 400000 -artifact led_d.json > /dev/null || true
	if bin/hh-bisect led_c.json led_d.json > ledger_drift.txt; then \
		echo "ledger-gate: hh-bisect failed to flag the perturbed run"; cat ledger_drift.txt; exit 1; fi
	grep -q 'dram\.row diverged first' ledger_drift.txt
	grep -q ', epoch 1$$' ledger_drift.txt
	rm -f led_a.json led_b.json led_c.json led_d.json ledger_drift.txt
	@echo "ledger-gate: ledgers identical across same-seed runs; drift localized"

# Brief fuzzing pass over the fuzz targets.
fuzz:
	$(GO) test -fuzz=FuzzAllocFreeSequence -fuzztime=20s ./internal/buddy/
	$(GO) test -fuzz=FuzzEntryRoundTrip -fuzztime=10s ./internal/ept/
	$(GO) test -fuzz=FuzzTranslateRobustness -fuzztime=20s ./internal/ept/
	$(GO) test -fuzz=FuzzDeviceProtocol -fuzztime=20s ./internal/virtio/

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt BENCH_short.json run_artifact.json hotpath_bench.txt
