# Convenience targets for the HyperHammer reproduction.

GO ?= go

.PHONY: all build test test-short test-race vet bench bench-short tables demo fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass; the trace and metrics packages have dedicated
# concurrency tests.
test-race:
	$(GO) test -race ./...

# Every table/figure experiment as benchmarks, full paper scale.
# Table 3 runs two complete attack campaigns and dominates the time.
# The raw log is kept and also parsed into a machine-readable
# BENCH_*.json (names, iteration counts, ns/op, allocations, and the
# custom sim-time metrics reported via b.ReportMetric).
bench:
	$(GO) test -bench=. -benchmem ./... > bench_output.txt || { cat bench_output.txt; exit 1; }
	cat bench_output.txt
	$(GO) run ./cmd/hh-benchjson -o BENCH_full.json bench_output.txt

bench-short:
	$(GO) test -bench=. -benchmem -short ./... > bench_output.txt || { cat bench_output.txt; exit 1; }
	cat bench_output.txt
	$(GO) run ./cmd/hh-benchjson -o BENCH_short.json bench_output.txt

# Regenerate the paper's evaluation artifacts as text.
tables:
	$(GO) run ./cmd/hh-tables -all

# The end-to-end attack demo at reduced scale.
demo:
	$(GO) run ./cmd/hyperhammer -short

# Brief fuzzing pass over the fuzz targets.
fuzz:
	$(GO) test -fuzz=FuzzAllocFreeSequence -fuzztime=20s ./internal/buddy/
	$(GO) test -fuzz=FuzzEntryRoundTrip -fuzztime=10s ./internal/ept/
	$(GO) test -fuzz=FuzzTranslateRobustness -fuzztime=20s ./internal/ept/
	$(GO) test -fuzz=FuzzDeviceProtocol -fuzztime=20s ./internal/virtio/

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt BENCH_full.json BENCH_short.json
