// Package hyperhammer is a full-system simulation and reproduction of
// "HyperHammer: Breaking Free from KVM-Enforced Isolation" (ASPLOS
// 2025): a Rowhammer attack in which a malicious hardware VM escapes
// KVM's EPT-enforced memory isolation and gains arbitrary access to
// host physical memory.
//
// The package simulates the entire stack the paper runs on — DDR4 DRAM
// with a seeded Rowhammer fault model, the Linux buddy allocator with
// migration types and per-CPU pagesets, KVM with 4-level EPTs,
// transparent hugepages and the iTLB-Multihit NX-hugepage
// countermeasure, virtio-mem, VFIO/vIOMMU — and runs the paper's
// attack, unchanged in structure, against it:
//
//	host, _ := hyperhammer.NewHost(hyperhammer.S1(1))
//	vm, _ := host.CreateVM(hyperhammer.VMConfig{
//		MemSize: 13 * hyperhammer.GiB, VFIOGroups: 1,
//	})
//	gos := hyperhammer.BootGuest(vm)
//	cfg := hyperhammer.DefaultAttackConfig(hyperhammer.S1BankFunction())
//	prof, _ := hyperhammer.Profile(gos, cfg)
//	steer, _ := hyperhammer.PageSteer(gos, cfg, prof.Buffer, prof.ExploitableBits(12))
//	expl, _ := hyperhammer.Exploit(gos, cfg, prof.Buffer, steer)
//	if expl.Success() {
//		secret, _ := expl.Escape.ReadHost(0x1234000) // any host address
//		_ = secret
//	}
//
// Attack code touches the host only through the guest interface; bit
// flips are committed to the simulated physical memory and corrupt
// whatever lives there, so a successful escape is a genuine
// translation-level breach of the simulated hypervisor, not a scripted
// outcome. See DESIGN.md for the fidelity rules and EXPERIMENTS.md for
// the paper-versus-measured comparison of every table and figure.
package hyperhammer

import (
	"hyperhammer/internal/attack"
	"hyperhammer/internal/balloon"
	"hyperhammer/internal/buddy"
	"hyperhammer/internal/dram"
	"hyperhammer/internal/dramdig"
	"hyperhammer/internal/forensics"
	"hyperhammer/internal/guest"
	"hyperhammer/internal/hammer"
	"hyperhammer/internal/hostload"
	"hyperhammer/internal/inspect"
	"hyperhammer/internal/kvm"
	"hyperhammer/internal/ledger"
	"hyperhammer/internal/memdef"
	"hyperhammer/internal/metrics"
	"io"

	"hyperhammer/internal/mitigation"
	"hyperhammer/internal/obs"
	"hyperhammer/internal/profile"
	"hyperhammer/internal/runartifact"
	"hyperhammer/internal/runstore"
	"hyperhammer/internal/sched"
	"hyperhammer/internal/trace"
	"hyperhammer/internal/virtio"
	"hyperhammer/internal/xenlite"
)

// Size constants re-exported for configuration literals.
const (
	KiB = memdef.KiB
	MiB = memdef.MiB
	GiB = memdef.GiB

	// PageSize and HugePageSize are the 4 KiB / 2 MiB page sizes.
	PageSize     = memdef.PageSize
	HugePageSize = memdef.HugePageSize
)

// Address-space types. HPA is host-physical, GPA guest-physical, GVA
// guest-virtual, IOVA I/O-virtual; PFN is a host frame number.
type (
	HPA  = memdef.HPA
	GPA  = memdef.GPA
	GVA  = memdef.GVA
	IOVA = memdef.IOVA
	PFN  = memdef.PFN
)

// Core machine types.
type (
	// Host is the simulated KVM hypervisor machine.
	Host = kvm.Host
	// HostConfig configures a host (DRAM geometry, fault model,
	// THP, NX-hugepage countermeasure, boot noise, quarantine).
	HostConfig = kvm.Config
	// VM is one guest virtual machine.
	VM = kvm.VM
	// VMConfig shapes a guest (memory size, VFIO groups).
	VMConfig = kvm.VMConfig
	// GuestOS is the attacker-visible guest runtime.
	GuestOS = guest.OS
	// Geometry is a DRAM addressing model.
	Geometry = dram.Geometry
	// FaultModel parameterizes the Rowhammer-vulnerable cell
	// population of the installed DIMMs.
	FaultModel = dram.FaultModelConfig
	// TRRConfig enables the in-DRAM Target Row Refresh mitigation
	// model on a FaultModel.
	TRRConfig = dram.TRRConfig
	// HostWorkload is a background host load profile (S3 modelling).
	HostWorkload = hostload.Profile
)

// Attack types.
type (
	// AttackConfig is the attacker's parameters and platform
	// knowledge.
	AttackConfig = attack.Config
	// ProfileResult is the memory-profiling outcome (Table 1).
	ProfileResult = attack.ProfileResult
	// SteerResult is the Page Steering outcome (Table 2, Figures 1-3).
	SteerResult = attack.SteerResult
	// ExploitResult is the exploitation outcome; on success it holds
	// an EscapeHandle with arbitrary host memory access.
	ExploitResult = attack.ExploitResult
	// EscapeHandle reads and writes arbitrary host physical memory
	// through a stolen EPT page.
	EscapeHandle = attack.EscapeHandle
	// VulnBit is one profiled Rowhammer-vulnerable bit.
	VulnBit = attack.VulnBit
	// Buffer describes the attacker's large THP allocation.
	Buffer = attack.Buffer
	// CampaignConfig drives repeated respawn-and-retry attempts
	// (Table 3).
	CampaignConfig = attack.CampaignConfig
	// CampaignResult summarizes a campaign.
	CampaignResult = attack.CampaignResult
)

// NewHost boots a simulated host machine.
func NewHost(cfg HostConfig) (*Host, error) { return kvm.NewHost(cfg) }

// NewGeometry validates and finishes a custom DRAM geometry (bank
// masks, row layout) for hosts beyond the built-in S1/S2 machines.
func NewGeometry(g Geometry) (*Geometry, error) { return dram.NewGeometry(g) }

// TraceRecorder receives structured host-side events; install one via
// HostConfig.Trace.
type TraceRecorder = trace.Recorder

// MetricsRegistry collects counters, gauges and histograms from every
// instrumented subsystem. Install one via HostConfig.Metrics; the host
// binds its simulated clock at boot, so exported rates are per
// simulated second. A nil registry disables all instrumentation at
// zero cost.
type MetricsRegistry = metrics.Registry

// MetricsSnapshot is a deterministic point-in-time export of every
// metric series.
type MetricsSnapshot = metrics.Snapshot

// NewMetrics creates an empty metrics registry.
func NewMetrics() *MetricsRegistry { return metrics.New() }

// NewTrace creates a trace recorder writing JSON lines to w (nil for
// in-memory only); keep bounds the in-memory ring. Install it via
// HostConfig.Trace; the host binds its simulated clock at boot.
func NewTrace(w io.Writer, keep int) *TraceRecorder {
	return trace.New(w, keep)
}

// TraceSpan is one open phase span; open roots with
// TraceRecorder.StartSpan and children with Span.StartChild.
type TraceSpan = trace.Span

// ObsPlane is the live observability plane: a sim-time time-series
// sampler over a metrics registry plus an event bus fed by the trace
// recorder. Install one via HostConfig.Obs (every host boot arms the
// sampler on its clock) and serve it over HTTP with ObsPlane.Serve.
type ObsPlane = obs.Plane

// ObsConfig tunes the observability plane (sampling interval, ring
// capacities); the zero value selects usable defaults.
type ObsConfig = obs.Config

// NewObs creates an observability plane over a metrics registry (which
// should be the same registry installed via HostConfig.Metrics).
func NewObs(reg *MetricsRegistry, cfg ObsConfig) *ObsPlane {
	return obs.NewPlane(reg, cfg)
}

// Inspector is the hardware introspection plane: bucketed DRAM
// activation/flip heatmaps, memory-layout censuses, and sim-time
// watchpoint alerts. Install one via HostConfig.Inspect (every host
// boot sizes the heatmap and arms watchpoint evaluation on its clock)
// and serve it live with ObsPlane.SetInspector; embed its snapshots in
// a RunArtifact with RunArtifact.SetInspector.
type Inspector = inspect.Inspector

// InspectConfig tunes an Inspector (bucket count, alert ring bound,
// evaluation cadence, rule set); the zero value selects usable
// defaults including DefaultWatchpointRules.
type InspectConfig = inspect.Config

// WatchpointRule is one declarative introspection threshold rule.
type WatchpointRule = inspect.Rule

// NewInspector creates a hardware introspection plane.
func NewInspector(cfg InspectConfig) *Inspector { return inspect.New(cfg) }

// DefaultWatchpointRules returns the stock watchpoint rule set (row
// pressure vs the flip threshold, TRR neutralizations, split onset,
// applied flips, machine checks, obs bus drops).
func DefaultWatchpointRules() []WatchpointRule { return inspect.DefaultRules() }

// ForensicsRecorder is the flip-provenance plane: per-attempt causal
// flip lineage (aggressors → verdict → owning frame), campaign outcome
// taxonomies, and one-line cause synthesis. Install one via
// HostConfig.Forensics (every host boot binds its clock and installs
// the DRAM flip sink), serve it live with ObsPlane.SetForensics, and
// embed its snapshot in a RunArtifact with RunArtifact.SetForensics
// for cmd/hh-why to read offline.
type ForensicsRecorder = forensics.Recorder

// ForensicsConfig tunes a ForensicsRecorder (per-attempt flip detail
// bound); the zero value selects usable defaults.
type ForensicsConfig = forensics.Config

// ForensicsSnapshot is one serialized view of a ForensicsRecorder.
type ForensicsSnapshot = forensics.Snapshot

// NewForensics creates a flip-provenance recorder.
func NewForensics(cfg ForensicsConfig) *ForensicsRecorder { return forensics.New(cfg) }

// LedgerRecorder is the determinism-ledger plane: rolling per-stream
// fingerprints of every deterministic event source (RNG draws, DRAM
// row/flip events, allocator traffic, EPT and guest-mapping mutations,
// attack outcomes), sealed into sim-time epochs. Install one via
// HostConfig.Ledger (every host boot binds its clock and resolves the
// subsystem streams), serve it live with ObsPlane.SetLedger, and embed
// its snapshot in a RunArtifact with RunArtifact.SetLedger for
// cmd/hh-bisect to localize divergence offline.
type LedgerRecorder = ledger.Recorder

// LedgerConfig tunes a LedgerRecorder (epoch interval, epoch cap); the
// zero value records final fingerprints only, sealing no epochs.
type LedgerConfig = ledger.Config

// LedgerSnapshot is one serialized view of a LedgerRecorder.
type LedgerSnapshot = ledger.Snapshot

// NewLedger creates a determinism-ledger recorder.
func NewLedger(cfg LedgerConfig) *LedgerRecorder { return ledger.New(cfg) }

// BisectLedgers localizes the first divergence between two ledger
// snapshots (nil when they agree) — the comparison behind cmd/hh-bisect.
func BisectLedgers(a, b *LedgerSnapshot) *ledger.Divergence { return ledger.Bisect(a, b) }

// CostProfiler folds the span trace into a per-phase simulated-time
// cost profile (see internal/profile). Attach one to a trace recorder
// with TraceRecorder.SetNamedSink("profile", p.Consume), or install it
// on an ObsPlane with AttachProfile so /api/profile serves it live.
type CostProfiler = profile.Builder

// CostProfile is one folded snapshot of a CostProfiler: per-span-path
// simulated time, DRAM activations, and hammer rounds, exportable as
// flamegraph folded stacks or gzipped pprof protobuf.
type CostProfile = profile.Profile

// NewCostProfiler creates a cost profiler charging the registry's DRAM
// and hammer counters to the open span (reg may be nil for a
// sim-time-only profile).
func NewCostProfiler(reg *MetricsRegistry) *CostProfiler {
	return profile.NewBuilder(reg)
}

// CostProfileFromTrace folds a recorded JSONL trace file offline into
// a cost profile (sim time only; counter attribution needs a live
// registry).
func CostProfileFromTrace(r io.Reader) (*CostProfile, error) {
	return profile.FromTrace(r)
}

// HostSchedule is the host-cost record of one scheduled batch: which
// worker ran each unit and when (host wall clock), plus the batch's
// wall and CPU totals. experiments.Plan captures one per Run; it is
// pure host observation and never feeds simulated output.
type HostSchedule = sched.Schedule

// PlanReport is the host-cost analysis derived from a HostSchedule:
// per-unit timings and slack, the critical path, and the
// parallel-efficiency figures. It is the artifact's `plan` section and
// what /api/plan, hh-plan, and `hh-inspect plan` serve and render.
type PlanReport = profile.PlanReport

// BuildPlanReport derives the critical-path and parallel-efficiency
// analysis from a batch schedule (nil-safe: returns an empty report).
func BuildPlanReport(sc *HostSchedule) *PlanReport { return profile.BuildPlanReport(sc) }

// RenderPlanReport writes the human view of a plan report — summary,
// ASCII Gantt chart, worker-utilization bars, top-slack table — the
// single renderer shared by hh-plan and hh-inspect plan. width bounds
// the chart columns (0 picks a default).
func RenderPlanReport(w io.Writer, r *PlanReport, width int) error {
	return profile.RenderPlan(w, r, width)
}

// WriteChromeTrace exports a host schedule as Chrome trace_event JSON
// (one track per worker plus the delivery track), loadable in Perfetto
// or chrome://tracing.
func WriteChromeTrace(w io.Writer, sc *HostSchedule) error {
	return trace.WriteChromeTrace(w, sc)
}

// RunArtifact is the self-describing run bundle the CLIs write with
// -artifact and cmd/hh-diff compares (see internal/runartifact).
type RunArtifact = runartifact.Artifact

// NewRunArtifact returns an artifact shell for the given producing
// tool, seed, and scale ("short" or "full").
func NewRunArtifact(tool string, seed uint64, scale string) *RunArtifact {
	return runartifact.New(tool, seed, scale)
}

// RunStore is the run-history plane's content-addressed, config-hash-
// indexed artifact store (see internal/runstore). The CLIs open one
// with -store and ingest each run's artifact; cmd/hh-trend folds the
// stored history into cross-run figure trends.
type RunStore = runstore.Store

// OpenRunStore opens (creating if needed) the run-history store rooted
// at dir and loads its index.
func OpenRunStore(dir string) (*RunStore, error) { return runstore.Open(dir) }

// TrendReport is the cross-run trend view hh-trend renders and
// /api/trend serves: per-figure time series with drift attribution.
type TrendReport = runstore.Report

// BootGuest starts the guest OS runtime on a VM.
func BootGuest(vm *VM) *GuestOS { return guest.Boot(vm) }

// S1 returns the configuration of evaluation machine S1: Intel Core
// i3-10100, 16 GiB DDR4-2666, THP and NX-hugepages on, plain KVM.
func S1(seed uint64) HostConfig {
	return HostConfig{
		Geometry:       dram.CoreI310100(),
		Fault:          dram.S1FaultModel(seed),
		Buddy:          buddy.DefaultConfig(),
		THP:            true,
		NXHugepages:    true,
		BootNoisePages: 30000,
		Seed:           seed,
	}
}

// S2 returns the configuration of machine S2: Intel Xeon E3-2124 with
// the same DIMMs and software stack.
func S2(seed uint64) HostConfig {
	cfg := S1(seed)
	cfg.Geometry = dram.XeonE32124()
	cfg.Fault = dram.S2FaultModel(seed)
	cfg.BootNoisePages = 34000
	return cfg
}

// S3 returns the configuration of machine S3: the S1 hardware running
// a single-node OpenStack (DevStack) deployment. Attach the returned
// workload profile with AttachWorkload to reproduce S3's much higher
// noise level (Figure 3b).
func S3(seed uint64) (HostConfig, HostWorkload) {
	cfg := S1(seed)
	cfg.BootNoisePages = 12000 // base host noise; OpenStack adds the rest
	return cfg, hostload.OpenStack()
}

// AttachWorkload starts a background host workload (e.g. the S3
// OpenStack profile) on a host.
func AttachWorkload(h *Host, p HostWorkload, seed uint64) (*hostload.Workload, error) {
	return hostload.Attach(h.Buddy, p, seed)
}

// S1BankFunction returns the DRAM bank function of the i3-10100 as the
// attacker knows it (recovered offline with DRAMDig, Section 5.1).
func S1BankFunction() []uint64 { return dram.CoreI310100().BankMasks }

// S2BankFunction returns the Xeon E3-2124 bank function.
func S2BankFunction() []uint64 { return dram.XeonE32124().BankMasks }

// DefaultAttackConfig returns the paper's evaluation parameters for a
// 16 GiB host with the given bank function.
func DefaultAttackConfig(bankMasks []uint64) AttackConfig {
	return attack.DefaultConfig(bankMasks)
}

// Profile runs the memory-profiling step (Section 4.1).
func Profile(os *GuestOS, cfg AttackConfig) (*ProfileResult, error) {
	return attack.Profile(os, cfg)
}

// PageSteer runs the Page Steering step (Section 4.2).
func PageSteer(os *GuestOS, cfg AttackConfig, buf Buffer, victims []VulnBit) (*SteerResult, error) {
	return attack.PageSteer(os, cfg, buf, victims)
}

// Exploit runs the exploitation step (Section 4.3).
func Exploit(os *GuestOS, cfg AttackConfig, buf Buffer, steer *SteerResult) (*ExploitResult, error) {
	return attack.Exploit(os, cfg, buf, steer)
}

// RunCampaign runs the repeated-attempt experiment of Section 5.3.2.
func RunCampaign(h *Host, cfg CampaignConfig) (*CampaignResult, error) {
	return attack.RunCampaign(h, cfg)
}

// SuccessBound returns the Section 5.3.1 success-probability bound.
func SuccessBound(guestMem, hostMem uint64) float64 {
	return attack.SuccessBound(guestMem, hostMem)
}

// ExpectedAttempts is the reciprocal of SuccessBound.
func ExpectedAttempts(guestMem, hostMem uint64) float64 {
	return attack.ExpectedAttempts(guestMem, hostMem)
}

// Quarantine returns the paper's Section 6 countermeasure as a guard
// installable via HostConfig.Quarantine, plus its decision counters.
func Quarantine() (virtio.Guard, *mitigation.Stats) {
	return mitigation.Quarantine()
}

// ErrNACK is the virtio-mem device's refusal of a guest request, e.g.
// one the quarantine countermeasure rejected.
var ErrNACK = virtio.ErrNACK

// GuestDriver is the guest kernel's virtio-mem driver.
type GuestDriver = virtio.GuestDriver

// NewGuestDriver attaches a stock virtio-mem driver to a device (for
// modelling honest guests; BootGuest attaches the attacker's).
func NewGuestDriver(dev *virtio.MemDevice) *GuestDriver {
	return virtio.NewGuestDriver(dev)
}

// RecoverBankFunction reverse engineers a DRAM bank function from
// row-buffer timing, the DRAMDig step of Section 5.1.
func RecoverBankFunction(geo *Geometry, seed uint64) (dramdig.Result, error) {
	timing := dram.NewTiming(geo, seed)
	cfg := dramdig.DefaultConfig(geo.Size)
	cfg.Seed = seed
	return dramdig.Recover(timing, cfg)
}

// FindHammerPattern runs the TRRespass-style pattern search of Section
// 5.1 inside a guest and returns the most effective pattern.
func FindHammerPattern(os *GuestOS, bankMasks []uint64) (hammer.Result, error) {
	results, err := hammer.Search(os, hammer.Config{
		BankMasks: bankMasks,
		RowShift:  18,
		Hugepages: 64,
		Repeats:   3,
	}, hammer.DefaultPatterns())
	if err != nil {
		return hammer.Result{}, err
	}
	best, _ := hammer.Best(results)
	return best, nil
}

// XenHeap creates a Xen-style domain heap for the Section 6
// comparison.
func XenHeap(start PFN, pages uint64) *xenlite.Heap { return xenlite.NewHeap(start, pages) }

// NewBalloon creates a virtio-balloon device for the Section 6
// feasibility analysis.
func NewBalloon(guestSize uint64, backend balloon.Backend) *balloon.Device {
	return balloon.NewDevice(guestSize, backend)
}
