package dram

import (
	"math/rand/v2"

	"hyperhammer/internal/ledger"
	"hyperhammer/internal/memdef"
	"hyperhammer/internal/metrics"
	"hyperhammer/internal/sched"
)

// FlipDirection is the fixed direction of a vulnerable cell. DRAM
// cells are either true-cells (a charged cell encodes 1, so leakage
// flips 1 to 0) or anti-cells (leakage flips 0 to 1); each physical
// cell flips in only one direction (Section 4.3, "Rowhammer flips
// tend to be unidirectional").
type FlipDirection uint8

const (
	// FlipOneToZero marks a true-cell: the bit flips only if it
	// currently holds 1.
	FlipOneToZero FlipDirection = iota
	// FlipZeroToOne marks an anti-cell: the bit flips only if it
	// currently holds 0.
	FlipZeroToOne
)

// String returns the paper's notation for the direction.
func (d FlipDirection) String() string {
	if d == FlipOneToZero {
		return "1->0"
	}
	return "0->1"
}

// Cell is one Rowhammer-vulnerable DRAM cell.
type Cell struct {
	// BitIndex is the cell's bit position within its row's per-bank
	// slice (0 .. RowBytesPerBank*8-1).
	BitIndex int
	// Threshold is the effective activation count on adjacent rows
	// required to flip the cell within one refresh window.
	Threshold float64
	// Direction is the cell's fixed flip direction.
	Direction FlipDirection
	// Stable reports whether the cell flips every time the threshold
	// is exceeded. Unstable cells flip probabilistically (FlakyP).
	Stable bool
	// FlakyP is the per-hammer flip probability for unstable cells.
	FlakyP float64
}

// FaultModelConfig parameterizes the vulnerable-cell population of one
// DIMM pair. Two presets reproduce the character of the paper's S1
// and S2 machines (Table 1): S1 finds fewer flips but most are stable,
// S2 finds more flips but almost none are stable.
type FaultModelConfig struct {
	// Seed makes the cell population deterministic.
	Seed uint64
	// CellsPerRow is the expected number of vulnerable cells per
	// (bank, row). Sampled per row from a Poisson-like distribution.
	CellsPerRow float64
	// ThresholdMin and ThresholdMax bound the per-cell activation
	// thresholds (uniform sample).
	ThresholdMin, ThresholdMax float64
	// StableFraction is the probability that a vulnerable cell is
	// stable (flips reliably above threshold).
	StableFraction float64
	// FlakyP is the flip probability of unstable cells.
	FlakyP float64
	// NeighborWeight1 and NeighborWeight2 weight the disturbance
	// contributed by aggressors at row distance 1 and 2. Distances
	// beyond 2 contribute nothing (blast radius 2).
	NeighborWeight1, NeighborWeight2 float64
	// WindowActivations caps the activations of one row that can
	// accumulate disturbance within a refresh window: every tREFW
	// (64 ms) the victim row is refreshed and the charge-leak budget
	// resets, so hammering longer in one operation does not hammer
	// harder. Zero selects the DDR4-2666 default (~1.36M activations
	// per row per window at back-to-back tRC).
	WindowActivations int
	// TRR, when non-nil, enables the in-DRAM Target Row Refresh
	// mitigation model. The evaluated Apacer DIMMs behave as if TRR
	// were absent or defeated (TRRespass found effective patterns on
	// them, Section 5.1), so the presets leave this nil.
	TRR *TRRConfig
}

// S1FaultModel returns the fault-model preset calibrated to machine
// S1 in Table 1: ~395 flips over a 12 GiB profile with ~62% stable.
func S1FaultModel(seed uint64) FaultModelConfig {
	return FaultModelConfig{
		Seed:            seed,
		CellsPerRow:     0.0043,
		ThresholdMin:    120_000,
		ThresholdMax:    400_000,
		StableFraction:  0.37,
		FlakyP:          0.35,
		NeighborWeight1: 1.0,
		NeighborWeight2: 0.25,
	}
}

// S2FaultModel returns the preset calibrated to machine S2 in
// Table 1: ~650 flips over a 12 GiB profile with only ~6% stable.
func S2FaultModel(seed uint64) FaultModelConfig {
	return FaultModelConfig{
		Seed:            seed,
		CellsPerRow:     0.0122,
		ThresholdMin:    120_000,
		ThresholdMax:    400_000,
		StableFraction:  0.022,
		FlakyP:          0.35,
		NeighborWeight1: 1.0,
		NeighborWeight2: 0.25,
	}
}

// Module is one installed DRAM configuration: a geometry plus its
// vulnerable-cell population. Cell populations are generated lazily
// and deterministically per (bank, row), so a 16 GiB module costs
// nothing until rows are actually hammered.
//
// Row state is organized per bank (bankState): the population cache,
// the reusable struct-of-arrays disturbance scratch, and the batch
// pipeline's verdict buffers are all bank-local, which is what makes
// the batched threshold-crossing pass shardable per bank with no
// synchronization (see batch.go).
type Module struct {
	Geo *Geometry
	cfg FaultModelConfig

	// banks holds the per-bank row state, indexed by bank number and
	// lazily populated. The slice itself is sized on first use.
	banks []bankState

	// ops counts hammer operations. It salts the per-op randomness so
	// that repeating an identical operation (a stability retest)
	// draws fresh flaky-cell outcomes instead of replaying the last
	// ones, while the sequence as a whole stays deterministic.
	ops uint64

	// sink, when non-nil, receives per-row activation accumulation
	// from every hammer operation (the introspection heatmap feed).
	sink ActivationSink

	// flip, when non-nil, receives per-flip verdict provenance (the
	// forensics-plane feed).
	flip FlipSink

	met moduleMetrics

	// led* are the determinism-ledger fold handles (nil when the
	// ledger is off — nil handles fold to nothing; see SetLedger).
	ledRNG  *ledger.Stream
	ledRow  *ledger.Stream
	ledFlip *ledger.Stream

	// opPCG/opRand are the reusable per-op RNG: reseeding a PCG in
	// place draws the identical stream a freshly allocated
	// rand.New(rand.NewPCG(...)) would, without the two allocations.
	opPCG  rand.PCG
	opRand *rand.Rand

	// trr and trrPCG/trrRand are the TRR filter's reusable scratch
	// and sampling RNG (see trr.go).
	trr     trrScratch
	trrPCG  rand.PCG
	trrRand *rand.Rand

	bat batchScratch

	// shard, when non-nil with more than one worker, fans the batched
	// per-bank crossing pass across the pool (SetShardRunner).
	shard *sched.Runner

	// deliverSelf/deliverConcat/lastFlips adapt the slice-returning
	// Hammer and HammerBatch APIs onto the callback pipeline without
	// a per-call closure allocation.
	deliverSelf   func(int, []CandidateFlip) error
	deliverConcat func(int, []CandidateFlip) error
	lastFlips     []CandidateFlip
}

// bankState is the per-bank slice of the module's row state. Each
// hammer operation touches a handful of rows per bank, so the
// disturbance scratch is a tiny struct-of-arrays (parallel row and
// pressure slices) reused across operations, not a full-row vector.
type bankState struct {
	// Vulnerable-cell population cache. checked marks rows whose
	// population has been generated (so the empty majority never
	// re-runs its row RNG); hasCells marks the generated rows that
	// actually hold cells; cells stores those populations.
	checked  []uint64
	hasCells []uint64
	cells    map[int][]Cell
	// pcg/rng are the bank's reusable row-population RNG, reseeded
	// per row; identical streams to a fresh rand.New(rand.NewPCG()).
	pcg rand.PCG
	rng *rand.Rand

	// Main disturbance scratch for the current op: vRows[i] carries
	// vPres[i] accumulated pressure. Reset per (op, bank).
	vRows []int32
	vPres []float64
	// Audit (pre-TRR) disturbance scratch, same shape.
	aRows []int32
	aPres []float64

	// Batch pipeline state: the ops (by batch index, ascending) with
	// work in this bank, and the phase-B verdict records they
	// produced — main candidates and trr-refreshed audit hits, each
	// consumed by an emission cursor in phase C. epoch stamps which
	// batch the buffers belong to, so joining a new batch resets them
	// without a per-bank sweep.
	epoch      uint64
	opIdx      []int32
	recs       []cellRecord
	arecs      []cellRecord
	mCur, aCur int
}

// ActivationSink accumulates per-row activation pressure from hammer
// operations. Implementations must be cheap: the hook runs on the
// hammer hot path, once per active aggressor row per operation.
type ActivationSink interface {
	// RecordRowActivations reports that (bank, row) was activated
	// n more times within one refresh window.
	RecordRowActivations(bank, row int, n int64)
}

// SetActivationSink installs (or, with nil, removes) the module's
// activation sink.
func (m *Module) SetActivationSink(s ActivationSink) { m.sink = s }

// Dram-stage flip verdicts reported through the FlipSink. The host
// stage (kvm) refines "fired" candidates into their final verdicts
// (landed, direction-filtered, ECC outcomes).
const (
	// FlipFired marks a candidate flip the fault model emitted.
	FlipFired = "fired"
	// FlipFlakyNoFire marks an unstable cell that was pushed past its
	// threshold but did not fire this operation.
	FlipFlakyNoFire = "flaky-no-fire"
	// FlipTRRRefreshed marks a cell whose pre-TRR disturbance reached
	// its threshold but whose aggressors the TRR tracker neutralized.
	FlipTRRRefreshed = "trr-refreshed"
)

// FlipOpInfo describes one hammer operation to the flip sink: the
// active aggressor set (post-dedup, post-bank-filter), the rows the
// TRR tracker neutralized, and the requested vs refresh-window-clipped
// per-aggressor activation counts. The slices are borrowed from the
// module's scratch and valid only for the duration of the call.
type FlipOpInfo struct {
	Aggressors  []RowRef
	Neutralized []RowRef
	// Rounds is the requested activations per aggressor;
	// WindowRounds is the count after refresh-window clipping.
	Rounds       int
	WindowRounds int
}

// FlipEvent is one per-cell verdict from the fault model. For
// trr-refreshed events Disturbance is the pre-TRR disturbance that
// would have fired the cell; otherwise it is the effective (post-TRR,
// window-clipped) disturbance.
type FlipEvent struct {
	Addr        memdef.HPA
	Bit         uint
	Direction   FlipDirection
	Row         RowRef
	Disturbance float64
	Threshold   float64
	Verdict     string
}

// FlipSink receives the flip-provenance stream from hammer operations
// (the forensics-plane feed, alongside ActivationSink's heatmap feed).
// Implementations must be cheap and must not feed back into simulated
// state; nil disables the stream at zero cost.
type FlipSink interface {
	// BeginHammerOp opens one hammer operation; the flip events that
	// follow belong to it.
	BeginHammerOp(info FlipOpInfo)
	// RecordFlipEvent reports one per-cell verdict.
	RecordFlipEvent(ev FlipEvent)
}

// SetFlipSink installs (or, with nil, removes) the module's flip sink.
func (m *Module) SetFlipSink(s FlipSink) { m.flip = s }

// SetLedger resolves the module's determinism-ledger streams: the
// flaky-cell RNG draws (dram.rng), per-op row activation state
// (dram.row), and flip-verdict emissions (dram.flip). A nil recorder
// resolves nil handles, which fold to nothing — the zero-cost-off
// path. Folds happen only on the merge-ordered phase-C path, so the
// ledger is byte-identical at any shard worker count.
func (m *Module) SetLedger(r *ledger.Recorder) {
	m.ledRNG = r.Stream("dram.rng")
	m.ledRow = r.Stream("dram.row")
	m.ledFlip = r.Stream("dram.flip")
}

// moduleMetrics caches the module's instrument handles. All handles
// are nil (no-op) until SetMetrics.
type moduleMetrics struct {
	hammerOps      *metrics.Counter
	activations    *metrics.Counter
	trrNeutralized *metrics.Counter
	windowClips    *metrics.Counter
	candFlips      *metrics.Counter
	trrRefreshes   *metrics.Counter
	trrVetoed      *metrics.Counter
}

// VetoedFlipsHelp is the shared help text of the cross-mitigation
// mitigation_vetoed_flips_total family (the kvm layer registers the
// ECC series of the same family).
const VetoedFlipsHelp = "Would-be bit flips vetoed by a hardware mitigation before software observed them."

// SetMetrics registers the module's instruments with reg. A nil
// registry leaves the module uninstrumented at zero cost.
func (m *Module) SetMetrics(reg *metrics.Registry) {
	m.met = moduleMetrics{
		hammerOps:      reg.Counter("dram_hammer_ops_total", "Hammer operations evaluated by the fault model."),
		activations:    reg.Counter("dram_activations_total", "DRAM row activations driven by hammer operations."),
		trrNeutralized: reg.Counter("dram_trr_neutralized_total", "Aggressor rows neutralized by the TRR tracker."),
		windowClips:    reg.Counter("dram_refresh_window_clips_total", "Hammer ops whose rounds were clipped to the refresh-window activation budget."),
		candFlips:      reg.Counter("dram_candidate_flips_total", "Candidate bit flips emitted by the fault model (before direction filtering)."),
		trrRefreshes:   reg.Counter("mitigation_trr_refreshes_total", "Preventive neighbour refreshes issued by the TRR tracker (one per neutralized aggressor row)."),
		trrVetoed:      reg.Counter("mitigation_vetoed_flips_total", VetoedFlipsHelp, "mitigation", "trr"),
	}
}

// NewModule installs a DRAM module with the given geometry and fault
// model.
func NewModule(geo *Geometry, cfg FaultModelConfig) *Module {
	return &Module{Geo: geo, cfg: cfg}
}

// bank returns bank b's state, sizing the bank table on first use.
func (m *Module) bank(b int) *bankState {
	if m.banks == nil {
		m.banks = make([]bankState, m.Geo.Banks())
	}
	return &m.banks[b]
}

// VulnerableCells returns the vulnerable cells of one (bank, row),
// generating them deterministically on demand. Generated rows are
// remembered in a per-bank bitset — the empty majority as a single
// bit, so a long profiling run neither re-derives their RNG nor
// bloats a cache with them. The returned slice must not be modified.
func (m *Module) VulnerableCells(bank, row int) []Cell {
	return m.cellsForRow(m.bank(bank), bank, row)
}

// cellsForRow is VulnerableCells against an already-resolved bank
// state. It touches only that bank's state (plus the immutable config
// and geometry), which is what makes concurrent per-bank evaluation
// in the batch pipeline race-free.
func (m *Module) cellsForRow(bs *bankState, bank, row int) []Cell {
	if bs.checked == nil {
		words := (m.Geo.Rows() + 63) / 64
		bs.checked = make([]uint64, words)
		bs.hasCells = make([]uint64, words)
		bs.rng = rand.New(&bs.pcg)
	}
	w, bit := row>>6, uint(row&63)
	if bs.checked[w]&(1<<bit) != 0 {
		if bs.hasCells[w]&(1<<bit) == 0 {
			return nil
		}
		return bs.cells[row]
	}
	bs.checked[w] |= 1 << bit
	// SplitMix-style key mixing keeps rows statistically independent
	// of each other and of visit order.
	k := m.cfg.Seed ^ (uint64(bank)+1)*0x9E3779B97F4A7C15 ^ (uint64(row)+1)*0xBF58476D1CE4E5B9
	bs.pcg.Seed(k, k^0x94D049BB133111EB)
	rng := bs.rng
	// Poisson sampling via inversion is overkill at these densities;
	// a two-draw Bernoulli mixture gives the same first two moments
	// for lambda << 1 while staying cheap and deterministic.
	n := 0
	lambda := m.cfg.CellsPerRow
	for lambda > 0 {
		p := lambda
		if p > 1 {
			p = 1
		}
		if rng.Float64() < p {
			n++
		}
		lambda -= 1
	}
	if n == 0 {
		return nil
	}
	rowBits := int(m.Geo.RowBytesPerBank()) * 8
	cells := make([]Cell, 0, n)
	for i := 0; i < n; i++ {
		c := Cell{
			BitIndex:  rng.IntN(rowBits),
			Threshold: m.cfg.ThresholdMin + rng.Float64()*(m.cfg.ThresholdMax-m.cfg.ThresholdMin),
			Stable:    rng.Float64() < m.cfg.StableFraction,
			FlakyP:    m.cfg.FlakyP,
		}
		if rng.Float64() < 0.5 {
			c.Direction = FlipOneToZero
		} else {
			c.Direction = FlipZeroToOne
		}
		cells = append(cells, c)
	}
	// Insertion sort by BitIndex: populations are tiny (at most
	// ceil(CellsPerRow) cells), where this is exactly the comparison
	// sequence sort.Slice would run.
	for i := 1; i < len(cells); i++ {
		for j := i; j > 0 && cells[j].BitIndex < cells[j-1].BitIndex; j-- {
			cells[j], cells[j-1] = cells[j-1], cells[j]
		}
	}
	bs.hasCells[w] |= 1 << bit
	if bs.cells == nil {
		bs.cells = make(map[int][]Cell)
	}
	bs.cells[row] = cells
	return cells
}

// DefaultWindowActivations is the per-row activation budget of one
// 64 ms refresh window at back-to-back tRC (~47 ns) on DDR4-2666.
const DefaultWindowActivations = 1_360_000

// windowActivations returns the effective per-window activation cap.
func (m *Module) windowActivations() int {
	if m.cfg.WindowActivations > 0 {
		return m.cfg.WindowActivations
	}
	return DefaultWindowActivations
}

// RowRef names one DRAM row.
type RowRef struct {
	Bank, Row int
}

// CandidateFlip is a bit that the fault model reports as flipped by a
// hammer operation. Whether the flip is observable depends on the
// current content of the bit (direction filter), which the physical
// memory layer applies.
type CandidateFlip struct {
	// Addr is the physical address of the byte containing the cell.
	Addr memdef.HPA
	// Bit is the bit index within that byte (0..7).
	Bit uint
	// Direction is the only direction in which the cell flips.
	Direction FlipDirection
	// Row locates the victim cell for diagnostics.
	Row RowRef
}

// AddrOfCell converts a (bank, row, bitIndex) fault coordinate to a
// physical byte address and bit position, using the geometry's exact
// bank-function inverse.
func (m *Module) AddrOfCell(bank, row, bitIndex int) (memdef.HPA, uint) {
	byteInBankRow := bitIndex / 8
	line := byteInBankRow / LineSize
	byteInLine := byteInBankRow % LineSize
	a := m.Geo.ComposeLine(bank, row, line)
	return a + memdef.HPA(byteInLine), uint(bitIndex % 8)
}

// HammerOp describes one hammer operation: a set of aggressor rows
// each activated Rounds times within refresh windows. The operation
// models the paper's pattern of hammering two same-bank rows for
// 250,000 rounds. The Aggressors slice is only read during the
// Hammer/HammerBatch call, so callers may reuse its backing.
type HammerOp struct {
	Aggressors []RowRef
	Rounds     int
}

// neighborOffsets is the blast radius of one aggressor: row distances
// whose disturbance weight is nonzero, in accumulation order.
var neighborOffsets = [4]int{-2, -1, 1, 2}

// addPressure accumulates one aggressor's neighbour disturbance into
// a bank's (rows, pressure) struct-of-arrays scratch. c1/c2 are the
// distance-1/distance-2 contributions (weight × rounds); the float
// additions happen in exactly the aggressor-then-offset order of the
// sequential evaluation, so sums are bit-identical.
func addPressure(rowsp *[]int32, presp *[]float64, aggRow, maxRow int, c1, c2 float64) {
	rows, pres := *rowsp, *presp
	for _, d := range neighborOffsets {
		v := aggRow + d
		if v < 0 || v >= maxRow {
			continue
		}
		c := c1
		if d == 2 || d == -2 {
			c = c2
		}
		found := false
		for i, r := range rows {
			if int(r) == v {
				pres[i] += c
				found = true
				break
			}
		}
		if !found {
			rows = append(rows, int32(v))
			pres = append(pres, c)
		}
	}
	*rowsp, *presp = rows, pres
}

// sortRowsPres insertion-sorts the parallel (rows, pressure) arrays by
// row ascending. Rows are unique, so the order equals the sequential
// path's sorted victim iteration.
func sortRowsPres(rows []int32, pres []float64) {
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j] < rows[j-1]; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
			pres[j], pres[j-1] = pres[j-1], pres[j]
		}
	}
}

// newOpRand wraps the module's reusable PCG source: reseeding it in
// place per op draws the identical stream a freshly allocated
// rand.New(rand.NewPCG(...)) would, without the two allocations.
func newOpRand(p *rand.PCG) *rand.Rand { return rand.New(p) }

// sortBanks insertion-sorts a bank list ascending.
func sortBanks(banks []int32) {
	for i := 1; i < len(banks); i++ {
		for j := i; j > 0 && banks[j] < banks[j-1]; j-- {
			banks[j], banks[j-1] = banks[j-1], banks[j]
		}
	}
}

// hasBank reports membership in a (tiny) bank list.
func hasBank(banks []int32, b int32) bool {
	for _, x := range banks {
		if x == b {
			return true
		}
	}
	return false
}

// rowExcluded reports whether (bank, row) names one of the op's own
// aggressor rows: those are being driven, not disturbed. The set to
// test is the pre-TRR active set — every deduplicated aggressor in a
// bank with disturbance is in it, so this equals the sequential
// path's deletion of every raw aggressor key.
func rowExcluded(set []RowRef, bank, row int) bool {
	for _, ag := range set {
		if ag.Bank == bank && ag.Row == row {
			return true
		}
	}
	return false
}

// Hammer evaluates the fault model for one hammer operation and
// returns the candidate flips in all victim rows. The disturbance on
// a victim row is the weighted sum of aggressor activations at row
// distance 1 and 2 within the same bank; a vulnerable cell flips when
// the disturbance reaches its threshold (always for stable cells, with
// probability FlakyP for unstable ones).
//
// Hammer is the batch pipeline run over a single operation; see
// batch.go for the phases. The returned slice is owned by the caller.
func (m *Module) Hammer(op HammerOp) []CandidateFlip {
	b := &m.bat
	b.one[0] = op
	m.lastFlips = nil
	if m.deliverSelf == nil {
		m.deliverSelf = func(_ int, flips []CandidateFlip) error {
			m.lastFlips = flips
			return nil
		}
	}
	// The single-op pipeline cannot fail: errors only come from the
	// deliver callback.
	_ = m.runBatch(b.one[:], nil, m.deliverSelf)
	b.one[0] = HammerOp{}
	return m.lastFlips
}

// Activations returns the total DRAM activations an op performs, for
// virtual-clock charging.
func (op HammerOp) Activations() int64 {
	return int64(op.Rounds) * int64(len(op.Aggressors))
}
