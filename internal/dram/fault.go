package dram

import (
	"math/rand/v2"
	"sort"

	"hyperhammer/internal/memdef"
	"hyperhammer/internal/metrics"
)

// FlipDirection is the fixed direction of a vulnerable cell. DRAM
// cells are either true-cells (a charged cell encodes 1, so leakage
// flips 1 to 0) or anti-cells (leakage flips 0 to 1); each physical
// cell flips in only one direction (Section 4.3, "Rowhammer flips
// tend to be unidirectional").
type FlipDirection uint8

const (
	// FlipOneToZero marks a true-cell: the bit flips only if it
	// currently holds 1.
	FlipOneToZero FlipDirection = iota
	// FlipZeroToOne marks an anti-cell: the bit flips only if it
	// currently holds 0.
	FlipZeroToOne
)

// String returns the paper's notation for the direction.
func (d FlipDirection) String() string {
	if d == FlipOneToZero {
		return "1->0"
	}
	return "0->1"
}

// Cell is one Rowhammer-vulnerable DRAM cell.
type Cell struct {
	// BitIndex is the cell's bit position within its row's per-bank
	// slice (0 .. RowBytesPerBank*8-1).
	BitIndex int
	// Threshold is the effective activation count on adjacent rows
	// required to flip the cell within one refresh window.
	Threshold float64
	// Direction is the cell's fixed flip direction.
	Direction FlipDirection
	// Stable reports whether the cell flips every time the threshold
	// is exceeded. Unstable cells flip probabilistically (FlakyP).
	Stable bool
	// FlakyP is the per-hammer flip probability for unstable cells.
	FlakyP float64
}

// FaultModelConfig parameterizes the vulnerable-cell population of one
// DIMM pair. Two presets reproduce the character of the paper's S1
// and S2 machines (Table 1): S1 finds fewer flips but most are stable,
// S2 finds more flips but almost none are stable.
type FaultModelConfig struct {
	// Seed makes the cell population deterministic.
	Seed uint64
	// CellsPerRow is the expected number of vulnerable cells per
	// (bank, row). Sampled per row from a Poisson-like distribution.
	CellsPerRow float64
	// ThresholdMin and ThresholdMax bound the per-cell activation
	// thresholds (uniform sample).
	ThresholdMin, ThresholdMax float64
	// StableFraction is the probability that a vulnerable cell is
	// stable (flips reliably above threshold).
	StableFraction float64
	// FlakyP is the flip probability of unstable cells.
	FlakyP float64
	// NeighborWeight1 and NeighborWeight2 weight the disturbance
	// contributed by aggressors at row distance 1 and 2. Distances
	// beyond 2 contribute nothing (blast radius 2).
	NeighborWeight1, NeighborWeight2 float64
	// WindowActivations caps the activations of one row that can
	// accumulate disturbance within a refresh window: every tREFW
	// (64 ms) the victim row is refreshed and the charge-leak budget
	// resets, so hammering longer in one operation does not hammer
	// harder. Zero selects the DDR4-2666 default (~1.36M activations
	// per row per window at back-to-back tRC).
	WindowActivations int
	// TRR, when non-nil, enables the in-DRAM Target Row Refresh
	// mitigation model. The evaluated Apacer DIMMs behave as if TRR
	// were absent or defeated (TRRespass found effective patterns on
	// them, Section 5.1), so the presets leave this nil.
	TRR *TRRConfig
}

// S1FaultModel returns the fault-model preset calibrated to machine
// S1 in Table 1: ~395 flips over a 12 GiB profile with ~62% stable.
func S1FaultModel(seed uint64) FaultModelConfig {
	return FaultModelConfig{
		Seed:            seed,
		CellsPerRow:     0.0043,
		ThresholdMin:    120_000,
		ThresholdMax:    400_000,
		StableFraction:  0.37,
		FlakyP:          0.35,
		NeighborWeight1: 1.0,
		NeighborWeight2: 0.25,
	}
}

// S2FaultModel returns the preset calibrated to machine S2 in
// Table 1: ~650 flips over a 12 GiB profile with only ~6% stable.
func S2FaultModel(seed uint64) FaultModelConfig {
	return FaultModelConfig{
		Seed:            seed,
		CellsPerRow:     0.0122,
		ThresholdMin:    120_000,
		ThresholdMax:    400_000,
		StableFraction:  0.022,
		FlakyP:          0.35,
		NeighborWeight1: 1.0,
		NeighborWeight2: 0.25,
	}
}

// Module is one installed DRAM configuration: a geometry plus its
// vulnerable-cell population. Cell populations are generated lazily
// and deterministically per (bank, row), so a 16 GiB module costs
// nothing until rows are actually hammered.
type Module struct {
	Geo  *Geometry
	cfg  FaultModelConfig
	rows map[rowKey][]Cell // lazily materialized vulnerable cells

	// ops counts hammer operations. It salts the per-op randomness so
	// that repeating an identical operation (a stability retest)
	// draws fresh flaky-cell outcomes instead of replaying the last
	// ones, while the sequence as a whole stays deterministic.
	ops uint64

	// sink, when non-nil, receives per-row activation accumulation
	// from every hammer operation (the introspection heatmap feed).
	sink ActivationSink

	// flip, when non-nil, receives per-flip verdict provenance (the
	// forensics-plane feed).
	flip FlipSink

	met moduleMetrics
}

// ActivationSink accumulates per-row activation pressure from hammer
// operations. Implementations must be cheap: the hook runs on the
// hammer hot path, once per active aggressor row per operation.
type ActivationSink interface {
	// RecordRowActivations reports that (bank, row) was activated
	// n more times within one refresh window.
	RecordRowActivations(bank, row int, n int64)
}

// SetActivationSink installs (or, with nil, removes) the module's
// activation sink.
func (m *Module) SetActivationSink(s ActivationSink) { m.sink = s }

// Dram-stage flip verdicts reported through the FlipSink. The host
// stage (kvm) refines "fired" candidates into their final verdicts
// (landed, direction-filtered, ECC outcomes).
const (
	// FlipFired marks a candidate flip the fault model emitted.
	FlipFired = "fired"
	// FlipFlakyNoFire marks an unstable cell that was pushed past its
	// threshold but did not fire this operation.
	FlipFlakyNoFire = "flaky-no-fire"
	// FlipTRRRefreshed marks a cell whose pre-TRR disturbance reached
	// its threshold but whose aggressors the TRR tracker neutralized.
	FlipTRRRefreshed = "trr-refreshed"
)

// FlipOpInfo describes one hammer operation to the flip sink: the
// active aggressor set (post-dedup, post-bank-filter), the rows the
// TRR tracker neutralized, and the requested vs refresh-window-clipped
// per-aggressor activation counts.
type FlipOpInfo struct {
	Aggressors  []RowRef
	Neutralized []RowRef
	// Rounds is the requested activations per aggressor;
	// WindowRounds is the count after refresh-window clipping.
	Rounds       int
	WindowRounds int
}

// FlipEvent is one per-cell verdict from the fault model. For
// trr-refreshed events Disturbance is the pre-TRR disturbance that
// would have fired the cell; otherwise it is the effective (post-TRR,
// window-clipped) disturbance.
type FlipEvent struct {
	Addr        memdef.HPA
	Bit         uint
	Direction   FlipDirection
	Row         RowRef
	Disturbance float64
	Threshold   float64
	Verdict     string
}

// FlipSink receives the flip-provenance stream from hammer operations
// (the forensics-plane feed, alongside ActivationSink's heatmap feed).
// Implementations must be cheap and must not feed back into simulated
// state; nil disables the stream at zero cost.
type FlipSink interface {
	// BeginHammerOp opens one hammer operation; the flip events that
	// follow belong to it.
	BeginHammerOp(info FlipOpInfo)
	// RecordFlipEvent reports one per-cell verdict.
	RecordFlipEvent(ev FlipEvent)
}

// SetFlipSink installs (or, with nil, removes) the module's flip sink.
func (m *Module) SetFlipSink(s FlipSink) { m.flip = s }

// moduleMetrics caches the module's instrument handles. All handles
// are nil (no-op) until SetMetrics.
type moduleMetrics struct {
	hammerOps      *metrics.Counter
	activations    *metrics.Counter
	trrNeutralized *metrics.Counter
	windowClips    *metrics.Counter
	candFlips      *metrics.Counter
	trrRefreshes   *metrics.Counter
	trrVetoed      *metrics.Counter
}

// VetoedFlipsHelp is the shared help text of the cross-mitigation
// mitigation_vetoed_flips_total family (the kvm layer registers the
// ECC series of the same family).
const VetoedFlipsHelp = "Would-be bit flips vetoed by a hardware mitigation before software observed them."

// SetMetrics registers the module's instruments with reg. A nil
// registry leaves the module uninstrumented at zero cost.
func (m *Module) SetMetrics(reg *metrics.Registry) {
	m.met = moduleMetrics{
		hammerOps:      reg.Counter("dram_hammer_ops_total", "Hammer operations evaluated by the fault model."),
		activations:    reg.Counter("dram_activations_total", "DRAM row activations driven by hammer operations."),
		trrNeutralized: reg.Counter("dram_trr_neutralized_total", "Aggressor rows neutralized by the TRR tracker."),
		windowClips:    reg.Counter("dram_refresh_window_clips_total", "Hammer ops whose rounds were clipped to the refresh-window activation budget."),
		candFlips:      reg.Counter("dram_candidate_flips_total", "Candidate bit flips emitted by the fault model (before direction filtering)."),
		trrRefreshes:   reg.Counter("mitigation_trr_refreshes_total", "Preventive neighbour refreshes issued by the TRR tracker (one per neutralized aggressor row)."),
		trrVetoed:      reg.Counter("mitigation_vetoed_flips_total", VetoedFlipsHelp, "mitigation", "trr"),
	}
}

type rowKey struct {
	bank, row int
}

// NewModule installs a DRAM module with the given geometry and fault
// model.
func NewModule(geo *Geometry, cfg FaultModelConfig) *Module {
	return &Module{Geo: geo, cfg: cfg, rows: make(map[rowKey][]Cell)}
}

// rowRNG returns a deterministic RNG for one (bank, row), independent
// of visit order.
func (m *Module) rowRNG(bank, row int) *rand.Rand {
	// SplitMix-style key mixing keeps rows statistically independent.
	k := m.cfg.Seed ^ (uint64(bank)+1)*0x9E3779B97F4A7C15 ^ (uint64(row)+1)*0xBF58476D1CE4E5B9
	return rand.New(rand.NewPCG(k, k^0x94D049BB133111EB))
}

// VulnerableCells returns the vulnerable cells of one (bank, row),
// generating them deterministically on demand. Only rows that contain
// cells are cached: with realistic densities almost all rows are
// empty, and caching them would bloat a long profiling run. The
// returned slice must not be modified.
func (m *Module) VulnerableCells(bank, row int) []Cell {
	key := rowKey{bank, row}
	if cells, ok := m.rows[key]; ok {
		return cells
	}
	rng := m.rowRNG(bank, row)
	// Poisson sampling via inversion is overkill at these densities;
	// a two-draw Bernoulli mixture gives the same first two moments
	// for lambda << 1 while staying cheap and deterministic.
	n := 0
	lambda := m.cfg.CellsPerRow
	for lambda > 0 {
		p := lambda
		if p > 1 {
			p = 1
		}
		if rng.Float64() < p {
			n++
		}
		lambda -= 1
	}
	var cells []Cell
	if n > 0 {
		rowBits := int(m.Geo.RowBytesPerBank()) * 8
		cells = make([]Cell, 0, n)
		for i := 0; i < n; i++ {
			c := Cell{
				BitIndex:  rng.IntN(rowBits),
				Threshold: m.cfg.ThresholdMin + rng.Float64()*(m.cfg.ThresholdMax-m.cfg.ThresholdMin),
				Stable:    rng.Float64() < m.cfg.StableFraction,
				FlakyP:    m.cfg.FlakyP,
			}
			if rng.Float64() < 0.5 {
				c.Direction = FlipOneToZero
			} else {
				c.Direction = FlipZeroToOne
			}
			cells = append(cells, c)
		}
		sort.Slice(cells, func(i, j int) bool { return cells[i].BitIndex < cells[j].BitIndex })
		m.rows[key] = cells
	}
	return cells
}

// DefaultWindowActivations is the per-row activation budget of one
// 64 ms refresh window at back-to-back tRC (~47 ns) on DDR4-2666.
const DefaultWindowActivations = 1_360_000

// windowActivations returns the effective per-window activation cap.
func (m *Module) windowActivations() int {
	if m.cfg.WindowActivations > 0 {
		return m.cfg.WindowActivations
	}
	return DefaultWindowActivations
}

// RowRef names one DRAM row.
type RowRef struct {
	Bank, Row int
}

// CandidateFlip is a bit that the fault model reports as flipped by a
// hammer operation. Whether the flip is observable depends on the
// current content of the bit (direction filter), which the physical
// memory layer applies.
type CandidateFlip struct {
	// Addr is the physical address of the byte containing the cell.
	Addr memdef.HPA
	// Bit is the bit index within that byte (0..7).
	Bit uint
	// Direction is the only direction in which the cell flips.
	Direction FlipDirection
	// Row locates the victim cell for diagnostics.
	Row RowRef
}

// AddrOfCell converts a (bank, row, bitIndex) fault coordinate to a
// physical byte address and bit position, using the geometry's exact
// bank-function inverse.
func (m *Module) AddrOfCell(bank, row, bitIndex int) (memdef.HPA, uint) {
	byteInBankRow := bitIndex / 8
	line := byteInBankRow / LineSize
	byteInLine := byteInBankRow % LineSize
	a := m.Geo.ComposeLine(bank, row, line)
	return a + memdef.HPA(byteInLine), uint(bitIndex % 8)
}

// HammerOp describes one hammer operation: a set of aggressor rows
// each activated Rounds times within refresh windows. The operation
// models the paper's pattern of hammering two same-bank rows for
// 250,000 rounds.
type HammerOp struct {
	Aggressors []RowRef
	Rounds     int
	// rng drives unstable-cell flips; derived from op content when
	// nil so results stay deterministic.
	rng *rand.Rand
}

// Hammer evaluates the fault model for one hammer operation and
// returns the candidate flips in all victim rows. The disturbance on
// a victim row is the weighted sum of aggressor activations at row
// distance 1 and 2 within the same bank; a vulnerable cell flips when
// the disturbance reaches its threshold (always for stable cells, with
// probability FlakyP for unstable ones).
func (m *Module) Hammer(op HammerOp) []CandidateFlip {
	if op.Rounds <= 0 || len(op.Aggressors) == 0 {
		return nil
	}
	m.met.hammerOps.Inc()
	m.met.activations.Add(uint64(op.Activations()))
	// Deduplicate aggressor rows: repeated accesses to an already-open
	// row are row-buffer hits and cause no extra activations, so a
	// "pattern" naming the same row twice hammers no harder than one
	// naming it once. Alternating between two distinct same-bank rows
	// is what forces an activation per access.
	unique := make([]RowRef, 0, len(op.Aggressors))
	seenRows := make(map[RowRef]bool, len(op.Aggressors))
	for _, ag := range op.Aggressors {
		if !seenRows[ag] {
			seenRows[ag] = true
			unique = append(unique, ag)
		}
	}
	// Row buffers are per bank: a row alone in its bank stays open
	// across all accesses and activates only once per refresh window,
	// far too rarely to disturb neighbours. Only banks with at least
	// two accessed rows see an activation per access — which is why
	// the attack must place both aggressors in the same bank.
	perBank := make(map[int]int)
	for _, ag := range unique {
		perBank[ag.Bank]++
	}
	active := unique[:0]
	for _, ag := range unique {
		if perBank[ag.Bank] >= 2 {
			active = append(active, ag)
		}
	}
	if len(active) == 0 {
		return nil
	}

	// In-DRAM Target Row Refresh neutralizes tracked aggressors
	// (Section 6 mitigation discussion); only untracked ones disturb
	// their neighbours.
	m.ops++
	var preTRR []RowRef
	if m.flip != nil {
		// The flip sink wants the pre-TRR active set for provenance;
		// copy it before the filter reuses backing storage.
		preTRR = append(preTRR, active...)
	}
	tracked := len(active)
	active = m.cfg.TRR.trrFilter(active, m.ops)
	neutCount := tracked - len(active)
	m.met.trrNeutralized.Add(uint64(neutCount))
	m.met.trrRefreshes.Add(uint64(neutCount))
	// neutralized is computed only when a consumer needs it: the flip
	// sink's provenance stream, or the mitigation-veto audit.
	var neutralized []RowRef
	if neutCount > 0 && (m.flip != nil || m.met.trrVetoed != nil) {
		if preTRR == nil {
			// Metrics-only path: trrFilter never reorders survivors,
			// so the difference can be taken against the surviving
			// set without a pre-copy — but active aliases the same
			// backing as the pre-set only when TRR is off, and TRR is
			// on here, so trrFilter returned a fresh slice. Recompute
			// the pre-set from op.Aggressors' unique active rows.
			preTRR = make([]RowRef, 0, tracked)
			for _, ag := range unique {
				if perBank[ag.Bank] >= 2 {
					preTRR = append(preTRR, ag)
				}
			}
		}
		escaped := make(map[RowRef]bool, len(active))
		for _, ag := range active {
			escaped[ag] = true
		}
		for _, ag := range preTRR {
			if !escaped[ag] {
				neutralized = append(neutralized, ag)
			}
		}
	}
	if len(active) == 0 {
		// Fully neutralized: no disturbance accumulates, but the
		// provenance stream and the veto audit still see the op.
		rounds := op.Rounds
		if cap := m.windowActivations(); rounds > cap {
			rounds = cap
		}
		if m.flip != nil {
			m.flip.BeginHammerOp(FlipOpInfo{
				Aggressors: preTRR, Neutralized: neutralized,
				Rounds: op.Rounds, WindowRounds: rounds,
			})
		}
		m.auditTRRRefreshed(neutralized, nil, rounds, op.Aggressors)
		return nil
	}

	// Per-row activations cannot exceed the refresh-window budget:
	// beyond it the victim has been refreshed and the leak restarts.
	rounds := op.Rounds
	if cap := m.windowActivations(); rounds > cap {
		rounds = cap
		m.met.windowClips.Inc()
	}
	if m.flip != nil {
		aggs := preTRR
		if aggs == nil {
			aggs = active
		}
		m.flip.BeginHammerOp(FlipOpInfo{
			Aggressors: aggs, Neutralized: neutralized,
			Rounds: op.Rounds, WindowRounds: rounds,
		})
	}
	if m.sink != nil {
		// Post-TRR, post-clip: the sink sees the activations that
		// actually disturb neighbours, which is what a per-row
		// pressure watchpoint wants to compare against thresholds.
		for _, ag := range active {
			m.sink.RecordRowActivations(ag.Bank, ag.Row, int64(rounds))
		}
	}

	// Accumulate disturbance per victim row.
	dist := make(map[rowKey]float64)
	for _, ag := range active {
		for _, d := range []int{-2, -1, 1, 2} {
			v := ag.Row + d
			if v < 0 || v >= m.Geo.Rows() {
				continue
			}
			w := m.cfg.NeighborWeight1
			if d == 2 || d == -2 {
				w = m.cfg.NeighborWeight2
			}
			dist[rowKey{ag.Bank, v}] += w * float64(rounds)
		}
	}
	// Aggressor rows themselves are being driven, not disturbed.
	for _, ag := range op.Aggressors {
		delete(dist, rowKey{ag.Bank, ag.Row})
	}

	// Audit what TRR took away before evaluating what leaked through:
	// cells whose pre-TRR disturbance reached threshold but whose
	// post-TRR disturbance does not are mitigation-vetoed flips.
	m.auditTRRRefreshed(neutralized, dist, rounds, op.Aggressors)

	rng := op.rng
	if rng == nil {
		var h uint64 = m.cfg.Seed ^ 0xA24BAED4963EE407
		for _, ag := range op.Aggressors {
			h = h*0x100000001B3 ^ uint64(ag.Bank)
			h = h*0x100000001B3 ^ uint64(ag.Row)
		}
		h = h*0x100000001B3 ^ uint64(op.Rounds)
		h = h*0x100000001B3 ^ m.ops
		rng = rand.New(rand.NewPCG(h, h^0xD6E8FEB86659FD93))
	}

	// Deterministic victim iteration order.
	victims := make([]rowKey, 0, len(dist))
	for k := range dist {
		victims = append(victims, k)
	}
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].bank != victims[j].bank {
			return victims[i].bank < victims[j].bank
		}
		return victims[i].row < victims[j].row
	})

	var flips []CandidateFlip
	for _, v := range victims {
		disturbance := dist[v]
		for _, c := range m.VulnerableCells(v.bank, v.row) {
			if disturbance < c.Threshold {
				continue
			}
			if !c.Stable && rng.Float64() >= c.FlakyP {
				if m.flip != nil {
					addr, bit := m.AddrOfCell(v.bank, v.row, c.BitIndex)
					m.flip.RecordFlipEvent(FlipEvent{
						Addr: addr, Bit: bit, Direction: c.Direction,
						Row: RowRef{v.bank, v.row}, Disturbance: disturbance,
						Threshold: c.Threshold, Verdict: FlipFlakyNoFire,
					})
				}
				continue
			}
			addr, bit := m.AddrOfCell(v.bank, v.row, c.BitIndex)
			flips = append(flips, CandidateFlip{
				Addr:      addr,
				Bit:       bit,
				Direction: c.Direction,
				Row:       RowRef{v.bank, v.row},
			})
			if m.flip != nil {
				m.flip.RecordFlipEvent(FlipEvent{
					Addr: addr, Bit: bit, Direction: c.Direction,
					Row: RowRef{v.bank, v.row}, Disturbance: disturbance,
					Threshold: c.Threshold, Verdict: FlipFired,
				})
			}
		}
	}
	m.met.candFlips.Add(uint64(len(flips)))
	return flips
}

// auditTRRRefreshed finds the flips the TRR tracker vetoed in one
// operation: vulnerable cells whose disturbance would have reached
// threshold with the neutralized aggressors' contributions restored,
// but does not without them. It counts them in
// mitigation_vetoed_flips_total{mitigation="trr"} and streams
// trr-refreshed events to the flip sink. The audit consumes no RNG
// draws (flaky cells are reported as vetoed regardless of whether they
// would have fired: the mitigation removed the opportunity) and runs
// only when TRR neutralized something and a consumer is attached, so
// the default presets never pay for it.
func (m *Module) auditTRRRefreshed(neutralized []RowRef, dist map[rowKey]float64, rounds int, opAggs []RowRef) {
	if len(neutralized) == 0 || (m.flip == nil && m.met.trrVetoed == nil) {
		return
	}
	// Disturbance the neutralized aggressors would have contributed.
	neutDist := make(map[rowKey]float64)
	for _, ag := range neutralized {
		for _, d := range []int{-2, -1, 1, 2} {
			v := ag.Row + d
			if v < 0 || v >= m.Geo.Rows() {
				continue
			}
			w := m.cfg.NeighborWeight1
			if d == 2 || d == -2 {
				w = m.cfg.NeighborWeight2
			}
			neutDist[rowKey{ag.Bank, v}] += w * float64(rounds)
		}
	}
	for _, ag := range opAggs {
		delete(neutDist, rowKey{ag.Bank, ag.Row})
	}
	victims := make([]rowKey, 0, len(neutDist))
	for k := range neutDist {
		victims = append(victims, k)
	}
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].bank != victims[j].bank {
			return victims[i].bank < victims[j].bank
		}
		return victims[i].row < victims[j].row
	})
	vetoed := uint64(0)
	for _, v := range victims {
		pre := neutDist[v]
		post := 0.0
		if dist != nil {
			post = dist[v]
		}
		pre += post
		for _, c := range m.VulnerableCells(v.bank, v.row) {
			if pre < c.Threshold || post >= c.Threshold {
				continue
			}
			vetoed++
			if m.flip != nil {
				addr, bit := m.AddrOfCell(v.bank, v.row, c.BitIndex)
				m.flip.RecordFlipEvent(FlipEvent{
					Addr: addr, Bit: bit, Direction: c.Direction,
					Row: RowRef{v.bank, v.row}, Disturbance: pre,
					Threshold: c.Threshold, Verdict: FlipTRRRefreshed,
				})
			}
		}
	}
	m.met.trrVetoed.Add(vetoed)
}

// Activations returns the total DRAM activations an op performs, for
// virtual-clock charging.
func (op HammerOp) Activations() int64 {
	return int64(op.Rounds) * int64(len(op.Aggressors))
}
