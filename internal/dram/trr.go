package dram

import (
	"math/rand/v2"
)

// TRRConfig models in-DRAM Target Row Refresh, one of the two deployed
// hardware mitigations the paper's Section 6 discusses. Real TRR
// implementations keep a small per-bank tracker of frequently
// activated rows and refresh their neighbours before charge leakage
// accumulates; TRRespass (Frigo et al., cited by the paper) showed the
// tracker's limited capacity can be overwhelmed with many-sided
// patterns.
//
// The model: per hammer operation and bank, the tracker catches up to
// Slots aggressor rows (sampling uniformly when there are more) and
// neutralizes their disturbance contribution. A pattern with at most
// Slots aggressors per bank is fully mitigated; wider patterns leak
// the untracked aggressors' disturbance through.
type TRRConfig struct {
	// Slots is the per-bank tracker capacity. Production DDR4 parts
	// reverse engineered by TRRespass track on the order of 1-4
	// aggressors per bank.
	Slots int
	// Seed drives the sampling of which aggressors the tracker
	// catches when oversubscribed.
	Seed uint64
}

// trrFilter returns the aggressors whose disturbance escapes the
// tracker for one operation. ops is the module's operation nonce so
// sampling varies between repeated identical operations.
func (c *TRRConfig) trrFilter(aggressors []RowRef, ops uint64) []RowRef {
	if c == nil || c.Slots <= 0 {
		return aggressors
	}
	// Group per bank: the tracker is a per-bank structure.
	perBank := make(map[int][]RowRef)
	for _, ag := range aggressors {
		perBank[ag.Bank] = append(perBank[ag.Bank], ag)
	}
	var escaped []RowRef
	for bank, rows := range perBank {
		if len(rows) <= c.Slots {
			continue // fully tracked and neutralized
		}
		// Oversubscribed: the tracker samples Slots of them; the rest
		// escape. Deterministic per (seed, op, bank).
		h := c.Seed ^ ops*0x9E3779B97F4A7C15 ^ uint64(bank)*0xBF58476D1CE4E5B9
		rng := rand.New(rand.NewPCG(h, h^0x94D049BB133111EB))
		idx := rng.Perm(len(rows))
		for _, i := range idx[c.Slots:] {
			escaped = append(escaped, rows[i])
		}
	}
	// Keep input order for determinism downstream.
	if len(escaped) > 1 {
		ordered := escaped[:0]
		inEscaped := make(map[RowRef]bool, len(escaped))
		for _, r := range escaped {
			inEscaped[r] = true
		}
		for _, ag := range aggressors {
			if inEscaped[ag] {
				ordered = append(ordered, ag)
				delete(inEscaped, ag)
			}
		}
		escaped = ordered
	}
	return escaped
}
