package dram

// TRRConfig models in-DRAM Target Row Refresh, one of the two deployed
// hardware mitigations the paper's Section 6 discusses. Real TRR
// implementations keep a small per-bank tracker of frequently
// activated rows and refresh their neighbours before charge leakage
// accumulates; TRRespass (Frigo et al., cited by the paper) showed the
// tracker's limited capacity can be overwhelmed with many-sided
// patterns.
//
// The model: per hammer operation and bank, the tracker catches up to
// Slots aggressor rows (sampling uniformly when there are more) and
// neutralizes their disturbance contribution. A pattern with at most
// Slots aggressors per bank is fully mitigated; wider patterns leak
// the untracked aggressors' disturbance through.
type TRRConfig struct {
	// Slots is the per-bank tracker capacity. Production DDR4 parts
	// reverse engineered by TRRespass track on the order of 1-4
	// aggressors per bank.
	Slots int
	// Seed drives the sampling of which aggressors the tracker
	// catches when oversubscribed.
	Seed uint64
}

// trrScratch is the module-owned reusable state of one trrFilter call:
// the filter used to build two maps per oversubscribed op (ROADMAP
// item 5's top remaining hammer-path allocator). Aggressor sets are
// tiny, so membership is linear scans, like the batch path's
// containsRef.
type trrScratch struct {
	banks   []int32
	rows    []RowRef
	perm    []int
	escaped []RowRef
	ordered []RowRef
}

// trrFilter returns the aggressors whose disturbance escapes the
// tracker for one operation; the module's operation nonce keys the
// sampling so it varies between repeated identical operations. The
// returned slice is module-owned scratch, valid until the next call.
func (m *Module) trrFilter(aggressors []RowRef) []RowRef {
	c := m.cfg.TRR
	if c == nil || c.Slots <= 0 {
		return aggressors
	}
	if m.trrRand == nil {
		m.trrRand = newOpRand(&m.trrPCG)
	}
	t := &m.trr
	// Group per bank: the tracker is a per-bank structure. Banks are
	// visited in first-appearance order; per-bank sampling is
	// independently seeded and the final reorder restores input order,
	// so the output matches the old map-iteration version exactly.
	t.banks = t.banks[:0]
	for _, ag := range aggressors {
		if !hasBank(t.banks, int32(ag.Bank)) {
			t.banks = append(t.banks, int32(ag.Bank))
		}
	}
	t.escaped = t.escaped[:0]
	for _, b := range t.banks {
		bank := int(b)
		t.rows = t.rows[:0]
		for _, ag := range aggressors {
			if ag.Bank == bank {
				t.rows = append(t.rows, ag)
			}
		}
		if len(t.rows) <= c.Slots {
			continue // fully tracked and neutralized
		}
		// Oversubscribed: the tracker samples Slots of them; the rest
		// escape. Deterministic per (seed, op, bank). Reseeding the
		// module-owned PCG and shuffling an identity permutation draws
		// the exact stream rand.New(rand.NewPCG(h, ...)).Perm(n) did,
		// without the three allocations.
		h := c.Seed ^ m.ops*0x9E3779B97F4A7C15 ^ uint64(bank)*0xBF58476D1CE4E5B9
		m.trrPCG.Seed(h, h^0x94D049BB133111EB)
		t.perm = t.perm[:0]
		for i := range t.rows {
			t.perm = append(t.perm, i)
		}
		perm := t.perm
		m.trrRand.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for _, i := range perm[c.Slots:] {
			t.escaped = append(t.escaped, t.rows[i])
		}
	}
	// Keep input order for determinism downstream, deduplicating on
	// first hit like the old membership map's delete did.
	if len(t.escaped) > 1 {
		t.ordered = t.ordered[:0]
		for _, ag := range aggressors {
			if removeAllRefs(&t.escaped, ag) {
				t.ordered = append(t.ordered, ag)
			}
		}
		return t.ordered
	}
	return t.escaped
}

// removeAllRefs deletes every occurrence of r from *set (order not
// preserved) and reports whether any was present.
func removeAllRefs(set *[]RowRef, r RowRef) bool {
	s := *set
	found := false
	for i := 0; i < len(s); {
		if s[i] == r {
			s[i] = s[len(s)-1]
			s = s[:len(s)-1]
			found = true
			continue
		}
		i++
	}
	*set = s
	return found
}
