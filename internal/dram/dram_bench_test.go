package dram

import (
	"testing"

	"hyperhammer/internal/memdef"
)

func BenchmarkBankFunction(b *testing.B) {
	g := XeonE32124()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += g.Bank(memdef.HPA(i) * 64)
	}
	_ = sink
}

func BenchmarkComposeLine(b *testing.B) {
	g := CoreI310100()
	lines := g.LinesPerBankRow()
	var sink memdef.HPA
	for i := 0; i < b.N; i++ {
		sink += g.ComposeLine(i&31, i&65535, i%lines)
	}
	_ = sink
}

// benchPairs picks aggressor pairs whose ±2 neighborhoods carry no
// vulnerable cells, so the steady-state loop exercises the full
// pressure-spread and threshold-crossing machinery without the
// result-slice allocation a fired flip implies — the configuration the
// hotpath-gate's zero-alloc assertion measures. Selection is
// deterministic (it only consults the seeded cell population), and the
// probe warms the module's cell cache so no lazy generation happens
// inside the timed loop.
func benchPairs(m *Module, want int) [][2]RowRef {
	pairs := make([][2]RowRef, 0, want)
	for bank := 0; len(pairs) < want; bank++ {
		bank %= m.Geo.Banks()
		row := (len(pairs)*1117 + bank*37) % (m.Geo.Rows() - 4)
		clean := true
		for v := row - 2; v <= row+3; v++ {
			if v >= 0 && len(m.VulnerableCells(bank, v)) > 0 {
				clean = false
			}
		}
		if clean {
			pairs = append(pairs, [2]RowRef{{bank, row}, {bank, row + 1}})
		}
	}
	return pairs
}

func BenchmarkHammerOp(b *testing.B) {
	m := NewModule(CoreI310100(), S1FaultModel(1))
	pairs := benchPairs(m, 64)
	aggs := make([]RowRef, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i&63]
		aggs[0], aggs[1] = p[0], p[1]
		m.Hammer(HammerOp{Aggressors: aggs, Rounds: 250_000})
	}
}

func BenchmarkHammerBatch(b *testing.B) {
	m := NewModule(CoreI310100(), S1FaultModel(1))
	pairs := benchPairs(m, 64)
	ops := make([]HammerOp, len(pairs))
	aggs := make([]RowRef, 0, 2*len(pairs))
	for i, p := range pairs {
		off := len(aggs)
		aggs = append(aggs, p[0], p[1])
		ops[i] = HammerOp{Aggressors: aggs[off : off+2 : off+2], Rounds: 250_000}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.HammerBatch(ops)
	}
}

// nopSink is the cheapest possible flip-provenance consumer; its
// presence forces the TRR audit walk to run.
type nopSink struct{}

func (nopSink) BeginHammerOp(FlipOpInfo)  {}
func (nopSink) RecordFlipEvent(FlipEvent) {}

func BenchmarkHammerTRRAudit(b *testing.B) {
	cfg := S1FaultModel(1)
	cfg.TRR = &TRRConfig{Slots: 2, Seed: 7}
	m := NewModule(CoreI310100(), cfg)
	m.SetFlipSink(nopSink{})
	pairs := benchPairs(m, 64)
	aggs := make([]RowRef, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Two same-bank aggressors against a 2-slot tracker: fully
		// neutralized, so every op takes the audit path.
		p := pairs[i&63]
		aggs[0], aggs[1] = p[0], p[1]
		m.Hammer(HammerOp{Aggressors: aggs, Rounds: 250_000})
	}
}

func BenchmarkVulnerableCellsLookup(b *testing.B) {
	m := NewModule(CoreI310100(), S1FaultModel(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.VulnerableCells(i&31, (i*31)&65535)
	}
}
