package dram

import (
	"testing"

	"hyperhammer/internal/memdef"
)

func BenchmarkBankFunction(b *testing.B) {
	g := XeonE32124()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += g.Bank(memdef.HPA(i) * 64)
	}
	_ = sink
}

func BenchmarkComposeLine(b *testing.B) {
	g := CoreI310100()
	lines := g.LinesPerBankRow()
	var sink memdef.HPA
	for i := 0; i < b.N; i++ {
		sink += g.ComposeLine(i&31, i&65535, i%lines)
	}
	_ = sink
}

func BenchmarkHammerOp(b *testing.B) {
	m := NewModule(CoreI310100(), S1FaultModel(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row := (i * 37) % (m.Geo.Rows() - 4)
		op := HammerOp{
			Aggressors: []RowRef{{i & 31, row}, {i & 31, row + 1}},
			Rounds:     250_000,
		}
		m.Hammer(op)
	}
}

func BenchmarkVulnerableCellsLookup(b *testing.B) {
	m := NewModule(CoreI310100(), S1FaultModel(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.VulnerableCells(i&31, (i*31)&65535)
	}
}
