package dram

import (
	"math/rand/v2"
	"time"

	"hyperhammer/internal/memdef"
)

// Timing models the row-buffer side channel that DRAMDig-style tools
// use to reverse engineer the bank function (Section 5.1). Accessing
// two addresses in the same bank but different rows forces a row-buffer
// conflict (precharge + activate), which is measurably slower than a
// row hit or an access to a different bank.
type Timing struct {
	geo *Geometry
	rng *rand.Rand

	// HitLatency is the latency of a row-buffer hit or different-bank
	// access pair.
	HitLatency time.Duration
	// ConflictLatency is the latency of a same-bank different-row
	// access pair.
	ConflictLatency time.Duration
	// Jitter is the +/- uniform measurement noise added per probe,
	// modelling system-level interference on a real machine.
	Jitter time.Duration
}

// NewTiming builds a timing model for a geometry with DDR4-2666-like
// constants and a deterministic noise source.
func NewTiming(geo *Geometry, seed uint64) *Timing {
	return &Timing{
		geo:             geo,
		rng:             rand.New(rand.NewPCG(seed, seed^0x2545F4914F6CDD1D)),
		HitLatency:      230 * time.Nanosecond,
		ConflictLatency: 330 * time.Nanosecond,
		Jitter:          18 * time.Nanosecond,
	}
}

// ProbePair returns the measured latency of alternating accesses to a
// and b with cache flushes, the primitive DRAMDig measures.
func (t *Timing) ProbePair(a, b memdef.HPA) time.Duration {
	base := t.HitLatency
	if t.geo.Bank(a) == t.geo.Bank(b) && t.geo.Row(a) != t.geo.Row(b) {
		base = t.ConflictLatency
	}
	if t.Jitter > 0 {
		noise := time.Duration(t.rng.Int64N(int64(2*t.Jitter))) - t.Jitter
		base += noise
	}
	if base < 0 {
		base = 0
	}
	return base
}

// Conflicts reports ground truth for tests: whether a and b collide in
// a bank with different rows.
func (t *Timing) Conflicts(a, b memdef.HPA) bool {
	return t.geo.Bank(a) == t.geo.Bank(b) && t.geo.Row(a) != t.geo.Row(b)
}
