package dram

import (
	"testing"

	"hyperhammer/internal/memdef"
)

func geometries() []*Geometry {
	return []*Geometry{CoreI310100(), XeonE32124()}
}

func TestGeometryShape(t *testing.T) {
	for _, g := range geometries() {
		if got, want := g.Banks(), 32; got != want {
			t.Errorf("%s: Banks() = %d, want %d", g.Name, got, want)
		}
		if got, want := g.Rows(), 65536; got != want {
			t.Errorf("%s: Rows() = %d, want %d", g.Name, got, want)
		}
		if got, want := g.RowSpan(), uint64(256*memdef.KiB); got != want {
			t.Errorf("%s: RowSpan() = %d, want %d", g.Name, got, want)
		}
		if got, want := g.RowBytesPerBank(), uint64(8*memdef.KiB); got != want {
			t.Errorf("%s: RowBytesPerBank() = %d, want %d", g.Name, got, want)
		}
	}
}

// Each 2 MiB hugepage must contain exactly eight row-spans
// (Section 5.1: "each 2 MB hugepage contains eight rows").
func TestHugepageContainsEightRows(t *testing.T) {
	for _, g := range geometries() {
		base := memdef.HPA(6 * memdef.GiB)
		rows := map[int]bool{}
		for off := uint64(0); off < memdef.HugePageSize; off += g.RowSpan() {
			rows[g.Row(base+memdef.HPA(off))] = true
		}
		if len(rows) != 8 {
			t.Errorf("%s: hugepage spans %d rows, want 8", g.Name, len(rows))
		}
	}
}

// The bank function must be fully determined by the low 21 bits in a
// relative sense: two addresses that agree on bits >= 21 collide in a
// bank iff their low-21-bit bank contributions match. This is the
// property that THP profiling exploits (Section 4.1).
func TestBankRelativeToLow21Bits(t *testing.T) {
	for _, g := range geometries() {
		hugepages := []memdef.HPA{0, 2 * memdef.MiB, 512 * memdef.MiB, 7 * memdef.GiB}
		offsets := []uint64{0, 64, 4096, 1 << 13, 1 << 17, 1<<21 - 64}
		for _, o1 := range offsets {
			for _, o2 := range offsets {
				sameLow := g.Bank(memdef.HPA(o1)) == g.Bank(memdef.HPA(o2))
				for _, hp := range hugepages {
					got := g.Bank(hp+memdef.HPA(o1)) == g.Bank(hp+memdef.HPA(o2))
					if got != sameLow {
						t.Fatalf("%s: bank collision of offsets %#x,%#x differs at hugepage %#x", g.Name, o1, o2, hp)
					}
				}
			}
		}
	}
}

func TestBankDistributionUniform(t *testing.T) {
	for _, g := range geometries() {
		counts := make([]int, g.Banks())
		// Count over one full row-span at line granularity.
		for line := uint64(0); line < g.RowSpan()/LineSize; line++ {
			counts[g.Bank(memdef.HPA(line*LineSize))]++
		}
		want := int(g.RowSpan()/LineSize) / g.Banks()
		for b, c := range counts {
			if c != want {
				t.Errorf("%s: bank %d holds %d lines of a row-span, want %d", g.Name, b, c, want)
			}
		}
	}
}

// ComposeLine must be the exact inverse of (Bank, Row) at cache-line
// granularity, for rows whose bits feed back into the bank function
// (Xeon) and for rows that don't (i3).
func TestComposeLineInverse(t *testing.T) {
	for _, g := range geometries() {
		for _, row := range []int{0, 1, 7, 8, 4097, 65535} {
			for _, bank := range []int{0, 1, 13, 31} {
				for _, idx := range []int{0, 1, g.LinesPerBankRow() / 2, g.LinesPerBankRow() - 1} {
					a := g.ComposeLine(bank, row, idx)
					if got := g.Bank(a); got != bank {
						t.Fatalf("%s: ComposeLine(%d,%d,%d)=%#x has bank %d", g.Name, bank, row, idx, a, got)
					}
					if got := g.Row(a); got != row {
						t.Fatalf("%s: ComposeLine(%d,%d,%d)=%#x has row %d", g.Name, bank, row, idx, a, got)
					}
				}
			}
		}
	}
}

func TestComposeLineCoversBankRow(t *testing.T) {
	g := CoreI310100()
	seen := map[memdef.HPA]bool{}
	bank, row := 5, 1234
	for i := 0; i < g.LinesPerBankRow(); i++ {
		a := g.ComposeLine(bank, row, i)
		if seen[a] {
			t.Fatalf("duplicate address %#x from ComposeLine", a)
		}
		seen[a] = true
	}
	if got, want := len(seen)*LineSize, int(g.RowBytesPerBank()); got != want {
		t.Errorf("bank-row coverage %d bytes, want %d", got, want)
	}
}

func TestNewGeometryRejectsBadConfigs(t *testing.T) {
	cases := []Geometry{
		{Name: "no masks", Size: 1 << 30, RowShift: 18, RowBits: 12},
		{Name: "odd size", Size: 3 << 20, BankMasks: []uint64{1 << 6}, RowShift: 18, RowBits: 2},
		{Name: "sub-line mask", Size: 1 << 30, BankMasks: []uint64{1 << 3}, RowShift: 18, RowBits: 12},
		{Name: "rows mismatch", Size: 1 << 30, BankMasks: []uint64{1 << 6}, RowShift: 18, RowBits: 5},
	}
	for _, c := range cases {
		if _, err := NewGeometry(c); err == nil {
			t.Errorf("NewGeometry(%s): expected error", c.Name)
		}
	}
}
