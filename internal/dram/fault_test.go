package dram

import (
	"testing"

	"hyperhammer/internal/memdef"
)

func testModule(seed uint64) *Module {
	return NewModule(CoreI310100(), S1FaultModel(seed))
}

func TestVulnerableCellsDeterministic(t *testing.T) {
	m1 := testModule(42)
	m2 := testModule(42)
	// Visit in different orders; populations must agree.
	for _, bank := range []int{0, 7, 31} {
		for _, row := range []int{0, 100, 65535} {
			a := m1.VulnerableCells(bank, row)
			b := m2.VulnerableCells(31-bank, 65535-row) // decorrelate visit order
			_ = b
			b2 := m2.VulnerableCells(bank, row)
			if len(a) != len(b2) {
				t.Fatalf("cell count mismatch at bank=%d row=%d: %d vs %d", bank, row, len(a), len(b2))
			}
			for i := range a {
				if a[i] != b2[i] {
					t.Fatalf("cell %d mismatch at bank=%d row=%d", i, bank, row)
				}
			}
		}
	}
}

func TestCellPopulationDensity(t *testing.T) {
	m := testModule(1)
	total := 0
	const rows = 20000
	for r := 0; r < rows; r++ {
		total += len(m.VulnerableCells(r%32, r))
	}
	// Expected about rows * CellsPerRow = 52 cells; allow a wide band.
	if total < 20 || total > 120 {
		t.Errorf("vulnerable cells over %d rows = %d, want around 52", rows, total)
	}
}

func TestCellPopulationVariesWithSeed(t *testing.T) {
	a, b := testModule(1), testModule(2)
	same := 0
	checked := 0
	for r := 0; r < 50000; r++ {
		ca, cb := a.VulnerableCells(r%32, r), b.VulnerableCells(r%32, r)
		if len(ca) > 0 || len(cb) > 0 {
			checked++
			if len(ca) == len(cb) && len(ca) > 0 {
				same++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no vulnerable rows found")
	}
	if same == checked {
		t.Error("different seeds produced identical populations")
	}
}

// findVulnerableRow locates some row with at least one stable cell.
func findVulnerableRow(t *testing.T, m *Module, wantStable bool) (RowRef, Cell) {
	t.Helper()
	for r := 0; r < m.Geo.Rows(); r++ {
		for b := 0; b < m.Geo.Banks(); b++ {
			for _, c := range m.VulnerableCells(b, r) {
				if c.Stable == wantStable {
					return RowRef{b, r}, c
				}
			}
		}
	}
	t.Fatal("no vulnerable row in module")
	return RowRef{}, Cell{}
}

func TestHammerFlipsStableCellAboveThreshold(t *testing.T) {
	m := testModule(7)
	victim, cell := findVulnerableRow(t, m, true)
	op := HammerOp{
		Aggressors: []RowRef{{victim.Bank, victim.Row + 1}, {victim.Bank, victim.Row + 2}},
		Rounds:     500_000, // well above ThresholdMax with weight >= 1
	}
	flips := m.Hammer(op)
	found := false
	for _, f := range flips {
		if f.Row == victim {
			a, bit := m.AddrOfCell(victim.Bank, victim.Row, cell.BitIndex)
			if f.Addr == a && f.Bit == bit && f.Direction == cell.Direction {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("stable cell did not flip under %d rounds (threshold %.0f)", op.Rounds, cell.Threshold)
	}
}

func TestHammerBelowThresholdNoFlips(t *testing.T) {
	m := testModule(7)
	victim, _ := findVulnerableRow(t, m, true)
	op := HammerOp{
		Aggressors: []RowRef{{victim.Bank, victim.Row + 1}},
		Rounds:     1000, // far below ThresholdMin
	}
	if flips := m.Hammer(op); len(flips) != 0 {
		t.Errorf("got %d flips below threshold", len(flips))
	}
}

func TestHammerDoesNotFlipAggressorRows(t *testing.T) {
	m := testModule(7)
	victim, _ := findVulnerableRow(t, m, true)
	// Make the vulnerable row itself an aggressor.
	op := HammerOp{
		Aggressors: []RowRef{{victim.Bank, victim.Row}, {victim.Bank, victim.Row + 3}},
		Rounds:     1_000_000,
	}
	for _, f := range m.Hammer(op) {
		if f.Row == victim {
			t.Errorf("aggressor row %v reported as flipped", victim)
		}
	}
}

func TestHammerDeterministicWithoutRNG(t *testing.T) {
	m1, m2 := testModule(9), testModule(9)
	op := HammerOp{Aggressors: []RowRef{{3, 1000}, {3, 1001}}, Rounds: 400_000}
	f1, f2 := m1.Hammer(op), m2.Hammer(op)
	if len(f1) != len(f2) {
		t.Fatalf("flip counts differ: %d vs %d", len(f1), len(f2))
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Errorf("flip %d differs: %+v vs %+v", i, f1[i], f2[i])
		}
	}
}

func TestAddrOfCellRoundTrip(t *testing.T) {
	m := testModule(3)
	for _, bank := range []int{0, 17, 31} {
		for _, row := range []int{0, 512, 65535} {
			for _, bitIndex := range []int{0, 1, 8*1024*8 - 1, 12345} {
				a, bit := m.AddrOfCell(bank, row, bitIndex)
				if got := m.Geo.Bank(a); got != bank {
					t.Fatalf("AddrOfCell(%d,%d,%d)=%#x: bank %d", bank, row, bitIndex, a, got)
				}
				if got := m.Geo.Row(a); got != row {
					t.Fatalf("AddrOfCell(%d,%d,%d)=%#x: row %d", bank, row, bitIndex, a, got)
				}
				if bit != uint(bitIndex%8) {
					t.Fatalf("AddrOfCell bit = %d, want %d", bit, bitIndex%8)
				}
			}
		}
	}
}

func TestHammerOpActivations(t *testing.T) {
	op := HammerOp{Aggressors: []RowRef{{0, 1}, {0, 2}}, Rounds: 250000}
	if got, want := op.Activations(), int64(500000); got != want {
		t.Errorf("Activations() = %d, want %d", got, want)
	}
}

func TestS1S2PresetCharacter(t *testing.T) {
	// S2 should have both a denser population and far fewer stable
	// cells than S1 (Table 1 character).
	s1 := NewModule(CoreI310100(), S1FaultModel(5))
	s2 := NewModule(XeonE32124(), S2FaultModel(5))
	count := func(m *Module) (total, stable int) {
		for r := 0; r < 30000; r++ {
			for _, c := range m.VulnerableCells(r%32, r) {
				total++
				if c.Stable {
					stable++
				}
			}
		}
		return
	}
	t1, s1n := count(s1)
	t2, s2n := count(s2)
	if t2 <= t1 {
		t.Errorf("S2 total %d not above S1 total %d", t2, t1)
	}
	if t1 == 0 || t2 == 0 {
		t.Fatal("no cells sampled")
	}
	if float64(s1n)/float64(t1) <= float64(s2n)/float64(t2) {
		t.Errorf("S1 stable fraction %d/%d not above S2's %d/%d", s1n, t1, s2n, t2)
	}
}

func TestTimingModelSeparatesConflicts(t *testing.T) {
	g := CoreI310100()
	tm := NewTiming(g, 11)
	// Same bank, different row.
	conflict := g.ComposeLine(4, 100, 0)
	conflict2 := g.ComposeLine(4, 101, 0)
	hit := g.ComposeLine(5, 100, 0)
	if !tm.Conflicts(conflict, conflict2) {
		t.Fatal("expected row-buffer conflict")
	}
	if tm.Conflicts(conflict, hit) {
		t.Fatal("expected no conflict across banks")
	}
	// Averages over repeated probes must separate cleanly.
	var sumC, sumH int64
	const n = 200
	for i := 0; i < n; i++ {
		sumC += int64(tm.ProbePair(conflict, conflict2))
		sumH += int64(tm.ProbePair(conflict, hit))
	}
	if sumC <= sumH {
		t.Errorf("conflict mean %d not above hit mean %d", sumC/n, sumH/n)
	}
	_ = memdef.HPA(0)
}

// Hammering longer than one refresh window must not hammer harder:
// the victim's charge budget resets every tREFW.
func TestRefreshWindowCapsDisturbance(t *testing.T) {
	cfg := S1FaultModel(5)
	cfg.ThresholdMin = 2_000_000 // above the window budget
	cfg.ThresholdMax = 4_000_000
	cfg.CellsPerRow = 2.0
	cfg.StableFraction = 1.0
	m := NewModule(CoreI310100(), cfg)
	op := HammerOp{
		Aggressors: []RowRef{{3, 100}, {3, 101}},
		Rounds:     100_000_000, // absurd; must clamp to the window
	}
	if flips := m.Hammer(op); len(flips) != 0 {
		t.Errorf("%d flips from cells above the refresh-window budget", len(flips))
	}
	// With a raised window cap the same cells flip.
	cfg.WindowActivations = 10_000_000
	m2 := NewModule(CoreI310100(), cfg)
	if flips := m2.Hammer(op); len(flips) == 0 {
		t.Error("no flips despite raised window budget")
	}
}
