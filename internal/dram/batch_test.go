package dram

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"testing"

	"hyperhammer/internal/metrics"
	"hyperhammer/internal/sched"
)

// copySink records the flip-provenance stream with the borrowed Begin
// slices deep-copied: FlipOpInfo's aggressor slices alias module
// scratch that the next operation reuses, so a faithful recorder must
// copy them at delivery time.
type copySink struct {
	ops    []FlipOpInfo
	events []FlipEvent
}

func (s *copySink) BeginHammerOp(info FlipOpInfo) {
	info.Aggressors = append([]RowRef(nil), info.Aggressors...)
	info.Neutralized = append([]RowRef(nil), info.Neutralized...)
	s.ops = append(s.ops, info)
}

func (s *copySink) RecordFlipEvent(ev FlipEvent) { s.events = append(s.events, ev) }

// randomOps builds a deterministic adversarial op sequence: duplicate
// aggressors, singletons, empty sets, zero and negative rounds,
// over-window rounds, and rows clustered so blast radii overlap.
func randomOps(geo *Geometry, n int) []HammerOp {
	rng := rand.New(rand.NewPCG(0xBADC0FFEE, 0x5EED))
	ops := make([]HammerOp, 0, n)
	for i := 0; i < n; i++ {
		var op HammerOp
		switch rng.IntN(8) {
		case 0: // empty aggressor set
		case 1: // singleton, doubled (the classic a-vs-a shape)
			r := RowRef{rng.IntN(geo.Banks()), 8 + rng.IntN(64)}
			op.Aggressors = []RowRef{r, r}
		default:
			k := 1 + rng.IntN(4)
			for j := 0; j < k; j++ {
				op.Aggressors = append(op.Aggressors, RowRef{
					Bank: rng.IntN(geo.Banks()),
					Row:  8 + rng.IntN(64), // clustered: neighborhoods overlap
				})
			}
			if rng.IntN(3) == 0 { // duplicate an existing aggressor
				op.Aggressors = append(op.Aggressors, op.Aggressors[rng.IntN(len(op.Aggressors))])
			}
		}
		switch rng.IntN(6) {
		case 0:
			op.Rounds = 0
		case 1:
			op.Rounds = -3
		case 2:
			op.Rounds = DefaultWindowActivations + 500_000 // clips
		default:
			op.Rounds = 50_000 + rng.IntN(400_000)
		}
		ops = append(ops, op)
	}
	return ops
}

// TestHammerBatchMatchesSequential drives identical op sequences
// through the per-op and batched entry points on twin modules and
// requires byte-identical candidate flips, flip-event streams, and
// metrics snapshots, across TRR on/off, sink attached/detached, and
// both bank geometries.
func TestHammerBatchMatchesSequential(t *testing.T) {
	geometries := map[string]func() *Geometry{
		"corei3": CoreI310100,
		"xeone3": XeonE32124,
	}
	for geoName, geoFn := range geometries {
		for _, trrOn := range []bool{false, true} {
			for _, sinkOn := range []bool{false, true} {
				name := fmt.Sprintf("%s/trr=%v/sink=%v", geoName, trrOn, sinkOn)
				t.Run(name, func(t *testing.T) {
					cfg := S2FaultModel(11)
					// Thresholds low enough that the clustered rows
					// actually fire, exercising the RNG-draw paths.
					cfg.ThresholdMin, cfg.ThresholdMax = 60_000, 250_000
					if trrOn {
						cfg.TRR = &TRRConfig{Slots: 1, Seed: 99}
					}
					seq := NewModule(geoFn(), cfg)
					bat := NewModule(geoFn(), cfg)

					var seqSink, batSink *copySink
					if sinkOn {
						seqSink, batSink = &copySink{}, &copySink{}
						seq.SetFlipSink(seqSink)
						bat.SetFlipSink(batSink)
					}
					seqReg, batReg := metrics.New(), metrics.New()
					seq.SetMetrics(seqReg)
					bat.SetMetrics(batReg)

					ops := randomOps(seq.Geo, 160)
					var seqFlips, batFlips []CandidateFlip
					for _, op := range ops {
						seqFlips = append(seqFlips, seq.Hammer(op)...)
					}
					// Varying chunk sizes: batches of 1, small batches,
					// and one large tail batch.
					chunks := []int{1, 1, 3, 7, 16, len(ops)}
					for i := 0; i < len(ops); {
						n := chunks[0]
						chunks = chunks[1:]
						if n > len(ops)-i {
							n = len(ops) - i
						}
						batFlips = append(batFlips, bat.HammerBatch(ops[i:i+n])...)
						i += n
					}

					if !reflect.DeepEqual(seqFlips, batFlips) {
						t.Fatalf("candidate flips diverge:\nseq: %d flips %+v\nbat: %d flips %+v",
							len(seqFlips), seqFlips, len(batFlips), batFlips)
					}
					if sinkOn {
						if !reflect.DeepEqual(seqSink.ops, batSink.ops) {
							t.Fatalf("BeginHammerOp streams diverge:\nseq: %+v\nbat: %+v", seqSink.ops, batSink.ops)
						}
						if !reflect.DeepEqual(seqSink.events, batSink.events) {
							t.Fatalf("flip-event streams diverge:\nseq: %+v\nbat: %+v", seqSink.events, batSink.events)
						}
					}
					if sr, br := seqReg.Snapshot().Rows(), batReg.Snapshot().Rows(); !reflect.DeepEqual(sr, br) {
						t.Fatalf("metrics snapshots diverge:\nseq: %v\nbat: %v", sr, br)
					}
				})
			}
		}
	}
}

// TestHammerBatchSharded runs the same batch through an unsharded
// module and one sharding the per-bank pass across 4 workers, and
// requires identical flips, events, and metrics. Run under -race this
// also checks the sharded pass for data races.
func TestHammerBatchSharded(t *testing.T) {
	cfg := S2FaultModel(11)
	cfg.ThresholdMin, cfg.ThresholdMax = 60_000, 250_000
	cfg.TRR = &TRRConfig{Slots: 1, Seed: 99}

	run := func(workers int) ([]CandidateFlip, *copySink, [][4]string) {
		m := NewModule(CoreI310100(), cfg)
		sink := &copySink{}
		m.SetFlipSink(sink)
		reg := metrics.New()
		m.SetMetrics(reg)
		if workers > 0 {
			m.SetShardRunner(sched.New(workers))
		}
		ops := randomOps(m.Geo, 200)
		var flips []CandidateFlip
		for i := 0; i < len(ops); i += 25 {
			flips = append(flips, m.HammerBatch(ops[i:i+25])...)
		}
		return flips, sink, reg.Snapshot().Rows()
	}

	f1, s1, m1 := run(0) // inline pass
	f4, s4, m4 := run(4) // sharded pass
	if !reflect.DeepEqual(f1, f4) {
		t.Fatalf("sharded flips diverge: %d vs %d", len(f1), len(f4))
	}
	if !reflect.DeepEqual(s1.ops, s4.ops) || !reflect.DeepEqual(s1.events, s4.events) {
		t.Fatalf("sharded flip streams diverge")
	}
	if !reflect.DeepEqual(m1, m4) {
		t.Fatalf("sharded metrics diverge:\n1: %v\n4: %v", m1, m4)
	}
}
