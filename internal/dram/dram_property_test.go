package dram

import (
	"testing"
	"testing/quick"

	"hyperhammer/internal/memdef"
)

// Property: (Bank, Row) -> ComposeLine -> (Bank, Row) is the identity
// for arbitrary coordinates on both real geometries.
func TestPropertyComposeLineInverse(t *testing.T) {
	for _, geo := range []*Geometry{CoreI310100(), XeonE32124()} {
		geo := geo
		f := func(bankRaw, rowRaw, idxRaw uint32) bool {
			bank := int(bankRaw) % geo.Banks()
			row := int(rowRaw) % geo.Rows()
			idx := int(idxRaw) % geo.LinesPerBankRow()
			a := geo.ComposeLine(bank, row, idx)
			return geo.Bank(a) == bank && geo.Row(a) == row && geo.Contains(a)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: %v", geo.Name, err)
		}
	}
}

// Property: AddrOfCell places every cell coordinate at an address in
// the right bank and row with the right bit position.
func TestPropertyAddrOfCellRoundTrip(t *testing.T) {
	m := NewModule(XeonE32124(), S2FaultModel(3))
	rowBits := int(m.Geo.RowBytesPerBank()) * 8
	f := func(bankRaw, rowRaw uint16, bitRaw uint32) bool {
		bank := int(bankRaw) % m.Geo.Banks()
		row := int(rowRaw) % m.Geo.Rows()
		bitIndex := int(bitRaw) % rowBits
		a, bit := m.AddrOfCell(bank, row, bitIndex)
		return m.Geo.Bank(a) == bank && m.Geo.Row(a) == row && bit == uint(bitIndex%8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the bank-collision relation within a hugepage depends only
// on the low 21 address bits, for arbitrary hugepage bases and
// offsets — the THP profiling precondition.
func TestPropertyBankCollisionLow21(t *testing.T) {
	for _, geo := range []*Geometry{CoreI310100(), XeonE32124()} {
		geo := geo
		f := func(baseRaw uint32, o1Raw, o2Raw uint32) bool {
			base := memdef.HPA(baseRaw%(uint32(geo.Size>>memdef.HugePageShift))) << memdef.HugePageShift
			o1 := memdef.HPA(o1Raw % memdef.HugePageSize &^ 63)
			o2 := memdef.HPA(o2Raw % memdef.HugePageSize &^ 63)
			absolute := geo.Bank(base+o1) == geo.Bank(base+o2)
			relative := geo.Bank(o1) == geo.Bank(o2)
			return absolute == relative
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: %v", geo.Name, err)
		}
	}
}

// Property: a hammer operation's candidate flips always land in rows
// adjacent (distance 1 or 2) to an aggressor in the same bank, never
// in the aggressor rows themselves.
func TestPropertyFlipsNearAggressors(t *testing.T) {
	m := NewModule(CoreI310100(), FaultModelConfig{
		Seed: 4, CellsPerRow: 1.5,
		ThresholdMin: 10_000, ThresholdMax: 60_000,
		StableFraction: 0.8, FlakyP: 0.5,
		NeighborWeight1: 1.0, NeighborWeight2: 0.25,
	})
	f := func(bankRaw, rowRaw uint16) bool {
		bank := int(bankRaw) % m.Geo.Banks()
		row := int(rowRaw)%(m.Geo.Rows()-8) + 4
		op := HammerOp{
			Aggressors: []RowRef{{bank, row}, {bank, row + 1}},
			Rounds:     250_000,
		}
		for _, fl := range m.Hammer(op) {
			if fl.Row.Bank != bank {
				return false
			}
			d := fl.Row.Row - row
			if d >= 0 && d <= 1 {
				return false // aggressor rows must not flip
			}
			if d < -2 || d > 3 {
				return false // beyond blast radius
			}
			// The reported address must decode back to the victim row.
			if m.Geo.Bank(fl.Addr) != bank || m.Geo.Row(fl.Addr) != fl.Row.Row {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
