// Package dram models the DRAM subsystem of the simulated machine:
// the physical-address-to-DRAM mapping (bank and row functions), the
// row-buffer timing behaviour that DRAMDig-style tools observe, and a
// seeded Rowhammer fault model that decides which cells flip under
// which hammer patterns.
//
// The two concrete geometries correspond to the paper's evaluation
// machines (Section 5.1): the Intel Core i3-10100 (S1) and the Intel
// Xeon E3-2124 (S2), both with two 8 GiB DDR4-2666 DIMMs. The bank
// address functions are the ones the paper reverse engineered with
// DRAMDig; both use only address bits below 21, which is the property
// that makes THP-based profiling possible.
package dram

import (
	"fmt"
	"math/bits"

	"hyperhammer/internal/memdef"
)

// Geometry describes how host physical addresses map onto DRAM banks
// and rows for one machine configuration.
//
// The model follows the paper's findings: a set of XOR functions over
// physical address bits selects the bank, and bits RowShift..RowTop
// select the row number. Consecutive row numbers within the same bank
// are physically adjacent, which is what Rowhammer adjacency means
// here.
type Geometry struct {
	// Name identifies the processor the geometry models.
	Name string
	// Size is the total memory size in bytes. Must be a power of two.
	Size uint64
	// BankMasks holds one XOR mask per bank-number bit: bank bit i is
	// the XOR (parity) of the physical address bits selected by
	// BankMasks[i].
	BankMasks []uint64
	// RowShift is the lowest physical address bit of the row number.
	RowShift uint
	// RowBits is the number of row-number bits.
	RowBits uint

	// lineOffsets[b] lists, for bank b, the offsets (in units of one
	// 64-byte cache line) within a row-span that map to bank b. It is
	// the precomputed inverse of the bank function, used to convert a
	// (bank, row, bit) fault coordinate back to a physical address.
	lineOffsets [][]uint32
}

// LineSize is the granularity at which the bank function is constant:
// no modelled bank mask uses address bits below 6.
const LineSize = 64

// NewGeometry validates and finishes a geometry description,
// precomputing the bank-function inverse.
func NewGeometry(g Geometry) (*Geometry, error) {
	if g.Size == 0 || g.Size&(g.Size-1) != 0 {
		return nil, fmt.Errorf("dram: size %#x is not a power of two", g.Size)
	}
	if len(g.BankMasks) == 0 {
		return nil, fmt.Errorf("dram: geometry %q has no bank masks", g.Name)
	}
	for i, m := range g.BankMasks {
		if m == 0 {
			return nil, fmt.Errorf("dram: bank mask %d is zero", i)
		}
		if m&(LineSize-1) != 0 {
			return nil, fmt.Errorf("dram: bank mask %d (%#x) uses sub-cacheline bits", i, m)
		}
	}
	if g.RowShift == 0 || g.RowBits == 0 {
		return nil, fmt.Errorf("dram: geometry %q missing row layout", g.Name)
	}
	if uint64(1)<<(g.RowShift+g.RowBits) != g.Size {
		return nil, fmt.Errorf("dram: row bits %d..%d do not cover size %#x",
			g.RowShift, g.RowShift+g.RowBits-1, g.Size)
	}

	// Invert the bank function within one row-span. The bank value of
	// an address depends on bits inside the row-span (below RowShift)
	// and possibly on row bits (the Xeon's last mask mixes bits 18/19
	// in); the inverse is computed per row-parity class lazily in
	// ComposeLine. Here we precompute the span-internal contribution
	// split by bank for the common case where row bits contribute a
	// fixed XOR that ComposeLine folds in.
	spanLines := (uint64(1) << g.RowShift) / LineSize
	g.lineOffsets = make([][]uint32, g.Banks())
	for line := uint64(0); line < spanLines; line++ {
		b := g.bankOfSpanLine(line)
		g.lineOffsets[b] = append(g.lineOffsets[b], uint32(line))
	}
	return &g, nil
}

// MustGeometry is NewGeometry that panics on error, for the package's
// own predefined configurations.
func MustGeometry(g Geometry) *Geometry {
	out, err := NewGeometry(g)
	if err != nil {
		panic(err)
	}
	return out
}

// Banks returns the number of banks (2^len(BankMasks)).
func (g *Geometry) Banks() int { return 1 << len(g.BankMasks) }

// Rows returns the number of rows per bank.
func (g *Geometry) Rows() int { return 1 << g.RowBits }

// RowSpan returns the size in bytes of one row-span: the contiguous
// physical address range that shares a single row number across all
// banks. (256 KiB on both modelled machines.)
func (g *Geometry) RowSpan() uint64 { return 1 << g.RowShift }

// RowBytesPerBank returns how many bytes of one row-span live in each
// bank — the DRAM row size as seen by the hammer model.
func (g *Geometry) RowBytesPerBank() uint64 { return g.RowSpan() / uint64(g.Banks()) }

// Bank returns the bank number of physical address a.
func (g *Geometry) Bank(a memdef.HPA) int {
	b := 0
	for i, m := range g.BankMasks {
		b |= int(bits.OnesCount64(uint64(a)&m)&1) << i
	}
	return b
}

// Row returns the row number of physical address a.
func (g *Geometry) Row(a memdef.HPA) int {
	return int((uint64(a) >> g.RowShift) & ((1 << g.RowBits) - 1))
}

// bankOfSpanLine computes the bank of a line offset within a row-span,
// considering only the address bits below RowShift. Row-bit
// contributions are handled by ComposeLine / Bank.
func (g *Geometry) bankOfSpanLine(line uint64) int {
	return g.Bank(memdef.HPA(line * LineSize))
}

// rowXORContribution returns the bank-number XOR contribution of the
// row bits of row r (relevant for geometries like the Xeon whose bank
// masks include bits >= RowShift).
func (g *Geometry) rowXORContribution(row int) int {
	a := uint64(row) << g.RowShift
	b := 0
	for i, m := range g.BankMasks {
		hi := m &^ ((1 << g.RowShift) - 1)
		b |= int(bits.OnesCount64(a&hi)&1) << i
	}
	return b
}

// LinesPerBankRow returns the number of cache lines of one row that
// map to one bank (the length of each inverse class).
func (g *Geometry) LinesPerBankRow() int { return len(g.lineOffsets[0]) }

// ComposeLine returns the physical address of the idx-th cache line of
// (bank, row). idx ranges over [0, LinesPerBankRow()). It is the exact
// inverse of (Bank, Row) at line granularity.
func (g *Geometry) ComposeLine(bank, row, idx int) memdef.HPA {
	// The span-internal class was computed with row bits zero. For a
	// nonzero row the row bits XOR-shift the bank value, so the lines
	// that land in `bank` for this row are the class of
	// bank ^ rowContribution.
	class := bank ^ g.rowXORContribution(row)
	lines := g.lineOffsets[class]
	return memdef.HPA(uint64(row)<<g.RowShift + uint64(lines[idx])*LineSize)
}

// SameBank reports whether two addresses share a DRAM bank.
func (g *Geometry) SameBank(a, b memdef.HPA) bool { return g.Bank(a) == g.Bank(b) }

// Contains reports whether a falls inside the modelled memory.
func (g *Geometry) Contains(a memdef.HPA) bool { return uint64(a) < g.Size }

func maskOf(bits ...uint) uint64 {
	var m uint64
	for _, b := range bits {
		m |= 1 << b
	}
	return m
}

// CoreI310100 returns the geometry of evaluation machine S1: Intel
// Core i3-10100 with 16 GiB DDR4-2666. Bank function per Section 5.1:
// bits (17,21), (16,20), (15,19), (14,18), (6,13); rows on bits 18-33.
func CoreI310100() *Geometry {
	return MustGeometry(Geometry{
		Name: "Intel Core i3-10100 (S1)",
		Size: 16 * memdef.GiB,
		BankMasks: []uint64{
			maskOf(17, 21),
			maskOf(16, 20),
			maskOf(15, 19),
			maskOf(14, 18),
			maskOf(6, 13),
		},
		RowShift: 18,
		RowBits:  16,
	})
}

// XeonE32124 returns the geometry of evaluation machine S2: Intel Xeon
// E3-2124 with 16 GiB DDR4-2666. Bank function per Section 5.1: bits
// (17,20), (16,19), (15,18), (7,14), (8,9,12,13,18,19); rows on bits
// 18-33.
func XeonE32124() *Geometry {
	return MustGeometry(Geometry{
		Name: "Intel Xeon E3-2124 (S2)",
		Size: 16 * memdef.GiB,
		BankMasks: []uint64{
			maskOf(17, 20),
			maskOf(16, 19),
			maskOf(15, 18),
			maskOf(7, 14),
			maskOf(8, 9, 12, 13, 18, 19),
		},
		RowShift: 18,
		RowBits:  16,
	})
}
