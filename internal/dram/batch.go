package dram

import (
	"math"

	"hyperhammer/internal/memdef"
	"hyperhammer/internal/sched"
)

// Ledger verdict codes for the dram.flip stream, mirroring the
// FlipFired / FlipFlakyNoFire / FlipTRRRefreshed string verdicts as
// foldable words.
const (
	ledVerdictFired = uint64(iota + 1)
	ledVerdictFlakyNoFire
	ledVerdictTRRRefreshed
)

// The batch pipeline evaluates hammer operations in three phases:
//
//	A (sequential) — per-op bookkeeping whose order is semantic:
//	  aggressor dedup, per-bank row-buffer filtering, the operation
//	  nonce, TRR filtering (whose per-bank sampling is keyed by the
//	  nonce), refresh-window clipping. Produces a batchOp per op plus
//	  flat RowRef storage, and registers each op with the banks it
//	  pressures.
//
//	B (per bank, shardable) — disturbance accumulation and the
//	  threshold-crossing pass. Each bank independently walks its ops,
//	  spreads aggressor pressure into the bank's struct-of-arrays
//	  scratch, and records every cell whose disturbance crosses its
//	  threshold (plus the TRR-vetoed audit hits) as cellRecords. No
//	  RNG, no metrics, no sink calls — phase B is pure with respect to
//	  everything outside its bank, which is why SetShardRunner can fan
//	  it across workers without reordering anything observable.
//
//	C (sequential) — emission. Per op in submission order: the
//	  caller's pre hook (clock charging), metrics, flip-sink events,
//	  activation-sink feed, the flaky-cell RNG draws over the merged
//	  per-bank records (banks ascending, rows ascending — exactly the
//	  sequential victim order), and delivery of the op's candidate
//	  flips. All RNG draws happen here, on the merge-ordered path, so
//	  results are byte-identical at any worker count.
//
// Hammer is this pipeline run over a single op; HammerBatch amortizes
// phase overhead across many ops that share a refresh window.

// batchOp kinds, in escalating amounts of observable work.
const (
	// opInvalid: Rounds <= 0 or no aggressors; no metrics, no nonce.
	opInvalid = uint8(iota)
	// opInactive: no bank has two distinct aggressor rows, so no
	// activations disturb anyone; op metrics only, no nonce.
	opInactive
	// opFullyNeut: TRR neutralized every active aggressor; metrics,
	// provenance and veto audit, but no disturbance and no RNG.
	opFullyNeut
	// opNormal: disturbance leaks through; the full evaluation.
	opNormal
)

// batchOp is one operation's phase-A verdict. The RowRef sets live in
// batchScratch.refs as (offset, length) windows: the flat slice grows
// (and may reallocate) while later ops are analyzed, so records hold
// offsets, never subslices.
type batchOp struct {
	kind uint8
	// clipped marks ops whose rounds exceeded the refresh window.
	clipped bool
	// h seeds the op's flaky-cell RNG (opNormal only).
	h uint64
	// acts is the op's total DRAM activations (metrics/clock).
	acts int64
	// rounds is as requested; wrounds after window clipping.
	rounds, wrounds int
	// neutCount is how many active aggressors TRR neutralized.
	neutCount int
	// active: the post-dedup, post-bank-filter, post-TRR aggressors.
	activeOff, activeLen int32
	// pre: the pre-TRR active set (== active when TRR is off). This
	// is the exclusion set for victim walks and the provenance
	// stream's aggressor list.
	preOff, preLen int32
	// neut: the neutralized aggressors, in pre order; computed only
	// when a consumer (flip sink or veto-audit metric) is attached.
	neutOff, neutLen int32
}

// cellRecord is one phase-B threshold crossing, waiting for phase C to
// draw its flaky outcome (main records) or emit its veto event (audit
// records). op orders records within a bank; the address is
// precomputed because AddrOfCell is pure.
type cellRecord struct {
	op     int32
	row    int32
	addr   memdef.HPA
	bit    uint8
	dir    FlipDirection
	stable bool
	flakyP float64
	dist   float64
	thr    float64
}

// batchScratch is the module-owned reusable state of one batch run.
type batchScratch struct {
	// epoch stamps the current batch; bankStates joining it compare
	// and reset their buffers lazily.
	epoch uint64
	ops   []batchOp
	// refs is the flat RowRef storage all batchOp windows index.
	refs []RowRef
	// unique is the per-op dedup scratch.
	unique []RowRef
	// banksUsed lists the banks with phase-B work, sorted ascending
	// before evaluation so the phase-C merge order is deterministic.
	banksUsed []int32
	units     []sched.Unit
	// one adapts the single-op Hammer call onto the pipeline.
	one [1]HammerOp
}

// SetShardRunner installs (or, with nil, removes) the worker pool that
// shards the batched per-bank crossing pass. Results are byte-
// identical at any worker count: phase B touches only bank-local
// state, and every RNG draw and event emission happens on the
// merge-ordered sequential path (phase C).
func (m *Module) SetShardRunner(r *sched.Runner) { m.shard = r }

// HammerBatch evaluates a batch of hammer operations that share a
// refresh window and returns the concatenation of their candidate
// flips, exactly as len(ops) sequential Hammer calls would produce
// them. Per-op phase overhead (scratch resets, bank registration) is
// amortized across the batch, and the threshold-crossing pass is
// sharded per bank when a shard runner is installed.
func (m *Module) HammerBatch(ops []HammerOp) []CandidateFlip {
	m.lastFlips = nil
	if m.deliverConcat == nil {
		m.deliverConcat = func(_ int, flips []CandidateFlip) error {
			m.lastFlips = append(m.lastFlips, flips...)
			return nil
		}
	}
	_ = m.runBatch(ops, nil, m.deliverConcat)
	return m.lastFlips
}

// HammerBatchFunc is the explicit-flush batch interface: pre(i), when
// non-nil, runs before op i's effects become observable (the hook
// where the caller charges sim-clock time and its own metrics, so
// flip events carry the same timestamps as sequential submission),
// and deliver(i, flips) receives op i's candidate flips (nil when the
// op produced none). A deliver error aborts the remaining ops
// unevaluated, matching a sequential caller that stops submitting on
// the first failure.
func (m *Module) HammerBatchFunc(ops []HammerOp, pre func(i int), deliver func(i int, flips []CandidateFlip) error) error {
	return m.runBatch(ops, pre, deliver)
}

// regBank joins bank b to the current batch (resetting its buffers if
// it last worked an older batch) and appends op index i to its work
// list.
func (m *Module) regBank(b int, i int32) {
	bs := m.bank(b)
	s := &m.bat
	if bs.epoch != s.epoch {
		bs.epoch = s.epoch
		bs.opIdx = bs.opIdx[:0]
		bs.recs = bs.recs[:0]
		bs.arecs = bs.arecs[:0]
		bs.mCur, bs.aCur = 0, 0
		s.banksUsed = append(s.banksUsed, int32(b))
	}
	if n := len(bs.opIdx); n == 0 || bs.opIdx[n-1] != i {
		bs.opIdx = append(bs.opIdx, i)
	}
}

// containsRef reports membership in a (tiny) RowRef set.
func containsRef(set []RowRef, r RowRef) bool {
	for _, x := range set {
		if x == r {
			return true
		}
	}
	return false
}

// runBatch is the pipeline. See the package comment at the top of
// this file for the phase contract.
func (m *Module) runBatch(ops []HammerOp, pre func(i int), deliver func(i int, flips []CandidateFlip) error) error {
	s := &m.bat
	s.epoch++
	s.ops = s.ops[:0]
	s.refs = s.refs[:0]
	s.banksUsed = s.banksUsed[:0]
	if m.opRand == nil {
		m.opRand = newOpRand(&m.opPCG)
	}
	consumer := m.flip != nil || m.met.trrVetoed != nil || m.ledFlip != nil

	// Phase A: sequential bookkeeping.
	for i := range ops {
		op := &ops[i]
		bop := batchOp{kind: opInvalid, rounds: op.Rounds}
		if op.Rounds <= 0 || len(op.Aggressors) == 0 {
			s.ops = append(s.ops, bop)
			continue
		}
		bop.kind = opInactive
		bop.acts = op.Activations()
		// Deduplicate aggressor rows: repeated accesses to an
		// already-open row are row-buffer hits and cause no extra
		// activations. Aggressor sets are tiny, so the quadratic
		// scans beat a map by a wide margin.
		s.unique = s.unique[:0]
		for _, ag := range op.Aggressors {
			if !containsRef(s.unique, ag) {
				s.unique = append(s.unique, ag)
			}
		}
		// Row buffers are per bank: a row alone in its bank stays
		// open and activates only once per refresh window, far too
		// rarely to disturb neighbours. Only banks with at least two
		// accessed rows see an activation per access — which is why
		// the attack must place both aggressors in the same bank.
		aOff := int32(len(s.refs))
		for _, u := range s.unique {
			n := 0
			for _, v := range s.unique {
				if v.Bank == u.Bank {
					n++
				}
			}
			if n >= 2 {
				s.refs = append(s.refs, u)
			}
		}
		aLen := int32(len(s.refs)) - aOff
		if aLen == 0 {
			s.ops = append(s.ops, bop)
			continue
		}
		m.ops++
		bop.activeOff, bop.activeLen = aOff, aLen
		// In-DRAM Target Row Refresh neutralizes tracked aggressors;
		// only untracked ones disturb their neighbours. The filter's
		// per-bank sampling is keyed by this op's nonce, so it must
		// run here, in submission order.
		if m.cfg.TRR != nil && m.cfg.TRR.Slots > 0 {
			bop.preOff = int32(len(s.refs))
			s.refs = append(s.refs, s.refs[aOff:aOff+aLen]...)
			bop.preLen = aLen
			filtered := m.trrFilter(s.refs[bop.preOff : bop.preOff+bop.preLen])
			copy(s.refs[aOff:], filtered)
			bop.activeLen = int32(len(filtered))
			bop.neutCount = int(aLen) - len(filtered)
		} else {
			bop.preOff, bop.preLen = aOff, aLen
		}
		// The neutralized set (pre order) is materialized only when
		// the provenance stream or the veto audit will read it.
		if bop.neutCount > 0 && consumer {
			bop.neutOff = int32(len(s.refs))
			preS := s.refs[bop.preOff : bop.preOff+bop.preLen]
			actS := s.refs[bop.activeOff : bop.activeOff+bop.activeLen]
			for _, p := range preS {
				if !containsRef(actS, p) {
					s.refs = append(s.refs, p)
				}
			}
			bop.neutLen = int32(len(s.refs)) - bop.neutOff
		}
		// Per-row activations cannot exceed the refresh-window
		// budget: beyond it the victim has been refreshed and the
		// leak restarts.
		bop.wrounds = op.Rounds
		if lim := m.windowActivations(); bop.wrounds > lim {
			bop.wrounds = lim
			bop.clipped = true
		}
		if bop.activeLen == 0 {
			bop.kind = opFullyNeut
		} else {
			bop.kind = opNormal
			// The flaky-cell RNG is keyed by the op's raw content
			// (duplicates included) and its nonce, so a repeated
			// identical op draws fresh outcomes.
			h := m.cfg.Seed ^ 0xA24BAED4963EE407
			for _, ag := range op.Aggressors {
				h = h*0x100000001B3 ^ uint64(ag.Bank)
				h = h*0x100000001B3 ^ uint64(ag.Row)
			}
			h = h*0x100000001B3 ^ uint64(op.Rounds)
			h = h*0x100000001B3 ^ m.ops
			bop.h = h
		}
		idx := int32(len(s.ops))
		for _, ag := range s.refs[bop.activeOff : bop.activeOff+bop.activeLen] {
			m.regBank(ag.Bank, idx)
		}
		for _, ag := range s.refs[bop.neutOff : bop.neutOff+bop.neutLen] {
			m.regBank(ag.Bank, idx)
		}
		s.ops = append(s.ops, bop)
	}

	// Phase B: per-bank crossing pass, sharded when a runner is
	// installed and more than one bank has work.
	sortBanks(s.banksUsed)
	if m.shard != nil && m.shard.Workers() > 1 && len(s.banksUsed) > 1 {
		s.units = s.units[:0]
		for _, b := range s.banksUsed {
			bank := int(b)
			s.units = append(s.units, sched.Unit{
				Name: "dram-bank",
				Run: func() (any, error) {
					m.evalBank(bank)
					return nil, nil
				},
			})
		}
		// Units cannot fail; ignore the impossible error.
		_ = m.shard.Run(s.units, nil)
	} else {
		for _, b := range s.banksUsed {
			m.evalBank(int(b))
		}
	}

	// Phase C: in-order emission.
	for i := range s.ops {
		if pre != nil {
			pre(i)
		}
		bop := &s.ops[i]
		if bop.kind == opInvalid {
			if deliver != nil {
				if err := deliver(i, nil); err != nil {
					return err
				}
			}
			continue
		}
		m.met.hammerOps.Inc()
		m.met.activations.Add(uint64(bop.acts))
		if bop.kind == opInactive {
			if deliver != nil {
				if err := deliver(i, nil); err != nil {
					return err
				}
			}
			continue
		}
		m.met.trrNeutralized.Add(uint64(bop.neutCount))
		m.met.trrRefreshes.Add(uint64(bop.neutCount))
		if bop.kind == opNormal && bop.clipped {
			m.met.windowClips.Inc()
		}
		if m.flip != nil {
			var neut []RowRef
			if bop.neutLen > 0 {
				neut = s.refs[bop.neutOff : bop.neutOff+bop.neutLen]
			}
			m.flip.BeginHammerOp(FlipOpInfo{
				Aggressors:   s.refs[bop.preOff : bop.preOff+bop.preLen],
				Neutralized:  neut,
				Rounds:       bop.rounds,
				WindowRounds: bop.wrounds,
			})
		}
		if bop.kind == opNormal && (m.sink != nil || m.ledRow != nil) {
			// Post-TRR, post-clip: the sink sees the activations that
			// actually disturb neighbours, which is what a per-row
			// pressure watchpoint wants to compare against thresholds.
			// The ledger folds the same row-state emission.
			for _, ag := range s.refs[bop.activeOff : bop.activeOff+bop.activeLen] {
				if m.sink != nil {
					m.sink.RecordRowActivations(ag.Bank, ag.Row, int64(bop.wrounds))
				}
				m.ledRow.Fold3(uint64(ag.Bank), uint64(ag.Row), uint64(bop.wrounds))
			}
		}
		// Audit what TRR took away before evaluating what leaked
		// through: banks ascending, rows ascending within each —
		// the sequential audit's sorted victim order.
		if bop.neutLen > 0 && consumer {
			vetoed := uint64(0)
			for _, b := range s.banksUsed {
				bs := &m.banks[b]
				for bs.aCur < len(bs.arecs) && bs.arecs[bs.aCur].op == int32(i) {
					r := &bs.arecs[bs.aCur]
					bs.aCur++
					vetoed++
					m.ledFlip.Fold3(uint64(r.addr), uint64(r.bit), ledVerdictTRRRefreshed)
					if m.flip != nil {
						m.flip.RecordFlipEvent(FlipEvent{
							Addr: r.addr, Bit: uint(r.bit), Direction: r.dir,
							Row: RowRef{int(b), int(r.row)}, Disturbance: r.dist,
							Threshold: r.thr, Verdict: FlipTRRRefreshed,
						})
					}
				}
			}
			m.met.trrVetoed.Add(vetoed)
		}
		if bop.kind == opFullyNeut {
			if deliver != nil {
				if err := deliver(i, nil); err != nil {
					return err
				}
			}
			continue
		}
		// Main crossing records: the merge over sorted banks replays
		// the sequential walk's (bank, row) victim order, so the RNG
		// consumes draws in exactly the same sequence.
		m.opPCG.Seed(bop.h, bop.h^0xD6E8FEB86659FD93)
		rng := m.opRand
		var flips []CandidateFlip
		for _, b := range s.banksUsed {
			bs := &m.banks[b]
			for bs.mCur < len(bs.recs) && bs.recs[bs.mCur].op == int32(i) {
				r := &bs.recs[bs.mCur]
				bs.mCur++
				row := RowRef{int(b), int(r.row)}
				fired := true
				if !r.stable {
					// The draw happens regardless of the ledger; the
					// fold only observes its bits (zero perturbation).
					v := rng.Float64()
					m.ledRNG.Fold1(math.Float64bits(v))
					fired = v < r.flakyP
				}
				if !fired {
					m.ledFlip.Fold3(uint64(r.addr), uint64(r.bit), ledVerdictFlakyNoFire)
					if m.flip != nil {
						m.flip.RecordFlipEvent(FlipEvent{
							Addr: r.addr, Bit: uint(r.bit), Direction: r.dir,
							Row: row, Disturbance: r.dist,
							Threshold: r.thr, Verdict: FlipFlakyNoFire,
						})
					}
					continue
				}
				flips = append(flips, CandidateFlip{
					Addr:      r.addr,
					Bit:       uint(r.bit),
					Direction: r.dir,
					Row:       row,
				})
				m.ledFlip.Fold3(uint64(r.addr), uint64(r.bit), ledVerdictFired)
				if m.flip != nil {
					m.flip.RecordFlipEvent(FlipEvent{
						Addr: r.addr, Bit: uint(r.bit), Direction: r.dir,
						Row: row, Disturbance: r.dist,
						Threshold: r.thr, Verdict: FlipFired,
					})
				}
			}
		}
		m.met.candFlips.Add(uint64(len(flips)))
		if deliver != nil {
			if err := deliver(i, flips); err != nil {
				return err
			}
		}
	}
	return nil
}

// evalBank runs phase B for one bank: per registered op, spread the
// op's in-bank aggressor pressure into the struct-of-arrays scratch
// and record every threshold crossing. Touches only this bank's state
// plus immutable module config — safe to run concurrently with other
// banks.
func (m *Module) evalBank(bank int) {
	bs := &m.banks[bank]
	s := &m.bat
	maxRow := m.Geo.Rows()
	consumer := m.flip != nil || m.met.trrVetoed != nil || m.ledFlip != nil
	for _, oi := range bs.opIdx {
		bop := &s.ops[oi]
		pre := s.refs[bop.preOff : bop.preOff+bop.preLen]
		c1 := m.cfg.NeighborWeight1 * float64(bop.wrounds)
		c2 := m.cfg.NeighborWeight2 * float64(bop.wrounds)
		// Accumulate disturbance per victim row from the aggressors
		// that leaked through TRR.
		bs.vRows, bs.vPres = bs.vRows[:0], bs.vPres[:0]
		for _, ag := range s.refs[bop.activeOff : bop.activeOff+bop.activeLen] {
			if ag.Bank == bank {
				addPressure(&bs.vRows, &bs.vPres, ag.Row, maxRow, c1, c2)
			}
		}
		// Veto audit: cells whose disturbance would have reached
		// threshold with the neutralized aggressors' contributions
		// restored, but does not without them. Consumes no RNG.
		if bop.neutLen > 0 && consumer {
			bs.aRows, bs.aPres = bs.aRows[:0], bs.aPres[:0]
			for _, ag := range s.refs[bop.neutOff : bop.neutOff+bop.neutLen] {
				if ag.Bank == bank {
					addPressure(&bs.aRows, &bs.aPres, ag.Row, maxRow, c1, c2)
				}
			}
			sortRowsPres(bs.aRows, bs.aPres)
			for vi, vr := range bs.aRows {
				v := int(vr)
				// Aggressor rows themselves are being driven, not
				// disturbed; the pre-TRR active set covers every
				// aggressor of a bank that has any pressure.
				if rowExcluded(pre, bank, v) {
					continue
				}
				post := 0.0
				for j, r := range bs.vRows {
					if r == vr {
						post = bs.vPres[j]
						break
					}
				}
				preD := bs.aPres[vi] + post
				for _, c := range m.cellsForRow(bs, bank, v) {
					if preD < c.Threshold || post >= c.Threshold {
						continue
					}
					addr, bit := m.AddrOfCell(bank, v, c.BitIndex)
					bs.arecs = append(bs.arecs, cellRecord{
						op: oi, row: vr, addr: addr, bit: uint8(bit),
						dir: c.Direction, dist: preD, thr: c.Threshold,
					})
				}
			}
		}
		if bop.kind != opNormal {
			continue
		}
		// Main crossing pass, victims in row order.
		sortRowsPres(bs.vRows, bs.vPres)
		for vi, vr := range bs.vRows {
			v := int(vr)
			if rowExcluded(pre, bank, v) {
				continue
			}
			d := bs.vPres[vi]
			for _, c := range m.cellsForRow(bs, bank, v) {
				if d < c.Threshold {
					continue
				}
				addr, bit := m.AddrOfCell(bank, v, c.BitIndex)
				bs.recs = append(bs.recs, cellRecord{
					op: oi, row: vr, addr: addr, bit: uint8(bit),
					dir: c.Direction, stable: c.Stable, flakyP: c.FlakyP,
					dist: d, thr: c.Threshold,
				})
			}
		}
	}
}
