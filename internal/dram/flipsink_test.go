package dram

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"hyperhammer/internal/metrics"
	"hyperhammer/internal/report"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// recordingSink captures the flip-provenance stream for assertions.
type recordingSink struct {
	ops    []FlipOpInfo
	events []FlipEvent
}

func (s *recordingSink) BeginHammerOp(info FlipOpInfo) { s.ops = append(s.ops, info) }
func (s *recordingSink) RecordFlipEvent(ev FlipEvent)  { s.events = append(s.events, ev) }

func (s *recordingSink) byVerdict(v string) []FlipEvent {
	var out []FlipEvent
	for _, ev := range s.events {
		if ev.Verdict == v {
			out = append(out, ev)
		}
	}
	return out
}

// TestFlipSinkFiredMatchesCandidates checks that every candidate flip
// Hammer returns is mirrored by a fired event carrying the op's
// aggressor provenance and the disturbance that fired the cell.
func TestFlipSinkFiredMatchesCandidates(t *testing.T) {
	m := testModule(7)
	sink := &recordingSink{}
	m.SetFlipSink(sink)
	victim, _ := findVulnerableRow(t, m, true)
	op := HammerOp{
		Aggressors: []RowRef{{victim.Bank, victim.Row + 1}, {victim.Bank, victim.Row + 2}},
		Rounds:     500_000,
	}
	flips := m.Hammer(op)
	if len(flips) == 0 {
		t.Fatal("no candidate flips")
	}
	if len(sink.ops) != 1 {
		t.Fatalf("BeginHammerOp calls = %d, want 1", len(sink.ops))
	}
	info := sink.ops[0]
	if !reflect.DeepEqual(info.Aggressors, op.Aggressors) {
		t.Errorf("op aggressors = %v, want %v", info.Aggressors, op.Aggressors)
	}
	if info.Rounds != op.Rounds || info.WindowRounds != op.Rounds {
		t.Errorf("op rounds = %d/%d, want %d/%d", info.Rounds, info.WindowRounds, op.Rounds, op.Rounds)
	}
	fired := sink.byVerdict(FlipFired)
	if len(fired) != len(flips) {
		t.Fatalf("fired events = %d, candidate flips = %d", len(fired), len(flips))
	}
	for i, f := range flips {
		ev := fired[i]
		if ev.Addr != f.Addr || ev.Bit != f.Bit || ev.Direction != f.Direction || ev.Row != f.Row {
			t.Errorf("fired event %d = %+v does not match candidate %+v", i, ev, f)
		}
		if ev.Disturbance < ev.Threshold {
			t.Errorf("fired event %d below threshold: %.0f < %.0f", i, ev.Disturbance, ev.Threshold)
		}
	}
}

// TestFlipSinkFlakyNoFire checks that unstable cells pushed past
// threshold emit flaky-no-fire events on the ops where they hold.
// Each op salts its RNG with the op counter, so with FlakyP=0.35 a
// short run of repeated ops sees both outcomes.
func TestFlipSinkFlakyNoFire(t *testing.T) {
	m := testModule(7)
	sink := &recordingSink{}
	m.SetFlipSink(sink)
	victim, cell := findVulnerableRow(t, m, false)
	op := HammerOp{
		Aggressors: []RowRef{{victim.Bank, victim.Row + 1}, {victim.Bank, victim.Row + 2}},
		Rounds:     500_000,
	}
	for i := 0; i < 20; i++ {
		m.Hammer(op)
	}
	addr, bit := m.AddrOfCell(victim.Bank, victim.Row, cell.BitIndex)
	noFire := 0
	for _, ev := range sink.byVerdict(FlipFlakyNoFire) {
		if ev.Addr == addr && ev.Bit == bit {
			noFire++
		}
	}
	if noFire == 0 {
		t.Error("flaky cell never reported flaky-no-fire across 20 ops")
	}
	if noFire == 20 {
		t.Error("flaky cell never fired across 20 ops (FlakyP=0.35)")
	}
}

// TestFlipSinkTRRRefreshed drives a 3-sided pattern into a 2-slot TRR
// tracker and checks the mitigation-veto audit: cells that would have
// fired without the tracker emit trr-refreshed events with the pre-TRR
// disturbance, and the mitigation counters advance.
func TestFlipSinkTRRRefreshed(t *testing.T) {
	cfg := S1FaultModel(7)
	cfg.TRR = &TRRConfig{Slots: 2, Seed: 7}
	m := NewModule(CoreI310100(), cfg)
	reg := metrics.New()
	m.SetMetrics(reg)
	sink := &recordingSink{}
	m.SetFlipSink(sink)

	victim, _ := findVulnerableRow(t, m, true)
	op := HammerOp{
		// Three same-bank aggressors oversubscribe the 2-slot tracker:
		// exactly one escapes per op, the other two are neutralized.
		Aggressors: []RowRef{
			{victim.Bank, victim.Row + 1},
			{victim.Bank, victim.Row + 2},
			{victim.Bank, victim.Row - 2},
		},
		Rounds: 500_000,
	}
	for i := 0; i < 8; i++ {
		m.Hammer(op)
	}

	refreshed := sink.byVerdict(FlipTRRRefreshed)
	if len(refreshed) == 0 {
		t.Fatal("no trr-refreshed events across 8 oversubscribed ops")
	}
	for _, ev := range refreshed {
		if ev.Disturbance < ev.Threshold {
			t.Errorf("vetoed event pre-TRR disturbance %.0f below threshold %.0f", ev.Disturbance, ev.Threshold)
		}
	}
	for _, info := range sink.ops {
		if len(info.Aggressors) != 3 {
			t.Errorf("op reported %d aggressors, want the pre-TRR set of 3", len(info.Aggressors))
		}
		if len(info.Neutralized) != 2 {
			t.Errorf("op reported %d neutralized rows, want 2", len(info.Neutralized))
		}
	}

	counters := map[string]float64{}
	for _, row := range reg.Snapshot().Rows() {
		if strings.HasPrefix(row[0], "mitigation_") {
			v, err := strconv.ParseFloat(row[3], 64)
			if err != nil {
				t.Fatalf("unparseable counter value %q: %v", row[3], err)
			}
			counters[row[0]+"{"+row[1]+"}"] = v
		}
	}
	if got := counters["mitigation_trr_refreshes_total{-}"]; got != 16 {
		t.Errorf("mitigation_trr_refreshes_total = %v, want 16 (2 rows x 8 ops)", got)
	}
	if got := counters["mitigation_vetoed_flips_total{mitigation=trr}"]; got != float64(len(refreshed)) {
		t.Errorf("mitigation_vetoed_flips_total{mitigation=trr} = %v, want %d", got, len(refreshed))
	}
}

// TestMitigationMetricsGolden pins the rendered metrics table of a
// deterministic TRR-mitigated hammer sequence — the operator-facing
// contract for the mitigation_* counter family. Regenerate with
// `go test ./internal/dram -run TestMitigationMetricsGolden -update`.
func TestMitigationMetricsGolden(t *testing.T) {
	cfg := S1FaultModel(7)
	cfg.TRR = &TRRConfig{Slots: 2, Seed: 7}
	m := NewModule(CoreI310100(), cfg)
	reg := metrics.New()
	m.SetMetrics(reg)

	victim, _ := findVulnerableRow(t, m, true)
	op := HammerOp{
		Aggressors: []RowRef{
			{victim.Bank, victim.Row + 1},
			{victim.Bank, victim.Row + 2},
			{victim.Bank, victim.Row - 2},
		},
		Rounds: 500_000,
	}
	for i := 0; i < 8; i++ {
		m.Hammer(op)
	}

	got := report.MetricsTable(reg.Snapshot()).String()
	golden := filepath.Join("testdata", "mitigation_metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("mitigation metrics drifted from golden file:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestFlipSinkZeroPerturbation is the observation-never-perturbs
// contract at the dram layer: an identical op sequence produces
// byte-identical candidate flips with and without a sink attached.
func TestFlipSinkZeroPerturbation(t *testing.T) {
	run := func(sink FlipSink) [][]CandidateFlip {
		m := testModule(11)
		m.SetFlipSink(sink)
		victim, _ := findVulnerableRow(t, m, false)
		var out [][]CandidateFlip
		for i := 0; i < 10; i++ {
			out = append(out, m.Hammer(HammerOp{
				Aggressors: []RowRef{{victim.Bank, victim.Row + 1}, {victim.Bank, victim.Row + 2}},
				Rounds:     500_000,
			}))
		}
		return out
	}
	bare := run(nil)
	observed := run(&recordingSink{})
	if !reflect.DeepEqual(bare, observed) {
		t.Error("attaching a flip sink changed Hammer results")
	}
}
