// Package sched is a deterministic parallel unit scheduler: it fans
// independent units of work across a bounded worker pool and hands
// their results back in declaration order, so callers that fold
// results as they are delivered observe exactly the sequential
// execution's order no matter how many workers ran or how completion
// interleaved.
//
// The determinism contract rests on three properties:
//
//   - Units are started in index order off one feed channel, so the
//     set of started units is always a prefix of the declaration
//     order.
//
//   - Results are buffered and delivered strictly in index order; a
//     completed unit waits until every earlier unit has been
//     delivered.
//
//   - On failure the feed stops (no new units start, in-flight units
//     finish), and the error reported is always the lowest-index
//     failing unit's — which, because started units form a prefix, is
//     the same unit the sequential run would have failed on.
//
// Units themselves must be independent: anything they share must be
// immutable or internally synchronized, and anything order-sensitive
// (telemetry merging, table assembly) belongs in the deliver callback,
// which runs on the caller's goroutine in index order.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Unit is one independent piece of work. Run's return value is handed
// to the deliver callback untouched.
type Unit struct {
	// Name identifies the unit in error paths and progress logs.
	Name string
	// Run executes the unit. It is called at most once, possibly on a
	// worker goroutine.
	Run func() (any, error)
}

// Runner executes unit batches on a bounded worker pool.
type Runner struct {
	workers int
}

// New creates a runner with the given pool size. workers <= 0 selects
// GOMAXPROCS, the number of CPUs the runtime will actually use.
func New(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers}
}

// Workers returns the pool size.
func (r *Runner) Workers() int { return r.workers }

// result carries one unit's outcome to the collector.
type result struct {
	i   int
	v   any
	err error
}

// Run executes every unit and calls deliver(index, value) for each, in
// strict index order, on the calling goroutine. deliver may be nil.
// The first error — from the lowest-index failing unit, or from
// deliver itself — stops the feed; units already in flight finish but
// their results past the failure point are discarded. Errors are
// returned as produced, without additional wrapping.
func (r *Runner) Run(units []Unit, deliver func(i int, v any) error) error {
	_, err := r.RunTimed(units, deliver)
	return err
}

// RunTimed is Run plus host-cost telemetry: it records, for every
// unit, which worker ran it and when (wall clock, relative to batch
// start), when it was delivered, and the process CPU consumed across
// the whole batch. Timing is pure observation — timestamps are taken
// around the existing engine without adding any synchronization on
// the delivery path, so the determinism contract (index-ordered
// delivery, first-declared-error) is untouched.
//
// The returned Schedule is always non-nil, even when the batch failed:
// units that never started carry Worker == -1 and Started == false.
func (r *Runner) RunTimed(units []Unit, deliver func(i int, v any) error) (*Schedule, error) {
	sc := &Schedule{Units: make([]UnitTiming, len(units))}
	for i := range sc.Units {
		sc.Units[i] = UnitTiming{Index: i, Name: units[i].Name, Worker: -1}
	}
	if len(units) == 0 {
		return sc, nil
	}
	workers := r.workers
	if workers > len(units) {
		workers = len(units)
	}
	sc.Workers = workers
	start := time.Now()
	cpu0 := cpuSeconds()
	since := func() float64 { return time.Since(start).Seconds() }
	finish := func(err error) (*Schedule, error) {
		sc.WallSeconds = since()
		sc.CPUSeconds = cpuSeconds() - cpu0
		return sc, err
	}
	if workers <= 1 {
		// Sequential fast path: same contract, no goroutines.
		for i, u := range units {
			ut := &sc.Units[i]
			ut.Worker, ut.Started = 0, true
			ut.StartSeconds = since()
			v, err := u.Run()
			ut.EndSeconds = since()
			if err != nil {
				return finish(err)
			}
			ut.DeliverStartSeconds = ut.EndSeconds
			if deliver != nil {
				if err := deliver(i, v); err != nil {
					ut.DeliverEndSeconds = since()
					return finish(err)
				}
			}
			ut.DeliverEndSeconds = since()
			ut.Delivered = true
		}
		return finish(nil)
	}

	var stop atomic.Bool
	feed := make(chan int) // unbounded start is exactly what determinism forbids
	results := make(chan result, len(units))
	var wg sync.WaitGroup

	go func() {
		for i := range units {
			if stop.Load() {
				break
			}
			feed <- i
		}
		close(feed)
	}()

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			for i := range feed {
				// Each timing slot is written by exactly one worker and
				// read only after its result crosses the channel (or
				// after the channel closes), so no lock is needed and
				// delivery never waits on instrumentation.
				ut := &sc.Units[i]
				ut.Worker, ut.Started = w, true
				ut.StartSeconds = since()
				v, err := units[i].Run()
				ut.EndSeconds = since()
				if err != nil {
					stop.Store(true)
				}
				results <- result{i: i, v: v, err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	pending := make(map[int]result, workers)
	next := 0
	var firstErr error
	errIdx := len(units) // index of the lowest failing unit seen so far
	for res := range results {
		if res.err != nil && res.i < errIdx {
			errIdx = res.i
			firstErr = res.err
		}
		pending[res.i] = res
		for {
			cur, ok := pending[next]
			if !ok || next >= errIdx {
				break
			}
			delete(pending, next)
			next++
			ut := &sc.Units[cur.i]
			ut.DeliverStartSeconds = since()
			if deliver != nil {
				if err := deliver(cur.i, cur.v); err != nil {
					// A deliver failure at this index outranks any unit
					// failure at a higher index: in the sequential run it
					// would have happened first.
					stop.Store(true)
					errIdx = cur.i
					firstErr = err
					ut.DeliverEndSeconds = since()
					break
				}
			}
			ut.DeliverEndSeconds = since()
			ut.Delivered = true
		}
	}
	return finish(firstErr)
}
