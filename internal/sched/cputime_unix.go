//go:build unix

package sched

import "syscall"

// cpuSeconds returns the process's cumulative CPU time (user + system)
// in seconds. RunTimed uses the delta across a batch as the host-CPU
// figure; 0 on error keeps the schedule usable.
func cpuSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return timevalSeconds(ru.Utime) + timevalSeconds(ru.Stime)
}

func timevalSeconds(tv syscall.Timeval) float64 {
	return float64(tv.Sec) + float64(tv.Usec)/1e6
}
