//go:build !unix

package sched

// cpuSeconds has no portable implementation off unix; schedules carry
// CPUSeconds == 0 there and consumers treat it as "unavailable".
func cpuSeconds() float64 { return 0 }
