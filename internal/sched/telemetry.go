package sched

// Host-cost telemetry types. All timestamps are host wall-clock
// seconds relative to the batch's start, captured by RunTimed. They
// describe where *host* time went — the simulated clock is a different
// axis entirely — so none of these figures may ever be folded into
// simulated output (see the DESIGN fidelity rules).

// UnitTiming is one unit's host-side schedule record.
type UnitTiming struct {
	// Index is the unit's declaration index; Name its display name.
	Index int    `json:"index"`
	Name  string `json:"name"`
	// Worker is the pool slot that ran the unit (-1 if it never
	// started, e.g. because an earlier unit failed).
	Worker int `json:"worker"`
	// StartSeconds..EndSeconds bracket the unit's Run call.
	StartSeconds float64 `json:"startSeconds"`
	EndSeconds   float64 `json:"endSeconds"`
	// DeliverStartSeconds..DeliverEndSeconds bracket the deliver
	// callback (telemetry merge + result store), which runs on the
	// caller's goroutine in index order.
	DeliverStartSeconds float64 `json:"deliverStartSeconds"`
	DeliverEndSeconds   float64 `json:"deliverEndSeconds"`
	// Started and Delivered record how far the unit got; on a failed
	// batch trailing units may be neither.
	Started   bool `json:"started"`
	Delivered bool `json:"delivered"`
}

// RunSeconds is the unit's host wall-clock execution time.
func (u UnitTiming) RunSeconds() float64 { return u.EndSeconds - u.StartSeconds }

// QueueWaitSeconds is how long the unit sat declared-but-unstarted:
// every unit is registered before the batch starts, so the wait is
// simply its start offset.
func (u UnitTiming) QueueWaitSeconds() float64 { return u.StartSeconds }

// DeliverHoldSeconds is how long the completed unit's result waited
// for every earlier unit to be delivered (the price of index-ordered
// determinism).
func (u UnitTiming) DeliverHoldSeconds() float64 {
	if !u.Delivered {
		return 0
	}
	return u.DeliverStartSeconds - u.EndSeconds
}

// DeliverSeconds is the host time spent inside the deliver callback.
func (u UnitTiming) DeliverSeconds() float64 {
	return u.DeliverEndSeconds - u.DeliverStartSeconds
}

// Schedule is the whole batch's host-side execution record.
type Schedule struct {
	// Workers is the effective pool size (min of the runner's size and
	// the unit count).
	Workers int `json:"workers"`
	// WallSeconds is the batch's host wall-clock duration;
	// CPUSeconds the process CPU (user+system) consumed across it.
	// CPU is process-wide — Go offers no per-goroutine CPU clock — so
	// it includes whatever else the process did meanwhile.
	WallSeconds float64 `json:"wallSeconds"`
	CPUSeconds  float64 `json:"cpuSeconds"`
	// Units is the per-unit timing table, in declaration order.
	Units []UnitTiming `json:"units"`
}

// BusySeconds sums every started unit's run time: the work the pool
// actually executed, regardless of how it was spread across workers.
func (s *Schedule) BusySeconds() float64 {
	var t float64
	for _, u := range s.Units {
		if u.Started {
			t += u.RunSeconds()
		}
	}
	return t
}

// WorkerBusySeconds returns per-worker busy time (indexed by worker
// slot): the occupancy timeline's row sums.
func (s *Schedule) WorkerBusySeconds() []float64 {
	busy := make([]float64, s.Workers)
	for _, u := range s.Units {
		if u.Started && u.Worker >= 0 && u.Worker < len(busy) {
			busy[u.Worker] += u.RunSeconds()
		}
	}
	return busy
}
