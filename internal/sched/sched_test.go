package sched

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync/atomic"
	"testing"
	"time"
)

// TestDeterministicOrderUnderRandomDelays: units complete in random
// order (injected sleeps), but delivery must be strictly 0..n-1 with
// each unit's own value.
func TestDeterministicOrderUnderRandomDelays(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewPCG(7, 7))
	units := make([]Unit, n)
	for i := range units {
		i := i
		delay := time.Duration(rng.IntN(3000)) * time.Microsecond
		units[i] = Unit{
			Name: fmt.Sprintf("u%d", i),
			Run: func() (any, error) {
				time.Sleep(delay)
				return i * 10, nil
			},
		}
	}
	var got []int
	err := New(8).Run(units, func(i int, v any) error {
		got = append(got, v.(int))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("delivered %d results, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i*10 {
			t.Fatalf("delivery %d carried %d, want %d", i, v, i*10)
		}
	}
}

// TestWorkerPoolBounded: concurrent executions never exceed the pool
// size.
func TestWorkerPoolBounded(t *testing.T) {
	const workers = 3
	var live, peak atomic.Int64
	units := make([]Unit, 40)
	for i := range units {
		units[i] = Unit{Name: fmt.Sprintf("u%d", i), Run: func() (any, error) {
			cur := live.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
			live.Add(-1)
			return nil, nil
		}}
	}
	if err := New(workers).Run(units, nil); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent units, pool is %d", p, workers)
	}
}

// TestFirstErrorWins: the reported error is the lowest-index failing
// unit's, delivery stops before it, and undispatched units never
// start.
func TestFirstErrorWins(t *testing.T) {
	const n = 100
	errBoom := errors.New("boom")
	var started atomic.Int64
	units := make([]Unit, n)
	for i := range units {
		i := i
		units[i] = Unit{Name: fmt.Sprintf("u%d", i), Run: func() (any, error) {
			started.Add(1)
			if i == 5 {
				return nil, errBoom
			}
			time.Sleep(2 * time.Millisecond)
			return i, nil
		}}
	}
	var delivered []int
	err := New(4).Run(units, func(i int, v any) error {
		delivered = append(delivered, i)
		return nil
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want errBoom", err)
	}
	for _, i := range delivered {
		if i >= 5 {
			t.Fatalf("delivered unit %d past the failing unit 5", i)
		}
	}
	if s := started.Load(); s == n {
		t.Fatalf("all %d units started despite an early failure", n)
	}
}

// TestDeliverErrorStops: a deliver-callback failure propagates and
// halts further delivery.
func TestDeliverErrorStops(t *testing.T) {
	errMerge := errors.New("merge failed")
	units := make([]Unit, 20)
	for i := range units {
		i := i
		units[i] = Unit{Name: fmt.Sprintf("u%d", i), Run: func() (any, error) { return i, nil }}
	}
	var deliveries int
	err := New(4).Run(units, func(i int, v any) error {
		deliveries++
		if i == 3 {
			return errMerge
		}
		return nil
	})
	if !errors.Is(err, errMerge) {
		t.Fatalf("err = %v, want errMerge", err)
	}
	if deliveries != 4 { // indexes 0..3
		t.Fatalf("deliver ran %d times, want 4", deliveries)
	}
}

// TestSequentialFastPath: one worker uses the inline path with the
// same contract.
func TestSequentialFastPath(t *testing.T) {
	var order []int
	units := []Unit{
		{Name: "a", Run: func() (any, error) { return 1, nil }},
		{Name: "b", Run: func() (any, error) { return 2, nil }},
	}
	err := New(1).Run(units, func(i int, v any) error {
		order = append(order, v.(int))
		return nil
	})
	if err != nil || len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("sequential run: order=%v err=%v", order, err)
	}
}

// TestDefaultWorkers: New(0) sizes the pool from GOMAXPROCS.
func TestDefaultWorkers(t *testing.T) {
	if w := New(0).Workers(); w < 1 {
		t.Fatalf("default pool size %d", w)
	}
	if w := New(-3).Workers(); w < 1 {
		t.Fatalf("negative pool size mapped to %d", w)
	}
}

// TestEmpty: no units, no calls, no error.
func TestEmpty(t *testing.T) {
	if err := New(4).Run(nil, func(i int, v any) error {
		t.Fatal("deliver called for empty batch")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
