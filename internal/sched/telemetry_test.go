package sched

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestRunTimedSchedule: a successful parallel batch yields a complete
// schedule — every unit started and delivered, timestamps ordered,
// worker slots within the pool, wall clock covering the whole span.
func TestRunTimedSchedule(t *testing.T) {
	const n, workers = 12, 3
	units := make([]Unit, n)
	for i := range units {
		units[i] = Unit{Name: fmt.Sprintf("u%d", i), Run: func() (any, error) {
			time.Sleep(time.Millisecond)
			return nil, nil
		}}
	}
	sc, err := New(workers).RunTimed(units, func(i int, v any) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if sc.Workers != workers {
		t.Fatalf("Workers = %d, want %d", sc.Workers, workers)
	}
	if len(sc.Units) != n {
		t.Fatalf("schedule has %d units, want %d", len(sc.Units), n)
	}
	for _, u := range sc.Units {
		if !u.Started || !u.Delivered {
			t.Fatalf("unit %d: started=%v delivered=%v", u.Index, u.Started, u.Delivered)
		}
		if u.Worker < 0 || u.Worker >= workers {
			t.Fatalf("unit %d ran on worker %d, pool is %d", u.Index, u.Worker, workers)
		}
		if u.EndSeconds < u.StartSeconds {
			t.Fatalf("unit %d: end %v before start %v", u.Index, u.EndSeconds, u.StartSeconds)
		}
		if u.DeliverStartSeconds < u.EndSeconds {
			t.Fatalf("unit %d: delivered at %v before finishing at %v", u.Index, u.DeliverStartSeconds, u.EndSeconds)
		}
		if u.DeliverEndSeconds < u.DeliverStartSeconds {
			t.Fatalf("unit %d: deliver end %v before deliver start %v", u.Index, u.DeliverEndSeconds, u.DeliverStartSeconds)
		}
		if u.RunSeconds() <= 0 {
			t.Fatalf("unit %d: run time %v, slept a millisecond", u.Index, u.RunSeconds())
		}
	}
	// Delivery is index-ordered, so deliver starts must be
	// monotonically non-decreasing in index order.
	for i := 1; i < n; i++ {
		if sc.Units[i].DeliverStartSeconds < sc.Units[i-1].DeliverStartSeconds {
			t.Fatalf("unit %d delivered before unit %d", i, i-1)
		}
	}
	if sc.WallSeconds <= 0 {
		t.Fatalf("WallSeconds = %v", sc.WallSeconds)
	}
	if last := sc.Units[n-1].DeliverEndSeconds; sc.WallSeconds < last {
		t.Fatalf("WallSeconds %v shorter than last delivery %v", sc.WallSeconds, last)
	}
	if sc.BusySeconds() <= 0 {
		t.Fatalf("BusySeconds = %v", sc.BusySeconds())
	}
	busy := sc.WorkerBusySeconds()
	if len(busy) != workers {
		t.Fatalf("WorkerBusySeconds has %d rows, want %d", len(busy), workers)
	}
	var total float64
	for _, b := range busy {
		total += b
	}
	if diff := total - sc.BusySeconds(); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("per-worker busy %v != total busy %v", total, sc.BusySeconds())
	}
}

// TestRunTimedEffectiveWorkers: the recorded pool size is the
// effective one — capped at the unit count.
func TestRunTimedEffectiveWorkers(t *testing.T) {
	units := []Unit{
		{Name: "a", Run: func() (any, error) { return nil, nil }},
		{Name: "b", Run: func() (any, error) { return nil, nil }},
	}
	sc, err := New(8).RunTimed(units, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Workers != 2 {
		t.Fatalf("Workers = %d, want 2 (capped at unit count)", sc.Workers)
	}
}

// TestFirstDeclaredErrorWinsAcrossHostTime: unit 7 fails *immediately*
// in host time while unit 2 fails only after a long sleep — the
// declared order, not the host completion order, decides which error
// is reported. This is the cancellation contract the host-timing
// instrumentation must not disturb.
func TestFirstDeclaredErrorWinsAcrossHostTime(t *testing.T) {
	errEarlyIndex := errors.New("unit 2 (late in host time)")
	errLateIndex := errors.New("unit 7 (early in host time)")
	units := make([]Unit, 10)
	for i := range units {
		i := i
		units[i] = Unit{Name: fmt.Sprintf("u%d", i), Run: func() (any, error) {
			switch i {
			case 7:
				return nil, errLateIndex // fails first on the host clock
			case 2:
				time.Sleep(20 * time.Millisecond)
				return nil, errEarlyIndex // fails first in declared order
			default:
				time.Sleep(time.Millisecond)
				return i, nil
			}
		}}
	}
	sc, err := New(10).RunTimed(units, nil)
	if !errors.Is(err, errEarlyIndex) {
		t.Fatalf("err = %v, want the declared-first failure (unit 2)", err)
	}
	// The schedule must corroborate: unit 7's failure really did land
	// earlier on the host clock than unit 2's.
	if sc.Units[7].EndSeconds >= sc.Units[2].EndSeconds {
		t.Skipf("scheduling noise: unit 7 finished at %v, unit 2 at %v — race not exercised",
			sc.Units[7].EndSeconds, sc.Units[2].EndSeconds)
	}
}

// TestTimingNeverBlocksDelivery: with instrumentation active, delivery
// order is still strictly 0..n-1 under heavy completion reordering.
// Run with -race to check the lock-free timing writes.
func TestTimingNeverBlocksDelivery(t *testing.T) {
	const n = 80
	units := make([]Unit, n)
	for i := range units {
		i := i
		units[i] = Unit{Name: fmt.Sprintf("u%d", i), Run: func() (any, error) {
			// Reverse-staircase sleeps: later units finish first, so
			// every delivery is held behind an earlier in-flight unit.
			time.Sleep(time.Duration((n-i)%8) * 300 * time.Microsecond)
			return i, nil
		}}
	}
	var got []int
	sc, err := New(8).RunTimed(units, func(i int, v any) error {
		got = append(got, v.(int))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("delivery %d carried %d: ordering broken", i, v)
		}
	}
	// Held results must show the hold in telemetry without having
	// perturbed the order: deliver-hold is never negative.
	for _, u := range sc.Units {
		if u.DeliverHoldSeconds() < 0 {
			t.Fatalf("unit %d: negative deliver hold %v", u.Index, u.DeliverHoldSeconds())
		}
	}
}

// TestRunTimedFailureSchedule: on a failed batch the schedule still
// comes back, with unstarted units marked Worker == -1.
func TestRunTimedFailureSchedule(t *testing.T) {
	errBoom := errors.New("boom")
	const n = 50
	units := make([]Unit, n)
	for i := range units {
		i := i
		units[i] = Unit{Name: fmt.Sprintf("u%d", i), Run: func() (any, error) {
			if i == 1 {
				return nil, errBoom
			}
			time.Sleep(5 * time.Millisecond)
			return i, nil
		}}
	}
	sc, err := New(2).RunTimed(units, nil)
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want errBoom", err)
	}
	if sc == nil {
		t.Fatal("schedule is nil on failure")
	}
	var unstarted int
	for _, u := range sc.Units {
		if !u.Started {
			unstarted++
			if u.Worker != -1 {
				t.Fatalf("unstarted unit %d carries worker %d", u.Index, u.Worker)
			}
		}
		if u.Index >= 1 && u.Delivered {
			t.Fatalf("unit %d delivered past the failure point", u.Index)
		}
	}
	if unstarted == 0 {
		t.Fatal("early failure should leave trailing units unstarted")
	}
}
