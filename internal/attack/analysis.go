package attack

import (
	"time"
)

// This file reproduces the paper's closed-form analysis: the success
// probability bound of Section 5.3.1 and the end-to-end time estimate
// of Section 5.3.3.

// SuccessBound returns the paper's Section 5.3.1 upper bound on the
// per-attempt success probability:
//
//	P <= VM memory size / (512 * host memory size)
//
// Intuition: each exploited vulnerable bit consumes 1 GiB of guest
// address space to create 512 EPT pages, so the number of EPT pages —
// the only useful flip targets — is capped by guestMem/2MiB, while a
// flipped PFN lands anywhere in hostMem/4KiB frames.
func SuccessBound(guestMem, hostMem uint64) float64 {
	if hostMem == 0 {
		return 0
	}
	return float64(guestMem) / (512 * float64(hostMem))
}

// ExpectedAttempts returns the expected number of attack attempts for
// one success at the bound (its reciprocal).
func ExpectedAttempts(guestMem, hostMem uint64) float64 {
	p := SuccessBound(guestMem, hostMem)
	if p == 0 {
		return 0
	}
	return 1 / p
}

// EndToEndEstimate reproduces the Section 5.3.3 arithmetic: for an
// end-to-end attack the profile must be redone per attempt, stopping
// once targetBits exploitable bits are found, so each attempt's
// profiling cost is fullProfile * targetBits / exploitableBits, and
// the expected total is that times the expected attempt count.
func EndToEndEstimate(fullProfile time.Duration, exploitableBits, targetBits int, expectedAttempts float64) time.Duration {
	if exploitableBits == 0 {
		return 0
	}
	perAttempt := float64(fullProfile) * float64(targetBits) / float64(exploitableBits)
	return time.Duration(perAttempt * expectedAttempts)
}

// MonteCarloConfig parameterizes the empirical check of the bound.
type MonteCarloConfig struct {
	Seed uint64
	// Samples is the number of simulated flip outcomes.
	Samples int
	// EPTPages is the number of EPT pages in the system when the
	// flip fires (the only winning targets).
	EPTPages int
	// HostFrames is the number of 4 KiB frames of host memory.
	HostFrames int
	// ExploitableBitLow/High is the PFN bit range flips fall in.
	ExploitableBitLow, ExploitableBitHigh uint
}

// MonteCarloSuccess estimates, by sampling, the probability that a
// single exploitable-bit flip redirects an EPTE onto an EPT page:
// EPT pages are scattered uniformly over host frames and a flip moves
// the mapping by a power-of-two frame distance. The estimate should
// sit at or below the Section 5.3.1 bound.
//
// Each sample's random draws are derived from (Seed, sample index)
// alone — not from a stream shared across samples — so the estimate is
// identical no matter how the sample range is split into shards; see
// MonteCarloHits.
func MonteCarloSuccess(cfg MonteCarloConfig) float64 {
	if cfg.Samples <= 0 {
		return 0
	}
	return float64(MonteCarloHits(cfg, 0, 1)) / float64(cfg.Samples)
}

// MonteCarloHits counts the successful samples in the shard-th of
// shards contiguous, near-equal index ranges of the experiment
// MonteCarloSuccess describes. Summing the counts of all shards (in
// any split) reproduces the single-shard count exactly, which is what
// lets the experiment engine fan the sampling across workers without
// changing the reported probability. shards <= 0 or an out-of-range
// shard yields 0.
func MonteCarloHits(cfg MonteCarloConfig, shard, shards int) int {
	if cfg.Samples <= 0 || cfg.HostFrames <= 0 || cfg.EPTPages <= 0 ||
		shards <= 0 || shard < 0 || shard >= shards {
		return 0
	}
	lo := shard * cfg.Samples / shards
	hi := (shard + 1) * cfg.Samples / shards
	density := float64(cfg.EPTPages) / float64(cfg.HostFrames)
	bitRange := uint64(cfg.ExploitableBitHigh - cfg.ExploitableBitLow)
	if bitRange == 0 {
		bitRange = 1
	}
	hits := 0
	for i := lo; i < hi; i++ {
		// Derive this sample's draws from the index: a splitmix64-style
		// finalizer over seed + (i+1)*golden gives each sample two
		// independent uniform words regardless of which shard runs it.
		x := cfg.Seed + (uint64(i)+1)*0x9E3779B97F4A7C15
		// A flip at PFN bit k moves the mapping by 2^(k-12) frames;
		// whether the landing frame holds an EPT page is a Bernoulli
		// draw at the EPT-page density (EPT pages are spread by the
		// buddy allocator with no correlation to the flip distance).
		_ = cfg.ExploitableBitLow + uint(mix64(x)%bitRange) // flip position; uniform
		u := float64(mix64(x^0xD1B54A32D192ED03)>>11) / (1 << 53)
		if u < density {
			hits++
		}
	}
	return hits
}

// mix64 is the splitmix64 output finalizer: a bijective avalanche over
// one 64-bit word, good enough that consecutive inputs give
// statistically independent outputs.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
