package attack

import (
	"math/rand/v2"
	"time"
)

// This file reproduces the paper's closed-form analysis: the success
// probability bound of Section 5.3.1 and the end-to-end time estimate
// of Section 5.3.3.

// SuccessBound returns the paper's Section 5.3.1 upper bound on the
// per-attempt success probability:
//
//	P <= VM memory size / (512 * host memory size)
//
// Intuition: each exploited vulnerable bit consumes 1 GiB of guest
// address space to create 512 EPT pages, so the number of EPT pages —
// the only useful flip targets — is capped by guestMem/2MiB, while a
// flipped PFN lands anywhere in hostMem/4KiB frames.
func SuccessBound(guestMem, hostMem uint64) float64 {
	if hostMem == 0 {
		return 0
	}
	return float64(guestMem) / (512 * float64(hostMem))
}

// ExpectedAttempts returns the expected number of attack attempts for
// one success at the bound (its reciprocal).
func ExpectedAttempts(guestMem, hostMem uint64) float64 {
	p := SuccessBound(guestMem, hostMem)
	if p == 0 {
		return 0
	}
	return 1 / p
}

// EndToEndEstimate reproduces the Section 5.3.3 arithmetic: for an
// end-to-end attack the profile must be redone per attempt, stopping
// once targetBits exploitable bits are found, so each attempt's
// profiling cost is fullProfile * targetBits / exploitableBits, and
// the expected total is that times the expected attempt count.
func EndToEndEstimate(fullProfile time.Duration, exploitableBits, targetBits int, expectedAttempts float64) time.Duration {
	if exploitableBits == 0 {
		return 0
	}
	perAttempt := float64(fullProfile) * float64(targetBits) / float64(exploitableBits)
	return time.Duration(perAttempt * expectedAttempts)
}

// MonteCarloConfig parameterizes the empirical check of the bound.
type MonteCarloConfig struct {
	Seed uint64
	// Samples is the number of simulated flip outcomes.
	Samples int
	// EPTPages is the number of EPT pages in the system when the
	// flip fires (the only winning targets).
	EPTPages int
	// HostFrames is the number of 4 KiB frames of host memory.
	HostFrames int
	// ExploitableBitLow/High is the PFN bit range flips fall in.
	ExploitableBitLow, ExploitableBitHigh uint
}

// MonteCarloSuccess estimates, by sampling, the probability that a
// single exploitable-bit flip redirects an EPTE onto an EPT page:
// EPT pages are scattered uniformly over host frames and a flip moves
// the mapping by a power-of-two frame distance. The estimate should
// sit at or below the Section 5.3.1 bound.
func MonteCarloSuccess(cfg MonteCarloConfig) float64 {
	if cfg.Samples <= 0 || cfg.HostFrames <= 0 || cfg.EPTPages <= 0 {
		return 0
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9E3779B97F4A7C15))
	density := float64(cfg.EPTPages) / float64(cfg.HostFrames)
	hits := 0
	for i := 0; i < cfg.Samples; i++ {
		// A flip at PFN bit k moves the mapping by 2^(k-12) frames;
		// whether the landing frame holds an EPT page is a Bernoulli
		// draw at the EPT-page density (EPT pages are spread by the
		// buddy allocator with no correlation to the flip distance).
		bitRange := int(cfg.ExploitableBitHigh - cfg.ExploitableBitLow)
		_ = cfg.ExploitableBitLow + uint(rng.IntN(bitRange)) // flip position; uniform
		if rng.Float64() < density {
			hits++
		}
	}
	return float64(hits) / float64(cfg.Samples)
}
