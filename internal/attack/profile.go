package attack

import (
	"fmt"
	"time"

	"hyperhammer/internal/dram"
	"hyperhammer/internal/guest"
	"hyperhammer/internal/memdef"
	"hyperhammer/internal/simtime"
)

// profilePattern is the fill value used while profiling: alternating
// bits, so that at every bit position half the cells hold the value a
// unidirectional flip can move away from, making both flip directions
// observable in a single pass.
const profilePattern = 0x5555555555555555

// VulnBit is one Rowhammer-vulnerable bit found by profiling, together
// with the aggressor pair that flips it.
type VulnBit struct {
	// Flip locates the bit in the attacker's address space at
	// profiling time.
	Flip guest.Flip
	// AggressorA and AggressorB are the two same-bank consecutive-row
	// addresses whose hammering flips the bit.
	AggressorA, AggressorB memdef.GVA
	// Stable reports whether the bit survived every stability retest.
	Stable bool
	// InRange reports whether the bit falls in the PFN bit range that
	// usefully corrupts an EPTE (Section 4.1) — what Table 1's
	// "Expl." column counts.
	InRange bool
	// Exploitable reports whether the bit is attack-usable: both
	// stable and in range.
	Exploitable bool
}

// Buffer describes the attacker's big THP allocation: profiled first,
// then reused as the EPTE spray buffer.
type Buffer struct {
	Base      memdef.GVA
	Hugepages int
}

// HugepageBase returns the virtual base of the i-th hugepage.
func (b Buffer) HugepageBase(i int) memdef.GVA {
	return b.Base + memdef.GVA(i)*memdef.HugePageSize
}

// ProfileResult summarizes a profiling run (the Table 1 measurement).
type ProfileResult struct {
	// Buffer is the profiled allocation, which remains allocated for
	// the subsequent attack steps.
	Buffer Buffer

	// Bits lists every distinct vulnerable bit found, in discovery
	// order.
	Bits []VulnBit

	// Table 1 counters. Exploitable counts bits in the useful PFN
	// range over all detected flips, matching the paper's "Expl."
	// column (whose S2 value exceeds the stable count, so the paper
	// filters from the total); AttackUsable additionally requires
	// stability — the set the attack releases.
	Total, OneToZero, ZeroToOne, Stable, Exploitable, AttackUsable int

	// HammerOps is the number of aggressor-pair hammer operations.
	HammerOps int
	// Duration is the simulated time the profile took.
	Duration time.Duration
}

// Profile performs the memory profiling step of Section 4.1: allocate
// (nearly) all guest memory as THP hugepages, and for every hugepage
// hammer same-bank consecutive-row aggressor pairs at both hugepage
// borders, scanning for flips after each pattern. Single-sided
// hammering is forced by virtio-mem's 2 MiB release granularity
// (Section 4.1).
func Profile(os *guest.OS, cfg Config) (*ProfileResult, error) {
	span := cfg.startSpan("attack.profile")
	res, err := profile(os, cfg)
	if err != nil {
		span.End("err", err)
		return nil, err
	}
	span.End("bits", res.Total, "usable", res.AttackUsable, "hammerOps", res.HammerOps)
	cfg.observePhase("profile", res.Duration)
	if m := cfg.Metrics; m != nil {
		m.Counter("attack_profiled_bits_total", "Distinct vulnerable bits found by profiling.").Add(uint64(res.Total))
		m.Counter("attack_usable_bits_total", "Stable, in-range bits usable by the attack.").Add(uint64(res.AttackUsable))
	}
	return res, nil
}

func profile(os *guest.OS, cfg Config) (*ProfileResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sw := simtime.NewStopwatch(os.Clock())

	n := cfg.ProfileHugepages
	if n == 0 || n > os.FreeHugepages() {
		n = os.FreeHugepages()
	}
	if n < 2 {
		return nil, fmt.Errorf("attack: profiling needs at least 2 hugepages, have %d", n)
	}
	base, err := os.AllocHuge(n)
	if err != nil {
		return nil, fmt.Errorf("attack: allocating profile buffer: %w", err)
	}
	res := &ProfileResult{Buffer: Buffer{Base: base, Hugepages: n}}

	if err := os.FillPages(base, n*memdef.PagesPerHuge, profilePattern); err != nil {
		return nil, fmt.Errorf("attack: filling profile buffer: %w", err)
	}

	pairs := cfg.aggressorPairs()
	seen := make(map[guest.Flip]bool)
	gvaPairs := make([][2]memdef.GVA, len(pairs))

	done := false
	for hp := 0; hp < n && !done; hp++ {
		hugeBase := base + memdef.GVA(hp)*memdef.HugePageSize
		for i, pr := range pairs {
			gvaPairs[i] = [2]memdef.GVA{hugeBase + memdef.GVA(pr[0]), hugeBase + memdef.GVA(pr[1])}
		}
		err := os.HammerScanPairs(gvaPairs, cfg.HammerRounds, func(i int, flips []guest.Flip) (bool, error) {
			res.HammerOps++
			a, b := gvaPairs[i][0], gvaPairs[i][1]
			for _, f := range flips {
				if seen[f] {
					continue
				}
				seen[f] = true
				// Flips inside the aggressors' own hugepage are
				// invisible to the paper's scan of "all other 2 MB
				// regions" and useless anyway: releasing that
				// hugepage would release the aggressors with it.
				if f.HugepageBase() == hugeBase {
					continue
				}
				bit := VulnBit{Flip: f, AggressorA: a, AggressorB: b}
				bit.Stable = retestStability(os, cfg, bit)
				bit.InRange = cfg.exploitableBit(f.EPTEBit())
				bit.Exploitable = bit.Stable && bit.InRange
				res.add(bit)
				if cfg.StopAfterExploitable > 0 && res.AttackUsable >= cfg.StopAfterExploitable {
					done = true
					return true, nil
				}
			}
			return false, nil
		})
		if err != nil {
			return nil, fmt.Errorf("attack: hammering: %w", err)
		}
	}
	res.Duration = sw.Elapsed()
	return res, nil
}

// aggressorPairs precomputes, for both hugepage borders and every
// relative bank class, an in-hugepage offset pair lying in consecutive
// row-spans of the same bank. The offsets are identical for every
// hugepage because bank classes depend only on the low 21 address
// bits.
func (c Config) aggressorPairs() [][2]uint64 {
	span := c.rowSpan()
	rows := c.rowsPerHuge()
	// classOffset[r][cls] is a representative 64-byte-aligned offset
	// in row-span r with the given bank class.
	classOffset := make([][]uint64, rows)
	for r := range classOffset {
		classOffset[r] = make([]uint64, c.bankClasses())
		need := c.bankClasses()
		found := make([]bool, need)
		for off := uint64(r) * span; off < uint64(r+1)*span && need > 0; off += 64 {
			cls := c.bankClass(off)
			if !found[cls] {
				found[cls] = true
				classOffset[r][cls] = off
				need--
			}
		}
	}
	var pairs [][2]uint64
	// Bottom border: rows 0 and 1 (victims below the hugepage);
	// top border: rows rows-2 and rows-1 (victims above).
	for _, rr := range [][2]int{{0, 1}, {rows - 2, rows - 1}} {
		for cls := 0; cls < c.bankClasses(); cls++ {
			pairs = append(pairs, [2]uint64{
				classOffset[rr[0]][cls],
				classOffset[rr[1]][cls],
			})
		}
	}
	return pairs
}

// retestStability re-arms and re-hammers a flip StabilityRetests
// times; the bit is stable only if it flips every time.
func retestStability(os *guest.OS, cfg Config, bit VulnBit) bool {
	pageBase := bit.Flip.GVA &^ (memdef.PageSize - 1)
	wordAddr := bit.Flip.GVA &^ 7
	bitPos := bit.Flip.EPTEBit()
	for i := 0; i < cfg.StabilityRetests; i++ {
		if err := os.FillPage(pageBase, profilePattern); err != nil {
			return false
		}
		if err := os.Hammer(bit.AggressorA, bit.AggressorB, cfg.HammerRounds); err != nil {
			return false
		}
		w, err := os.Read64(wordAddr)
		if err != nil {
			return false
		}
		if (w>>bitPos)&1 == (profilePattern>>bitPos)&1 {
			return false // did not flip this round
		}
	}
	return cfg.StabilityRetests > 0
}

func (r *ProfileResult) add(bit VulnBit) {
	r.Bits = append(r.Bits, bit)
	r.Total++
	if bit.Flip.Direction == dram.FlipOneToZero {
		r.OneToZero++
	} else {
		r.ZeroToOne++
	}
	if bit.Stable {
		r.Stable++
	}
	if bit.InRange {
		r.Exploitable++
	}
	if bit.Exploitable {
		r.AttackUsable++
	}
}

// ExploitableBits returns the stable exploitable bits, at most max
// (0 = all), preferring discovery order.
func (r *ProfileResult) ExploitableBits(max int) []VulnBit {
	var out []VulnBit
	for _, b := range r.Bits {
		if !b.Exploitable {
			continue
		}
		out = append(out, b)
		if max > 0 && len(out) == max {
			break
		}
	}
	return out
}
