package attack

import (
	"testing"

	"hyperhammer/internal/kvm"
	"hyperhammer/internal/memdef"
	"hyperhammer/internal/trace"
)

// TestCampaignSpanNesting verifies the span parenting a campaign
// records: one attack.campaign root, the one-time profile and every
// attempt as its children, and each attempt's steer/exploit phases
// under that attempt — never under the campaign or a sibling.
func TestCampaignSpanNesting(t *testing.T) {
	h := bigHost(t, 61)
	rec := trace.New(nil, 4096)
	rec.BindClock(h.Clock)
	cfg := bigAttackConfig()
	cfg.Trace = rec
	_, err := RunCampaign(h, CampaignConfig{
		Attack:      cfg,
		VM:          kvm.VMConfig{MemSize: 3584 * memdef.MiB, VFIOGroups: 1},
		MaxAttempts: 3,
		ChurnOps:    200,
	})
	if err != nil {
		t.Fatal(err)
	}

	type spanInfo struct {
		name   string
		parent uint64
	}
	spans := make(map[uint64]spanInfo)
	for _, ev := range rec.Recent() {
		if ev.Kind != "span.start" {
			continue
		}
		id, _ := ev.Data["span"].(uint64)
		parent, _ := ev.Data["parent"].(uint64)
		name, _ := ev.Data["name"].(string)
		spans[id] = spanInfo{name: name, parent: parent}
	}

	var campaignID uint64
	for id, s := range spans {
		if s.name == "attack.campaign" {
			if campaignID != 0 {
				t.Fatal("two campaign spans")
			}
			campaignID = id
		}
	}
	if campaignID == 0 {
		t.Fatal("no campaign span recorded")
	}
	counts := make(map[string]int)
	for _, s := range spans {
		counts[s.name]++
		switch s.name {
		case "attack.campaign":
			if s.parent != 0 {
				t.Errorf("campaign has parent %d", s.parent)
			}
		case "attack.profile", "attack.attempt":
			if s.parent != campaignID {
				t.Errorf("%s parented to %d, want campaign %d", s.name, s.parent, campaignID)
			}
		case "attack.steer", "attack.exploit":
			p, ok := spans[s.parent]
			if !ok || p.name != "attack.attempt" {
				t.Errorf("%s parented to %q, want an attempt", s.name, p.name)
			}
		}
	}
	if counts["attack.attempt"] != 3 || counts["attack.profile"] != 1 {
		t.Errorf("span counts = %v", counts)
	}
	if counts["attack.steer"] == 0 {
		t.Errorf("no steer spans recorded: %v", counts)
	}
}
