package attack

import (
	"testing"

	"hyperhammer/internal/dram"
	"hyperhammer/internal/guest"
	"hyperhammer/internal/kvm"
	"hyperhammer/internal/memdef"
)

// Small 512 MiB machine for fast integration tests.
func testGeometry() *dram.Geometry {
	return dram.MustGeometry(dram.Geometry{
		Name: "test-512M",
		Size: 512 * memdef.MiB,
		BankMasks: []uint64{
			1<<17 | 1<<21,
			1<<16 | 1<<20,
			1<<15 | 1<<19,
			1<<14 | 1<<18,
			1<<6 | 1<<13,
		},
		RowShift: 18,
		RowBits:  11,
	})
}

// denseFault makes flips plentiful and deterministic so small tests
// exercise the full pipeline.
func denseFault(seed uint64) dram.FaultModelConfig {
	return dram.FaultModelConfig{
		Seed: seed, CellsPerRow: 0.8,
		ThresholdMin: 50_000, ThresholdMax: 200_000,
		StableFraction: 0.9, FlakyP: 0.35,
		NeighborWeight1: 1.0, NeighborWeight2: 0.25,
	}
}

func testAttackConfig() Config {
	cfg := DefaultConfig([]uint64{
		1<<17 | 1<<21,
		1<<16 | 1<<20,
		1<<15 | 1<<19,
		1<<14 | 1<<18,
		1<<6 | 1<<13,
	})
	cfg.HostMemBits = 29 // 512 MiB host
	cfg.IOVAMappings = 3000
	cfg.TargetBits = 8
	return cfg
}

func testHost(t *testing.T, seed uint64) *kvm.Host {
	t.Helper()
	h, err := kvm.NewHost(kvm.Config{
		Geometry:       testGeometry(),
		Fault:          denseFault(seed),
		THP:            true,
		NXHugepages:    true,
		BootNoisePages: 800,
		Seed:           seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func bootGuest(t *testing.T, h *kvm.Host, size uint64) *guest.OS {
	t.Helper()
	vm, err := h.CreateVM(kvm.VMConfig{MemSize: size, VFIOGroups: 1})
	if err != nil {
		t.Fatal(err)
	}
	return guest.Boot(vm)
}

func TestConfigValidate(t *testing.T) {
	good := testAttackConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, breakIt := range []func(*Config){
		func(c *Config) { c.BankMasks = nil },
		func(c *Config) { c.RowShift = 0 },
		func(c *Config) { c.RowShift = 21 },
		func(c *Config) { c.HammerRounds = 0 },
		func(c *Config) { c.HostMemBits = 20 },
	} {
		c := testAttackConfig()
		breakIt(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("invalid config accepted: %+v", c)
		}
	}
}

func TestExploitableBitRange(t *testing.T) {
	cfg := testAttackConfig() // HostMemBits 29
	cases := map[uint]bool{0: false, 12: false, 20: false, 21: true, 28: true, 29: false, 63: false}
	for bit, want := range cases {
		if got := cfg.exploitableBit(bit); got != want {
			t.Errorf("exploitableBit(%d) = %v, want %v", bit, got, want)
		}
	}
}

// Aggressor pairs must genuinely share a DRAM bank and sit in
// consecutive rows — checked against geometry ground truth for every
// pair at several hugepage bases.
func TestAggressorPairsGroundTruth(t *testing.T) {
	cfg := testAttackConfig()
	geo := testGeometry()
	pairs := cfg.aggressorPairs()
	if len(pairs) != 2*cfg.bankClasses() {
		t.Fatalf("pairs = %d, want %d", len(pairs), 2*cfg.bankClasses())
	}
	for _, hugeBase := range []memdef.HPA{0, 2 * memdef.MiB, 100 * memdef.MiB} {
		for i, pr := range pairs {
			a := hugeBase + memdef.HPA(pr[0])
			b := hugeBase + memdef.HPA(pr[1])
			if geo.Bank(a) != geo.Bank(b) {
				t.Fatalf("pair %d at base %#x: banks differ (%d vs %d)", i, hugeBase, geo.Bank(a), geo.Bank(b))
			}
			if geo.Row(b)-geo.Row(a) != 1 {
				t.Fatalf("pair %d at base %#x: rows %d,%d not consecutive", i, hugeBase, geo.Row(a), geo.Row(b))
			}
		}
	}
}

func TestProfileFindsStableExploitableBits(t *testing.T) {
	h := testHost(t, 21)
	gos := bootGuest(t, h, 256*memdef.MiB)
	cfg := testAttackConfig()
	prof, err := Profile(gos, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Total == 0 {
		t.Fatal("dense fault model yielded no flips")
	}
	if prof.OneToZero+prof.ZeroToOne != prof.Total {
		t.Errorf("direction counts %d+%d != total %d", prof.OneToZero, prof.ZeroToOne, prof.Total)
	}
	if prof.Stable > prof.Total || prof.Exploitable > prof.Total || prof.AttackUsable > prof.Stable {
		t.Errorf("counter ordering violated: %+v", prof)
	}
	if prof.AttackUsable == 0 {
		t.Fatal("no attack-usable bits; pipeline cannot proceed")
	}
	if prof.HammerOps != prof.Buffer.Hugepages*len(cfg.aggressorPairs()) {
		t.Errorf("HammerOps = %d", prof.HammerOps)
	}
	if prof.Duration <= 0 {
		t.Error("no simulated time charged")
	}
	// Early-stop variant finds at least the requested count and runs
	// fewer ops.
	h2 := testHost(t, 21)
	gos2 := bootGuest(t, h2, 256*memdef.MiB)
	cfg2 := cfg
	cfg2.StopAfterExploitable = 2
	prof2, err := Profile(gos2, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if prof2.AttackUsable < 2 {
		t.Errorf("early stop found %d usable bits", prof2.AttackUsable)
	}
	if prof2.HammerOps >= prof.HammerOps {
		t.Errorf("early stop ran %d ops, full ran %d", prof2.HammerOps, prof.HammerOps)
	}
}

func TestProfileDeterministic(t *testing.T) {
	run := func() *ProfileResult {
		h := testHost(t, 33)
		gos := bootGuest(t, h, 192*memdef.MiB)
		prof, err := Profile(gos, testAttackConfig())
		if err != nil {
			t.Fatal(err)
		}
		return prof
	}
	a, b := run(), run()
	if a.Total != b.Total || a.Stable != b.Stable || a.Exploitable != b.Exploitable {
		t.Errorf("profiles differ: %+v vs %+v", a, b)
	}
	if len(a.Bits) == len(b.Bits) {
		for i := range a.Bits {
			if a.Bits[i].Flip != b.Bits[i].Flip {
				t.Errorf("bit %d differs", i)
			}
		}
	}
}

// bigGeometry is a 4 GiB machine: large enough that the EPTE spray
// (one EPT page per guest hugepage) exceeds the post-exhaustion
// leftover noise, the regime the paper's Table 2 operates in.
func bigGeometry() *dram.Geometry {
	return dram.MustGeometry(dram.Geometry{
		Name: "test-4G",
		Size: 4 * memdef.GiB,
		BankMasks: []uint64{
			1<<17 | 1<<21,
			1<<16 | 1<<20,
			1<<15 | 1<<19,
			1<<14 | 1<<18,
			1<<6 | 1<<13,
		},
		RowShift: 18,
		RowBits:  14,
	})
}

func bigHost(t *testing.T, seed uint64) *kvm.Host {
	t.Helper()
	h, err := kvm.NewHost(kvm.Config{
		Geometry: bigGeometry(),
		Fault: dram.FaultModelConfig{
			Seed: seed, CellsPerRow: 0.02,
			ThresholdMin: 50_000, ThresholdMax: 200_000,
			StableFraction: 0.9, FlakyP: 0.35,
			NeighborWeight1: 1.0, NeighborWeight2: 0.25,
		},
		THP:            true,
		NXHugepages:    true,
		BootNoisePages: 100,
		Seed:           seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func bigAttackConfig() Config {
	cfg := testAttackConfig()
	cfg.HostMemBits = 32 // 4 GiB host
	// The exhaustion budget must exceed the steady-state residue of
	// PCP-fragmented table pages from prior attempts (~2,400 at this
	// scale), the same reason the paper uses 60,000 mappings on 16 GiB.
	cfg.IOVAMappings = 4000
	cfg.TargetBits = 3 // pool of ~1750 hugepages sustains ~3 bits
	return cfg
}

func TestPageSteerMechanics(t *testing.T) {
	h := bigHost(t, 44)
	gos := bootGuest(t, h, 3584*memdef.MiB)
	cfg := bigAttackConfig()
	prof, err := Profile(gos, cfg)
	if err != nil {
		t.Fatal(err)
	}
	victims := prof.ExploitableBits(0)
	if len(victims) == 0 {
		t.Skip("no exploitable bits with this seed")
	}
	noiseBefore := h.NoisePages()
	steer, err := PageSteer(gos, cfg, prof.Buffer, victims)
	if err != nil {
		t.Fatal(err)
	}
	if steer.IOVAMappings != cfg.IOVAMappings {
		t.Errorf("IOVA mappings = %d, want %d", steer.IOVAMappings, cfg.IOVAMappings)
	}
	// Figure 3 mechanics: exhaustion leaves at most ~1024 noise pages
	// (a split order-10 block) regardless of the starting level.
	if noise := h.NoisePages(); noise >= noiseBefore && noise > 1024 {
		t.Errorf("noise pages %d -> %d: exhaustion ineffective", noiseBefore, noise)
	}
	if len(steer.Released) == 0 || len(steer.Released) > cfg.TargetBits {
		t.Errorf("released = %d", len(steer.Released))
	}
	if got := len(h.ReleasedBlockLog()); got != len(steer.Released) {
		t.Errorf("host log %d blocks, steer released %d", got, len(steer.Released))
	}
	if steer.Splits == 0 || steer.Splits != steer.SprayedHugepages {
		t.Errorf("splits %d of %d sprayed", steer.Splits, steer.SprayedHugepages)
	}
	// The Table 2 ground truth: some released pages must now hold EPT
	// pages after a full-memory spray against exhausted free lists.
	stats := gos.VM().EPTReuse()
	if stats.ReusedPages == 0 {
		t.Errorf("no released pages reused by EPTs: %+v", stats)
	}
	if stats.EPTPages < steer.Splits {
		t.Errorf("EPT pages %d < splits %d", stats.EPTPages, steer.Splits)
	}
}

func TestExploitPipelineCounts(t *testing.T) {
	h := bigHost(t, 55)
	gos := bootGuest(t, h, 3584*memdef.MiB)
	cfg := bigAttackConfig()
	prof, err := Profile(gos, cfg)
	if err != nil {
		t.Fatal(err)
	}
	victims := prof.ExploitableBits(0)
	if len(victims) == 0 {
		t.Skip("no exploitable bits with this seed")
	}
	steer, err := PageSteer(gos, cfg, prof.Buffer, victims)
	if err != nil {
		t.Fatal(err)
	}
	expl, err := Exploit(gos, cfg, prof.Buffer, steer)
	if err != nil {
		t.Fatal(err)
	}
	if expl.HammeredBits != len(steer.Released) {
		t.Errorf("hammered %d of %d released", expl.HammeredBits, len(steer.Released))
	}
	if expl.CandidateEPTPages > expl.MappingChanges {
		t.Errorf("candidates %d > changes %d", expl.CandidateEPTPages, expl.MappingChanges)
	}
	if expl.ConfirmedEPTPages > expl.CandidateEPTPages {
		t.Errorf("confirmed %d > candidates %d", expl.ConfirmedEPTPages, expl.CandidateEPTPages)
	}
	if expl.Success() != (expl.Escape != nil) {
		t.Error("Success inconsistent with Escape")
	}
}

// The headline integration test: a full campaign on a small host must
// eventually escape the VM and read a host-planted secret that was
// never mapped into any guest.
func TestCampaignEndToEndEscape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-attempt campaign")
	}
	h := bigHost(t, 61)
	secretHPA := h.PlantSecret(0x5EC2E7C0FFEE)
	cfg := bigAttackConfig()
	res, err := RunCampaign(h, CampaignConfig{
		Attack:             cfg,
		VM:                 kvm.VMConfig{MemSize: 3584 * memdef.MiB, VFIOGroups: 1},
		MaxAttempts:        150,
		StopAtFirstSuccess: true,
		VerifyHPA:          secretHPA,
		VerifyValue:        0x5EC2E7C0FFEE,
		ChurnOps:           200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Successes == 0 {
		t.Fatalf("no success in %d attempts (profiled bits: %d)", len(res.Attempts), res.ProfiledBits)
	}
	t.Logf("escape at attempt %d of %d; avg attempt %v; profile %v",
		res.FirstSuccessAttempt, len(res.Attempts), res.AvgAttemptTime(), res.ProfileDuration)
	if res.FirstSuccessAttempt != len(res.Attempts) {
		t.Errorf("stop-at-first-success kept going")
	}
	if res.TimeToFirstSuccess <= 0 || res.AvgAttemptTime() <= 0 {
		t.Error("timing not recorded")
	}
}

func TestAnalysisBound(t *testing.T) {
	// The paper's numbers: 13 GiB VM on 16 GiB host.
	p := SuccessBound(13*memdef.GiB, 16*memdef.GiB)
	if p < 1.0/700 || p > 1.0/500 {
		t.Errorf("bound = %v, want near 1/630", p)
	}
	if got := ExpectedAttempts(13*memdef.GiB, 16*memdef.GiB); got < 500 || got > 700 {
		t.Errorf("expected attempts = %v", got)
	}
	if SuccessBound(1, 0) != 0 || ExpectedAttempts(1, 0) != 0 {
		t.Error("degenerate inputs not handled")
	}
}

func TestEndToEndEstimateMatchesPaperArithmetic(t *testing.T) {
	// Section 5.3.3 for S1: 12/96 * 72h = 9h per attempt; 512 attempts
	// = 192 days.
	est := EndToEndEstimate(72*3600e9, 96, 12, 512)
	days := est.Hours() / 24
	if days < 191 || days > 193 {
		t.Errorf("S1 estimate = %.1f days, want 192", days)
	}
	// S2: 12/90 * 48h * 512 = ~137 days.
	est2 := EndToEndEstimate(48*3600e9, 90, 12, 512)
	days2 := est2.Hours() / 24
	if days2 < 135 || days2 > 138 {
		t.Errorf("S2 estimate = %.1f days, want ~137", days2)
	}
	if EndToEndEstimate(1, 0, 1, 1) != 0 {
		t.Error("zero exploitable bits not handled")
	}
}

func TestMonteCarloRespectsScale(t *testing.T) {
	mc := MonteCarloSuccess(MonteCarloConfig{
		Seed: 9, Samples: 200_000,
		EPTPages: 6656, HostFrames: 4 << 20,
		ExploitableBitLow: 21, ExploitableBitHigh: 34,
	})
	density := 6656.0 / float64(4<<20)
	if mc < density/2 || mc > density*2 {
		t.Errorf("Monte Carlo %v far from density %v", mc, density)
	}
	if MonteCarloSuccess(MonteCarloConfig{}) != 0 {
		t.Error("degenerate config not handled")
	}
}

// Campaigns must be bit-for-bit reproducible: same seeds, same host,
// same outcome — the property every experiment in this repository
// stands on.
func TestCampaignDeterministic(t *testing.T) {
	run := func() *CampaignResult {
		h := bigHost(t, 61)
		secret := h.PlantSecret(0xD15EA5E)
		res, err := RunCampaign(h, CampaignConfig{
			Attack:             bigAttackConfig(),
			VM:                 kvm.VMConfig{MemSize: 3584 * memdef.MiB, VFIOGroups: 1},
			MaxAttempts:        10,
			StopAtFirstSuccess: true,
			VerifyHPA:          secret,
			VerifyValue:        0xD15EA5E,
			ChurnOps:           200,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.ProfiledBits != b.ProfiledBits || len(a.Attempts) != len(b.Attempts) {
		t.Fatalf("campaign shapes differ: %d/%d bits, %d/%d attempts",
			a.ProfiledBits, b.ProfiledBits, len(a.Attempts), len(b.Attempts))
	}
	for i := range a.Attempts {
		if a.Attempts[i] != b.Attempts[i] {
			t.Errorf("attempt %d differs: %+v vs %+v", i, a.Attempts[i], b.Attempts[i])
		}
	}
}
