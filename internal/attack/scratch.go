package attack

import (
	"hyperhammer/internal/guest"
	"hyperhammer/internal/memdef"
)

// attemptScratch holds the buffers the steer and exploit hot paths
// need per attempt. A campaign runs hundreds of attempts against the
// same VM shape, so RunCampaign allocates one scratch and threads it
// through Config; every map and slice here is cleared, not
// re-allocated, between attempts. Standalone PageSteer/Exploit calls
// (cfg.scratch nil) allocate a private one per call.
//
// The maps are used for membership tests only — never iterated — so
// reuse cannot perturb any deterministic ordering.
type attemptScratch struct {
	// runAttempt: physical-to-virtual relocation table and the
	// relocated victim list.
	hpaToGVA map[memdef.HPA]memdef.GVA
	victims  []VulnBit

	// pageSteer: hugepages that must survive release, hugepages
	// released, and the spray order permutation.
	keep, released map[memdef.GVA]bool
	order          []int

	// exploit: released-hugepage set, hammered aggressor pairs,
	// baseline scan results, per-probe scan buffer, and the
	// baseline-page set used by EPT-page validation.
	exReleased map[memdef.GVA]bool
	hammered   map[[2]memdef.GVA]bool
	baseline   []guest.MappingChange
	probe      []guest.MappingChange
	known      map[memdef.GVA]bool

	// exploit's batched hammer submission: the spec list and the flat
	// aggressor-address backing its Aggressors slices point into. When
	// an append reallocates the backing, earlier specs keep the old
	// array — its values are already final, so aliasing is not needed.
	specs    []guest.HammerSpec
	specGVAs []memdef.GVA
}

func (s *attemptScratch) gvaSet(m *map[memdef.GVA]bool) map[memdef.GVA]bool {
	if *m == nil {
		*m = make(map[memdef.GVA]bool)
	} else {
		clear(*m)
	}
	return *m
}

func (s *attemptScratch) pairSet() map[[2]memdef.GVA]bool {
	if s.hammered == nil {
		s.hammered = make(map[[2]memdef.GVA]bool)
	} else {
		clear(s.hammered)
	}
	return s.hammered
}

func (s *attemptScratch) hpaMap(capacity int) map[memdef.HPA]memdef.GVA {
	if s.hpaToGVA == nil {
		s.hpaToGVA = make(map[memdef.HPA]memdef.GVA, capacity)
	} else {
		clear(s.hpaToGVA)
	}
	return s.hpaToGVA
}

func (s *attemptScratch) intSlice(n int) []int {
	if cap(s.order) < n {
		s.order = make([]int, n)
	}
	s.order = s.order[:n]
	return s.order
}

// scratchOf returns the config's campaign-owned scratch, or a fresh
// private one for standalone calls.
func scratchOf(cfg Config) *attemptScratch {
	if cfg.scratch != nil {
		return cfg.scratch
	}
	return &attemptScratch{}
}
