package attack

import (
	"fmt"
	"time"

	"hyperhammer/internal/forensics"
	"hyperhammer/internal/guest"
	"hyperhammer/internal/kvm"
	"hyperhammer/internal/ledger"
	"hyperhammer/internal/memdef"
	"hyperhammer/internal/simtime"
)

// CampaignConfig drives a repeated-attempt attack campaign, the
// methodology of Section 5.3.2 / Table 3.
type CampaignConfig struct {
	// Attack is the per-attempt attack configuration.
	Attack Config
	// VM is the attacker VM shape, respawned for every attempt.
	VM kvm.VMConfig
	// MaxAttempts bounds the campaign.
	MaxAttempts int
	// StopAtFirstSuccess ends the campaign once an attempt escapes
	// (the Table 3 experiment runs to first success).
	StopAtFirstSuccess bool
	// VerifyHPA/VerifyValue, when set, require the escape handle to
	// read the planted host secret before an attempt counts as a
	// success — the Section 5.3.2 magic-value check.
	VerifyHPA   memdef.HPA
	VerifyValue uint64
	// ChurnOps is how much background host activity (transient
	// unmovable allocations) runs between attempts, modelling the
	// natural free-list drift of a live host. Zero disables it, which
	// makes consecutive attempts near-identical replays — unrealistic
	// and useless for a statistical attack.
	ChurnOps int
}

// AttemptStats records one attack attempt.
type AttemptStats struct {
	Index int
	// Outcome classifies how the attempt ended, using the
	// forensics.Outcome* taxonomy (escaped, steer-miss, ...).
	Outcome    string
	UsableBits int
	Released   int
	Splits     int
	Changes    int
	Candidates int
	Confirmed  int
	Success    bool
	Duration   time.Duration
	// SteerDuration and ExploitDuration break the attempt down by
	// phase; the remainder is VM boot, relocation hypercalls, and the
	// post-attempt reboot.
	SteerDuration   time.Duration
	ExploitDuration time.Duration
}

// CampaignResult summarizes a campaign (the Table 3 measurement).
type CampaignResult struct {
	Attempts            []AttemptStats
	Successes           int
	FirstSuccessAttempt int // 1-based; 0 if none
	// ProfileDuration is the one-time full-profile cost (amortized
	// across attempts by the hypercall reuse trick).
	ProfileDuration time.Duration
	// TimeToFirstSuccess is the simulated attack time (excluding the
	// one-time profile) until the first successful attempt completed.
	TimeToFirstSuccess time.Duration
	// TotalDuration is the simulated time of all attempts.
	TotalDuration time.Duration
	// ProfiledBits is the number of stable exploitable bits the
	// profile found.
	ProfiledBits int

	// Phase accounting (simulated time) across the whole campaign:
	// where attack time goes besides the one-time profile. SetupTime
	// covers VM boot, allocation, and relocation hypercalls;
	// RebootTime is the fixed per-respawn cost.
	SteerTime   time.Duration
	ExploitTime time.Duration
	RebootTime  time.Duration
	SetupTime   time.Duration
}

// AvgAttemptTime returns the mean simulated duration of one attempt.
func (r *CampaignResult) AvgAttemptTime() time.Duration {
	if len(r.Attempts) == 0 {
		return 0
	}
	return r.TotalDuration / time.Duration(len(r.Attempts))
}

// physicalBit is a profiled vulnerable bit pinned to physical memory,
// the representation that survives VM respawns.
type physicalBit struct {
	cellHPA  memdef.HPA // host address of the vulnerable byte
	bit      uint
	aggrA    memdef.HPA
	aggrB    memdef.HPA
	epteBit  uint
	oneToVal bool
}

// RunCampaign performs the full Table 3 experiment on a host: profile
// the attacker VM's memory once (recording vulnerable-cell locations
// physically via the GPA-to-HPA hypercall), then repeatedly respawn
// the VM and run Page Steering plus exploitation until an attempt
// succeeds or the attempt budget runs out. Failed attempts cost a VM
// reboot, since hugepage demotion is not reversible (Section 4.3).
func RunCampaign(h *kvm.Host, ccfg CampaignConfig) (*CampaignResult, error) {
	if ccfg.MaxAttempts <= 0 {
		return nil, fmt.Errorf("attack: campaign needs MaxAttempts > 0")
	}
	// The campaign observes through whatever the host is wired to,
	// unless the attack config overrides it.
	if ccfg.Attack.Trace == nil {
		ccfg.Attack.Trace = h.Config().Trace
	}
	if ccfg.Attack.Metrics == nil {
		ccfg.Attack.Metrics = h.Config().Metrics
	}
	if ccfg.Attack.Forensics == nil {
		ccfg.Attack.Forensics = h.Config().Forensics
	}
	if ccfg.Attack.Ledger == nil {
		ccfg.Attack.Ledger = h.Config().Ledger
	}
	ccfg.Attack.Forensics.BeginCampaign(ccfg.MaxAttempts)
	defer ccfg.Attack.Forensics.EndCampaign()
	res := &CampaignResult{}
	span := ccfg.Attack.startSpan("attack.campaign", "maxAttempts", ccfg.MaxAttempts)
	defer func() {
		span.End("attempts", len(res.Attempts), "successes", res.Successes)
	}()
	// Everything below — the one-time profile and every attempt —
	// belongs to this campaign in the recorded span tree.
	ccfg.Attack.Span = span

	// One-time profile, pinned to physical addresses via hypercall.
	vm, err := h.CreateVM(ccfg.VM)
	if err != nil {
		return nil, fmt.Errorf("attack: creating profiling VM: %w", err)
	}
	gos := guest.Boot(vm)
	prof, err := Profile(gos, ccfg.Attack)
	if err != nil {
		vm.Destroy()
		return nil, err
	}
	res.ProfileDuration = prof.Duration
	var bits []physicalBit
	for _, b := range prof.ExploitableBits(0) {
		cell, err1 := gos.Hypercall(b.Flip.GVA)
		aggrA, err2 := gos.Hypercall(b.AggressorA)
		aggrB, err3 := gos.Hypercall(b.AggressorB)
		if err1 != nil || err2 != nil || err3 != nil {
			continue
		}
		bits = append(bits, physicalBit{
			cellHPA: cell, bit: b.Flip.Bit,
			aggrA: aggrA, aggrB: aggrB,
			epteBit: b.Flip.EPTEBit(),
		})
	}
	res.ProfiledBits = len(bits)
	vm.Destroy()
	h.Clock.Advance(simtime.VMReboot)
	res.RebootTime += simtime.VMReboot
	ccfg.Attack.observePhase("reboot", simtime.VMReboot)
	if len(bits) == 0 {
		return res, fmt.Errorf("attack: profile found no exploitable bits")
	}

	// One working set for the whole campaign: attempts clear and
	// refill these buffers instead of re-allocating them.
	ccfg.Attack.scratch = &attemptScratch{}

	attackClock := simtime.NewStopwatch(h.Clock)
	for attempt := 1; attempt <= ccfg.MaxAttempts; attempt++ {
		if ccfg.ChurnOps > 0 && attempt > 1 {
			h.BackgroundChurn(ccfg.ChurnOps)
		}
		stats, err := runAttempt(h, ccfg, bits, attempt)
		if err != nil {
			return res, err
		}
		// Stamp the attempt's end-state memory layout into the trace
		// (no-op unless the host carries an introspection plane).
		h.CensusEvent(fmt.Sprintf("attempt %d", attempt))
		res.Attempts = append(res.Attempts, stats)
		res.TotalDuration = attackClock.Elapsed()
		res.SteerTime += stats.SteerDuration
		res.ExploitTime += stats.ExploitDuration
		res.RebootTime += simtime.VMReboot
		if setup := stats.Duration - stats.SteerDuration - stats.ExploitDuration - simtime.VMReboot; setup > 0 {
			res.SetupTime += setup
		}
		if m := ccfg.Attack.Metrics; m != nil {
			m.Counter("attack_attempts_total", "Steer-and-exploit attempts run.").Inc()
			if stats.Success {
				m.Counter("attack_successes_total", "Attempts that escaped (verified when a secret check is configured).").Inc()
			}
		}
		if stats.Success {
			res.Successes++
			if res.FirstSuccessAttempt == 0 {
				res.FirstSuccessAttempt = attempt
				res.TimeToFirstSuccess = attackClock.Elapsed()
			}
			if ccfg.StopAtFirstSuccess {
				break
			}
		}
	}
	return res, nil
}

// runAttempt performs one steer-and-exploit attempt on a fresh VM.
func runAttempt(h *kvm.Host, ccfg CampaignConfig, bits []physicalBit, index int) (stats AttemptStats, err error) {
	stats = AttemptStats{Index: index}
	ccfg.Attack.Forensics.BeginAttempt(index)
	span := ccfg.Attack.startSpan("attack.attempt", "index", index)
	defer func() { span.End("success", stats.Success) }()
	sw := simtime.NewStopwatch(h.Clock)
	defer func() { stats.Duration = sw.Elapsed() }()

	vm, err := h.CreateVM(ccfg.VM)
	if err != nil {
		return stats, fmt.Errorf("attack: attempt %d: creating VM: %w", index, err)
	}
	defer func() {
		vm.Destroy()
		h.Clock.Advance(simtime.VMReboot)
		ccfg.Attack.observePhase("reboot", simtime.VMReboot)
	}()
	// Registered after the destroy defer so it runs before the
	// respawn: the attempt's forensic end time is when its ladder
	// resolved, not when the replacement VM finished booting. stats is
	// a named return, so the closure sees every field's final value.
	defer func() {
		if stats.Outcome == "" {
			stats.Outcome = forensics.OutcomeError
		}
		ccfg.Attack.Ledger.Stream("attack.outcome").Fold2(uint64(index), ledger.HashString(stats.Outcome))
		ccfg.Attack.Forensics.EndAttempt(forensics.AttemptFacts{
			Index:          index,
			Outcome:        stats.Outcome,
			UsableBits:     stats.UsableBits,
			Released:       stats.Released,
			Splits:         stats.Splits,
			MappingChanges: stats.Changes,
			CandidatePages: stats.Candidates,
			ConfirmedPages: stats.Confirmed,
		})
	}()
	gos := guest.Boot(vm)

	// A fresh spray order per attempt redraws the flip-polarity dice
	// (Section 4.3, "Improving Success Rates").
	acfg := ccfg.Attack
	acfg.SpraySeed = uint64(index)*0x9E3779B97F4A7C15 + 1
	// Steering and exploitation nest under this attempt, not the
	// campaign.
	acfg.Span = span

	// Allocate everything and relocate the profiled bits into the new
	// address space with the hypercall (Section 5.3.2).
	n := gos.FreeHugepages()
	base, err := gos.AllocHuge(n)
	if err != nil {
		return stats, err
	}
	buf := Buffer{Base: base, Hugepages: n}
	scratch := ccfg.Attack.scratch
	hpaToGVA := scratch.hpaMap(n)
	for i := 0; i < n; i++ {
		gva := buf.HugepageBase(i)
		hpa, err := gos.Hypercall(gva)
		if err != nil {
			return stats, err
		}
		hpaToGVA[hpa] = gva
	}
	locate := func(hpa memdef.HPA) (memdef.GVA, bool) {
		hugeBase, ok := hpaToGVA[memdef.HugeBase(hpa)]
		if !ok {
			return 0, false
		}
		return hugeBase + memdef.GVA(hpa-memdef.HugeBase(hpa)), true
	}
	victims := scratch.victims[:0]
	for _, pb := range bits {
		cell, ok1 := locate(pb.cellHPA)
		a, ok2 := locate(pb.aggrA)
		b, ok3 := locate(pb.aggrB)
		if !ok1 || !ok2 || !ok3 {
			continue
		}
		victims = append(victims, VulnBit{
			Flip:        guest.Flip{GVA: cell, Bit: pb.bit},
			AggressorA:  a,
			AggressorB:  b,
			Stable:      true,
			Exploitable: true,
		})
		if len(victims) >= ccfg.Attack.TargetBits*2 {
			break // headroom for hugepage-conflict skips in PageSteer
		}
	}
	scratch.victims = victims
	stats.UsableBits = len(victims)
	if len(victims) == 0 {
		stats.Outcome = forensics.OutcomeNoUsableBit
		return stats, nil // unlucky backing; respawn
	}

	steer, err := PageSteer(gos, acfg, buf, victims)
	if err != nil {
		stats.Outcome = forensics.OutcomeSteerMiss
		return stats, nil // steering found nothing releasable; respawn
	}
	stats.Released = len(steer.Released)
	stats.Splits = steer.Splits
	stats.SteerDuration = steer.Duration

	expl, err := Exploit(gos, acfg, buf, steer)
	if err != nil {
		return stats, err
	}
	stats.ExploitDuration = expl.Duration
	stats.Changes = expl.MappingChanges
	stats.Candidates = expl.CandidateEPTPages
	stats.Confirmed = expl.ConfirmedEPTPages
	if !expl.Success() {
		switch {
		case stats.Changes == 0:
			stats.Outcome = forensics.OutcomeNoMappingChange
		case stats.Candidates == 0:
			stats.Outcome = forensics.OutcomeNoCandidateEPT
		default:
			stats.Outcome = forensics.OutcomeNoConfirmedEPT
		}
		return stats, nil
	}
	if ccfg.VerifyHPA != 0 {
		got, err := expl.Escape.ReadHost(ccfg.VerifyHPA)
		if err != nil || got != ccfg.VerifyValue {
			stats.Outcome = forensics.OutcomeVerifyFailed
			return stats, nil // claimed escape failed verification
		}
	}
	stats.Success = true
	stats.Outcome = forensics.OutcomeEscaped
	return stats, nil
}
