package attack

import (
	"testing"

	"hyperhammer/internal/dram"
	"hyperhammer/internal/guest"
	"hyperhammer/internal/kvm"
	"hyperhammer/internal/memdef"
)

// benchHost is bigHost without the testing.T plumbing.
func benchHost(b *testing.B, seed uint64) *kvm.Host {
	b.Helper()
	h, err := kvm.NewHost(kvm.Config{
		Geometry: bigGeometry(),
		Fault: dram.FaultModelConfig{
			Seed: seed, CellsPerRow: 0.02,
			ThresholdMin: 50_000, ThresholdMax: 200_000,
			StableFraction: 0.9, FlakyP: 0.35,
			NeighborWeight1: 1.0, NeighborWeight2: 0.25,
		},
		THP:            true,
		NXHugepages:    true,
		BootNoisePages: 100,
		Seed:           seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	return h
}

// BenchmarkCampaignAttempt measures one steer-and-exploit attempt —
// the inner loop of the Table 3 campaigns and the dominant cost of a
// full-scale run. The one-time profile and bit relocation setup run
// outside the timer, mirroring how RunCampaign amortizes them.
func BenchmarkCampaignAttempt(b *testing.B) {
	h := benchHost(b, 61)
	ccfg := CampaignConfig{
		Attack:      bigAttackConfig(),
		VM:          kvm.VMConfig{MemSize: 3584 * memdef.MiB, VFIOGroups: 1},
		MaxAttempts: 1,
		ChurnOps:    200,
	}
	ccfg.Attack.scratch = &attemptScratch{}

	// One-time profile pinned to physical addresses, as RunCampaign
	// does before its attempt loop.
	vm, err := h.CreateVM(ccfg.VM)
	if err != nil {
		b.Fatal(err)
	}
	gos := guest.Boot(vm)
	prof, err := Profile(gos, ccfg.Attack)
	if err != nil {
		b.Fatal(err)
	}
	var bits []physicalBit
	for _, bit := range prof.ExploitableBits(0) {
		cell, err1 := gos.Hypercall(bit.Flip.GVA)
		aggrA, err2 := gos.Hypercall(bit.AggressorA)
		aggrB, err3 := gos.Hypercall(bit.AggressorB)
		if err1 != nil || err2 != nil || err3 != nil {
			continue
		}
		bits = append(bits, physicalBit{
			cellHPA: cell, bit: bit.Flip.Bit,
			aggrA: aggrA, aggrB: aggrB,
			epteBit: bit.Flip.EPTEBit(),
		})
	}
	vm.Destroy()
	if len(bits) == 0 {
		b.Fatal("profile found no exploitable bits")
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.BackgroundChurn(ccfg.ChurnOps)
		if _, err := runAttempt(h, ccfg, bits, i+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonteCarlo measures the sharded Monte-Carlo sampler that
// backs the Section 5.3 analysis (one full 500k-sample estimate per
// iteration).
func BenchmarkMonteCarlo(b *testing.B) {
	cfg := MonteCarloConfig{
		Seed:              61,
		Samples:           500_000,
		EPTPages:          6144,
		HostFrames:        int(16 * memdef.GiB / memdef.PageSize),
		ExploitableBitLow: 21, ExploitableBitHigh: 34,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p := MonteCarloSuccess(cfg); p <= 0 {
			b.Fatalf("estimate %v", p)
		}
	}
}
