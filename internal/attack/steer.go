package attack

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"time"

	"hyperhammer/internal/guest"
	"hyperhammer/internal/memdef"
	"hyperhammer/internal/simtime"
	"hyperhammer/internal/viommu"
)

// SteerResult summarizes one Page Steering run (Section 4.2).
type SteerResult struct {
	// IOVAMappings is how many DMA mappings were created to exhaust
	// the host's small-order unmovable free blocks (Step 1).
	IOVAMappings int
	// Released lists the victims whose hugepages were voluntarily
	// released to the host (Step 2), with their pre-release location
	// retained for the exploitation step.
	Released []ReleasedVictim
	// SprayedHugepages is how many hugepages were executed on to
	// force EPT page creation (Step 3); each successful split
	// allocates one EPT page.
	SprayedHugepages int
	// Splits is how many hugepage splits the spray actually caused.
	Splits int
	// Duration is the simulated time steering took.
	Duration time.Duration
}

// ReleasedVictim is a vulnerable bit whose containing hugepage has
// been released to the host. The aggressor addresses remain valid in
// the attacker's address space; the victim's former virtual address
// records where the bit sat within its (now released) 2 MiB block.
type ReleasedVictim struct {
	Bit VulnBit
	// PageIndex is the victim page's index within its released
	// 2 MiB block (0..511).
	PageIndex int
	// ByteInPage and BitInByte locate the cell within the page.
	ByteInPage int
	BitInByte  uint
}

// PageSteer performs the Page Steering attack of Section 4.2 on the
// buffer left allocated by Profile:
//
//  1. Exhaust the host's small-order MIGRATE_UNMOVABLE free blocks by
//     creating thousands of 2 MiB-spaced vIOMMU mappings to a single
//     guest page, each consuming one host IOPT page (Section 4.2.1).
//  2. Voluntarily release the hugepages containing the chosen
//     vulnerable bits through the modified virtio-mem driver
//     (Section 4.2.2).
//  3. Execute code in every remaining hugepage of the buffer, forcing
//     the iTLB Multihit countermeasure to split each one and allocate
//     an EPT page — with high likelihood consuming the released
//     vulnerable pages (Section 4.2.3).
//
// victims must come from a prior Profile on the same guest.
func PageSteer(os *guest.OS, cfg Config, buf Buffer, victims []VulnBit) (*SteerResult, error) {
	span := cfg.startSpan("attack.steer", "victims", len(victims))
	res, err := pageSteer(os, cfg, buf, victims)
	if err != nil {
		span.End("err", err)
		return nil, err
	}
	span.End("iovaMappings", res.IOVAMappings, "released", len(res.Released), "splits", res.Splits)
	cfg.observePhase("steer", res.Duration)
	if m := cfg.Metrics; m != nil {
		m.Counter("attack_released_blocks_total", "Victim hugepage blocks voluntarily released to the host.").Add(uint64(len(res.Released)))
		m.Counter("attack_spray_splits_total", "Hugepage splits forced by the EPT spray.").Add(uint64(res.Splits))
	}
	return res, nil
}

func pageSteer(os *guest.OS, cfg Config, buf Buffer, victims []VulnBit) (*SteerResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sw := simtime.NewStopwatch(os.Clock())
	res := &SteerResult{}
	os.InstallAttackDriver()

	// Step 1: exhaust noise pages. One page of the buffer serves as
	// the DMA target for every mapping; mappings are spaced 2 MiB in
	// IOVA space so each consumes a fresh IOPT leaf page. The budget
	// is spread across all assigned IOMMU groups (65,535 per group).
	if os.Groups() == 0 {
		return nil, fmt.Errorf("attack: no assigned IOMMU group; VFIO device required")
	}
	dmaTarget := buf.Base
	remaining := cfg.IOVAMappings
	for group := 0; group < os.Groups() && remaining > 0; group++ {
		iova := cfg.IOVABase
		for remaining > 0 {
			err := os.MapDMA(group, iova, dmaTarget)
			if errors.Is(err, viommu.ErrMapLimit) {
				break // next group, if any
			}
			if err != nil {
				return nil, fmt.Errorf("attack: DMA mapping: %w", err)
			}
			res.IOVAMappings++
			remaining--
			iova += memdef.HugePageSize
		}
	}

	// Step 2: release the vulnerable hugepages. Victims sharing a
	// hugepage with any kept aggressor must be skipped, as must
	// duplicates and the DMA target's hugepage.
	scratch := scratchOf(cfg)
	keep := scratch.gvaSet(&scratch.keep)
	keep[memdef.HugeBase(dmaTarget)] = true
	for _, v := range victims {
		keep[memdef.HugeBase(v.AggressorA)] = true
		keep[memdef.HugeBase(v.AggressorB)] = true
	}
	released := scratch.gvaSet(&scratch.released)
	for _, v := range victims {
		hp := v.Flip.HugepageBase()
		if keep[hp] || released[hp] {
			continue
		}
		if err := os.ReleaseHugepage(v.Flip.GVA); err != nil {
			return nil, fmt.Errorf("attack: releasing %#x: %w", v.Flip.GVA, err)
		}
		released[hp] = true
		if len(released) >= cfg.TargetBits {
			break
		}
	}
	if len(released) == 0 {
		return nil, fmt.Errorf("attack: no releasable victim hugepages")
	}
	// A released block occasionally contains more than one profiled
	// bit; every one of them is now a live target (the paper assumes
	// one per block, the common case).
	for _, v := range victims {
		hp := v.Flip.HugepageBase()
		if !released[hp] {
			continue
		}
		off := uint64(v.Flip.GVA - hp)
		res.Released = append(res.Released, ReleasedVictim{
			Bit:        v,
			PageIndex:  int(off / memdef.PageSize),
			ByteInPage: int(off % memdef.PageSize),
			BitInByte:  v.Flip.Bit,
		})
	}

	// Step 3: spray EPT pages. Write the idling function into every
	// remaining hugepage of the buffer and execute it; each first
	// execution under the NX-hugepage countermeasure splits the
	// hugepage, allocating one EPT leaf page from the host's
	// unmovable free lists — which the released blocks now dominate.
	// A seeded shuffle of the spray order redraws the chunk-to-frame
	// pairing on every attempt.
	order := scratch.intSlice(buf.Hugepages)
	for i := range order {
		order[i] = i
	}
	if cfg.SpraySeed != 0 {
		rng := rand.New(rand.NewPCG(cfg.SpraySeed, cfg.SpraySeed^0xD1B54A32D192ED03))
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	for _, hp := range order {
		hugeBase := buf.HugepageBase(hp)
		if released[hugeBase] {
			continue
		}
		// The idling function of Listing 1: prologue, nops, ret.
		// One word of actual code is enough to fetch from.
		if err := os.Write64(hugeBase, 0xC3909090_90E58955); err != nil {
			return nil, fmt.Errorf("attack: writing spray code: %w", err)
		}
		split, err := os.Exec(hugeBase)
		if err != nil {
			return nil, fmt.Errorf("attack: spray exec: %w", err)
		}
		res.SprayedHugepages++
		if split {
			res.Splits++
		}
	}
	res.Duration = sw.Elapsed()
	return res, nil
}
