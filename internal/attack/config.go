// Package attack implements HyperHammer itself — the paper's primary
// contribution. It contains the three attack steps of Section 4:
//
//   - memory profiling (Profile): find Rowhammer-vulnerable bits in
//     the VM's memory using the THP low-21-bit address correspondence,
//   - Page Steering (PageSteer): exhaust the host's small unmovable
//     free blocks through vIOMMU, voluntarily release the vulnerable
//     hugepages through the modified virtio-mem driver, and force the
//     hypervisor to allocate EPT pages onto them by triggering the
//     iTLB Multihit countermeasure,
//   - exploitation (Exploit): hammer the steered EPTEs, detect mapping
//     changes via magic values, identify and validate stolen EPT
//     pages, and escalate to arbitrary host memory access.
//
// All attack code operates exclusively through the guest.OS interface:
// it sees only what a malicious tenant sees. The sole exception is the
// GPA-to-HPA debug hypercall, which the paper itself adds for the
// Section 5.3.2 experiment and which only Campaign uses to reuse
// profiling results across VM respawns.
package attack

import (
	"fmt"
	"math/bits"
	"time"

	"hyperhammer/internal/forensics"
	"hyperhammer/internal/ledger"
	"hyperhammer/internal/memdef"
	"hyperhammer/internal/metrics"
	"hyperhammer/internal/trace"
)

// Config holds the attacker's parameters and platform knowledge.
type Config struct {
	// BankMasks is the DRAM bank function recovered with a
	// DRAMDig-style tool on the same processor model (Section 5.1).
	// Only bits below 21 matter to the attacker: within a THP-backed
	// hugepage they determine relative bank equality.
	BankMasks []uint64
	// RowShift is the lowest physical address bit of the DRAM row
	// number (18 on both evaluated machines), also recovered offline.
	RowShift uint
	// HammerRounds is the activation count per hammer pattern
	// (250,000 in the evaluation).
	HammerRounds int
	// StabilityRetests is how many re-hammers a bit must survive to
	// be considered stable.
	StabilityRetests int
	// HostMemBits is ceil(log2(host memory size)); flips above it in
	// a PFN would point outside physical memory (Section 4.1). The
	// attacker knows the machine's nominal memory size.
	HostMemBits uint
	// TargetBits is the number of vulnerable bits exploited per
	// attempt (12 in the evaluation: 12 GiB of guest memory at 1 GiB
	// per bit).
	TargetBits int
	// IOVABase is the first I/O virtual address used for free-list
	// exhaustion (0x1_0000_0000 in the evaluation).
	IOVABase memdef.IOVA
	// IOVAMappings is the number of 2 MiB-spaced DMA mappings used to
	// exhaust noise pages (60,000 in the evaluation).
	IOVAMappings int
	// ProfileHugepages caps how many 2 MiB hugepages the profiler
	// allocates (0 = all available guest memory).
	ProfileHugepages int
	// StopAfterExploitable ends profiling early once this many
	// stable exploitable bits are found (0 = full profile). The
	// end-to-end attack stops at TargetBits (Section 5.3.3).
	StopAfterExploitable int
	// SpraySeed, when nonzero, sprays the EPTE-creation buffer in a
	// seeded-random hugepage order instead of sequentially. Varying
	// the seed across attempts redraws which guest chunk's EPT page
	// lands on the vulnerable frame — and therefore the EPTE bit
	// value at the vulnerable position, which must oppose the cell's
	// fixed flip direction for the flip to land (Section 4.3,
	// "Improving Success Rates"). The ordering is entirely under the
	// attacker's control.
	SpraySeed uint64

	// postMarkHook, when set, runs between Exploit's magic-marking
	// pass and its hammering pass. Test-only: it lets rigged-flip
	// tests inject the exact memory state a successful flip produces
	// at the moment a real flip would land.
	postMarkHook func()

	// scratch, when set by RunCampaign, carries per-attempt reusable
	// buffers so hundreds of attempts don't re-allocate their working
	// sets. Nil for standalone PageSteer/Exploit calls.
	scratch *attemptScratch

	// Trace, when non-nil, receives span.* phase events for the attack
	// steps. RunCampaign defaults it to the host's recorder.
	Trace *trace.Recorder
	// Span, when non-nil, is the parent under which this invocation's
	// phase spans nest. RunCampaign threads the campaign span into the
	// profile and the attempt span into steering and exploitation, so a
	// recorded trace attributes every phase to the attempt that ran it
	// even when campaigns overlap. Left nil, phases open as root spans.
	Span *trace.Span
	// Metrics, when non-nil, receives attack counters and the
	// attack_phase_seconds phase-timing histogram. RunCampaign defaults
	// it to the host's registry.
	Metrics *metrics.Registry
	// Forensics, when non-nil, receives campaign/attempt lifecycle and
	// per-attempt outcome facts for the flip-provenance plane.
	// RunCampaign defaults it to the host's recorder.
	Forensics *forensics.Recorder
	// Ledger, when non-nil, receives each attempt's (index, outcome)
	// pair on the "attack.outcome" determinism stream. RunCampaign
	// defaults it to the host's recorder.
	Ledger *ledger.Recorder
}

// PhaseBuckets is the attack_phase_seconds histogram layout: the
// paper's phases span minutes (steering) to days (profiling).
var PhaseBuckets = []float64{
	60, 300, 900, 1800, 3600, 2 * 3600, 6 * 3600, 12 * 3600,
	24 * 3600, 2 * 24 * 3600, 4 * 24 * 3600, 7 * 24 * 3600,
}

// startSpan opens a phase span nested under c.Span when one is set,
// falling back to a root span on c.Trace.
func (c Config) startSpan(name string, kv ...any) *trace.Span {
	if c.Span != nil {
		return c.Span.StartChild(name, kv...)
	}
	return c.Trace.StartSpan(name, kv...)
}

// observePhase records one phase duration (simulated) in the
// attack_phase_seconds histogram.
func (c Config) observePhase(phase string, d time.Duration) {
	c.Metrics.Histogram("attack_phase_seconds",
		"Simulated wall time spent per attack phase.",
		PhaseBuckets, "phase", phase).ObserveDuration(d)
}

// DefaultConfig returns the evaluation parameters of Section 5 for a
// 16 GiB host. bankMasks is the platform-specific bank function.
func DefaultConfig(bankMasks []uint64) Config {
	return Config{
		BankMasks:        bankMasks,
		RowShift:         18,
		HammerRounds:     250_000,
		StabilityRetests: 3,
		HostMemBits:      34,
		TargetBits:       12,
		IOVABase:         0x1_0000_0000,
		IOVAMappings:     60_000,
	}
}

// Validate checks the configuration for obvious mistakes.
func (c Config) Validate() error {
	if len(c.BankMasks) == 0 {
		return fmt.Errorf("attack: no bank masks configured")
	}
	if c.RowShift == 0 || c.RowShift >= memdef.HugePageShift {
		return fmt.Errorf("attack: row shift %d outside hugepage", c.RowShift)
	}
	if c.HammerRounds <= 0 {
		return fmt.Errorf("attack: hammer rounds %d", c.HammerRounds)
	}
	if c.HostMemBits <= memdef.HugePageShift {
		return fmt.Errorf("attack: host memory bits %d too small", c.HostMemBits)
	}
	return nil
}

// bankClass computes the relative DRAM bank class of an offset within
// a 2 MiB hugepage. Because every bank-function bit below 21 is
// preserved by THP translation, two offsets of the same hugepage with
// equal classes are guaranteed to share a physical DRAM bank — the
// observation that makes profiling tractable (Section 4.1).
func (c Config) bankClass(off uint64) int {
	const low21 = uint64(1)<<memdef.HugePageShift - 1
	cls := 0
	for i, m := range c.BankMasks {
		cls |= int(bits.OnesCount64(off&m&low21)&1) << i
	}
	return cls
}

// bankClasses returns the number of distinguishable bank classes.
func (c Config) bankClasses() int { return 1 << len(c.BankMasks) }

// rowSpan returns the size of one DRAM row-span (the stride between
// consecutive row numbers), 256 KiB on the evaluated machines.
func (c Config) rowSpan() uint64 { return 1 << c.RowShift }

// rowsPerHuge returns how many row-spans one hugepage contains (8).
func (c Config) rowsPerHuge() int { return int(memdef.HugePageSize / c.rowSpan()) }

// exploitableBit reports whether a flip at the given bit position of
// an 8-byte-aligned group would usefully corrupt an EPTE: PFN bits
// that move the mapping beyond the flip's own 2 MiB page but stay
// inside physical memory, i.e. bits 21..HostMemBits-1 (Section 4.1).
func (c Config) exploitableBit(bit uint) bool {
	return bit >= memdef.HugePageShift && bit < c.HostMemBits
}
