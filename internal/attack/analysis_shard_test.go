package attack

import "testing"

func shardTestConfig() MonteCarloConfig {
	return MonteCarloConfig{
		Seed:              1,
		Samples:           500_000,
		EPTPages:          6144,
		HostFrames:        4 * 1024 * 1024,
		ExploitableBitLow: 21, ExploitableBitHigh: 34,
	}
}

// TestMonteCarloShardInvariance pins the determinism contract: the
// sampled probability must be identical whether the sample range runs
// as 1, 2, or 8 shards, because each sample's draws derive from
// (seed, index) alone.
func TestMonteCarloShardInvariance(t *testing.T) {
	cfg := shardTestConfig()
	want := MonteCarloSuccess(cfg)
	if want <= 0 {
		t.Fatalf("estimate = %v, want > 0", want)
	}
	for _, shards := range []int{1, 2, 8} {
		hits := 0
		for s := 0; s < shards; s++ {
			hits += MonteCarloHits(cfg, s, shards)
		}
		got := float64(hits) / float64(cfg.Samples)
		if got != want {
			t.Errorf("%d shards: estimate = %v, want exactly %v", shards, got, want)
		}
	}

	// Odd shard counts that don't divide the sample count evenly must
	// still cover every index exactly once.
	hits := 0
	for s := 0; s < 7; s++ {
		hits += MonteCarloHits(cfg, s, 7)
	}
	if got := float64(hits) / float64(cfg.Samples); got != want {
		t.Errorf("7 shards: estimate = %v, want exactly %v", got, want)
	}
}

// TestMonteCarloEstimateNearDensity: the estimate must approximate the
// configured EPT-page density (the analytic success probability of a
// uniform landing frame).
func TestMonteCarloEstimateNearDensity(t *testing.T) {
	cfg := shardTestConfig()
	density := float64(cfg.EPTPages) / float64(cfg.HostFrames)
	got := MonteCarloSuccess(cfg)
	if got < density*0.9 || got > density*1.1 {
		t.Fatalf("estimate %v not within 10%% of density %v", got, density)
	}
}

// TestMonteCarloDegenerate: invalid shapes yield zero, never panic.
func TestMonteCarloDegenerate(t *testing.T) {
	if MonteCarloSuccess(MonteCarloConfig{}) != 0 {
		t.Error("zero config should estimate 0")
	}
	cfg := shardTestConfig()
	if MonteCarloHits(cfg, 3, 2) != 0 || MonteCarloHits(cfg, -1, 2) != 0 || MonteCarloHits(cfg, 0, 0) != 0 {
		t.Error("out-of-range shard should count 0")
	}
}
