// Package hammer provides the TRRespass-style pattern search the paper
// uses before profiling (Section 5.1): given a guest allocation, try
// candidate hammer patterns (aggressor counts, round counts, row
// placements) and report which ones produce reproducible bit flips on
// the installed DIMMs.
//
// On the evaluated machines the search concludes that single-sided
// patterns (two same-bank consecutive rows on one side of the victim)
// trigger reproducible flips — the pattern the main attack then uses.
package hammer

import (
	"fmt"

	"hyperhammer/internal/guest"
	"hyperhammer/internal/memdef"
	"hyperhammer/internal/metrics"
	"hyperhammer/internal/trace"
)

// Pattern describes one candidate hammer pattern.
type Pattern struct {
	// Name is a human-readable label.
	Name string
	// RowOffsets are the in-hugepage row-span indices of the
	// aggressors (two consecutive spans = the paper's single-sided
	// pattern).
	RowOffsets []int
	// Rounds is the activation count per run.
	Rounds int
}

// DefaultPatterns returns the candidate set the search evaluates,
// orthodox TRRespass style: varying aggressor placement and intensity.
func DefaultPatterns() []Pattern {
	return []Pattern{
		{Name: "single-sided-2 (rows 6,7)", RowOffsets: []int{6, 7}, Rounds: 250_000},
		{Name: "single-sided-2 (rows 0,1)", RowOffsets: []int{0, 1}, Rounds: 250_000},
		{Name: "single-row (row 7)", RowOffsets: []int{7}, Rounds: 250_000},
		{Name: "spaced (rows 5,7)", RowOffsets: []int{5, 7}, Rounds: 250_000},
		{Name: "low-intensity (rows 6,7)", RowOffsets: []int{6, 7}, Rounds: 40_000},
		{Name: "many-sided-8 (TRRespass)", RowOffsets: []int{0, 1, 2, 3, 4, 5, 6, 7}, Rounds: 250_000},
	}
}

// Config tunes the search.
type Config struct {
	// BankMasks is the (recovered) bank function for same-bank
	// placement.
	BankMasks []uint64
	// RowShift is the row-number shift (18).
	RowShift uint
	// Hugepages is how many hugepages to sweep per pattern.
	Hugepages int
	// Repeats is how many times a flip must reproduce for a pattern
	// to count as reliable.
	Repeats int
	// Trace, when non-nil, receives one span per evaluated pattern.
	Trace *trace.Recorder
	// Metrics, when non-nil, receives per-pattern flip counters.
	Metrics *metrics.Registry
}

// Result reports one pattern's effectiveness.
type Result struct {
	Pattern Pattern
	// Flips is the number of distinct bits the pattern flipped
	// during the sweep.
	Flips int
	// Reproducible is the number of those that flipped again on
	// every repeat.
	Reproducible int
}

// Search allocates a test buffer and evaluates each pattern. The
// buffer is freed before returning.
func Search(os *guest.OS, cfg Config, patterns []Pattern) ([]Result, error) {
	if cfg.Hugepages <= 0 || cfg.Repeats <= 0 || len(cfg.BankMasks) == 0 || cfg.RowShift == 0 {
		return nil, fmt.Errorf("hammer: bad config %+v", cfg)
	}
	n := cfg.Hugepages
	if n > os.FreeHugepages() {
		n = os.FreeHugepages()
	}
	if n < 2 {
		return nil, fmt.Errorf("hammer: need at least 2 hugepages")
	}
	base, err := os.AllocHuge(n)
	if err != nil {
		return nil, err
	}
	defer func() { _ = os.FreeHuge(base, n) }()

	const pattern = 0x5555555555555555
	fill := func() error {
		return os.FillPages(base, n*memdef.PagesPerHuge, pattern)
	}

	var out []Result
	var specs []guest.HammerSpec
	var gvas []memdef.GVA
	for _, pat := range patterns {
		span := cfg.Trace.StartSpan("hammer.pattern", "pattern", pat.Name, "rounds", pat.Rounds)
		if err := fill(); err != nil {
			span.End("err", err)
			return nil, err
		}
		os.ScanForFlips() // drain stale observations
		res := Result{Pattern: pat}
		// One run across the whole buffer, bank class 0 only: the
		// search gauges pattern effectiveness, not coverage. No scans
		// happen between the per-hugepage runs, so the sweep is one
		// batched submission.
		aggr := aggressorsFor(cfg, pat)
		if len(aggr) == 0 {
			err := fmt.Errorf("hammer: pattern has no aggressors")
			span.End("err", err)
			return nil, err
		}
		specs, gvas = specs[:0], gvas[:0]
		for hp := 0; hp < n; hp++ {
			hugeBase := base + memdef.GVA(hp)*memdef.HugePageSize
			off := len(gvas)
			gvas = appendAggressors(gvas, hugeBase, aggr)
			specs = append(specs, guest.HammerSpec{Aggressors: gvas[off:len(gvas):len(gvas)], Rounds: pat.Rounds})
		}
		if err := os.HammerBatch(specs); err != nil {
			span.End("err", err)
			return nil, err
		}
		flips := os.ScanForFlips()
		res.Flips = len(flips)
		// Reproducibility: re-arm and re-run per flip.
		for _, f := range flips {
			page := f.GVA &^ (memdef.PageSize - 1)
			ok := true
			for r := 0; r < cfg.Repeats && ok; r++ {
				if err := os.FillPage(page, pattern); err != nil {
					ok = false
					break
				}
				hugeBase := memdef.HugeBase(f.GVA) // approximate re-aim
				if err := hammerOnce(os, hugeBase, aggr, pat.Rounds); err != nil {
					span.End("err", err)
					return nil, err
				}
				w, err := os.Read64(f.GVA &^ 7)
				if err != nil {
					ok = false
					break
				}
				pos := f.EPTEBit()
				if (w>>pos)&1 == (uint64(pattern)>>pos)&1 {
					ok = false
				}
			}
			if ok {
				res.Reproducible++
			}
		}
		span.End("flips", res.Flips, "reproducible", res.Reproducible)
		if m := cfg.Metrics; m != nil {
			m.Counter("hammer_patterns_total", "Candidate hammer patterns evaluated by the search.").Inc()
			m.Counter("hammer_pattern_flips_total", "Distinct bits flipped during pattern sweeps.").Add(uint64(res.Flips))
			m.Counter("hammer_pattern_reproducible_total", "Sweep flips that reproduced on every repeat.").Add(uint64(res.Reproducible))
		}
		out = append(out, res)
	}
	return out, nil
}

// aggressorsFor picks, for bank class 0, one offset per aggressor row
// of the pattern.
func aggressorsFor(cfg Config, pat Pattern) []uint64 {
	span := uint64(1) << cfg.RowShift
	var offs []uint64
	for _, row := range pat.RowOffsets {
		base := uint64(row) * span
		for off := base; off < base+span; off += 64 {
			if bankClass(cfg.BankMasks, off) == 0 {
				offs = append(offs, off)
				break
			}
		}
	}
	return offs
}

func bankClass(masks []uint64, off uint64) int {
	cls := 0
	for i, m := range masks {
		v := off & m & (1<<memdef.HugePageShift - 1)
		// parity
		p := 0
		for v != 0 {
			p ^= 1
			v &= v - 1
		}
		cls |= p << i
	}
	return cls
}

// appendAggressors appends the pattern's guest addresses for one
// hugepage, mirroring hammerOnce's shapes: a single aggressor is
// doubled ([a, a]) so the batched op hashes to the same RNG stream as
// os.Hammer(a, a, ...).
func appendAggressors(dst []memdef.GVA, hugeBase memdef.GVA, aggrOffsets []uint64) []memdef.GVA {
	if len(aggrOffsets) == 1 {
		a := hugeBase + memdef.GVA(aggrOffsets[0])
		return append(dst, a, a)
	}
	for _, off := range aggrOffsets {
		dst = append(dst, hugeBase+memdef.GVA(off))
	}
	return dst
}

// hammerOnce drives the aggressor set for the reproducibility retests.
// Patterns with one aggressor hammer it against itself (classic
// single-row hammering is strictly weaker — the row buffer stays open
// — which the search should discover); wider sets run the many-sided
// loop.
func hammerOnce(os *guest.OS, hugeBase memdef.GVA, aggrOffsets []uint64, rounds int) error {
	switch len(aggrOffsets) {
	case 0:
		return fmt.Errorf("hammer: pattern has no aggressors")
	case 1:
		a := hugeBase + memdef.GVA(aggrOffsets[0])
		return os.Hammer(a, a, rounds)
	case 2:
		a := hugeBase + memdef.GVA(aggrOffsets[0])
		b := hugeBase + memdef.GVA(aggrOffsets[1])
		return os.Hammer(a, b, rounds)
	default:
		addrs := make([]memdef.GVA, 0, len(aggrOffsets))
		for _, off := range aggrOffsets {
			addrs = append(addrs, hugeBase+memdef.GVA(off))
		}
		return os.HammerMany(addrs, rounds)
	}
}

// Best returns the pattern with the most reproducible flips.
func Best(results []Result) (Result, bool) {
	var best Result
	found := false
	for _, r := range results {
		if !found || r.Reproducible > best.Reproducible ||
			(r.Reproducible == best.Reproducible && r.Flips > best.Flips) {
			best = r
			found = true
		}
	}
	return best, found
}
