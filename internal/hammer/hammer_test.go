package hammer

import (
	"testing"

	"hyperhammer/internal/dram"
	"hyperhammer/internal/guest"
	"hyperhammer/internal/kvm"
	"hyperhammer/internal/memdef"
)

func testGeometry() *dram.Geometry {
	return dram.MustGeometry(dram.Geometry{
		Name: "test-256M",
		Size: 256 * memdef.MiB,
		BankMasks: []uint64{
			1<<17 | 1<<21,
			1<<16 | 1<<20,
			1<<15 | 1<<19,
			1<<14 | 1<<18,
			1<<6 | 1<<13,
		},
		RowShift: 18,
		RowBits:  10,
	})
}

func bootGuest(t *testing.T) *guest.OS {
	t.Helper()
	h, err := kvm.NewHost(kvm.Config{
		Geometry: testGeometry(),
		Fault: dram.FaultModelConfig{
			Seed: 8, CellsPerRow: 1.0,
			ThresholdMin: 50_000, ThresholdMax: 150_000,
			StableFraction: 0.95, FlakyP: 0.5,
			NeighborWeight1: 1.0, NeighborWeight2: 0.25,
		},
		THP: true, NXHugepages: true, BootNoisePages: 200, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	vm, err := h.CreateVM(kvm.VMConfig{MemSize: 160 * memdef.MiB, VFIOGroups: 1})
	if err != nil {
		t.Fatal(err)
	}
	return guest.Boot(vm)
}

func testConfig() Config {
	return Config{
		BankMasks: testGeometry().BankMasks,
		RowShift:  18,
		Hugepages: 32,
		Repeats:   2,
	}
}

// The search must reach the paper's Section 5.1 conclusion: the
// two-row single-sided pattern produces reproducible flips, while
// single-row and low-intensity patterns do not.
func TestSearchFindsSingleSidedPattern(t *testing.T) {
	os := bootGuest(t)
	results, err := Search(os, testConfig(), DefaultPatterns())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(DefaultPatterns()) {
		t.Fatalf("results = %d", len(results))
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Pattern.Name] = r
	}
	if byName["single-row (row 7)"].Flips != 0 {
		t.Errorf("single-row pattern flipped %d bits; row-buffer model broken",
			byName["single-row (row 7)"].Flips)
	}
	if byName["low-intensity (rows 6,7)"].Flips != 0 {
		t.Errorf("40k rounds flipped %d bits below threshold",
			byName["low-intensity (rows 6,7)"].Flips)
	}
	ss := byName["single-sided-2 (rows 6,7)"]
	if ss.Flips == 0 || ss.Reproducible == 0 {
		t.Errorf("single-sided pattern found %d flips, %d reproducible", ss.Flips, ss.Reproducible)
	}
	best, ok := Best(results)
	if !ok {
		t.Fatal("no best pattern")
	}
	if best.Pattern.Rounds != 250_000 || len(best.Pattern.RowOffsets) != 2 {
		t.Errorf("best pattern = %+v, want a two-row 250k pattern", best.Pattern)
	}
	// The buffer must have been returned.
	if os.FreeHugepages() == 0 {
		t.Error("search leaked the test buffer")
	}
}

func TestSearchBadConfig(t *testing.T) {
	os := bootGuest(t)
	for _, cfg := range []Config{
		{},
		{BankMasks: []uint64{1 << 6}, RowShift: 18, Hugepages: 0, Repeats: 1},
		{BankMasks: []uint64{1 << 6}, RowShift: 0, Hugepages: 4, Repeats: 1},
	} {
		if _, err := Search(os, cfg, DefaultPatterns()); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestBestEmpty(t *testing.T) {
	if _, ok := Best(nil); ok {
		t.Error("Best of nothing")
	}
}
