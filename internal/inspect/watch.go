package inspect

import (
	"fmt"
	"strings"
)

// The watchpoint engine evaluates declarative threshold rules over the
// live machine at sample ticks on the simulated clock. A rule names a
// value — any registry counter or gauge, a rate() over one, or a
// heatmap-derived dram.* value — an operator, and a threshold.
// Everything it reads is seed-deterministic and everything it produces
// is stamped with simulated time, so the alert stream is byte-identical
// across runs and across -parallel worker counts.

// TriggerMode selects when a rule that holds fires an alert.
type TriggerMode string

const (
	// Edge fires once per false→true transition and re-arms when the
	// condition clears — the default for "something happened" rules.
	Edge TriggerMode = "edge"
	// Level fires at every sample tick while the condition holds.
	Level TriggerMode = "level"
)

// Rule is one declarative watchpoint.
type Rule struct {
	// Name identifies the rule in alerts and tables.
	Name string `json:"name"`
	// Metric is the value key: a registry counter/gauge name (or
	// "name{k=v}" for one labeled series; the bare name sums across
	// labels), a derived dram.* value, or "rate(<key>)" for the
	// per-simulated-second rate of a key between sample ticks.
	Metric string `json:"metric"`
	// Op is one of > >= < <= == !=.
	Op string `json:"op"`
	// Threshold is the compared bound.
	Threshold float64 `json:"threshold"`
	// Mode is Edge (default) or Level.
	Mode TriggerMode `json:"mode,omitempty"`
	// Help explains what firing means.
	Help string `json:"help,omitempty"`
}

// Expr renders the rule's condition.
func (r Rule) Expr() string {
	return fmt.Sprintf("%s %s %g", r.Metric, r.Op, r.Threshold)
}

// DefaultRules is the stock rule set: TRR-relevant row pressure, TRR
// neutralizations, hugepage split onset, applied flips, host machine
// checks, and obs event-bus drops (satellite of the introspection
// plane: silent event loss becomes a visible alert).
func DefaultRules() []Rule {
	return []Rule{
		{
			Name: "dram-row-pressure", Metric: "dram.row_window_activations",
			Op: ">", Threshold: 120_000, Mode: Edge,
			Help: "a row's per-refresh-window activations exceeded the minimum Rowhammer flip threshold",
		},
		{
			Name: "trr-neutralizing", Metric: "dram_trr_neutralized_total",
			Op: ">", Threshold: 0, Mode: Edge,
			Help: "the in-DRAM TRR tracker started neutralizing aggressor rows (mitigation variants)",
		},
		{
			Name: "ept-split-onset", Metric: "rate(ept_splits_total)",
			Op: ">", Threshold: 0, Mode: Edge,
			Help: "hugepages are being demoted to 4 KiB leaf tables (NX-hugepage splits)",
		},
		{
			Name: "flips-applied", Metric: "dram_flips_total",
			Op: ">", Threshold: 0, Mode: Edge,
			Help: "at least one Rowhammer bit flip changed memory contents",
		},
		{
			Name: "host-machine-check", Metric: "host_machine_checks_total",
			Op: ">", Threshold: 0, Mode: Edge,
			Help: "the host crashed on an uncorrectable error or iTLB multihit",
		},
		{
			Name: "obs-bus-drops", Metric: "obs_bus_dropped_total",
			Op: ">", Threshold: 0, Mode: Edge,
			Help: "the observability event bus dropped events on a slow subscriber",
		},
	}
}

// Alert is one fired watchpoint.
type Alert struct {
	// Rule and Expr identify what fired; Unit tags the plan unit the
	// alert came from ("" for a single campaign).
	Rule string `json:"rule"`
	Expr string `json:"expr"`
	Unit string `json:"unit,omitempty"`
	// SimSeconds is when, on the simulated clock.
	SimSeconds float64 `json:"t"`
	// Value is the observed value that crossed the threshold.
	Value float64 `json:"value"`
}

// RuleCount is a per-rule fired total, sorted by rule name.
type RuleCount struct {
	Rule  string `json:"rule"`
	Count uint64 `json:"count"`
}

// AlertsSnapshot is the JSON form served at /api/alerts and embedded
// in run artifacts. Slices are always non-nil.
type AlertsSnapshot struct {
	// Total counts every alert ever fired (Recent is bounded).
	Total uint64 `json:"total"`
	// ByRule breaks the total down per rule.
	ByRule []RuleCount `json:"byRule"`
	// Recent is the bounded alert ring, oldest first.
	Recent []Alert `json:"recent"`
}

// ruleState tracks one rule's trigger and rate memory between ticks.
type ruleState struct {
	active  bool
	prevVal float64
	prevT   float64
	hasPrev bool
}

// compare applies the rule operator.
func compare(v float64, op string, threshold float64) bool {
	switch op {
	case ">":
		return v > threshold
	case ">=":
		return v >= threshold
	case "<":
		return v < threshold
	case "<=":
		return v <= threshold
	case "==":
		return v == threshold
	case "!=":
		return v != threshold
	default:
		return false
	}
}

// rateInner extracts K from "rate(K)"; ok is false for plain keys.
func rateInner(metric string) (string, bool) {
	if strings.HasPrefix(metric, "rate(") && strings.HasSuffix(metric, ")") {
		return metric[len("rate(") : len(metric)-1], true
	}
	return "", false
}
