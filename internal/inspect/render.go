package inspect

// ASCII rendering for introspection snapshots, shared by hh-top (live
// and -once) and the hh-inspect heatmap subcommand so the two tools
// show the same machine the same way.

import (
	"fmt"
	"strings"

	"hyperhammer/internal/report"
)

// shades orders cells from cold to hot; index scales linearly with the
// cell's fraction of the hottest cell, except that any non-zero cell is
// at least one step above blank so sparse activity stays visible.
const shades = " .:-=+*#%@"

// RenderHeatmap draws the per-bank activation heatmap as one shaded
// line per bank, with flip positions overlaid as 'F'.
func RenderHeatmap(s HeatmapSnapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "DRAM activation heatmap  (%d banks x %d row buckets, %d rows/bank)\n",
		s.Banks, s.Buckets, s.Rows)
	fmt.Fprintf(&b, "activations=%d  flips=%d  max_row_window=%d\n",
		s.TotalActivations, s.TotalFlips, s.MaxRowWindowActivations)
	if s.Banks == 0 || s.Buckets == 0 {
		b.WriteString("(no machine bound)\n")
		return b.String()
	}
	var maxCell int64
	for _, bank := range s.Activations {
		for _, c := range bank {
			if c > maxCell {
				maxCell = c
			}
		}
	}
	fmt.Fprintf(&b, "scale: '%c'=0 .. '%c'=%d per bucket; F=applied flip\n",
		shades[0], shades[len(shades)-1], maxCell)
	for bank := 0; bank < s.Banks; bank++ {
		b.WriteString(fmt.Sprintf("bank %2d |", bank))
		for bucket := 0; bucket < s.Buckets; bucket++ {
			if bank < len(s.Flips) && bucket < len(s.Flips[bank]) && s.Flips[bank][bucket] > 0 {
				b.WriteByte('F')
				continue
			}
			var c int64
			if bank < len(s.Activations) && bucket < len(s.Activations[bank]) {
				c = s.Activations[bank][bucket]
			}
			b.WriteByte(shadeOf(c, maxCell))
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// shadeOf picks the shade character for a cell.
func shadeOf(c, maxCell int64) byte {
	if c <= 0 || maxCell <= 0 {
		return shades[0]
	}
	idx := int(c * int64(len(shades)-1) / maxCell)
	if idx < 1 {
		idx = 1 // non-zero cells never render blank
	}
	if idx > len(shades)-1 {
		idx = len(shades) - 1
	}
	return shades[idx]
}

// RenderCensus draws the memory-layout census, one row per tagged
// census (plan units in declaration order, live host last).
func RenderCensus(s CensusSnapshot) string {
	t := report.NewTable("Memory-layout census",
		"unit", "t(s)", "vms", "ept_4k", "ept_2m", "splits", "tables",
		"buddy_free", "noise", "plugged_MiB", "flips")
	for _, tc := range s.Censuses {
		unit := tc.Unit
		if unit == "" {
			unit = "(host)"
		}
		c := tc.Census
		crashed := ""
		if c.Crashed {
			crashed = "!"
		}
		t.AddRow(unit+crashed, fmt.Sprintf("%.1f", c.SimSeconds), c.VMs,
			c.EPT.Leaves4K, c.EPT.Leaves2M, c.EPT.Splits, c.EPT.TotalTables,
			c.Buddy.FreePages, c.Buddy.NoiseUnmovable,
			c.Virtio.PluggedBytes>>20, c.Phys.FlipsApplied)
	}
	if len(s.Censuses) == 0 {
		t.AddRow("(none)", "-", "-", "-", "-", "-", "-", "-", "-", "-", "-")
	}
	return t.String()
}

// RenderAlerts draws the fired-watchpoint summary and the recent-alert
// ring.
func RenderAlerts(s AlertsSnapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Watchpoint alerts: %d fired\n", s.Total)
	if len(s.ByRule) > 0 {
		t := report.NewTable("", "rule", "count")
		for _, rc := range s.ByRule {
			t.AddRow(rc.Rule, rc.Count)
		}
		b.WriteString(t.String())
	}
	if len(s.Recent) > 0 {
		t := report.NewTable("", "t(s)", "rule", "unit", "condition", "value")
		for _, a := range s.Recent {
			unit := a.Unit
			if unit == "" {
				unit = "-"
			}
			t.AddRow(fmt.Sprintf("%.2f", a.SimSeconds), a.Rule, unit, a.Expr,
				fmt.Sprintf("%g", a.Value))
		}
		b.WriteString(t.String())
	}
	return b.String()
}
