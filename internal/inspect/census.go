package inspect

// The memory-layout census folds one host's guest-visible memory
// organization into a single structure: how the guest's address space
// is mapped (EPT page-size distribution), what the host allocator's
// free lists look like (buddy occupancy — the attacker-relevant
// fragmentation state), how much of each virtio-mem region is plugged,
// and who owns the physical frames. Every field is a sum or a count,
// so assembling it never depends on map iteration order and the same
// seed always produces the same census.

// EPTCensus is the guest translation-structure summary, aggregated
// over every live VM on the host.
type EPTCensus struct {
	// Leaves4K and Leaves2M count installed leaf mappings by page
	// size (hypervisor bookkeeping, O(1) per host).
	Leaves4K int `json:"leaves4k"`
	Leaves2M int `json:"leaves2m"`
	// Splits counts multihit-countermeasure hugepage demotions.
	Splits int `json:"splits"`
	// TablePages counts hypervisor-allocated table pages by level
	// (index = level; level 1 is the paper's "EPT pages" count E).
	TablePages []int `json:"tablePages"`
	// TotalTables is the all-level table-page count including IOPTs.
	TotalTables int `json:"totalTables"`
}

// BuddyCensus is the host page allocator's freelist occupancy — the
// simulation's /proc/pagetypeinfo.
type BuddyCensus struct {
	FreePages uint64 `json:"freePages"`
	// PCPPages counts pages parked on the per-CPU lists.
	PCPPages int `json:"pcpPages"`
	// NoiseUnmovable is the Figure 3 "noise pages" metric: free
	// small-order MIGRATE_UNMOVABLE pages.
	NoiseUnmovable int `json:"noiseUnmovable"`
	// FreeBlocks is the [migratetype][order] free-block table.
	FreeBlocks [][]int `json:"freeBlocks"`
}

// VirtioCensus aggregates the virtio-mem plug state across devices.
type VirtioCensus struct {
	Devices          int    `json:"devices"`
	RegionBytes      uint64 `json:"regionBytes"`
	PluggedBytes     uint64 `json:"pluggedBytes"`
	RequestedBytes   uint64 `json:"requestedBytes"`
	PluggedSubBlocks int    `json:"pluggedSubBlocks"`
	// NACKs counts refused plug/unplug requests (e.g. quarantined).
	NACKs int `json:"nacks"`
}

// PhysCensus is frame-ownership accounting from the host's side.
type PhysCensus struct {
	Frames int `json:"frames"`
	// Materialized counts frames whose contents have been touched
	// (the simulation materializes lazily).
	Materialized int `json:"materialized"`
	// KernelPages are frames the host kernel holds forever.
	KernelPages int `json:"kernelPages"`
	// TableFrames are live EPT/IOPT table frames (the steering
	// target).
	TableFrames int `json:"tableFrames"`
	// ReleasedBlocks counts order-9 blocks VMs released via
	// virtio-mem.
	ReleasedBlocks int `json:"releasedBlocks"`
	// FlipsApplied counts Rowhammer flips committed to memory.
	FlipsApplied int `json:"flipsApplied"`
}

// Census is one host's folded memory-layout state.
type Census struct {
	// SimSeconds is the host clock reading the census was taken at.
	SimSeconds float64 `json:"simSeconds"`
	// Geometry names the DRAM addressing model.
	Geometry string `json:"geometry"`
	// VMs is the live guest count.
	VMs int `json:"vms"`
	// Crashed marks a machine-checked host.
	Crashed bool `json:"crashed,omitempty"`

	EPT    EPTCensus    `json:"ept"`
	Buddy  BuddyCensus  `json:"buddy"`
	Virtio VirtioCensus `json:"virtio"`
	Phys   PhysCensus   `json:"phys"`
}

// TaggedCensus is a census attributed to the plan unit whose host it
// describes ("" for a single-campaign run).
type TaggedCensus struct {
	Unit   string `json:"unit,omitempty"`
	Census Census `json:"census"`
}

// CensusSnapshot is the JSON form served at /api/census and embedded
// in run artifacts: one entry per plan unit in declaration order, plus
// the live host's current census last when one is bound. Censuses is
// always non-nil.
type CensusSnapshot struct {
	Censuses []TaggedCensus `json:"censuses"`
}

// flatten emits every numeric census field as "prefix.path" rows, the
// form hh-diff compares with zero default tolerance.
func (c Census) flatten(prefix string, emit func(key string, v float64)) {
	emit(prefix+"sim_seconds", c.SimSeconds)
	emit(prefix+"vms", float64(c.VMs))
	crashed := 0.0
	if c.Crashed {
		crashed = 1
	}
	emit(prefix+"crashed", crashed)
	emit(prefix+"ept.leaves4k", float64(c.EPT.Leaves4K))
	emit(prefix+"ept.leaves2m", float64(c.EPT.Leaves2M))
	emit(prefix+"ept.splits", float64(c.EPT.Splits))
	emit(prefix+"ept.total_tables", float64(c.EPT.TotalTables))
	emit(prefix+"buddy.free_pages", float64(c.Buddy.FreePages))
	emit(prefix+"buddy.pcp_pages", float64(c.Buddy.PCPPages))
	emit(prefix+"buddy.noise_unmovable", float64(c.Buddy.NoiseUnmovable))
	emit(prefix+"virtio.plugged_bytes", float64(c.Virtio.PluggedBytes))
	emit(prefix+"virtio.plugged_subblocks", float64(c.Virtio.PluggedSubBlocks))
	emit(prefix+"virtio.nacks", float64(c.Virtio.NACKs))
	emit(prefix+"phys.materialized", float64(c.Phys.Materialized))
	emit(prefix+"phys.table_frames", float64(c.Phys.TableFrames))
	emit(prefix+"phys.released_blocks", float64(c.Phys.ReleasedBlocks))
	emit(prefix+"phys.flips_applied", float64(c.Phys.FlipsApplied))
}

// FlattenCensuses emits comparison rows for every tagged census.
func FlattenCensuses(s *CensusSnapshot, emit func(key string, v float64)) {
	if s == nil {
		return
	}
	for _, tc := range s.Censuses {
		prefix := "census."
		if tc.Unit != "" {
			prefix = "census[" + tc.Unit + "]."
		}
		tc.Census.flatten(prefix, emit)
	}
}
