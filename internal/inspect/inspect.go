// Package inspect is the simulated-hardware introspection plane: where
// internal/metrics and internal/obs show what the *runner* is doing,
// inspect snapshots what the *simulated machine* looks like while a
// campaign runs — per-bank DRAM activation heatmaps and flip maps fed
// by cheap accumulation hooks in the fault model, a memory-layout
// census folding EPT page-size distribution, buddy freelist occupancy,
// virtio-mem plug state and frame ownership into one structure, and a
// sim-time watchpoint engine evaluating declarative threshold rules at
// sample ticks.
//
// Like the rest of the observability stack, the plane observes from
// the host operator's side and feeds nothing back into simulated
// state; everything it records is driven by the simulated clock and
// seed-deterministic inputs, so enabling it cannot perturb results and
// its snapshots are byte-identical across runs and across -parallel
// worker counts (per-unit inspectors absorb in declaration order,
// mirroring the metrics/trace/profile scopes).
package inspect

import (
	"sort"
	"sync"
	"time"

	"hyperhammer/internal/metrics"
)

// Config tunes an Inspector. The zero value selects usable defaults.
type Config struct {
	// RowBuckets is the per-bank heatmap bucket count (default
	// DefaultRowBuckets).
	RowBuckets int
	// MaxAlerts bounds the retained alert ring (default 256; totals
	// keep counting past the bound).
	MaxAlerts int
	// SampleEvery is the simulated-time interval between watchpoint
	// evaluations (default 1 simulated second). Independent of the
	// obs sampling interval so artifacts don't change with -obs-sample.
	SampleEvery time.Duration
	// Rules is the watchpoint rule set (nil selects DefaultRules).
	Rules []Rule
}

// DefaultMaxAlerts bounds the retained alert ring.
const DefaultMaxAlerts = 256

func (c Config) withDefaults() Config {
	if c.RowBuckets <= 0 {
		c.RowBuckets = DefaultRowBuckets
	}
	if c.MaxAlerts <= 0 {
		c.MaxAlerts = DefaultMaxAlerts
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = time.Second
	}
	if c.Rules == nil {
		c.Rules = DefaultRules()
	}
	return c
}

// Inspector accumulates introspection state for one telemetry scope: a
// whole CLI run, or one scheduled plan unit (see Scoped/Absorb). All
// methods are safe for concurrent use and no-ops on a nil receiver, so
// config threading never guards.
type Inspector struct {
	cfg Config

	mu   sync.Mutex
	heat *Heatmap
	// reg is the metrics registry watchpoint rules read values from.
	reg *metrics.Registry
	// censusFn builds the bound host's current census.
	censusFn func() Census
	// emit publishes fired alerts as structured trace events
	// ("watchpoint.alert"), which the obs plane's trace tap relays
	// onto the event bus.
	emit func(kind string, kv ...any)

	rules  []Rule
	state  []ruleState
	alerts []Alert
	total  uint64
	byRule map[string]uint64

	// census caches the bound host's census as of the last Evaluate
	// tick. The cache is what concurrent readers (the HTTP endpoints,
	// the live artifact builder) see: censusFn walks raw host state
	// and is only ever called on the simulating goroutine.
	census *Census

	// absorbed holds per-unit censuses folded in declaration order.
	absorbed []TaggedCensus
}

// New creates an Inspector.
func New(cfg Config) *Inspector {
	cfg = cfg.withDefaults()
	return &Inspector{
		cfg:    cfg,
		heat:   NewHeatmap(0, 0, cfg.RowBuckets),
		rules:  append([]Rule(nil), cfg.Rules...),
		state:  make([]ruleState, len(cfg.Rules)),
		byRule: make(map[string]uint64),
	}
}

// Scoped returns a fresh Inspector with the same configuration, for
// one scheduled plan unit; fold it back with Absorb. Nil-safe.
func (ins *Inspector) Scoped() *Inspector {
	if ins == nil {
		return nil
	}
	return New(ins.cfg)
}

// SampleEvery returns the watchpoint evaluation interval.
func (ins *Inspector) SampleEvery() time.Duration {
	if ins == nil {
		return 0
	}
	return ins.cfg.SampleEvery
}

// BindMachine sizes the heatmap for a host's DRAM dimensions. Called
// at host boot; re-binding (a unit booting several hosts) keeps
// accumulated counts and grows dimensions as needed.
func (ins *Inspector) BindMachine(banks, rows int) {
	if ins == nil {
		return
	}
	ins.mu.Lock()
	ins.heat.resize(banks, rows)
	ins.mu.Unlock()
}

// SetMetrics installs the registry watchpoint rules read from.
func (ins *Inspector) SetMetrics(reg *metrics.Registry) {
	if ins == nil {
		return
	}
	ins.mu.Lock()
	ins.reg = reg
	ins.mu.Unlock()
}

// SetCensusFunc installs the bound host's census builder; the most
// recently bound host is the "live machine" census snapshots describe.
func (ins *Inspector) SetCensusFunc(fn func() Census) {
	if ins == nil {
		return
	}
	ins.mu.Lock()
	ins.censusFn = fn
	ins.mu.Unlock()
}

// SetEmit installs the structured-event hook fired alerts go through
// (normally the host trace recorder's Emit).
func (ins *Inspector) SetEmit(fn func(kind string, kv ...any)) {
	if ins == nil {
		return
	}
	ins.mu.Lock()
	ins.emit = fn
	ins.mu.Unlock()
}

// RecordRowActivations implements dram.ActivationSink: the fault model
// reports post-TRR, window-clipped per-row activation pressure here.
func (ins *Inspector) RecordRowActivations(bank, row int, n int64) {
	if ins == nil {
		return
	}
	ins.mu.Lock()
	ins.heat.addActivations(bank, row, n)
	ins.mu.Unlock()
}

// RecordFlip records one applied bit flip on (bank, row).
func (ins *Inspector) RecordFlip(bank, row int) {
	if ins == nil {
		return
	}
	ins.mu.Lock()
	ins.heat.addFlip(bank, row)
	ins.mu.Unlock()
}

// Evaluate runs every watchpoint rule against the current machine at
// the given simulated time and refreshes the census cache.
// kvm.NewHost arms it on the host clock via OnTick, so it always runs
// on the simulating goroutine; tests call it directly.
func (ins *Inspector) Evaluate(now time.Duration) {
	if ins == nil {
		return
	}
	ins.mu.Lock()
	fn := ins.censusFn
	ins.mu.Unlock()
	var census *Census
	if fn != nil {
		// Outside the lock: the builder walks host structures and may
		// take arbitrary time relative to concurrent snapshot readers.
		c := fn()
		census = &c
	}
	ins.mu.Lock()
	defer ins.mu.Unlock()
	if census != nil {
		ins.census = census
	}
	if len(ins.rules) == 0 {
		return
	}
	t := now.Seconds()
	vals := ins.valuesLocked()
	for i := range ins.rules {
		r := ins.rules[i]
		st := &ins.state[i]
		key := r.Metric
		isRate := false
		if inner, ok := rateInner(r.Metric); ok {
			key, isRate = inner, true
		}
		v, ok := vals[key]
		if !ok {
			continue
		}
		if isRate {
			raw := v
			if !st.hasPrev || t <= st.prevT {
				st.prevVal, st.prevT, st.hasPrev = raw, t, true
				continue
			}
			v = (raw - st.prevVal) / (t - st.prevT)
			st.prevVal, st.prevT = raw, t
		}
		cond := compare(v, r.Op, r.Threshold)
		fire := cond && (r.Mode == Level || !st.active)
		st.active = cond
		if fire {
			ins.fireLocked(r, "", t, v)
		}
	}
}

// fireLocked records one alert and emits it as a structured event.
func (ins *Inspector) fireLocked(r Rule, unit string, t, v float64) {
	ins.total++
	ins.byRule[r.Name]++
	ins.alerts = append(ins.alerts, Alert{
		Rule: r.Name, Expr: r.Expr(), Unit: unit, SimSeconds: t, Value: v,
	})
	if len(ins.alerts) > ins.cfg.MaxAlerts {
		ins.alerts = ins.alerts[len(ins.alerts)-ins.cfg.MaxAlerts:]
	}
	if ins.emit != nil {
		ins.emit("watchpoint.alert",
			"rule", r.Name, "expr", r.Expr(), "value", v, "mode", string(r.Mode))
	}
}

// valuesLocked builds the value map rules resolve against: every
// registry counter and gauge under both its bare name (summed across
// labels) and its "name{k=v}" series key, plus heatmap-derived dram.*
// values.
func (ins *Inspector) valuesLocked() map[string]float64 {
	vals := make(map[string]float64, 64)
	snap := ins.reg.Snapshot()
	addSample := func(s metrics.Sample) {
		vals[s.Name] += s.Value
		if len(s.Labels) > 0 {
			key := s.Name + "{"
			for i := 0; i+1 < len(s.Labels); i += 2 {
				if i > 0 {
					key += ","
				}
				key += s.Labels[i] + "=" + s.Labels[i+1]
			}
			vals[key+"}"] = s.Value
		}
	}
	for _, s := range snap.Counters {
		addSample(s)
	}
	for _, s := range snap.Gauges {
		addSample(s)
	}
	vals["dram.row_window_activations"] = float64(ins.heat.maxRowWindow)
	vals["dram.total_activations"] = float64(ins.heat.totalAct)
	vals["dram.total_flips"] = float64(ins.heat.totalFlips)
	return vals
}

// Absorb folds a completed scoped Inspector into this one, tagging its
// census and alerts with the plan unit's name. The parallel experiment
// engine calls this at delivery, in declaration order, which is what
// keeps snapshots byte-identical at any -parallel setting. Nil-safe on
// both sides.
func (ins *Inspector) Absorb(child *Inspector, unit string) {
	if ins == nil || child == nil {
		return
	}
	child.mu.Lock()
	heat := child.heat
	censusFn := child.censusFn
	alerts := append([]Alert(nil), child.alerts...)
	total := child.total
	byRule := make(map[string]uint64, len(child.byRule))
	for k, v := range child.byRule {
		byRule[k] = v
	}
	nested := append([]TaggedCensus(nil), child.absorbed...)
	child.mu.Unlock()

	var census *Census
	if censusFn != nil {
		c := censusFn()
		census = &c
	}

	ins.mu.Lock()
	defer ins.mu.Unlock()
	ins.heat.absorb(heat)
	ins.absorbed = append(ins.absorbed, nested...)
	if census != nil {
		ins.absorbed = append(ins.absorbed, TaggedCensus{Unit: unit, Census: *census})
	}
	ins.total += total
	for k, v := range byRule {
		ins.byRule[k] += v
	}
	for _, a := range alerts {
		if a.Unit == "" {
			a.Unit = unit
		}
		ins.alerts = append(ins.alerts, a)
	}
	if len(ins.alerts) > ins.cfg.MaxAlerts {
		ins.alerts = ins.alerts[len(ins.alerts)-ins.cfg.MaxAlerts:]
	}
}

// HeatmapSnapshot copies the current heatmap. Nil-safe (empty
// snapshot).
func (ins *Inspector) HeatmapSnapshot() HeatmapSnapshot {
	if ins == nil {
		return HeatmapSnapshot{Activations: [][]int64{}, Flips: [][]int64{}}
	}
	ins.mu.Lock()
	defer ins.mu.Unlock()
	return ins.heat.snapshot()
}

// Finalize refreshes the census cache and evaluates the rules one
// last time at the final clock reading. CLIs call it after the run
// completes (the simulating goroutine is idle, so walking host state
// is safe) and before building the artifact, so the embedded census
// reflects the end state rather than the last tick.
func (ins *Inspector) Finalize(now time.Duration) { ins.Evaluate(now) }

// CensusSnapshot returns every absorbed unit census in declaration
// order, then the bound host's census as of the last Evaluate tick.
// Nil-safe.
func (ins *Inspector) CensusSnapshot() CensusSnapshot {
	s := CensusSnapshot{Censuses: []TaggedCensus{}}
	if ins == nil {
		return s
	}
	ins.mu.Lock()
	defer ins.mu.Unlock()
	s.Censuses = append(s.Censuses, ins.absorbed...)
	if ins.census != nil {
		s.Censuses = append(s.Censuses, TaggedCensus{Census: *ins.census})
	}
	return s
}

// AlertsSnapshot copies the fired-alert state. Nil-safe.
func (ins *Inspector) AlertsSnapshot() AlertsSnapshot {
	s := AlertsSnapshot{ByRule: []RuleCount{}, Recent: []Alert{}}
	if ins == nil {
		return s
	}
	ins.mu.Lock()
	defer ins.mu.Unlock()
	s.Total = ins.total
	s.Recent = append(s.Recent, ins.alerts...)
	names := make([]string, 0, len(ins.byRule))
	for k := range ins.byRule {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, n := range names {
		s.ByRule = append(s.ByRule, RuleCount{Rule: n, Count: ins.byRule[n]})
	}
	return s
}

// Rules returns the configured rule set (for rendering).
func (ins *Inspector) Rules() []Rule {
	if ins == nil {
		return nil
	}
	return append([]Rule(nil), ins.rules...)
}
