package inspect

// The DRAM heatmap accumulates activation pressure and applied flips
// per (bank, row bucket). Banks are few (32 on both evaluated
// machines) but rows are many (up to 2^16 per bank at full scale), so
// rows fold into a fixed number of buckets: storage is banks×buckets
// int64 pairs regardless of geometry, and recording is two integer
// operations — no allocation on the hammer hot path, which is the
// fidelity condition for hooking the fault model at all.

// DefaultRowBuckets is the per-bank bucket count. 64 divides every
// geometry's power-of-two row count evenly, so bucket boundaries land
// on row boundaries at all supported RowBits (11–16, i.e. physical
// address bits 18 through 33 at RowShift 18).
const DefaultRowBuckets = 64

// Heatmap is the bucketed accumulator. Not safe for concurrent use on
// its own; the Inspector serializes access.
type Heatmap struct {
	banks   int
	rows    int // rows per bank of the most recently bound geometry
	buckets int

	act   [][]int64 // [bank][bucket] window-budgeted activations
	flips [][]int64 // [bank][bucket] applied bit flips

	totalAct   int64
	totalFlips int64
	// maxRowWindow is the largest single-operation per-row activation
	// count seen — the "row window pressure" the TRR watchpoint rule
	// compares against flip thresholds.
	maxRowWindow int64
}

// NewHeatmap sizes a heatmap for banks×rows with the given bucket
// count (<=0 selects DefaultRowBuckets).
func NewHeatmap(banks, rows, buckets int) *Heatmap {
	if buckets <= 0 {
		buckets = DefaultRowBuckets
	}
	h := &Heatmap{buckets: buckets}
	h.resize(banks, rows)
	return h
}

// resize grows the per-bank arrays; accumulated counts are kept.
func (h *Heatmap) resize(banks, rows int) {
	if banks > h.banks {
		for len(h.act) < banks {
			h.act = append(h.act, make([]int64, h.buckets))
			h.flips = append(h.flips, make([]int64, h.buckets))
		}
		h.banks = banks
	}
	if rows > h.rows {
		h.rows = rows
	}
}

// bucketOf maps a row index to its bucket. rows is a power of two in
// every geometry, and buckets divides it, so the mapping is an exact
// partition; the formula also degrades gracefully for odd sizes.
func (h *Heatmap) bucketOf(row int) int {
	if h.rows <= 0 || row < 0 {
		return 0
	}
	b := row * h.buckets / h.rows
	if b >= h.buckets {
		b = h.buckets - 1
	}
	return b
}

// addActivations accumulates n activations on (bank, row).
func (h *Heatmap) addActivations(bank, row int, n int64) {
	if bank < 0 || bank >= h.banks {
		return
	}
	h.act[bank][h.bucketOf(row)] += n
	h.totalAct += n
	if n > h.maxRowWindow {
		h.maxRowWindow = n
	}
}

// addFlip records one applied bit flip on (bank, row).
func (h *Heatmap) addFlip(bank, row int) {
	if bank < 0 || bank >= h.banks {
		return
	}
	h.flips[bank][h.bucketOf(row)]++
	h.totalFlips++
}

// absorb folds another heatmap's accumulation into this one, growing
// dimensions as needed. Bucket counts must match (both come from the
// same Inspector config).
func (h *Heatmap) absorb(o *Heatmap) {
	if o == nil {
		return
	}
	h.resize(o.banks, o.rows)
	for b := 0; b < o.banks; b++ {
		for i := 0; i < o.buckets && i < h.buckets; i++ {
			h.act[b][i] += o.act[b][i]
			h.flips[b][i] += o.flips[b][i]
		}
	}
	h.totalAct += o.totalAct
	h.totalFlips += o.totalFlips
	if o.maxRowWindow > h.maxRowWindow {
		h.maxRowWindow = o.maxRowWindow
	}
}

// HeatmapSnapshot is the JSON form served at /api/heatmap and embedded
// in run artifacts. Slices are always non-nil ([] never null, the
// PR-3 series contract).
type HeatmapSnapshot struct {
	// Banks and Rows are the covered geometry dimensions (the maximum
	// across absorbed units when several geometries contributed).
	Banks int `json:"banks"`
	Rows  int `json:"rows"`
	// Buckets is the per-bank bucket count; bucket i covers rows
	// [i·Rows/Buckets, (i+1)·Rows/Buckets).
	Buckets int `json:"buckets"`
	// TotalActivations and TotalFlips are whole-module sums.
	TotalActivations int64 `json:"totalActivations"`
	TotalFlips       int64 `json:"totalFlips"`
	// MaxRowWindowActivations is the peak single-window per-row
	// activation count any operation achieved.
	MaxRowWindowActivations int64 `json:"maxRowWindowActivations"`
	// Activations and Flips are [bank][bucket] accumulations.
	Activations [][]int64 `json:"activations"`
	Flips       [][]int64 `json:"flips"`
}

// snapshot deep-copies the accumulator into its JSON form.
func (h *Heatmap) snapshot() HeatmapSnapshot {
	s := HeatmapSnapshot{
		Buckets:     h.buckets,
		Activations: [][]int64{},
		Flips:       [][]int64{},
	}
	s.Banks = h.banks
	s.Rows = h.rows
	s.TotalActivations = h.totalAct
	s.TotalFlips = h.totalFlips
	s.MaxRowWindowActivations = h.maxRowWindow
	for b := 0; b < h.banks; b++ {
		s.Activations = append(s.Activations, append([]int64(nil), h.act[b]...))
		s.Flips = append(s.Flips, append([]int64(nil), h.flips[b]...))
	}
	return s
}
