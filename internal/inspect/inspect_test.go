package inspect

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"hyperhammer/internal/metrics"
)

// TestBucketBoundaries pins the row→bucket mapping at every supported
// geometry row count. RowShift is 18 on both evaluated machines, so
// RowBits 11 through 16 place the row index in physical address bits
// 18 through 33; 64 buckets divide every 2^rowBits evenly, so bucket
// edges must land exactly on rows/buckets multiples.
func TestBucketBoundaries(t *testing.T) {
	for rowBits := 11; rowBits <= 16; rowBits++ {
		rows := 1 << rowBits
		h := NewHeatmap(1, rows, DefaultRowBuckets)
		per := rows / DefaultRowBuckets
		cases := []struct{ row, want int }{
			{0, 0},
			{per - 1, 0},
			{per, 1},
			{rows/2 - 1, DefaultRowBuckets/2 - 1},
			{rows / 2, DefaultRowBuckets / 2},
			{rows - per, DefaultRowBuckets - 1},
			{rows - 1, DefaultRowBuckets - 1},
		}
		for _, c := range cases {
			if got := h.bucketOf(c.row); got != c.want {
				t.Errorf("rowBits=%d: bucketOf(%d) = %d, want %d", rowBits, c.row, got, c.want)
			}
		}
		// Exact partition: every bucket must cover the same row count.
		counts := make([]int, DefaultRowBuckets)
		for r := 0; r < rows; r++ {
			counts[h.bucketOf(r)]++
		}
		for b, n := range counts {
			if n != per {
				t.Fatalf("rowBits=%d: bucket %d covers %d rows, want %d", rowBits, b, n, per)
			}
		}
	}
}

// TestBucketDegenerate covers out-of-range rows and unbound heatmaps.
func TestBucketDegenerate(t *testing.T) {
	h := NewHeatmap(0, 0, 0)
	if got := h.bucketOf(5); got != 0 {
		t.Errorf("bucketOf on empty heatmap = %d, want 0", got)
	}
	h.resize(2, 100) // rows not a bucket multiple: formula must clamp
	if got := h.bucketOf(99); got != DefaultRowBuckets-1 {
		t.Errorf("bucketOf(last odd row) = %d, want %d", got, DefaultRowBuckets-1)
	}
	h.addActivations(7, 0, 1) // out-of-range bank: dropped, not a panic
	if h.totalAct != 0 {
		t.Errorf("out-of-range bank accumulated %d activations", h.totalAct)
	}
}

// TestHeatmapAccumulateAndAbsorb checks recording, totals, and that
// absorb is an elementwise sum with a max over window pressure.
func TestHeatmapAccumulateAndAbsorb(t *testing.T) {
	a := NewHeatmap(2, 128, 64)
	b := NewHeatmap(2, 128, 64)
	a.addActivations(0, 0, 100)
	a.addFlip(0, 0)
	b.addActivations(0, 0, 50)
	b.addActivations(1, 127, 300)
	b.addFlip(1, 127)
	a.absorb(b)
	if a.totalAct != 450 || a.totalFlips != 2 {
		t.Errorf("totals = (%d, %d), want (450, 2)", a.totalAct, a.totalFlips)
	}
	if a.maxRowWindow != 300 {
		t.Errorf("maxRowWindow = %d, want 300", a.maxRowWindow)
	}
	if a.act[0][0] != 150 || a.act[1][63] != 300 {
		t.Errorf("cells = %d, %d; want 150, 300", a.act[0][0], a.act[1][63])
	}
}

// reg returns a registry with one counter set to v.
func regWith(t *testing.T, name string, v uint64) *metrics.Registry {
	t.Helper()
	r := metrics.New()
	r.Counter(name, "test").Add(v)
	return r
}

// TestWatchpointEdge checks edge rules fire once per false→true
// transition and re-arm after the condition clears.
func TestWatchpointEdge(t *testing.T) {
	r := metrics.New()
	c := r.Counter("x_total", "test")
	ins := New(Config{Rules: []Rule{{Name: "x", Metric: "x_total", Op: ">", Threshold: 5, Mode: Edge}}})
	ins.SetMetrics(r)

	ins.Evaluate(1 * time.Second) // 0 > 5: no
	c.Add(10)
	ins.Evaluate(2 * time.Second) // 10 > 5: fire
	ins.Evaluate(3 * time.Second) // still true: edge stays quiet
	s := ins.AlertsSnapshot()
	if s.Total != 1 {
		t.Fatalf("edge fired %d times, want 1", s.Total)
	}
	a := s.Recent[0]
	if a.Rule != "x" || a.SimSeconds != 2 || a.Value != 10 {
		t.Errorf("alert = %+v, want rule x at t=2 value=10", a)
	}

	// Gauges can clear; the edge must re-arm. Model with a gauge rule.
	g := metrics.New()
	gauge := g.Gauge("lvl", "test")
	ins2 := New(Config{Rules: []Rule{{Name: "lvl", Metric: "lvl", Op: ">=", Threshold: 3, Mode: Edge}}})
	ins2.SetMetrics(g)
	gauge.Set(5)
	ins2.Evaluate(1 * time.Second) // fire
	gauge.Set(0)
	ins2.Evaluate(2 * time.Second) // clears, re-arms
	gauge.Set(7)
	ins2.Evaluate(3 * time.Second) // fire again
	if got := ins2.AlertsSnapshot().Total; got != 2 {
		t.Errorf("re-armed edge fired %d times, want 2", got)
	}
}

// TestWatchpointLevel checks level rules fire at every tick the
// condition holds.
func TestWatchpointLevel(t *testing.T) {
	r := regWith(t, "x_total", 10)
	ins := New(Config{Rules: []Rule{{Name: "x", Metric: "x_total", Op: ">", Threshold: 5, Mode: Level}}})
	ins.SetMetrics(r)
	for i := 1; i <= 3; i++ {
		ins.Evaluate(time.Duration(i) * time.Second)
	}
	if got := ins.AlertsSnapshot().Total; got != 3 {
		t.Errorf("level fired %d times, want 3", got)
	}
}

// TestWatchpointRate checks rate() computes a per-sim-second delta
// between ticks and skips its first observation.
func TestWatchpointRate(t *testing.T) {
	r := metrics.New()
	c := r.Counter("x_total", "test")
	ins := New(Config{Rules: []Rule{{Name: "rx", Metric: "rate(x_total)", Op: ">", Threshold: 4, Mode: Edge}}})
	ins.SetMetrics(r)

	c.Add(100)
	ins.Evaluate(1 * time.Second) // first observation: no rate yet
	c.Add(10)
	ins.Evaluate(3 * time.Second) // Δ10 over 2s = 5/s > 4: fire
	s := ins.AlertsSnapshot()
	if s.Total != 1 {
		t.Fatalf("rate rule fired %d times, want 1", s.Total)
	}
	if s.Recent[0].Value != 5 {
		t.Errorf("rate value = %g, want 5", s.Recent[0].Value)
	}
}

// TestWatchpointHeatmapValue checks the derived dram.* values resolve.
func TestWatchpointHeatmapValue(t *testing.T) {
	ins := New(Config{Rules: []Rule{{
		Name: "pressure", Metric: "dram.row_window_activations",
		Op: ">", Threshold: 120_000, Mode: Edge,
	}}})
	ins.SetMetrics(metrics.New())
	ins.BindMachine(2, 2048)
	ins.RecordRowActivations(1, 700, 150_000)
	ins.Evaluate(time.Second)
	if got := ins.AlertsSnapshot().Total; got != 1 {
		t.Fatalf("dram.row_window_activations rule fired %d times, want 1", got)
	}
}

// TestLabeledSeriesKeys checks labeled counters resolve under both the
// bare (summed) name and the name{k=v} series key.
func TestLabeledSeriesKeys(t *testing.T) {
	r := metrics.New()
	r.Counter("flips", "test", "dir", "a").Add(3)
	r.Counter("flips", "test", "dir", "b").Add(4)
	ins := New(Config{Rules: []Rule{
		{Name: "sum", Metric: "flips", Op: "==", Threshold: 7, Mode: Edge},
		{Name: "one", Metric: "flips{dir=b}", Op: "==", Threshold: 4, Mode: Edge},
	}})
	ins.SetMetrics(r)
	ins.Evaluate(time.Second)
	s := ins.AlertsSnapshot()
	if s.Total != 2 {
		t.Fatalf("fired %d, want 2 (sum and labeled series): %+v", s.Total, s.Recent)
	}
}

// TestAbsorbTagsAndMerges checks scoped inspectors fold: heatmaps sum,
// censuses append in call order with the unit tag, alert totals merge,
// and absorbed alerts inherit the unit name.
func TestAbsorbTagsAndMerges(t *testing.T) {
	parent := New(Config{})
	for i, unit := range []string{"u1", "u2"} {
		child := parent.Scoped()
		child.BindMachine(1, 128)
		child.RecordRowActivations(0, 0, int64(100*(i+1)))
		child.SetMetrics(regWith(t, "dram_flips_total", 1))
		child.SetCensusFunc(func() Census { return Census{VMs: i + 1} })
		child.Evaluate(time.Second) // fires flips-applied (default rules)
		parent.Absorb(child, unit)
	}
	heat := parent.HeatmapSnapshot()
	if heat.TotalActivations != 300 {
		t.Errorf("absorbed activations = %d, want 300", heat.TotalActivations)
	}
	cs := parent.CensusSnapshot()
	if len(cs.Censuses) != 2 || cs.Censuses[0].Unit != "u1" || cs.Censuses[1].Unit != "u2" {
		t.Fatalf("censuses = %+v, want tagged u1 then u2", cs.Censuses)
	}
	if cs.Censuses[1].Census.VMs != 2 {
		t.Errorf("u2 census VMs = %d, want 2", cs.Censuses[1].Census.VMs)
	}
	as := parent.AlertsSnapshot()
	if as.Total != 2 {
		t.Fatalf("absorbed alert total = %d, want 2", as.Total)
	}
	for _, a := range as.Recent {
		if a.Unit == "" {
			t.Errorf("absorbed alert lost its unit tag: %+v", a)
		}
	}
}

// TestNilInspectorJSONContract checks the nil receiver serves
// schema-valid snapshots: arrays [], never null.
func TestNilInspectorJSONContract(t *testing.T) {
	var ins *Inspector
	ins.BindMachine(2, 2) // all no-ops
	ins.RecordRowActivations(0, 0, 1)
	ins.RecordFlip(0, 0)
	ins.Evaluate(time.Second)
	ins.Absorb(nil, "x")
	for name, v := range map[string]any{
		"heatmap": ins.HeatmapSnapshot(),
		"census":  ins.CensusSnapshot(),
		"alerts":  ins.AlertsSnapshot(),
	} {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if strings.Contains(string(b), "null") {
			t.Errorf("%s snapshot serializes null: %s", name, b)
		}
	}
}

// TestAlertRingBound checks the ring trims to MaxAlerts while totals
// keep counting.
func TestAlertRingBound(t *testing.T) {
	r := regWith(t, "x_total", 10)
	ins := New(Config{
		MaxAlerts: 4,
		Rules:     []Rule{{Name: "x", Metric: "x_total", Op: ">", Threshold: 0, Mode: Level}},
	})
	ins.SetMetrics(r)
	for i := 1; i <= 10; i++ {
		ins.Evaluate(time.Duration(i) * time.Second)
	}
	s := ins.AlertsSnapshot()
	if s.Total != 10 || len(s.Recent) != 4 {
		t.Fatalf("total=%d recent=%d, want 10 and 4", s.Total, len(s.Recent))
	}
	if s.Recent[0].SimSeconds != 7 || s.Recent[3].SimSeconds != 10 {
		t.Errorf("ring holds t=%g..%g, want 7..10", s.Recent[0].SimSeconds, s.Recent[3].SimSeconds)
	}
}

// TestRenderersCoverSnapshots sanity-checks the shared ASCII renderers
// on populated snapshots (hh-top and hh-inspect both consume these).
func TestRenderersCoverSnapshots(t *testing.T) {
	ins := New(Config{})
	ins.BindMachine(2, 128)
	ins.SetMetrics(metrics.New())
	ins.RecordRowActivations(0, 5, 1000)
	ins.RecordFlip(1, 100)
	ins.SetCensusFunc(func() Census {
		return Census{SimSeconds: 1.5, Geometry: "test", VMs: 1}
	})
	ins.Evaluate(time.Second)

	heat := RenderHeatmap(ins.HeatmapSnapshot())
	if !strings.Contains(heat, "bank  0") || !strings.Contains(heat, "F") {
		t.Errorf("heatmap render missing banks or flip marker:\n%s", heat)
	}
	cens := RenderCensus(ins.CensusSnapshot())
	if !strings.Contains(cens, "(host)") {
		t.Errorf("census render missing live host row:\n%s", cens)
	}
	if out := RenderAlerts(ins.AlertsSnapshot()); !strings.Contains(out, "alerts") {
		t.Errorf("alerts render: %q", out)
	}
	// Empty snapshots must render, not panic.
	RenderHeatmap(HeatmapSnapshot{Activations: [][]int64{}, Flips: [][]int64{}})
	RenderCensus(CensusSnapshot{})
	RenderAlerts(AlertsSnapshot{})
}
