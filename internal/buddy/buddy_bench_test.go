package buddy

import (
	"testing"

	"hyperhammer/internal/memdef"
)

func BenchmarkAllocFreeOrder0(b *testing.B) {
	a := New(0, 1<<20, DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := a.Alloc(0, memdef.MigrateUnmovable)
		if err != nil {
			b.Fatal(err)
		}
		a.Free(p, 0, memdef.MigrateUnmovable)
	}
}

func BenchmarkAllocFreeOrder9(b *testing.B) {
	a := New(0, 1<<20, DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := a.Alloc(memdef.HugeOrder, memdef.MigrateUnmovable)
		if err != nil {
			b.Fatal(err)
		}
		a.Free(p, memdef.HugeOrder, memdef.MigrateUnmovable)
	}
}

func BenchmarkPCPAllocFree(b *testing.B) {
	a := New(0, 1<<20, DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := a.AllocPage(memdef.MigrateUnmovable)
		if err != nil {
			b.Fatal(err)
		}
		a.FreePage(p, memdef.MigrateUnmovable)
	}
}

func BenchmarkSteeringChurn(b *testing.B) {
	// The allocation pattern Page Steering exercises: release an
	// order-9 block, then carve it up as order-0 unmovable pages.
	a := New(0, 1<<20, DefaultConfig())
	block, err := a.Alloc(memdef.HugeOrder, memdef.MigrateUnmovable)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Free(block, memdef.HugeOrder, memdef.MigrateUnmovable)
		var pages [memdef.PagesPerHuge]memdef.PFN
		for j := 0; j < memdef.PagesPerHuge; j++ {
			p, err := a.Alloc(0, memdef.MigrateUnmovable)
			if err != nil {
				b.Fatal(err)
			}
			pages[j] = p
		}
		for _, p := range pages {
			a.Free(p, 0, memdef.MigrateUnmovable)
		}
		block, err = a.Alloc(memdef.HugeOrder, memdef.MigrateUnmovable)
		if err != nil {
			b.Fatal(err)
		}
	}
}
