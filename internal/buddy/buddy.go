// Package buddy implements a Linux-style buddy page allocator for the
// simulated host kernel: per-migration-type free lists for block
// orders 0 through MAX_ORDER-1, block splitting and coalescing,
// fallback stealing between migration types, and an order-0 per-CPU
// pageset (PCP) cache.
//
// Page Steering's success depends on exact buddy mechanics — the
// kernel prefers small blocks, falls back to splitting order-9/10
// blocks, serves order-0 allocations from the PCP first, and keeps
// MIGRATE_UNMOVABLE and MIGRATE_MOVABLE pages on separate lists
// (Sections 2.3, 2.4, 4.2 of the paper) — so those mechanics are
// modelled directly rather than approximated.
package buddy

import (
	"errors"
	"fmt"
	"strconv"

	"hyperhammer/internal/ledger"
	"hyperhammer/internal/memdef"
	"hyperhammer/internal/metrics"
)

// Ledger event codes for the buddy.alloc determinism stream.
const (
	ledBuddyAlloc = uint64(iota + 1)
	ledBuddyFree
	ledBuddyPCPAlloc
	ledBuddyPCPFree
)

// ErrOutOfMemory is returned when no free block of any usable order or
// migration type can satisfy an allocation.
var ErrOutOfMemory = errors.New("buddy: out of memory")

// Config tunes the allocator's caching behaviour.
type Config struct {
	// PCPBatch is the number of order-0 pages moved between the PCP
	// cache and the buddy lists per refill or drain. Linux default
	// territory is 31-63.
	PCPBatch int
	// PCPHigh is the PCP high watermark: freeing beyond it drains a
	// batch back to the buddy lists.
	PCPHigh int
}

// DefaultConfig mirrors common Linux PCP tuning.
func DefaultConfig() Config { return Config{PCPBatch: 31, PCPHigh: 186} }

type blockInfo struct {
	order int
	mt    memdef.MigrateType
	// index of the block inside its free list, for O(1) removal.
	index int
}

// Allocator is the buddy allocator over a contiguous PFN range.
// It is not safe for concurrent use.
type Allocator struct {
	cfg   Config
	start memdef.PFN
	pages uint64

	// freeLists[mt][order] holds the PFNs of free blocks. Treated as
	// a stack: allocation pops the most recently freed block, which
	// reproduces the reuse behaviour Page Steering relies on.
	freeLists [memdef.NumMigrateTypes][memdef.MaxOrder][]memdef.PFN
	// free indexes every free block head for coalescing and for
	// removing a buddy from the middle of its list.
	free map[memdef.PFN]blockInfo

	// pcp is the order-0 per-CPU cache, per migration type.
	pcp [memdef.NumMigrateTypes][]memdef.PFN

	freePages uint64

	met allocMetrics
	led *ledger.Stream
}

// allocMetrics caches the allocator's instrument handles; all nil
// (no-op) until SetMetrics.
type allocMetrics struct {
	allocs    [memdef.MaxOrder]*metrics.Counter
	frees     [memdef.MaxOrder]*metrics.Counter
	splits    *metrics.Counter
	merges    *metrics.Counter
	steals    *metrics.Counter
	freeGauge *metrics.Gauge
	pcpGauge  *metrics.Gauge
}

// SetMetrics registers the allocator's instruments with reg. A nil
// registry leaves the allocator uninstrumented at zero cost.
func (a *Allocator) SetMetrics(reg *metrics.Registry) {
	m := allocMetrics{
		splits:    reg.Counter("buddy_splits_total", "Buddy block halvings performed to satisfy allocations."),
		merges:    reg.Counter("buddy_merges_total", "Buddy coalescing merges performed on free."),
		steals:    reg.Counter("buddy_fallback_steals_total", "Allocations served by stealing a block from the other migration type."),
		freeGauge: reg.Gauge("buddy_free_pages", "Free pages across all orders, including PCP-cached singles."),
		pcpGauge:  reg.Gauge("buddy_pcp_pages", "Order-0 pages cached in the per-CPU pagesets."),
	}
	for o := 0; o < memdef.MaxOrder; o++ {
		m.allocs[o] = reg.Counter("buddy_allocs_total", "Block allocations from the buddy lists, by order.", "order", strconv.Itoa(o))
		m.frees[o] = reg.Counter("buddy_frees_total", "Block frees to the buddy lists, by order.", "order", strconv.Itoa(o))
	}
	a.met = m
	a.met.freeGauge.Set(int64(a.FreePages()))
}

// SetLedger attaches the determinism-ledger stream for allocator
// events. Every buddy-list allocation and free, and every PCP-served
// page, folds its (event, pfn, order) triple into "buddy.alloc"; a
// nil recorder leaves the allocator unledgered at zero cost.
func (a *Allocator) SetLedger(r *ledger.Recorder) {
	a.led = r.Stream("buddy.alloc")
}

// New creates an allocator over pages frames starting at start, with
// the whole range initially free as MIGRATE_MOVABLE max-order blocks
// (the state of a freshly booted host's ZONE_NORMAL before kernel
// allocations carve it up).
func New(start memdef.PFN, pages uint64, cfg Config) *Allocator {
	if cfg.PCPBatch <= 0 || cfg.PCPHigh < cfg.PCPBatch {
		panic(fmt.Sprintf("buddy: bad PCP config %+v", cfg))
	}
	a := &Allocator{
		cfg:   cfg,
		start: start,
		pages: pages,
		free:  make(map[memdef.PFN]blockInfo),
	}
	maxBlock := uint64(1) << (memdef.MaxOrder - 1)
	p := uint64(start)
	end := uint64(start) + pages
	// Align the leading edge upward with progressively larger blocks,
	// fill with max-order blocks, then the trailing edge downward.
	for p < end {
		order := memdef.MaxOrder - 1
		for order > 0 && (p&((uint64(1)<<order)-1) != 0 || p+(uint64(1)<<order) > end) {
			order--
		}
		if p+(uint64(1)<<order) > end {
			break
		}
		a.pushFree(memdef.PFN(p), order, memdef.MigrateMovable)
		a.freePages += uint64(1) << order
		p += uint64(1) << order
	}
	_ = maxBlock
	return a
}

// Start returns the first managed PFN.
func (a *Allocator) Start() memdef.PFN { return a.start }

// Pages returns the number of managed frames.
func (a *Allocator) Pages() uint64 { return a.pages }

// FreePages returns the total number of free pages, including pages
// cached in the PCP.
func (a *Allocator) FreePages() uint64 {
	n := a.freePages
	for mt := range a.pcp {
		n += uint64(len(a.pcp[mt]))
	}
	return n
}

func (a *Allocator) contains(p memdef.PFN) bool {
	return uint64(p) >= uint64(a.start) && uint64(p) < uint64(a.start)+a.pages
}

// pushFree places a block on its free list and indexes it.
func (a *Allocator) pushFree(p memdef.PFN, order int, mt memdef.MigrateType) {
	list := &a.freeLists[mt][order]
	a.free[p] = blockInfo{order: order, mt: mt, index: len(*list)}
	*list = append(*list, p)
}

// removeFree unlinks a specific free block (swap-remove).
func (a *Allocator) removeFree(p memdef.PFN) blockInfo {
	bi, ok := a.free[p]
	if !ok {
		panic(fmt.Sprintf("buddy: block %d not free", p))
	}
	list := &a.freeLists[bi.mt][bi.order]
	last := len(*list) - 1
	moved := (*list)[last]
	(*list)[bi.index] = moved
	*list = (*list)[:last]
	if moved != p {
		mi := a.free[moved]
		mi.index = bi.index
		a.free[moved] = mi
	}
	delete(a.free, p)
	return bi
}

// popFree pops the most recently freed block of (mt, order), or false.
func (a *Allocator) popFree(mt memdef.MigrateType, order int) (memdef.PFN, bool) {
	list := &a.freeLists[mt][order]
	if len(*list) == 0 {
		return 0, false
	}
	p := (*list)[len(*list)-1]
	*list = (*list)[:len(*list)-1]
	delete(a.free, p)
	return p, true
}

// Alloc allocates a 2^order block of the given migration type straight
// from the buddy lists (bypassing the PCP, as the kernel does for
// order > 0). The returned block's PFN is aligned to its order.
//
// The search order mirrors __rmqueue: exact order on the matching
// list, then progressively larger blocks to split, then fallback
// stealing from the other migration type starting at the largest
// available block.
func (a *Allocator) Alloc(order int, mt memdef.MigrateType) (memdef.PFN, error) {
	if order < 0 || order >= memdef.MaxOrder {
		return 0, fmt.Errorf("buddy: bad order %d", order)
	}
	// Same-migratetype path: smallest sufficient order.
	for o := order; o < memdef.MaxOrder; o++ {
		if p, ok := a.popFree(mt, o); ok {
			a.splitTo(p, o, order, mt)
			a.freePages -= uint64(1) << order
			a.allocHit(p, order)
			return p, nil
		}
	}
	// High-order miss: drain the per-CPU caches and retry, as the
	// kernel's allocation slow path does (drain_all_pages) — cached
	// singles block buddy coalescing and are often exactly what keeps
	// an order-9 block from reassembling.
	if order >= memdef.HugeOrder && (len(a.pcp[0]) > 0 || len(a.pcp[1]) > 0) {
		a.DrainPCP()
		for o := order; o < memdef.MaxOrder; o++ {
			if p, ok := a.popFree(mt, o); ok {
				a.splitTo(p, o, order, mt)
				a.freePages -= uint64(1) << order
				a.allocHit(p, order)
				return p, nil
			}
		}
	}
	// Fallback: steal the largest block of the other type, so that
	// the remainder stays as one large chunk of the stealing type
	// (Linux's anti-fragmentation heuristic).
	other := memdef.MigrateMovable
	if mt == memdef.MigrateMovable {
		other = memdef.MigrateUnmovable
	}
	for o := memdef.MaxOrder - 1; o >= order; o-- {
		if p, ok := a.popFree(other, o); ok {
			a.splitTo(p, o, order, mt) // remainder is re-typed to mt
			a.freePages -= uint64(1) << order
			a.met.steals.Inc()
			a.allocHit(p, order)
			return p, nil
		}
	}
	return 0, ErrOutOfMemory
}

// allocHit records a successful allocation of block p at 2^order.
func (a *Allocator) allocHit(p memdef.PFN, order int) {
	a.met.allocs[order].Inc()
	a.met.freeGauge.Set(int64(a.FreePages()))
	a.led.Fold3(ledBuddyAlloc, uint64(p), uint64(order))
}

// splitTo splits block p down from order `from` to order `to`, putting
// the upper halves back on the free lists of mt.
func (a *Allocator) splitTo(p memdef.PFN, from, to int, mt memdef.MigrateType) {
	for o := from; o > to; o-- {
		half := o - 1
		a.pushFree(p+memdef.PFN(uint64(1)<<half), half, mt)
		a.met.splits.Inc()
	}
}

// Free returns a 2^order block to the free lists under migration type
// mt, coalescing with free buddies of the same type up to the maximum
// order.
func (a *Allocator) Free(p memdef.PFN, order int, mt memdef.MigrateType) {
	if order < 0 || order >= memdef.MaxOrder {
		panic(fmt.Sprintf("buddy: bad free order %d", order))
	}
	if !a.contains(p) || uint64(p)&((uint64(1)<<order)-1) != 0 {
		panic(fmt.Sprintf("buddy: bad free of block %d order %d", p, order))
	}
	a.met.frees[order].Inc()
	a.led.Fold3(ledBuddyFree, uint64(p), uint64(order))
	a.freePages += uint64(1) << order
	for order < memdef.MaxOrder-1 {
		buddyPFN := p ^ memdef.PFN(uint64(1)<<order)
		bi, ok := a.free[buddyPFN]
		if !ok || bi.order != order || bi.mt != mt || !a.contains(buddyPFN) {
			break
		}
		a.removeFree(buddyPFN)
		if buddyPFN < p {
			p = buddyPFN
		}
		order++
		a.met.merges.Inc()
	}
	a.pushFree(p, order, mt)
	a.met.freeGauge.Set(int64(a.FreePages()))
}

// AllocPage allocates one order-0 page of type mt through the PCP
// cache, refilling a batch from the buddy lists when the cache is
// empty — the path EPT and IOPT page allocations take, and the reason
// the paper's spray must first drink the PCP dry.
func (a *Allocator) AllocPage(mt memdef.MigrateType) (memdef.PFN, error) {
	cache := &a.pcp[mt]
	if len(*cache) == 0 {
		for i := 0; i < a.cfg.PCPBatch; i++ {
			p, err := a.Alloc(0, mt)
			if err != nil {
				break
			}
			*cache = append(*cache, p)
		}
		if len(*cache) == 0 {
			return 0, ErrOutOfMemory
		}
	}
	p := (*cache)[len(*cache)-1]
	*cache = (*cache)[:len(*cache)-1]
	a.led.Fold3(ledBuddyPCPAlloc, uint64(p), uint64(mt))
	a.syncPCPGauge()
	return p, nil
}

// syncPCPGauge mirrors the PCP cache depth into the gauge.
func (a *Allocator) syncPCPGauge() {
	a.met.pcpGauge.Set(int64(len(a.pcp[0]) + len(a.pcp[1])))
}

// FreePage frees one order-0 page of type mt through the PCP cache,
// draining a batch back to the buddy lists past the high watermark.
func (a *Allocator) FreePage(p memdef.PFN, mt memdef.MigrateType) {
	a.led.Fold3(ledBuddyPCPFree, uint64(p), uint64(mt))
	cache := &a.pcp[mt]
	*cache = append(*cache, p)
	if len(*cache) > a.cfg.PCPHigh {
		for i := 0; i < a.cfg.PCPBatch && len(*cache) > 0; i++ {
			q := (*cache)[0]
			*cache = (*cache)[1:]
			a.Free(q, 0, mt)
		}
	}
	a.syncPCPGauge()
}

// DrainPCP flushes all PCP-cached pages back to the buddy lists.
func (a *Allocator) DrainPCP() {
	for mt := range a.pcp {
		for _, p := range a.pcp[mt] {
			a.Free(p, 0, memdef.MigrateType(mt))
		}
		a.pcp[mt] = nil
	}
	a.syncPCPGauge()
}

// PCPCount returns how many order-0 pages of mt sit in the PCP cache.
func (a *Allocator) PCPCount(mt memdef.MigrateType) int { return len(a.pcp[mt]) }

// FreeBlocks returns the number of free blocks of (mt, order),
// matching one cell of /proc/pagetypeinfo.
func (a *Allocator) FreeBlocks(mt memdef.MigrateType, order int) int {
	return len(a.freeLists[mt][order])
}

// PageTypeInfo returns the full free-block table, the simulation's
// /proc/pagetypeinfo.
func (a *Allocator) PageTypeInfo() [memdef.NumMigrateTypes][memdef.MaxOrder]int {
	var out [memdef.NumMigrateTypes][memdef.MaxOrder]int
	for mt := 0; mt < int(memdef.NumMigrateTypes); mt++ {
		for o := 0; o < memdef.MaxOrder; o++ {
			out[mt][o] = len(a.freeLists[mt][o])
		}
	}
	return out
}

// FreeBlockContaining reports whether frame p currently lies inside a
// free block, and if so that block's base, order and migration type.
// Diagnostic API (the kernel's equivalent is PageBuddy inspection).
func (a *Allocator) FreeBlockContaining(p memdef.PFN) (base memdef.PFN, order int, mt memdef.MigrateType, ok bool) {
	for o := 0; o < memdef.MaxOrder; o++ {
		candidate := p &^ (memdef.PFN(1)<<o - 1)
		if bi, found := a.free[candidate]; found && bi.order == o {
			return candidate, o, bi.mt, true
		}
	}
	return 0, 0, 0, false
}

// InPCP reports whether frame p is cached in a per-CPU pageset.
func (a *Allocator) InPCP(p memdef.PFN) bool {
	for mt := range a.pcp {
		for _, q := range a.pcp[mt] {
			if q == p {
				return true
			}
		}
	}
	return false
}

// NoisePages returns the number of free pages held in small-order
// (below order-9) blocks of the given migration type, plus PCP-cached
// pages — the paper's "noise pages" metric from Section 4.2.1 and
// Figure 3: free pages that EPT allocations would consume before
// touching an attacker-released order-9 block.
func (a *Allocator) NoisePages(mt memdef.MigrateType) int {
	n := len(a.pcp[mt])
	for o := 0; o < memdef.HugeOrder; o++ {
		n += len(a.freeLists[mt][o]) << o
	}
	return n
}
