package buddy

import (
	"testing"

	"hyperhammer/internal/memdef"
)

func newTestAllocator(pages uint64) *Allocator {
	return New(0, pages, DefaultConfig())
}

func TestNewAllFree(t *testing.T) {
	a := newTestAllocator(4096)
	if got := a.FreePages(); got != 4096 {
		t.Fatalf("FreePages() = %d, want 4096", got)
	}
	// 4096 pages = 4 max-order (1024-page) blocks, all movable.
	if got := a.FreeBlocks(memdef.MigrateMovable, memdef.MaxOrder-1); got != 4 {
		t.Errorf("max-order movable blocks = %d, want 4", got)
	}
	if got := a.FreeBlocks(memdef.MigrateUnmovable, memdef.MaxOrder-1); got != 0 {
		t.Errorf("unmovable blocks = %d, want 0", got)
	}
}

func TestNewUnalignedRange(t *testing.T) {
	// Start at PFN 3 with 1030 pages: must still cover every page.
	a := New(3, 1030, DefaultConfig())
	if got := a.FreePages(); got != 1030 {
		t.Errorf("FreePages() = %d, want 1030", got)
	}
}

func TestAllocSplitsAndFreeCoalesces(t *testing.T) {
	a := newTestAllocator(1024)
	p, err := a.Alloc(0, memdef.MigrateMovable)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.FreePages(); got != 1023 {
		t.Errorf("FreePages after one alloc = %d", got)
	}
	// Splitting one order-10 block must populate each order 0..9 once.
	for o := 0; o < memdef.MaxOrder-1; o++ {
		if got := a.FreeBlocks(memdef.MigrateMovable, o); got != 1 {
			t.Errorf("order %d blocks = %d, want 1", o, got)
		}
	}
	a.Free(p, 0, memdef.MigrateMovable)
	if got := a.FreeBlocks(memdef.MigrateMovable, memdef.MaxOrder-1); got != 1 {
		t.Errorf("after free, max-order blocks = %d, want full coalesce to 1", got)
	}
}

func TestAllocAlignment(t *testing.T) {
	a := newTestAllocator(4096)
	for order := 0; order < memdef.MaxOrder; order++ {
		p, err := a.Alloc(order, memdef.MigrateMovable)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(p)&((1<<order)-1) != 0 {
			t.Errorf("order-%d block at PFN %d not aligned", order, p)
		}
	}
}

func TestAllocPrefersSmallBlocks(t *testing.T) {
	a := newTestAllocator(2048)
	// Create a small free block of known identity.
	p, _ := a.Alloc(3, memdef.MigrateMovable)
	a.Free(p, 3, memdef.MigrateMovable)
	// The freed order-3 block cannot coalesce fully (its siblings from
	// the split are free too and merge back) — so instead pin a gap:
	p1, _ := a.Alloc(0, memdef.MigrateMovable)
	p2, _ := a.Alloc(0, memdef.MigrateMovable)
	a.Free(p1, 0, memdef.MigrateMovable)
	// p2 still allocated, p1 free at order 0. An order-0 alloc must
	// reuse p1 rather than split a large block.
	got, _ := a.Alloc(0, memdef.MigrateMovable)
	if got != p1 {
		t.Errorf("Alloc(0) = PFN %d, want most recently freed %d", got, p1)
	}
	a.Free(p2, 0, memdef.MigrateMovable)
}

func TestFallbackStealing(t *testing.T) {
	a := newTestAllocator(1024)
	// No unmovable blocks exist; an unmovable alloc must steal from
	// movable.
	p, err := a.Alloc(0, memdef.MigrateUnmovable)
	if err != nil {
		t.Fatal(err)
	}
	// The remainder of the stolen block is re-typed unmovable.
	unmovableFree := 0
	for o := 0; o < memdef.MaxOrder; o++ {
		unmovableFree += a.FreeBlocks(memdef.MigrateUnmovable, o) << o
	}
	if unmovableFree != 1023 {
		t.Errorf("unmovable free pages after steal = %d, want 1023", unmovableFree)
	}
	a.Free(p, 0, memdef.MigrateUnmovable)
}

func TestOutOfMemory(t *testing.T) {
	a := newTestAllocator(64)
	var got []memdef.PFN
	for {
		p, err := a.Alloc(0, memdef.MigrateMovable)
		if err != nil {
			break
		}
		got = append(got, p)
	}
	if len(got) != 64 {
		t.Errorf("allocated %d pages from 64-page allocator", len(got))
	}
	if _, err := a.Alloc(0, memdef.MigrateUnmovable); err != ErrOutOfMemory {
		t.Errorf("expected ErrOutOfMemory, got %v", err)
	}
	seen := map[memdef.PFN]bool{}
	for _, p := range got {
		if seen[p] {
			t.Fatalf("PFN %d allocated twice", p)
		}
		seen[p] = true
	}
}

func TestPCPBatchingBehaviour(t *testing.T) {
	cfg := Config{PCPBatch: 4, PCPHigh: 8}
	a := New(0, 1024, cfg)
	p, err := a.AllocPage(memdef.MigrateUnmovable)
	if err != nil {
		t.Fatal(err)
	}
	// One batch was pulled; batch-1 remain cached.
	if got := a.PCPCount(memdef.MigrateUnmovable); got != 3 {
		t.Errorf("PCP count after first alloc = %d, want 3", got)
	}
	a.FreePage(p, memdef.MigrateUnmovable)
	if got := a.PCPCount(memdef.MigrateUnmovable); got != 4 {
		t.Errorf("PCP count after free = %d, want 4", got)
	}
	// Push past the high watermark: a batch drains.
	var pages []memdef.PFN
	for i := 0; i < 8; i++ {
		q, _ := a.Alloc(0, memdef.MigrateUnmovable)
		pages = append(pages, q)
	}
	for _, q := range pages {
		a.FreePage(q, memdef.MigrateUnmovable)
	}
	if got := a.PCPCount(memdef.MigrateUnmovable); got > cfg.PCPHigh {
		t.Errorf("PCP count %d exceeds high watermark %d", got, cfg.PCPHigh)
	}
	if a.FreePages() != 1024 {
		t.Errorf("FreePages = %d, want 1024 (PCP pages counted)", a.FreePages())
	}
}

func TestDrainPCP(t *testing.T) {
	a := newTestAllocator(1024)
	p, _ := a.AllocPage(memdef.MigrateMovable)
	a.FreePage(p, memdef.MigrateMovable)
	a.DrainPCP()
	if got := a.PCPCount(memdef.MigrateMovable); got != 0 {
		t.Errorf("PCP count after drain = %d", got)
	}
	if got := a.FreeBlocks(memdef.MigrateMovable, memdef.MaxOrder-1); got != 1 {
		t.Errorf("drain did not coalesce back: %d max-order blocks", got)
	}
}

func TestNoisePagesMetric(t *testing.T) {
	a := newTestAllocator(4096)
	if got := a.NoisePages(memdef.MigrateUnmovable); got != 0 {
		t.Fatalf("initial unmovable noise = %d", got)
	}
	// Allocating one unmovable page splits a movable max-order block,
	// leaving 1023 unmovable pages in small+large blocks; noise counts
	// only sub-order-9 blocks plus PCP.
	p, _ := a.Alloc(0, memdef.MigrateUnmovable)
	noise := a.NoisePages(memdef.MigrateUnmovable)
	// orders 0..8 hold 1+2+...+256 = 511 pages; order 9 (512) excluded.
	if noise != 511 {
		t.Errorf("noise pages = %d, want 511", noise)
	}
	a.Free(p, 0, memdef.MigrateUnmovable)
}

func TestPageTypeInfoConsistency(t *testing.T) {
	a := newTestAllocator(2048)
	_, _ = a.Alloc(0, memdef.MigrateUnmovable)
	info := a.PageTypeInfo()
	total := 0
	for mt := range info {
		for o, n := range info[mt] {
			total += n << o
		}
	}
	if uint64(total) != a.FreePages() {
		t.Errorf("pagetypeinfo total %d != FreePages %d", total, a.FreePages())
	}
}

func TestFreeBadBlockPanics(t *testing.T) {
	a := newTestAllocator(1024)
	for _, f := range []func(){
		func() { a.Free(3, 1, memdef.MigrateMovable) },    // misaligned
		func() { a.Free(2048, 0, memdef.MigrateMovable) }, // outside
		func() { a.Free(0, memdef.MaxOrder, memdef.MigrateMovable) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
