package buddy

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"hyperhammer/internal/memdef"
)

// Property: under any interleaving of allocations and frees, the
// allocator never double-allocates a page, never loses a page, keeps
// blocks aligned, and fully coalesces once everything is freed.
func TestPropertyAllocFreeInvariants(t *testing.T) {
	const pages = 8192
	f := func(seed uint64, opsRaw uint16) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0xABCDEF))
		a := New(0, pages, DefaultConfig())
		type block struct {
			pfn   memdef.PFN
			order int
			mt    memdef.MigrateType
		}
		var live []block
		owned := make(map[memdef.PFN]bool)
		ops := int(opsRaw)%400 + 50
		for i := 0; i < ops; i++ {
			if rng.IntN(2) == 0 || len(live) == 0 {
				order := rng.IntN(6)
				mt := memdef.MigrateType(rng.IntN(int(memdef.NumMigrateTypes)))
				p, err := a.Alloc(order, mt)
				if err != nil {
					continue
				}
				// Alignment.
				if uint64(p)&((1<<order)-1) != 0 {
					t.Logf("misaligned order-%d block at %d", order, p)
					return false
				}
				// No overlap with any owned page.
				for q := p; q < p+memdef.PFN(1<<order); q++ {
					if owned[q] {
						t.Logf("page %d double-allocated", q)
						return false
					}
					owned[q] = true
				}
				live = append(live, block{p, order, mt})
			} else {
				j := rng.IntN(len(live))
				b := live[j]
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
				for q := b.pfn; q < b.pfn+memdef.PFN(1<<b.order); q++ {
					delete(owned, q)
				}
				a.Free(b.pfn, b.order, b.mt)
			}
			// Conservation: free + owned == total.
			if a.FreePages()+uint64(len(owned)) != pages {
				t.Logf("page conservation violated: %d free + %d owned != %d",
					a.FreePages(), len(owned), pages)
				return false
			}
		}
		// Free everything; the allocator must coalesce back to
		// max-order blocks.
		for _, b := range live {
			a.Free(b.pfn, b.order, b.mt)
		}
		a.DrainPCP()
		if a.FreePages() != pages {
			t.Logf("final free pages %d != %d", a.FreePages(), pages)
			return false
		}
		total := 0
		info := a.PageTypeInfo()
		for mt := range info {
			for o, n := range info[mt] {
				total += n << o
			}
		}
		return total == pages
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the PCP layer never changes the total page count and
// always returns pages it was given.
func TestPropertyPCPConservation(t *testing.T) {
	f := func(seed uint64, opsRaw uint16) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		a := New(0, 4096, Config{PCPBatch: 8, PCPHigh: 24})
		var held []memdef.PFN
		ops := int(opsRaw)%300 + 20
		for i := 0; i < ops; i++ {
			if rng.IntN(2) == 0 {
				if p, err := a.AllocPage(memdef.MigrateUnmovable); err == nil {
					held = append(held, p)
				}
			} else if len(held) > 0 {
				j := rng.IntN(len(held))
				a.FreePage(held[j], memdef.MigrateUnmovable)
				held[j] = held[len(held)-1]
				held = held[:len(held)-1]
			}
			if a.FreePages()+uint64(len(held)) != 4096 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
