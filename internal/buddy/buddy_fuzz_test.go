package buddy

import (
	"testing"

	"hyperhammer/internal/memdef"
)

// FuzzAllocFreeSequence drives the allocator with a byte-encoded
// operation stream and checks the conservation and alignment
// invariants after every step. Each byte encodes one operation:
// bit 7 selects alloc/free, bits 0-2 the order, bits 3-4 the
// migratetype selector, bits 5-6 pick which live block to free.
func FuzzAllocFreeSequence(f *testing.F) {
	f.Add([]byte{0x00, 0x81, 0x03, 0x84, 0x12, 0x90})
	f.Add([]byte{0xFF, 0x00, 0xFF, 0x00})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, ops []byte) {
		const pages = 2048
		a := New(0, pages, Config{PCPBatch: 4, PCPHigh: 12})
		type block struct {
			pfn   memdef.PFN
			order int
			mt    memdef.MigrateType
		}
		var live []block
		livePages := uint64(0)
		for _, op := range ops {
			order := int(op & 7)
			if order >= memdef.MaxOrder {
				order = memdef.MaxOrder - 1
			}
			mt := memdef.MigrateType((op >> 3) & 1)
			if op&0x80 == 0 {
				p, err := a.Alloc(order, mt)
				if err != nil {
					continue
				}
				if uint64(p)&((1<<order)-1) != 0 {
					t.Fatalf("misaligned order-%d block at %d", order, p)
				}
				if uint64(p)+(1<<order) > pages {
					t.Fatalf("block %d order %d beyond range", p, order)
				}
				live = append(live, block{p, order, mt})
				livePages += 1 << order
			} else if len(live) > 0 {
				idx := int(op>>5&3) % len(live)
				b := live[idx]
				live[idx] = live[len(live)-1]
				live = live[:len(live)-1]
				a.Free(b.pfn, b.order, b.mt)
				livePages -= 1 << b.order
			}
			if a.FreePages()+livePages != pages {
				t.Fatalf("conservation violated: %d free + %d live != %d",
					a.FreePages(), livePages, pages)
			}
		}
		for _, b := range live {
			a.Free(b.pfn, b.order, b.mt)
		}
		a.DrainPCP()
		if a.FreePages() != pages {
			t.Fatalf("pages lost: %d != %d", a.FreePages(), pages)
		}
	})
}
