// Package hostload generates host-side background memory pressure,
// modelling the difference between the paper's bare-KVM hosts (S1, S2)
// and the OpenStack deployment (S3): S3's management services hold far
// more MIGRATE_UNMOVABLE kernel memory and keep churning it, which is
// why Figure 3(b) starts with many more noise pages and takes much
// longer to exhaust.
package hostload

import (
	"math/rand/v2"

	"hyperhammer/internal/buddy"
	"hyperhammer/internal/memdef"
)

// Profile describes one host workload character.
type Profile struct {
	// Name labels the profile in experiment output.
	Name string
	// ExtraNoisePages is additional free small-order unmovable pages
	// the workload's past allocations leave behind, on top of the
	// host's base boot noise.
	ExtraNoisePages int
	// ChurnHeld is the number of unmovable pages the workload holds
	// and rotates during the experiment.
	ChurnHeld int
	// ChurnPerTick is how many held pages are released and
	// reacquired per Tick.
	ChurnPerTick int
}

// PlainKVM models S1/S2: an idle KVM host with modest service noise.
func PlainKVM() Profile {
	return Profile{Name: "plain KVM (S1/S2)", ExtraNoisePages: 0, ChurnHeld: 256, ChurnPerTick: 8}
}

// OpenStack models S3: DevStack's nova/libvirt/monitoring stack.
func OpenStack() Profile {
	return Profile{Name: "OpenStack (S3)", ExtraNoisePages: 45000, ChurnHeld: 4096, ChurnPerTick: 128}
}

// Workload is an instantiated host load.
type Workload struct {
	profile Profile
	alloc   *buddy.Allocator
	rng     *rand.Rand
	held    []memdef.PFN
}

// Attach starts the workload on a host allocator: it creates the
// profile's extra noise (allocate-then-free interleavings, like boot
// noise) and takes its held working set.
func Attach(alloc *buddy.Allocator, p Profile, seed uint64) (*Workload, error) {
	w := &Workload{
		profile: p,
		alloc:   alloc,
		rng:     rand.New(rand.NewPCG(seed, seed^0x9E3779B97F4A7C15)),
	}
	// Extra noise: allocate everything first, then free an interleaved
	// subset. Freeing as we go would only hand pages straight back to
	// the next allocation; the allocate-then-free order is what leaves
	// kept pages pinning free neighbours apart, the fragmented state a
	// long-running service stack exhibits.
	var pages []memdef.PFN
	for i := 0; i < 2*p.ExtraNoisePages+p.ChurnHeld; i++ {
		pg, err := alloc.Alloc(0, memdef.MigrateUnmovable)
		if err != nil {
			return nil, err
		}
		pages = append(pages, pg)
	}
	for i, pg := range pages {
		if i < 2*p.ExtraNoisePages && i%2 == 1 {
			alloc.Free(pg, 0, memdef.MigrateUnmovable)
		} else {
			w.held = append(w.held, pg)
		}
	}
	return w, nil
}

// Tick performs one round of background churn: release a few held
// pages and grab replacements, perturbing the free lists the way live
// host services do.
func (w *Workload) Tick() {
	for i := 0; i < w.profile.ChurnPerTick && len(w.held) > 0; i++ {
		j := w.rng.IntN(len(w.held))
		w.alloc.FreePage(w.held[j], memdef.MigrateUnmovable)
		if pg, err := w.alloc.AllocPage(memdef.MigrateUnmovable); err == nil {
			w.held[j] = pg
		} else {
			w.held[j] = w.held[len(w.held)-1]
			w.held = w.held[:len(w.held)-1]
		}
	}
}

// Held returns the current held working-set size in pages.
func (w *Workload) Held() int { return len(w.held) }

// Detach frees the workload's held pages.
func (w *Workload) Detach() {
	for _, pg := range w.held {
		w.alloc.FreePage(pg, memdef.MigrateUnmovable)
	}
	w.held = nil
}
