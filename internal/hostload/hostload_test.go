package hostload

import (
	"testing"

	"hyperhammer/internal/buddy"
	"hyperhammer/internal/memdef"
)

func TestProfiles(t *testing.T) {
	if PlainKVM().ExtraNoisePages >= OpenStack().ExtraNoisePages {
		t.Error("OpenStack must leave more noise than plain KVM (Figure 3)")
	}
}

func TestAttachCreatesNoise(t *testing.T) {
	alloc := buddy.New(0, 262144, buddy.DefaultConfig())
	before := alloc.NoisePages(memdef.MigrateUnmovable)
	p := Profile{Name: "test", ExtraNoisePages: 5000, ChurnHeld: 100, ChurnPerTick: 10}
	w, err := Attach(alloc, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	noise := alloc.NoisePages(memdef.MigrateUnmovable)
	if noise-before < 4000 {
		t.Errorf("noise %d -> %d; want ~5000 more", before, noise)
	}
	if w.Held() != 5100 {
		t.Errorf("Held = %d", w.Held())
	}
	free := alloc.FreePages()
	for i := 0; i < 50; i++ {
		w.Tick()
	}
	// Churn is net-zero on free pages (modulo PCP motion).
	after := alloc.FreePages()
	if diff := int64(after) - int64(free); diff < -64 || diff > 64 {
		t.Errorf("churn leaked %d pages", diff)
	}
	w.Detach()
	if w.Held() != 0 {
		t.Error("Detach left held pages")
	}
}

func TestAttachFailsWhenTooSmall(t *testing.T) {
	alloc := buddy.New(0, 1024, buddy.DefaultConfig())
	if _, err := Attach(alloc, OpenStack(), 1); err == nil {
		t.Error("OpenStack profile fit in 4 MiB")
	}
}

func TestTickChangesListOrdering(t *testing.T) {
	alloc := buddy.New(0, 65536, buddy.DefaultConfig())
	w, err := Attach(alloc, PlainKVM(), 7)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := alloc.AllocPage(memdef.MigrateUnmovable)
	alloc.FreePage(a, memdef.MigrateUnmovable)
	w.Tick()
	w.Tick()
	// Not asserting a specific permutation — just that ticking with a
	// live workload keeps the allocator functional.
	if _, err := alloc.AllocPage(memdef.MigrateUnmovable); err != nil {
		t.Fatal(err)
	}
}
