// Package phys is the content store of the simulated host's physical
// memory. It tracks what every 4 KiB frame currently holds, at 64-bit
// word granularity, without materializing bytes for frames that hold
// a uniform or per-page pattern — which is what lets the simulation
// model a 16 GiB host in a few hundred megabytes.
//
// Rowhammer bit flips are applied here: a flip mutates whatever the
// victim frame currently holds, whether that is attacker data, an EPT
// entry, an IOPT entry or another VM's memory. Nothing in the store
// knows or cares who owns a frame; ownership is the hypervisor's
// problem, and violating it through flips is the attack.
package phys

import (
	"fmt"

	"hyperhammer/internal/ledger"
	"hyperhammer/internal/memdef"
)

// wordsPerPage is the number of 64-bit words in one frame.
const wordsPerPage = memdef.PageSize / 8

// frame is the per-frame content record. A frame is in exactly one of
// two representations:
//
//   - pattern: every word of the page equals `pattern` (data == nil).
//     The zero value is therefore an all-zeros page, so a freshly
//     created memory is all-zero for free.
//   - materialized: data holds all 512 words explicitly.
//
// Pages transparently promote from pattern to materialized on the
// first non-uniform write or bit flip.
type frame struct {
	data    []uint64
	pattern uint64
}

// Memory is the physical memory content store.
type Memory struct {
	frames []frame
	size   uint64

	// materialized counts frames holding explicit word arrays, for
	// resource diagnostics in tests.
	materialized int

	// pool recycles word arrays of dematerialized frames. The spray
	// and fill loops materialize and revert thousands of frames per
	// attempt; recycling caps that at one allocation per concurrent
	// materialized frame instead of one per touch.
	pool [][]uint64

	led *ledger.Stream
}

// poolCap bounds the recycled-array pool (4 KiB each, so 16 MiB).
const poolCap = 4096

// New creates a zeroed physical memory of the given byte size, which
// must be a positive multiple of the page size.
func New(size uint64) *Memory {
	if size == 0 || size%memdef.PageSize != 0 {
		panic(fmt.Sprintf("phys: bad memory size %#x", size))
	}
	return &Memory{
		frames: make([]frame, size/memdef.PageSize),
		size:   size,
	}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() uint64 { return m.size }

// SetLedger attaches the determinism-ledger stream for applied bit
// flips. Each FlipBit call folds (address, bit, changed) into
// "phys.flip"; a nil recorder leaves the store unledgered at zero
// cost.
func (m *Memory) SetLedger(r *ledger.Recorder) {
	m.led = r.Stream("phys.flip")
}

// Frames returns the number of 4 KiB frames.
func (m *Memory) Frames() int { return len(m.frames) }

// MaterializedFrames returns how many frames hold explicit content,
// a proxy for the simulation's real memory footprint.
func (m *Memory) MaterializedFrames() int { return m.materialized }

func (m *Memory) frameOf(a memdef.HPA) *frame {
	p := memdef.PFNOf(a)
	if uint64(p) >= uint64(len(m.frames)) {
		panic(fmt.Sprintf("phys: address %#x outside %d-frame memory", a, len(m.frames)))
	}
	return &m.frames[p]
}

// Word returns the 64-bit word at 8-byte-aligned address a.
func (m *Memory) Word(a memdef.HPA) uint64 {
	if a&7 != 0 {
		panic(fmt.Sprintf("phys: unaligned word read at %#x", a))
	}
	f := m.frameOf(a)
	if f.data == nil {
		return f.pattern
	}
	return f.data[memdef.PageOffset(a)/8]
}

// SetWord writes the 64-bit word at 8-byte-aligned address a.
func (m *Memory) SetWord(a memdef.HPA, v uint64) {
	if a&7 != 0 {
		panic(fmt.Sprintf("phys: unaligned word write at %#x", a))
	}
	f := m.frameOf(a)
	if f.data == nil {
		if f.pattern == v {
			return
		}
		m.materialize(f)
	}
	f.data[memdef.PageOffset(a)/8] = v
}

func (m *Memory) materialize(f *frame) {
	if n := len(m.pool); n > 0 {
		f.data = m.pool[n-1]
		m.pool[n-1] = nil
		m.pool = m.pool[:n-1]
		for i := range f.data {
			f.data[i] = f.pattern
		}
	} else {
		f.data = make([]uint64, wordsPerPage)
		if f.pattern != 0 {
			for i := range f.data {
				f.data[i] = f.pattern
			}
		}
	}
	m.materialized++
}

// FillWord sets every word of frame p to v, reverting the frame to the
// compact pattern representation.
func (m *Memory) FillWord(p memdef.PFN, v uint64) {
	if uint64(p) >= uint64(len(m.frames)) {
		panic(fmt.Sprintf("phys: frame %d outside memory", p))
	}
	f := &m.frames[p]
	if f.data != nil {
		if len(m.pool) < poolCap {
			m.pool = append(m.pool, f.data)
		}
		f.data = nil
		m.materialized--
	}
	f.pattern = v
}

// ZeroPage clears frame p, as the kernel does before handing a page to
// a new user (and as KVM does for fresh EPT pages).
func (m *Memory) ZeroPage(p memdef.PFN) { m.FillWord(p, 0) }

// PageWord returns word idx (0..511) of frame p without computing an
// address, the fast path for page scans.
func (m *Memory) PageWord(p memdef.PFN, idx int) uint64 {
	f := &m.frames[p]
	if f.data == nil {
		return f.pattern
	}
	return f.data[idx]
}

// SetPageWord writes word idx of frame p.
func (m *Memory) SetPageWord(p memdef.PFN, idx int, v uint64) {
	f := &m.frames[p]
	if f.data == nil {
		if f.pattern == v {
			return
		}
		m.materialize(f)
	}
	f.data[idx] = v
}

// PageUniform reports whether frame p currently holds the same word in
// all 512 positions, and that word.
func (m *Memory) PageUniform(p memdef.PFN) (uint64, bool) {
	f := &m.frames[p]
	if f.data == nil {
		return f.pattern, true
	}
	w := f.data[0]
	for _, v := range f.data[1:] {
		if v != w {
			return 0, false
		}
	}
	return w, true
}

// FlipBit applies a Rowhammer flip candidate to the byte at address a,
// bit position bit (0..7). oneToZero gives the cell's fixed direction.
// It returns true if the stored value actually changed — i.e. the bit
// currently held the only value the cell can flip away from.
func (m *Memory) FlipBit(a memdef.HPA, bit uint, oneToZero bool) bool {
	if bit > 7 {
		panic(fmt.Sprintf("phys: bit index %d out of range", bit))
	}
	wordAddr := a &^ 7
	shift := (uint(a)&7)*8 + bit
	w := m.Word(wordAddr)
	cur := (w >> shift) & 1
	changed := uint64(0)
	if oneToZero {
		if cur == 1 {
			m.SetWord(wordAddr, w&^(1<<shift))
			changed = 1
		}
	} else {
		if cur == 0 {
			m.SetWord(wordAddr, w|(1<<shift))
			changed = 1
		}
	}
	m.led.Fold3(uint64(a), uint64(bit), changed)
	return changed == 1
}
