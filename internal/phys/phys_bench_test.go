package phys

import (
	"testing"

	"hyperhammer/internal/memdef"
)

func BenchmarkWordPattern(b *testing.B) {
	m := New(16 * memdef.MiB)
	m.FillWord(100, 0x55)
	addr := memdef.HPA(100*memdef.PageSize + 64)
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += m.Word(addr)
	}
	_ = sink
}

func BenchmarkWordMaterialized(b *testing.B) {
	m := New(16 * memdef.MiB)
	m.SetWord(100*memdef.PageSize, 1) // materialize
	addr := memdef.HPA(100*memdef.PageSize + 64)
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += m.Word(addr)
	}
	_ = sink
}

func BenchmarkFillWord(b *testing.B) {
	m := New(16 * memdef.MiB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.FillWord(memdef.PFN(i&1023), uint64(i))
	}
}

func BenchmarkFlipBit(b *testing.B) {
	m := New(16 * memdef.MiB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := memdef.HPA((i&1023)*memdef.PageSize + i&0xFF8)
		m.FlipBit(addr, uint(i&7), i&8 == 0)
	}
}
