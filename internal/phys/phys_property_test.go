package phys

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"hyperhammer/internal/memdef"
)

// Property: the content store behaves exactly like a flat word array
// under any interleaving of word writes, page fills and bit flips.
func TestPropertyMatchesFlatArray(t *testing.T) {
	const size = 256 * memdef.KiB
	const words = size / 8
	f := func(seed uint64, opsRaw uint16) bool {
		rng := rand.New(rand.NewPCG(seed, 42))
		m := New(size)
		ref := make([]uint64, words)
		ops := int(opsRaw)%500 + 50
		for i := 0; i < ops; i++ {
			switch rng.IntN(4) {
			case 0: // word write
				w := rng.IntN(words)
				v := rng.Uint64()
				m.SetWord(memdef.HPA(w*8), v)
				ref[w] = v
			case 1: // page fill
				p := rng.IntN(size / memdef.PageSize)
				v := rng.Uint64()
				m.FillWord(memdef.PFN(p), v)
				for w := p * 512; w < (p+1)*512; w++ {
					ref[w] = v
				}
			case 2: // bit flip in a legal direction
				w := rng.IntN(words)
				bitPos := uint(rng.IntN(64))
				addr := memdef.HPA(w*8) + memdef.HPA(bitPos/8)
				bit := bitPos % 8
				cur := (ref[w] >> bitPos) & 1
				oneToZero := cur == 1
				if !m.FlipBit(addr, bit, oneToZero) {
					return false // legal flip refused
				}
				ref[w] ^= 1 << bitPos
			case 3: // bit flip in the illegal direction: must refuse
				w := rng.IntN(words)
				bitPos := uint(rng.IntN(64))
				addr := memdef.HPA(w*8) + memdef.HPA(bitPos/8)
				bit := bitPos % 8
				cur := (ref[w] >> bitPos) & 1
				if m.FlipBit(addr, bit, cur == 0) {
					return false // flip applied against its direction
				}
			}
			// Spot-check a few random words.
			for k := 0; k < 4; k++ {
				w := rng.IntN(words)
				if m.Word(memdef.HPA(w*8)) != ref[w] {
					return false
				}
			}
		}
		// Full sweep at the end.
		for w := 0; w < words; w++ {
			if m.Word(memdef.HPA(w*8)) != ref[w] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: PageUniform agrees with a word-by-word scan.
func TestPropertyPageUniform(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		m := New(64 * memdef.KiB)
		p := memdef.PFN(rng.IntN(16))
		v := rng.Uint64()
		m.FillWord(p, v)
		if rng.IntN(2) == 0 {
			m.SetPageWord(p, rng.IntN(512), v^1)
		}
		w, uniform := m.PageUniform(p)
		first := m.PageWord(p, 0)
		same := true
		for i := 1; i < 512; i++ {
			if m.PageWord(p, i) != first {
				same = false
				break
			}
		}
		if uniform != same {
			return false
		}
		return !uniform || w == first
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
