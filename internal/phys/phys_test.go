package phys

import (
	"testing"

	"hyperhammer/internal/memdef"
)

func TestNewMemoryIsZero(t *testing.T) {
	m := New(1 * memdef.MiB)
	if m.Frames() != 256 {
		t.Fatalf("Frames() = %d, want 256", m.Frames())
	}
	for _, a := range []memdef.HPA{0, 8, 4096, 1*memdef.MiB - 8} {
		if w := m.Word(a); w != 0 {
			t.Errorf("Word(%#x) = %#x, want 0", a, w)
		}
	}
	if m.MaterializedFrames() != 0 {
		t.Errorf("fresh memory materialized %d frames", m.MaterializedFrames())
	}
}

func TestWordWriteRead(t *testing.T) {
	m := New(64 * memdef.KiB)
	m.SetWord(0x2008, 0xDEADBEEF)
	if got := m.Word(0x2008); got != 0xDEADBEEF {
		t.Errorf("Word = %#x", got)
	}
	if got := m.Word(0x2000); got != 0 {
		t.Errorf("neighbor word = %#x, want 0", got)
	}
	if m.MaterializedFrames() != 1 {
		t.Errorf("materialized %d frames, want 1", m.MaterializedFrames())
	}
}

func TestWritingPatternValueStaysCompact(t *testing.T) {
	m := New(64 * memdef.KiB)
	m.FillWord(3, 0x42)
	m.SetWord(3*memdef.PageSize+16, 0x42) // same value: no promotion
	if m.MaterializedFrames() != 0 {
		t.Errorf("materialized %d frames writing the pattern value", m.MaterializedFrames())
	}
	m.SetWord(3*memdef.PageSize+16, 0x43)
	if m.MaterializedFrames() != 1 {
		t.Errorf("materialized %d frames after divergent write", m.MaterializedFrames())
	}
	if got := m.Word(3*memdef.PageSize + 24); got != 0x42 {
		t.Errorf("pattern word lost on materialize: %#x", got)
	}
}

func TestFillWordAndZeroPage(t *testing.T) {
	m := New(64 * memdef.KiB)
	m.FillWord(2, 0xABCD)
	for i := 0; i < 512; i++ {
		if got := m.PageWord(2, i); got != 0xABCD {
			t.Fatalf("PageWord(2,%d) = %#x", i, got)
		}
	}
	m.SetPageWord(2, 100, 7)
	m.ZeroPage(2)
	if got := m.PageWord(2, 100); got != 0 {
		t.Errorf("after ZeroPage word = %#x", got)
	}
	if m.MaterializedFrames() != 0 {
		t.Errorf("ZeroPage left %d materialized frames", m.MaterializedFrames())
	}
}

func TestPageUniform(t *testing.T) {
	m := New(64 * memdef.KiB)
	m.FillWord(1, 9)
	if w, ok := m.PageUniform(1); !ok || w != 9 {
		t.Errorf("PageUniform = %#x,%v, want 9,true", w, ok)
	}
	m.SetPageWord(1, 5, 10)
	if _, ok := m.PageUniform(1); ok {
		t.Error("PageUniform true after divergent write")
	}
	m.SetPageWord(1, 5, 9)
	if w, ok := m.PageUniform(1); !ok || w != 9 {
		t.Errorf("PageUniform on re-uniformed page = %#x,%v", w, ok)
	}
}

func TestFlipBitDirections(t *testing.T) {
	m := New(64 * memdef.KiB)
	const addr = memdef.HPA(0x1003) // byte 3 of a word
	// Bit currently 0: 1->0 flip must not fire, 0->1 must.
	if m.FlipBit(addr, 5, true) {
		t.Error("1->0 flip fired on a zero bit")
	}
	if !m.FlipBit(addr, 5, false) {
		t.Error("0->1 flip did not fire on a zero bit")
	}
	want := uint64(1) << (3*8 + 5)
	if got := m.Word(0x1000); got != want {
		t.Errorf("word after flip = %#x, want %#x", got, want)
	}
	// Now the bit is 1: 0->1 must not fire, 1->0 must.
	if m.FlipBit(addr, 5, false) {
		t.Error("0->1 flip fired on a one bit")
	}
	if !m.FlipBit(addr, 5, true) {
		t.Error("1->0 flip did not fire on a one bit")
	}
	if got := m.Word(0x1000); got != 0 {
		t.Errorf("word after round trip = %#x, want 0", got)
	}
}

func TestFlipBitOnPatternPage(t *testing.T) {
	m := New(64 * memdef.KiB)
	m.FillWord(4, ^uint64(0))
	a := memdef.HPA(4*memdef.PageSize + 8)
	if !m.FlipBit(a, 0, true) {
		t.Fatal("flip on all-ones pattern page failed")
	}
	if got := m.Word(a); got != ^uint64(0)-1 {
		t.Errorf("flipped word = %#x", got)
	}
	// Other words retain the pattern.
	if got := m.Word(a + 8); got != ^uint64(0) {
		t.Errorf("unflipped word = %#x", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(64 * memdef.KiB)
	mustPanic(t, func() { m.Word(64 * memdef.KiB) })
	mustPanic(t, func() { m.Word(1) }) // unaligned
	mustPanic(t, func() { m.SetWord(3, 0) })
	mustPanic(t, func() { m.FillWord(memdef.PFN(16), 0) })
	mustPanic(t, func() { m.FlipBit(0, 9, true) })
	mustPanic(t, func() { New(100) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
