package mitigation

import (
	"errors"
	"testing"

	"hyperhammer/internal/memdef"
)

const sb = 2 * memdef.MiB // sub-block size in the guard's units

func TestQuarantineRules(t *testing.T) {
	guard, stats := Quarantine()
	cases := []struct {
		name               string
		delta              int64
		current, requested uint64
		blocked            bool
	}{
		{"idle voluntary unplug", -sb, 10 * sb, 10 * sb, true},
		{"idle voluntary plug", +sb, 10 * sb, 10 * sb, true},
		{"legit shrink step", -sb, 10 * sb, 8 * sb, false},
		{"legit grow step", +sb, 6 * sb, 8 * sb, false},
		{"overshoot shrink", -3 * sb, 10 * sb, 8 * sb, true},
		{"wrong direction", +sb, 10 * sb, 8 * sb, true},
		{"exact final step", -sb, 9 * sb, 8 * sb, false},
	}
	for _, c := range cases {
		err := guard(c.delta, c.current, c.requested)
		if got := err != nil; got != c.blocked {
			t.Errorf("%s: blocked=%v, want %v (err=%v)", c.name, got, c.blocked, err)
		}
		if err != nil && !errors.Is(err, ErrQuarantined) {
			t.Errorf("%s: error not ErrQuarantined: %v", c.name, err)
		}
	}
	if stats.Blocked != 4 || stats.Allowed != 3 {
		t.Errorf("stats = %+v", stats)
	}
}
