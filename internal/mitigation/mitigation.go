// Package mitigation implements the countermeasure the paper proposes
// and prototyped as a QEMU patch (Section 6, "Quarantining VM
// Communications"): the hypervisor inspects guest-initiated memory
// resize requests and NACKs those whose pattern cannot correspond to
// an honest response to the hypervisor's own target.
//
// With target size T, current size V and requested change delta, a
// request is malicious when it overshoots the remaining gap
// (|delta| > |T-V|) or moves against it (delta * (T-V) < 0).
package mitigation

import (
	"errors"
	"fmt"

	"hyperhammer/internal/trace"
	"hyperhammer/internal/virtio"
)

// ErrQuarantined reports a request refused by the quarantine policy.
var ErrQuarantined = errors.New("mitigation: request quarantined")

// Stats counts quarantine decisions for evaluation.
type Stats struct {
	// Allowed is the number of requests that passed the check.
	Allowed int
	// Blocked is the number of NACKed requests.
	Blocked int
}

// Quarantine builds a virtio.Guard implementing the paper's detection
// rule. The returned stats pointer is updated on every decision.
func Quarantine() (virtio.Guard, *Stats) {
	return Traced(nil)
}

// Traced is Quarantine with per-decision trace events: every inspected
// resize request emits "mitigation.allow" or "mitigation.block" with
// the request shape, so a trace shows exactly which guest behaviour
// tripped the rule. A nil recorder is free, making Quarantine() =
// Traced(nil).
func Traced(rec *trace.Recorder) (virtio.Guard, *Stats) {
	stats := &Stats{}
	guard := func(delta int64, current, requested uint64) error {
		gap := int64(requested) - int64(current)
		if delta*gap < 0 || abs(delta) > abs(gap) {
			stats.Blocked++
			rec.Emit("mitigation.block", "delta", delta, "current", current, "requested", requested)
			return fmt.Errorf("%w: delta=%d current=%d requested=%d",
				ErrQuarantined, delta, current, requested)
		}
		stats.Allowed++
		rec.Emit("mitigation.allow", "delta", delta, "current", current, "requested", requested)
		return nil
	}
	return guard, stats
}

func abs(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// FalsePositiveNote documents the deployment problem the QEMU
// maintainers raised (Section 6): the stock Linux driver, after a
// failed plug, unplugs the block and retries — a sequence the rule
// above classifies as malicious. Deploying the quarantine therefore
// needs a feature flag plus driver updates. The simulation's stock
// driver does not implement the retry sequence, so experiments here
// see no false positives; the note exists to keep the reproduction
// honest about the countermeasure's status (it was not merged).
const FalsePositiveNote = "virtio-mem plug-failure retry unplugs look malicious to the quarantine rule"
