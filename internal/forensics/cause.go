package forensics

import (
	"fmt"
	"sort"
	"strings"

	"hyperhammer/internal/dram"
)

// causeFor synthesizes the one-line explanation of an attempt's
// outcome from its ladder facts and flip verdict counts. The goal is a
// sentence an operator reads and knows what to change: which rung of
// the attack ladder broke, and which mechanism broke it.
func causeFor(att *attemptState, f AttemptFacts) string {
	switch f.Outcome {
	case OutcomeEscaped:
		return fmt.Sprintf(
			"flip landed in a live EPT table page and redirected an EPTE: %d candidate page(s), %d confirmed, host-secret read verified",
			f.CandidatePages, f.ConfirmedPages)
	case OutcomeVerifyFailed:
		return fmt.Sprintf(
			"%d EPT page(s) confirmed but the escape handle failed the host-secret verification read",
			f.ConfirmedPages)
	case OutcomeNoConfirmedEPT:
		return fmt.Sprintf(
			"%d candidate EPT page(s) passed the format scan but none survived modify-and-rescan confirmation",
			f.CandidatePages)
	case OutcomeNoCandidateEPT:
		return fmt.Sprintf(
			"%d mapping change(s) detected but no stolen page passed the EPTE format scan",
			f.MappingChanges)
	case OutcomeNoMappingChange:
		return noMappingChangeCause(att)
	case OutcomeSteerMiss:
		return "page steering released no vulnerable hugepage (no victim satisfied the release constraints)"
	case OutcomeNoUsableBit:
		return "none of the profiled bits relocated into this VM's fresh backing (unlucky frame reuse)"
	case OutcomeError:
		return "attempt aborted by an error before completing the ladder"
	}
	return ""
}

// verdictPhrase renders a flip verdict as the mechanism that caused
// it, for cause lines.
func verdictPhrase(v string) string {
	switch v {
	case VerdictDirectionFiltered:
		return "direction-filtered (the EPTE bit already held the flip's target value)"
	case dram.FlipTRRRefreshed:
		return "refreshed away by the TRR tracker before reaching threshold"
	case dram.FlipFlakyNoFire:
		return "in flaky cells that did not fire this time"
	case VerdictECCCorrected:
		return "scrubbed by ECC before software observed them"
	case VerdictECCUncorrectable:
		return "in double-bit words that machine-checked the host"
	case dram.FlipFired:
		return "fired but never resolved by the host stage"
	}
	return v
}

// noMappingChangeCause explains why hammering moved nothing: either no
// flip landed (name the dominant veto mechanism) or flips landed in
// frames that serve no translation.
func noMappingChangeCause(att *attemptState) string {
	if att == nil {
		return "hammering produced no mapping change"
	}
	landed := att.verdicts[VerdictLanded]
	if landed == 0 {
		total := uint64(0)
		for _, n := range att.verdicts {
			total += n
		}
		if total == 0 {
			return "hammering produced no candidate flips (disturbance stayed below every cell threshold)"
		}
		// Name the blockers largest-first; ties break alphabetically
		// for determinism.
		type kv struct {
			k string
			n uint64
		}
		var blockers []kv
		for k, n := range att.verdicts {
			if k != VerdictLanded && n > 0 {
				blockers = append(blockers, kv{k, n})
			}
		}
		sort.Slice(blockers, func(i, j int) bool {
			if blockers[i].n != blockers[j].n {
				return blockers[i].n > blockers[j].n
			}
			return blockers[i].k < blockers[j].k
		})
		parts := make([]string, 0, len(blockers))
		for _, b := range blockers {
			parts = append(parts, fmt.Sprintf("%d %s", b.n, verdictPhrase(b.k)))
		}
		return "no flip landed: " + strings.Join(parts, "; ")
	}
	// Flips landed but nothing translated through them.
	var parts []string
	for _, row := range sortedRows(att.owners) {
		parts = append(parts, fmt.Sprintf("%s×%d", row.Key, row.N))
	}
	ownerList := strings.Join(parts, ", ")
	if ownerList == "" {
		ownerList = "unknown"
	}
	return fmt.Sprintf(
		"%d flip(s) landed but none corrupted a live EPT table page (owners: %s)",
		landed, ownerList)
}
