package forensics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"hyperhammer/internal/dram"
	"hyperhammer/internal/memdef"
	"hyperhammer/internal/simtime"
)

// TestNilReceiver drives every Recorder method through a nil receiver:
// the plane is threaded through configs as a plain pointer, so every
// call site relies on nil being a silent no-op.
func TestNilReceiver(t *testing.T) {
	var r *Recorder
	if s := r.Scoped(); s != nil {
		t.Errorf("nil.Scoped() = %v, want nil", s)
	}
	r.BindClock(new(simtime.Clock))
	r.BeginHammerOp(dram.FlipOpInfo{Rounds: 1})
	r.RecordFlipEvent(dram.FlipEvent{Verdict: dram.FlipFired})
	r.ResolveFlip(0, 0, VerdictLanded, &Owner{Kind: OwnerFree})
	r.BeginCampaign(1)
	r.BeginAttempt(1)
	r.EndAttempt(AttemptFacts{Index: 1, Outcome: OutcomeEscaped})
	r.EndCampaign()
	r.Absorb(nil, "unit")
	r.Absorb(New(Config{}), "unit")
	New(Config{}).Absorb(r, "unit")

	s := r.Snapshot()
	if s.Version != Version {
		t.Errorf("nil snapshot version = %d, want %d", s.Version, Version)
	}
	if s.Campaigns == nil || s.Verdicts == nil || s.Owners == nil || s.Outcomes == nil {
		t.Error("nil snapshot carries nil slices")
	}
}

// TestSnapshotJSONNeverNull pins the serialization contract consumed
// by /api/forensics and hh-why -json: every collection marshals as [],
// never null, from an empty recorder, a nil recorder, and a populated
// one whose attempt saw no flips.
func TestSnapshotJSONNeverNull(t *testing.T) {
	cases := map[string]*Recorder{
		"nil":   nil,
		"empty": New(Config{}),
	}
	populated := New(Config{})
	populated.BeginCampaign(2)
	populated.BeginAttempt(1)
	populated.EndAttempt(AttemptFacts{Index: 1, Outcome: OutcomeNoUsableBit})
	populated.EndCampaign()
	cases["populated"] = populated

	for name, r := range cases {
		data, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		if bytes.Contains(data, []byte("null")) {
			t.Errorf("%s snapshot JSON contains null: %s", name, data)
		}
	}
}

// TestFullLineage walks one campaign through the recorder exactly as
// the wired pipeline does — dram emits a fired candidate, kvm resolves
// it to landed with an owner, attack closes the attempt — and checks
// the assembled record end to end.
func TestFullLineage(t *testing.T) {
	clock := new(simtime.Clock)
	r := New(Config{})
	r.BindClock(clock)

	r.BeginCampaign(3)

	// Profiling-phase event before any attempt opens: lands in the
	// campaign's profile bucket, not an attempt.
	r.BeginHammerOp(dram.FlipOpInfo{
		Aggressors: []dram.RowRef{{Bank: 1, Row: 10}, {Bank: 1, Row: 12}},
		Rounds:     250_000, WindowRounds: 250_000,
	})
	r.RecordFlipEvent(dram.FlipEvent{
		Addr: 0x1000, Bit: 3, Row: dram.RowRef{Bank: 1, Row: 11},
		Disturbance: 500_000, Threshold: 130_000, Verdict: dram.FlipFired,
	})
	r.ResolveFlip(0x1000, 3, VerdictDirectionFiltered, nil)

	clock.Advance(2 * time.Second)
	r.BeginAttempt(1)
	r.BeginHammerOp(dram.FlipOpInfo{
		Aggressors:  []dram.RowRef{{Bank: 2, Row: 20}, {Bank: 2, Row: 22}, {Bank: 2, Row: 24}},
		Neutralized: []dram.RowRef{{Bank: 2, Row: 24}},
		Rounds:      300_000, WindowRounds: 250_000,
	})
	r.RecordFlipEvent(dram.FlipEvent{
		Addr: 0x2000, Bit: 5, Direction: dram.FlipOneToZero,
		Row: dram.RowRef{Bank: 2, Row: 21}, Disturbance: 400_000,
		Threshold: 150_000, Verdict: dram.FlipFired,
	})
	r.RecordFlipEvent(dram.FlipEvent{
		Addr: 0x2008, Bit: 1, Row: dram.RowRef{Bank: 2, Row: 23},
		Disturbance: 260_000, Threshold: 200_000, Verdict: dram.FlipTRRRefreshed,
	})
	r.ResolveFlip(0x2000, 5, VerdictLanded, &Owner{Kind: OwnerEPTTable, VM: 2, Level: 1})
	clock.Advance(time.Second)
	r.EndAttempt(AttemptFacts{
		Index: 1, Outcome: OutcomeEscaped, UsableBits: 4, Released: 1,
		MappingChanges: 1, CandidatePages: 2, ConfirmedPages: 1,
	})
	r.EndCampaign()

	s := r.Snapshot()
	if len(s.Campaigns) != 1 {
		t.Fatalf("campaigns = %d, want 1", len(s.Campaigns))
	}
	c := s.Campaigns[0]
	if got := rowsLine(c.ProfileVerdicts); got != "direction-filtered×1" {
		t.Errorf("profile verdicts = %q", got)
	}
	if len(c.Attempts) != 1 {
		t.Fatalf("attempts = %d, want 1", len(c.Attempts))
	}
	a := c.Attempts[0]
	if a.Outcome != OutcomeEscaped {
		t.Errorf("outcome = %q", a.Outcome)
	}
	if !strings.Contains(a.Cause, "redirected an EPTE") {
		t.Errorf("escape cause %q does not name the EPTE redirect", a.Cause)
	}
	if a.StartSimSeconds != 2 || a.EndSimSeconds != 3 {
		t.Errorf("attempt sim window = [%v, %v], want [2, 3]", a.StartSimSeconds, a.EndSimSeconds)
	}
	if got := rowsLine(a.Verdicts); got != "landed×1, trr-refreshed×1" {
		t.Errorf("attempt verdicts = %q", got)
	}
	if got := rowsLine(a.Owners); got != "ept-table×1" {
		t.Errorf("attempt owners = %q", got)
	}
	if len(a.Flips) != 2 {
		t.Fatalf("flip records = %d, want 2", len(a.Flips))
	}
	// The trr-refreshed event commits immediately; the fired candidate
	// commits when the host stage resolves it, so it lands second.
	landed := a.Flips[1]
	if landed.Verdict != VerdictLanded || landed.HPA != 0x2000 || landed.Bit != 5 {
		t.Errorf("landed record = %+v", landed)
	}
	if landed.Owner == nil || landed.Owner.Kind != OwnerEPTTable || landed.Owner.VM != 2 {
		t.Errorf("landed owner = %+v", landed.Owner)
	}
	if len(landed.Aggressors) != 3 {
		t.Fatalf("aggressors = %d, want 3", len(landed.Aggressors))
	}
	// The neutralized row appears in the aggressor set with zero
	// activations and again in the Neutralized list.
	if landed.Aggressors[2].Row != 24 || landed.Aggressors[2].Activations != 0 {
		t.Errorf("neutralized aggressor = %+v, want row 24 with 0 activations", landed.Aggressors[2])
	}
	if landed.Aggressors[0].Activations != 250_000 {
		t.Errorf("active aggressor activations = %d, want window-clipped 250000", landed.Aggressors[0].Activations)
	}
	if len(landed.Neutralized) != 1 || landed.Neutralized[0].Row != 24 {
		t.Errorf("neutralized list = %+v", landed.Neutralized)
	}
	if landed.RoundsRequested != 300_000 || landed.RoundsEffective != 250_000 {
		t.Errorf("rounds = %d/%d, want 300000/250000", landed.RoundsRequested, landed.RoundsEffective)
	}

	if got := rowsLine(s.Verdicts); got != "direction-filtered×1, landed×1, trr-refreshed×1" {
		t.Errorf("global verdicts = %q", got)
	}
	if got := rowsLine(s.Outcomes); got != "escaped×1" {
		t.Errorf("global outcomes = %q", got)
	}

	// The render path names the owner frame and the aggressors.
	var buf bytes.Buffer
	WriteAttempt(&buf, &c, &a)
	out := buf.String()
	for _, want := range []string{
		"attempt 1: escaped",
		"aggressors: bank 2 row 20 ×250000",
		"TRR-neutralized: bank 2 row 24",
		"owner: EPT table page (level 1) of VM 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteAttempt output missing %q:\n%s", want, out)
		}
	}
}

// TestFailureCauses checks the synthesized one-line causes of the
// no-mapping-change taxonomy: no flips at all, flips all vetoed, and
// flips landed in useless frames.
func TestFailureCauses(t *testing.T) {
	mk := func(events []dram.FlipEvent, resolve func(r *Recorder)) AttemptRecord {
		r := New(Config{})
		r.BeginCampaign(1)
		r.BeginAttempt(1)
		r.BeginHammerOp(dram.FlipOpInfo{
			Aggressors: []dram.RowRef{{Bank: 0, Row: 1}, {Bank: 0, Row: 3}},
			Rounds:     250_000, WindowRounds: 250_000,
		})
		for _, ev := range events {
			r.RecordFlipEvent(ev)
		}
		if resolve != nil {
			resolve(r)
		}
		r.EndAttempt(AttemptFacts{Index: 1, Outcome: OutcomeNoMappingChange})
		r.EndCampaign()
		s := r.Snapshot()
		return s.Campaigns[0].Attempts[0]
	}

	a := mk(nil, nil)
	if want := "no candidate flips"; !strings.Contains(a.Cause, want) {
		t.Errorf("no-flips cause %q missing %q", a.Cause, want)
	}

	a = mk([]dram.FlipEvent{
		{Addr: 0x10, Bit: 0, Verdict: dram.FlipTRRRefreshed},
		{Addr: 0x18, Bit: 2, Verdict: dram.FlipTRRRefreshed},
		{Addr: 0x20, Bit: 4, Verdict: dram.FlipFlakyNoFire},
	}, nil)
	if !strings.HasPrefix(a.Cause, "no flip landed: 2 refreshed away by the TRR tracker") {
		t.Errorf("vetoed cause = %q", a.Cause)
	}
	if !strings.Contains(a.Cause, "1 in flaky cells") {
		t.Errorf("vetoed cause %q does not list the flaky blocker", a.Cause)
	}

	a = mk([]dram.FlipEvent{
		{Addr: 0x30, Bit: 1, Verdict: dram.FlipFired},
	}, func(r *Recorder) {
		r.ResolveFlip(0x30, 1, VerdictLanded, &Owner{Kind: OwnerGuestFrame, VM: 1, GPA: 0x4000})
	})
	if want := "1 flip(s) landed but none corrupted a live EPT table page (owners: guest-frame×1)"; a.Cause != want {
		t.Errorf("useless-landing cause = %q, want %q", a.Cause, want)
	}
}

// TestAbsorbDeclarationOrder checks that Absorb appends unit campaigns
// in call order and merges totals — the property the parallel plan
// engine relies on for byte-identical snapshots at any -parallel N.
func TestAbsorbDeclarationOrder(t *testing.T) {
	parent := New(Config{})
	units := []string{"unit-a", "unit-b", "unit-c"}
	for i, name := range units {
		child := parent.Scoped()
		child.BeginCampaign(1)
		child.BeginAttempt(1)
		child.RecordFlipEvent(dram.FlipEvent{
			Addr: memdef.HPA(0x1000 * (i + 1)), Verdict: dram.FlipFlakyNoFire,
		})
		child.EndAttempt(AttemptFacts{Index: 1, Outcome: OutcomeNoMappingChange})
		// EndCampaign deliberately omitted: Absorb must close it.
		parent.Absorb(child, name)
	}
	s := parent.Snapshot()
	if len(s.Campaigns) != len(units) {
		t.Fatalf("campaigns = %d, want %d", len(s.Campaigns), len(units))
	}
	for i, name := range units {
		if s.Campaigns[i].Unit != name {
			t.Errorf("campaign %d unit = %q, want %q", i, s.Campaigns[i].Unit, name)
		}
	}
	if got := rowsLine(s.Verdicts); got != "flaky-no-fire×3" {
		t.Errorf("merged verdicts = %q", got)
	}
	if got := rowsLine(s.Outcomes); got != "no-mapping-change×3" {
		t.Errorf("merged outcomes = %q", got)
	}
}

// TestFlipDetailTruncation checks the per-attempt detail bound: counters
// keep counting, detail stops, and the truncation is reported.
func TestFlipDetailTruncation(t *testing.T) {
	r := New(Config{MaxFlipsPerAttempt: 4})
	r.BeginCampaign(1)
	r.BeginAttempt(1)
	r.BeginHammerOp(dram.FlipOpInfo{Rounds: 1, WindowRounds: 1})
	for i := 0; i < 10; i++ {
		r.RecordFlipEvent(dram.FlipEvent{
			Addr: memdef.HPA(i * 8), Bit: uint(i % 8), Verdict: dram.FlipFlakyNoFire,
		})
	}
	r.EndAttempt(AttemptFacts{Index: 1, Outcome: OutcomeNoMappingChange})
	r.EndCampaign()

	s := r.Snapshot()
	a := s.Campaigns[0].Attempts[0]
	if len(a.Flips) != 4 {
		t.Errorf("retained flips = %d, want 4", len(a.Flips))
	}
	if a.FlipsTruncated != 6 {
		t.Errorf("attempt truncated = %d, want 6", a.FlipsTruncated)
	}
	if got := rowsLine(a.Verdicts); got != "flaky-no-fire×10" {
		t.Errorf("verdict counters = %q, want all 10 counted", got)
	}
	if s.FlipsRecorded != 4 || s.FlipsTruncated != 6 {
		t.Errorf("global detail = %d recorded / %d truncated, want 4/6", s.FlipsRecorded, s.FlipsTruncated)
	}
}

// TestUnresolvedFiredFlush checks that fired candidates the host stage
// never resolves are flushed with their dram-stage verdict instead of
// leaking into the next attempt.
func TestUnresolvedFiredFlush(t *testing.T) {
	r := New(Config{})
	r.BeginCampaign(2)
	r.BeginAttempt(1)
	r.RecordFlipEvent(dram.FlipEvent{Addr: 0x100, Bit: 2, Verdict: dram.FlipFired})
	r.EndAttempt(AttemptFacts{Index: 1, Outcome: OutcomeNoMappingChange})
	r.BeginAttempt(2)
	r.EndAttempt(AttemptFacts{Index: 2, Outcome: OutcomeNoUsableBit})
	r.EndCampaign()

	s := r.Snapshot()
	a1 := s.Campaigns[0].Attempts[0]
	if len(a1.Flips) != 1 || a1.Flips[0].Verdict != dram.FlipFired {
		t.Errorf("attempt 1 flips = %+v, want one unresolved fired record", a1.Flips)
	}
	a2 := s.Campaigns[0].Attempts[1]
	if len(a2.Flips) != 0 {
		t.Errorf("attempt 2 inherited %d pending flip(s)", len(a2.Flips))
	}
}

// TestFindAttempt exercises the unit-scoped and unscoped lookups that
// back hh-why -attempt.
func TestFindAttempt(t *testing.T) {
	parent := New(Config{})
	for _, name := range []string{"first", "second"} {
		child := parent.Scoped()
		child.BeginCampaign(1)
		child.BeginAttempt(1)
		child.EndAttempt(AttemptFacts{Index: 1, Outcome: OutcomeNoUsableBit})
		child.EndCampaign()
		parent.Absorb(child, name)
	}
	s := parent.Snapshot()
	c, _, ok := s.FindAttempt("", 1)
	if !ok || c.Unit != "first" {
		t.Errorf("unscoped lookup hit unit %q, want first", c.Unit)
	}
	c, a, ok := s.FindAttempt("second", 1)
	if !ok || c.Unit != "second" || a.Index != 1 {
		t.Errorf("scoped lookup = (%v, %v, %v)", c, a, ok)
	}
	if _, _, ok := s.FindAttempt("", 99); ok {
		t.Error("lookup of absent attempt succeeded")
	}
}
