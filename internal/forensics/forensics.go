// Package forensics is the flip-provenance plane: where metrics count
// what happened and inspect shows what the machine looks like, this
// package records *why* each attack attempt ended the way it did — the
// causal chain from aggressor row activations through the fault
// model's per-flip verdicts (direction-filtered, TRR-refreshed,
// ECC-vetoed, flaky-no-fire, landed), the physical frame and owner
// each landed flip resolved to at flip time, and the exploit outcome
// the attempt joined them into (steering miss, no usable bit, mapping
// change, confirmed EPT page, escape).
//
// The recorder hangs off the same hook points as the other planes: the
// dram flip sink feeds Stage 1 (the flip pipeline), kvm resolves Stage
// 2 (frame ownership) via ResolveFlip, and the attack campaign drives
// Stage 3 (the attempt timeline) via Begin/EndAttempt. Like inspect,
// every method is safe on a nil receiver, recorders scope per plan
// unit via Scoped/Absorb (declaration-order folds keep snapshots
// byte-identical at any -parallel setting), and nothing here feeds
// back into simulated state: hooks consume no RNG draws and never
// advance the simulated clock, so enabling the plane cannot perturb
// results.
package forensics

import (
	"sort"
	"sync"

	"hyperhammer/internal/dram"
	"hyperhammer/internal/memdef"
	"hyperhammer/internal/simtime"
)

// Version is the forensics snapshot schema version.
const Version = 1

// Host-stage flip verdicts, continuing the dram-stage chain
// (dram.FlipFired / FlipFlakyNoFire / FlipTRRRefreshed).
const (
	// VerdictLanded marks a flip that changed memory contents.
	VerdictLanded = "landed"
	// VerdictDirectionFiltered marks a candidate whose target bit
	// already held the flip's destination value.
	VerdictDirectionFiltered = "direction-filtered"
	// VerdictECCCorrected marks a flip the ECC scrubber repaired
	// before software observed it (mitigation-vetoed).
	VerdictECCCorrected = "ecc-corrected"
	// VerdictECCUncorrectable marks a flip in a double-bit word that
	// machine-checked the host.
	VerdictECCUncorrectable = "ecc-uncorrectable"
)

// Frame-owner kinds for landed flips.
const (
	OwnerEPTTable   = "ept-table"
	OwnerIOPTTable  = "iopt-table"
	OwnerGuestFrame = "guest-frame"
	OwnerKernel     = "kernel"
	OwnerFree       = "free"
)

// Attempt outcomes, the failure taxonomy of the attack ladder in
// order of progress: each outcome names the first rung the attempt
// failed to clear.
const (
	OutcomeNoUsableBit     = "no-usable-bit"
	OutcomeSteerMiss       = "steer-miss"
	OutcomeNoMappingChange = "no-mapping-change"
	OutcomeNoCandidateEPT  = "no-candidate-ept"
	OutcomeNoConfirmedEPT  = "no-confirmed-ept"
	OutcomeVerifyFailed    = "verify-failed"
	OutcomeEscaped         = "escaped"
	OutcomeError           = "error"
)

// Config tunes a Recorder. The zero value selects usable defaults.
type Config struct {
	// MaxFlipsPerAttempt bounds the detailed flip records retained
	// per attempt (default DefaultMaxFlipsPerAttempt). Verdict and
	// owner counters keep counting past the bound; FlipsTruncated
	// reports how many records were dropped.
	MaxFlipsPerAttempt int
}

// DefaultMaxFlipsPerAttempt bounds per-attempt flip detail.
const DefaultMaxFlipsPerAttempt = 48

func (c Config) withDefaults() Config {
	if c.MaxFlipsPerAttempt <= 0 {
		c.MaxFlipsPerAttempt = DefaultMaxFlipsPerAttempt
	}
	return c
}

// CountRow is one (key, count) pair of a deterministic counter table
// (verdicts, owners, outcomes), sorted by key in every snapshot.
type CountRow struct {
	Key string `json:"key"`
	N   uint64 `json:"n"`
}

// AggressorRef names one aggressor row and its effective per-window
// activation count for the operation that drove a flip event.
type AggressorRef struct {
	Bank int `json:"bank"`
	Row  int `json:"row"`
	// Activations is the per-refresh-window activation count the row
	// contributed (0 for rows the TRR tracker neutralized).
	Activations int64 `json:"activations,omitempty"`
}

// Owner identifies the physical frame a landed flip resolved to at
// flip time.
type Owner struct {
	// Kind is one of the Owner* constants.
	Kind string `json:"kind"`
	// VM is the owning VM's host-assigned id (0 when no VM owns the
	// frame).
	VM int `json:"vm,omitempty"`
	// Level is the table level for ept-table frames (1 = leaf, the
	// paper's "EPT pages").
	Level int `json:"level,omitempty"`
	// GPA is the guest-physical address backed by the frame for
	// guest-frame owners.
	GPA uint64 `json:"gpa,omitempty"`
}

// FlipRecord is one fully-resolved flip event: the dram-stage context
// (aggressors, disturbance, rounds), the final verdict, and — for
// landed flips — the owner of the frame the flip corrupted.
type FlipRecord struct {
	// SimSeconds is the simulated clock at the event.
	SimSeconds float64 `json:"t"`
	// HPA/Bit locate the flipped cell in host physical memory.
	HPA uint64 `json:"hpa"`
	Bit uint   `json:"bit"`
	// Direction is the cell's fixed flip direction ("1->0" / "0->1").
	Direction string `json:"dir,omitempty"`
	// Bank/Row locate the victim cell in DRAM.
	Bank int `json:"bank"`
	Row  int `json:"row"`
	// Verdict is the final verdict of the flip pipeline.
	Verdict string `json:"verdict"`
	// Disturbance is the activation-weighted disturbance that drove
	// the event, absent the verdict's mitigation (for trr-refreshed
	// events it is the pre-TRR disturbance that would have fired the
	// cell); Threshold is the cell's flip threshold.
	Disturbance float64 `json:"disturbance,omitempty"`
	Threshold   float64 `json:"threshold,omitempty"`
	// RoundsRequested/RoundsEffective are the operation's requested
	// and refresh-window-clipped per-aggressor activation counts.
	RoundsRequested int `json:"roundsRequested,omitempty"`
	RoundsEffective int `json:"roundsEffective,omitempty"`
	// Aggressors is the active aggressor row set whose activations
	// fed the event; Neutralized lists rows the TRR tracker caught.
	Aggressors  []AggressorRef `json:"aggressors"`
	Neutralized []AggressorRef `json:"neutralized,omitempty"`
	// Owner is the flip-time frame owner (landed flips only).
	Owner *Owner `json:"owner,omitempty"`
}

// AttemptRecord is the causal record of one attack attempt.
type AttemptRecord struct {
	Index           int     `json:"index"`
	StartSimSeconds float64 `json:"startSimSeconds"`
	EndSimSeconds   float64 `json:"endSimSeconds"`
	// Outcome is the failure-taxonomy bucket; Cause is the
	// synthesized one-line explanation.
	Outcome string `json:"outcome"`
	Cause   string `json:"cause"`
	// Ladder facts joined from the attack stages.
	UsableBits     int `json:"usableBits"`
	Released       int `json:"released"`
	Splits         int `json:"splits"`
	MappingChanges int `json:"mappingChanges"`
	CandidatePages int `json:"candidatePages"`
	ConfirmedPages int `json:"confirmedPages"`
	// Verdicts/Owners count the attempt's flip events by verdict and
	// landed-frame owner kind.
	Verdicts []CountRow `json:"verdicts"`
	Owners   []CountRow `json:"owners"`
	// Flips retains per-flip detail up to the configured bound.
	Flips          []FlipRecord `json:"flips"`
	FlipsTruncated int          `json:"flipsTruncated,omitempty"`
}

// CampaignRecord is one campaign's sim-time-ordered attack timeline
// plus its failure-taxonomy summary.
type CampaignRecord struct {
	// Unit tags the plan unit that ran the campaign ("" for the live
	// recorder's own campaigns).
	Unit            string  `json:"unit,omitempty"`
	StartSimSeconds float64 `json:"startSimSeconds"`
	EndSimSeconds   float64 `json:"endSimSeconds"`
	MaxAttempts     int     `json:"maxAttempts,omitempty"`
	// ProfileVerdicts counts flip events outside any attempt — the
	// one-time profiling phase (detail is not retained: profiling
	// floods candidates by design).
	ProfileVerdicts []CountRow      `json:"profileVerdicts"`
	Attempts        []AttemptRecord `json:"attempts"`
	// Outcomes is the campaign's failure taxonomy: attempt outcome →
	// count.
	Outcomes []CountRow `json:"outcomes"`
}

// Snapshot is the serialized forensics plane: plan-unit campaigns in
// declaration order, then the live recorder's own, plus global verdict
// /owner/outcome totals covering every event (campaign or not).
type Snapshot struct {
	Version   int              `json:"version"`
	Campaigns []CampaignRecord `json:"campaigns"`
	Verdicts  []CountRow       `json:"verdicts"`
	Owners    []CountRow       `json:"owners"`
	Outcomes  []CountRow       `json:"outcomes"`
	// FlipsRecorded/FlipsTruncated count retained vs dropped detailed
	// flip records across all attempts.
	FlipsRecorded  int `json:"flipsRecorded"`
	FlipsTruncated int `json:"flipsTruncated"`
}

// AttemptFacts carries one finished attempt's ladder facts from the
// attack layer into EndAttempt.
type AttemptFacts struct {
	Index          int
	Outcome        string
	UsableBits     int
	Released       int
	Splits         int
	MappingChanges int
	CandidatePages int
	ConfirmedPages int
}

// opContext is the current hammer operation's provenance, attached to
// every flip event it produces.
type opContext struct {
	aggs      []AggressorRef
	neut      []AggressorRef
	roundsReq int
	roundsEff int
}

// campaignState is an open campaign under construction.
type campaignState struct {
	rec      CampaignRecord
	outcomes map[string]uint64
	prof     map[string]uint64
}

// attemptState is an open attempt under construction.
type attemptState struct {
	rec      AttemptRecord
	verdicts map[string]uint64
	owners   map[string]uint64
}

// Recorder accumulates flip provenance for one telemetry scope: a
// whole CLI run, or one scheduled plan unit (see Scoped/Absorb). All
// methods are safe for concurrent use and no-ops on a nil receiver, so
// config threading never guards.
type Recorder struct {
	cfg Config

	mu    sync.Mutex
	clock *simtime.Clock

	// absorbed holds unit campaigns folded in declaration order; done
	// holds this recorder's own completed campaigns.
	absorbed []CampaignRecord
	done     []CampaignRecord
	cur      *campaignState
	att      *attemptState

	op      *opContext
	pending []FlipRecord

	verdicts map[string]uint64
	owners   map[string]uint64
	outcomes map[string]uint64

	flipsRecorded  int
	flipsTruncated int
}

// New creates a Recorder.
func New(cfg Config) *Recorder {
	return &Recorder{
		cfg:      cfg.withDefaults(),
		verdicts: make(map[string]uint64),
		owners:   make(map[string]uint64),
		outcomes: make(map[string]uint64),
	}
}

// Scoped returns a fresh Recorder with the same configuration, for one
// scheduled plan unit; fold it back with Absorb. Nil-safe.
func (r *Recorder) Scoped() *Recorder {
	if r == nil {
		return nil
	}
	return New(r.cfg)
}

// BindClock points the recorder at a host's simulated clock; event
// timestamps read it. kvm.NewHost calls this at boot, so a recorder
// serving several sequential hosts stamps each host's events with that
// host's clock, mirroring trace and metrics.
func (r *Recorder) BindClock(c *simtime.Clock) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.clock = c
	r.mu.Unlock()
}

// nowLocked returns the bound clock's reading in simulated seconds.
func (r *Recorder) nowLocked() float64 {
	if r.clock == nil {
		return 0
	}
	return r.clock.Now().Seconds()
}

// BeginHammerOp implements dram.FlipSink: a new hammer operation
// starts; subsequent flip events carry its aggressor provenance.
func (r *Recorder) BeginHammerOp(info dram.FlipOpInfo) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushPendingLocked()
	op := &opContext{roundsReq: info.Rounds, roundsEff: info.WindowRounds}
	for _, ag := range info.Aggressors {
		op.aggs = append(op.aggs, AggressorRef{Bank: ag.Bank, Row: ag.Row, Activations: int64(info.WindowRounds)})
	}
	for _, ag := range info.Neutralized {
		op.neut = append(op.neut, AggressorRef{Bank: ag.Bank, Row: ag.Row})
		// Neutralized rows contribute no activations; mark them so in
		// the active set too (TRR caught them before they disturbed).
		for i := range op.aggs {
			if op.aggs[i].Bank == ag.Bank && op.aggs[i].Row == ag.Row {
				op.aggs[i].Activations = 0
			}
		}
	}
	r.op = op
}

// RecordFlipEvent implements dram.FlipSink: one per-cell verdict from
// the fault model. Fired candidates stay pending until the host stage
// resolves them (ResolveFlip); mitigation verdicts commit immediately.
func (r *Recorder) RecordFlipEvent(ev dram.FlipEvent) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rec := r.recordFromEventLocked(ev)
	if ev.Verdict == dram.FlipFired {
		r.pending = append(r.pending, rec)
		return
	}
	r.commitLocked(rec)
}

// recordFromEventLocked builds a FlipRecord carrying the current op's
// provenance.
func (r *Recorder) recordFromEventLocked(ev dram.FlipEvent) FlipRecord {
	rec := FlipRecord{
		SimSeconds:  r.nowLocked(),
		HPA:         uint64(ev.Addr),
		Bit:         ev.Bit,
		Direction:   ev.Direction.String(),
		Bank:        ev.Row.Bank,
		Row:         ev.Row.Row,
		Verdict:     ev.Verdict,
		Disturbance: ev.Disturbance,
		Threshold:   ev.Threshold,
		Aggressors:  []AggressorRef{},
	}
	if op := r.op; op != nil {
		rec.RoundsRequested = op.roundsReq
		rec.RoundsEffective = op.roundsEff
		rec.Aggressors = append(rec.Aggressors, op.aggs...)
		rec.Neutralized = append(rec.Neutralized, op.neut...)
	}
	return rec
}

// ResolveFlip joins the host stage's verdict for a fired candidate:
// landed (with its flip-time frame owner), direction-filtered, or an
// ECC verdict. The kvm layer calls this synchronously after the fault
// model returns, so the candidate is still pending from the same op.
func (r *Recorder) ResolveFlip(addr memdef.HPA, bit uint, verdict string, owner *Owner) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.pending {
		if r.pending[i].HPA == uint64(addr) && r.pending[i].Bit == bit {
			rec := r.pending[i]
			r.pending = append(r.pending[:i], r.pending[i+1:]...)
			rec.SimSeconds = r.nowLocked()
			rec.Verdict = verdict
			rec.Owner = owner
			r.commitLocked(rec)
			return
		}
	}
	// No pending candidate (flip sink not installed, or a rigged
	// test): record what the host stage knows.
	rec := FlipRecord{
		SimSeconds: r.nowLocked(),
		HPA:        uint64(addr),
		Bit:        bit,
		Verdict:    verdict,
		Owner:      owner,
		Aggressors: []AggressorRef{},
	}
	if op := r.op; op != nil {
		rec.RoundsRequested = op.roundsReq
		rec.RoundsEffective = op.roundsEff
		rec.Aggressors = append(rec.Aggressors, op.aggs...)
		rec.Neutralized = append(rec.Neutralized, op.neut...)
	}
	r.commitLocked(rec)
}

// flushPendingLocked commits candidates the host stage never resolved
// (their verdict stays "fired").
func (r *Recorder) flushPendingLocked() {
	for _, rec := range r.pending {
		r.commitLocked(rec)
	}
	r.pending = r.pending[:0]
}

// commitLocked folds one final flip record into the open attempt (or
// the campaign's profile bucket) and the global totals.
func (r *Recorder) commitLocked(rec FlipRecord) {
	r.verdicts[rec.Verdict]++
	if rec.Owner != nil {
		r.owners[rec.Owner.Kind]++
	}
	if att := r.att; att != nil {
		att.verdicts[rec.Verdict]++
		if rec.Owner != nil {
			att.owners[rec.Owner.Kind]++
		}
		if len(att.rec.Flips) < r.cfg.MaxFlipsPerAttempt {
			att.rec.Flips = append(att.rec.Flips, rec)
			r.flipsRecorded++
		} else {
			att.rec.FlipsTruncated++
			r.flipsTruncated++
		}
		return
	}
	if cur := r.cur; cur != nil {
		cur.prof[rec.Verdict]++
	}
}

// BeginCampaign opens a campaign record; the attack layer calls it at
// campaign start.
func (r *Recorder) BeginCampaign(maxAttempts int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur != nil {
		r.endCampaignLocked()
	}
	r.cur = &campaignState{
		rec:      CampaignRecord{StartSimSeconds: r.nowLocked(), MaxAttempts: maxAttempts},
		outcomes: make(map[string]uint64),
		prof:     make(map[string]uint64),
	}
}

// EndCampaign closes the open campaign.
func (r *Recorder) EndCampaign() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.endCampaignLocked()
}

func (r *Recorder) endCampaignLocked() {
	r.flushPendingLocked()
	if r.att != nil {
		r.endAttemptLocked(AttemptFacts{Index: r.att.rec.Index, Outcome: OutcomeError})
	}
	cur := r.cur
	if cur == nil {
		return
	}
	cur.rec.EndSimSeconds = r.nowLocked()
	cur.rec.ProfileVerdicts = sortedRows(cur.prof)
	cur.rec.Outcomes = sortedRows(cur.outcomes)
	if cur.rec.Attempts == nil {
		cur.rec.Attempts = []AttemptRecord{}
	}
	r.done = append(r.done, cur.rec)
	r.cur = nil
}

// BeginAttempt opens attempt `index` of the current campaign.
func (r *Recorder) BeginAttempt(index int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushPendingLocked()
	if r.att != nil {
		r.endAttemptLocked(AttemptFacts{Index: r.att.rec.Index, Outcome: OutcomeError})
	}
	if r.cur == nil {
		// An attempt outside any campaign still gets a record.
		r.cur = &campaignState{
			rec:      CampaignRecord{StartSimSeconds: r.nowLocked()},
			outcomes: make(map[string]uint64),
			prof:     make(map[string]uint64),
		}
	}
	r.att = &attemptState{
		rec:      AttemptRecord{Index: index, StartSimSeconds: r.nowLocked(), Flips: []FlipRecord{}},
		verdicts: make(map[string]uint64),
		owners:   make(map[string]uint64),
	}
}

// EndAttempt closes the open attempt with its ladder facts, counts its
// outcome in the campaign taxonomy, and synthesizes the cause line.
func (r *Recorder) EndAttempt(f AttemptFacts) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushPendingLocked()
	r.endAttemptLocked(f)
}

func (r *Recorder) endAttemptLocked(f AttemptFacts) {
	att := r.att
	if att == nil {
		return
	}
	r.att = nil
	att.rec.EndSimSeconds = r.nowLocked()
	att.rec.Outcome = f.Outcome
	att.rec.UsableBits = f.UsableBits
	att.rec.Released = f.Released
	att.rec.Splits = f.Splits
	att.rec.MappingChanges = f.MappingChanges
	att.rec.CandidatePages = f.CandidatePages
	att.rec.ConfirmedPages = f.ConfirmedPages
	att.rec.Verdicts = sortedRows(att.verdicts)
	att.rec.Owners = sortedRows(att.owners)
	att.rec.Cause = causeFor(att, f)
	if f.Outcome != "" {
		r.outcomes[f.Outcome]++
	}
	if cur := r.cur; cur != nil {
		if f.Outcome != "" {
			cur.outcomes[f.Outcome]++
		}
		cur.rec.Attempts = append(cur.rec.Attempts, att.rec)
	}
}

// Absorb folds a completed scoped Recorder into this one, tagging its
// campaigns with the plan unit's name. The parallel experiment engine
// calls this at delivery, in declaration order, which is what keeps
// snapshots byte-identical at any -parallel setting. Nil-safe on both
// sides.
func (r *Recorder) Absorb(child *Recorder, unit string) {
	if r == nil || child == nil {
		return
	}
	child.mu.Lock()
	child.flushPendingLocked()
	child.endCampaignLocked()
	campaigns := make([]CampaignRecord, 0, len(child.absorbed)+len(child.done))
	campaigns = append(campaigns, child.absorbed...)
	campaigns = append(campaigns, child.done...)
	verdicts := copyCounts(child.verdicts)
	owners := copyCounts(child.owners)
	outcomes := copyCounts(child.outcomes)
	recorded, truncated := child.flipsRecorded, child.flipsTruncated
	child.mu.Unlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range campaigns {
		if c.Unit == "" {
			c.Unit = unit
		}
		r.absorbed = append(r.absorbed, c)
	}
	mergeCounts(r.verdicts, verdicts)
	mergeCounts(r.owners, owners)
	mergeCounts(r.outcomes, outcomes)
	r.flipsRecorded += recorded
	r.flipsTruncated += truncated
}

// Snapshot serializes the plane: absorbed unit campaigns in
// declaration order, this recorder's completed campaigns, and — when a
// campaign is mid-flight (the live /api/forensics view) — a view of it
// as recorded so far. Nil-safe (empty snapshot).
func (r *Recorder) Snapshot() Snapshot {
	s := Snapshot{
		Version:   Version,
		Campaigns: []CampaignRecord{},
		Verdicts:  []CountRow{},
		Owners:    []CountRow{},
		Outcomes:  []CountRow{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s.Campaigns = append(s.Campaigns, r.absorbed...)
	s.Campaigns = append(s.Campaigns, r.done...)
	if cur := r.cur; cur != nil {
		view := cur.rec
		view.EndSimSeconds = r.nowLocked()
		view.ProfileVerdicts = sortedRows(cur.prof)
		view.Outcomes = sortedRows(cur.outcomes)
		view.Attempts = append([]AttemptRecord{}, cur.rec.Attempts...)
		s.Campaigns = append(s.Campaigns, view)
	}
	s.Verdicts = sortedRows(r.verdicts)
	s.Owners = sortedRows(r.owners)
	s.Outcomes = sortedRows(r.outcomes)
	s.FlipsRecorded = r.flipsRecorded
	s.FlipsTruncated = r.flipsTruncated
	return s
}

func sortedRows(m map[string]uint64) []CountRow {
	rows := make([]CountRow, 0, len(m))
	for k, v := range m {
		rows = append(rows, CountRow{Key: k, N: v})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
	return rows
}

func copyCounts(m map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func mergeCounts(dst, src map[string]uint64) {
	for k, v := range src {
		dst[k] += v
	}
}
