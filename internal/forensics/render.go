package forensics

import (
	"fmt"
	"io"
	"strings"
)

// This file renders forensics snapshots as text, shared by cmd/hh-why
// and cmd/hh-inspect's forensics subcommand.

// campaignLabel names a campaign for display.
func campaignLabel(i int, c *CampaignRecord) string {
	if c.Unit != "" {
		return fmt.Sprintf("campaign %d (%s)", i, c.Unit)
	}
	return fmt.Sprintf("campaign %d", i)
}

// WriteSummary renders the failure-taxonomy view: per campaign, the
// attempt timeline with outcome and cause, then the outcome table.
func (s *Snapshot) WriteSummary(w io.Writer) {
	if len(s.Campaigns) == 0 {
		fmt.Fprintln(w, "no campaigns recorded")
		writeTotals(w, s)
		return
	}
	for i := range s.Campaigns {
		c := &s.Campaigns[i]
		fmt.Fprintf(w, "%s: %d attempt(s), sim %.1fs → %.1fs\n",
			campaignLabel(i, c), len(c.Attempts), c.StartSimSeconds, c.EndSimSeconds)
		if len(c.ProfileVerdicts) > 0 {
			fmt.Fprintf(w, "  profile-phase flip verdicts: %s\n", rowsLine(c.ProfileVerdicts))
		}
		for j := range c.Attempts {
			a := &c.Attempts[j]
			fmt.Fprintf(w, "  attempt %d [t=%.1fs]: %s — %s\n",
				a.Index, a.StartSimSeconds, a.Outcome, a.Cause)
		}
		if len(c.Outcomes) > 0 {
			fmt.Fprintf(w, "  outcome taxonomy: %s\n", rowsLine(c.Outcomes))
		}
	}
	writeTotals(w, s)
}

func writeTotals(w io.Writer, s *Snapshot) {
	if len(s.Verdicts) > 0 {
		fmt.Fprintf(w, "flip verdicts (all events): %s\n", rowsLine(s.Verdicts))
	}
	if len(s.Owners) > 0 {
		fmt.Fprintf(w, "landed-flip frame owners: %s\n", rowsLine(s.Owners))
	}
	if s.FlipsTruncated > 0 {
		fmt.Fprintf(w, "flip detail retained for %d event(s); %d dropped beyond the per-attempt bound\n",
			s.FlipsRecorded, s.FlipsTruncated)
	}
}

func rowsLine(rows []CountRow) string {
	parts := make([]string, 0, len(rows))
	for _, r := range rows {
		parts = append(parts, fmt.Sprintf("%s×%d", r.Key, r.N))
	}
	return strings.Join(parts, ", ")
}

// FindAttempt locates attempt `index` — in the named unit's campaign
// when unit is non-empty, otherwise in the first campaign containing
// it.
func (s *Snapshot) FindAttempt(unit string, index int) (*CampaignRecord, *AttemptRecord, bool) {
	for i := range s.Campaigns {
		c := &s.Campaigns[i]
		if unit != "" && c.Unit != unit {
			continue
		}
		for j := range c.Attempts {
			if c.Attempts[j].Index == index {
				return c, &c.Attempts[j], true
			}
		}
	}
	return nil, nil, false
}

// WriteAttempt renders one attempt's full causal lineage: the ladder
// facts, then every retained flip with its aggressors, verdict, and —
// for landed flips — the owner frame the flip corrupted.
func WriteAttempt(w io.Writer, c *CampaignRecord, a *AttemptRecord) {
	fmt.Fprintf(w, "attempt %d: %s\n", a.Index, a.Outcome)
	fmt.Fprintf(w, "  cause: %s\n", a.Cause)
	fmt.Fprintf(w, "  sim time: %.1fs → %.1fs\n", a.StartSimSeconds, a.EndSimSeconds)
	fmt.Fprintf(w, "  ladder: usableBits=%d released=%d splits=%d mappingChanges=%d candidatePages=%d confirmedPages=%d\n",
		a.UsableBits, a.Released, a.Splits, a.MappingChanges, a.CandidatePages, a.ConfirmedPages)
	if len(a.Verdicts) > 0 {
		fmt.Fprintf(w, "  flip verdicts: %s\n", rowsLine(a.Verdicts))
	}
	if len(a.Owners) > 0 {
		fmt.Fprintf(w, "  landed-flip owners: %s\n", rowsLine(a.Owners))
	}
	for i := range a.Flips {
		writeFlip(w, &a.Flips[i])
	}
	if a.FlipsTruncated > 0 {
		fmt.Fprintf(w, "  (+%d flip event(s) beyond the per-attempt detail bound)\n", a.FlipsTruncated)
	}
}

func writeFlip(w io.Writer, f *FlipRecord) {
	fmt.Fprintf(w, "  [t=%.1fs] %s: bit %d of HPA %#x (%s, bank %d row %d)\n",
		f.SimSeconds, f.Verdict, f.Bit, f.HPA, f.Direction, f.Bank, f.Row)
	if len(f.Aggressors) > 0 {
		parts := make([]string, 0, len(f.Aggressors))
		for _, ag := range f.Aggressors {
			parts = append(parts, fmt.Sprintf("bank %d row %d ×%d", ag.Bank, ag.Row, ag.Activations))
		}
		fmt.Fprintf(w, "      aggressors: %s\n", strings.Join(parts, "; "))
	}
	if len(f.Neutralized) > 0 {
		parts := make([]string, 0, len(f.Neutralized))
		for _, ag := range f.Neutralized {
			parts = append(parts, fmt.Sprintf("bank %d row %d", ag.Bank, ag.Row))
		}
		fmt.Fprintf(w, "      TRR-neutralized: %s\n", strings.Join(parts, "; "))
	}
	if f.Threshold > 0 {
		fmt.Fprintf(w, "      disturbance %.0f vs threshold %.0f (rounds %d requested, %d within refresh window)\n",
			f.Disturbance, f.Threshold, f.RoundsRequested, f.RoundsEffective)
	}
	if f.Owner != nil {
		switch f.Owner.Kind {
		case OwnerEPTTable:
			fmt.Fprintf(w, "      owner: EPT table page (level %d) of VM %d — corrupted EPTE redirects that VM's translation\n",
				f.Owner.Level, f.Owner.VM)
		case OwnerIOPTTable:
			fmt.Fprintf(w, "      owner: IOPT table page of VM %d\n", f.Owner.VM)
		case OwnerGuestFrame:
			fmt.Fprintf(w, "      owner: guest frame of VM %d (GPA %#x)\n", f.Owner.VM, f.Owner.GPA)
		case OwnerKernel:
			fmt.Fprintf(w, "      owner: host kernel page\n")
		default:
			fmt.Fprintf(w, "      owner: %s\n", f.Owner.Kind)
		}
	}
}
