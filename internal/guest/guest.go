// Package guest models the attacker-controlled guest: a minimal OS
// runtime inside the VM offering exactly the capabilities the paper's
// attacker has — THP-backed hugepage allocations, ordinary memory
// access, code execution, the (modified) virtio-mem driver, vIOMMU DMA
// mapping, and cache-flush hammer loops.
//
// Everything the attack does goes through this package; it never
// touches host state. The one exception, Hypercall, is the explicit
// debug hypercall the paper adds for its Section 5.3.2 experiment.
package guest

import (
	"errors"
	"fmt"

	"hyperhammer/internal/dram"
	"hyperhammer/internal/ept"
	"hyperhammer/internal/kvm"
	"hyperhammer/internal/ledger"
	"hyperhammer/internal/memdef"
	"hyperhammer/internal/simtime"
	"hyperhammer/internal/virtio"
)

// KernelReserve is the guest physical memory the guest kernel itself
// occupies; the attacker cannot allocate or release it.
const KernelReserve = 64 * memdef.MiB

// Errors surfaced to the attacker runtime.
var (
	// ErrNoMemory reports guest hugepage-pool exhaustion.
	ErrNoMemory = errors.New("guest: out of hugepages")
	// ErrBadAddress reports access through an unmapped guest virtual
	// address.
	ErrBadAddress = errors.New("guest: bad virtual address")
)

// gvaBase is where the guest heap starts; purely cosmetic.
const gvaBase = memdef.GVA(0x7F00_0000_0000)

// OS is the guest operating system runtime.
type OS struct {
	vm  *kvm.VM
	drv *virtio.GuestDriver

	// pt is the guest's real paging structure: 2 MiB THP leaves in
	// table pages that live inside the kernel reserve.
	pt *ept.Table
	// freeChunks is the guest's pool of unallocated 2 MiB physical
	// chunks (LIFO).
	freeChunks []memdef.GPA
	// vmas caches each allocated 2 MiB virtual region's physical
	// chunk (the guest TLB analogue of pt); rmap is the inverse.
	vmas map[memdef.GVA]memdef.GPA
	rmap map[memdef.GPA]memdef.GVA

	nextGVA memdef.GVA

	flipCursor int

	// scanBuf is the reusable hypervisor-level scan buffer behind
	// AppendMappingChanges; overwritten on every scan.
	scanBuf []kvm.MappingChange

	// fill/fillFn are the reusable word supplier behind FillPages and
	// FillPagesSelf — one cached closure reading OS state, so bulk
	// fills allocate nothing per call.
	fill   fillCtx
	fillFn func(k int) uint64

	// gpaScratch/hammerBatch are reusable translation buffers for the
	// hammer submission paths.
	gpaScratch  []memdef.GPA
	hammerBatch []kvm.HammerBatchOp

	// led is the host's "guest.mapping" determinism stream; nil when
	// the host runs without a ledger. Mapping installs and removals
	// fold their (event, gva, gpa) triples here.
	led *ledger.Stream
}

// Ledger event codes for the guest.mapping determinism stream.
const (
	ledGuestMap = uint64(iota + 1)
	ledGuestUnmap
)

// fillCtx parameterizes the cached fill-word supplier: a constant
// word, or (self) each page's own virtual address — the exploit
// step's page-marking pattern.
type fillCtx struct {
	word uint64
	base memdef.GVA
	self bool
}

// Boot initializes the guest OS on a VM: attaches the virtio-mem
// driver and builds the hugepage pool from all plugged memory above
// the kernel reserve.
func Boot(vm *kvm.VM) *OS {
	os := &OS{
		vm:      vm,
		vmas:    make(map[memdef.GVA]memdef.GPA),
		rmap:    make(map[memdef.GPA]memdef.GVA),
		nextGVA: gvaBase,
	}
	os.led = vm.Host().GuestMappingLedger()
	os.drv = virtio.NewGuestDriver(vm.MemDevice())
	os.drv.OnUnplug = func(gpa memdef.GPA, _ uint64) { os.dropChunk(gpa) }
	for _, gpa := range vm.MemDevice().PluggedSubBlocks() {
		if uint64(gpa) < KernelReserve {
			continue
		}
		os.freeChunks = append(os.freeChunks, gpa)
	}
	os.initPageTables()
	return os
}

// VM returns the underlying VM handle for host-side instrumentation in
// experiments; attack code must not use it.
func (os *OS) VM() *kvm.VM { return os.vm }

// Driver returns the guest's virtio-mem driver.
func (os *OS) Driver() *virtio.GuestDriver { return os.drv }

// InstallAttackDriver applies the paper's driver modification that
// suppresses automatic re-plugging (Section 4.2.2), so voluntary
// releases stick.
func (os *OS) InstallAttackDriver() { os.drv.SuppressAutoPlug = true }

// FreeHugepages returns the number of unallocated 2 MiB chunks.
func (os *OS) FreeHugepages() int { return len(os.freeChunks) }

// dropChunk removes a released chunk from the free pool (driver
// unplug callback).
func (os *OS) dropChunk(gpa memdef.GPA) {
	for i, c := range os.freeChunks {
		if c == gpa {
			os.freeChunks = append(os.freeChunks[:i], os.freeChunks[i+1:]...)
			return
		}
	}
}

// AllocHuge allocates n hugepages of virtually contiguous memory with
// THP, returning the base virtual address. The backing guest-physical
// chunks are 2 MiB aligned but not necessarily contiguous — exactly
// the THP guarantee the attack relies on.
func (os *OS) AllocHuge(n int) (memdef.GVA, error) {
	if n <= 0 || n > len(os.freeChunks) {
		return 0, fmt.Errorf("%w: want %d, have %d", ErrNoMemory, n, len(os.freeChunks))
	}
	base := os.nextGVA
	for i := 0; i < n; i++ {
		gpa := os.freeChunks[len(os.freeChunks)-1]
		os.freeChunks = os.freeChunks[:len(os.freeChunks)-1]
		os.mapHuge(base+memdef.GVA(i)*memdef.HugePageSize, gpa)
	}
	os.nextGVA += memdef.GVA(n) * memdef.HugePageSize
	return base, nil
}

// FreeHuge returns n hugepages starting at base to the guest pool.
func (os *OS) FreeHuge(base memdef.GVA, n int) error {
	for i := 0; i < n; i++ {
		gva := base + memdef.GVA(i)*memdef.HugePageSize
		gpa, ok := os.vmas[gva]
		if !ok {
			return fmt.Errorf("%w: %#x", ErrBadAddress, gva)
		}
		os.unmapHuge(gva)
		os.freeChunks = append(os.freeChunks, gpa)
	}
	return nil
}

// GPAOf translates a guest virtual address through the guest's own
// page tables — knowledge the guest legitimately has.
func (os *OS) GPAOf(gva memdef.GVA) (memdef.GPA, error) {
	chunk := memdef.HugeBase(gva)
	gpa, ok := os.vmas[chunk]
	if !ok {
		return 0, fmt.Errorf("%w: %#x", ErrBadAddress, gva)
	}
	return gpa + memdef.GPA(gva-chunk), nil
}

// gvaOfGPA reverse-translates a guest physical address, if mapped.
func (os *OS) gvaOfGPA(gpa memdef.GPA) (memdef.GVA, bool) {
	chunk := memdef.HugeBase(gpa)
	gva, ok := os.rmap[chunk]
	if !ok {
		return 0, false
	}
	return gva + memdef.GVA(gpa-chunk), true
}

// Read64 reads the 64-bit word at an 8-byte-aligned virtual address.
func (os *OS) Read64(gva memdef.GVA) (uint64, error) {
	gpa, err := os.GPAOf(gva)
	if err != nil {
		return 0, err
	}
	return os.vm.ReadGPA64(gpa)
}

// Write64 writes the 64-bit word at an 8-byte-aligned virtual address.
func (os *OS) Write64(gva memdef.GVA, v uint64) error {
	gpa, err := os.GPAOf(gva)
	if err != nil {
		return err
	}
	return os.vm.WriteGPA64(gpa, v)
}

// FillPage fills one 4 KiB page with a repeated word.
func (os *OS) FillPage(gva memdef.GVA, word uint64) error {
	gpa, err := os.GPAOf(gva)
	if err != nil {
		return err
	}
	return os.vm.FillPageGPA(gpa, word)
}

// FillPages fills count consecutive 4 KiB pages starting at the
// page-aligned gva with a repeated word — observationally identical
// to count FillPage calls (same per-page clock charges, errors at the
// same page), with the per-page translation overhead amortized per
// 2 MiB chunk.
func (os *OS) FillPages(gva memdef.GVA, count int, word uint64) error {
	os.fill = fillCtx{word: word}
	return os.fillPages(gva, count)
}

// FillPagesSelf fills each of count pages from gva with the page's own
// virtual address — the exploit step's marking pattern, which lets a
// later read identify which page a remapped translation exposes.
func (os *OS) FillPagesSelf(gva memdef.GVA, count int) error {
	os.fill = fillCtx{self: true}
	return os.fillPages(gva, count)
}

func (os *OS) fillPages(gva memdef.GVA, count int) error {
	if os.fillFn == nil {
		os.fillFn = func(k int) uint64 {
			if os.fill.self {
				return uint64(os.fill.base + memdef.GVA(k)*memdef.PageSize)
			}
			return os.fill.word
		}
	}
	k := 0
	for k < count {
		chunk := memdef.HugeBase(gva)
		n := int((uint64(chunk) + memdef.HugePageSize - uint64(gva)) / memdef.PageSize)
		if n > count-k {
			n = count - k
		}
		gpa, err := os.GPAOf(gva)
		if err != nil {
			return err
		}
		os.fill.base = gva
		if err := os.vm.FillPagesGPA(gpa, n, os.fillFn); err != nil {
			return err
		}
		gva += memdef.GVA(n) * memdef.PageSize
		k += n
	}
	return nil
}

// PageUniform reports whether the page at gva holds a single repeated
// word, and which.
func (os *OS) PageUniform(gva memdef.GVA) (uint64, bool, error) {
	gpa, err := os.GPAOf(gva)
	if err != nil {
		return 0, false, err
	}
	return os.vm.PageUniformGPA(gpa)
}

// Exec executes code previously written at gva (the paper's idling
// function of Listing 1). Under the multihit countermeasure the first
// execution in a hugepage forces the hypervisor to split it. Returns
// whether a split occurred — observable to the guest as a one-off
// execution delay.
func (os *OS) Exec(gva memdef.GVA) (bool, error) {
	gpa, err := os.GPAOf(gva)
	if err != nil {
		return false, err
	}
	return os.vm.ExecGPA(gpa)
}

// Hammer runs the single-sided hammer loop on two virtual addresses
// for the given rounds.
func (os *OS) Hammer(a, b memdef.GVA, rounds int) error {
	gpaA, err := os.GPAOf(a)
	if err != nil {
		return err
	}
	gpaB, err := os.GPAOf(b)
	if err != nil {
		return err
	}
	return os.vm.HammerGPA(gpaA, gpaB, rounds)
}

// HammerMany runs a many-sided hammer loop over an arbitrary
// aggressor set — the TRRespass-style pattern used to overwhelm
// in-DRAM TRR trackers.
func (os *OS) HammerMany(addrs []memdef.GVA, rounds int) error {
	gpas := os.gpaScratch[:0]
	for _, a := range addrs {
		gpa, err := os.GPAOf(a)
		if err != nil {
			return err
		}
		gpas = append(gpas, gpa)
	}
	os.gpaScratch = gpas[:0]
	return os.vm.HammerManyGPA(gpas, rounds)
}

// HammerSpec is one hammer operation for batched submission: an
// aggressor set in guest virtual addresses, each row activated Rounds
// times.
type HammerSpec struct {
	Aggressors []memdef.GVA
	Rounds     int
}

// HammerBatch submits a sequence of hammer operations to the DRAM
// fault model's batched pipeline in one flush. Results are identical
// to issuing the ops through Hammer/HammerMany one at a time, except
// that every op's addresses are checked up front — a bad address
// surfaces before any op runs rather than between ops (see
// kvm.HammerBatchGPA for the full contract, including mid-batch
// crash and translation-divergence handling).
func (os *OS) HammerBatch(specs []HammerSpec) error {
	batch := os.hammerBatch[:0]
	gpas := os.gpaScratch[:0]
	for _, sp := range specs {
		off := len(gpas)
		for _, a := range sp.Aggressors {
			gpa, err := os.GPAOf(a)
			if err != nil {
				return err
			}
			gpas = append(gpas, gpa)
		}
		batch = append(batch, kvm.HammerBatchOp{
			Aggressors: gpas[off:len(gpas):len(gpas)],
			Rounds:     sp.Rounds,
		})
	}
	os.gpaScratch, os.hammerBatch = gpas, batch
	return os.vm.HammerBatchGPA(batch)
}

// HammerScanPairs drives the profile sweep's hammer-then-scan loop:
// each (a, b) pair is hammered for rounds, the guest's memory is
// scanned, and each(i, flips) receives the new flips. The callback
// may hammer again itself (stability retests interleave their own
// operation nonces, which is why this loop cannot fold the pairs into
// one DRAM batch); returning stop=true ends the sweep early.
func (os *OS) HammerScanPairs(pairs [][2]memdef.GVA, rounds int, each func(i int, flips []Flip) (stop bool, err error)) error {
	for i, p := range pairs {
		if err := os.Hammer(p[0], p[1], rounds); err != nil {
			return err
		}
		stop, err := each(i, os.ScanForFlips())
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// TriggerMultihitDoS attempts the iTLB Multihit denial of service
// against the host from code at gva (Section 4.2.3's erratum). It
// succeeds — crashing the host — only when the CPU is affected and the
// hypervisor runs without the NX-hugepage countermeasure.
func (os *OS) TriggerMultihitDoS(gva memdef.GVA) (bool, error) {
	gpa, err := os.GPAOf(gva)
	if err != nil {
		return false, err
	}
	return os.vm.TriggerMultihitDoS(gpa)
}

// ReleaseHugepage voluntarily unplugs the hugepage containing gva via
// the modified virtio-mem driver. The virtual mapping disappears; the
// physical chunk goes back to the host and never returns to the guest
// pool (auto re-plug is suppressed).
func (os *OS) ReleaseHugepage(gva memdef.GVA) error {
	chunk := memdef.HugeBase(gva)
	gpa, ok := os.vmas[chunk]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrBadAddress, gva)
	}
	if err := os.drv.UnplugSubBlock(gpa); err != nil {
		return err
	}
	os.unmapHuge(chunk)
	return nil
}

// InflateBalloonPage hands the single 4 KiB page at gva to the host
// through the virtio-balloon device — the per-page release granularity
// that distinguishes the Section 6 balloon variant from virtio-mem's
// 2 MiB sub-blocks. The page's virtual mapping keeps existing but
// faults until deflated.
func (os *OS) InflateBalloonPage(gva memdef.GVA) error {
	gpa, err := os.GPAOf(gva)
	if err != nil {
		return err
	}
	dev := os.vm.Balloon()
	if dev == nil {
		return fmt.Errorf("guest: no balloon device attached")
	}
	return dev.Inflate(gpa)
}

// DeflateBalloonPage takes the page at gva back from the balloon.
func (os *OS) DeflateBalloonPage(gva memdef.GVA) error {
	gpa, err := os.GPAOf(gva)
	if err != nil {
		return err
	}
	dev := os.vm.Balloon()
	if dev == nil {
		return fmt.Errorf("guest: no balloon device attached")
	}
	return dev.Deflate(gpa)
}

// DrainNetBuffers floods the guest's NIC receive queues, consuming
// host unmovable pages (the virtio-net-pci step of the Section 6
// balloon analysis). Returns the pages consumed.
func (os *OS) DrainNetBuffers(maxPages int) int {
	return os.vm.DrainNetBuffers(maxPages)
}

// Groups returns the number of assigned IOMMU groups.
func (os *OS) Groups() int { return os.vm.IOMMUGroups() }

// MapDMA creates a vIOMMU mapping from iova to the guest page at gva.
func (os *OS) MapDMA(group int, iova memdef.IOVA, gva memdef.GVA) error {
	gpa, err := os.GPAOf(gva)
	if err != nil {
		return err
	}
	return os.vm.MapDMA(group, iova, gpa)
}

// Hypercall translates a guest virtual address to a host physical
// address via the paper's added debug hypercall. Experiment-only.
func (os *OS) Hypercall(gva memdef.GVA) (memdef.HPA, error) {
	gpa, err := os.GPAOf(gva)
	if err != nil {
		return 0, err
	}
	return os.vm.HypercallGPAToHPA(gpa)
}

// Flip is a bit flip the guest found by scanning its own memory.
type Flip struct {
	// GVA is the virtual address of the byte containing the flipped
	// bit.
	GVA memdef.GVA
	// Bit is the bit index within the byte.
	Bit uint
	// Direction is the observed direction.
	Direction dram.FlipDirection
}

// EPTEBit returns the bit position within the 8-byte-aligned group
// containing the flip — where it would land in a page-table entry
// (the exploitability filter of Section 4.1).
func (f Flip) EPTEBit() uint { return uint(f.GVA&7)*8 + f.Bit }

// HugepageBase returns the 2 MiB-aligned virtual base of the flip's
// hugepage.
func (f Flip) HugepageBase() memdef.GVA { return memdef.HugeBase(f.GVA) }

// ScanForFlips scans all of the guest's allocated memory for bits that
// changed since the previous scan, charging full scan time. It is
// observationally equivalent to re-reading every allocated page and
// comparing against the fill pattern; see DESIGN.md §3 for why the
// implementation consumes the host flip log instead of iterating
// millions of simulated pages.
func (os *OS) ScanForFlips() []Flip {
	os.chargeFullScan()
	raw, cursor := os.vm.ContentFlipsSince(os.flipCursor)
	os.flipCursor = cursor
	var out []Flip
	for _, f := range raw {
		gva, ok := os.gvaOfGPA(f.GPA)
		if !ok {
			continue // flip landed outside the guest's mapped memory
		}
		out = append(out, Flip{GVA: gva, Bit: f.Bit, Direction: f.Direction})
	}
	return out
}

// MappingChange is a page whose contents no longer match what the
// guest wrote — the magic-value mismatch of Section 4.3.
type MappingChange struct {
	// GVA is the 4 KiB page whose translation changed.
	GVA memdef.GVA
	// Faulted means the page no longer translates at all.
	Faulted bool
}

// ScanForMappingChanges scans all allocated memory for pages whose
// magic value is wrong or unreadable, charging full scan time.
// Observationally equivalent to reading the first word of every
// marked page.
func (os *OS) ScanForMappingChanges() []MappingChange {
	return os.AppendMappingChanges(nil)
}

// AppendMappingChanges is ScanForMappingChanges appending into a
// caller-provided buffer, the allocation-free form for repeated scans
// (the exploit step rescans after every probe). The hypervisor-level
// scan buffer is owned by this OS and overwritten on every call.
func (os *OS) AppendMappingChanges(out []MappingChange) []MappingChange {
	os.chargeFullScan()
	os.scanBuf = os.vm.AppendChangedMappings(os.scanBuf[:0])
	for _, c := range os.scanBuf {
		gva, ok := os.gvaOfGPA(c.GPA)
		if !ok {
			continue
		}
		out = append(out, MappingChange{GVA: gva, Faulted: c.Faulted})
	}
	return out
}

// chargeFullScan advances the virtual clock by the cost of touching
// every allocated page once.
func (os *OS) chargeFullScan() {
	pages := int64(len(os.vmas)) * memdef.PagesPerHuge
	os.vm.Host().Clock.Charge(pages, simtime.PageScan)
}

// Clock exposes the virtual clock (the guest can read time).
func (os *OS) Clock() *simtime.Clock { return os.vm.Host().Clock }
