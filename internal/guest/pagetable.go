package guest

import (
	"fmt"

	"hyperhammer/internal/ept"
	"hyperhammer/internal/kvm"
	"hyperhammer/internal/memdef"
)

// This file gives the guest real page tables: the GVA-to-GPA mapping
// is a 4-level structure whose table pages live in the guest's own
// physical memory (inside the kernel reserve) and are read and written
// through ordinary guest memory accesses. THP-backed allocations are
// 2 MiB leaf entries, exactly the structure a Linux guest with THP
// builds — and the reason the low 21 virtual address bits survive to
// guest physical addresses.

// guestMemory adapts the VM's guest-physical address space to the
// ept.Memory interface so the generic table walker can operate on
// guest page tables. Addresses are GPAs; "frames" are guest frames.
//
// Guest page tables live in the kernel reserve, which is always
// plugged, so accesses cannot fault; a fault here is the guest kernel
// dereferencing its own corrupted state, which panics the (simulated)
// guest kernel just like the real one.
type guestMemory struct {
	vm *kvm.VM
}

func (g guestMemory) Word(a memdef.HPA) uint64 {
	v, err := g.vm.ReadGPA64(memdef.GPA(a))
	if err != nil {
		panic(fmt.Sprintf("guest: kernel page-table read at gpa %#x: %v", a, err))
	}
	return v
}

func (g guestMemory) SetWord(a memdef.HPA, v uint64) {
	if err := g.vm.WriteGPA64(memdef.GPA(a), v); err != nil {
		panic(fmt.Sprintf("guest: kernel page-table write at gpa %#x: %v", a, err))
	}
}

func (g guestMemory) ZeroPage(p memdef.PFN) {
	if err := g.vm.FillPageGPA(memdef.GPA(p)<<memdef.PageShift, 0); err != nil {
		panic(fmt.Sprintf("guest: zeroing kernel page %d: %v", p, err))
	}
}

func (g guestMemory) PageWord(p memdef.PFN, idx int) uint64 {
	return g.Word(memdef.HPA(p)<<memdef.PageShift + memdef.HPA(idx*8))
}

func (g guestMemory) SetPageWord(p memdef.PFN, idx int, v uint64) {
	g.SetWord(memdef.HPA(p)<<memdef.PageShift+memdef.HPA(idx*8), v)
}

func (g guestMemory) Frames() int {
	return int(g.vm.Config().MemSize / memdef.PageSize)
}

// kernelPageAlloc hands out 4 KiB guest frames from the kernel
// reserve for page-table pages, the way a kernel feeds its own paging
// structures from its low-memory allocator.
type kernelPageAlloc struct {
	next memdef.GPA
	end  memdef.GPA
	free []memdef.PFN
}

func newKernelPageAlloc() *kernelPageAlloc {
	return &kernelPageAlloc{
		// The first pages of the reserve stand in for the kernel
		// image; paging structures start above them.
		next: 4 * memdef.MiB,
		end:  KernelReserve,
	}
}

func (a *kernelPageAlloc) AllocTable() (memdef.PFN, error) {
	if n := len(a.free); n > 0 {
		p := a.free[n-1]
		a.free = a.free[:n-1]
		return p, nil
	}
	if a.next >= a.end {
		return 0, fmt.Errorf("guest: kernel reserve exhausted by page tables")
	}
	p := memdef.PFN(a.next >> memdef.PageShift)
	a.next += memdef.PageSize
	return p, nil
}

func (a *kernelPageAlloc) FreeTable(p memdef.PFN) { a.free = append(a.free, p) }

// initPageTables builds the guest's root paging structure.
func (os *OS) initPageTables() {
	pt, err := ept.New(guestMemory{os.vm}, newKernelPageAlloc())
	if err != nil {
		panic(fmt.Sprintf("guest: building page tables: %v", err))
	}
	os.pt = pt
}

// mapHuge installs a 2 MiB THP leaf gva -> gpa in the guest's page
// tables and the OS's translation cache.
func (os *OS) mapHuge(gva memdef.GVA, gpa memdef.GPA) {
	if err := os.pt.Map2M(uint64(gva), memdef.PFN(gpa>>memdef.PageShift), ept.PermRWX); err != nil {
		panic(fmt.Sprintf("guest: mapping %#x -> %#x: %v", gva, gpa, err))
	}
	os.vmas[gva] = gpa
	os.rmap[gpa] = gva
	os.led.Fold3(ledGuestMap, uint64(gva), uint64(gpa))
}

// unmapHuge removes a 2 MiB mapping from the tables and caches.
func (os *OS) unmapHuge(gva memdef.GVA) {
	if _, err := os.pt.Unmap(uint64(gva)); err != nil {
		panic(fmt.Sprintf("guest: unmapping %#x: %v", gva, err))
	}
	gpa := os.vmas[gva]
	delete(os.vmas, gva)
	delete(os.rmap, gpa)
	os.led.Fold3(ledGuestUnmap, uint64(gva), uint64(gpa))
}

// walkGVA translates through the real page tables, bypassing the
// cache. Exposed for consistency checking; GPAOf uses the cache (the
// guest's own TLB analogue) on the hot path.
func (os *OS) walkGVA(gva memdef.GVA) (memdef.GPA, error) {
	tr, err := os.pt.Translate(uint64(gva))
	if err != nil {
		return 0, fmt.Errorf("%w: %#x", ErrBadAddress, gva)
	}
	return memdef.GPA(tr.HPA), nil
}

// PageTablePages returns how many guest frames the guest's own paging
// structures occupy.
func (os *OS) PageTablePages() int { return os.pt.NumTables() }
