package guest

import (
	"errors"
	"testing"

	"hyperhammer/internal/dram"
	"hyperhammer/internal/kvm"
	"hyperhammer/internal/memdef"
)

func testGeometry() *dram.Geometry {
	return dram.MustGeometry(dram.Geometry{
		Name: "test-256M",
		Size: 256 * memdef.MiB,
		BankMasks: []uint64{
			1<<17 | 1<<21,
			1<<16 | 1<<20,
			1<<15 | 1<<19,
			1<<14 | 1<<18,
			1<<6 | 1<<13,
		},
		RowShift: 18,
		RowBits:  10,
	})
}

func bootTestGuest(t *testing.T, vmSize uint64, fault *dram.FaultModelConfig) *OS {
	t.Helper()
	cfg := kvm.Config{
		Geometry:       testGeometry(),
		Fault:          dram.S1FaultModel(5),
		THP:            true,
		NXHugepages:    true,
		BootNoisePages: 300,
		Seed:           5,
	}
	if fault != nil {
		cfg.Fault = *fault
	}
	h, err := kvm.NewHost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := h.CreateVM(kvm.VMConfig{MemSize: vmSize, VFIOGroups: 1})
	if err != nil {
		t.Fatal(err)
	}
	return Boot(vm)
}

func TestBootPoolExcludesKernelReserve(t *testing.T) {
	os := bootTestGuest(t, 128*memdef.MiB, nil)
	want := int((128*memdef.MiB - KernelReserve) / memdef.HugePageSize)
	if got := os.FreeHugepages(); got != want {
		t.Errorf("FreeHugepages = %d, want %d", got, want)
	}
}

func TestAllocReadWriteFree(t *testing.T) {
	os := bootTestGuest(t, 128*memdef.MiB, nil)
	base, err := os.AllocHuge(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Write64(base+0x1000, 99); err != nil {
		t.Fatal(err)
	}
	if v, _ := os.Read64(base + 0x1000); v != 99 {
		t.Errorf("read back %d", v)
	}
	// Addresses outside the allocation fault in the guest.
	if _, err := os.Read64(base + 4*memdef.HugePageSize); !errors.Is(err, ErrBadAddress) {
		t.Errorf("OOB read: %v", err)
	}
	free := os.FreeHugepages()
	if err := os.FreeHuge(base, 4); err != nil {
		t.Fatal(err)
	}
	if os.FreeHugepages() != free+4 {
		t.Error("FreeHuge did not return chunks")
	}
	if _, err := os.Read64(base); !errors.Is(err, ErrBadAddress) {
		t.Errorf("read after free: %v", err)
	}
}

func TestAllocExhaustion(t *testing.T) {
	os := bootTestGuest(t, 72*memdef.MiB, nil)
	if _, err := os.AllocHuge(os.FreeHugepages() + 1); !errors.Is(err, ErrNoMemory) {
		t.Errorf("over-alloc: %v", err)
	}
	if _, err := os.AllocHuge(0); err == nil {
		t.Error("zero alloc accepted")
	}
}

// THP end to end: the low 21 bits of a guest virtual address survive
// into the host physical address.
func TestTHPLow21BitsGVAToHPA(t *testing.T) {
	os := bootTestGuest(t, 128*memdef.MiB, nil)
	base, err := os.AllocHuge(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []memdef.GVA{0, 0x1FF008, 3*memdef.HugePageSize + 0xABCD8} {
		gva := base + off
		hpa, err := os.Hypercall(gva)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(hpa)&(memdef.HugePageSize-1) != uint64(gva)&(memdef.HugePageSize-1) {
			t.Errorf("gva %#x -> hpa %#x: low bits differ", gva, hpa)
		}
	}
}

func TestFillAndPageUniform(t *testing.T) {
	os := bootTestGuest(t, 96*memdef.MiB, nil)
	base, _ := os.AllocHuge(1)
	if err := os.FillPage(base+0x3000, 0xAA55); err != nil {
		t.Fatal(err)
	}
	w, uniform, err := os.PageUniform(base + 0x3000)
	if err != nil || !uniform || w != 0xAA55 {
		t.Errorf("PageUniform = %#x,%v,%v", w, uniform, err)
	}
	if err := os.Write64(base+0x3008, 1); err != nil {
		t.Fatal(err)
	}
	if _, uniform, _ := os.PageUniform(base + 0x3000); uniform {
		t.Error("page still uniform after divergent write")
	}
}

func TestExecSplitsOnce(t *testing.T) {
	os := bootTestGuest(t, 96*memdef.MiB, nil)
	base, _ := os.AllocHuge(2)
	split, err := os.Exec(base)
	if err != nil || !split {
		t.Fatalf("first exec: %v %v", split, err)
	}
	split, err = os.Exec(base + 0x10000)
	if err != nil || split {
		t.Errorf("second exec: %v %v", split, err)
	}
	split, err = os.Exec(base + memdef.HugePageSize)
	if err != nil || !split {
		t.Errorf("exec in second hugepage: %v %v", split, err)
	}
}

func TestReleaseHugepage(t *testing.T) {
	os := bootTestGuest(t, 96*memdef.MiB, nil)
	os.InstallAttackDriver()
	base, _ := os.AllocHuge(3)
	victim := base + memdef.HugePageSize
	free := os.FreeHugepages()
	if err := os.ReleaseHugepage(victim + 0x555); err != nil {
		t.Fatal(err)
	}
	if os.FreeHugepages() != free {
		t.Error("released chunk returned to guest pool")
	}
	if _, err := os.Read64(victim); !errors.Is(err, ErrBadAddress) {
		t.Errorf("read of released page: %v", err)
	}
	// Neighbors still work.
	if _, err := os.Read64(base); err != nil {
		t.Errorf("neighbor read: %v", err)
	}
	if got := len(os.VM().Host().ReleasedBlockLog()); got != 1 {
		t.Errorf("host released log = %d", got)
	}
}

func TestMapDMA(t *testing.T) {
	os := bootTestGuest(t, 96*memdef.MiB, nil)
	base, _ := os.AllocHuge(1)
	if os.Groups() != 1 {
		t.Fatalf("Groups = %d", os.Groups())
	}
	for i := 0; i < 10; i++ {
		iova := memdef.IOVA(0x1_0000_0000 + uint64(i)*memdef.HugePageSize)
		if err := os.MapDMA(0, iova, base); err != nil {
			t.Fatal(err)
		}
	}
	if got := os.VM().GroupMappings(0); got != 10 {
		t.Errorf("mappings = %d", got)
	}
}

// ScanForFlips must agree with a brute-force read of every allocated
// page — the observational-equivalence contract of DESIGN.md §3.
func TestScanForFlipsMatchesBruteForce(t *testing.T) {
	fault := &dram.FaultModelConfig{
		Seed: 11, CellsPerRow: 1.2,
		ThresholdMin: 50_000, ThresholdMax: 100_000,
		StableFraction: 1.0, FlakyP: 1.0,
		NeighborWeight1: 1.0, NeighborWeight2: 0.25,
	}
	os := bootTestGuest(t, 128*memdef.MiB, fault)
	n := os.FreeHugepages()
	base, err := os.AllocHuge(n)
	if err != nil {
		t.Fatal(err)
	}
	const pattern = ^uint64(0) // all ones: 1->0 flips all observable
	for i := 0; i < n*memdef.PagesPerHuge; i++ {
		if err := os.FillPage(base+memdef.GVA(i*memdef.PageSize), pattern); err != nil {
			t.Fatal(err)
		}
	}
	// Pick aggressors in consecutive row-spans of the same bank, as
	// the attack does. Bank classes within a hugepage depend only on
	// the low 21 bits, so the offsets work for every hugepage.
	geo := testGeometry()
	rowSpan := uint64(256 * memdef.KiB)
	offA := 6 * rowSpan
	offB := 7 * rowSpan
	for ; offB < 8*rowSpan; offB += 64 {
		if geo.Bank(memdef.HPA(offA)) == geo.Bank(memdef.HPA(offB)) {
			break
		}
	}
	var flips []Flip
	for hp := 0; hp < n && len(flips) == 0; hp++ {
		a := base + memdef.GVA(uint64(hp)*memdef.HugePageSize+offA)
		b := base + memdef.GVA(uint64(hp)*memdef.HugePageSize+offB)
		if err := os.Hammer(a, b, 250_000); err != nil {
			t.Fatal(err)
		}
		flips = os.ScanForFlips()
	}
	if len(flips) == 0 {
		t.Fatal("no flips found")
	}
	// Brute force: walk every allocated page and diff against the
	// pattern, collecting flip positions.
	var brute []Flip
	for i := 0; i < n*memdef.PagesPerHuge; i++ {
		pageGVA := base + memdef.GVA(i*memdef.PageSize)
		w, uniform, err := os.PageUniform(pageGVA)
		if err != nil {
			t.Fatal(err)
		}
		if uniform && w == pattern {
			continue
		}
		for off := memdef.GVA(0); off < memdef.PageSize; off += 8 {
			v, err := os.Read64(pageGVA + off)
			if err != nil {
				t.Fatal(err)
			}
			for bit := uint(0); bit < 64; bit++ {
				if (v>>bit)&1 != (pattern>>bit)&1 {
					dir := dram.FlipOneToZero
					if pattern>>bit&1 == 0 {
						dir = dram.FlipZeroToOne
					}
					brute = append(brute, Flip{
						GVA:       pageGVA + off + memdef.GVA(bit/8),
						Bit:       bit % 8,
						Direction: dir,
					})
				}
			}
		}
	}
	if len(brute) != len(flips) {
		t.Fatalf("scan found %d flips, brute force %d", len(flips), len(brute))
	}
	found := map[Flip]bool{}
	for _, f := range flips {
		found[f] = true
	}
	for _, b := range brute {
		if !found[b] {
			t.Errorf("brute-force flip %+v missing from scan", b)
		}
	}
	// A second scan reports nothing new.
	if again := os.ScanForFlips(); len(again) != 0 {
		t.Errorf("re-scan found %d flips", len(again))
	}
}

func TestScanForMappingChangesCleanVM(t *testing.T) {
	os := bootTestGuest(t, 96*memdef.MiB, nil)
	if _, err := os.AllocHuge(4); err != nil {
		t.Fatal(err)
	}
	if got := os.ScanForMappingChanges(); len(got) != 0 {
		t.Errorf("clean VM reports %d mapping changes", len(got))
	}
	before := os.Clock().Now()
	os.ScanForMappingChanges()
	if os.Clock().Now() == before {
		t.Error("scan charged no time")
	}
}

func TestFlipHelpers(t *testing.T) {
	f := Flip{GVA: 0x7F00_0000_1003, Bit: 5}
	if got := f.EPTEBit(); got != 3*8+5 {
		t.Errorf("EPTEBit = %d", got)
	}
	if got := f.HugepageBase(); got != 0x7F00_0000_0000 {
		t.Errorf("HugepageBase = %#x", got)
	}
}

// The guest's real page tables must agree with the cached translations
// at all times, live in the kernel reserve, and shrink/grow with the
// address space.
func TestPageTablesConsistentWithCache(t *testing.T) {
	os := bootTestGuest(t, 128*memdef.MiB, nil)
	if got := os.PageTablePages(); got != 1 {
		t.Fatalf("fresh guest has %d table pages, want 1 (root)", got)
	}
	base, err := os.AllocHuge(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		gva := base + memdef.GVA(i)*memdef.HugePageSize + 0x12340
		cached, err := os.GPAOf(gva)
		if err != nil {
			t.Fatal(err)
		}
		walked, err := os.walkGVA(gva)
		if err != nil {
			t.Fatal(err)
		}
		if cached != walked {
			t.Fatalf("cache %#x != walk %#x at %#x", cached, walked, gva)
		}
	}
	// Table pages occupy the kernel reserve.
	if got := os.PageTablePages(); got < 3 {
		t.Errorf("table pages = %d after mapping, want >= 3", got)
	}
	// After release, the walk faults like the cache does.
	os.InstallAttackDriver()
	victim := base + 2*memdef.HugePageSize
	if err := os.ReleaseHugepage(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := os.walkGVA(victim); err == nil {
		t.Error("page-table walk still translates a released hugepage")
	}
	if _, err := os.GPAOf(victim); err == nil {
		t.Error("cache still translates a released hugepage")
	}
	// FreeHuge unmaps too.
	if err := os.FreeHuge(base, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.walkGVA(base); err == nil {
		t.Error("walk translates a freed region")
	}
}

// The guest's page-table pages are real guest memory: their contents
// are EPT-translated words in the kernel reserve that a host-side
// inspection can see.
func TestPageTablesLiveInGuestMemory(t *testing.T) {
	os := bootTestGuest(t, 128*memdef.MiB, nil)
	base, err := os.AllocHuge(1)
	if err != nil {
		t.Fatal(err)
	}
	gpa, err := os.GPAOf(base)
	if err != nil {
		t.Fatal(err)
	}
	// Scan the kernel reserve for a guest PD entry naming this chunk:
	// a 2 MiB-leaf entry whose PFN is the chunk's GFN.
	found := false
	for off := memdef.GPA(4 * memdef.MiB); off < KernelReserve && !found; off += 8 {
		w, err := os.VM().ReadGPA64(off)
		if err != nil || w == 0 {
			continue
		}
		if w&(1<<7) != 0 && memdef.PFN(w>>12&0xFFFFFFFFF) == memdef.PFN(gpa>>12) {
			found = true
		}
	}
	if !found {
		t.Error("no guest page-table entry for the allocation found in the kernel reserve")
	}
}
