package profile

import (
	"encoding/json"
	"strings"
	"testing"

	"hyperhammer/internal/sched"
)

// synthSchedule builds a hand-crafted 3-unit schedule on 2 workers:
//
//	u0: run 0.00→0.10 on w0, deliver 0.10→0.11
//	u1: run 0.00→0.40 on w1, deliver 0.40→0.42  (the long pole)
//	u2: run 0.10→0.20 on w0, deliver 0.42→0.43  (held 0.22s)
func synthSchedule() *sched.Schedule {
	return &sched.Schedule{
		Workers:     2,
		WallSeconds: 0.43,
		CPUSeconds:  0.60,
		Units: []sched.UnitTiming{
			{Index: 0, Name: "u0", Worker: 0, StartSeconds: 0, EndSeconds: 0.10,
				DeliverStartSeconds: 0.10, DeliverEndSeconds: 0.11, Started: true, Delivered: true},
			{Index: 1, Name: "u1", Worker: 1, StartSeconds: 0, EndSeconds: 0.40,
				DeliverStartSeconds: 0.40, DeliverEndSeconds: 0.42, Started: true, Delivered: true},
			{Index: 2, Name: "u2", Worker: 0, StartSeconds: 0.10, EndSeconds: 0.20,
				DeliverStartSeconds: 0.42, DeliverEndSeconds: 0.43, Started: true, Delivered: true},
		},
	}
}

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("%s = %v, want %v", name, got, want)
	}
}

// TestBuildPlanReportMath checks the critical-path model on a
// hand-checkable schedule.
func TestBuildPlanReportMath(t *testing.T) {
	r := BuildPlanReport(synthSchedule())
	// Sequential estimate: (0.10+0.01) + (0.40+0.02) + (0.10+0.01).
	approx(t, "SequentialSeconds", r.SequentialSeconds, 0.64)
	// Chains: u0 = 0.10 + (0.01+0.02+0.01); u1 = 0.40 + (0.02+0.01);
	// u2 = 0.10 + 0.01. u1 is critical.
	approx(t, "u0 chain", r.Units[0].ChainSeconds, 0.14)
	approx(t, "u1 chain", r.Units[1].ChainSeconds, 0.43)
	approx(t, "u2 chain", r.Units[2].ChainSeconds, 0.11)
	approx(t, "CriticalPathSeconds", r.CriticalPathSeconds, 0.43)
	if !r.Units[1].Critical || r.Units[0].Critical || r.Units[2].Critical {
		t.Fatalf("critical flags wrong: %+v", r.Units)
	}
	// Critical path: u1's run, then the deliveries it gates (u1, u2).
	if want := []string{"u1", "u2"}; len(r.CriticalPath) != 2 ||
		r.CriticalPath[0] != want[0] || r.CriticalPath[1] != want[1] {
		t.Fatalf("CriticalPath = %v, want %v", r.CriticalPath, want)
	}
	approx(t, "u0 slack", r.Units[0].SlackSeconds, 0.43-0.14)
	approx(t, "u1 slack", r.Units[1].SlackSeconds, 0)
	approx(t, "MaxSpeedup", r.MaxSpeedup, 0.64/0.43)
	approx(t, "ActualSpeedup", r.ActualSpeedup, 0.64/0.43)
	approx(t, "Efficiency", r.Efficiency, 0.64/0.43/2)
	approx(t, "BusySeconds", r.BusySeconds, 0.60)
	approx(t, "DeliverSeconds", r.DeliverSeconds, 0.04)
	approx(t, "u2 hold", r.Units[2].DeliverHoldSeconds, 0.22)
	if len(r.WorkerBusySeconds) != 2 {
		t.Fatalf("WorkerBusySeconds = %v", r.WorkerBusySeconds)
	}
	approx(t, "w0 busy", r.WorkerBusySeconds[0], 0.20)
	approx(t, "w1 busy", r.WorkerBusySeconds[1], 0.40)
}

// TestEmptyPlanReportJSON: slices marshal as [], never null — the obs
// endpoint serves this shape before any batch runs.
func TestEmptyPlanReportJSON(t *testing.T) {
	for _, r := range []*PlanReport{EmptyPlanReport(), BuildPlanReport(nil)} {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(b), "null") {
			t.Fatalf("empty report marshals null: %s", b)
		}
		if r.Version != PlanVersion {
			t.Fatalf("Version = %d", r.Version)
		}
	}
}

// TestRenderPlan: the single renderer emits every section and flags
// the critical unit.
func TestRenderPlan(t *testing.T) {
	var sb strings.Builder
	if err := RenderPlan(&sb, BuildPlanReport(synthSchedule()), 40); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"plan: 3 units on 2 workers",
		"gantt",
		"workers:",
		"top slack",
		"critical path: u1 → u2",
		"* u1",
		"efficiency",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
}

// TestRenderPlanEmpty: rendering an empty or nil report is safe.
func TestRenderPlanEmpty(t *testing.T) {
	var sb strings.Builder
	if err := RenderPlan(&sb, nil, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0 units") {
		t.Fatalf("empty render:\n%s", sb.String())
	}
}

// TestBuildPlanReportFailedBatch: unstarted units get zero chains and
// don't crash the analysis.
func TestBuildPlanReportFailedBatch(t *testing.T) {
	sc := &sched.Schedule{
		Workers:     1,
		WallSeconds: 0.05,
		Units: []sched.UnitTiming{
			{Index: 0, Name: "ok", Worker: 0, StartSeconds: 0, EndSeconds: 0.05,
				DeliverStartSeconds: 0.05, DeliverEndSeconds: 0.05, Started: true, Delivered: true},
			{Index: 1, Name: "never-ran", Worker: -1},
		},
	}
	r := BuildPlanReport(sc)
	if len(r.Units) != 2 || r.Units[1].Started || r.Units[1].RunSeconds != 0 {
		t.Fatalf("failed-batch report: %+v", r.Units)
	}
	if len(r.CriticalPath) == 0 {
		t.Fatal("critical path empty even though a unit ran")
	}
}
