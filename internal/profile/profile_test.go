package profile

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"
	"time"

	"hyperhammer/internal/metrics"
	"hyperhammer/internal/simtime"
	"hyperhammer/internal/trace"
)

// rig wires a recorder, clock, and registry to a live builder, the way
// the CLIs do.
func rig(t *testing.T) (*trace.Recorder, *simtime.Clock, *metrics.Registry, *Builder) {
	t.Helper()
	clock := &simtime.Clock{}
	reg := metrics.New()
	reg.BindClock(clock)
	rec := trace.New(nil, 0)
	rec.BindClock(clock)
	b := NewBuilder(reg)
	rec.SetNamedSink("profile", b.Consume)
	return rec, clock, reg, b
}

func TestBuilderFoldsNestedSpans(t *testing.T) {
	rec, clock, reg, b := rig(t)
	acts := reg.Counter("dram_activations_total", "")

	campaign := rec.StartSpan("campaign")
	clock.Advance(10 * time.Second) // campaign self
	attempt := campaign.StartChild("attempt")
	clock.Advance(5 * time.Second) // attempt self
	steer := attempt.StartChild("steer")
	acts.Add(1000)
	clock.Advance(30 * time.Second)
	steer.End()
	acts.Add(50) // attempt self activations
	clock.Advance(5 * time.Second)
	attempt.End()
	campaign.End()

	p := b.Snapshot()
	if p.OpenSpans != 0 {
		t.Errorf("open spans = %d", p.OpenSpans)
	}
	wantPaths := []string{"campaign", "campaign;attempt", "campaign;attempt;steer"}
	if len(p.Entries) != len(wantPaths) {
		t.Fatalf("entries = %+v", p.Entries)
	}
	for i, want := range wantPaths {
		if p.Entries[i].Path != want {
			t.Errorf("entry %d path = %q, want %q", i, p.Entries[i].Path, want)
		}
	}
	check := func(path string, incl, self float64, inclActs, selfActs int64) {
		t.Helper()
		e, ok := p.Lookup(path)
		if !ok {
			t.Fatalf("no entry at %q", path)
		}
		if e.SimSeconds != incl || e.SelfSimSeconds != self {
			t.Errorf("%s: sim = %v/%v, want %v/%v", path, e.SimSeconds, e.SelfSimSeconds, incl, self)
		}
		if e.Activations != inclActs || e.SelfActivations != selfActs {
			t.Errorf("%s: acts = %d/%d, want %d/%d", path, e.Activations, e.SelfActivations, inclActs, selfActs)
		}
	}
	check("campaign", 50, 10, 1050, 0)
	check("campaign;attempt", 40, 10, 1050, 50)
	check("campaign;attempt;steer", 30, 30, 1000, 1000)

	if got := p.TotalSimSeconds(); got != 50 {
		t.Errorf("TotalSimSeconds = %v", got)
	}
	if got := p.TotalActivations(); got != 1050 {
		t.Errorf("TotalActivations = %v", got)
	}
}

func TestBuilderAggregatesSiblingSpans(t *testing.T) {
	rec, clock, _, b := rig(t)
	root := rec.StartSpan("campaign")
	for i := 0; i < 3; i++ {
		a := root.StartChild("attempt")
		clock.Advance(time.Minute)
		a.End()
	}
	root.End()
	p := b.Snapshot()
	e, ok := p.Lookup("campaign;attempt")
	if !ok || e.Count != 3 || e.SimSeconds != 180 {
		t.Errorf("aggregated attempt entry = %+v (ok=%v)", e, ok)
	}
}

func TestBuilderSubsystemCensus(t *testing.T) {
	rec, _, _, b := rig(t)
	rec.Emit("virtio.unplug", "gpa", 1)
	rec.Emit("virtio.plug", "gpa", 2)
	rec.Emit("ept.split")
	p := b.Snapshot()
	got := map[string]int64{}
	for _, s := range p.Subsystems {
		got[s.Name] = s.Events
	}
	if got["virtio"] != 2 || got["ept"] != 1 {
		t.Errorf("subsystems = %+v", p.Subsystems)
	}
}

func TestFromTraceMatchesLiveFolding(t *testing.T) {
	var buf bytes.Buffer
	clock := &simtime.Clock{}
	rec := trace.New(&buf, 0)
	rec.BindClock(clock)
	b := NewBuilder(nil)
	rec.SetNamedSink("profile", b.Consume)

	root := rec.StartSpan("campaign")
	child := root.StartChild("steer")
	clock.Advance(90 * time.Second)
	child.End()
	root.End()

	offline, err := FromTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	live := b.Snapshot()
	if offline.Folded() != live.Folded() {
		t.Errorf("offline folding diverges:\nlive:\n%s\noffline:\n%s", live.Folded(), offline.Folded())
	}
	if _, ok := offline.Lookup("campaign;steer"); !ok {
		t.Errorf("offline entries = %+v", offline.Entries)
	}
}

func TestFoldedDeterministicAcrossIdenticalRuns(t *testing.T) {
	run := func() string {
		rec, clock, reg, b := rig(t)
		acts := reg.Counter("dram_activations_total", "")
		root := rec.StartSpan("campaign")
		for i := 0; i < 5; i++ {
			a := root.StartChild("attempt")
			s := a.StartChild("steer")
			acts.Add(uint64(100 * (i + 1)))
			clock.Advance(time.Duration(i+1) * time.Second)
			s.End()
			a.End()
		}
		root.End()
		return b.Snapshot().Folded()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("folded output not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestBuilderToleratesUnmatchedAndNil(t *testing.T) {
	var b *Builder
	b.Consume(trace.Event{Kind: "span.end"}) // nil receiver no-ops
	if p := b.Snapshot(); len(p.Entries) != 0 {
		t.Errorf("nil builder snapshot = %+v", p)
	}
	live := NewBuilder(nil)
	live.Consume(trace.Event{Kind: "span.end", Data: map[string]any{"span": uint64(7)}})
	p := live.Snapshot()
	if p.UnmatchedEnds != 1 {
		t.Errorf("unmatched ends = %d", p.UnmatchedEnds)
	}
}

// TestWritePprofDecodes hand-decodes the gzipped protobuf and checks
// the pieces a pprof reader needs: four sample types, one sample per
// entry, and every span name in the string table.
func TestWritePprofDecodes(t *testing.T) {
	rec, clock, _, b := rig(t)
	root := rec.StartSpan("attack.campaign")
	st := root.StartChild("attack.steer")
	clock.Advance(42 * time.Second)
	st.End()
	root.End()

	var buf bytes.Buffer
	if err := b.Snapshot().WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	gz, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatalf("output is not gzip: %v", err)
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}

	var strs []string
	sampleTypes, samples, locations, functions := 0, 0, 0, 0
	for off := 0; off < len(raw); {
		key, n := uvarint(t, raw, off)
		off += n
		field, wire := int(key>>3), int(key&7)
		switch wire {
		case 0:
			_, n := uvarint(t, raw, off)
			off += n
		case 2:
			length, n := uvarint(t, raw, off)
			off += n
			body := raw[off : off+int(length)]
			off += int(length)
			switch field {
			case fldSampleType:
				sampleTypes++
			case fldSample:
				samples++
			case fldLocation:
				locations++
			case fldFunction:
				functions++
			case fldStringTable:
				strs = append(strs, string(body))
			}
		default:
			t.Fatalf("unexpected wire type %d at offset %d", wire, off)
		}
	}
	if sampleTypes != 4 {
		t.Errorf("sample types = %d", sampleTypes)
	}
	if samples != 2 || locations != 2 || functions != 2 {
		t.Errorf("samples/locations/functions = %d/%d/%d", samples, locations, functions)
	}
	joined := strings.Join(strs, "\n")
	for _, want := range []string{"sim_time", "nanoseconds", "dram_activations", "attack.campaign", "attack.steer"} {
		if !strings.Contains(joined, want) {
			t.Errorf("string table missing %q:\n%s", want, joined)
		}
	}
}

func uvarint(t *testing.T, b []byte, off int) (uint64, int) {
	t.Helper()
	var v uint64
	for i := 0; ; i++ {
		if off+i >= len(b) {
			t.Fatal("truncated varint")
		}
		c := b[off+i]
		v |= uint64(c&0x7f) << (7 * i)
		if c < 0x80 {
			return v, i + 1
		}
	}
}
