// pprof.go serializes a Profile in the pprof protobuf format
// (profile.proto), hand-encoded: the simulation takes no external
// dependencies, and the subset pprof needs — string table, value
// types, samples with location chains, one function per span name —
// is a few dozen lines of varint plumbing. The output is gzipped, as
// `go tool pprof` expects, so folded span paths open directly in any
// pprof UI (top, graph, flamegraph).
package profile

import (
	"compress/gzip"
	"io"
	"strings"
)

// profile.proto field numbers (only the ones emitted).
const (
	fldSampleType    = 1  // repeated ValueType
	fldSample        = 2  // repeated Sample
	fldLocation      = 4  // repeated Location
	fldFunction      = 5  // repeated Function
	fldStringTable   = 6  // repeated string
	fldDefaultSample = 13 // int64, index into string table

	fldVTType = 1 // ValueType.type
	fldVTUnit = 2 // ValueType.unit

	fldSampleLocID = 1 // Sample.location_id (repeated uint64)
	fldSampleValue = 2 // Sample.value (repeated int64)

	fldLocID   = 1 // Location.id
	fldLocLine = 4 // Location.line

	fldLineFuncID = 1 // Line.function_id

	fldFuncID   = 1 // Function.id
	fldFuncName = 2 // Function.name
)

// protoBuf is a minimal protobuf wire-format writer.
type protoBuf struct{ b []byte }

func (p *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

// tag writes a field key; wire type 0 is varint, 2 length-delimited.
func (p *protoBuf) tag(field, wire int) { p.varint(uint64(field)<<3 | uint64(wire)) }

func (p *protoBuf) int64Field(field int, v int64) {
	p.tag(field, 0)
	p.varint(uint64(v))
}

func (p *protoBuf) stringField(field int, s string) {
	p.tag(field, 2)
	p.varint(uint64(len(s)))
	p.b = append(p.b, s...)
}

func (p *protoBuf) message(field int, m *protoBuf) {
	p.tag(field, 2)
	p.varint(uint64(len(m.b)))
	p.b = append(p.b, m.b...)
}

// packedUints writes a repeated integer field in packed encoding.
func (p *protoBuf) packedUints(field int, vs []uint64) {
	var inner protoBuf
	for _, v := range vs {
		inner.varint(v)
	}
	p.message(field, &inner)
}

func (p *protoBuf) packedInts(field int, vs []int64) {
	us := make([]uint64, len(vs))
	for i, v := range vs {
		us[i] = uint64(v)
	}
	p.packedUints(field, us)
}

// WritePprof writes the profile as a gzipped pprof protobuf with four
// sample types — sim_time (nanoseconds), dram_activations,
// hammer_rounds, and spans (counts) — one sample per span path, values
// exclusive (pprof reconstructs inclusive costs from the location
// chains). The encoding is deterministic: entries are already
// path-sorted and the string table is built in traversal order.
func (p *Profile) WritePprof(w io.Writer) error {
	var out protoBuf

	// String table: index 0 must be "".
	strIdx := map[string]int64{"": 0}
	strs := []string{""}
	intern := func(s string) int64 {
		if i, ok := strIdx[s]; ok {
			return i
		}
		i := int64(len(strs))
		strIdx[s] = i
		strs = append(strs, s)
		return i
	}

	type vt struct{ typ, unit string }
	for _, v := range []vt{
		{"sim_time", "nanoseconds"},
		{"dram_activations", "count"},
		{"hammer_rounds", "count"},
		{"spans", "count"},
	} {
		var m protoBuf
		m.int64Field(fldVTType, intern(v.typ))
		m.int64Field(fldVTUnit, intern(v.unit))
		out.message(fldSampleType, &m)
	}

	// One function and one location per distinct span name; location
	// IDs are 1-based indices.
	locID := map[string]uint64{}
	var funcs, locs []string
	locOf := func(name string) uint64 {
		if id, ok := locID[name]; ok {
			return id
		}
		id := uint64(len(locs) + 1)
		locID[name] = id
		locs = append(locs, name)
		funcs = append(funcs, name)
		return id
	}

	var samples []*protoBuf
	for _, e := range p.Entries {
		frames := strings.Split(e.Path, PathSep)
		// pprof wants leaf first.
		ids := make([]uint64, 0, len(frames))
		for i := len(frames) - 1; i >= 0; i-- {
			ids = append(ids, locOf(frames[i]))
		}
		var m protoBuf
		m.packedUints(fldSampleLocID, ids)
		m.packedInts(fldSampleValue, []int64{
			int64(e.SelfSimSeconds * 1e9),
			e.SelfActivations,
			e.SelfHammerRounds,
			e.Count,
		})
		samples = append(samples, &m)
	}
	for _, m := range samples {
		out.message(fldSample, m)
	}
	for i := range locs {
		var line protoBuf
		line.int64Field(fldLineFuncID, int64(i+1))
		var m protoBuf
		m.int64Field(fldLocID, int64(i+1))
		m.message(fldLocLine, &line)
		out.message(fldLocation, &m)
	}
	for i, name := range funcs {
		var m protoBuf
		m.int64Field(fldFuncID, int64(i+1))
		m.int64Field(fldFuncName, intern(name))
		out.message(fldFunction, &m)
	}
	for _, s := range strs {
		out.stringField(fldStringTable, s)
	}
	out.int64Field(fldDefaultSample, strIdx["sim_time"])

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(out.b); err != nil {
		return err
	}
	return gz.Close()
}
