// Package profile is the simulation's cost profiler: it folds the
// span trace (explicit parenting, so ancestry is exact) into a
// per-span-path cost profile attributing simulated time, DRAM row
// activations, and hammer work to the campaign phase that spent them.
//
// The profiler answers the question the paper's evaluation revolves
// around — where do the simulated hours go (Section 4.1's 1.22 h/GiB
// profiling throughput, the ~4 minute steer-and-exploit attempts, the
// 180 s reboot tax of every failed attempt) — and makes it diffable
// across runs: the folded output is deterministic for a fixed seed, so
// two runs can be compared entry by entry (see internal/runartifact
// and cmd/hh-diff).
//
// A Builder consumes trace events live (attach it to a trace.Recorder
// with SetNamedSink), charging counter deltas from the metrics
// registry to the innermost open span. FromTrace replays a recorded
// JSONL trace offline (simulated time only — counter readings are not
// part of the trace). Snapshots export as folded flamegraph stacks
// (WriteFolded) or gzipped pprof protobuf (WritePprof).
package profile

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"hyperhammer/internal/metrics"
	"hyperhammer/internal/trace"
)

// PathSep joins span names into a path; it is the flamegraph folded
// stack separator, so paths render directly.
const PathSep = ";"

// Entry is the aggregated cost of one span path (e.g.
// "attack.campaign;attack.attempt;attack.steer", summed over every
// attempt). Inclusive values count the whole subtree; Self values
// exclude child spans, which is what a flamegraph plots.
type Entry struct {
	// Path is the PathSep-joined span-name chain from root to leaf.
	Path string `json:"path"`
	// Count is how many spans closed at this path.
	Count int64 `json:"count"`
	// SimSeconds is the inclusive simulated time; SelfSimSeconds
	// excludes time attributed to child spans.
	SimSeconds     float64 `json:"simSeconds"`
	SelfSimSeconds float64 `json:"selfSimSeconds"`
	// Activations is the inclusive DRAM row-activation count charged
	// while spans at this path were open (live profiling only);
	// SelfActivations excludes children.
	Activations     int64 `json:"activations"`
	SelfActivations int64 `json:"selfActivations"`
	// HammerRounds is the inclusive hammer-round count, attributed the
	// same way.
	HammerRounds     int64 `json:"hammerRounds"`
	SelfHammerRounds int64 `json:"selfHammerRounds"`
}

// Base returns the leaf span name of the path.
func (e Entry) Base() string {
	if i := strings.LastIndex(e.Path, PathSep); i >= 0 {
		return e.Path[i+len(PathSep):]
	}
	return e.Path
}

// SubsystemStat counts trace events per subsystem (the dotted-kind
// prefix: "virtio.unplug" belongs to "virtio").
type SubsystemStat struct {
	Name   string `json:"name"`
	Events int64  `json:"events"`
}

// Profile is one folded cost profile, ready to serialize.
type Profile struct {
	// Entries is the per-path cost table, sorted by path.
	Entries []Entry `json:"entries"`
	// Subsystems is the per-subsystem event census, sorted by name.
	Subsystems []SubsystemStat `json:"subsystems,omitempty"`
	// Events is the number of trace events consumed.
	Events int64 `json:"events"`
	// OpenSpans counts spans that had started but not ended at
	// snapshot time (nonzero mid-run or after a crash).
	OpenSpans int `json:"openSpans"`
	// UnmatchedEnds counts span.end events whose start was never seen
	// (trace cut mid-file).
	UnmatchedEnds int `json:"unmatchedEnds,omitempty"`
}

// TotalSimSeconds returns the simulated time covered by the profile:
// the sum of exclusive times, which equals the sum of root spans'
// inclusive times under proper nesting.
func (p *Profile) TotalSimSeconds() float64 {
	var t float64
	for _, e := range p.Entries {
		t += e.SelfSimSeconds
	}
	return t
}

// TotalActivations returns the profile-attributed DRAM activations.
func (p *Profile) TotalActivations() int64 {
	var t int64
	for _, e := range p.Entries {
		t += e.SelfActivations
	}
	return t
}

// Lookup returns the entry at the given path, if present.
func (p *Profile) Lookup(path string) (Entry, bool) {
	i := sort.Search(len(p.Entries), func(i int) bool { return p.Entries[i].Path >= path })
	if i < len(p.Entries) && p.Entries[i].Path == path {
		return p.Entries[i], true
	}
	return Entry{}, false
}

// WriteFolded writes the profile as flamegraph folded stacks: one
// "path value" line per entry, the value being exclusive simulated
// time in integer microseconds. Lines are path-sorted, so output for a
// fixed seed is byte-identical across runs.
func (p *Profile) WriteFolded(w io.Writer) error {
	for _, e := range p.Entries {
		if _, err := fmt.Fprintf(w, "%s %d\n", e.Path, int64(e.SelfSimSeconds*1e6)); err != nil {
			return err
		}
	}
	return nil
}

// Folded returns WriteFolded's output as a string.
func (p *Profile) Folded() string {
	var sb strings.Builder
	p.WriteFolded(&sb) //nolint:errcheck // strings.Builder cannot fail
	return sb.String()
}

// openSpan is one started-but-not-ended span the builder tracks.
type openSpan struct {
	path string
	// Counter readings at span start.
	actStart, roundStart uint64
	// Accumulated inclusive costs of already-closed children, to be
	// subtracted for this span's exclusive cost.
	childSeconds float64
	childActs    uint64
	childRounds  uint64
}

// aggEntry accumulates one path's costs.
type aggEntry struct {
	count                int64
	seconds, selfSeconds float64
	acts, selfActs       uint64
	rounds, selfRounds   uint64
}

// Builder folds span events into a cost profile as they are recorded.
// Attach with rec.SetNamedSink("profile", b.Consume). All methods are
// safe for concurrent use; a nil *Builder no-ops.
type Builder struct {
	mu            sync.Mutex
	acts          *metrics.Counter
	rounds        *metrics.Counter
	open          map[uint64]*openSpan
	agg           map[string]*aggEntry
	subs          map[string]int64
	events        int64
	unmatchedEnds int
}

// NewBuilder creates a builder. reg, when non-nil, supplies the DRAM
// activation and hammer-round counters whose deltas are charged to the
// span open at the time they occur; a nil registry yields a profile of
// simulated time only.
func NewBuilder(reg *metrics.Registry) *Builder {
	return &Builder{
		acts:   reg.Counter("dram_activations_total", "DRAM row activations driven by hammer operations."),
		rounds: reg.Counter("hammer_rounds_total", "Total hammer rounds across all operations."),
		open:   make(map[uint64]*openSpan),
		agg:    make(map[string]*aggEntry),
		subs:   make(map[string]int64),
	}
}

// Consume folds one trace event into the profile. Non-span events only
// feed the subsystem census. Safe on a nil receiver.
func (b *Builder) Consume(ev trace.Event) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.events++
	sub := ev.Kind
	if i := strings.IndexByte(sub, '.'); i > 0 {
		sub = sub[:i]
	}
	b.subs[sub]++

	switch ev.Kind {
	case "span.start":
		id := asUint(ev.Data["span"])
		if id == 0 {
			return
		}
		name := asString(ev.Data["name"])
		path := name
		if parent, ok := b.open[asUint(ev.Data["parent"])]; ok {
			path = parent.path + PathSep + name
		}
		b.open[id] = &openSpan{
			path:       path,
			actStart:   b.acts.Value(),
			roundStart: b.rounds.Value(),
		}
	case "span.end":
		id := asUint(ev.Data["span"])
		s, ok := b.open[id]
		if !ok {
			b.unmatchedEnds++
			return
		}
		delete(b.open, id)
		seconds, _ := ev.Data["seconds"].(float64)
		actDelta := counterDelta(b.acts.Value(), s.actStart)
		roundDelta := counterDelta(b.rounds.Value(), s.roundStart)

		a := b.agg[s.path]
		if a == nil {
			a = &aggEntry{}
			b.agg[s.path] = a
		}
		a.count++
		a.seconds += seconds
		a.selfSeconds += clampPos(seconds - s.childSeconds)
		a.acts += actDelta
		a.selfActs += actDelta - min64(actDelta, s.childActs)
		a.rounds += roundDelta
		a.selfRounds += roundDelta - min64(roundDelta, s.childRounds)

		// Charge this span's inclusive cost to its (still open) parent.
		if i := strings.LastIndex(s.path, PathSep); i >= 0 {
			parentPath := s.path[:i]
			for _, p := range b.open {
				if p.path == parentPath {
					p.childSeconds += seconds
					p.childActs += actDelta
					p.childRounds += roundDelta
					break
				}
			}
		}
	}
}

// Absorb merges a finished profile — typically built live by a scoped
// per-unit builder over that unit's own registry — into this builder's
// aggregate, adding per-path counts and costs, subsystem censuses, and
// event totals. Counter attribution carries over exactly because the
// unit's builder charged deltas live; replaying the unit's trace into
// a shared builder instead would see only static counters. Safe on a
// nil receiver or profile.
func (b *Builder) Absorb(p *Profile) {
	if b == nil || p == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.events += p.Events
	b.unmatchedEnds += p.UnmatchedEnds
	for _, e := range p.Entries {
		a := b.agg[e.Path]
		if a == nil {
			a = &aggEntry{}
			b.agg[e.Path] = a
		}
		a.count += e.Count
		a.seconds += e.SimSeconds
		a.selfSeconds += e.SelfSimSeconds
		a.acts += uint64(e.Activations)
		a.selfActs += uint64(e.SelfActivations)
		a.rounds += uint64(e.HammerRounds)
		a.selfRounds += uint64(e.SelfHammerRounds)
	}
	for _, s := range p.Subsystems {
		b.subs[s.Name] += s.Events
	}
}

// Snapshot returns the profile folded so far. Entries are path-sorted;
// taking a snapshot does not reset the builder.
func (b *Builder) Snapshot() *Profile {
	p := &Profile{}
	if b == nil {
		return p
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	p.Events = b.events
	p.OpenSpans = len(b.open)
	p.UnmatchedEnds = b.unmatchedEnds
	paths := make([]string, 0, len(b.agg))
	for path := range b.agg {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		a := b.agg[path]
		p.Entries = append(p.Entries, Entry{
			Path:             path,
			Count:            a.count,
			SimSeconds:       a.seconds,
			SelfSimSeconds:   a.selfSeconds,
			Activations:      int64(a.acts),
			SelfActivations:  int64(a.selfActs),
			HammerRounds:     int64(a.rounds),
			SelfHammerRounds: int64(a.selfRounds),
		})
	}
	subs := make([]string, 0, len(b.subs))
	for s := range b.subs {
		subs = append(subs, s)
	}
	sort.Strings(subs)
	for _, s := range subs {
		p.Subsystems = append(p.Subsystems, SubsystemStat{Name: s, Events: b.subs[s]})
	}
	return p
}

// FromTrace replays a recorded JSONL trace (as written by
// trace.Recorder) into a profile. Counter attribution is unavailable
// offline — the trace does not carry registry readings — so the
// resulting entries report simulated time and counts only.
func FromTrace(r io.Reader) (*Profile, error) {
	b := NewBuilder(nil)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev trace.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			continue // hh-inspect reports malformed lines; profiling skips them
		}
		b.Consume(ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("profile: reading trace: %w", err)
	}
	return b.Snapshot(), nil
}

// asUint coerces a span/parent ID out of event data: native uint64
// from in-memory events, float64 after a JSON round trip.
func asUint(v any) uint64 {
	switch x := v.(type) {
	case uint64:
		return x
	case float64:
		return uint64(x)
	case int:
		return uint64(x)
	}
	return 0
}

func asString(v any) string {
	s, _ := v.(string)
	return s
}

// counterDelta subtracts two monotonic counter readings, tolerating a
// registry swap mid-span (reading went backwards: charge nothing).
func counterDelta(now, start uint64) uint64 {
	if now < start {
		return 0
	}
	return now - start
}

func clampPos(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
