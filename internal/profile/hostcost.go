package profile

// Host-cost plan analysis: folds a sched.Schedule (per-unit host
// wall-clock timings from the deterministic parallel engine) into a
// critical-path and parallel-efficiency report. Everything here is
// host-side observation — plan figures are non-deterministic and live
// only in the artifact's `plan` section, which hh-diff compares
// loosely; they must never feed back into simulated output.

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"hyperhammer/internal/sched"
)

// PlanVersion is the plan report schema version.
const PlanVersion = 1

// PlanUnit is one unit's host-cost record plus its derived
// critical-path figures.
type PlanUnit struct {
	Index  int    `json:"index"`
	Name   string `json:"name"`
	Worker int    `json:"worker"`
	// Raw schedule timestamps, host seconds relative to batch start.
	StartSeconds        float64 `json:"startSeconds"`
	EndSeconds          float64 `json:"endSeconds"`
	DeliverStartSeconds float64 `json:"deliverStartSeconds"`
	DeliverEndSeconds   float64 `json:"deliverEndSeconds"`
	// Derived durations.
	RunSeconds         float64 `json:"runSeconds"`
	QueueWaitSeconds   float64 `json:"queueWaitSeconds"`
	DeliverHoldSeconds float64 `json:"deliverHoldSeconds"`
	DeliverSeconds     float64 `json:"deliverSeconds"`
	// ChainSeconds is the length of the dependency chain through this
	// unit (its run plus every delivery at or after its index, which
	// must serialize behind it); SlackSeconds is how much longer this
	// unit could have run without stretching the critical path.
	ChainSeconds float64 `json:"chainSeconds"`
	SlackSeconds float64 `json:"slackSeconds"`
	// Critical marks the unit whose chain IS the critical path.
	Critical  bool `json:"critical,omitempty"`
	Started   bool `json:"started"`
	Delivered bool `json:"delivered"`
}

// PlanReport is the host-cost analysis of one scheduled batch.
type PlanReport struct {
	Version int `json:"version"`
	// Workers is the effective pool size the batch ran with.
	Workers int        `json:"workers"`
	Units   []PlanUnit `json:"units"`
	// WallSeconds and CPUSeconds are the batch's host wall-clock and
	// process-CPU cost; BusySeconds sums unit run times and
	// DeliverSeconds sums delivery callback times.
	WallSeconds    float64 `json:"wallSeconds"`
	CPUSeconds     float64 `json:"cpuSeconds"`
	BusySeconds    float64 `json:"busySeconds"`
	DeliverSeconds float64 `json:"deliverSeconds"`
	// SequentialSeconds estimates a 1-worker run (sum of runs plus
	// deliveries); CriticalPathSeconds is the longest chain — the floor
	// no worker count can beat.
	SequentialSeconds   float64 `json:"sequentialSeconds"`
	CriticalPathSeconds float64 `json:"criticalPathSeconds"`
	// CriticalPath names the chain realizing CriticalPathSeconds: the
	// critical unit's run, then every delivery it gates.
	CriticalPath []string `json:"criticalPath"`
	// MaxSpeedup is SequentialSeconds/CriticalPathSeconds (the
	// infinite-worker ceiling); ActualSpeedup is
	// SequentialSeconds/WallSeconds; Efficiency is
	// ActualSpeedup/Workers.
	MaxSpeedup    float64 `json:"maxSpeedup"`
	ActualSpeedup float64 `json:"actualSpeedup"`
	Efficiency    float64 `json:"efficiency"`
	// WorkerBusySeconds is per-worker-slot busy time (occupancy row
	// sums), indexed by worker.
	WorkerBusySeconds []float64 `json:"workerBusySeconds"`
}

// EmptyPlanReport returns a valid zero report (all slices non-nil so
// JSON consumers see [] rather than null).
func EmptyPlanReport() *PlanReport {
	return &PlanReport{
		Version:           PlanVersion,
		Units:             []PlanUnit{},
		CriticalPath:      []string{},
		WorkerBusySeconds: []float64{},
	}
}

// BuildPlanReport derives the critical-path and parallel-efficiency
// analysis from a batch schedule. The dependency model is the engine's
// actual contract: units are independent (they may all run at once)
// but deliveries serialize in index order, so the chain through unit i
// is its own run plus every delivery from index i onward. The longest
// such chain is the wall-clock floor at infinite workers. Safe on a
// nil schedule, returning an empty report.
func BuildPlanReport(sc *sched.Schedule) *PlanReport {
	r := EmptyPlanReport()
	if sc == nil {
		return r
	}
	r.Workers = sc.Workers
	r.WallSeconds = sc.WallSeconds
	r.CPUSeconds = sc.CPUSeconds
	r.BusySeconds = sc.BusySeconds()
	r.WorkerBusySeconds = sc.WorkerBusySeconds()
	if r.WorkerBusySeconds == nil {
		r.WorkerBusySeconds = []float64{}
	}
	n := len(sc.Units)
	if n == 0 {
		return r
	}

	// deliverSuffix[i] = sum of delivery times for units i..n-1: the
	// serialized tail unit i's delivery chain must wait through.
	deliverSuffix := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		deliverSuffix[i] = deliverSuffix[i+1] + sc.Units[i].DeliverSeconds()
	}
	r.DeliverSeconds = deliverSuffix[0]

	r.Units = make([]PlanUnit, n)
	critIdx := 0
	for i, u := range sc.Units {
		chain := u.RunSeconds() + deliverSuffix[i]
		r.Units[i] = PlanUnit{
			Index:               u.Index,
			Name:                u.Name,
			Worker:              u.Worker,
			StartSeconds:        u.StartSeconds,
			EndSeconds:          u.EndSeconds,
			DeliverStartSeconds: u.DeliverStartSeconds,
			DeliverEndSeconds:   u.DeliverEndSeconds,
			RunSeconds:          u.RunSeconds(),
			QueueWaitSeconds:    u.QueueWaitSeconds(),
			DeliverHoldSeconds:  u.DeliverHoldSeconds(),
			DeliverSeconds:      u.DeliverSeconds(),
			ChainSeconds:        chain,
			Started:             u.Started,
			Delivered:           u.Delivered,
		}
		r.SequentialSeconds += u.RunSeconds() + u.DeliverSeconds()
		if chain > r.Units[critIdx].ChainSeconds {
			critIdx = i
		}
	}
	r.CriticalPathSeconds = r.Units[critIdx].ChainSeconds
	r.Units[critIdx].Critical = true
	for i := range r.Units {
		r.Units[i].SlackSeconds = r.CriticalPathSeconds - r.Units[i].ChainSeconds
	}
	for i := critIdx; i < n; i++ {
		r.CriticalPath = append(r.CriticalPath, sc.Units[i].Name)
	}
	if r.CriticalPathSeconds > 0 {
		r.MaxSpeedup = r.SequentialSeconds / r.CriticalPathSeconds
	}
	if r.WallSeconds > 0 {
		r.ActualSpeedup = r.SequentialSeconds / r.WallSeconds
	}
	if r.Workers > 0 {
		r.Efficiency = r.ActualSpeedup / float64(r.Workers)
	}
	return r
}

// RenderPlan writes the human view of a plan report: summary header,
// ASCII Gantt chart (one row per unit, run time as '=', delivery hold
// as '.', delivery as '|'), per-worker utilization bars, and the
// top-slack unit table. width bounds the chart columns (0 picks 60).
// This is the single renderer behind hh-plan, hh-inspect plan, and the
// /api/plan consumers, per the one-renderer-per-view convention.
func RenderPlan(w io.Writer, r *PlanReport, width int) error {
	if r == nil {
		r = EmptyPlanReport()
	}
	if width <= 0 {
		width = 60
	}
	bw := &errWriter{w: w}
	bw.printf("plan: %d units on %d workers\n", len(r.Units), r.Workers)
	bw.printf("wall %ss  cpu %ss  busy %ss  deliver %ss  seq-est %ss\n",
		fmtSec(r.WallSeconds), fmtSec(r.CPUSeconds), fmtSec(r.BusySeconds),
		fmtSec(r.DeliverSeconds), fmtSec(r.SequentialSeconds))
	bw.printf("speedup %.2fx actual / %.2fx max (critical path %ss)  efficiency %.0f%%\n",
		r.ActualSpeedup, r.MaxSpeedup, fmtSec(r.CriticalPathSeconds), r.Efficiency*100)
	if len(r.CriticalPath) > 0 {
		path := r.CriticalPath
		const maxShown = 6
		if len(path) > maxShown {
			path = append(append([]string{}, path[:maxShown-1]...),
				fmt.Sprintf("… +%d deliveries", len(r.CriticalPath)-(maxShown-1)))
		}
		bw.printf("critical path: %s\n", strings.Join(path, " → "))
	}
	if len(r.Units) == 0 {
		bw.printf("(no units scheduled)\n")
		return bw.err
	}

	nameW := 0
	for _, u := range r.Units {
		if len(u.Name) > nameW {
			nameW = len(u.Name)
		}
	}
	if nameW > 28 {
		nameW = 28
	}
	span := r.WallSeconds
	if span <= 0 {
		for _, u := range r.Units {
			if u.DeliverEndSeconds > span {
				span = u.DeliverEndSeconds
			}
		}
	}
	bw.printf("\ngantt ('=' run, '.' deliver hold, '|' deliver):\n")
	col := func(t float64) int {
		if span <= 0 {
			return 0
		}
		c := int(t / span * float64(width))
		if c >= width {
			c = width - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}
	for _, u := range r.Units {
		row := []byte(strings.Repeat(" ", width))
		if u.Started {
			for c := col(u.StartSeconds); c <= col(u.EndSeconds); c++ {
				row[c] = '='
			}
			if u.Delivered {
				for c := col(u.EndSeconds); c < col(u.DeliverStartSeconds); c++ {
					row[c] = '.'
				}
				row[col(u.DeliverEndSeconds)] = '|'
			}
		}
		mark := " "
		if u.Critical {
			mark = "*"
		}
		worker := "--"
		if u.Worker >= 0 {
			worker = fmt.Sprintf("w%d", u.Worker)
		}
		bw.printf("%s %-*s %s [%s]\n", mark, nameW, clip(u.Name, nameW), worker, row)
	}

	bw.printf("\nworkers:\n")
	barW := width - 10
	if barW < 10 {
		barW = 10
	}
	for wi, busy := range r.WorkerBusySeconds {
		frac := 0.0
		if span > 0 {
			frac = busy / span
		}
		if frac > 1 {
			frac = 1
		}
		fill := int(frac*float64(barW) + 0.5)
		bw.printf("  w%-2d [%s%s] %3.0f%%  %ss busy\n",
			wi, strings.Repeat("#", fill), strings.Repeat(".", barW-fill), frac*100, fmtSec(busy))
	}

	bw.printf("\ntop slack (units that could run this much longer for free):\n")
	idx := make([]int, len(r.Units))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return r.Units[idx[a]].SlackSeconds > r.Units[idx[b]].SlackSeconds
	})
	top := idx
	if len(top) > 5 {
		top = top[:5]
	}
	for _, i := range top {
		u := r.Units[i]
		bw.printf("  %-*s slack %ss (chain %ss, run %ss)\n",
			nameW, clip(u.Name, nameW), fmtSec(u.SlackSeconds), fmtSec(u.ChainSeconds), fmtSec(u.RunSeconds))
	}
	return bw.err
}

// clip truncates s to at most n bytes, marking the cut with '…'.
func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	if n <= 1 {
		return s[:n]
	}
	return s[:n-1] + "…"
}

// fmtSec renders host seconds compactly: micro-scale runs keep enough
// digits to be legible, long runs don't drown in precision.
func fmtSec(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v < 0.001:
		return fmt.Sprintf("%.6f", v)
	case v < 1:
		return fmt.Sprintf("%.4f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// errWriter folds write errors so render code stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
