package kvm

import (
	"errors"
	"testing"

	"hyperhammer/internal/memdef"
)

// newBalloonVM builds a VM without VFIO (the Section 6 balloon
// scenario): its memory is MIGRATE_MOVABLE, not pinned.
func newBalloonVM(t *testing.T, h *Host, size uint64) *VM {
	t.Helper()
	vm, err := h.CreateVM(VMConfig{MemSize: size})
	if err != nil {
		t.Fatal(err)
	}
	vm.AttachBalloon()
	return vm
}

func TestBalloonVMBackingIsMovable(t *testing.T) {
	h := newTestHost(t, testHostConfig())
	before := h.Buddy.NoisePages(memdef.MigrateMovable)
	_ = before
	vm := newBalloonVM(t, h, 32*memdef.MiB)
	if vm.backingMT() != memdef.MigrateMovable {
		t.Fatal("balloon VM backing not movable")
	}
	vfioVM := newTestVM(t, h, 32*memdef.MiB)
	if vfioVM.backingMT() != memdef.MigrateUnmovable {
		t.Fatal("VFIO VM backing not pinned unmovable")
	}
}

func TestBalloonReclaimAndProvide(t *testing.T) {
	h := newTestHost(t, testHostConfig())
	vm := newBalloonVM(t, h, 32*memdef.MiB)
	dev := vm.Balloon()

	target := memdef.GPA(10 * memdef.MiB)
	if err := vm.WriteGPA64(target, 0xAB); err != nil {
		t.Fatal(err)
	}
	splitsBefore := vm.Splits()
	freeBefore := h.Buddy.FreePages()
	if err := dev.Inflate(target); err != nil {
		t.Fatal(err)
	}
	// The THP chunk was split (one new leaf table allocated, one
	// backing frame released): net one page freed minus one table.
	if vm.Splits() != splitsBefore+1 {
		t.Errorf("splits = %d, want +1 for the THP data split", vm.Splits())
	}
	if h.Buddy.FreePages() != freeBefore {
		// one frame freed, one leaf table allocated
		t.Errorf("free pages %d -> %d, want unchanged net", freeBefore, h.Buddy.FreePages())
	}
	// The ballooned page faults; its neighbours still work and kept
	// their contents.
	if _, err := vm.ReadGPA64(target); !errors.Is(err, ErrFault) {
		t.Errorf("ballooned page read: %v", err)
	}
	if err := vm.WriteGPA64(target+memdef.PageSize, 7); err != nil {
		t.Errorf("neighbour write: %v", err)
	}
	// Double inflate refused.
	if err := dev.Inflate(target); err == nil {
		t.Error("double inflate accepted")
	}
	// Deflate restores a (zeroed) page.
	if err := dev.Deflate(target); err != nil {
		t.Fatal(err)
	}
	v, err := vm.ReadGPA64(target)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("deflated page = %#x, want zeroed", v)
	}
}

// The balloon's key property for the Section 6 analysis: a reclaimed
// page lands on the MOVABLE free lists at order 0 — immediately small,
// but on the wrong side of the migratetype wall from EPT allocations.
func TestBalloonReleaseIsMovableOrder0(t *testing.T) {
	h := newTestHost(t, testHostConfig())
	vm := newBalloonVM(t, h, 32*memdef.MiB)
	target := memdef.GPA(20 * memdef.MiB)
	hpa, err := vm.HypercallGPAToHPA(target)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Balloon().Inflate(target); err != nil {
		t.Fatal(err)
	}
	frame := memdef.PFNOf(hpa)
	if h.Buddy.InPCP(frame) {
		// Cached in the movable per-CPU list: order-0 by definition.
		return
	}
	base, order, mt, ok := h.Buddy.FreeBlockContaining(frame)
	if !ok {
		t.Fatal("reclaimed frame neither free nor PCP-cached")
	}
	if mt != memdef.MigrateMovable {
		t.Errorf("reclaimed frame migratetype = %v", mt)
	}
	if order != 0 || base != frame {
		t.Errorf("reclaimed frame in order-%d block at %d", order, base)
	}
}

func TestBalloonExecAfterDataSplit(t *testing.T) {
	h := newTestHost(t, testHostConfig())
	vm := newBalloonVM(t, h, 32*memdef.MiB)
	chunk := memdef.GPA(8 * memdef.MiB)
	if err := vm.Balloon().Inflate(chunk + 5*memdef.PageSize); err != nil {
		t.Fatal(err)
	}
	// The chunk is now 4 KiB-mapped and non-executable. Executing in
	// it must succeed via a per-entry exec grant, not a split.
	splits := vm.Splits()
	didSplit, err := vm.ExecGPA(chunk)
	if err != nil {
		t.Fatal(err)
	}
	if didSplit || vm.Splits() != splits {
		t.Error("exec on data-split chunk caused another split")
	}
	// And again: idempotent.
	if _, err := vm.ExecGPA(chunk); err != nil {
		t.Fatal(err)
	}
}

func TestDrainNetBuffers(t *testing.T) {
	h := newTestHost(t, testHostConfig())
	vm := newBalloonVM(t, h, 32*memdef.MiB)
	noise := h.NoisePages()
	if noise == 0 {
		t.Fatal("no boot noise to drain")
	}
	consumed := vm.DrainNetBuffers(1 << 20)
	if consumed < noise/2 {
		t.Errorf("drained %d of %d noise pages", consumed, noise)
	}
	if got := h.NoisePages(); got != 0 {
		t.Errorf("noise after drain = %d", got)
	}
	free := h.Buddy.FreePages()
	vm.Destroy()
	if h.Buddy.FreePages() <= free {
		t.Error("destroy did not return net buffers")
	}
}
