package kvm

import (
	"hyperhammer/internal/dram"
	"hyperhammer/internal/ept"
	"hyperhammer/internal/memdef"
	"sort"
)

// This file hosts two kinds of observation APIs.
//
// Guest-equivalent observations (ContentFlipsSince, ChangedMappings)
// return exactly what the guest would learn by exhaustively scanning
// its own memory — the guest layer charges full scan time when it uses
// them. They exist because iterating 3 million simulated pages per
// scan in Go would make the experiments computationally infeasible,
// while the observable result is derivable from the flip log and the
// translation state. See DESIGN.md §3.
//
// Host-side instrumentation (EPTReuseStats) corresponds to the two
// functions the paper adds to the hypervisor for the Table 2
// experiment: logging released PFNs and dumping EPT pages.

// GuestFlip is a bit flip as the guest observes it in its own memory:
// located by guest physical address, with no host information.
type GuestFlip struct {
	// GPA is the guest physical address of the byte whose bit
	// flipped, under the backing in effect when the flip landed.
	GPA memdef.GPA
	// Bit is the bit index within that byte.
	Bit uint
	// Direction is the observed flip direction.
	Direction dram.FlipDirection
}

// EPTEBit returns the bit position the flip occupies within the
// 64-bit-aligned 8-byte group containing it — the position it would
// corrupt in a page-table entry placed on this page (Section 4.1's
// exploitability filter).
func (f GuestFlip) EPTEBit() uint {
	return uint(f.GPA&7)*8 + f.Bit
}

// ContentFlipsSince translates the host flip log after the cursor into
// guest-visible content flips: flips that landed in frames currently
// backing this VM's plugged memory. It returns the flips and the new
// cursor.
//
// Contract: valid while the guest's EPT is uncorrupted (profiling
// phase). Once EPT entries are being flipped or rewritten, mapping
// changes — not content attribution — are the relevant observation.
func (vm *VM) ContentFlipsSince(cursor int) ([]GuestFlip, int) {
	log := vm.host.flipLog
	var out []GuestFlip
	for _, f := range log[cursor:] {
		frame := memdef.PFNOf(f.Addr)
		gpa, ok := vm.frameToGPA(frame)
		if !ok {
			continue
		}
		out = append(out, GuestFlip{
			GPA:       gpa + memdef.GPA(memdef.PageOffset(f.Addr)),
			Bit:       f.Bit,
			Direction: f.Direction,
		})
	}
	return out, len(log)
}

// frameToGPA finds the guest page currently backed by frame, if any.
func (vm *VM) frameToGPA(frame memdef.PFN) (memdef.GPA, bool) {
	// Huge chunks: the backing block is order-9 aligned, so the
	// candidate chunk base frame is the aligned-down frame.
	base := frame &^ (memdef.PagesPerHuge - 1)
	if gpa, ok := vm.reverse[base]; ok {
		if cb := vm.backing[gpa]; cb != nil && cb.huge && cb.frames[0] == base {
			return gpa + memdef.GPA(uint64(frame-base)<<memdef.PageShift), true
		}
	}
	// Scattered 4 KiB backing indexes frames exactly.
	if gpa, ok := vm.reverse[frame]; ok {
		if cb := vm.backing[memdef.HugeBase(gpa)]; cb != nil && !cb.huge {
			return gpa, true
		}
	}
	return 0, false
}

// MappingChange reports one guest page whose translation no longer
// points at its original backing frame — what the guest detects as a
// wrong magic value (Section 4.3, "Identifying Mapping Change").
type MappingChange struct {
	// GPA is the 4 KiB guest page whose mapping changed.
	GPA memdef.GPA
	// Faulted is set when the page no longer translates at all
	// (entry became non-present or misconfigured).
	Faulted bool
}

// ChangedMappings compares the current EPT translation of every
// plugged guest page against the hypervisor's backing records and
// returns the differing pages. It is observationally what the guest
// gets from re-reading the magic value in every page it marked.
func (vm *VM) ChangedMappings() []MappingChange {
	return vm.AppendChangedMappings(nil)
}

// AppendChangedMappings is ChangedMappings appending into a
// caller-provided buffer — the allocation-free form for the exploit
// step's repeated post-probe rescans. The chunk-ordering scratch is
// VM-owned and reused across calls.
func (vm *VM) AppendChangedMappings(out []MappingChange) []MappingChange {
	// The sorted chunk list changes only when plug/unplug changes the
	// backing map's key set; between those events (every post-probe
	// rescan of the exploit step) the cached order is reused.
	if vm.scanDirty || len(vm.scanChunks) != len(vm.backing) {
		chunks := vm.scanChunks[:0]
		for gpa := range vm.backing {
			chunks = append(chunks, gpa)
		}
		sort.Slice(chunks, func(i, j int) bool { return chunks[i] < chunks[j] })
		vm.scanChunks = chunks
		vm.scanDirty = false
	}
	for _, chunk := range vm.scanChunks {
		cb := vm.backing[chunk]
		tr, err := vm.ept.Translate(uint64(chunk))
		if err != nil {
			out = append(out, MappingChange{GPA: chunk, Faulted: true})
			continue
		}
		if tr.Level == 2 {
			// Intact hugepage leaf: one comparison covers the chunk.
			if !cb.huge || memdef.PFNOf(tr.HPA) != cb.frames[0] {
				out = append(out, MappingChange{GPA: chunk})
			}
			continue
		}
		// Split chunk: compare each of the 512 leaf entries.
		leaf := memdef.PFNOf(tr.EntryAddr)
		for i := 0; i < memdef.PagesPerHuge; i++ {
			want := cb.frames[0] + memdef.PFN(i)
			if !cb.huge {
				want = cb.frames[i]
			}
			if want == reclaimedFrame {
				continue // ballooned away; unmapped by design
			}
			e := ept.Entry(vm.host.Mem.PageWord(leaf, i))
			pageGPA := chunk + memdef.GPA(i*memdef.PageSize)
			switch {
			case !e.Present():
				out = append(out, MappingChange{GPA: pageGPA, Faulted: true})
			case e.PFN() != want:
				out = append(out, MappingChange{GPA: pageGPA})
			}
		}
	}
	return out
}

// EPTReuseStats is the Table 2 measurement: how many of the pages the
// VM released through virtio-mem ended up holding EPT pages.
type EPTReuseStats struct {
	// ReleasedBlocks is the number of order-9 blocks the VM released
	// (the paper's B).
	ReleasedBlocks int
	// ReleasedPages is B * 512 (the paper's N).
	ReleasedPages int
	// EPTPages is the number of leaf EPT pages in the system (the
	// paper's E).
	EPTPages int
	// ReusedPages is how many released pages now hold EPT pages (the
	// paper's R).
	ReusedPages int
}

// RN returns R/N, the fraction of released pages reused by EPTs.
func (s EPTReuseStats) RN() float64 {
	if s.ReleasedPages == 0 {
		return 0
	}
	return float64(s.ReusedPages) / float64(s.ReleasedPages)
}

// RE returns R/E, the fraction of EPT pages on released memory.
func (s EPTReuseStats) RE() float64 {
	if s.EPTPages == 0 {
		return 0
	}
	return float64(s.ReusedPages) / float64(s.EPTPages)
}

// EPTReuse computes the Table 2 statistics for this VM by intersecting
// the host's released-block log with the VM's current EPT page dump —
// the combination of the paper's two added hypervisor functions.
func (vm *VM) EPTReuse() EPTReuseStats {
	released := make(map[memdef.PFN]bool)
	blocks := 0
	for _, base := range vm.host.releasedLog {
		blocks++
		for i := memdef.PFN(0); i < memdef.PagesPerHuge; i++ {
			released[base+i] = true
		}
	}
	leaves := vm.ept.TablePages(1)
	reused := 0
	for _, p := range leaves {
		if released[p] {
			reused++
		}
	}
	return EPTReuseStats{
		ReleasedBlocks: blocks,
		ReleasedPages:  blocks * memdef.PagesPerHuge,
		EPTPages:       len(leaves),
		ReusedPages:    reused,
	}
}
