package kvm

import (
	"errors"
	"fmt"
	"sort"

	"hyperhammer/internal/balloon"
	"hyperhammer/internal/dram"
	"hyperhammer/internal/ept"
	"hyperhammer/internal/memdef"
	"hyperhammer/internal/simtime"
	"hyperhammer/internal/viommu"
	"hyperhammer/internal/virtio"
)

// VMConfig describes one guest VM.
type VMConfig struct {
	// MemSize is the guest memory size in bytes (2 MiB multiple).
	// All of it is managed as one virtio-mem region and fully plugged
	// at creation, matching the paper's 13 GiB attacker HVM.
	MemSize uint64
	// VFIOGroups is the number of assigned IOMMU groups (>= 1 gives
	// the VM a passed-through device with vIOMMU; pins its memory
	// MIGRATE_UNMOVABLE, Section 2.6).
	VFIOGroups int
	// IOMMUMapLimit caps DMA mappings per group (0 = the vIOMMU
	// default of 65,535).
	IOMMUMapLimit int
	// BootSplits models the guest's own boot-time code execution
	// under the NX-hugepage countermeasure: kernel, init and service
	// code fetches split this many hugepages before any attack runs,
	// creating the pre-existing EPT pages that dilute the Table 2
	// counts on a real host. Zero disables it.
	BootSplits int
	// VCPUs is decorative (the simulation is single-threaded).
	VCPUs int
}

// Errors surfaced to guest accesses.
var (
	// ErrFault is a guest-visible memory fault: access to an
	// unplugged or unmapped guest physical address.
	ErrFault = errors.New("kvm: guest memory fault")
	// ErrMachineCheck is the guest-visible outcome of translating
	// through a corrupted EPT entry that points outside physical
	// memory.
	ErrMachineCheck = errors.New("kvm: machine check (EPT misconfiguration)")
	// ErrNoExec reports an instruction fetch from a non-executable
	// mapping when the multihit countermeasure cannot help (no
	// hugepage to split).
	ErrNoExec = errors.New("kvm: execute permission fault")
)

// chunkBacking records the host frames backing one 2 MiB guest chunk.
type chunkBacking struct {
	// huge means the chunk is backed by one order-9 block starting at
	// frames[0] (THP). Otherwise frames lists all 512 backing pages.
	huge   bool
	frames []memdef.PFN
}

// tlbEntry caches the location of the translation structure for one
// guest chunk. Split chunks re-read their leaf EPTEs on every access
// (the walker honours current memory contents); huge chunks cache the
// physical base.
type tlbEntry struct {
	huge bool
	// basePFN is the backing base frame for huge chunks.
	basePFN memdef.PFN
	// leafTable is the leaf EPT table frame for split chunks.
	leafTable memdef.PFN
}

// VM is one guest virtual machine.
type VM struct {
	host *Host
	cfg  VMConfig
	// id numbers the VM in host creation order (1-based), for stable
	// naming in traces and forensics owner records.
	id int

	ept      *ept.Table
	eptAlloc *tableAllocator

	memDev *virtio.MemDevice
	groups []*viommu.Group

	// backing maps each plugged 2 MiB chunk base GPA to its host
	// frames. It is hypervisor truth, independent of EPT contents.
	backing map[memdef.GPA]*chunkBacking
	// reverse maps a backing base frame to its chunk GPA (huge
	// chunks) for flip attribution; non-huge chunks index per frame.
	reverse map[memdef.PFN]memdef.GPA

	tlb map[memdef.GPA]tlbEntry

	// splits counts multihit-countermeasure hugepage splits.
	splits int

	// balloon is the VM's virtio-balloon device, if configured.
	balloon *balloon.Device
	// netBuffers are unmovable pages held by the simulated NIC after
	// DrainNetBuffers.
	netBuffers []memdef.PFN

	// scanChunks is AppendChangedMappings' reusable chunk-ordering
	// scratch; scanDirty marks it stale after plug/unplug changes the
	// backing map's key set.
	scanChunks []memdef.GPA
	scanDirty  bool

	// aggScratch is HammerManyGPA's reusable aggressor buffer (the
	// DRAM module does not retain it past the call).
	aggScratch []dram.RowRef
	// batchRefs/batchOps are HammerBatchGPA's reusable translation
	// buffers.
	batchRefs []dram.RowRef
	batchOps  []dram.HammerOp

	destroyed bool
}

// backingMT returns the migration type of the VM's memory: pinned
// MIGRATE_UNMOVABLE when a VFIO device is assigned (Section 2.6),
// ordinary MIGRATE_MOVABLE otherwise — the configuration the paper's
// Section 6 balloon analysis assumes.
func (vm *VM) backingMT() memdef.MigrateType {
	if vm.cfg.VFIOGroups > 0 {
		return memdef.MigrateUnmovable
	}
	return memdef.MigrateMovable
}

// tableAllocator provides EPT/IOPT table pages from the host buddy
// allocator as order-0 MIGRATE_UNMOVABLE pages through the PCP — the
// allocation path Page Steering aims at.
type tableAllocator struct {
	h     *Host
	vm    *VM
	count int
}

func (a *tableAllocator) AllocTable() (memdef.PFN, error) {
	p, err := a.h.Buddy.AllocPage(memdef.MigrateUnmovable)
	if err != nil {
		return 0, err
	}
	a.h.Mem.ZeroPage(p)
	a.h.registerTable(p, a.vm)
	a.count++
	return p, nil
}

func (a *tableAllocator) FreeTable(p memdef.PFN) {
	a.h.unregisterTable(p)
	a.h.Buddy.FreePage(p, memdef.MigrateUnmovable)
	a.count--
}

// CreateVM builds and boots a guest: allocates its EPT, creates the
// virtio-mem device covering all guest memory, plugs every sub-block
// (allocating THP-backed host memory pinned unmovable for VFIO), and
// attaches the requested IOMMU groups.
func (h *Host) CreateVM(cfg VMConfig) (*VM, error) {
	if cfg.MemSize == 0 || cfg.MemSize%memdef.HugePageSize != 0 {
		return nil, fmt.Errorf("kvm: VM memory size %#x not a 2 MiB multiple", cfg.MemSize)
	}
	if cfg.IOMMUMapLimit == 0 {
		cfg.IOMMUMapLimit = viommu.DefaultMapLimit
	}
	h.vmSeq++
	vm := &VM{
		host:    h,
		cfg:     cfg,
		id:      h.vmSeq,
		backing: make(map[memdef.GPA]*chunkBacking),
		reverse: make(map[memdef.PFN]memdef.GPA),
		tlb:     make(map[memdef.GPA]tlbEntry),
	}
	vm.eptAlloc = &tableAllocator{h: h, vm: vm}
	t, err := ept.New(h.Mem, vm.eptAlloc)
	if err != nil {
		return nil, fmt.Errorf("kvm: creating EPT: %w", err)
	}
	vm.ept = t
	t.SetMetrics(h.cfg.Metrics)
	t.SetLedger(h.ledEPT)

	dev, err := virtio.NewMemDevice(0, cfg.MemSize, (*vmMemBackend)(vm), h.cfg.Quarantine)
	if err != nil {
		return nil, fmt.Errorf("kvm: creating virtio-mem: %w", err)
	}
	vm.memDev = dev
	dev.SetMetrics(h.cfg.Metrics)
	dev.SetRequestedSize(cfg.MemSize)
	for gpa := memdef.GPA(0); uint64(gpa) < cfg.MemSize; gpa += memdef.HugePageSize {
		if err := dev.Plug(gpa); err != nil {
			vm.Destroy()
			return nil, fmt.Errorf("kvm: plugging boot memory at %#x: %w", gpa, err)
		}
	}

	for i := 0; i < cfg.VFIOGroups; i++ {
		g, err := viommu.NewGroup(h.Mem, vm.eptAlloc, (*vmIOMMUBackend)(vm), cfg.IOMMUMapLimit)
		if err != nil {
			vm.Destroy()
			return nil, fmt.Errorf("kvm: creating IOMMU group %d: %w", i, err)
		}
		g.SetMetrics(h.cfg.Metrics)
		g.SetLedger(h.ledEPT)
		vm.groups = append(vm.groups, g)
	}
	h.vms[vm] = struct{}{}
	h.met.vmsCreated.Inc()
	h.cfg.Trace.Emit("vm.create",
		"memBytes", cfg.MemSize, "vfioGroups", cfg.VFIOGroups, "bootSplits", cfg.BootSplits)

	// Guest boot: executing kernel/init/service code trips the NX-
	// hugepage countermeasure across the address space.
	if cfg.BootSplits > 0 {
		chunks := int(cfg.MemSize / memdef.HugePageSize)
		stride := chunks / cfg.BootSplits
		if stride < 1 {
			stride = 1
		}
		for c := 0; c < chunks; c += stride {
			if _, err := vm.ExecGPA(memdef.GPA(c) * memdef.HugePageSize); err != nil {
				vm.Destroy()
				return nil, fmt.Errorf("kvm: boot exec at chunk %d: %w", c, err)
			}
		}
	}
	return vm, nil
}

// Host returns the host the VM runs on (host-side instrumentation).
func (vm *VM) Host() *Host { return vm.host }

// ID returns the VM's host-assigned creation-order number (1-based).
func (vm *VM) ID() int { return vm.id }

// Config returns the VM's configuration.
func (vm *VM) Config() VMConfig { return vm.cfg }

// MemDevice returns the VM's virtio-mem device, to which the guest
// kernel attaches its driver.
func (vm *VM) MemDevice() *virtio.MemDevice { return vm.memDev }

// IOMMUGroups returns the number of assigned IOMMU groups.
func (vm *VM) IOMMUGroups() int { return len(vm.groups) }

// Splits returns how many multihit hugepage splits have occurred.
func (vm *VM) Splits() int { return vm.splits }

// EPTTablePages returns the frames of the VM's EPT table pages at a
// level (1 = leaf), host instrumentation for Table 2's dump function.
func (vm *VM) EPTTablePages(level int) []memdef.PFN { return vm.ept.TablePages(level) }

// EPTPageCount returns the total EPT+IOPT table pages allocated.
func (vm *VM) EPTPageCount() int { return vm.eptAlloc.count }

func (vm *VM) flushTLB() {
	if len(vm.tlb) > 0 {
		vm.tlb = make(map[memdef.GPA]tlbEntry)
	}
}

// vmMemBackend implements virtio.MemBackend on the VM.
type vmMemBackend VM

// PlugRange allocates pinned (MIGRATE_UNMOVABLE, Section 2.6) host
// backing for a guest range and maps it in the EPT. With THP the
// backing is one order-9 block mapped as a 2 MiB leaf — non-executable
// when the multihit countermeasure is on.
func (b *vmMemBackend) PlugRange(gpa memdef.GPA, size uint64) error {
	vm := (*VM)(b)
	h := vm.host
	if size != memdef.HugePageSize {
		return fmt.Errorf("kvm: plug size %#x unsupported", size)
	}
	if h.cfg.THP {
		base, err := h.Buddy.Alloc(memdef.HugeOrder, vm.backingMT())
		if err != nil {
			return fmt.Errorf("kvm: backing alloc: %w", err)
		}
		perm := ept.PermRWX
		if h.cfg.NXHugepages {
			perm = ept.PermRW
		}
		if err := vm.ept.Map2M(uint64(gpa), base, perm); err != nil {
			h.Buddy.Free(base, memdef.HugeOrder, vm.backingMT())
			return fmt.Errorf("kvm: mapping chunk %#x: %w", gpa, err)
		}
		for i := memdef.PFN(0); i < memdef.PagesPerHuge; i++ {
			h.Mem.ZeroPage(base + i)
		}
		vm.backing[gpa] = &chunkBacking{huge: true, frames: []memdef.PFN{base}}
		vm.reverse[base] = gpa
		vm.scanDirty = true
		vm.flushChunk(gpa)
		return nil
	}
	// THP disabled: scatter 4 KiB pages, 4 KiB mappings (executable:
	// the 4 KiB iTLB is not vulnerable, Section 4.2.3).
	frames := make([]memdef.PFN, memdef.PagesPerHuge)
	for i := range frames {
		p, err := h.Buddy.AllocPage(vm.backingMT())
		if err != nil {
			return fmt.Errorf("kvm: backing alloc: %w", err)
		}
		h.Mem.ZeroPage(p)
		if err := vm.ept.Map4K(uint64(gpa)+uint64(i)*memdef.PageSize, p, ept.PermRWX); err != nil {
			return fmt.Errorf("kvm: mapping page: %w", err)
		}
		frames[i] = p
		vm.reverse[p] = gpa
	}
	vm.backing[gpa] = &chunkBacking{frames: frames}
	vm.scanDirty = true
	vm.flushChunk(gpa)
	return nil
}

// UnplugRange releases a guest range: unmaps it from the EPT and
// returns the backing to the host buddy allocator — with THP, as one
// order-9 MIGRATE_UNMOVABLE free block, the state Page Steering needs
// (Section 4.2.2). The released block is logged for the Table 2
// instrumentation.
func (b *vmMemBackend) UnplugRange(gpa memdef.GPA, size uint64) error {
	vm := (*VM)(b)
	h := vm.host
	if size != memdef.HugePageSize {
		return fmt.Errorf("kvm: unplug size %#x unsupported", size)
	}
	cb, ok := vm.backing[gpa]
	if !ok {
		return fmt.Errorf("kvm: unplug of unbacked chunk %#x", gpa)
	}
	h.Clock.Advance(simtime.VirtioUnplug)
	if cb.huge {
		base := cb.frames[0]
		// The chunk may have been split by the multihit
		// countermeasure. The first Unmap removes a 2 MiB leaf whole;
		// on a split chunk it removes only the first 4 KiB entry and
		// the loop clears the rest (harmless no-ops otherwise). The
		// backing frames are the contiguous order-9 block either way,
		// which madvise(DONTNEED) returns whole to the buddy system.
		for i := 0; i < memdef.PagesPerHuge; i++ {
			_, _ = vm.ept.Unmap(uint64(gpa) + uint64(i)*memdef.PageSize)
		}
		delete(vm.reverse, base)
		h.Buddy.Free(base, memdef.HugeOrder, vm.backingMT())
		h.releasedLog = append(h.releasedLog, base)
		h.cfg.Trace.Emit("virtio.unplug", "gpa", fmt.Sprintf("%#x", gpa), "basePFN", uint64(base))
	} else {
		for i, p := range cb.frames {
			if p == reclaimedFrame {
				continue // already given up via the balloon
			}
			_, _ = vm.ept.Unmap(uint64(gpa) + uint64(i)*memdef.PageSize)
			delete(vm.reverse, p)
			h.Buddy.FreePage(p, vm.backingMT())
		}
	}
	delete(vm.backing, gpa)
	vm.scanDirty = true
	vm.flushChunk(gpa)
	return nil
}

func (vm *VM) flushChunk(gpa memdef.GPA) { delete(vm.tlb, memdef.HugeBase(gpa)) }

// vmIOMMUBackend implements viommu.Backend on the VM.
type vmIOMMUBackend VM

// ResolveGPA pins and resolves the host frame backing a guest page
// for DMA mapping.
func (b *vmIOMMUBackend) ResolveGPA(gpa memdef.GPA) (memdef.PFN, error) {
	vm := (*VM)(b)
	hpa, err := vm.translate(gpa)
	if err != nil {
		return 0, err
	}
	return memdef.PFNOf(hpa), nil
}

// translate resolves a guest physical address to a host physical
// address through the VM's EPT, honouring whatever the table words
// currently contain. Split chunks re-read their leaf entry on every
// access, so EPTE corruption and attacker writes to stolen EPT pages
// take effect immediately.
func (vm *VM) translate(gpa memdef.GPA) (memdef.HPA, error) {
	if vm.host.crashed {
		return 0, ErrHostDown
	}
	e, err := vm.chunkEntry(gpa)
	if err != nil {
		return 0, err
	}
	return vm.resolveInChunk(e, gpa)
}

// chunkEntry resolves (and caches) the location of the translation
// structure for the 2 MiB chunk containing gpa.
func (vm *VM) chunkEntry(gpa memdef.GPA) (tlbEntry, error) {
	chunk := memdef.HugeBase(gpa)
	e, ok := vm.tlb[chunk]
	if !ok {
		tr, err := vm.ept.Translate(uint64(gpa))
		if err != nil {
			switch {
			case errors.Is(err, ept.ErrNotMapped):
				return tlbEntry{}, ErrFault
			case errors.Is(err, ept.ErrMisconfigured):
				return tlbEntry{}, ErrMachineCheck
			default:
				return tlbEntry{}, err
			}
		}
		if tr.Level == 2 {
			e = tlbEntry{huge: true, basePFN: memdef.PFNOf(tr.HPA - memdef.HPA(gpa-chunk))}
		} else {
			e = tlbEntry{leafTable: memdef.PFNOf(tr.EntryAddr)}
		}
		vm.tlb[chunk] = e
	}
	return e, nil
}

// resolveInChunk finishes a translation below an already-resolved
// chunk entry. Split chunks re-read their leaf EPTE from memory here,
// on every access.
func (vm *VM) resolveInChunk(e tlbEntry, gpa memdef.GPA) (memdef.HPA, error) {
	if e.huge {
		return e.basePFN.HPAOf() + memdef.HPA(gpa-memdef.HugeBase(gpa)), nil
	}
	idx := int(uint64(gpa)>>memdef.PageShift) & (memdef.EntriesPerTable - 1)
	entry := ept.Entry(vm.host.Mem.PageWord(e.leafTable, idx))
	if !entry.Present() {
		return 0, ErrFault
	}
	hpa := entry.PFN().HPAOf() + memdef.HPA(memdef.PageOffset(gpa))
	if uint64(memdef.PFNOf(hpa)) >= uint64(vm.host.Mem.Frames()) {
		return 0, ErrMachineCheck
	}
	return hpa, nil
}

// ReadGPA64 reads a 64-bit word at an 8-byte-aligned guest physical
// address.
func (vm *VM) ReadGPA64(gpa memdef.GPA) (uint64, error) {
	hpa, err := vm.translate(gpa)
	if err != nil {
		return 0, err
	}
	return vm.host.Mem.Word(hpa), nil
}

// WriteGPA64 writes a 64-bit word at an 8-byte-aligned guest physical
// address. If the write lands in a live table frame (because a flip
// redirected the mapping there), the affected VM's cached translations
// are invalidated — the mechanism that makes stolen EPT pages
// immediately effective.
func (vm *VM) WriteGPA64(gpa memdef.GPA, v uint64) error {
	hpa, err := vm.translate(gpa)
	if err != nil {
		return err
	}
	vm.host.Mem.SetWord(hpa, v)
	vm.host.noteWrite(hpa)
	return nil
}

// FillPageGPA fills the 4 KiB guest page at gpa with a repeated word,
// charging one page-write of virtual time.
func (vm *VM) FillPageGPA(gpa memdef.GPA, word uint64) error {
	hpa, err := vm.translate(gpa)
	if err != nil {
		return err
	}
	vm.host.Clock.Advance(simtime.PageWrite)
	p := memdef.PFNOf(hpa)
	vm.host.Mem.FillWord(p, word)
	vm.host.noteWrite(hpa)
	return nil
}

// FillPagesGPA fills count consecutive 4 KiB guest pages starting at
// the page-aligned gpa, page k with wordAt(k). Observationally
// identical to count FillPageGPA calls — errors surface at the same
// page, each page charges one page-write before its contents change,
// and a write landing in a live table frame invalidates cached
// translations before the next page resolves — but the chunk-level
// translation is looked up once per 2 MiB run instead of per page.
func (vm *VM) FillPagesGPA(gpa memdef.GPA, count int, wordAt func(k int) uint64) error {
	h := vm.host
	k := 0
	for k < count {
		if h.crashed {
			return ErrHostDown
		}
		e, err := vm.chunkEntry(gpa)
		if err != nil {
			return err
		}
		chunk := memdef.HugeBase(gpa)
		n := int((uint64(chunk) + memdef.HugePageSize - uint64(gpa)) / memdef.PageSize)
		if n > count-k {
			n = count - k
		}
		flushed := false
		for j := 0; j < n && !flushed; j++ {
			hpa, err := vm.resolveInChunk(e, gpa)
			if err != nil {
				return err
			}
			h.Clock.Advance(simtime.PageWrite)
			h.Mem.FillWord(memdef.PFNOf(hpa), wordAt(k))
			// A fill that hits a live table frame flushes cached
			// translations; drop the chunk entry and re-resolve.
			flushed = h.noteWrite(hpa)
			gpa += memdef.PageSize
			k++
		}
	}
	return nil
}

// PageUniformGPA reports whether the guest page at gpa holds one
// repeated word and which, charging one page-scan of virtual time.
// Observationally it equals 512 ReadGPA64 calls.
func (vm *VM) PageUniformGPA(gpa memdef.GPA) (uint64, bool, error) {
	hpa, err := vm.translate(gpa)
	if err != nil {
		return 0, false, err
	}
	vm.host.Clock.Advance(simtime.PageScan)
	w, ok := vm.host.Mem.PageUniform(memdef.PFNOf(hpa))
	return w, ok, nil
}

// ExecGPA models the guest executing code at gpa. Under the multihit
// countermeasure, the first fetch from a non-executable hugepage traps
// to the hypervisor, which splits the hugepage into 512 executable
// 4 KiB mappings — allocating one fresh EPT leaf page in the process
// (Section 4.2.3). Returns whether a split occurred.
func (vm *VM) ExecGPA(gpa memdef.GPA) (bool, error) {
	tr, err := vm.ept.Translate(uint64(gpa))
	if err != nil {
		switch {
		case errors.Is(err, ept.ErrNotMapped):
			return false, ErrFault
		case errors.Is(err, ept.ErrMisconfigured):
			return false, ErrMachineCheck
		}
		return false, err
	}
	if tr.Perm&ept.PermExec != 0 {
		return false, nil
	}
	if tr.Level == 1 {
		// A non-executable 4 KiB mapping (e.g. from a balloon-driven
		// data split): KVM simply sets X on the small entry — the
		// 4 KiB iTLB is not affected by the erratum.
		if err := vm.ept.SetLeafPerm(uint64(gpa), tr.Perm|ept.PermExec); err != nil {
			return false, fmt.Errorf("kvm: granting exec: %w", err)
		}
		vm.flushChunk(memdef.HugeBase(gpa))
		return false, nil
	}
	if !vm.host.cfg.NXHugepages {
		return false, ErrNoExec
	}
	leaf, err := vm.ept.SplitHuge(uint64(gpa), ept.PermRWX)
	if err != nil {
		return false, fmt.Errorf("kvm: multihit split: %w", err)
	}
	vm.splits++
	vm.host.Clock.Advance(simtime.HugepageSplit)
	vm.flushChunk(memdef.HugeBase(gpa))
	vm.host.cfg.Trace.Emit("ept.split", "gpa", fmt.Sprintf("%#x", memdef.HugeBase(gpa)), "leafPFN", uint64(leaf))
	return true, nil
}

// HammerGPA performs the Rowhammer access loop on two guest addresses
// for the given number of rounds: each round activates the DRAM rows
// backing both addresses. Candidate flips from the fault model are
// committed to physical memory. The guest learns nothing from the
// call itself — it must scan memory to find flips.
func (vm *VM) HammerGPA(a, b memdef.GPA, rounds int) error {
	return vm.HammerManyGPA([]memdef.GPA{a, b}, rounds)
}

// HammerManyGPA hammers an arbitrary aggressor set, the TRRespass-
// style many-sided access loop used to overwhelm in-DRAM TRR trackers.
func (vm *VM) HammerManyGPA(addrs []memdef.GPA, rounds int) error {
	geo := vm.host.DRAM.Geo
	op := dram.HammerOp{Rounds: rounds, Aggressors: vm.aggScratch[:0]}
	for _, a := range addrs {
		hpa, err := vm.translate(a)
		if err != nil {
			return err
		}
		op.Aggressors = append(op.Aggressors, dram.RowRef{
			Bank: geo.Bank(hpa), Row: geo.Row(hpa),
		})
	}
	vm.aggScratch = op.Aggressors[:0]
	vm.host.met.hammerOps.Inc()
	vm.host.met.hammerRounds.Add(uint64(rounds))
	vm.host.met.hammerActs.Add(uint64(op.Activations()))
	vm.host.Clock.Charge(op.Activations(), simtime.RowActivation)
	vm.host.applyFlips(vm.host.DRAM.Hammer(op))
	return nil
}

// HammerBatchOp is one hammer operation on the batched submission
// path, named by guest physical addresses.
type HammerBatchOp struct {
	Aggressors []memdef.GPA
	Rounds     int
}

// HammerBatchGPA submits a batch of hammer operations to the DRAM
// fault model's batched pipeline. Results — flips applied, metrics,
// sim-clock charges, forensics lineage — are identical to submitting
// the ops through HammerManyGPA one at a time, with two narrow,
// loudly-handled exceptions inherent to eager translation:
//
//   - every op's aggressors are translated up front, so an address
//     error surfaces before any op runs instead of after the earlier
//     ops completed;
//
//   - if a mid-batch flip lands in a live translation-table frame,
//     the remaining ops' pre-translated rows are re-checked against a
//     fresh translation and the batch aborts with an explicit
//     divergence error if any moved (sequential submission would
//     silently hammer the new rows).
//
// A host crash (ECC machine check) mid-batch aborts the remaining
// ops with ErrHostDown, exactly where sequential submission's next
// translate would have failed.
func (vm *VM) HammerBatchGPA(batch []HammerBatchOp) error {
	h := vm.host
	geo := h.DRAM.Geo
	refs := vm.batchRefs[:0]
	dops := vm.batchOps[:0]
	for _, b := range batch {
		off := len(refs)
		for _, a := range b.Aggressors {
			hpa, err := vm.translate(a)
			if err != nil {
				return err
			}
			refs = append(refs, dram.RowRef{Bank: geo.Bank(hpa), Row: geo.Row(hpa)})
		}
		dops = append(dops, dram.HammerOp{
			Aggressors: refs[off:len(refs):len(refs)],
			Rounds:     b.Rounds,
		})
	}
	vm.batchRefs, vm.batchOps = refs, dops
	pre := func(i int) {
		h.met.hammerOps.Inc()
		h.met.hammerRounds.Add(uint64(dops[i].Rounds))
		h.met.hammerActs.Add(uint64(dops[i].Activations()))
		h.Clock.Charge(dops[i].Activations(), simtime.RowActivation)
	}
	deliver := func(i int, flips []dram.CandidateFlip) error {
		applied := h.applyFlips(flips)
		if h.crashed && i < len(dops)-1 {
			return ErrHostDown
		}
		if applied > 0 && i < len(dops)-1 && h.flipsHitTables(flips) {
			if err := vm.verifyBatchTranslations(batch, dops, i+1); err != nil {
				return err
			}
		}
		return nil
	}
	return h.DRAM.HammerBatchFunc(dops, pre, deliver)
}

// verifyBatchTranslations re-translates the remaining ops' aggressors
// after a flip corrupted a live table frame, comparing against the
// batch's eager translation. Any movement means the batch can no
// longer reproduce sequential submission and must abort.
func (vm *VM) verifyBatchTranslations(batch []HammerBatchOp, dops []dram.HammerOp, from int) error {
	geo := vm.host.DRAM.Geo
	for i := from; i < len(batch); i++ {
		for j, a := range batch[i].Aggressors {
			hpa, err := vm.translate(a)
			if err != nil {
				return fmt.Errorf("kvm: hammer batch diverged at op %d (%#x): %w", i, uint64(a), err)
			}
			got := dram.RowRef{Bank: geo.Bank(hpa), Row: geo.Row(hpa)}
			if got != dops[i].Aggressors[j] {
				return fmt.Errorf("kvm: hammer batch diverged at op %d: aggressor %#x translation moved", i, uint64(a))
			}
		}
	}
	return nil
}

// MapDMA creates a vIOMMU mapping in the given group from iova to the
// guest page at gpa, consuming host IOPT pages as needed.
func (vm *VM) MapDMA(group int, iova memdef.IOVA, gpa memdef.GPA) error {
	if group < 0 || group >= len(vm.groups) {
		return fmt.Errorf("kvm: no IOMMU group %d", group)
	}
	vm.host.Clock.Advance(simtime.IOVAMap)
	return vm.groups[group].Map(iova, gpa)
}

// GroupMappings returns the live mapping count of an IOMMU group.
func (vm *VM) GroupMappings(group int) int { return vm.groups[group].Mappings() }

// HypercallGPAToHPA is the debug hypercall the paper adds for the
// Section 5.3.2 experiment, letting the (experimental) guest reuse
// profiling results across VM respawns. It is not available to the
// end-to-end attacker.
func (vm *VM) HypercallGPAToHPA(gpa memdef.GPA) (memdef.HPA, error) {
	vm.host.Clock.Advance(simtime.Hypercall)
	return vm.translate(gpa)
}

// TriggerMultihitDoS models a malicious guest exercising the iTLB
// Multihit erratum (Section 4.2.3): it loads a 2 MiB iTLB entry for
// one of its executable hugepages and then changes the page size under
// it, leaving a stale hugepage translation alongside fresh 4 KiB ones.
// On an affected CPU without the NX-hugepage countermeasure this
// machine-checks the host — the denial of service the countermeasure
// (which HyperHammer then exploits) was deployed to stop. It returns
// whether the host crashed.
func (vm *VM) TriggerMultihitDoS(gpa memdef.GPA) (bool, error) {
	if vm.host.crashed {
		return true, ErrHostDown
	}
	tr, err := vm.ept.Translate(uint64(memdef.HugeBase(gpa)))
	if err != nil {
		return false, ErrFault
	}
	if tr.Level != 2 {
		return false, nil // already 4 KiB-mapped; no hugepage iTLB entry
	}
	if tr.Perm&ept.PermExec == 0 {
		// The countermeasure: hugepages are never executable, so the
		// 2 MiB iTLB entry that the erratum needs is never created.
		return false, nil
	}
	if !vm.host.cfg.MultihitBugPresent {
		return false, nil // unaffected CPU
	}
	// Stale 2 MiB iTLB entry + concurrent 4 KiB translation: machine
	// check, host down.
	vm.host.crashed = true
	vm.host.met.machineChecks.Inc()
	vm.host.cfg.Trace.Emit("host.machinecheck", "cause", "itlb-multihit")
	return true, nil
}

// Destroy tears the VM down, returning all backing memory, EPT and
// IOPT pages to the host.
func (vm *VM) Destroy() {
	if vm.destroyed {
		return
	}
	vm.destroyed = true
	// Teardown order mirrors KVM: the MMU (EPT and IOPT table pages)
	// is destroyed before the guest's memory is released back to the
	// kernel. The order is visible in the host's free-list LIFO
	// structure, and therefore in where a respawned VM's memory comes
	// from.
	for _, g := range vm.groups {
		g.Destroy()
	}
	vm.groups = nil
	vm.ept.Destroy()
	// Free backing in address order so the host allocator ends up in
	// a deterministic state regardless of map iteration order.
	chunks := make([]memdef.GPA, 0, len(vm.backing))
	for gpa := range vm.backing {
		chunks = append(chunks, gpa)
	}
	sort.Slice(chunks, func(i, j int) bool { return chunks[i] < chunks[j] })
	for _, gpa := range chunks {
		cb := vm.backing[gpa]
		if cb.huge {
			vm.host.Buddy.Free(cb.frames[0], memdef.HugeOrder, vm.backingMT())
		} else {
			for _, p := range cb.frames {
				if p == reclaimedFrame {
					continue
				}
				vm.host.Buddy.FreePage(p, vm.backingMT())
			}
		}
		delete(vm.backing, gpa)
	}
	for _, p := range vm.netBuffers {
		vm.host.Buddy.FreePage(p, memdef.MigrateUnmovable)
	}
	vm.netBuffers = nil
	vm.reverse = nil
	delete(vm.host.vms, vm)
	vm.host.met.vmsDestroyed.Inc()
	vm.host.cfg.Trace.Emit("vm.destroy", "memBytes", vm.cfg.MemSize)
}
