package kvm

import (
	"testing"
	"time"

	"hyperhammer/internal/memdef"
	"hyperhammer/internal/metrics"
	"hyperhammer/internal/obs"
	"hyperhammer/internal/trace"
)

// TestHostBootArmsObsPlane verifies NewHost wires a configured plane:
// the sampler ticks on the host clock and host trace events land on
// the plane's bus.
func TestHostBootArmsObsPlane(t *testing.T) {
	reg := metrics.New()
	rec := trace.New(nil, 0)
	plane := obs.NewPlane(reg, obs.Config{SampleEvery: time.Second})
	sub := plane.Bus().Subscribe(256)
	defer sub.Cancel()

	cfg := testHostConfig()
	cfg.Metrics = reg
	cfg.Trace = rec
	cfg.Obs = plane
	h := newTestHost(t, cfg)

	// Boot alone produced the anchor sample and the host.boot event.
	if plane.Store().Samples() == 0 {
		t.Fatal("no anchor sample at boot")
	}
	seenBoot := false
	for len(sub.Events()) > 0 {
		if ev := <-sub.Events(); ev.Kind == "host.boot" {
			seenBoot = true
		}
	}
	if !seenBoot {
		t.Error("host.boot never reached the bus")
	}

	// Activity that advances the simulated clock grows the series.
	before := plane.Store().Samples()
	vm := newTestVM(t, h, 64*memdef.MiB)
	h.Clock.Advance(3 * time.Second)
	vm.Destroy()
	if after := plane.Store().Samples(); after <= before {
		t.Errorf("samples stuck at %d while sim time advanced", after)
	}
	series := plane.Store().Series("")
	if len(series) == 0 {
		t.Fatal("no series recorded from host instrumentation")
	}
	grew := false
	for _, sd := range series {
		if len(sd.Points) >= 2 {
			grew = true
			break
		}
	}
	if !grew {
		t.Fatalf("no series has >= 2 points: %+v", series)
	}
}
