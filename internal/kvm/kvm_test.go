package kvm

import (
	"errors"
	"testing"

	"hyperhammer/internal/dram"
	"hyperhammer/internal/ept"
	"hyperhammer/internal/memdef"
	"hyperhammer/internal/virtio"
)

// testGeometry is a small (256 MiB) machine so tests stay fast; the
// bank function reuses the i3's low-bit structure.
func testGeometry() *dram.Geometry {
	return dram.MustGeometry(dram.Geometry{
		Name: "test-256M",
		Size: 256 * memdef.MiB,
		BankMasks: []uint64{
			1<<17 | 1<<21,
			1<<16 | 1<<20,
			1<<15 | 1<<19,
			1<<14 | 1<<18,
			1<<6 | 1<<13,
		},
		RowShift: 18,
		RowBits:  10,
	})
}

func testHostConfig() Config {
	return Config{
		Geometry:       testGeometry(),
		Fault:          dram.S1FaultModel(7),
		THP:            true,
		NXHugepages:    true,
		BootNoisePages: 500,
		Seed:           7,
	}
}

func newTestHost(t *testing.T, cfg Config) *Host {
	t.Helper()
	h, err := NewHost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func newTestVM(t *testing.T, h *Host, memSize uint64) *VM {
	t.Helper()
	vm, err := h.CreateVM(VMConfig{MemSize: memSize, VFIOGroups: 1})
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

func TestHostBootNoise(t *testing.T) {
	h := newTestHost(t, testHostConfig())
	noise := h.NoisePages()
	if noise < 500 || noise > 1500 {
		t.Errorf("boot noise = %d, want near 500", noise)
	}
}

func TestVMMemoryReadWrite(t *testing.T) {
	h := newTestHost(t, testHostConfig())
	vm := newTestVM(t, h, 32*memdef.MiB)
	if v, err := vm.ReadGPA64(0x100000); err != nil || v != 0 {
		t.Fatalf("fresh memory read = %#x, %v", v, err)
	}
	if err := vm.WriteGPA64(0x100000, 0xFEED); err != nil {
		t.Fatal(err)
	}
	if v, _ := vm.ReadGPA64(0x100000); v != 0xFEED {
		t.Errorf("read back %#x", v)
	}
	if _, err := vm.ReadGPA64(33 * memdef.MiB); !errors.Is(err, ErrFault) {
		t.Errorf("out-of-VM read: %v", err)
	}
}

// With host THP, a guest physical address and its backing host
// physical address agree on the low 21 bits — the property profiling
// relies on (Section 4.1).
func TestTHPPreservesLow21Bits(t *testing.T) {
	h := newTestHost(t, testHostConfig())
	vm := newTestVM(t, h, 64*memdef.MiB)
	for gpa := memdef.GPA(0); gpa < 64*memdef.MiB; gpa += 3*memdef.MiB + 0x3008 {
		hpa, err := vm.HypercallGPAToHPA(gpa)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(hpa)&(memdef.HugePageSize-1) != uint64(gpa)&(memdef.HugePageSize-1) {
			t.Fatalf("gpa %#x -> hpa %#x: low 21 bits differ", gpa, hpa)
		}
	}
}

func TestTHPOffBreaksLow21Bits(t *testing.T) {
	cfg := testHostConfig()
	cfg.THP = false
	h := newTestHost(t, cfg)
	vm := newTestVM(t, h, 8*memdef.MiB)
	mismatches := 0
	for gpa := memdef.GPA(0); gpa < 8*memdef.MiB; gpa += memdef.PageSize * 7 {
		hpa, err := vm.HypercallGPAToHPA(gpa)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(hpa)&(memdef.HugePageSize-1) != uint64(gpa)&(memdef.HugePageSize-1) {
			mismatches++
		}
	}
	if mismatches == 0 {
		t.Error("THP-off backing still preserved all low-21-bit mappings")
	}
}

func TestExecTriggersMultihitSplit(t *testing.T) {
	h := newTestHost(t, testHostConfig())
	vm := newTestVM(t, h, 16*memdef.MiB)
	before := vm.EPTPageCount()
	split, err := vm.ExecGPA(4*memdef.MiB + 0x100)
	if err != nil {
		t.Fatal(err)
	}
	if !split {
		t.Fatal("first exec did not split")
	}
	if vm.Splits() != 1 {
		t.Errorf("Splits = %d", vm.Splits())
	}
	if got := vm.EPTPageCount() - before; got != 1 {
		t.Errorf("split allocated %d EPT pages, want 1", got)
	}
	// Second exec in the same chunk: already executable, no split.
	split, err = vm.ExecGPA(4*memdef.MiB + 0x5000)
	if err != nil || split {
		t.Errorf("second exec: split=%v err=%v", split, err)
	}
	// Memory contents survive the split.
	if err := vm.WriteGPA64(4*memdef.MiB+0x2000, 77); err != nil {
		t.Fatal(err)
	}
	if v, _ := vm.ReadGPA64(4*memdef.MiB + 0x2000); v != 77 {
		t.Errorf("post-split read = %d", v)
	}
}

func TestExecWithoutMitigationDoesNotSplit(t *testing.T) {
	cfg := testHostConfig()
	cfg.NXHugepages = false
	h := newTestHost(t, cfg)
	vm := newTestVM(t, h, 8*memdef.MiB)
	split, err := vm.ExecGPA(2 * memdef.MiB)
	if err != nil || split {
		t.Errorf("exec on RWX hugepage: split=%v err=%v", split, err)
	}
	if vm.EPTPageCount() != vm.eptAlloc.count || vm.Splits() != 0 {
		t.Errorf("unexpected split activity")
	}
}

func TestVoluntaryUnplugReleasesOrder9Unmovable(t *testing.T) {
	h := newTestHost(t, testHostConfig())
	vm := newTestVM(t, h, 32*memdef.MiB)
	drv := virtio.NewGuestDriver(vm.MemDevice())
	drv.SuppressAutoPlug = true

	target := memdef.GPA(10 * memdef.MiB)
	hpa, _ := vm.HypercallGPAToHPA(target)
	wantBase := memdef.PFNOf(hpa) &^ (memdef.PagesPerHuge - 1)

	before9 := h.Buddy.FreeBlocks(memdef.MigrateUnmovable, memdef.HugeOrder)
	if err := drv.UnplugSubBlock(target); err != nil {
		t.Fatal(err)
	}
	log := h.ReleasedBlockLog()
	if len(log) != 1 || log[0] != wantBase {
		t.Errorf("released log = %v, want [%d]", log, wantBase)
	}
	after9 := h.Buddy.FreeBlocks(memdef.MigrateUnmovable, memdef.HugeOrder)
	if after9 != before9+1 {
		t.Errorf("order-9 unmovable blocks %d -> %d, want +1", before9, after9)
	}
	// The guest can no longer touch the released range.
	if _, err := vm.ReadGPA64(target); !errors.Is(err, ErrFault) {
		t.Errorf("read of unplugged memory: %v", err)
	}
}

func TestHammerProducesAttributableFlips(t *testing.T) {
	cfg := testHostConfig()
	// Dense, always-stable cells so the test is deterministic.
	cfg.Fault = dram.FaultModelConfig{
		Seed: 3, CellsPerRow: 2.0,
		ThresholdMin: 50_000, ThresholdMax: 100_000,
		StableFraction: 1.0, FlakyP: 1.0,
		NeighborWeight1: 1.0, NeighborWeight2: 0.25,
	}
	h := newTestHost(t, cfg)
	vm := newTestVM(t, h, 64*memdef.MiB)
	// Fill all guest memory with ones so both flip directions apply.
	for gpa := memdef.GPA(0); gpa < 64*memdef.MiB; gpa += memdef.PageSize {
		if err := vm.FillPageGPA(gpa, ^uint64(0)); err != nil {
			t.Fatal(err)
		}
	}
	cursor := 0
	var flips []GuestFlip
	// Hammer pairs of consecutive-row same-bank addresses across the
	// guest space until something flips. THP keeps the low 21 bits, so
	// same-bank offsets picked once hold for every chunk.
	geo := h.DRAM.Geo
	offA := 6 * geo.RowSpan()
	offB := 7 * geo.RowSpan()
	for ; offB < 8*geo.RowSpan(); offB += 64 {
		if geo.Bank(memdef.HPA(offA)) == geo.Bank(memdef.HPA(offB)) {
			break
		}
	}
	for gpa := memdef.GPA(0); gpa < 60*memdef.MiB && len(flips) == 0; gpa += 2 * memdef.MiB {
		a := gpa + memdef.GPA(offA)
		b := gpa + memdef.GPA(offB)
		if err := vm.HammerGPA(a, b, 250_000); err != nil {
			t.Fatal(err)
		}
		flips, cursor = vm.ContentFlipsSince(cursor)
	}
	if len(flips) == 0 {
		t.Fatal("no flips despite dense fault model")
	}
	// Every reported flip must be observable at its guest address:
	// the word there differs from the fill pattern in exactly the
	// direction reported.
	for _, f := range flips {
		w, err := vm.ReadGPA64(f.GPA &^ 7)
		if err != nil {
			t.Fatalf("reading flip at %#x: %v", f.GPA, err)
		}
		bitPos := (uint(f.GPA) & 7 * 8) + f.Bit
		bit := (w >> bitPos) & 1
		if f.Direction == dram.FlipOneToZero && bit != 0 {
			t.Errorf("flip at %#x reported 1->0 but bit is %d", f.GPA, bit)
		}
	}
	if h.Clock.Now() == 0 {
		t.Error("hammering charged no virtual time")
	}
}

func TestChangedMappingsDetectsEPTECorruption(t *testing.T) {
	h := newTestHost(t, testHostConfig())
	vm := newTestVM(t, h, 16*memdef.MiB)
	if n := len(vm.ChangedMappings()); n != 0 {
		t.Fatalf("fresh VM reports %d changed mappings", n)
	}
	// Split a chunk so it has a leaf table, then corrupt one entry the
	// way a Rowhammer flip would.
	if _, err := vm.ExecGPA(6 * memdef.MiB); err != nil {
		t.Fatal(err)
	}
	leaves := vm.EPTTablePages(1)
	if len(leaves) != 1 {
		t.Fatalf("leaf tables = %d", len(leaves))
	}
	entryAddr := leaves[0].HPAOf() + 17*8 // entry for page index 17
	// Flip PFN bit 14 of the entry (byte 1, bit 6) in whichever
	// direction the current content allows, as a unidirectional
	// Rowhammer cell would.
	cur := (h.Mem.Word(entryAddr) >> 14) & 1
	if !h.Mem.FlipBit(entryAddr+1, 6, cur == 1) {
		t.Fatal("PFN flip failed")
	}
	changes := vm.ChangedMappings()
	if len(changes) != 1 {
		t.Fatalf("changed mappings = %+v, want 1", changes)
	}
	want := memdef.GPA(6*memdef.MiB + 17*memdef.PageSize)
	if changes[0].GPA != want || changes[0].Faulted {
		t.Errorf("change = %+v, want GPA %#x", changes[0], want)
	}
}

// The end state of the attack: an EPTE redirected onto a leaf EPT
// table lets the guest rewrite its own translations and reach
// arbitrary host memory.
func TestStolenEPTPageGrantsArbitraryAccess(t *testing.T) {
	h := newTestHost(t, testHostConfig())
	vm := newTestVM(t, h, 16*memdef.MiB)
	// Split two chunks: chunk A (the probe window) and chunk B.
	if _, err := vm.ExecGPA(2 * memdef.MiB); err != nil {
		t.Fatal(err)
	}
	if _, err := vm.ExecGPA(4 * memdef.MiB); err != nil {
		t.Fatal(err)
	}
	leaves := vm.EPTTablePages(1)
	if len(leaves) != 2 {
		t.Fatalf("leaf tables = %d", len(leaves))
	}
	// Identify which leaf serves chunk A by checking its first entry.
	hpaA, _ := vm.HypercallGPAToHPA(2 * memdef.MiB)
	var leafA, leafB memdef.PFN
	if ept.Entry(h.Mem.PageWord(leaves[0], 0)).PFN() == memdef.PFNOf(hpaA) {
		leafA, leafB = leaves[0], leaves[1]
	} else {
		leafA, leafB = leaves[1], leaves[0]
	}
	_ = leafA
	// Simulate the successful flip: page 5 of chunk A now maps leafB.
	probeGPA := memdef.GPA(2*memdef.MiB + 5*memdef.PageSize)
	tr, err := vm.ept.Translate(uint64(probeGPA))
	if err != nil {
		t.Fatal(err)
	}
	h.Mem.SetWord(tr.EntryAddr, uint64(ept.NewEntry(leafB, ept.PermRW, false)))
	vm.flushTLB()

	// The guest now reads EPT entries through its own address space.
	w, err := vm.ReadGPA64(probeGPA)
	if err != nil {
		t.Fatal(err)
	}
	if !ept.Entry(w).Present() {
		t.Fatal("stolen page does not look like an EPT page")
	}
	// Rewrite entry 9 of chunk B's leaf to point at a host-owned
	// secret page outside the VM.
	secret := memdef.PFN(h.Mem.Frames() - 10)
	h.Mem.FillWord(secret, 0x5EC12E7)
	if err := vm.WriteGPA64(probeGPA+9*8, uint64(ept.NewEntry(secret, ept.PermRW, false))); err != nil {
		t.Fatal(err)
	}
	// Chunk B's page 9 now maps the secret host page: VM escape.
	escapeGPA := memdef.GPA(4*memdef.MiB + 9*memdef.PageSize)
	v, err := vm.ReadGPA64(escapeGPA)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x5EC12E7 {
		t.Errorf("escape read = %#x, want secret", v)
	}
	// And writes reach host memory too.
	if err := vm.WriteGPA64(escapeGPA+8, 0xDEAD); err != nil {
		t.Fatal(err)
	}
	if got := h.Mem.Word(secret.HPAOf() + 8); got != 0xDEAD {
		t.Errorf("host page word = %#x after guest write", got)
	}
}

func TestQuarantineBlocksVoluntaryUnplug(t *testing.T) {
	cfg := testHostConfig()
	cfg.Quarantine = func(delta int64, current, requested uint64) error {
		have := int64(requested) - int64(current)
		if delta*have < 0 || abs(delta) > abs(have) {
			return errors.New("suspicious resize pattern")
		}
		return nil
	}
	h := newTestHost(t, cfg)
	vm := newTestVM(t, h, 16*memdef.MiB)
	drv := virtio.NewGuestDriver(vm.MemDevice())
	if err := drv.UnplugSubBlock(4 * memdef.MiB); !errors.Is(err, virtio.ErrNACK) {
		t.Errorf("quarantined unplug: %v", err)
	}
	if len(h.ReleasedBlockLog()) != 0 {
		t.Error("quarantine leaked a release")
	}
}

func abs(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestDestroyReturnsAllMemory(t *testing.T) {
	h := newTestHost(t, testHostConfig())
	before := h.Buddy.FreePages()
	vm := newTestVM(t, h, 32*memdef.MiB)
	for i := 0; i < 4; i++ {
		if _, err := vm.ExecGPA(memdef.GPA(i) * 2 * memdef.MiB); err != nil {
			t.Fatal(err)
		}
	}
	if err := vm.MapDMA(0, 0x1_0000_0000, 0); err != nil {
		t.Fatal(err)
	}
	vm.Destroy()
	vm.Destroy() // idempotent
	if after := h.Buddy.FreePages(); after != before {
		t.Errorf("FreePages %d -> %d after destroy", before, after)
	}
	if h.VMs() != 0 {
		t.Errorf("VMs = %d", h.VMs())
	}
}

func TestEPTReuseAfterSteeringLikeSequence(t *testing.T) {
	h := newTestHost(t, testHostConfig())
	vm := newTestVM(t, h, 64*memdef.MiB)
	drv := virtio.NewGuestDriver(vm.MemDevice())
	drv.SuppressAutoPlug = true
	// Release two sub-blocks, then split many others so EPT pages get
	// allocated; some should land on released frames once the free
	// lists run low.
	if err := drv.UnplugSubBlock(10 * memdef.MiB); err != nil {
		t.Fatal(err)
	}
	if err := drv.UnplugSubBlock(20 * memdef.MiB); err != nil {
		t.Fatal(err)
	}
	for gpa := memdef.GPA(0); gpa < 64*memdef.MiB; gpa += 2 * memdef.MiB {
		if !vm.MemDevice().IsPlugged(gpa) {
			continue
		}
		if _, err := vm.ExecGPA(gpa); err != nil {
			t.Fatal(err)
		}
	}
	stats := vm.EPTReuse()
	if stats.ReleasedBlocks != 2 || stats.ReleasedPages != 1024 {
		t.Errorf("released: %+v", stats)
	}
	if stats.EPTPages != 30 {
		t.Errorf("EPTPages = %d, want 30 splits", stats.EPTPages)
	}
	if stats.RN() < 0 || stats.RN() > 1 || stats.RE() < 0 || stats.RE() > 1 {
		t.Errorf("ratios out of range: %+v", stats)
	}
}
