package kvm

import (
	"fmt"

	"hyperhammer/internal/balloon"
	"hyperhammer/internal/ept"
	"hyperhammer/internal/memdef"
	"hyperhammer/internal/simtime"
)

// reclaimedFrame marks a backing slot whose page the guest gave up
// through the balloon; the frame belongs to the host until the balloon
// deflates.
const reclaimedFrame = memdef.PFN(^uint64(0) >> 1)

// AttachBalloon adds a virtio-balloon device to the VM, the Section 6
// alternative memory-overcommit path. Balloon and virtio-mem coexist
// on real KVM; here the balloon reclaims single 4 KiB pages while
// virtio-mem works in 2 MiB sub-blocks.
func (vm *VM) AttachBalloon() *balloon.Device {
	if vm.balloon == nil {
		vm.balloon = balloon.NewDevice(vm.cfg.MemSize, (*vmBalloonBackend)(vm))
		vm.balloon.SetMetrics(vm.host.cfg.Metrics)
	}
	return vm.balloon
}

// Balloon returns the VM's balloon device, or nil.
func (vm *VM) Balloon() *balloon.Device { return vm.balloon }

// vmBalloonBackend implements balloon.Backend on the VM.
type vmBalloonBackend VM

// ReclaimPage releases the host backing of one guest page. A THP-
// backed chunk is first split — both the EPT 2 MiB leaf (allocating a
// leaf table, like any hugepage split) and the backing bookkeeping —
// exactly what madvise(DONTNEED) on one page of a THP does on a real
// host. The freed frame returns to the host buddy allocator under the
// VM's backing migration type (movable without VFIO).
func (b *vmBalloonBackend) ReclaimPage(gpa memdef.GPA) error {
	vm := (*VM)(b)
	h := vm.host
	if h.crashed {
		return ErrHostDown
	}
	chunk := memdef.HugeBase(gpa)
	cb, ok := vm.backing[chunk]
	if !ok {
		return fmt.Errorf("kvm: balloon reclaim of unbacked gpa %#x", gpa)
	}
	idx := int(uint64(gpa-chunk) / memdef.PageSize)
	if cb.huge {
		// Demote the chunk to 4 KiB bookkeeping. If the EPT mapping
		// is still a 2 MiB leaf, split it (non-exec data split: the
		// 4 KiB entries inherit the hugepage's permissions).
		if tr, err := vm.ept.Translate(uint64(chunk)); err == nil && tr.Level == 2 {
			if _, err := vm.ept.SplitHuge(uint64(chunk), tr.Perm); err != nil {
				return fmt.Errorf("kvm: balloon THP split: %w", err)
			}
			vm.splits++
			h.Clock.Advance(simtime.HugepageSplit)
		}
		base := cb.frames[0]
		frames := make([]memdef.PFN, memdef.PagesPerHuge)
		for i := range frames {
			frames[i] = base + memdef.PFN(i)
			vm.reverse[frames[i]] = chunk + memdef.GPA(i*memdef.PageSize)
		}
		delete(vm.reverse, base)
		vm.reverse[base] = chunk // page 0 of the chunk
		cb.huge = false
		cb.frames = frames
	}
	frame := cb.frames[idx]
	if frame == reclaimedFrame {
		return fmt.Errorf("kvm: page %#x already reclaimed", gpa)
	}
	if _, err := vm.ept.Unmap(uint64(gpa) &^ (memdef.PageSize - 1)); err != nil {
		return fmt.Errorf("kvm: balloon unmap: %w", err)
	}
	delete(vm.reverse, frame)
	cb.frames[idx] = reclaimedFrame
	h.Buddy.FreePage(frame, vm.backingMT())
	h.Clock.Advance(simtime.VirtioUnplug)
	h.met.balloonReclaim.Inc()
	vm.flushChunk(chunk)
	return nil
}

// ProvidePage re-populates one ballooned page with fresh backing.
func (b *vmBalloonBackend) ProvidePage(gpa memdef.GPA) error {
	vm := (*VM)(b)
	h := vm.host
	if h.crashed {
		return ErrHostDown
	}
	chunk := memdef.HugeBase(gpa)
	cb, ok := vm.backing[chunk]
	if !ok || cb.huge {
		return fmt.Errorf("kvm: balloon provide for non-reclaimed gpa %#x", gpa)
	}
	idx := int(uint64(gpa-chunk) / memdef.PageSize)
	if cb.frames[idx] != reclaimedFrame {
		return fmt.Errorf("kvm: page %#x not in balloon", gpa)
	}
	p, err := h.Buddy.AllocPage(vm.backingMT())
	if err != nil {
		return fmt.Errorf("kvm: balloon provide: %w", err)
	}
	h.Mem.ZeroPage(p)
	pageVA := uint64(gpa) &^ (memdef.PageSize - 1)
	if err := vm.ept.Map4K(pageVA, p, ept.PermRW); err != nil {
		h.Buddy.FreePage(p, vm.backingMT())
		return fmt.Errorf("kvm: balloon remap: %w", err)
	}
	cb.frames[idx] = p
	vm.reverse[p] = memdef.GPA(pageVA)
	h.met.balloonProvide.Inc()
	vm.flushChunk(chunk)
	return nil
}

// DrainNetBuffers models the virtio-net-pci trick of the Section 6
// balloon analysis: the guest floods its NIC's receive queues, forcing
// QEMU/the host kernel to allocate unmovable buffer pages until the
// unmovable free lists run dry and further kernel allocations must
// steal movable blocks. Returns the number of pages consumed; they
// remain held by the (simulated) NIC until the VM is destroyed.
func (vm *VM) DrainNetBuffers(maxPages int) int {
	h := vm.host
	consumed := 0
	for consumed < maxPages && h.Buddy.NoisePages(memdef.MigrateUnmovable) > 0 {
		p, err := h.Buddy.AllocPage(memdef.MigrateUnmovable)
		if err != nil {
			break
		}
		vm.netBuffers = append(vm.netBuffers, p)
		consumed++
	}
	return consumed
}
