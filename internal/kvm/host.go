// Package kvm models the host side of the paper's stack: a Linux/KVM
// hypervisor that owns the physical memory, backs guest VMs with
// transparent hugepages, maintains their extended page tables, applies
// the iTLB Multihit countermeasure (NX hugepages with split-on-exec),
// and exposes virtio-mem and vIOMMU devices.
//
// Everything a guest does reaches physical memory through this
// package, and everything this package allocates comes from the same
// buddy allocator the attacker manipulates — the two facts Page
// Steering depends on.
package kvm

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"hyperhammer/internal/buddy"
	"hyperhammer/internal/dram"
	"hyperhammer/internal/forensics"
	"hyperhammer/internal/inspect"
	"hyperhammer/internal/ledger"
	"hyperhammer/internal/memdef"
	"hyperhammer/internal/metrics"
	"hyperhammer/internal/obs"
	"hyperhammer/internal/phys"
	"hyperhammer/internal/sched"
	"hyperhammer/internal/simtime"
	"hyperhammer/internal/trace"
	"hyperhammer/internal/virtio"
)

// Config describes one host machine.
type Config struct {
	// Geometry is the DRAM addressing model (nil selects the S1
	// machine, Intel Core i3-10100 with 16 GiB).
	Geometry *dram.Geometry
	// Fault is the Rowhammer fault model of the installed DIMMs.
	Fault dram.FaultModelConfig
	// Buddy tunes the host page allocator.
	Buddy buddy.Config
	// THP enables transparent hugepages for guest backing, KVM's
	// default (Section 4.1). Without it guests are backed by
	// scattered 4 KiB pages and the low-21-bit address correspondence
	// is lost.
	THP bool
	// NXHugepages enables the iTLB Multihit countermeasure: guest
	// hugepages are mapped non-executable and split into 4 KiB pages
	// on the first instruction fetch (Section 4.2.3). KVM enables
	// this by default on affected processors.
	NXHugepages bool
	// BootNoisePages is the approximate number of free small-order
	// MIGRATE_UNMOVABLE pages left over after host boot — the initial
	// "noise pages" level of Figure 3. Tens of thousands on a plain
	// KVM host (S1/S2), far more under OpenStack (S3).
	BootNoisePages int
	// ECC enables SECDED error-correcting memory, the server-class
	// configuration the paper's Section 6 notes its evaluation
	// machines lack: single-bit flips are corrected by scrubbing
	// before software ever observes them, and a double-bit error in
	// one 64-bit word raises an uncorrectable machine check that
	// takes the host down.
	ECC bool
	// MultihitBugPresent marks the CPU as affected by the iTLB
	// Multihit erratum (Comet Lake and earlier, Section 4.2.3). With
	// NXHugepages off on an affected CPU, a malicious guest can crash
	// the host — the DoS the countermeasure exists to stop.
	MultihitBugPresent bool
	// Seed drives all host-side randomness (boot noise layout).
	Seed uint64
	// Quarantine, when non-nil, installs the paper's Section 6
	// countermeasure on every virtio-mem device.
	Quarantine virtio.Guard
	// Trace, when non-nil, receives structured host-side events (VM
	// lifecycle, releases, splits, applied flips, machine checks).
	Trace *trace.Recorder
	// Metrics, when non-nil, receives counters/gauges/histograms from
	// every instrumented layer under this host (DRAM, buddy, EPT,
	// virtio, balloon, hammer). The registry is bound to the host's
	// simulated clock at boot, so exported rates are per simulated
	// second.
	Metrics *metrics.Registry
	// Obs, when non-nil, is the live observability plane: at boot it is
	// bound to the host's simulated clock (arming the periodic
	// time-series sampler) and tapped into the host's trace recorder
	// (streaming events to subscribers). The plane should wrap the same
	// registry as Metrics.
	Obs *obs.Plane
	// Inspect, when non-nil, is the hardware introspection plane: at
	// boot the host sizes its DRAM heatmap, points it at Metrics,
	// installs the census builder, and arms watchpoint evaluation on
	// the simulated clock. Fired alerts surface as "watchpoint.alert"
	// trace events.
	Inspect *inspect.Inspector
	// Forensics, when non-nil, is the flip-provenance recorder: at boot
	// it is bound to the host's simulated clock and installed as the
	// DRAM module's flip sink, and every flip the host commits (or a
	// mitigation vetoes) is resolved to a verdict and an owning frame.
	Forensics *forensics.Recorder
	// Ledger, when non-nil, is the determinism plane: at boot it is
	// bound to the host's simulated clock (arming epoch sealing) and
	// its fingerprint streams are resolved across every instrumented
	// subsystem in a fixed declaration order (kvm.rng, kvm.flip, then
	// dram, phys, buddy, ept, guest). Hooks only observe values the
	// simulation already produced, so enabling the ledger cannot
	// change any figure.
	Ledger *ledger.Recorder
	// DRAMShardWorkers, when > 1, shards the DRAM module's batched
	// per-bank threshold-crossing pass across that many sched workers.
	// The per-bank work is pure and the merge is index-ordered, so
	// results are byte-identical to the sequential pass at any worker
	// count (dram.TestHammerBatchSharded pins this).
	DRAMShardWorkers int
}

// DefaultConfig returns an S1-like host: i3-10100 geometry, S1 fault
// model, THP and the multihit countermeasure enabled, stock QEMU
// (no quarantine).
func DefaultConfig() Config {
	return Config{
		Geometry:       dram.CoreI310100(),
		Fault:          dram.S1FaultModel(1),
		Buddy:          buddy.DefaultConfig(),
		THP:            true,
		NXHugepages:    true,
		BootNoisePages: 30000,
		Seed:           1,
	}
}

// AppliedFlip records one Rowhammer bit flip that actually changed
// memory contents, for host-side instrumentation. The attacker never
// sees this log; it observes flips only by scanning its own memory.
type AppliedFlip struct {
	Addr      memdef.HPA
	Bit       uint
	Direction dram.FlipDirection
}

// Host is the hypervisor machine.
type Host struct {
	Mem   *phys.Memory
	DRAM  *dram.Module
	Buddy *buddy.Allocator
	Clock *simtime.Clock

	cfg Config
	rng *rand.Rand

	vms map[*VM]struct{}
	// vmSeq numbers VMs in creation order so forensics owner records
	// can name them stably.
	vmSeq int

	// kernelPages are frames the "host kernel" holds forever (boot
	// allocations that create the initial unmovable noise).
	kernelPages []memdef.PFN

	// tableOwner maps every live EPT/IOPT table frame to the VM whose
	// translations it serves, for TLB-coherence on writes and for
	// instrumentation. tableBits mirrors its key set as a bitset so
	// the write hot path (noteWrite, once per filled page) answers
	// "not a table frame" without a map lookup.
	tableOwner map[memdef.PFN]*VM
	tableBits  []uint64

	// releasedLog records, in order, the base PFNs of order-9 blocks
	// that VMs released through virtio-mem — the paper's added
	// logging function for the Table 2 experiment.
	releasedLog []memdef.PFN

	// flipLog records every applied bit flip in order. Guests consume
	// it only through the scan interfaces, which charge full scan
	// time.
	flipLog []AppliedFlip

	// eccCorrected counts flips the ECC scrubber silently repaired;
	// eccDetected counts uncorrectable double-bit words.
	eccCorrected, eccDetected int

	// crashed marks a host taken down by an uncorrectable error or a
	// multihit machine check; all further guest activity fails.
	crashed bool

	// churnHeld is BackgroundChurn's reusable transient-page buffer;
	// campaigns churn between every attempt.
	churnHeld []memdef.PFN

	// led* are the determinism-ledger fold handles owned by the host
	// layer (nil when the ledger is off): host RNG draws, resolved
	// flip verdicts, EPT mutations (shared by every VM's table), and
	// guest mapping changes.
	ledRNG   *ledger.Stream
	ledFlip  *ledger.Stream
	ledEPT   *ledger.Stream
	ledGuest *ledger.Stream

	met hostMetrics
}

// Ledger verdict codes for the kvm.flip stream, mirroring the
// forensics host-stage verdict strings as foldable words.
const (
	ledVerdictLanded = uint64(iota + 1)
	ledVerdictDirectionFiltered
	ledVerdictECCCorrected
	ledVerdictECCUncorrectable
)

// hostMetrics caches the host-level instrument handles; all nil
// (no-op) without a registry.
type hostMetrics struct {
	flips          [2]*metrics.Counter // indexed by dram.FlipDirection
	eccCorrected   *metrics.Counter
	eccDetected    *metrics.Counter
	machineChecks  *metrics.Counter
	vmsCreated     *metrics.Counter
	vmsDestroyed   *metrics.Counter
	hammerOps      *metrics.Counter
	hammerRounds   *metrics.Counter
	hammerActs     *metrics.Counter
	balloonReclaim *metrics.Counter
	balloonProvide *metrics.Counter
	mitVetoedECC   *metrics.Counter
}

func newHostMetrics(reg *metrics.Registry) hostMetrics {
	return hostMetrics{
		flips: [2]*metrics.Counter{
			dram.FlipOneToZero: reg.Counter("dram_flips_total", "Bit flips applied to memory contents, by direction.", "direction", dram.FlipOneToZero.String()),
			dram.FlipZeroToOne: reg.Counter("dram_flips_total", "Bit flips applied to memory contents, by direction.", "direction", dram.FlipZeroToOne.String()),
		},
		eccCorrected:   reg.Counter("ecc_corrected_total", "Single-bit flips silently repaired by the ECC scrubber."),
		eccDetected:    reg.Counter("ecc_uncorrectable_total", "Uncorrectable double-bit words detected by ECC (machine check)."),
		machineChecks:  reg.Counter("host_machine_checks_total", "Host crashes from uncorrectable errors or iTLB multihit."),
		vmsCreated:     reg.Counter("vms_created_total", "VMs booted on this host."),
		vmsDestroyed:   reg.Counter("vms_destroyed_total", "VMs destroyed on this host."),
		hammerOps:      reg.Counter("hammer_ops_total", "Guest hammer operations issued through the KVM layer."),
		hammerRounds:   reg.Counter("hammer_rounds_total", "Total hammer rounds across all operations."),
		hammerActs:     reg.Counter("hammer_aggressor_activations_total", "Aggressor-row activations charged to the simulated clock."),
		balloonReclaim: reg.Counter("balloon_reclaimed_pages_total", "Guest pages reclaimed through the virtio-balloon."),
		balloonProvide: reg.Counter("balloon_provided_pages_total", "Ballooned pages re-populated with fresh backing."),
		mitVetoedECC:   reg.Counter("mitigation_vetoed_flips_total", dram.VetoedFlipsHelp, "mitigation", "ecc"),
	}
}

// ErrHostDown reports operations on a crashed host.
var ErrHostDown = errors.New("kvm: host machine-checked")

// Crashed reports whether the host has machine-checked.
func (h *Host) Crashed() bool { return h.crashed }

// ECCStats returns (corrected single-bit flips, detected uncorrectable
// words) — host telemetry an operator would read from EDAC counters.
func (h *Host) ECCStats() (corrected, detected int) {
	return h.eccCorrected, h.eccDetected
}

// NewHost boots a host machine.
func NewHost(cfg Config) (*Host, error) {
	if cfg.Geometry == nil {
		return nil, fmt.Errorf("kvm: config needs a DRAM geometry")
	}
	if cfg.Buddy.PCPBatch == 0 {
		cfg.Buddy = buddy.DefaultConfig()
	}
	h := &Host{
		Mem:        phys.New(cfg.Geometry.Size),
		DRAM:       dram.NewModule(cfg.Geometry, cfg.Fault),
		Buddy:      buddy.New(0, cfg.Geometry.Size/memdef.PageSize, cfg.Buddy),
		Clock:      &simtime.Clock{},
		cfg:        cfg,
		rng:        rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x6C62272E07BB0142)),
		vms:        make(map[*VM]struct{}),
		tableOwner: make(map[memdef.PFN]*VM),
		met:        newHostMetrics(cfg.Metrics),
	}
	h.tableBits = make([]uint64, (h.Mem.Frames()+63)/64)
	cfg.Metrics.BindClock(h.Clock)
	h.DRAM.SetMetrics(cfg.Metrics)
	if cfg.DRAMShardWorkers > 1 {
		h.DRAM.SetShardRunner(sched.New(cfg.DRAMShardWorkers))
	}
	h.Buddy.SetMetrics(cfg.Metrics)
	if cfg.Ledger != nil {
		// Wired before bootNoise so boot-time draws and allocator
		// churn are covered. Stream resolution order here is the
		// declaration order of every epoch record — keep it fixed.
		cfg.Ledger.BindClock(h.Clock)
		h.ledRNG = cfg.Ledger.Stream("kvm.rng")
		h.ledFlip = cfg.Ledger.Stream("kvm.flip")
		h.DRAM.SetLedger(cfg.Ledger)
		h.Mem.SetLedger(cfg.Ledger)
		h.Buddy.SetLedger(cfg.Ledger)
		h.ledEPT = cfg.Ledger.Stream("ept.mutation")
		h.ledGuest = cfg.Ledger.Stream("guest.mapping")
	}
	if err := h.bootNoise(); err != nil {
		return nil, err
	}
	h.cfg.Trace.BindClock(h.Clock)
	h.cfg.Obs.TapTrace(h.cfg.Trace)
	h.cfg.Obs.BindClock(h.Clock)
	h.bindInspector()
	if cfg.Forensics != nil {
		// Explicit nil guard: installing a typed-nil *Recorder would
		// make the module's sink interface non-nil and tax the hot path.
		cfg.Forensics.BindClock(h.Clock)
		h.DRAM.SetFlipSink(cfg.Forensics)
	}
	h.cfg.Trace.Emit("host.boot",
		"geometry", cfg.Geometry.Name,
		"memBytes", cfg.Geometry.Size,
		"noisePages", h.NoisePages(),
		"thp", cfg.THP, "nxHugepages", cfg.NXHugepages, "ecc", cfg.ECC)
	return h, nil
}

// Config returns the host's configuration.
func (h *Host) Config() Config { return h.cfg }

// GuestMappingLedger exposes the host's "guest.mapping" determinism
// stream so guest runtimes booted on this host's VMs fold their
// mapping changes into the host-wide ledger; nil when the host runs
// without one.
func (h *Host) GuestMappingLedger() *ledger.Stream { return h.ledGuest }

// bootNoise reproduces the post-boot state of the host's unmovable
// free lists: kernel allocations interleaved with frees leave tens of
// thousands of free small-order MIGRATE_UNMOVABLE pages behind.
func (h *Host) bootNoise() error {
	target := h.cfg.BootNoisePages
	if target <= 0 {
		// Still reserve a handful of kernel pages (PlantSecret needs
		// one, and a real kernel always holds some).
		for i := 0; i < 16; i++ {
			p, err := h.Buddy.Alloc(0, memdef.MigrateUnmovable)
			if err != nil {
				return fmt.Errorf("kvm: boot reserve: %w", err)
			}
			h.kernelPages = append(h.kernelPages, p)
		}
		return nil
	}
	// Allocate first, free after: freeing as we go would only hand the
	// pages straight back to the next allocation. Freeing a random
	// subset of a contiguous run leaves kept pages interleaved with
	// free ones, which is exactly the fragmented small-block state a
	// booted kernel exhibits.
	var pages []memdef.PFN
	for i := 0; i < 2*target+64; i++ {
		p, err := h.Buddy.Alloc(0, memdef.MigrateUnmovable)
		if err != nil {
			return fmt.Errorf("kvm: boot noise: %w", err)
		}
		pages = append(pages, p)
	}
	for _, p := range pages {
		v := h.rng.Float64()
		h.ledRNG.Fold1(math.Float64bits(v))
		if v < 0.5 {
			h.Buddy.Free(p, 0, memdef.MigrateUnmovable)
		} else {
			h.kernelPages = append(h.kernelPages, p)
		}
	}
	// Top up or trim toward the target; random choices and buddy
	// coalescing move the count either way.
	for h.Buddy.NoisePages(memdef.MigrateUnmovable) < target && len(h.kernelPages) > 16 {
		p := h.kernelPages[len(h.kernelPages)-1]
		h.kernelPages = h.kernelPages[:len(h.kernelPages)-1]
		h.Buddy.Free(p, 0, memdef.MigrateUnmovable)
	}
	return nil
}

// NoisePages returns the current count of free small-order unmovable
// pages — the simulation's /proc/pagetypeinfo-derived metric from
// Figure 3. This is host-side observability; the attacker cannot read
// it (Section 4.2.1: "no indication when all small blocks are
// consumed").
func (h *Host) NoisePages() int {
	return h.Buddy.NoisePages(memdef.MigrateUnmovable)
}

// ReleasedBlockLog returns the PFNs of every order-9 block released by
// VMs via virtio-mem, the paper's first instrumentation function for
// Table 2.
func (h *Host) ReleasedBlockLog() []memdef.PFN {
	out := make([]memdef.PFN, len(h.releasedLog))
	copy(out, h.releasedLog)
	return out
}

// FlipLog returns all applied flips so far (host instrumentation).
func (h *Host) FlipLog() []AppliedFlip {
	out := make([]AppliedFlip, len(h.flipLog))
	copy(out, h.flipLog)
	return out
}

// VMs returns the live VM count.
func (h *Host) VMs() int { return len(h.vms) }

// BackgroundChurn models host-side activity between attack attempts:
// kernel services and host processes allocating and freeing unmovable
// pages. The net allocation is zero, but the reordering of the free
// lists it causes is what makes consecutive attack attempts sample
// different page-reuse pairings — on a real host this drift is
// continuous and free. ops is the number of transient allocations.
func (h *Host) BackgroundChurn(ops int) {
	held := h.churnHeld[:0]
	defer func() { h.churnHeld = held[:0] }()
	for i := 0; i < ops; i++ {
		choice := h.rng.IntN(3)
		h.ledRNG.Fold1(uint64(choice))
		switch choice {
		case 0: // allocate and hold briefly
			if p, err := h.Buddy.AllocPage(memdef.MigrateUnmovable); err == nil {
				held = append(held, p)
			}
		case 1: // free one held page in random order
			if len(held) > 0 {
				j := h.rng.IntN(len(held))
				h.ledRNG.Fold1(uint64(j))
				h.Buddy.FreePage(held[j], memdef.MigrateUnmovable)
				held[j] = held[len(held)-1]
				held = held[:len(held)-1]
			}
		case 2: // short-lived larger allocation (page-cache style)
			order := 1 + h.rng.IntN(3)
			h.ledRNG.Fold1(uint64(order))
			if p, err := h.Buddy.Alloc(order, memdef.MigrateUnmovable); err == nil {
				h.Buddy.Free(p, order, memdef.MigrateUnmovable)
			}
		}
	}
	for _, p := range held {
		h.Buddy.FreePage(p, memdef.MigrateUnmovable)
	}
}

// PlantSecret fills one host-kernel-owned page (never mapped into any
// VM) with the given word and returns its physical address. Experiment
// harnesses use it to verify that a claimed VM escape really reads
// host memory, mirroring the magic-value check of Section 5.3.2.
func (h *Host) PlantSecret(value uint64) memdef.HPA {
	if len(h.kernelPages) == 0 {
		panic("kvm: no kernel pages to plant a secret in")
	}
	p := h.kernelPages[0]
	h.Mem.FillWord(p, value)
	return p.HPAOf()
}

// registerTable records t as a live table frame serving vm.
func (h *Host) registerTable(p memdef.PFN, vm *VM) {
	h.tableOwner[p] = vm
	h.tableBits[p>>6] |= 1 << (uint(p) & 63)
}

func (h *Host) unregisterTable(p memdef.PFN) {
	delete(h.tableOwner, p)
	h.tableBits[p>>6] &^= 1 << (uint(p) & 63)
}

// isTableFrame answers via the bitset, without touching the map.
func (h *Host) isTableFrame(p memdef.PFN) bool {
	return h.tableBits[p>>6]&(1<<(uint(p)&63)) != 0
}

// noteWrite maintains TLB coherence: a write that lands in a live
// table frame invalidates the owning VM's cached translations, the
// way a hardware page-table write eventually invalidates TLB entries.
// Reports whether a flush happened.
func (h *Host) noteWrite(a memdef.HPA) bool {
	p := memdef.PFNOf(a)
	if !h.isTableFrame(p) {
		return false
	}
	if vm, ok := h.tableOwner[p]; ok {
		vm.flushTLB()
		return true
	}
	return false
}

// flipsHitTables reports whether any candidate flip landed in a live
// translation-table frame — the only way an applied flip can change a
// later address translation.
func (h *Host) flipsHitTables(flips []dram.CandidateFlip) bool {
	for _, f := range flips {
		if h.isTableFrame(memdef.PFNOf(f.Addr)) {
			return true
		}
	}
	return false
}

// applyFlips commits candidate flips from the DRAM fault model to
// memory contents, records the applied ones and invalidates all
// cached translations (hammering thrashes the caches anyway).
//
// With ECC enabled, a lone flipped bit per 64-bit word is corrected by
// the scrubber before software observes it; two flips in the same word
// exceed SECDED and machine-check the host.
func (h *Host) applyFlips(cands []dram.CandidateFlip) int {
	if h.cfg.ECC {
		perWord := make(map[memdef.HPA]int)
		effective := make([]bool, len(cands))
		for i, f := range cands {
			// Only count flips that would actually change the bit.
			w := h.Mem.Word(f.Addr &^ 7)
			bitPos := (uint(f.Addr)&7)*8 + f.Bit
			cur := (w >> bitPos) & 1
			if (f.Direction == dram.FlipOneToZero) == (cur == 1) {
				perWord[f.Addr&^7]++
				effective[i] = true
			}
		}
		for _, n := range perWord {
			if n >= 2 {
				h.eccDetected++
				h.met.eccDetected.Inc()
				if !h.crashed {
					h.met.machineChecks.Inc()
				}
				h.crashed = true
			} else {
				h.eccCorrected++
				h.met.eccCorrected.Inc()
				h.met.mitVetoedECC.Inc()
			}
		}
		if h.cfg.Forensics != nil || h.ledFlip != nil {
			// Resolve in candidate order, never perWord map order:
			// forensics and ledger output must be deterministic.
			for i, f := range cands {
				switch {
				case !effective[i]:
					h.ledFlip.Fold3(uint64(f.Addr), uint64(f.Bit), ledVerdictDirectionFiltered)
					h.cfg.Forensics.ResolveFlip(f.Addr, f.Bit, forensics.VerdictDirectionFiltered, nil)
				case perWord[f.Addr&^7] >= 2:
					h.ledFlip.Fold3(uint64(f.Addr), uint64(f.Bit), ledVerdictECCUncorrectable)
					h.cfg.Forensics.ResolveFlip(f.Addr, f.Bit, forensics.VerdictECCUncorrectable, nil)
				default:
					h.ledFlip.Fold3(uint64(f.Addr), uint64(f.Bit), ledVerdictECCCorrected)
					h.cfg.Forensics.ResolveFlip(f.Addr, f.Bit, forensics.VerdictECCCorrected, nil)
				}
			}
		}
		// Correctable single-bit errors are scrubbed before any read;
		// uncorrectable words have already taken the host down.
		return 0
	}
	applied := 0
	for _, f := range cands {
		if h.Mem.FlipBit(f.Addr, f.Bit, f.Direction == dram.FlipOneToZero) {
			h.flipLog = append(h.flipLog, AppliedFlip{Addr: f.Addr, Bit: f.Bit, Direction: f.Direction})
			applied++
			h.met.flips[f.Direction].Inc()
			h.cfg.Inspect.RecordFlip(h.cfg.Geometry.Bank(f.Addr), h.cfg.Geometry.Row(f.Addr))
			h.cfg.Trace.Emit("dram.flip",
				"hpa", fmt.Sprintf("%#x", f.Addr), "bit", f.Bit, "dir", f.Direction)
			h.ledFlip.Fold3(uint64(f.Addr), uint64(f.Bit), ledVerdictLanded)
			if h.cfg.Forensics != nil {
				h.cfg.Forensics.ResolveFlip(f.Addr, f.Bit, forensics.VerdictLanded, h.flipOwner(f.Addr))
			}
		} else {
			h.ledFlip.Fold3(uint64(f.Addr), uint64(f.Bit), ledVerdictDirectionFiltered)
			h.cfg.Forensics.ResolveFlip(f.Addr, f.Bit, forensics.VerdictDirectionFiltered, nil)
		}
	}
	if applied > 0 {
		for vm := range h.vms {
			vm.flushTLB()
		}
	}
	return applied
}

// flipOwner resolves the frame a landed flip corrupted to its owner at
// flip time. Only called with a forensics recorder attached. Iterating
// h.vms (a map) is safe here: a frame backs at most one VM, so the
// result does not depend on iteration order.
func (h *Host) flipOwner(a memdef.HPA) *forensics.Owner {
	p := memdef.PFNOf(a)
	if vm, ok := h.tableOwner[p]; ok {
		if level, isEPT := vm.ept.IsTablePage(p); isEPT {
			return &forensics.Owner{Kind: forensics.OwnerEPTTable, VM: vm.id, Level: level}
		}
		return &forensics.Owner{Kind: forensics.OwnerIOPTTable, VM: vm.id}
	}
	hugeBase := p &^ memdef.PFN(memdef.PagesPerHuge-1)
	for vm := range h.vms {
		if gpa, ok := vm.reverse[p]; ok {
			cb := vm.backing[gpa]
			if cb != nil && !cb.huge {
				// reverse indexes non-huge chunks per frame but maps to
				// the chunk base GPA; add the frame's offset within it.
				for i, fp := range cb.frames {
					if fp == p {
						gpa += memdef.GPA(uint64(i) * memdef.PageSize)
						break
					}
				}
			}
			return &forensics.Owner{Kind: forensics.OwnerGuestFrame, VM: vm.id, GPA: uint64(gpa)}
		}
		// Huge chunks index only the base frame in reverse.
		if gpa, ok := vm.reverse[hugeBase]; ok && hugeBase != p {
			if cb := vm.backing[gpa]; cb != nil && cb.huge {
				gpa += memdef.GPA(uint64(p-hugeBase) * memdef.PageSize)
				return &forensics.Owner{Kind: forensics.OwnerGuestFrame, VM: vm.id, GPA: uint64(gpa)}
			}
		}
	}
	for _, kp := range h.kernelPages {
		if kp == p {
			return &forensics.Owner{Kind: forensics.OwnerKernel}
		}
	}
	return &forensics.Owner{Kind: forensics.OwnerFree}
}
