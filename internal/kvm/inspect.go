package kvm

import (
	"hyperhammer/internal/inspect"
	"hyperhammer/internal/memdef"
	"hyperhammer/internal/virtio"
)

// bindInspector wires the host into the introspection plane: heatmap
// dimensions and the DRAM activation sink, the metrics registry the
// watchpoint rules read, the alert emit hook (structured trace events,
// which the obs plane relays onto its bus), the census builder, and
// the periodic evaluation tick on the simulated clock. An immediate
// evaluation anchors the census cache at boot time so live endpoints
// have data before the first tick.
func (h *Host) bindInspector() {
	ins := h.cfg.Inspect
	if ins == nil {
		return
	}
	geo := h.cfg.Geometry
	ins.BindMachine(geo.Banks(), geo.Rows())
	h.DRAM.SetActivationSink(ins)
	ins.SetMetrics(h.cfg.Metrics)
	ins.SetEmit(h.cfg.Trace.Emit)
	ins.SetCensusFunc(h.censusNow)
	h.Clock.OnTick(ins.SampleEvery(), ins.Evaluate)
	ins.Evaluate(h.Clock.Now())
}

// CensusEvent takes a census and emits its headline fields as an
// "inspect.census" trace event tagged with label. Campaigns call it
// between attack attempts so the recorded timeline carries the layout
// context each attempt ran against. No-op without an inspector.
func (h *Host) CensusEvent(label string) {
	if h.cfg.Inspect == nil {
		return
	}
	c := h.censusNow()
	h.cfg.Trace.Emit("inspect.census",
		"label", label, "vms", c.VMs,
		"splits", c.EPT.Splits, "tableFrames", c.Phys.TableFrames,
		"noisePages", c.Buddy.NoiseUnmovable, "flipsApplied", c.Phys.FlipsApplied)
}

// censusNow folds the host's current memory-layout state into one
// census. Every field is a sum or a count, so the h.vms map's random
// iteration order cannot leak into the result. Runs on the simulating
// goroutine only (Evaluate ticks and unit absorption).
func (h *Host) censusNow() inspect.Census {
	c := inspect.Census{
		SimSeconds: h.Clock.Now().Seconds(),
		Geometry:   h.cfg.Geometry.Name,
		VMs:        len(h.vms),
		Crashed:    h.crashed,
		// Non-nil so the census never serializes null (the /api/census
		// contract), even on a host with no VMs yet.
		EPT: inspect.EPTCensus{TablePages: []int{}},
	}
	for vm := range h.vms {
		l4k, l2m := vm.ept.Leaves()
		c.EPT.Leaves4K += l4k
		c.EPT.Leaves2M += l2m
		c.EPT.Splits += vm.splits
		byLevel := vm.ept.TableCountByLevel()
		if len(c.EPT.TablePages) < len(byLevel) {
			c.EPT.TablePages = append(c.EPT.TablePages,
				make([]int, len(byLevel)-len(c.EPT.TablePages))...)
		}
		for l, n := range byLevel {
			c.EPT.TablePages[l] += n
		}
		if vm.memDev != nil {
			c.Virtio.Devices++
			c.Virtio.RegionBytes += vm.memDev.RegionSize()
			c.Virtio.PluggedBytes += vm.memDev.PluggedSize()
			c.Virtio.RequestedBytes += vm.memDev.RequestedSize()
			c.Virtio.PluggedSubBlocks += int(vm.memDev.PluggedSize() / virtio.SubBlockSize)
			c.Virtio.NACKs += vm.memDev.NACKs()
		}
	}
	// tableOwner tracks every live translation-table frame on the host,
	// EPTs and IOPTs alike.
	c.EPT.TotalTables = len(h.tableOwner)

	c.Buddy.FreePages = h.Buddy.FreePages()
	for mt := memdef.MigrateType(0); mt < memdef.NumMigrateTypes; mt++ {
		c.Buddy.PCPPages += h.Buddy.PCPCount(mt)
	}
	c.Buddy.NoiseUnmovable = h.NoisePages()
	info := h.Buddy.PageTypeInfo()
	c.Buddy.FreeBlocks = make([][]int, len(info))
	for mt := range info {
		c.Buddy.FreeBlocks[mt] = append([]int{}, info[mt][:]...)
	}

	c.Phys = inspect.PhysCensus{
		Frames:         h.Mem.Frames(),
		Materialized:   h.Mem.MaterializedFrames(),
		KernelPages:    len(h.kernelPages),
		TableFrames:    len(h.tableOwner),
		ReleasedBlocks: len(h.releasedLog),
		FlipsApplied:   len(h.flipLog),
	}
	return c
}
