package kvm

import (
	"errors"
	"testing"

	"hyperhammer/internal/dram"
	"hyperhammer/internal/memdef"
)

func TestBackgroundChurnConservesMemory(t *testing.T) {
	h := newTestHost(t, testHostConfig())
	before := h.Buddy.FreePages()
	for i := 0; i < 10; i++ {
		h.BackgroundChurn(300)
	}
	if after := h.Buddy.FreePages(); after != before {
		t.Errorf("churn leaked pages: %d -> %d", before, after)
	}
}

func TestBackgroundChurnPerturbsState(t *testing.T) {
	h := newTestHost(t, testHostConfig())
	a1, _ := h.Buddy.AllocPage(memdef.MigrateUnmovable)
	h.Buddy.FreePage(a1, memdef.MigrateUnmovable)
	h.BackgroundChurn(200)
	a2, err := h.Buddy.AllocPage(memdef.MigrateUnmovable)
	if err != nil {
		t.Fatal(err)
	}
	// Not asserting a2 != a1 (it may legitimately coincide), just that
	// the allocator still functions and totals hold.
	h.Buddy.FreePage(a2, memdef.MigrateUnmovable)
}

func TestPlantSecretIsolatedFromGuests(t *testing.T) {
	h := newTestHost(t, testHostConfig())
	secret := h.PlantSecret(0x53C237)
	vm := newTestVM(t, h, 64*memdef.MiB)
	// The secret page must not be reachable through any guest
	// mapping: walk every plugged chunk's backing and check.
	for gpa := memdef.GPA(0); gpa < 64*memdef.MiB; gpa += memdef.PageSize {
		hpa, err := vm.HypercallGPAToHPA(gpa)
		if err != nil {
			continue
		}
		if memdef.PFNOf(hpa) == memdef.PFNOf(secret) {
			t.Fatalf("secret frame %#x mapped into the guest at %#x", secret, gpa)
		}
	}
	if got := h.Mem.Word(secret); got != 0x53C237 {
		t.Errorf("secret word = %#x", got)
	}
}

func TestBootSplitsCreateEPTPages(t *testing.T) {
	h := newTestHost(t, testHostConfig())
	vm, err := h.CreateVM(VMConfig{MemSize: 64 * memdef.MiB, BootSplits: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := vm.Splits(); got < 10 {
		t.Errorf("boot splits = %d, want >= 10", got)
	}
	if got := len(vm.EPTTablePages(1)); got < 10 {
		t.Errorf("leaf tables after boot = %d", got)
	}
	// Boot-split chunks execute without further splits.
	split, err := vm.ExecGPA(0)
	if err != nil || split {
		t.Errorf("exec at chunk 0: split=%v err=%v", split, err)
	}
}

func TestCreateVMFailsWhenHostFull(t *testing.T) {
	h := newTestHost(t, testHostConfig()) // 256 MiB host
	big, err := h.CreateVM(VMConfig{MemSize: 224 * memdef.MiB})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.CreateVM(VMConfig{MemSize: 64 * memdef.MiB}); err == nil {
		t.Fatal("second VM fit in a full host")
	}
	// The failed creation must not leak memory: destroying the first
	// VM returns the host to its boot state.
	free := h.Buddy.FreePages()
	big.Destroy()
	if h.Buddy.FreePages() <= free {
		t.Error("destroy did not return memory")
	}
	if h.VMs() != 0 {
		t.Errorf("VMs = %d after failed create + destroy", h.VMs())
	}
}

func TestVMConfigValidation(t *testing.T) {
	h := newTestHost(t, testHostConfig())
	if _, err := h.CreateVM(VMConfig{MemSize: 3 * memdef.MiB / 2}); err == nil {
		t.Error("unaligned VM size accepted")
	}
	if _, err := h.CreateVM(VMConfig{MemSize: 0}); err == nil {
		t.Error("zero VM size accepted")
	}
}

func TestHostConfigValidation(t *testing.T) {
	if _, err := NewHost(Config{}); err == nil {
		t.Error("config without geometry accepted")
	}
}

// Collateral damage: flips land in whatever occupies the victim frame,
// including another tenant's memory — nothing in the host shields
// co-resident VMs from each other's hammering.
func TestHammerCollateralAcrossVMs(t *testing.T) {
	cfg := testHostConfig()
	cfg.Fault = denseStableFault(13)
	h := newTestHost(t, cfg)
	attacker := newTestVM(t, h, 96*memdef.MiB)
	victim := newTestVM(t, h, 96*memdef.MiB)
	// The victim fills its memory with ones.
	for gpa := memdef.GPA(0); gpa < 96*memdef.MiB; gpa += memdef.PageSize {
		if err := victim.FillPageGPA(gpa, ^uint64(0)); err != nil {
			t.Fatal(err)
		}
	}
	// The attacker hammers its own borders.
	geo := h.DRAM.Geo
	offA := 6 * geo.RowSpan()
	offB := 7 * geo.RowSpan()
	for ; offB < 8*geo.RowSpan(); offB += 64 {
		if geo.Bank(memdef.HPA(offA)) == geo.Bank(memdef.HPA(offB)) {
			break
		}
	}
	for gpa := memdef.GPA(0); gpa < 96*memdef.MiB; gpa += 2 * memdef.MiB {
		if err := attacker.HammerGPA(gpa+memdef.GPA(offA), gpa+memdef.GPA(offB), 300_000); err != nil {
			t.Fatal(err)
		}
	}
	// Some flips should have hit the victim's frames (its memory is
	// physically adjacent to the attacker's).
	flips, _ := victim.ContentFlipsSince(0)
	if len(flips) == 0 {
		t.Skip("no cross-VM flips with this seed/layout")
	}
	for _, f := range flips {
		w, err := victim.ReadGPA64(f.GPA &^ 7)
		if err != nil {
			t.Fatal(err)
		}
		if w == ^uint64(0) {
			t.Errorf("reported cross-VM flip at %#x not visible", f.GPA)
		}
	}
}

func denseStableFault(seed uint64) dram.FaultModelConfig {
	return dram.FaultModelConfig{
		Seed: seed, CellsPerRow: 1.5,
		ThresholdMin: 50_000, ThresholdMax: 150_000,
		StableFraction: 1.0, FlakyP: 1.0,
		NeighborWeight1: 1.0, NeighborWeight2: 0.25,
	}
}

func TestErrorsAreDistinguishable(t *testing.T) {
	if errors.Is(ErrFault, ErrMachineCheck) || errors.Is(ErrMachineCheck, ErrNoExec) {
		t.Error("error identities collide")
	}
}
