// Package xenlite models the Xen memory-management behaviour the paper
// analyses in Section 6: Xen's domain heap is a single buddy pool with
// no migration types, a guest can voluntarily return pages with the
// XENMEM_decrease_reservation hypercall (free_domheap_pages), and
// p2m/EPT table pages are later allocated from the very same pool
// (alloc_domheap_pages) — so Page Steering needs no free-list
// exhaustion at all, supporting the paper's conclusion that steering
// "may be even easier on Xen than on KVM".
package xenlite

import (
	"errors"
	"fmt"
	"sort"

	"hyperhammer/internal/memdef"
)

// ErrOutOfMemory reports domheap exhaustion.
var ErrOutOfMemory = errors.New("xenlite: out of domain heap memory")

// Heap is Xen's domain heap: buddy free lists with no migration types.
// Freed blocks go to the head of their order's list and allocations
// prefer the smallest sufficient order — the properties the Xen
// steering variant relies on.
type Heap struct {
	freeLists [memdef.MaxOrder][]memdef.PFN
	free      map[memdef.PFN]int // block -> order
	pages     uint64
	freeCount uint64
}

// NewHeap builds a heap over a frame range, fully free.
func NewHeap(start memdef.PFN, pages uint64) *Heap {
	h := &Heap{free: make(map[memdef.PFN]int), pages: pages}
	p := uint64(start)
	end := uint64(start) + pages
	for p < end {
		order := memdef.MaxOrder - 1
		for order > 0 && (p&((uint64(1)<<order)-1) != 0 || p+(uint64(1)<<order) > end) {
			order--
		}
		if p+(uint64(1)<<order) > end {
			break
		}
		h.push(memdef.PFN(p), order)
		h.freeCount += uint64(1) << order
		p += uint64(1) << order
	}
	return h
}

func (h *Heap) push(p memdef.PFN, order int) {
	h.freeLists[order] = append(h.freeLists[order], p)
	h.free[p] = order
}

func (h *Heap) pop(order int) (memdef.PFN, bool) {
	list := &h.freeLists[order]
	if len(*list) == 0 {
		return 0, false
	}
	p := (*list)[len(*list)-1]
	*list = (*list)[:len(*list)-1]
	delete(h.free, p)
	return p, true
}

func (h *Heap) remove(p memdef.PFN) {
	order := h.free[p]
	list := &h.freeLists[order]
	for i, q := range *list {
		if q == p {
			(*list)[i] = (*list)[len(*list)-1]
			*list = (*list)[:len(*list)-1]
			break
		}
	}
	delete(h.free, p)
}

// Alloc returns a 2^order block (alloc_domheap_pages).
func (h *Heap) Alloc(order int) (memdef.PFN, error) {
	if order < 0 || order >= memdef.MaxOrder {
		return 0, fmt.Errorf("xenlite: bad order %d", order)
	}
	for o := order; o < memdef.MaxOrder; o++ {
		if p, ok := h.pop(o); ok {
			for split := o; split > order; split-- {
				h.push(p+memdef.PFN(uint64(1)<<(split-1)), split-1)
			}
			h.freeCount -= uint64(1) << order
			return p, nil
		}
	}
	return 0, ErrOutOfMemory
}

// Free returns a block (free_domheap_pages), coalescing with buddies.
func (h *Heap) Free(p memdef.PFN, order int) {
	h.freeCount += uint64(1) << order
	for order < memdef.MaxOrder-1 {
		buddy := p ^ memdef.PFN(uint64(1)<<order)
		if o, ok := h.free[buddy]; !ok || o != order {
			break
		}
		h.remove(buddy)
		if buddy < p {
			p = buddy
		}
		order++
	}
	h.push(p, order)
}

// FreePages returns the total free pages.
func (h *Heap) FreePages() uint64 { return h.freeCount }

// Domain is one Xen guest with its memory reservation.
type Domain struct {
	heap *Heap
	// backing maps 2 MiB guest chunks to their frames.
	backing map[memdef.GPA]memdef.PFN
	// p2m records allocated p2m (EPT-equivalent) table pages.
	p2m []memdef.PFN
}

// CreateDomain reserves memSize bytes of 2 MiB superpages for a guest.
func (h *Heap) CreateDomain(memSize uint64) (*Domain, error) {
	if memSize%memdef.HugePageSize != 0 {
		return nil, fmt.Errorf("xenlite: domain size %#x not 2 MiB aligned", memSize)
	}
	d := &Domain{heap: h, backing: make(map[memdef.GPA]memdef.PFN)}
	for gpa := memdef.GPA(0); uint64(gpa) < memSize; gpa += memdef.HugePageSize {
		base, err := h.Alloc(memdef.HugeOrder)
		if err != nil {
			d.Destroy()
			return nil, err
		}
		d.backing[gpa] = base
	}
	return d, nil
}

// DecreaseReservation is the XENMEM_decrease_reservation hypercall: a
// (possibly malicious) guest voluntarily returns the 2 MiB chunk at
// gpa to the shared domain heap. Returns the freed base frame as the
// hypervisor-side instrumentation (the paper's released-PFN log).
func (d *Domain) DecreaseReservation(gpa memdef.GPA) (memdef.PFN, error) {
	base, ok := d.backing[memdef.HugeBase(gpa)]
	if !ok {
		return 0, fmt.Errorf("xenlite: chunk %#x not reserved", gpa)
	}
	delete(d.backing, memdef.HugeBase(gpa))
	d.heap.Free(base, memdef.HugeOrder)
	return base, nil
}

// AllocP2M allocates one p2m table page for the domain — from the same
// heap the guest just released into, with no migration-type wall in
// between.
func (d *Domain) AllocP2M() (memdef.PFN, error) {
	p, err := d.heap.Alloc(0)
	if err != nil {
		return 0, err
	}
	d.p2m = append(d.p2m, p)
	return p, nil
}

// P2MPages returns the domain's p2m table pages.
func (d *Domain) P2MPages() []memdef.PFN {
	out := make([]memdef.PFN, len(d.p2m))
	copy(out, d.p2m)
	return out
}

// Destroy returns all domain memory to the heap.
func (d *Domain) Destroy() {
	chunks := make([]memdef.GPA, 0, len(d.backing))
	for gpa := range d.backing {
		chunks = append(chunks, gpa)
	}
	sort.Slice(chunks, func(i, j int) bool { return chunks[i] < chunks[j] })
	for _, gpa := range chunks {
		d.heap.Free(d.backing[gpa], memdef.HugeOrder)
		delete(d.backing, gpa)
	}
	for _, p := range d.p2m {
		d.heap.Free(p, 0)
	}
	d.p2m = nil
}

// SteeringReuse measures the Xen steering experiment: release the
// given chunks from the domain, then allocate p2mPages table pages and
// report how many landed on released frames. The KVM equivalent needs
// vIOMMU exhaustion first; here the released blocks are reachable
// immediately, which is the Section 6 claim this module exists to
// check.
func (d *Domain) SteeringReuse(chunks []memdef.GPA, p2mPages int) (released, reused int, err error) {
	releasedFrames := make(map[memdef.PFN]bool)
	for _, gpa := range chunks {
		base, err := d.DecreaseReservation(gpa)
		if err != nil {
			return 0, 0, err
		}
		for i := memdef.PFN(0); i < memdef.PagesPerHuge; i++ {
			releasedFrames[base+i] = true
		}
		released += memdef.PagesPerHuge
	}
	for i := 0; i < p2mPages; i++ {
		p, err := d.AllocP2M()
		if err != nil {
			return released, reused, err
		}
		if releasedFrames[p] {
			reused++
		}
	}
	return released, reused, nil
}
