package xenlite

import (
	"testing"

	"hyperhammer/internal/memdef"
)

func TestHeapAllocFree(t *testing.T) {
	h := NewHeap(0, 4096)
	if h.FreePages() != 4096 {
		t.Fatalf("FreePages = %d", h.FreePages())
	}
	p, err := h.Alloc(3)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(p)&7 != 0 {
		t.Errorf("order-3 block at %d misaligned", p)
	}
	if h.FreePages() != 4088 {
		t.Errorf("FreePages after alloc = %d", h.FreePages())
	}
	h.Free(p, 3)
	if h.FreePages() != 4096 {
		t.Errorf("FreePages after free = %d", h.FreePages())
	}
	// Coalescing back to a max-order block.
	q, err := h.Alloc(memdef.MaxOrder - 1)
	if err != nil {
		t.Errorf("max-order alloc after coalesce: %v", err)
	}
	h.Free(q, memdef.MaxOrder-1)
}

func TestHeapExhaustion(t *testing.T) {
	h := NewHeap(0, 8)
	for i := 0; i < 8; i++ {
		if _, err := h.Alloc(0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.Alloc(0); err != ErrOutOfMemory {
		t.Errorf("expected OOM, got %v", err)
	}
	if _, err := h.Alloc(memdef.MaxOrder); err == nil {
		t.Error("bad order accepted")
	}
}

func TestDomainLifecycle(t *testing.T) {
	h := NewHeap(0, 8192)
	d, err := h.CreateDomain(8 * memdef.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.FreePages(); got != 8192-4*512 {
		t.Errorf("FreePages with domain = %d", got)
	}
	if _, err := d.DecreaseReservation(3 * memdef.MiB); err != nil {
		t.Fatal(err)
	}
	if _, err := d.DecreaseReservation(3 * memdef.MiB); err == nil {
		t.Error("double decrease accepted")
	}
	d.Destroy()
	if got := h.FreePages(); got != 8192 {
		t.Errorf("FreePages after destroy = %d", got)
	}
}

// The Section 6 claim: on Xen, released guest pages are immediately
// reachable by p2m allocations — no migration-type wall, no exhaustion
// step needed.
func TestSteeringReuseImmediate(t *testing.T) {
	h := NewHeap(0, 16384)
	d, err := h.CreateDomain(24 * memdef.MiB)
	if err != nil {
		t.Fatal(err)
	}
	released, reused, err := d.SteeringReuse(
		[]memdef.GPA{4 * memdef.MiB, 10 * memdef.MiB}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if released != 1024 {
		t.Errorf("released = %d", released)
	}
	// The released blocks are the most recently freed; p2m allocations
	// must consume them essentially completely.
	if reused < released*9/10 {
		t.Errorf("reused = %d of %d; Xen reuse should be near-total", reused, released)
	}
}

func TestCreateDomainErrors(t *testing.T) {
	h := NewHeap(0, 1024)
	if _, err := h.CreateDomain(3 * memdef.MiB / 2); err == nil {
		t.Error("unaligned domain accepted")
	}
	if _, err := h.CreateDomain(1 * memdef.GiB); err == nil {
		t.Error("oversized domain accepted")
	}
	if h.FreePages() != 1024 {
		t.Errorf("failed creation leaked pages: %d", h.FreePages())
	}
}
