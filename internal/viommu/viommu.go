// Package viommu models the virtual IOMMU that KVM/QEMU expose to VMs
// with assigned PCI devices (Sections 2.5, 2.6, 4.2.1). When the guest
// creates a DMA mapping from an I/O virtual address to one of its
// pages, QEMU installs a shadow mapping in host IOMMU page tables
// (IOPTs). Each IOPT page is an order-0 MIGRATE_UNMOVABLE host page —
// which is exactly the currency the attacker spends to exhaust the
// host's small-order unmovable free blocks (Figure 2).
package viommu

import (
	"errors"
	"fmt"

	"hyperhammer/internal/ept"
	"hyperhammer/internal/ledger"
	"hyperhammer/internal/memdef"
	"hyperhammer/internal/metrics"
	"hyperhammer/internal/phys"
)

// DefaultMapLimit is vIOMMU's default cap of 65,535 mappings per IOMMU
// group (Section 4.2.1).
const DefaultMapLimit = 65535

// Errors returned by group operations.
var (
	// ErrMapLimit reports that the group's mapping budget is spent.
	ErrMapLimit = errors.New("viommu: mapping limit reached")
	// ErrNotMapped reports an unmap of an absent mapping.
	ErrNotMapped = errors.New("viommu: iova not mapped")
)

// Backend resolves guest pages for DMA. The hypervisor implements it:
// resolving pins the page (VFIO behaviour), though in this model VM
// memory is already pinned unmovable at creation.
type Backend interface {
	// ResolveGPA returns the host frame currently backing the guest
	// page at gpa.
	ResolveGPA(gpa memdef.GPA) (memdef.PFN, error)
}

// Group is one IOMMU group assigned to a VM (one passed-through
// device, or several behind the same group).
type Group struct {
	iopt     *ept.Table
	backend  Backend
	mapLimit int
	mappings int
}

// SetMetrics instruments the group's shadow IOPT; its walks, splits
// and table pages aggregate into the shared ept_* series.
func (g *Group) SetMetrics(reg *metrics.Registry) { g.iopt.SetMetrics(reg) }

// SetLedger folds the shadow IOPT's mutations into the host's shared
// "ept.mutation" determinism stream.
func (g *Group) SetLedger(s *ledger.Stream) { g.iopt.SetLedger(s) }

// NewGroup creates an IOMMU group whose shadow IOPT pages come from
// alloc (the host's unmovable order-0 table-page allocator).
func NewGroup(mem *phys.Memory, alloc ept.Allocator, backend Backend, mapLimit int) (*Group, error) {
	if mapLimit <= 0 {
		mapLimit = DefaultMapLimit
	}
	iopt, err := ept.New(mem, alloc)
	if err != nil {
		return nil, fmt.Errorf("viommu: %w", err)
	}
	return &Group{iopt: iopt, backend: backend, mapLimit: mapLimit}, nil
}

// Map installs a 4 KiB DMA mapping iova -> (the host frame backing)
// gpa. Every distinct 2 MiB-aligned IOVA window touched for the first
// time costs one fresh host IOPT leaf page, plus upper-level tables as
// needed.
func (g *Group) Map(iova memdef.IOVA, gpa memdef.GPA) error {
	if g.mappings >= g.mapLimit {
		return ErrMapLimit
	}
	frame, err := g.backend.ResolveGPA(gpa)
	if err != nil {
		return fmt.Errorf("viommu: resolving gpa %#x: %w", gpa, err)
	}
	if err := g.iopt.Map4K(uint64(iova), frame, ept.PermRW); err != nil {
		return fmt.Errorf("viommu: mapping iova %#x: %w", iova, err)
	}
	g.mappings++
	return nil
}

// Unmap removes the mapping at iova. IOPT pages are not reclaimed on
// unmap (matching Linux IOMMU drivers, which keep table pages around).
func (g *Group) Unmap(iova memdef.IOVA) error {
	if _, err := g.iopt.Unmap(uint64(iova)); err != nil {
		return fmt.Errorf("%w: %#x", ErrNotMapped, iova)
	}
	g.mappings--
	return nil
}

// Translate performs the device-side IOVA walk, returning the host
// physical address a DMA to iova would hit.
func (g *Group) Translate(iova memdef.IOVA) (memdef.HPA, error) {
	tr, err := g.iopt.Translate(uint64(iova))
	if err != nil {
		return 0, err
	}
	return tr.HPA, nil
}

// Mappings returns the number of live mappings.
func (g *Group) Mappings() int { return g.mappings }

// MapLimit returns the group's mapping cap.
func (g *Group) MapLimit() int { return g.mapLimit }

// IOPTPages returns the total number of host pages consumed by this
// group's IOMMU page tables — the attacker's lever on the unmovable
// free lists.
func (g *Group) IOPTPages() int { return g.iopt.NumTables() }

// Destroy releases all IOPT pages back to the host.
func (g *Group) Destroy() { g.iopt.Destroy() }
