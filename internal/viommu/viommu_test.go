package viommu

import (
	"errors"
	"testing"

	"hyperhammer/internal/ept"
	"hyperhammer/internal/memdef"
	"hyperhammer/internal/phys"
)

// poolAlloc hands out table frames from a fixed region and counts.
type poolAlloc struct {
	next    memdef.PFN
	allocs  int
	freed   int
	failAll bool
}

func (p *poolAlloc) AllocTable() (memdef.PFN, error) {
	if p.failAll {
		return 0, errors.New("injected alloc failure")
	}
	f := p.next
	p.next++
	p.allocs++
	return f, nil
}

func (p *poolAlloc) FreeTable(memdef.PFN) { p.freed++ }

// identBackend resolves GPA x to frame x>>12.
type identBackend struct{ fail bool }

func (b identBackend) ResolveGPA(gpa memdef.GPA) (memdef.PFN, error) {
	if b.fail {
		return 0, errors.New("unbacked")
	}
	return memdef.PFN(gpa >> memdef.PageShift), nil
}

func newGroup(t *testing.T, limit int) (*Group, *poolAlloc) {
	t.Helper()
	mem := phys.New(256 * memdef.MiB)
	alloc := &poolAlloc{next: 100}
	g, err := NewGroup(mem, alloc, identBackend{}, limit)
	if err != nil {
		t.Fatal(err)
	}
	return g, alloc
}

func TestMapTranslate(t *testing.T) {
	g, _ := newGroup(t, 0)
	if g.MapLimit() != DefaultMapLimit {
		t.Errorf("MapLimit = %d", g.MapLimit())
	}
	if err := g.Map(0x1_0000_0000, 7*memdef.PageSize); err != nil {
		t.Fatal(err)
	}
	hpa, err := g.Translate(0x1_0000_0ABC)
	if err != nil {
		t.Fatal(err)
	}
	if want := memdef.HPA(7*memdef.PageSize + 0xABC); hpa != want {
		t.Errorf("Translate = %#x, want %#x", hpa, want)
	}
	if g.Mappings() != 1 {
		t.Errorf("Mappings = %d", g.Mappings())
	}
}

// The attack's core arithmetic: mappings spaced 2 MiB apart each burn
// one fresh leaf IOPT page (Figure 2).
func TestTwoMiBStrideConsumesOneLeafPerMapping(t *testing.T) {
	g, alloc := newGroup(t, 0)
	before := alloc.allocs
	const n = 64
	for i := 0; i < n; i++ {
		iova := memdef.IOVA(0x1_0000_0000 + uint64(i)*memdef.HugePageSize)
		if err := g.Map(iova, 3*memdef.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	grew := alloc.allocs - before
	// n leaf tables plus a handful of upper-level tables.
	if grew < n || grew > n+4 {
		t.Errorf("allocated %d table pages for %d 2MiB-spaced mappings", grew, n)
	}
	if g.IOPTPages() != grew+1 { // +1 root from NewGroup
		t.Errorf("IOPTPages = %d, want %d", g.IOPTPages(), grew+1)
	}
}

// Densely packed mappings share leaf pages — the reason the attacker
// must space them 2 MiB apart to maximize page consumption.
func TestDenseMappingsShareLeafPages(t *testing.T) {
	g, alloc := newGroup(t, 0)
	before := alloc.allocs
	for i := 0; i < 512; i++ {
		iova := memdef.IOVA(0x2_0000_0000 + uint64(i)*memdef.PageSize)
		if err := g.Map(iova, 3*memdef.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	if grew := alloc.allocs - before; grew > 4 {
		t.Errorf("dense mappings allocated %d table pages, want <= 4", grew)
	}
}

func TestMapLimitEnforced(t *testing.T) {
	g, _ := newGroup(t, 3)
	for i := 0; i < 3; i++ {
		if err := g.Map(memdef.IOVA(i)*memdef.HugePageSize, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Map(99*memdef.HugePageSize, 0); !errors.Is(err, ErrMapLimit) {
		t.Errorf("over-limit map: %v", err)
	}
	// Unmapping frees budget.
	if err := g.Unmap(0); err != nil {
		t.Fatal(err)
	}
	if err := g.Map(99*memdef.HugePageSize, 0); err != nil {
		t.Errorf("map after unmap: %v", err)
	}
}

func TestUnmapErrors(t *testing.T) {
	g, _ := newGroup(t, 0)
	if err := g.Unmap(0x123000); !errors.Is(err, ErrNotMapped) {
		t.Errorf("unmap absent: %v", err)
	}
}

func TestBackendFailurePropagates(t *testing.T) {
	mem := phys.New(64 * memdef.MiB)
	alloc := &poolAlloc{next: 10}
	g, err := NewGroup(mem, alloc, identBackend{fail: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Map(0, 0); err == nil {
		t.Error("expected resolve failure")
	}
	if g.Mappings() != 0 {
		t.Error("failed map counted")
	}
}

func TestDestroyFreesTables(t *testing.T) {
	g, alloc := newGroup(t, 0)
	for i := 0; i < 8; i++ {
		if err := g.Map(memdef.IOVA(i)*memdef.HugePageSize, 0); err != nil {
			t.Fatal(err)
		}
	}
	g.Destroy()
	if alloc.freed != alloc.allocs {
		t.Errorf("Destroy freed %d of %d tables", alloc.freed, alloc.allocs)
	}
}

var _ ept.Allocator = (*poolAlloc)(nil)
