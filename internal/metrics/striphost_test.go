package metrics

import "testing"

// TestStripHost: sched_* families vanish from the stripped snapshot —
// counters, gauges, histograms, and help — while simulation families
// survive untouched. This is the artifact builders' determinism
// guarantee: host telemetry serves live but never lands in a
// deterministic artifact section.
func TestStripHost(t *testing.T) {
	r := New()
	r.Counter("dram_activations_total", "sim").Add(7)
	r.Counter("sched_units_total", "host", "status", "delivered").Add(3)
	r.Gauge("sched_workers", "host").Set(4)
	r.Gauge("balloon_pages", "sim").Set(9)
	r.Histogram("sched_queue_wait_seconds", "host", nil).Observe(0.5)
	r.Histogram("attack_phase_seconds", "sim", nil).Observe(30)

	full := r.Snapshot()
	stripped := full.StripHost()

	names := func(s Snapshot) map[string]bool {
		m := map[string]bool{}
		for _, c := range s.Counters {
			m[c.Name] = true
		}
		for _, g := range s.Gauges {
			m[g.Name] = true
		}
		for _, h := range s.Histograms {
			m[h.Name] = true
		}
		return m
	}
	fullNames, strippedNames := names(full), names(stripped)
	for _, host := range []string{"sched_units_total", "sched_workers", "sched_queue_wait_seconds"} {
		if !fullNames[host] {
			t.Errorf("%s missing from live snapshot", host)
		}
		if strippedNames[host] {
			t.Errorf("%s survived StripHost", host)
		}
		if _, ok := stripped.Help[host]; ok {
			t.Errorf("%s help survived StripHost", host)
		}
	}
	for _, sim := range []string{"dram_activations_total", "balloon_pages", "attack_phase_seconds"} {
		if !strippedNames[sim] {
			t.Errorf("%s stripped although it is a sim metric", sim)
		}
		if _, ok := stripped.Help[sim]; !ok {
			t.Errorf("%s help stripped", sim)
		}
	}
	if stripped.SimSeconds != full.SimSeconds {
		t.Errorf("SimSeconds changed: %v vs %v", stripped.SimSeconds, full.SimSeconds)
	}
	// The original snapshot is untouched.
	if again := names(r.Snapshot()); !again["sched_workers"] {
		t.Error("StripHost mutated the registry view")
	}
}

// TestIsHostMetric pins the host-metric namespace to the sched_ prefix.
func TestIsHostMetric(t *testing.T) {
	for name, want := range map[string]bool{
		"sched_units_total":     true,
		"sched_workers":         true,
		"dram_flips_total":      false,
		"scheduler_like_prefix": false,
	} {
		if got := IsHostMetric(name); got != want {
			t.Errorf("IsHostMetric(%q) = %v, want %v", name, got, want)
		}
	}
}
