// Package metrics is the simulation's measurement substrate: a small
// dependency-free registry of counters, gauges, and fixed-bucket
// histograms, exported in Prometheus text format or as a JSON
// snapshot.
//
// Two properties matter more here than in a typical metrics library:
//
//   - Rates are per *simulated* second. The registry can be bound to a
//     simtime.Clock and every export carries the simulated timestamp,
//     so flips-per-refresh-window or activations-per-second are
//     meaningful even though the simulation runs many orders of
//     magnitude faster than the hardware it models.
//
//   - The nil registry is a first-class no-op. A nil *Registry hands
//     out nil instrument handles, and every method on a nil handle is
//     an allocation-free no-op, so instrumented code never guards.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hyperhammer/internal/simtime"
)

// Counter is a monotonically increasing value. The zero Counter and
// the nil Counter are both usable; nil no-ops.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets with Prometheus
// semantics: an observation v lands in the first bucket whose upper
// bound satisfies v <= le, and every bucket is cumulative on export.
type Histogram struct {
	mu     sync.Mutex
	uppers []float64 // ascending; +Inf bucket is implicit
	counts []uint64  // len(uppers)+1; last is the overflow bucket
	sum    float64
	n      uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.uppers, v) // first upper >= v, i.e. v <= upper
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// kind discriminates instrument families.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (name, labels) instrument instance.
type series struct {
	labels []string // sorted key/value pairs, flattened
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups all series sharing a metric name.
type family struct {
	name    string
	help    string
	kind    kind
	buckets []float64
	series  map[string]*series
}

// Registry owns instrument families and hands out handles. All methods
// are safe for concurrent use, and all are no-ops on a nil receiver.
type Registry struct {
	mu    sync.Mutex
	clock *simtime.Clock
	// simBase accumulates the readings of previously bound clocks, so
	// a registry that outlives several hosts reports the total
	// simulated time spent across all of them rather than only the
	// most recent host's clock (the old last-boot-wins hazard).
	simBase  time.Duration
	families map[string]*family
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// BindClock attaches the simulated clock whose reading stamps every
// export. Binding is explicitly scoped: rebinding first folds the
// outgoing clock's final reading into an accumulated base, so
// experiments that boot several hosts against one registry report the
// total simulated time across all of them instead of only the most
// recent host's clock. Rebinding the same live clock therefore counts
// its elapsed time twice — bind each host's clock exactly once.
func (r *Registry) BindClock(c *simtime.Clock) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.clock != nil {
		r.simBase += r.clock.Now()
	}
	r.clock = c
	r.mu.Unlock()
}

// AddSimTime folds d into the registry's accumulated simulated-time
// base. Scoped-unit merging uses it to credit a completed unit's
// simulated time to the parent registry without binding a clock.
func (r *Registry) AddSimTime(d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.simBase += d
	r.mu.Unlock()
}

// SimTime returns the accumulated simulated time: the base from
// previously bound clocks (and AddSimTime) plus the current clock's
// reading.
func (r *Registry) SimTime() time.Duration {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.clock == nil {
		return r.simBase
	}
	return r.simBase + r.clock.Now()
}

// labelKey flattens sorted pairs into a map key and returns the sorted
// pair slice.
func labelKey(labels []string) (string, []string) {
	if len(labels) == 0 {
		return "", nil
	}
	if len(labels)%2 != 0 {
		labels = append(labels[:len(labels):len(labels)], "(missing)")
	}
	n := len(labels) / 2
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return labels[2*idx[a]] < labels[2*idx[b]] })
	sorted := make([]string, 0, len(labels))
	for _, i := range idx {
		sorted = append(sorted, labels[2*i], labels[2*i+1])
	}
	var sb strings.Builder
	for i := 0; i < len(sorted); i += 2 {
		sb.WriteString(sorted[i])
		sb.WriteByte(0xff)
		sb.WriteString(sorted[i+1])
		sb.WriteByte(0xfe)
	}
	return sb.String(), sorted
}

// lookup finds or creates the series for (name, labels) under k.
func (r *Registry) lookup(name, help string, k kind, buckets []float64, labels []string) *series {
	key, sorted := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, buckets: buckets, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != k {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.kind, k))
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: sorted}
		switch k {
		case kindCounter:
			s.c = new(Counter)
		case kindGauge:
			s.g = new(Gauge)
		case kindHistogram:
			s.h = &Histogram{uppers: f.buckets, counts: make([]uint64, len(f.buckets)+1)}
		}
		f.series[key] = s
	}
	return s
}

// Counter returns the counter for name with the given alternating
// label key/value pairs, creating it on first use. The same
// (name, labels) always yields the same handle, so independent
// subsystems can share a series.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, nil, labels).c
}

// Gauge returns the gauge for name and labels, creating it on first
// use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, nil, labels).g
}

// Histogram returns the histogram for name and labels, creating it on
// first use with the given ascending upper bounds (an implicit +Inf
// bucket is always appended). Buckets are fixed per family: the first
// registration wins.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	return r.lookup(name, help, kindHistogram, buckets, labels).h
}

// DefBuckets is the default histogram layout: sub-second through
// multi-day, matching the simulation's range from row activations to
// multi-week campaigns.
var DefBuckets = []float64{
	0.001, 0.01, 0.1, 1, 10, 60, 300, 1800, 3600,
	6 * 3600, 24 * 3600, 3 * 24 * 3600, 7 * 24 * 3600,
}

// --- Snapshots ---

// Sample is one exported series value.
type Sample struct {
	Name   string   `json:"name"`
	Labels []string `json:"labels,omitempty"` // alternating key/value
	Value  float64  `json:"value"`
}

// BucketSample is one cumulative histogram bucket.
type BucketSample struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// HistogramSample is one exported histogram series.
type HistogramSample struct {
	Name    string         `json:"name"`
	Labels  []string       `json:"labels,omitempty"`
	Buckets []BucketSample `json:"buckets"` // cumulative, excludes +Inf (== Count)
	Sum     float64        `json:"sum"`
	Count   uint64         `json:"count"`
}

// Snapshot is a point-in-time copy of every series, ordered
// deterministically (by name, then label signature).
type Snapshot struct {
	// SimSeconds is the bound simulated clock's reading at export.
	SimSeconds float64           `json:"simSeconds"`
	Counters   []Sample          `json:"counters,omitempty"`
	Gauges     []Sample          `json:"gauges,omitempty"`
	Histograms []HistogramSample `json:"histograms,omitempty"`
	// Help maps metric name to its help string.
	Help map[string]string `json:"help,omitempty"`
}

// Snapshot copies the current state of every series. The registry
// stays locked for the whole walk: the live observability plane
// snapshots concurrently with series creation, and a family's series
// map must not grow mid-iteration.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{Help: make(map[string]string)}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	simNow := r.simBase
	if r.clock != nil {
		simNow += r.clock.Now()
	}
	snap.SimSeconds = simNow.Seconds()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		snap.Help[f.name] = f.help
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			switch f.kind {
			case kindCounter:
				snap.Counters = append(snap.Counters, Sample{Name: f.name, Labels: s.labels, Value: float64(s.c.Value())})
			case kindGauge:
				snap.Gauges = append(snap.Gauges, Sample{Name: f.name, Labels: s.labels, Value: float64(s.g.Value())})
			case kindHistogram:
				snap.Histograms = append(snap.Histograms, sampleHistogram(f.name, s))
			}
		}
	}
	return snap
}

// IsHostMetric reports whether a metric family measures the *host*
// (scheduler telemetry: the sched_* families) rather than the
// simulation. Host metrics are real wall-clock observations — they
// differ run to run and across -parallel settings — so they are
// served live (/metrics, Prometheus) but stripped from run artifacts'
// deterministic metrics sections (see Snapshot.StripHost).
func IsHostMetric(name string) bool {
	return strings.HasPrefix(name, "sched_")
}

// StripHost returns a copy of the snapshot with every host metric
// family removed (Help entries included). Artifact builders call this
// so the metrics section stays byte-identical at any -parallel; the
// host view lives in the artifact's plan section instead.
func (s Snapshot) StripHost() Snapshot {
	out := Snapshot{SimSeconds: s.SimSeconds}
	for _, c := range s.Counters {
		if !IsHostMetric(c.Name) {
			out.Counters = append(out.Counters, c)
		}
	}
	for _, g := range s.Gauges {
		if !IsHostMetric(g.Name) {
			out.Gauges = append(out.Gauges, g)
		}
	}
	for _, h := range s.Histograms {
		if !IsHostMetric(h.Name) {
			out.Histograms = append(out.Histograms, h)
		}
	}
	if s.Help != nil {
		out.Help = make(map[string]string, len(s.Help))
		for name, help := range s.Help {
			if !IsHostMetric(name) {
				out.Help[name] = help
			}
		}
	}
	return out
}

// Rows flattens the snapshot into (name, labels, kind, value) rows for
// tabular rendering (it satisfies report.MetricsSnapshot without this
// package importing report). Histograms are summarized as count/sum.
func (s Snapshot) Rows() [][4]string {
	var out [][4]string
	labelStr := func(labels []string) string {
		if len(labels) == 0 {
			return "-"
		}
		var parts []string
		for i := 0; i+1 < len(labels); i += 2 {
			parts = append(parts, labels[i]+"="+labels[i+1])
		}
		return strings.Join(parts, ",")
	}
	for _, c := range s.Counters {
		out = append(out, [4]string{c.Name, labelStr(c.Labels), "counter", formatFloat(c.Value)})
	}
	for _, g := range s.Gauges {
		out = append(out, [4]string{g.Name, labelStr(g.Labels), "gauge", formatFloat(g.Value)})
	}
	for _, h := range s.Histograms {
		out = append(out, [4]string{h.Name, labelStr(h.Labels), "histogram",
			fmt.Sprintf("count=%d sum=%s", h.Count, formatFloat(h.Sum))})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

func sampleHistogram(name string, s *series) HistogramSample {
	h := s.h
	h.mu.Lock()
	defer h.mu.Unlock()
	out := HistogramSample{Name: name, Labels: s.labels, Sum: h.sum, Count: h.n}
	cum := uint64(0)
	for i, up := range h.uppers {
		cum += h.counts[i]
		out.Buckets = append(out.Buckets, BucketSample{UpperBound: up, Count: cum})
	}
	return out
}

// Absorb folds a snapshot — typically taken from a scoped per-unit
// registry that started empty — into this registry: counter values are
// added, gauge values replace the current reading (last absorb wins,
// so callers absorbing in a fixed unit order get deterministic
// gauges), histogram buckets are de-cumulated and added bucket by
// bucket, and the snapshot's simulated time is credited via
// AddSimTime. Families absent from this registry are created in the
// snapshot's (sorted) order, so absorbing the same snapshots in the
// same order always yields the same registry state.
func (r *Registry) Absorb(snap Snapshot) {
	if r == nil {
		return
	}
	for _, c := range snap.Counters {
		r.Counter(c.Name, snap.Help[c.Name], c.Labels...).Add(uint64(c.Value))
	}
	for _, g := range snap.Gauges {
		r.Gauge(g.Name, snap.Help[g.Name], g.Labels...).Set(int64(g.Value))
	}
	for _, hs := range snap.Histograms {
		uppers := make([]float64, len(hs.Buckets))
		for i, b := range hs.Buckets {
			uppers[i] = b.UpperBound
		}
		r.Histogram(hs.Name, snap.Help[hs.Name], uppers, hs.Labels...).absorb(hs)
	}
	r.AddSimTime(time.Duration(math.Round(snap.SimSeconds * float64(time.Second))))
}

// absorb adds a sampled histogram's observations into h, de-cumulating
// the exported buckets. Counts land in the first local bucket whose
// upper bound is >= the sample bucket's bound (identical layouts map
// one to one); observations beyond the last exported bucket go to the
// overflow bucket.
func (h *Histogram) absorb(s HistogramSample) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	prev := uint64(0)
	for _, b := range s.Buckets {
		d := b.Count - prev
		prev = b.Count
		if d == 0 {
			continue
		}
		h.counts[sort.SearchFloat64s(h.uppers, b.UpperBound)] += d
	}
	if s.Count > prev {
		h.counts[len(h.uppers)] += s.Count - prev
	}
	h.sum += s.Sum
	h.n += s.Count
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteProm writes every series in the Prometheus text exposition
// format, deterministically ordered.
func (r *Registry) WriteProm(w io.Writer) error {
	snap := r.Snapshot()
	var sb strings.Builder
	fmt.Fprintf(&sb, "# HELP sim_seconds Simulated clock reading at export time.\n")
	fmt.Fprintf(&sb, "# TYPE sim_seconds gauge\n")
	fmt.Fprintf(&sb, "sim_seconds %s\n", formatFloat(snap.SimSeconds))

	type familyOut struct {
		name, typ string
		lines     []string
	}
	fams := make(map[string]*familyOut)
	order := []string{}
	add := func(name, typ, line string) {
		f, ok := fams[name]
		if !ok {
			f = &familyOut{name: name, typ: typ}
			fams[name] = f
			order = append(order, name)
		}
		f.lines = append(f.lines, line)
	}
	for _, c := range snap.Counters {
		add(c.Name, "counter", fmt.Sprintf("%s%s %s", c.Name, promLabels(c.Labels), formatFloat(c.Value)))
	}
	for _, g := range snap.Gauges {
		add(g.Name, "gauge", fmt.Sprintf("%s%s %s", g.Name, promLabels(g.Labels), formatFloat(g.Value)))
	}
	for _, h := range snap.Histograms {
		for _, b := range h.Buckets {
			add(h.Name, "histogram", fmt.Sprintf("%s_bucket%s %d",
				h.Name, promLabels(append(append([]string{}, h.Labels...), "le", formatFloat(b.UpperBound))), b.Count))
		}
		add(h.Name, "histogram", fmt.Sprintf("%s_bucket%s %d",
			h.Name, promLabels(append(append([]string{}, h.Labels...), "le", "+Inf")), h.Count))
		add(h.Name, "histogram", fmt.Sprintf("%s_sum%s %s", h.Name, promLabels(h.Labels), formatFloat(h.Sum)))
		add(h.Name, "histogram", fmt.Sprintf("%s_count%s %d", h.Name, promLabels(h.Labels), h.Count))
	}
	sort.Strings(order)
	for _, name := range order {
		f := fams[name]
		if help := snap.Help[name]; help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", name, escapeHelp(help))
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", name, f.typ)
		for _, line := range f.lines {
			sb.WriteString(line)
			sb.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// promLabels renders alternating key/value pairs as {k="v",...}.
func promLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(labels[i])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(labels[i+1]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
