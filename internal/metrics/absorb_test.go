package metrics

import (
	"math"
	"testing"
	"time"

	"hyperhammer/internal/simtime"
)

// TestBindClockAccumulates pins the satellite fix for the shared-clock
// hazard: two hosts bound sequentially to one registry must both
// contribute to sim_seconds instead of the last boot overwriting the
// first host's time.
func TestBindClockAccumulates(t *testing.T) {
	r := New()

	host1 := &simtime.Clock{}
	r.BindClock(host1)
	host1.Advance(90 * time.Second)
	if got := r.SimTime(); got != 90*time.Second {
		t.Fatalf("after host1: SimTime = %v, want 90s", got)
	}

	host2 := &simtime.Clock{}
	r.BindClock(host2)
	host2.Advance(30 * time.Second)
	if got := r.SimTime(); got != 120*time.Second {
		t.Fatalf("after host2: SimTime = %v, want 120s (90s from host1 + 30s from host2)", got)
	}
	if got := r.Snapshot().SimSeconds; got != 120 {
		t.Fatalf("Snapshot().SimSeconds = %v, want 120", got)
	}

	// A third boot keeps accumulating.
	r.BindClock(&simtime.Clock{})
	if got := r.SimTime(); got != 120*time.Second {
		t.Fatalf("after host3 bind: SimTime = %v, want 120s", got)
	}
}

func TestAddSimTime(t *testing.T) {
	r := New()
	r.AddSimTime(45 * time.Second)
	r.AddSimTime(15 * time.Second)
	if got := r.SimTime(); got != time.Minute {
		t.Fatalf("SimTime = %v, want 1m", got)
	}
	var nilReg *Registry
	nilReg.AddSimTime(time.Second) // must not panic
}

func unitSnapshot(sim time.Duration) Snapshot {
	u := New()
	clock := &simtime.Clock{}
	u.BindClock(clock)
	clock.Advance(sim)
	u.Counter("unit_ops_total", "ops").Add(7)
	u.Counter("unit_ops_total", "ops", "phase", "steer").Add(3)
	u.Gauge("unit_depth", "depth").Set(4)
	h := u.Histogram("unit_seconds", "latency", []float64{1, 10, 100})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(5)
	h.Observe(5000) // overflow bucket
	return u.Snapshot()
}

// TestAbsorb checks that folding two unit snapshots into a parent
// registry adds counters, de-cumulates histogram buckets, applies
// gauges in absorb order, and credits simulated time.
func TestAbsorb(t *testing.T) {
	parent := New()
	parent.Absorb(unitSnapshot(10 * time.Second))
	parent.Absorb(unitSnapshot(20 * time.Second))

	snap := parent.Snapshot()
	if got := snap.SimSeconds; got != 30 {
		t.Fatalf("SimSeconds = %v, want 30", got)
	}
	wantCounters := map[string]float64{"": 14, "phase\xffsteer\xfe": 6}
	for _, c := range snap.Counters {
		key, _ := labelKey(c.Labels)
		if c.Value != wantCounters[key] {
			t.Errorf("counter %s{%v} = %v, want %v", c.Name, c.Labels, c.Value, wantCounters[key])
		}
		delete(wantCounters, key)
	}
	if len(wantCounters) != 0 {
		t.Errorf("missing counters after absorb: %v", wantCounters)
	}
	if len(snap.Gauges) != 1 || snap.Gauges[0].Value != 4 {
		t.Fatalf("gauges = %+v, want one gauge of 4", snap.Gauges)
	}
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %+v, want one", snap.Histograms)
	}
	h := snap.Histograms[0]
	if h.Count != 8 || math.Abs(h.Sum-2*5010.5) > 1e-9 {
		t.Fatalf("histogram count=%d sum=%v, want count=8 sum=%v", h.Count, h.Sum, 2*5010.5)
	}
	// Cumulative buckets: le=1 has 2 obs, le=10 has 2+4, le=100 still 6;
	// the two 5000s observations live in the implicit +Inf bucket.
	wantCum := []uint64{2, 6, 6}
	for i, b := range h.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket le=%v count=%d, want %d", b.UpperBound, b.Count, wantCum[i])
		}
	}

	// Absorbing the parent's own snapshot into a fresh registry must
	// reproduce it exactly (absorb is lossless for exported state).
	mirror := New()
	mirror.Absorb(snap)
	snap2 := mirror.Snapshot()
	if snap2.SimSeconds != snap.SimSeconds || len(snap2.Counters) != len(snap.Counters) ||
		len(snap2.Histograms) != len(snap.Histograms) {
		t.Fatalf("re-absorbed snapshot differs: %+v vs %+v", snap2, snap)
	}
	if snap2.Histograms[0].Count != snap.Histograms[0].Count || snap2.Histograms[0].Sum != snap.Histograms[0].Sum {
		t.Fatalf("re-absorbed histogram differs")
	}
}
