package metrics

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hyperhammer/internal/simtime"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestCounterAndGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("ops_total", "Ops.")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}
	g := r.Gauge("depth", "Depth.")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Errorf("gauge = %d", g.Value())
	}
}

func TestSameSeriesSharesHandle(t *testing.T) {
	r := New()
	a := r.Counter("x_total", "X.", "k", "v", "a", "b")
	b := r.Counter("x_total", "X.", "a", "b", "k", "v") // label order irrelevant
	if a != b {
		t.Fatal("same (name, labels) returned distinct handles")
	}
	c := r.Counter("x_total", "X.", "k", "other")
	if a == c {
		t.Fatal("different labels returned the same handle")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("m", "M.")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	r.Gauge("m", "M.")
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := New()
	h := r.Histogram("lat", "Latency.", []float64{1, 10, 100})
	// Prometheus semantics: v lands in the first bucket with v <= le.
	for _, v := range []float64{
		0.5,  // bucket le=1
		1,    // exactly on a bound: still le=1
		1.01, // le=10
		10,   // le=10
		100,  // le=100
		101,  // +Inf overflow
	} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %d", len(snap.Histograms))
	}
	hs := snap.Histograms[0]
	want := []struct {
		le  float64
		cum uint64
	}{{1, 2}, {10, 4}, {100, 5}}
	for i, w := range want {
		if hs.Buckets[i].UpperBound != w.le || hs.Buckets[i].Count != w.cum {
			t.Errorf("bucket %d = {%g %d}, want {%g %d}",
				i, hs.Buckets[i].UpperBound, hs.Buckets[i].Count, w.le, w.cum)
		}
	}
	if hs.Count != 6 {
		t.Errorf("count = %d (overflow lost?)", hs.Count)
	}
	if math.Abs(hs.Sum-213.51) > 1e-9 {
		t.Errorf("sum = %g", hs.Sum)
	}
	if h.Count() != 6 || math.Abs(h.Sum()-213.51) > 1e-9 {
		t.Errorf("handle accessors: count=%d sum=%g", h.Count(), h.Sum())
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("d", "D.", nil)
	h.ObserveDuration(90 * time.Second)
	hs := r.Snapshot().Histograms[0]
	if len(hs.Buckets) != len(DefBuckets) {
		t.Fatalf("buckets = %d, want %d", len(hs.Buckets), len(DefBuckets))
	}
}

func TestNilRegistryNoOpIsAllocationFree(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "X.")
	g := r.Gauge("y", "Y.")
	h := r.Histogram("z", "Z.", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out non-nil handles")
	}
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(-1)
		h.Observe(0.5)
		h.ObserveDuration(time.Second)
	})
	if allocs != 0 {
		t.Errorf("nil no-op path allocates: %g allocs/op", allocs)
	}
	if r.SimTime() != 0 || c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil accessors not inert")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Error("nil snapshot not empty")
	}
}

func TestConcurrentUse(t *testing.T) {
	r := New()
	clock := &simtime.Clock{}
	r.BindClock(clock)
	var wg sync.WaitGroup
	const workers = 8
	const each = 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				// Re-looking up the handle every iteration exercises
				// the registry lock alongside the instrument atomics.
				r.Counter("c_total", "C.").Inc()
				r.Gauge("g", "G.").Add(1)
				r.Histogram("h", "H.", []float64{1, 2}).Observe(float64(i % 3))
				if i%64 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c_total", "C.").Value(); got != workers*each {
		t.Errorf("counter = %d, want %d", got, workers*each)
	}
	if got := r.Histogram("h", "H.", nil).Count(); got != workers*each {
		t.Errorf("histogram count = %d, want %d", got, workers*each)
	}
}

// goldenRegistry builds the deterministic registry the exporter tests
// render.
func goldenRegistry() *Registry {
	r := New()
	clock := &simtime.Clock{}
	clock.Advance(90 * time.Second)
	r.BindClock(clock)
	r.Counter("dram_flips_total", "Bit flips committed to simulated DRAM.", "direction", "1->0").Add(12)
	r.Counter("dram_flips_total", "Bit flips committed to simulated DRAM.", "direction", "0->1").Add(3)
	r.Gauge("buddy_free_pages", "Pages on the buddy free lists.").Set(4096)
	h := r.Histogram("attack_phase_seconds", "Simulated wall time per phase.", []float64{60, 3600}, "phase", "steer")
	h.Observe(30)
	h.Observe(45)
	h.Observe(7200)
	// Label values (attacker/world-controlled) need escaping; metric
	// and label names are programmer-controlled identifiers.
	r.Counter("escape_total", "Help with \\ and\nnewline.", "path", "a\"b\\c\nd").Inc()
	return r
}

func TestWritePromGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "export.prom"), buf.Bytes())
}

func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "export.json"), buf.Bytes())
}

func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestPromContainsRequiredPieces(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"sim_seconds 90\n",
		`dram_flips_total{direction="1->0"} 12`,
		"# TYPE attack_phase_seconds histogram",
		`attack_phase_seconds_bucket{phase="steer",le="60"} 2`,
		`attack_phase_seconds_bucket{phase="steer",le="3600"} 2`,
		`attack_phase_seconds_bucket{phase="steer",le="+Inf"} 3`,
		`attack_phase_seconds_sum{phase="steer"} 7275`,
		`attack_phase_seconds_count{phase="steer"} 3`,
		"# HELP escape_total Help with \\\\ and\\nnewline.\n",
		`escape_total{path="a\"b\\c\nd"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	a := goldenRegistry().Snapshot()
	b := goldenRegistry().Snapshot()
	var bufA, bufB bytes.Buffer
	if err := goldenRegistry().WriteProm(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := goldenRegistry().WriteProm(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Error("WriteProm not deterministic")
	}
	if len(a.Counters) != len(b.Counters) || a.Counters[0].Name != b.Counters[0].Name {
		t.Error("snapshot ordering unstable")
	}
}

func TestSnapshotRows(t *testing.T) {
	rows := goldenRegistry().Snapshot().Rows()
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	var found bool
	for _, row := range rows {
		if row[0] == "dram_flips_total" && row[1] == "direction=1->0" {
			found = true
			if row[2] != "counter" || row[3] != "12" {
				t.Errorf("row = %v", row)
			}
		}
	}
	if !found {
		t.Error("labelled counter row missing")
	}
}
