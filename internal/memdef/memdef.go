// Package memdef defines the shared address vocabulary of the simulated
// machine: the distinct address spaces of the paper's stack (guest
// virtual, guest physical, host physical, I/O virtual), page frame
// numbers, and the size constants that the rest of the repository is
// built on.
//
// The types are deliberately distinct named integers so that the
// compiler rejects accidental mixing of address spaces — the exact bug
// class the paper's attack exploits at the architectural level.
package memdef

// Page and block size constants. These mirror x86-64 and the Linux
// buddy system configuration the paper targets (Section 2.3).
const (
	// PageShift is log2 of the base page size (4 KiB).
	PageShift = 12
	// PageSize is the base page size in bytes.
	PageSize = 1 << PageShift
	// HugePageShift is log2 of the 2 MiB hugepage size.
	HugePageShift = 21
	// HugePageSize is the 2 MiB hugepage size in bytes.
	HugePageSize = 1 << HugePageShift
	// PagesPerHuge is the number of base pages in one hugepage (512).
	PagesPerHuge = HugePageSize / PageSize

	// MaxOrder is the Linux MAX_ORDER on x86-64: free lists hold
	// blocks of order 0..MaxOrder-1, so the largest block is
	// 2^(MaxOrder-1) = 1024 pages.
	MaxOrder = 11

	// HugeOrder is the buddy order of a 2 MiB block (order-9:
	// 512 pages), which is also the virtio-mem sub-block size.
	HugeOrder = HugePageShift - PageShift

	// EntriesPerTable is the number of 64-bit entries in one 4 KiB
	// page-table page (EPT, IOPT, or guest PT).
	EntriesPerTable = PageSize / 8
)

// Size aliases in bytes, for readable configuration literals.
const (
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30
)

// HPA is a host physical address — the "real" machine address that
// indexes DRAM. Only the hypervisor side of the simulation may mint
// or dereference HPAs.
type HPA uint64

// GPA is a guest physical address: what the guest believes is physical
// memory. EPTs translate GPA to HPA.
type GPA uint64

// GVA is a guest virtual address, translated to GPA by the guest's own
// page tables (modelled as the guest.OS mapping layer).
type GVA uint64

// IOVA is an I/O virtual address in a vIOMMU address space, translated
// to GPA by IOMMU page tables.
type IOVA uint64

// PFN is a host page frame number: HPA >> PageShift.
type PFN uint64

// GFN is a guest frame number: GPA >> PageShift.
type GFN uint64

// HPAOf returns the host physical address of the start of frame p.
func (p PFN) HPAOf() HPA { return HPA(p) << PageShift }

// GPAOf returns the guest physical address of the start of frame g.
func (g GFN) GPAOf() GPA { return GPA(g) << PageShift }

// PFNOf returns the frame containing host physical address a.
func PFNOf(a HPA) PFN { return PFN(a >> PageShift) }

// GFNOf returns the guest frame containing guest physical address a.
func GFNOf(a GPA) GFN { return GFN(a >> PageShift) }

// PageOffset returns the offset of a within its 4 KiB frame.
func PageOffset[T ~uint64](a T) uint64 { return uint64(a) & (PageSize - 1) }

// HugeAligned reports whether a is aligned to a 2 MiB boundary.
func HugeAligned[T ~uint64](a T) bool { return uint64(a)&(HugePageSize-1) == 0 }

// HugeBase returns a rounded down to its 2 MiB hugepage base.
func HugeBase[T ~uint64](a T) T { return a &^ T(HugePageSize-1) }

// MigrateType is the Linux page migration type (Section 2.4). The
// simulation models the two types the paper's attack manipulates.
type MigrateType uint8

const (
	// MigrateUnmovable marks pages that may not be migrated (kernel
	// allocations such as EPT and IOPT pages, pinned VFIO memory).
	MigrateUnmovable MigrateType = iota
	// MigrateMovable marks pages whose contents can be migrated
	// (most user/guest memory).
	MigrateMovable
	// NumMigrateTypes is the number of modelled migration types.
	NumMigrateTypes
)

// String returns the kernel-style name of the migration type.
func (m MigrateType) String() string {
	switch m {
	case MigrateUnmovable:
		return "Unmovable"
	case MigrateMovable:
		return "Movable"
	default:
		return "Unknown"
	}
}
