package memdef

import "testing"

func TestConstants(t *testing.T) {
	if PageSize != 4096 || HugePageSize != 2*1024*1024 {
		t.Fatal("page size constants wrong")
	}
	if PagesPerHuge != 512 || EntriesPerTable != 512 {
		t.Fatal("derived constants wrong")
	}
	if HugeOrder != 9 || MaxOrder != 11 {
		t.Fatal("buddy constants wrong")
	}
}

func TestAddressConversions(t *testing.T) {
	p := PFN(0x1234)
	if p.HPAOf() != HPA(0x1234000) {
		t.Errorf("HPAOf = %#x", p.HPAOf())
	}
	if PFNOf(0x1234FFF) != p {
		t.Errorf("PFNOf = %#x", PFNOf(0x1234FFF))
	}
	g := GFN(7)
	if g.GPAOf() != GPA(0x7000) {
		t.Errorf("GPAOf = %#x", g.GPAOf())
	}
	if GFNOf(0x7FFF) != g {
		t.Errorf("GFNOf = %#x", GFNOf(0x7FFF))
	}
}

func TestPageHelpers(t *testing.T) {
	if PageOffset(HPA(0x12345)) != 0x345 {
		t.Error("PageOffset wrong")
	}
	if !HugeAligned(GPA(4*MiB)) || HugeAligned(GPA(4*MiB+1)) {
		t.Error("HugeAligned wrong")
	}
	if HugeBase(GVA(0x7FC0_0012_3456)) != GVA(0x7FC0_0000_0000) {
		t.Errorf("HugeBase = %#x", HugeBase(GVA(0x7FC0_0012_3456)))
	}
}

func TestMigrateTypeString(t *testing.T) {
	if MigrateUnmovable.String() != "Unmovable" || MigrateMovable.String() != "Movable" {
		t.Error("names wrong")
	}
	if MigrateType(9).String() != "Unknown" {
		t.Error("unknown type not handled")
	}
}
