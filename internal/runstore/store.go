// Package runstore is the run-history plane: a content-addressed,
// config-hash-indexed local store of versioned run artifacts, plus the
// cross-run trend engine that folds the stored history into per-figure
// time series (see trend.go).
//
// Layout on disk, rooted at the directory handed to Open:
//
//	store/
//	├── index.jsonl            append-only index, one IndexEntry per line
//	├── <configHash>/          one directory per deterministic config
//	│   ├── 000001-<content>.json   the full run artifact
//	│   └── 000002-<content>.json
//	└── <otherHash>/...
//
// The index is the compact cross-run view: headline outcome figures,
// per-section figure fingerprints, the host-cost summary, and bench
// figures — everything the trend engine needs without reloading the
// full artifacts. Artifacts themselves are kept whole so a detected
// drift can be attributed figure-by-figure with the hh-diff machinery
// (Store.DriftDetail).
//
// Because the simulation is seed-deterministic, two runs with the same
// ConfigHash must agree exactly on every simulated figure; the store
// is therefore also the artifact backbone for a dedupe-by-config-hash
// scheduler (ROADMAP item 1): results are cacheable by construction.
package runstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"hyperhammer/internal/benchfmt"
	"hyperhammer/internal/runartifact"
)

// Version is the index schema version this package writes.
const Version = 1

const indexFile = "index.jsonl"

// IndexEntry is one ingested run in the compact append-only index.
type IndexEntry struct {
	// Seq is the 1-based ingest sequence number; trend series are
	// ordered by it.
	Seq int `json:"seq"`
	// RunID names the stored document: "<seq>-<contentHash>". The
	// content suffix makes byte-identical reruns visible at a glance.
	RunID string `json:"runID"`
	// Kind is "artifact" (a full run bundle) or "bench" (an ingested
	// hh-benchjson document).
	Kind string `json:"kind"`
	// ConfigHash groups runs that claim identical simulated inputs;
	// the artifact lives under this directory.
	ConfigHash string `json:"configHash"`
	// ContentHash fingerprints the deterministic content: equal hashes
	// ⇒ every simulated figure is byte-identical.
	ContentHash string `json:"contentHash,omitempty"`
	Tool        string `json:"tool"`
	ToolVersion string `json:"toolVersion,omitempty"`
	Seed        uint64 `json:"seed"`
	Scale       string `json:"scale,omitempty"`
	// CreatedAt echoes the artifact's wall-clock stamp; IngestedAt is
	// when this store accepted it. Both are host observations and never
	// compared.
	CreatedAt  string  `json:"createdAt,omitempty"`
	IngestedAt string  `json:"ingestedAt,omitempty"`
	SimSeconds float64 `json:"simSeconds,omitempty"`
	// Sim holds the zero-tolerance figures tracked across runs:
	// sim_seconds, outcome[...] rows, and fingerprint[section] folds.
	Sim map[string]float64 `json:"sim,omitempty"`
	// Host holds the host-cost summary from the plan section (wall,
	// CPU, speedup, efficiency) — noisy by nature, tracked with
	// min/median/last and gated only by an explicit -host-tol.
	Host map[string]float64 `json:"host,omitempty"`
	// Bench holds wall-clock benchmark figures ("Name ns/op") from an
	// embedded or ingested hh-benchjson document.
	Bench map[string]float64 `json:"bench,omitempty"`
}

// GroupKey identifies the experiment lineage an entry belongs to: the
// same tool at the same seed and scale, run over time. Config-knob
// changes within a lineage keep the key (the trend engine detects and
// classifies them via ConfigHash); bench documents form one shared
// lineage.
func (e IndexEntry) GroupKey() string {
	if e.Kind == "bench" {
		return "bench"
	}
	return fmt.Sprintf("%s/%s/seed%d", e.Tool, e.Scale, e.Seed)
}

// HistorySnapshot is the serialized index view /api/history serves and
// `hh-inspect history` renders offline. Entries is never null.
type HistorySnapshot struct {
	Version int          `json:"version"`
	Dir     string       `json:"dir,omitempty"`
	Entries []IndexEntry `json:"entries"`
}

// Store is an open run-history store. All methods are safe for
// concurrent use; readers get snapshot copies, so HTTP handlers never
// race an in-flight ingest.
type Store struct {
	dir string

	mu      sync.Mutex
	entries []IndexEntry
	idx     *os.File
}

// Open opens (creating if needed) the store rooted at dir and loads
// its index.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("runstore: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	s := &Store{dir: dir}
	path := filepath.Join(dir, indexFile)
	if data, err := os.ReadFile(path); err == nil {
		dec := json.NewDecoder(bytes.NewReader(data))
		for line := 1; dec.More(); line++ {
			var e IndexEntry
			if err := dec.Decode(&e); err != nil {
				return nil, fmt.Errorf("runstore: %s line %d: %w", path, line, err)
			}
			s.entries = append(s.entries, e)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	s.idx = f
	return s, nil
}

// Close releases the index append handle. Entries already ingested
// stay readable; further Ingest calls fail.
func (s *Store) Close() error {
	if s == nil || s.idx == nil {
		return nil
	}
	err := s.idx.Close()
	s.idx = nil
	return err
}

// Dir returns the store root ("" on a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Len returns the number of indexed runs (0 on a nil store).
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Entries returns a copy of the index in ingest order (empty, never
// nil, on a nil store).
func (s *Store) Entries() []IndexEntry {
	if s == nil {
		return []IndexEntry{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]IndexEntry, len(s.entries))
	copy(out, s.entries)
	return out
}

// History returns the never-null snapshot /api/history serves.
func (s *Store) History() HistorySnapshot {
	return HistorySnapshot{Version: Version, Dir: s.Dir(), Entries: s.Entries()}
}

// Trend builds the cross-run trend report over a snapshot of the
// index (see trend.go). Safe on a nil store: the report is empty but
// schema-valid.
func (s *Store) Trend(opts TrendOptions) *Report {
	return Build(s.Entries(), opts)
}

// ByConfig returns the indexed runs with the given config hash, in
// ingest order — the dedupe primitive: a scheduler that finds entries
// here can serve the stored artifact instead of re-running.
func (s *Store) ByConfig(hash string) []IndexEntry {
	out := []IndexEntry{}
	for _, e := range s.Entries() {
		if e.ConfigHash == hash {
			out = append(out, e)
		}
	}
	return out
}

// Ingest stamps, stores, and indexes one run artifact, returning its
// index entry. The artifact document lands whole under
// <dir>/<configHash>/<runID>.json; the compact entry is appended to
// the index. Identical reruns are kept (the trend engine is what
// proves them identical), distinguished by their seq prefix.
func (s *Store) Ingest(a *runartifact.Artifact) (IndexEntry, error) {
	if s == nil {
		return IndexEntry{}, errors.New("runstore: ingest into a nil store")
	}
	if a == nil {
		return IndexEntry{}, errors.New("runstore: ingest a nil artifact")
	}
	a.Stamp()
	e := EntryFromArtifact(a)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.idx == nil {
		return IndexEntry{}, errors.New("runstore: store is closed")
	}
	e.Seq = s.nextSeqLocked()
	e.RunID = fmt.Sprintf("%06d-%s", e.Seq, e.ContentHash)
	e.IngestedAt = time.Now().UTC().Format(time.RFC3339)
	cfgDir := filepath.Join(s.dir, e.ConfigHash)
	if err := os.MkdirAll(cfgDir, 0o755); err != nil {
		return IndexEntry{}, fmt.Errorf("runstore: %w", err)
	}
	if err := a.WriteFile(filepath.Join(cfgDir, e.RunID+".json")); err != nil {
		return IndexEntry{}, err
	}
	return e, s.appendLocked(e)
}

// IngestBench indexes an hh-benchjson document so wall-clock bench
// figures join the cross-run history. The document is stored whole
// under its config-hash directory like an artifact.
func (s *Store) IngestBench(b *benchfmt.Output) (IndexEntry, error) {
	if s == nil {
		return IndexEntry{}, errors.New("runstore: ingest into a nil store")
	}
	if b == nil {
		return IndexEntry{}, errors.New("runstore: ingest a nil bench document")
	}
	e := EntryFromBench(b)
	raw, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return IndexEntry{}, fmt.Errorf("runstore: encode bench: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.idx == nil {
		return IndexEntry{}, errors.New("runstore: store is closed")
	}
	e.Seq = s.nextSeqLocked()
	e.RunID = fmt.Sprintf("%06d-%s", e.Seq, e.ContentHash)
	e.IngestedAt = time.Now().UTC().Format(time.RFC3339)
	cfgDir := filepath.Join(s.dir, e.ConfigHash)
	if err := os.MkdirAll(cfgDir, 0o755); err != nil {
		return IndexEntry{}, fmt.Errorf("runstore: %w", err)
	}
	if err := os.WriteFile(filepath.Join(cfgDir, e.RunID+".json"), append(raw, '\n'), 0o644); err != nil {
		return IndexEntry{}, fmt.Errorf("runstore: %w", err)
	}
	return e, s.appendLocked(e)
}

// Load reads a stored run artifact back by its run ID.
func (s *Store) Load(runID string) (*runartifact.Artifact, error) {
	if s == nil {
		return nil, errors.New("runstore: load from a nil store")
	}
	s.mu.Lock()
	var found *IndexEntry
	for i := range s.entries {
		if s.entries[i].RunID == runID {
			found = &s.entries[i]
			break
		}
	}
	var entry IndexEntry
	if found != nil {
		entry = *found
	}
	s.mu.Unlock()
	if found == nil {
		return nil, fmt.Errorf("runstore: run %q not in the index", runID)
	}
	if entry.Kind != "artifact" {
		return nil, fmt.Errorf("runstore: run %q is a %s document, not an artifact", runID, entry.Kind)
	}
	return runartifact.ReadFile(filepath.Join(s.dir, entry.ConfigHash, entry.RunID+".json"))
}

func (s *Store) nextSeqLocked() int {
	seq := 0
	for _, e := range s.entries {
		if e.Seq > seq {
			seq = e.Seq
		}
	}
	return seq + 1
}

func (s *Store) appendLocked(e IndexEntry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("runstore: encode index entry: %w", err)
	}
	if _, err := s.idx.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("runstore: append index: %w", err)
	}
	s.entries = append(s.entries, e)
	return nil
}

// EntryFromArtifact builds the compact index view of one artifact:
// identity hashes, headline sim figures, per-section fingerprints, the
// host-cost summary, and embedded bench figures. Seq/RunID/IngestedAt
// are filled by Ingest.
func EntryFromArtifact(a *runartifact.Artifact) IndexEntry {
	e := IndexEntry{
		Kind:        "artifact",
		ConfigHash:  a.ConfigHash,
		ContentHash: a.ContentHash(),
		Tool:        a.Tool,
		ToolVersion: a.ToolVersion,
		Seed:        a.Seed,
		Scale:       a.Scale,
		CreatedAt:   a.CreatedAt,
		SimSeconds:  a.SimSeconds,
		Sim:         map[string]float64{"sim_seconds": a.SimSeconds},
	}
	if e.ConfigHash == "" {
		e.ConfigHash = a.ComputeConfigHash()
	}
	for k, v := range a.Outcome {
		e.Sim["outcome["+k+"]"] = v
	}
	for section, fp := range a.Fingerprints() {
		e.Sim["fingerprint["+section+"]"] = fp
	}
	if p := a.Plan; p != nil && len(p.Units) > 0 {
		e.Host = map[string]float64{
			"workers":               float64(p.Workers),
			"wall_seconds":          p.WallSeconds,
			"cpu_seconds":           p.CPUSeconds,
			"busy_seconds":          p.BusySeconds,
			"sequential_seconds":    p.SequentialSeconds,
			"critical_path_seconds": p.CriticalPathSeconds,
			"actual_speedup":        p.ActualSpeedup,
			"efficiency":            p.Efficiency,
		}
	}
	if a.Bench != nil {
		e.Bench = benchFigures(a.Bench)
	}
	return e
}

// EntryFromBench builds the index view of a standalone hh-benchjson
// document. The config hash covers the machine identity lines (goos,
// goarch, cpu, pkg) so trajectories from different machines stay
// distinguishable; `hh-trend -bench` uses this for uningested BENCH
// files too.
func EntryFromBench(b *benchfmt.Output) IndexEntry {
	doc := struct {
		Goos   string `json:"goos"`
		Goarch string `json:"goarch"`
		CPU    string `json:"cpu"`
		Pkg    string `json:"pkg"`
	}{b.Goos, b.Goarch, b.CPU, b.Pkg}
	idb, _ := json.Marshal(doc)
	raw, _ := json.Marshal(b)
	return IndexEntry{
		Kind:        "bench",
		Tool:        "bench",
		ConfigHash:  shortHash(idb),
		ContentHash: shortHash(raw),
		CreatedAt:   b.GeneratedAt,
		Bench:       benchFigures(b),
	}
}

// benchFigures extracts the gating wall-clock figure per benchmark.
func benchFigures(b *benchfmt.Output) map[string]float64 {
	m := map[string]float64{}
	for name, bm := range b.ByName() {
		if v, ok := bm.Metrics["ns/op"]; ok {
			m[name+" ns/op"] = v
		}
	}
	return m
}

// shortHash is the 16-hex-char identity used throughout the store,
// matching runartifact's config/content hashes.
func shortHash(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}
