package runstore

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"hyperhammer/internal/benchfmt"
	"hyperhammer/internal/profile"
	"hyperhammer/internal/runartifact"
)

func testArtifact(seed uint64) *runartifact.Artifact {
	a := runartifact.New("hyperhammer", seed, "short")
	a.Config["short"] = "true"
	a.Config["attempts"] = "2"
	a.Config["hammer-rounds"] = "150000"
	a.Config["parallel"] = "1"
	a.SimSeconds = 123.5
	a.Outcome["attempts"] = 2
	a.Outcome["successes"] = 0
	a.Profile = []profile.Entry{
		{Path: "attack.campaign", SimSeconds: 120, Activations: 500},
	}
	return a
}

func testBench() *benchfmt.Output {
	return &benchfmt.Output{
		Goos: "linux", Goarch: "amd64", CPU: "testcpu", Pkg: "hyperhammer/bench",
		Benchmarks: []benchfmt.Benchmark{
			{Name: "BenchmarkCampaignShort", Metrics: map[string]float64{"ns/op": 1.5e9}},
		},
	}
}

func TestIngestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	a := testArtifact(4)
	e, err := s.Ingest(a)
	if err != nil {
		t.Fatal(err)
	}
	if e.Seq != 1 || e.Kind != "artifact" {
		t.Fatalf("entry = %+v, want seq 1 artifact", e)
	}
	if e.ConfigHash != a.ConfigHash || len(e.ConfigHash) != 16 {
		t.Fatalf("entry hash %q does not match stamped artifact hash %q", e.ConfigHash, a.ConfigHash)
	}
	if !strings.HasPrefix(e.RunID, "000001-") || !strings.HasSuffix(e.RunID, e.ContentHash) {
		t.Fatalf("runID %q: want seq prefix and content-hash suffix", e.RunID)
	}
	if e.Sim["sim_seconds"] != 123.5 || e.Sim["outcome[attempts]"] != 2 {
		t.Fatalf("sim figures not indexed: %v", e.Sim)
	}
	if _, ok := e.Sim["fingerprint[profile]"]; !ok {
		t.Fatalf("section fingerprints not indexed: %v", e.Sim)
	}

	back, err := s.Load(e.RunID)
	if err != nil {
		t.Fatal(err)
	}
	if back.ContentHash() != e.ContentHash {
		t.Fatal("stored artifact content drifted through the round trip")
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(testArtifact(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(testArtifact(4)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("reopened store has %d entries, want 2", s2.Len())
	}
	e, err := s2.Ingest(testArtifact(4))
	if err != nil {
		t.Fatal(err)
	}
	if e.Seq != 3 {
		t.Fatalf("seq after reopen = %d, want 3", e.Seq)
	}
}

// TestIdenticalRunsShareConfigDir: the content-addressed layout — two
// byte-identical-figure runs land in the same config-hash directory
// with equal content hashes, distinguishable only by their seq prefix.
func TestIdenticalRunsShareConfigDir(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	e1, err := s.Ingest(testArtifact(4))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := s.Ingest(testArtifact(4))
	if err != nil {
		t.Fatal(err)
	}
	if e1.ConfigHash != e2.ConfigHash || e1.ContentHash != e2.ContentHash {
		t.Fatalf("identical runs disagree: %+v vs %+v", e1, e2)
	}
	files, err := filepath.Glob(filepath.Join(dir, e1.ConfigHash, "*.json"))
	if err != nil || len(files) != 2 {
		t.Fatalf("config dir holds %d documents (%v), want 2", len(files), err)
	}
	if got := s.ByConfig(e1.ConfigHash); len(got) != 2 {
		t.Fatalf("ByConfig returned %d entries, want 2", len(got))
	}
}

func TestIngestBench(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	e, err := s.IngestBench(testBench())
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != "bench" || e.GroupKey() != "bench" {
		t.Fatalf("bench entry = %+v", e)
	}
	if e.Bench["BenchmarkCampaignShort ns/op"] != 1.5e9 {
		t.Fatalf("bench figures not indexed: %v", e.Bench)
	}
	if _, err := s.Load(e.RunID); err == nil {
		t.Fatal("Load must refuse a bench document")
	}
}

// TestHistoryNeverNull: the /api/history JSON contract — entries is
// always a list, even from a nil or empty store.
func TestHistoryNeverNull(t *testing.T) {
	var nilStore *Store
	for name, h := range map[string]HistorySnapshot{
		"nil": nilStore.History(),
	} {
		b, err := json.Marshal(h)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(b), "null") {
			t.Errorf("%s store history serializes null: %s", name, b)
		}
		if !strings.Contains(string(b), `"entries":[]`) {
			t.Errorf("%s store history lacks empty entries list: %s", name, b)
		}
	}
	if nilStore.Trend(DefaultTrendOptions()) == nil {
		t.Fatal("nil store trend must be an empty report, not nil")
	}
}
