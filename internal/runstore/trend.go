package runstore

import (
	"fmt"
	"sort"
	"time"

	"hyperhammer/internal/runartifact"
)

// TrendOptions tunes the cross-run trend engine. The zero value gates
// nothing but sim drift; DefaultTrendOptions matches hh-diff's
// defaults for the noisy kinds.
type TrendOptions struct {
	// Since drops runs ingested before this instant (zero keeps all).
	Since time.Time
	// LastN keeps only the newest N runs of each group (0 keeps all).
	LastN int
	// HostFrac/HostAbs gate host-cost figures with the -host-tol rule:
	// a run regresses a figure when it exceeds the best value seen so
	// far by more than max(HostAbs, HostFrac·max). The hh-diff default
	// of 1.0 lists trajectories without ever gating them.
	HostFrac float64
	HostAbs  float64
	// BenchFrac gates benchmark ns/op trajectories the same way.
	BenchFrac float64
}

// DefaultTrendOptions: sim figures exact (always), host durations
// listed but not gated, bench ns/op at ±30% — the hh-diff defaults.
func DefaultTrendOptions() TrendOptions {
	return TrendOptions{HostFrac: 1.0, BenchFrac: 0.30}
}

// Drift classification for a group's first simulated-figure
// divergence.
const (
	// DriftDeterminism: the config hash did NOT change where figures
	// did — same claimed inputs, different results. This is a
	// determinism regression (or an intentional code change that must
	// bump ToolVersion and the baselines).
	DriftDeterminism = "determinism"
	// DriftConfig: the config hash changed at the same run the figures
	// did — the lineage's knobs moved, so the series is measuring a new
	// experiment from that run on.
	DriftConfig = "config"
)

// TrendPoint is one run's value of one figure.
type TrendPoint struct {
	Seq   int     `json:"seq"`
	RunID string  `json:"runID"`
	V     float64 `json:"v"`
}

// FigureTrend is one figure folded across a group's runs.
type FigureTrend struct {
	Name string `json:"name"`
	// Kind is "sim" (zero tolerance), "host" (-host-tol), or "bench"
	// (-bench-tol).
	Kind   string       `json:"kind"`
	Points []TrendPoint `json:"points"`
	Min    float64      `json:"min"`
	Median float64      `json:"median"`
	Last   float64      `json:"last"`
	// Regressed gates the hh-trend exit status: sim figures regress on
	// any drift at all; host/bench figures when the latest value
	// exceeds the best seen by more than the tolerance.
	Regressed bool `json:"regressed,omitempty"`
	// FirstRegressedSeq/Run attribute the first run that broke the
	// figure (0/"" when it never regressed).
	FirstRegressedSeq int    `json:"firstRegressedSeq,omitempty"`
	FirstRegressedRun string `json:"firstRegressedRun,omitempty"`
}

// RunRef is the per-run identity row of a group.
type RunRef struct {
	Seq         int    `json:"seq"`
	RunID       string `json:"runID"`
	ConfigHash  string `json:"configHash"`
	ContentHash string `json:"contentHash,omitempty"`
	ToolVersion string `json:"toolVersion,omitempty"`
	IngestedAt  string `json:"ingestedAt,omitempty"`
}

// GroupTrend folds one experiment lineage (same tool/seed/scale over
// time; see IndexEntry.GroupKey).
type GroupTrend struct {
	Key   string   `json:"key"`
	Tool  string   `json:"tool"`
	Seed  uint64   `json:"seed"`
	Scale string   `json:"scale,omitempty"`
	Runs  []RunRef `json:"runs"`
	// ConfigHashes counts distinct hashes across the runs: 1 means the
	// whole lineage claims identical inputs, so every sim figure must
	// be flat.
	ConfigHashes int           `json:"configHashes"`
	Figures      []FigureTrend `json:"figures"`
	// SimDrift reports any simulated figure moved anywhere in the
	// lineage; DriftKind classifies the first divergence and
	// FirstDriftSeq/Run attribute it.
	SimDrift      bool     `json:"simDrift"`
	DriftKind     string   `json:"driftKind,omitempty"`
	FirstDriftSeq int      `json:"firstDriftSeq,omitempty"`
	FirstDriftRun string   `json:"firstDriftRun,omitempty"`
	DriftFigures  []string `json:"driftFigures,omitempty"`
}

// Report is the whole trend view, served by /api/trend and rendered by
// hh-trend. Groups is never null.
type Report struct {
	Version int          `json:"version"`
	Runs    int          `json:"runs"`
	Groups  []GroupTrend `json:"groups"`
	// Flagged counts gating findings (drifted sim figures plus
	// regressed host/bench figures); nonzero fails hh-trend with
	// exit 1, like hh-diff.
	Flagged int `json:"flagged"`
}

// Regressed reports whether any figure trajectory gates.
func (r *Report) Regressed() bool { return r.Flagged > 0 }

// Build folds index entries into the cross-run trend report. Entries
// are grouped by lineage, ordered by ingest seq; simulated figures are
// checked at hh-diff zero tolerance (any change between consecutive
// same-lineage runs is drift), host and bench figures are tracked with
// min/median/last and first-regressed attribution under the given
// tolerances.
func Build(entries []IndexEntry, opts TrendOptions) *Report {
	r := &Report{Version: Version, Groups: []GroupTrend{}}
	groups := map[string][]IndexEntry{}
	for _, e := range entries {
		if !opts.Since.IsZero() && e.IngestedAt != "" {
			if t, err := time.Parse(time.RFC3339, e.IngestedAt); err == nil && t.Before(opts.Since) {
				continue
			}
		}
		groups[e.GroupKey()] = append(groups[e.GroupKey()], e)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		runs := groups[key]
		sort.Slice(runs, func(i, j int) bool { return runs[i].Seq < runs[j].Seq })
		if opts.LastN > 0 && len(runs) > opts.LastN {
			runs = runs[len(runs)-opts.LastN:]
		}
		g := buildGroup(key, runs, opts)
		r.Runs += len(runs)
		for i := range g.Figures {
			if g.Figures[i].Regressed {
				r.Flagged++
			}
		}
		r.Groups = append(r.Groups, g)
	}
	return r
}

func buildGroup(key string, runs []IndexEntry, opts TrendOptions) GroupTrend {
	g := GroupTrend{
		Key:   key,
		Tool:  runs[0].Tool,
		Seed:  runs[0].Seed,
		Scale: runs[0].Scale,
		Runs:  make([]RunRef, 0, len(runs)),
	}
	hashes := map[string]bool{}
	for _, e := range runs {
		g.Runs = append(g.Runs, RunRef{
			Seq: e.Seq, RunID: e.RunID,
			ConfigHash: e.ConfigHash, ContentHash: e.ContentHash,
			ToolVersion: e.ToolVersion, IngestedAt: e.IngestedAt,
		})
		hashes[e.ConfigHash] = true
	}
	g.ConfigHashes = len(hashes)

	g.Figures = append(g.Figures, simFigures(runs)...)
	g.Figures = append(g.Figures, tolFigures(runs, "host",
		func(e IndexEntry) map[string]float64 { return e.Host },
		opts.HostFrac, opts.HostAbs)...)
	g.Figures = append(g.Figures, tolFigures(runs, "bench",
		func(e IndexEntry) map[string]float64 { return e.Bench },
		opts.BenchFrac, 0)...)

	// Group-level drift attribution: the earliest run any sim figure
	// moved at, classified by whether the config hash moved with it.
	for _, f := range g.Figures {
		if f.Kind != "sim" || !f.Regressed {
			continue
		}
		g.SimDrift = true
		g.DriftFigures = append(g.DriftFigures, f.Name)
		if g.FirstDriftSeq == 0 || f.FirstRegressedSeq < g.FirstDriftSeq {
			g.FirstDriftSeq = f.FirstRegressedSeq
			g.FirstDriftRun = f.FirstRegressedRun
		}
	}
	sort.Strings(g.DriftFigures)
	if g.SimDrift {
		g.DriftKind = DriftDeterminism
		for i := 1; i < len(runs); i++ {
			if runs[i].Seq == g.FirstDriftSeq && runs[i].ConfigHash != runs[i-1].ConfigHash {
				g.DriftKind = DriftConfig
			}
		}
	}
	return g
}

// simFigures folds every zero-tolerance figure of a lineage. A figure
// regresses at the first run where its value differs from the previous
// run's — or where it appears or disappears, which is the same
// behavioral statement.
func simFigures(runs []IndexEntry) []FigureTrend {
	names := unionNames(runs, func(e IndexEntry) map[string]float64 { return e.Sim })
	out := make([]FigureTrend, 0, len(names))
	for _, name := range names {
		f := FigureTrend{Name: name, Kind: "sim", Points: []TrendPoint{}}
		var prevV float64
		var prevOK, started bool
		for _, e := range runs {
			if e.Kind != "artifact" {
				continue
			}
			v, ok := e.Sim[name]
			if ok {
				f.Points = append(f.Points, TrendPoint{Seq: e.Seq, RunID: e.RunID, V: v})
			}
			if started && !f.Regressed && (ok != prevOK || (ok && v != prevV)) {
				f.Regressed = true
				f.FirstRegressedSeq, f.FirstRegressedRun = e.Seq, e.RunID
			}
			prevV, prevOK, started = v, ok, true
		}
		fillStats(&f)
		out = append(out, f)
	}
	return out
}

// tolFigures folds the noisy-kind figures (host wall clock, bench
// ns/op) with the -host-tol machinery: the running best (minimum)
// value is the reference, and a run regresses the figure when it
// exceeds that best by more than the tolerance. Larger-is-better
// figures (speedup, efficiency) invert the sense.
func tolFigures(runs []IndexEntry, kind string, get func(IndexEntry) map[string]float64, frac, abs float64) []FigureTrend {
	names := unionNames(runs, get)
	out := make([]FigureTrend, 0, len(names))
	for _, name := range names {
		f := FigureTrend{Name: name, Kind: kind, Points: []TrendPoint{}}
		betterIsHigher := higherIsBetter(name)
		best := 0.0
		haveBest := false
		for _, e := range runs {
			v, ok := get(e)[name]
			if !ok {
				continue
			}
			f.Points = append(f.Points, TrendPoint{Seq: e.Seq, RunID: e.RunID, V: v})
			worse := haveBest && v > best
			if betterIsHigher {
				worse = haveBest && v < best
			}
			if worse && !runartifact.WithinTol(best, v, frac, abs) {
				if f.FirstRegressedSeq == 0 {
					f.FirstRegressedSeq, f.FirstRegressedRun = e.Seq, e.RunID
				}
				f.Regressed = true
			} else {
				// Back within tolerance of the best: the regression
				// healed, so the trajectory no longer gates.
				f.Regressed = false
			}
			if !haveBest || (betterIsHigher && v > best) || (!betterIsHigher && v < best) {
				best, haveBest = v, true
			}
		}
		fillStats(&f)
		out = append(out, f)
	}
	return out
}

// higherIsBetter distinguishes the host figures where a drop, not a
// rise, is the regression.
func higherIsBetter(name string) bool {
	switch name {
	case "actual_speedup", "efficiency", "workers":
		return true
	}
	return false
}

func fillStats(f *FigureTrend) {
	if len(f.Points) == 0 {
		return
	}
	vals := make([]float64, len(f.Points))
	for i, p := range f.Points {
		vals[i] = p.V
	}
	f.Last = vals[len(vals)-1]
	sort.Float64s(vals)
	f.Min = vals[0]
	f.Median = vals[len(vals)/2]
	if len(vals)%2 == 0 {
		f.Median = (vals[len(vals)/2-1] + vals[len(vals)/2]) / 2
	}
}

func unionNames(runs []IndexEntry, get func(IndexEntry) map[string]float64) []string {
	set := map[string]bool{}
	for _, e := range runs {
		for k := range get(e) {
			set[k] = true
		}
	}
	names := make([]string, 0, len(set))
	for k := range set {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// DriftDetail attributes a group's first simulated-figure divergence
// figure-by-figure: it loads the stored artifacts on either side of
// the first drifted run and compares them with hh-diff's
// zero-tolerance machinery, returning up to max flagged deltas. This
// is what turns "fingerprint[counters] moved at run 000003" into the
// actual counter names.
func (s *Store) DriftDetail(g *GroupTrend, max int) ([]runartifact.Delta, error) {
	if s == nil || g == nil || !g.SimDrift {
		return nil, nil
	}
	var prev, cur string
	for i, ref := range g.Runs {
		if ref.Seq == g.FirstDriftSeq && i > 0 {
			prev, cur = g.Runs[i-1].RunID, ref.RunID
		}
	}
	if prev == "" {
		return nil, fmt.Errorf("runstore: drifted run %d has no predecessor in the group", g.FirstDriftSeq)
	}
	a, err := s.Load(prev)
	if err != nil {
		return nil, err
	}
	b, err := s.Load(cur)
	if err != nil {
		return nil, err
	}
	d := runartifact.Compare(a, b, runartifact.DefaultTolerances())
	out := []runartifact.Delta{}
	for _, row := range d.Deltas {
		if !row.Flagged {
			continue
		}
		out = append(out, row)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out, nil
}
