package runstore

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"hyperhammer/internal/report"
)

// sparkChars is the value ramp of the ASCII sparklines: every point of
// a figure trajectory is normalized min..max and mapped onto it, so a
// flat line renders as underscores and a regression as a climb toward
// '@'. Pure ASCII so CI logs and plain terminals render it unchanged.
const sparkChars = "_.:-=+*#%@"

// sparkline renders vals as a fixed-alphabet ASCII strip chart of at
// most width cells (0 = unbounded).
func sparkline(vals []float64, width int) string {
	if len(vals) == 0 {
		return ""
	}
	if width > 0 && len(vals) > width {
		// Keep the newest points: trends care about where the series is
		// heading, and attribution lists the exact run anyway.
		vals = vals[len(vals)-width:]
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if hi > lo {
			i = int((v - lo) / (hi - lo) * float64(len(sparkChars)-1))
		}
		b.WriteByte(sparkChars[i])
	}
	return b.String()
}

// RenderHistory renders a store index snapshot as the run-history
// table hh-inspect history prints — one row per ingested run, newest
// last, mirroring /api/history.
func RenderHistory(w io.Writer, h HistorySnapshot) error {
	fmt.Fprintf(w, "Run history: %d run(s) in %s\n\n", len(h.Entries), h.Dir)
	t := report.NewTable("", "seq", "run", "tool", "seed", "scale", "config", "content", "version", "sim_s", "ingested")
	for _, e := range h.Entries {
		t.AddRow(e.Seq, e.RunID, e.Tool, e.Seed, e.Scale,
			e.ConfigHash, e.ContentHash, e.ToolVersion,
			strconv.FormatFloat(e.SimSeconds, 'g', -1, 64), e.IngestedAt)
	}
	_, err := io.WriteString(w, t.String())
	return err
}

// RenderReport renders the trend report as hh-trend's default view:
// one block per lineage with its run roster, then a figure table with
// sparklines and first-regressed attribution. width bounds sparkline
// length (0 = unbounded).
func RenderReport(w io.Writer, r *Report, width int) error {
	fmt.Fprintf(w, "Trend report: %d run(s), %d group(s), %d flagged figure(s)\n",
		r.Runs, len(r.Groups), r.Flagged)
	for i := range r.Groups {
		g := &r.Groups[i]
		fmt.Fprintf(w, "\n=== %s: %d run(s), %d config hash(es)\n", g.Key, len(g.Runs), g.ConfigHashes)
		for _, ref := range g.Runs {
			fmt.Fprintf(w, "  run %s  config=%s content=%s tool=%s\n",
				ref.RunID, ref.ConfigHash, ref.ContentHash, ref.ToolVersion)
		}
		switch {
		case g.SimDrift:
			fmt.Fprintf(w, "  DRIFT (%s) first at run %s: %s\n",
				g.DriftKind, g.FirstDriftRun, strings.Join(g.DriftFigures, ", "))
		case countKind(g, "sim") > 0 && len(g.Runs) > 1:
			fmt.Fprintf(w, "  simulated figures identical across all %d runs\n", len(g.Runs))
		}
		t := report.NewTable("", "figure", "kind", "min", "median", "last", "trend", "status")
		for _, f := range g.Figures {
			vals := make([]float64, len(f.Points))
			for j, p := range f.Points {
				vals[j] = p.V
			}
			status := "ok"
			if f.Regressed {
				status = "REGRESSED @" + f.FirstRegressedRun
			}
			t.AddRow(f.Name, f.Kind,
				fmtFigure(f.Min), fmtFigure(f.Median), fmtFigure(f.Last),
				sparkline(vals, width), status)
		}
		if _, err := io.WriteString(w, t.String()); err != nil {
			return err
		}
	}
	return nil
}

func countKind(g *GroupTrend, kind string) int {
	n := 0
	for _, f := range g.Figures {
		if f.Kind == kind {
			n++
		}
	}
	return n
}

// fmtFigure keeps fingerprints (large exact integers) readable while
// printing measured figures with full float precision.
func fmtFigure(v float64) string {
	if v == float64(int64(v)) && (v >= 1e6 || v <= -1e6) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}
