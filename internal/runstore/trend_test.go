package runstore

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// entry builds a minimal artifact-kind index entry for trend tests.
func entry(seq int, cfg string, sim map[string]float64) IndexEntry {
	return IndexEntry{
		Seq: seq, RunID: runIDFor(seq), Kind: "artifact",
		ConfigHash: cfg, Tool: "hyperhammer", Seed: 4, Scale: "short",
		Sim: sim,
	}
}

func runIDFor(seq int) string {
	return strings.Repeat("0", 5) + string(rune('0'+seq)) + "-cafe"
}

func TestTrendIdenticalRunsNoDrift(t *testing.T) {
	sim := map[string]float64{"sim_seconds": 123.5, "outcome[successes]": 0}
	r := Build([]IndexEntry{
		entry(1, "aaaa", sim), entry(2, "aaaa", sim), entry(3, "aaaa", sim),
	}, DefaultTrendOptions())
	if r.Regressed() || r.Flagged != 0 {
		t.Fatalf("identical runs flagged: %+v", r)
	}
	if len(r.Groups) != 1 || r.Groups[0].SimDrift {
		t.Fatalf("groups = %+v", r.Groups)
	}
	g := r.Groups[0]
	if g.ConfigHashes != 1 || len(g.Runs) != 3 {
		t.Fatalf("group roster wrong: %+v", g)
	}
	for _, f := range g.Figures {
		if f.Min != f.Last || f.Median != f.Last {
			t.Errorf("flat figure %s has moving stats: %+v", f.Name, f)
		}
	}
}

// TestTrendConfigDriftAttribution: the ISSUE's headline scenario — two
// identical runs, then a third with a changed knob (new config hash)
// and changed figures. The third run is attributed as first-regressed
// and the drift is classified "config", not "determinism".
func TestTrendConfigDriftAttribution(t *testing.T) {
	sim := map[string]float64{"sim_seconds": 123.5}
	perturbed := map[string]float64{"sim_seconds": 400.25}
	r := Build([]IndexEntry{
		entry(1, "aaaa", sim), entry(2, "aaaa", sim), entry(3, "bbbb", perturbed),
	}, DefaultTrendOptions())
	if !r.Regressed() {
		t.Fatal("perturbed third run not flagged")
	}
	g := r.Groups[0]
	if !g.SimDrift || g.DriftKind != DriftConfig {
		t.Fatalf("drift kind = %q, want %q (%+v)", g.DriftKind, DriftConfig, g)
	}
	if g.FirstDriftSeq != 3 || g.FirstDriftRun != runIDFor(3) {
		t.Fatalf("drift attributed to seq %d run %q, want the third run", g.FirstDriftSeq, g.FirstDriftRun)
	}
	if g.ConfigHashes != 2 {
		t.Fatalf("config hashes = %d, want 2", g.ConfigHashes)
	}
	if len(g.DriftFigures) != 1 || g.DriftFigures[0] != "sim_seconds" {
		t.Fatalf("drift figures = %v", g.DriftFigures)
	}
}

// TestTrendDeterminismDrift: figures moved but the config hash did not
// — same claimed inputs, different results. That is a determinism
// regression.
func TestTrendDeterminismDrift(t *testing.T) {
	r := Build([]IndexEntry{
		entry(1, "aaaa", map[string]float64{"fingerprint[counters]": 10}),
		entry(2, "aaaa", map[string]float64{"fingerprint[counters]": 11}),
	}, DefaultTrendOptions())
	g := r.Groups[0]
	if !g.SimDrift || g.DriftKind != DriftDeterminism {
		t.Fatalf("drift kind = %q, want %q", g.DriftKind, DriftDeterminism)
	}
	if g.FirstDriftSeq != 2 {
		t.Fatalf("first drift seq = %d, want 2", g.FirstDriftSeq)
	}
}

// TestTrendFigurePresenceChangeIsDrift: a figure appearing or vanishing
// between same-lineage runs is a behavior change, same as a value move.
func TestTrendFigurePresenceChangeIsDrift(t *testing.T) {
	r := Build([]IndexEntry{
		entry(1, "aaaa", map[string]float64{"sim_seconds": 1, "outcome[bits]": 5}),
		entry(2, "aaaa", map[string]float64{"sim_seconds": 1}),
	}, DefaultTrendOptions())
	if !r.Groups[0].SimDrift {
		t.Fatal("vanished figure not reported as drift")
	}
}

// TestHostToleranceWalk: host figures use the -host-tol rule against
// the running best; a regression beyond tolerance is attributed to its
// first run, and a later run back within tolerance heals the gate.
func TestHostToleranceWalk(t *testing.T) {
	mk := func(seq int, wall float64) IndexEntry {
		e := entry(seq, "aaaa", map[string]float64{"sim_seconds": 1})
		e.Host = map[string]float64{"wall_seconds": wall}
		return e
	}
	opts := DefaultTrendOptions()
	opts.HostFrac = 0.30

	r := Build([]IndexEntry{mk(1, 1.0), mk(2, 1.1), mk(3, 2.5)}, opts)
	var f *FigureTrend
	for i := range r.Groups[0].Figures {
		if r.Groups[0].Figures[i].Name == "wall_seconds" {
			f = &r.Groups[0].Figures[i]
		}
	}
	if f == nil || !f.Regressed || f.FirstRegressedSeq != 3 {
		t.Fatalf("wall_seconds trajectory = %+v, want regression at seq 3", f)
	}
	if f.Min != 1.0 || f.Last != 2.5 {
		t.Fatalf("stats wrong: %+v", f)
	}

	// A fourth run back near the best heals the gate; attribution of
	// the excursion is kept.
	r = Build([]IndexEntry{mk(1, 1.0), mk(2, 1.1), mk(3, 2.5), mk(4, 1.05)}, opts)
	for _, f := range r.Groups[0].Figures {
		if f.Name == "wall_seconds" && f.Regressed {
			t.Fatalf("healed trajectory still gates: %+v", f)
		}
	}
	if r.Regressed() {
		t.Fatal("healed report still flagged")
	}

	// The default HostFrac of 1.0 never gates host figures at all.
	r = Build([]IndexEntry{mk(1, 1.0), mk(2, 1.9)}, DefaultTrendOptions())
	if r.Regressed() {
		t.Fatal("default host tolerance must list, never gate")
	}
}

// TestHigherIsBetterFigures: a speedup drop is the regression, not a
// speedup rise.
func TestHigherIsBetterFigures(t *testing.T) {
	mk := func(seq int, speedup float64) IndexEntry {
		e := entry(seq, "aaaa", map[string]float64{"sim_seconds": 1})
		e.Host = map[string]float64{"actual_speedup": speedup}
		return e
	}
	opts := DefaultTrendOptions()
	opts.HostFrac = 0.30
	r := Build([]IndexEntry{mk(1, 3.0), mk(2, 1.0)}, opts)
	if !r.Regressed() {
		t.Fatal("speedup collapse not flagged")
	}
	r = Build([]IndexEntry{mk(1, 1.0), mk(2, 3.0)}, opts)
	if r.Regressed() {
		t.Fatal("speedup improvement flagged as regression")
	}
}

func TestBenchRegression(t *testing.T) {
	mk := func(seq int, ns float64) IndexEntry {
		return IndexEntry{
			Seq: seq, RunID: runIDFor(seq), Kind: "bench", Tool: "bench",
			ConfigHash: "mach", Bench: map[string]float64{"BenchmarkX ns/op": ns},
		}
	}
	r := Build([]IndexEntry{mk(1, 100), mk(2, 120), mk(3, 200)}, DefaultTrendOptions())
	if !r.Regressed() {
		t.Fatal("2x bench slowdown not flagged at the default ±30%")
	}
	g := r.Groups[0]
	if g.Key != "bench" || g.SimDrift {
		t.Fatalf("bench group misfolded: %+v", g)
	}
	var f *FigureTrend
	for i := range g.Figures {
		if g.Figures[i].Kind == "bench" {
			f = &g.Figures[i]
		}
	}
	if f == nil || f.FirstRegressedSeq != 3 {
		t.Fatalf("bench figure = %+v, want attribution at seq 3", f)
	}
}

func TestTrendLastNAndSince(t *testing.T) {
	sim := map[string]float64{"sim_seconds": 1}
	perturbed := map[string]float64{"sim_seconds": 2}
	entries := []IndexEntry{entry(1, "aaaa", perturbed), entry(2, "aaaa", sim), entry(3, "aaaa", sim)}
	opts := DefaultTrendOptions()
	opts.LastN = 2
	if r := Build(entries, opts); r.Regressed() {
		t.Fatal("-last 2 must drop the old divergent run")
	}
	if r := Build(entries, DefaultTrendOptions()); !r.Regressed() {
		t.Fatal("full history must still see the divergence")
	}
}

// TestReportJSONNeverNull: the /api/trend contract — groups and nested
// lists are always lists.
func TestReportJSONNeverNull(t *testing.T) {
	for name, r := range map[string]*Report{
		"empty": Build(nil, DefaultTrendOptions()),
		"one": Build([]IndexEntry{
			entry(1, "aaaa", map[string]float64{"sim_seconds": 1}),
		}, DefaultTrendOptions()),
	} {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(b, []byte("null")) {
			t.Errorf("%s report serializes null: %s", name, b)
		}
	}
}

// TestDriftDetail: a detected drift is attributed figure-by-figure by
// diffing the stored artifacts on either side of the divergence.
func TestDriftDetail(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Ingest(testArtifact(4)); err != nil {
		t.Fatal(err)
	}
	b := testArtifact(4)
	b.Config["hammer-rounds"] = "400000"
	b.SimSeconds = 300
	b.Outcome["successes"] = 1
	if _, err := s.Ingest(b); err != nil {
		t.Fatal(err)
	}

	r := s.Trend(DefaultTrendOptions())
	g := &r.Groups[0]
	if !g.SimDrift || g.DriftKind != DriftConfig {
		t.Fatalf("store trend = %+v", g)
	}
	deltas, err := s.DriftDetail(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, d := range deltas {
		names[d.Key] = true
	}
	if !names["sim_seconds"] {
		t.Fatalf("drift detail missed sim_seconds: %v", names)
	}
}

// TestRenderSmoke: the text renderers never error and carry the
// attribution line.
func TestRenderSmoke(t *testing.T) {
	sim := map[string]float64{"sim_seconds": 123.5}
	r := Build([]IndexEntry{
		entry(1, "aaaa", sim), entry(2, "aaaa", sim),
		entry(3, "bbbb", map[string]float64{"sim_seconds": 400}),
	}, DefaultTrendOptions())
	var buf bytes.Buffer
	if err := RenderReport(&buf, r, 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"DRIFT (config)", runIDFor(3), "REGRESSED", "sim_seconds"} {
		if !strings.Contains(out, want) {
			t.Errorf("report rendering lacks %q:\n%s", want, out)
		}
	}

	buf.Reset()
	h := HistorySnapshot{Version: Version, Dir: "store", Entries: []IndexEntry{
		entry(1, "aaaa", sim),
	}}
	if err := RenderHistory(&buf, h); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "aaaa") {
		t.Errorf("history rendering lacks the config hash:\n%s", buf.String())
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline([]float64{1, 1, 1}, 0); got != "___" {
		t.Errorf("flat sparkline = %q", got)
	}
	got := sparkline([]float64{0, 5, 10}, 0)
	if len(got) != 3 || got[0] != '_' || got[2] != '@' {
		t.Errorf("ramp sparkline = %q", got)
	}
	if got := sparkline([]float64{1, 2, 3, 4}, 2); len(got) != 2 {
		t.Errorf("width cap ignored: %q", got)
	}
}
