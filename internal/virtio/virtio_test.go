package virtio

import (
	"errors"
	"fmt"
	"testing"

	"hyperhammer/internal/memdef"
)

// recordingBackend records plug/unplug calls and can inject failures.
type recordingBackend struct {
	plugs, unplugs []memdef.GPA
	failPlug       bool
}

func (b *recordingBackend) PlugRange(gpa memdef.GPA, size uint64) error {
	if b.failPlug {
		return errors.New("injected")
	}
	b.plugs = append(b.plugs, gpa)
	return nil
}

func (b *recordingBackend) UnplugRange(gpa memdef.GPA, size uint64) error {
	b.unplugs = append(b.unplugs, gpa)
	return nil
}

func newDev(t *testing.T, subBlocks int, guard Guard) (*MemDevice, *recordingBackend) {
	t.Helper()
	b := &recordingBackend{}
	d, err := NewMemDevice(0, uint64(subBlocks)*SubBlockSize, b, guard)
	if err != nil {
		t.Fatal(err)
	}
	return d, b
}

func TestNewMemDeviceValidation(t *testing.T) {
	b := &recordingBackend{}
	if _, err := NewMemDevice(123, SubBlockSize, b, nil); err == nil {
		t.Error("unaligned region accepted")
	}
	if _, err := NewMemDevice(0, SubBlockSize+1, b, nil); err == nil {
		t.Error("odd size accepted")
	}
	if _, err := NewMemDevice(0, 0, b, nil); err == nil {
		t.Error("empty region accepted")
	}
}

func TestPlugUnplugLifecycle(t *testing.T) {
	d, b := newDev(t, 4, nil)
	d.SetRequestedSize(4 * SubBlockSize)
	for i := 0; i < 4; i++ {
		if err := d.Plug(memdef.GPA(i) * SubBlockSize); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.PluggedSize(); got != 4*SubBlockSize {
		t.Errorf("PluggedSize = %d", got)
	}
	if err := d.Plug(0); !errors.Is(err, ErrState) {
		t.Errorf("double plug: %v", err)
	}
	if err := d.Unplug(SubBlockSize); err != nil {
		t.Fatal(err)
	}
	if err := d.Unplug(SubBlockSize); !errors.Is(err, ErrState) {
		t.Errorf("double unplug: %v", err)
	}
	if len(b.plugs) != 4 || len(b.unplugs) != 1 {
		t.Errorf("backend saw %d plugs, %d unplugs", len(b.plugs), len(b.unplugs))
	}
	if got := d.PluggedSubBlocks(); len(got) != 3 {
		t.Errorf("PluggedSubBlocks = %v", got)
	}
}

func TestRangeValidation(t *testing.T) {
	d, _ := newDev(t, 2, nil)
	if err := d.Plug(2 * SubBlockSize); !errors.Is(err, ErrBadRange) {
		t.Errorf("out-of-region plug: %v", err)
	}
	if err := d.Plug(4096); !errors.Is(err, ErrBadRange) {
		t.Errorf("misaligned plug: %v", err)
	}
	if d.IsPlugged(3 * SubBlockSize) {
		t.Error("IsPlugged true outside region")
	}
}

// The central modelled vulnerability: with no guard, the device lets a
// guest unplug memory the hypervisor never asked it to release.
func TestVoluntaryUnplugAllowedWithoutGuard(t *testing.T) {
	d, _ := newDev(t, 4, nil)
	d.SetRequestedSize(4 * SubBlockSize)
	for i := 0; i < 4; i++ {
		if err := d.Plug(memdef.GPA(i) * SubBlockSize); err != nil {
			t.Fatal(err)
		}
	}
	// Requested == plugged; a well-behaved guest would do nothing.
	if err := d.Unplug(2 * SubBlockSize); err != nil {
		t.Errorf("voluntary unplug rejected by stock device: %v", err)
	}
}

func TestGuardNACKs(t *testing.T) {
	guard := func(delta int64, current, requested uint64) error {
		have := int64(requested) - int64(current)
		if delta*have < 0 || abs64(delta) > abs64(have) {
			return fmt.Errorf("suspicious resize")
		}
		return nil
	}
	d, b := newDev(t, 4, guard)
	d.SetRequestedSize(4 * SubBlockSize)
	for i := 0; i < 4; i++ {
		if err := d.Plug(memdef.GPA(i) * SubBlockSize); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Unplug(0); !errors.Is(err, ErrNACK) {
		t.Errorf("guarded voluntary unplug: %v", err)
	}
	if d.NACKs() != 1 {
		t.Errorf("NACKs = %d", d.NACKs())
	}
	if len(b.unplugs) != 0 {
		t.Error("backend saw a NACKed unplug")
	}
	// A legitimate, hypervisor-requested shrink passes the guard.
	d.SetRequestedSize(3 * SubBlockSize)
	if err := d.Unplug(3 * SubBlockSize); err != nil {
		t.Errorf("legitimate unplug NACKed: %v", err)
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestBackendFailureDoesNotChangeState(t *testing.T) {
	d, b := newDev(t, 2, nil)
	b.failPlug = true
	if err := d.Plug(0); err == nil {
		t.Fatal("expected backend error")
	}
	if d.PluggedSize() != 0 || d.IsPlugged(0) {
		t.Error("state changed despite backend failure")
	}
}

func TestDriverSyncToTargetPlugsAndUnplugs(t *testing.T) {
	d, _ := newDev(t, 8, nil)
	g := NewGuestDriver(d)
	var plugged, unplugged []memdef.GPA
	g.OnPlug = func(gpa memdef.GPA, _ uint64) { plugged = append(plugged, gpa) }
	g.OnUnplug = func(gpa memdef.GPA, _ uint64) { unplugged = append(unplugged, gpa) }

	d.SetRequestedSize(6 * SubBlockSize)
	change, err := g.SyncToTarget()
	if err != nil {
		t.Fatal(err)
	}
	if change != 6*SubBlockSize || len(plugged) != 6 {
		t.Errorf("grow: change=%d plugs=%d", change, len(plugged))
	}
	// Lowest-first plugging.
	if plugged[0] != 0 || plugged[5] != 5*SubBlockSize {
		t.Errorf("plug order: %v", plugged)
	}

	d.SetRequestedSize(2 * SubBlockSize)
	change, err = g.SyncToTarget()
	if err != nil {
		t.Fatal(err)
	}
	if change != -4*SubBlockSize || len(unplugged) != 4 {
		t.Errorf("shrink: change=%d unplugs=%d", change, len(unplugged))
	}
	// Highest-first unplugging.
	if unplugged[0] != 5*SubBlockSize {
		t.Errorf("unplug order: %v", unplugged)
	}
}

// The paper's second driver modification: with auto-plug suppressed, a
// voluntary release is not undone by the reconciliation loop.
func TestSuppressAutoPlugKeepsHole(t *testing.T) {
	d, _ := newDev(t, 4, nil)
	g := NewGuestDriver(d)
	d.SetRequestedSize(4 * SubBlockSize)
	if _, err := g.SyncToTarget(); err != nil {
		t.Fatal(err)
	}
	g.SuppressAutoPlug = true
	if err := g.UnplugSubBlock(2*SubBlockSize + 4096); err != nil {
		t.Fatal(err)
	}
	if d.IsPlugged(2 * SubBlockSize) {
		t.Fatal("UnplugSubBlock did not unplug containing sub-block")
	}
	if _, err := g.SyncToTarget(); err != nil {
		t.Fatal(err)
	}
	if d.IsPlugged(2 * SubBlockSize) {
		t.Error("suppressed driver re-plugged the released sub-block")
	}
	// Stock driver would immediately take it back.
	g.SuppressAutoPlug = false
	if _, err := g.SyncToTarget(); err != nil {
		t.Fatal(err)
	}
	if !d.IsPlugged(2 * SubBlockSize) {
		t.Error("stock driver failed to re-plug toward target")
	}
}

func TestRequestedSizeClamping(t *testing.T) {
	d, _ := newDev(t, 4, nil)
	d.SetRequestedSize(100 * SubBlockSize)
	if got := d.RequestedSize(); got != 4*SubBlockSize {
		t.Errorf("RequestedSize = %d, want clamped to region", got)
	}
	d.SetRequestedSize(SubBlockSize + 12345)
	if got := d.RequestedSize(); got != SubBlockSize {
		t.Errorf("RequestedSize = %d, want sub-block aligned", got)
	}
}
