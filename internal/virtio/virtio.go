// Package virtio models the virtio-mem guest memory device (gMD): the
// QEMU-side device that negotiates memory size with the guest in 2 MiB
// sub-blocks, and the guest-side driver — including the two driver
// modifications the paper makes (Section 4.2.2): voluntary sub-block
// releases that the hypervisor never requested, and suppression of the
// automatic re-plug that would otherwise undo them.
//
// The device faithfully models the property the attack exploits: the
// hypervisor sets a *requested* size but does not enforce that guest
// plug/unplug requests move the current size toward it. An optional
// Guard hook implements the paper's proposed quarantine countermeasure
// (Section 6).
package virtio

import (
	"errors"
	"fmt"

	"hyperhammer/internal/memdef"
	"hyperhammer/internal/metrics"
)

// SubBlockSize is the virtio-mem sub-block granularity: 2 MiB, aligned
// with CPU hugepages and order-9 buddy blocks (Section 4.1).
const SubBlockSize = memdef.HugePageSize

// Errors returned by device operations.
var (
	// ErrNACK is the device's refusal of a request, either for
	// protocol reasons or because the Guard rejected it.
	ErrNACK = errors.New("virtio-mem: request NACKed")
	// ErrBadRange reports a request outside the device region or
	// misaligned to the sub-block size.
	ErrBadRange = errors.New("virtio-mem: bad range")
	// ErrState reports plugging an already-plugged sub-block or
	// unplugging an unplugged one.
	ErrState = errors.New("virtio-mem: wrong sub-block state")
)

// MemBackend is the hypervisor side of the device: what QEMU does when
// a request is accepted. PlugRange allocates host backing and maps the
// guest range; UnplugRange unmaps it and releases the backing to the
// host kernel (madvise(DONTNEED) in real QEMU, a buddy free here).
type MemBackend interface {
	PlugRange(gpa memdef.GPA, size uint64) error
	UnplugRange(gpa memdef.GPA, size uint64) error
}

// Guard inspects a guest-initiated resize request before the device
// acts on it. delta is the signed size change the request would cause
// (negative for unplug); current and requested are the device's sizes
// at the time of the request. A non-nil error NACKs the request.
//
// A nil Guard models stock QEMU, which performs no such check — the
// gap HyperHammer exploits.
type Guard func(delta int64, current, requested uint64) error

// MemDevice is one virtio-mem device instance attached to a VM.
type MemDevice struct {
	regionAddr memdef.GPA
	regionSize uint64
	backend    MemBackend
	guard      Guard

	plugged      []bool
	pluggedBytes uint64
	requested    uint64

	// stats for experiments
	unplugRequests int
	nackCount      int

	met deviceMetrics
}

// deviceMetrics caches the device's instrument handles; all nil
// (no-op) until SetMetrics. Series are shared by name across devices.
type deviceMetrics struct {
	plugs   *metrics.Counter
	unplugs *metrics.Counter
	nacks   *metrics.Counter
	plugged *metrics.Gauge
}

// SetMetrics registers the device's instruments with reg. A nil
// registry leaves the device uninstrumented at zero cost.
func (d *MemDevice) SetMetrics(reg *metrics.Registry) {
	d.met = deviceMetrics{
		plugs:   reg.Counter("virtio_plugs_total", "Sub-blocks plugged by guest PLUG requests."),
		unplugs: reg.Counter("virtio_unplugs_total", "Sub-blocks released by guest UNPLUG requests."),
		nacks:   reg.Counter("virtio_nacks_total", "Guest requests refused by the device (protocol or quarantine guard)."),
		plugged: reg.Gauge("virtio_plugged_bytes", "Bytes currently plugged across all virtio-mem devices."),
	}
	d.met.plugged.Add(int64(d.pluggedBytes))
}

// NewMemDevice creates a device covering the guest physical range
// [regionAddr, regionAddr+regionSize), fully unplugged, with requested
// size zero.
func NewMemDevice(regionAddr memdef.GPA, regionSize uint64, backend MemBackend, guard Guard) (*MemDevice, error) {
	if !memdef.HugeAligned(regionAddr) || regionSize == 0 || regionSize%SubBlockSize != 0 {
		return nil, fmt.Errorf("%w: region %#x+%#x", ErrBadRange, regionAddr, regionSize)
	}
	return &MemDevice{
		regionAddr: regionAddr,
		regionSize: regionSize,
		backend:    backend,
		guard:      guard,
		plugged:    make([]bool, regionSize/SubBlockSize),
	}, nil
}

// RegionAddr returns the guest physical base of the device region.
func (d *MemDevice) RegionAddr() memdef.GPA { return d.regionAddr }

// RegionSize returns the size of the device region in bytes.
func (d *MemDevice) RegionSize() uint64 { return d.regionSize }

// PluggedSize returns the currently plugged bytes (the paper's V).
func (d *MemDevice) PluggedSize() uint64 { return d.pluggedBytes }

// RequestedSize returns the hypervisor's target size (the paper's T).
func (d *MemDevice) RequestedSize() uint64 { return d.requested }

// NACKs returns how many guest requests the device refused, an
// experiment metric for the quarantine countermeasure.
func (d *MemDevice) NACKs() int { return d.nackCount }

// SetRequestedSize is the hypervisor-side resize: it changes the
// target and (in a real system) notifies the guest. The guest driver
// polls RequestedSize.
func (d *MemDevice) SetRequestedSize(bytes uint64) {
	if bytes > d.regionSize {
		bytes = d.regionSize
	}
	d.requested = bytes &^ (SubBlockSize - 1)
}

func (d *MemDevice) sbIndex(gpa memdef.GPA) (int, error) {
	if gpa < d.regionAddr || !memdef.HugeAligned(gpa) {
		return 0, fmt.Errorf("%w: gpa %#x", ErrBadRange, gpa)
	}
	idx := uint64(gpa-d.regionAddr) / SubBlockSize
	if idx >= uint64(len(d.plugged)) {
		return 0, fmt.Errorf("%w: gpa %#x", ErrBadRange, gpa)
	}
	return int(idx), nil
}

// IsPlugged reports whether the sub-block at gpa is plugged.
func (d *MemDevice) IsPlugged(gpa memdef.GPA) bool {
	idx, err := d.sbIndex(gpa)
	return err == nil && d.plugged[idx]
}

// Plug handles a guest PLUG request for one sub-block at gpa.
func (d *MemDevice) Plug(gpa memdef.GPA) error {
	idx, err := d.sbIndex(gpa)
	if err != nil {
		return err
	}
	if d.plugged[idx] {
		return fmt.Errorf("%w: %#x already plugged", ErrState, gpa)
	}
	if d.guard != nil {
		if gerr := d.guard(SubBlockSize, d.pluggedBytes, d.requested); gerr != nil {
			d.nackCount++
			d.met.nacks.Inc()
			return fmt.Errorf("%w: %v", ErrNACK, gerr)
		}
	}
	if err := d.backend.PlugRange(gpa, SubBlockSize); err != nil {
		return err
	}
	d.plugged[idx] = true
	d.pluggedBytes += SubBlockSize
	d.met.plugs.Inc()
	d.met.plugged.Add(SubBlockSize)
	return nil
}

// Unplug handles a guest UNPLUG request for one sub-block at gpa. With
// a nil Guard the device performs no policy check at all — it does not
// verify that the guest is responding to a hypervisor request, which
// is the lack of enforcement Page Steering abuses.
func (d *MemDevice) Unplug(gpa memdef.GPA) error {
	idx, err := d.sbIndex(gpa)
	if err != nil {
		return err
	}
	if !d.plugged[idx] {
		return fmt.Errorf("%w: %#x not plugged", ErrState, gpa)
	}
	d.unplugRequests++
	if d.guard != nil {
		if gerr := d.guard(-SubBlockSize, d.pluggedBytes, d.requested); gerr != nil {
			d.nackCount++
			d.met.nacks.Inc()
			return fmt.Errorf("%w: %v", ErrNACK, gerr)
		}
	}
	if err := d.backend.UnplugRange(gpa, SubBlockSize); err != nil {
		return err
	}
	d.plugged[idx] = false
	d.pluggedBytes -= SubBlockSize
	d.met.unplugs.Inc()
	d.met.plugged.Add(-SubBlockSize)
	return nil
}

// PluggedSubBlocks returns the GPAs of all plugged sub-blocks in
// ascending order.
func (d *MemDevice) PluggedSubBlocks() []memdef.GPA {
	var out []memdef.GPA
	for i, p := range d.plugged {
		if p {
			out = append(out, d.regionAddr+memdef.GPA(uint64(i)*SubBlockSize))
		}
	}
	return out
}

// GuestDriver is the guest kernel's virtio-mem driver. The stock
// driver keeps the plugged size synchronized with the hypervisor's
// requested size. The paper modifies it in two ways, both modelled:
//
//  1. UnplugSubBlock releases an attacker-chosen sub-block regardless
//     of the requested size (virtio_mem_sbm_unplug_sb_online).
//  2. SuppressAutoPlug disables the reconciliation that would
//     immediately re-plug voluntarily released memory.
type GuestDriver struct {
	dev *MemDevice
	// SuppressAutoPlug disables SyncToTarget's plugging direction,
	// the paper's second driver modification.
	SuppressAutoPlug bool
	// OnUnplug, if set, is called after a successful unplug so the
	// guest OS can stop using the released frames.
	OnUnplug func(gpa memdef.GPA, size uint64)
	// OnPlug, if set, is called after a successful plug.
	OnPlug func(gpa memdef.GPA, size uint64)
}

// NewGuestDriver attaches a driver to a device.
func NewGuestDriver(dev *MemDevice) *GuestDriver { return &GuestDriver{dev: dev} }

// Device returns the underlying device (the guest's view of it).
func (g *GuestDriver) Device() *MemDevice { return g.dev }

// SyncToTarget performs the stock driver's reconciliation loop: plug
// the lowest unplugged sub-blocks while below the requested size,
// unplug the highest plugged sub-blocks while above it. Returns the
// net signed byte change applied.
func (g *GuestDriver) SyncToTarget() (int64, error) {
	var change int64
	for g.dev.PluggedSize() < g.dev.RequestedSize() && !g.SuppressAutoPlug {
		gpa, ok := g.lowestUnplugged()
		if !ok {
			break
		}
		if err := g.dev.Plug(gpa); err != nil {
			return change, err
		}
		if g.OnPlug != nil {
			g.OnPlug(gpa, SubBlockSize)
		}
		change += SubBlockSize
	}
	for g.dev.PluggedSize() > g.dev.RequestedSize() {
		gpa, ok := g.highestPlugged()
		if !ok {
			break
		}
		if err := g.dev.Unplug(gpa); err != nil {
			return change, err
		}
		if g.OnUnplug != nil {
			g.OnUnplug(gpa, SubBlockSize)
		}
		change -= SubBlockSize
	}
	return change, nil
}

func (g *GuestDriver) lowestUnplugged() (memdef.GPA, bool) {
	for i, p := range g.dev.plugged {
		if !p {
			return g.dev.regionAddr + memdef.GPA(uint64(i)*SubBlockSize), true
		}
	}
	return 0, false
}

func (g *GuestDriver) highestPlugged() (memdef.GPA, bool) {
	for i := len(g.dev.plugged) - 1; i >= 0; i-- {
		if g.dev.plugged[i] {
			return g.dev.regionAddr + memdef.GPA(uint64(i)*SubBlockSize), true
		}
	}
	return 0, false
}

// UnplugSubBlock is the paper's first driver modification: release the
// specific sub-block containing gpa to the host, regardless of the
// hypervisor's requested size.
func (g *GuestDriver) UnplugSubBlock(gpa memdef.GPA) error {
	base := memdef.HugeBase(gpa)
	if err := g.dev.Unplug(base); err != nil {
		return err
	}
	if g.OnUnplug != nil {
		g.OnUnplug(base, SubBlockSize)
	}
	return nil
}

// PlugSubBlock plugs the specific sub-block containing gpa (used when
// a VM legitimately grows, and by tests).
func (g *GuestDriver) PlugSubBlock(gpa memdef.GPA) error {
	base := memdef.HugeBase(gpa)
	if err := g.dev.Plug(base); err != nil {
		return err
	}
	if g.OnPlug != nil {
		g.OnPlug(base, SubBlockSize)
	}
	return nil
}
