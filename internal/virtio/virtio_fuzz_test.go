package virtio

import (
	"testing"

	"hyperhammer/internal/memdef"
)

// FuzzDeviceProtocol drives a virtio-mem device with an arbitrary
// request stream and checks the accounting invariants: plugged size
// equals the plugged sub-block count times the sub-block size, never
// exceeds the region, and the backend saw exactly matching
// plug/unplug effects.
func FuzzDeviceProtocol(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x82, 0x01, 0x40})
	f.Add([]byte{0xFF, 0x7F, 0x80, 0x00})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const subBlocks = 16
		backend := &countingBackend{}
		dev, err := NewMemDevice(0, subBlocks*SubBlockSize, backend, nil)
		if err != nil {
			t.Fatal(err)
		}
		dev.SetRequestedSize(subBlocks * SubBlockSize)
		for _, op := range ops {
			idx := memdef.GPA(op&0x0F) * SubBlockSize
			switch {
			case op&0x80 == 0:
				_ = dev.Plug(idx)
			case op&0x40 == 0:
				_ = dev.Unplug(idx)
			default:
				dev.SetRequestedSize(uint64(op&0x3F) * SubBlockSize)
			}
			plugged := 0
			for i := 0; i < subBlocks; i++ {
				if dev.IsPlugged(memdef.GPA(i) * SubBlockSize) {
					plugged++
				}
			}
			if dev.PluggedSize() != uint64(plugged)*SubBlockSize {
				t.Fatalf("plugged size %d != %d sub-blocks", dev.PluggedSize(), plugged)
			}
			if dev.PluggedSize() > dev.RegionSize() {
				t.Fatal("plugged beyond region")
			}
			if backend.plugs-backend.unplugs != plugged {
				t.Fatalf("backend saw %d net plugs, device has %d",
					backend.plugs-backend.unplugs, plugged)
			}
		}
	})
}

type countingBackend struct{ plugs, unplugs int }

func (b *countingBackend) PlugRange(memdef.GPA, uint64) error {
	b.plugs++
	return nil
}

func (b *countingBackend) UnplugRange(memdef.GPA, uint64) error {
	b.unplugs++
	return nil
}
