package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"hyperhammer/internal/profile"
	"hyperhammer/internal/runartifact"
	"hyperhammer/internal/runstore"
)

func historyTestArtifact(rounds string) *runartifact.Artifact {
	a := runartifact.New("hyperhammer", 4, "short")
	a.Config["hammer-rounds"] = rounds
	a.SimSeconds = 123.5
	a.Outcome["attempts"] = 2
	a.Profile = []profile.Entry{{Path: "attack.campaign", SimSeconds: 120, Activations: 500}}
	return a
}

// TestHistoryEndpointsNoStore: without a store the endpoints serve
// empty-but-schema-valid documents — lists present, never null.
func TestHistoryEndpointsNoStore(t *testing.T) {
	srv, _, _ := newTestServer(t)
	for path, wantList := range map[string]string{
		"/api/history": `"entries": []`,
		"/api/trend":   `"groups": []`,
	} {
		code, body := get(t, srv, path)
		if code != 200 {
			t.Fatalf("GET %s = %d", path, code)
		}
		if strings.Contains(body, "null") {
			t.Errorf("%s serves null without a store:\n%s", path, body)
		}
		if !strings.Contains(body, wantList) {
			t.Errorf("%s lacks its empty list:\n%s", path, body)
		}
	}
}

// TestHistoryEndpointsServeStore: an installed store's runs appear in
// both endpoints, and the trend endpoint attributes drift.
func TestHistoryEndpointsServeStore(t *testing.T) {
	srv, _, _ := newTestServer(t)
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv.plane.SetRunStore(store)

	if _, err := store.Ingest(historyTestArtifact("150000")); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Ingest(historyTestArtifact("150000")); err != nil {
		t.Fatal(err)
	}
	perturbed := historyTestArtifact("400000")
	perturbed.SimSeconds = 300.25
	if _, err := store.Ingest(perturbed); err != nil {
		t.Fatal(err)
	}

	code, body := get(t, srv, "/api/history")
	if code != 200 {
		t.Fatalf("history = %d", code)
	}
	var h runstore.HistorySnapshot
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("history decode: %v", err)
	}
	if len(h.Entries) != 3 {
		t.Fatalf("history has %d entries, want 3", len(h.Entries))
	}

	code, body = get(t, srv, "/api/trend")
	if code != 200 {
		t.Fatalf("trend = %d", code)
	}
	var r runstore.Report
	if err := json.Unmarshal([]byte(body), &r); err != nil {
		t.Fatalf("trend decode: %v", err)
	}
	if len(r.Groups) != 1 || !r.Groups[0].SimDrift || r.Groups[0].DriftKind != runstore.DriftConfig {
		t.Fatalf("trend misfolded the perturbed run: %+v", r.Groups)
	}
}

// TestHistoryEndpointsRaceIngest: two goroutines ingesting while both
// endpoints are polled — with -race this proves the snapshot-copy
// contract, and every observed response must be complete, valid JSON
// with no nulls (never a partial view of an in-flight ingest).
func TestHistoryEndpointsRaceIngest(t *testing.T) {
	srv, _, _ := newTestServer(t)
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv.plane.SetRunStore(store)

	const perWriter = 8
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(rounds string) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := store.Ingest(historyTestArtifact(rounds)); err != nil {
					t.Error(err)
					return
				}
			}
		}([]string{"150000", "400000"}[w])
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	poll := func() {
		for _, path := range []string{"/api/history", "/api/trend"} {
			code, body := get(t, srv, path)
			if code != 200 {
				t.Errorf("GET %s = %d", path, code)
			}
			if strings.Contains(body, "null") {
				t.Errorf("%s served null mid-ingest:\n%s", path, body)
			}
			var doc map[string]any
			if err := json.Unmarshal([]byte(body), &doc); err != nil {
				t.Errorf("%s served partial JSON mid-ingest: %v", path, err)
			}
		}
	}
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
			poll()
		}
	}

	code, body := get(t, srv, "/api/history")
	if code != 200 {
		t.Fatalf("final history = %d", code)
	}
	var h runstore.HistorySnapshot
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if len(h.Entries) != 2*perWriter {
		t.Fatalf("final history has %d entries, want %d", len(h.Entries), 2*perWriter)
	}
	seen := map[int]bool{}
	for _, e := range h.Entries {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d in concurrent ingest", e.Seq)
		}
		seen[e.Seq] = true
	}
}
