package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
	"time"

	"hyperhammer/internal/report"
)

// SimNow reports the current simulated time for log stamping; a nil
// SimNow stamps records with "-".
type SimNow func() time.Duration

// logHandler is a slog.Handler that stamps every record with the
// simulated clock instead of (meaningless, microseconds-long) wall
// time, so human-readable logs line up with traces and metrics on one
// time base:
//
//	sim=2.1h level=INFO msg="attempt finished" attempt=3 success=false
type logHandler struct {
	mu     *sync.Mutex
	w      io.Writer
	now    SimNow
	level  slog.Leveler
	prefix string // preformatted WithAttrs attrs
	groups []string
}

// NewLogHandler creates a sim-time slog handler writing to w at the
// given minimum level (nil level means slog.LevelInfo).
func NewLogHandler(w io.Writer, now SimNow, level slog.Leveler) slog.Handler {
	if level == nil {
		level = slog.LevelInfo
	}
	return &logHandler{mu: &sync.Mutex{}, w: w, now: now, level: level}
}

// NewLogger wraps NewLogHandler in a *slog.Logger.
func NewLogger(w io.Writer, now SimNow, level slog.Leveler) *slog.Logger {
	return slog.New(NewLogHandler(w, now, level))
}

func (h *logHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= h.level.Level()
}

func (h *logHandler) Handle(_ context.Context, r slog.Record) error {
	var sb strings.Builder
	stamp := "-"
	if h.now != nil {
		stamp = report.FormatDuration(h.now())
	}
	fmt.Fprintf(&sb, "sim=%s level=%s msg=%s", stamp, r.Level, quote(r.Message))
	sb.WriteString(h.prefix)
	r.Attrs(func(a slog.Attr) bool {
		appendAttr(&sb, h.groups, a)
		return true
	})
	sb.WriteByte('\n')
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := io.WriteString(h.w, sb.String())
	return err
}

func (h *logHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	h2 := *h
	var sb strings.Builder
	for _, a := range attrs {
		appendAttr(&sb, h.groups, a)
	}
	h2.prefix = h.prefix + sb.String()
	return &h2
}

func (h *logHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	h2 := *h
	h2.groups = append(append([]string{}, h.groups...), name)
	return &h2
}

// appendAttr renders one attr as " key=value", flattening groups with
// dotted keys.
func appendAttr(sb *strings.Builder, groups []string, a slog.Attr) {
	a.Value = a.Value.Resolve()
	if a.Value.Kind() == slog.KindGroup {
		sub := a.Value.Group()
		if a.Key != "" {
			groups = append(append([]string{}, groups...), a.Key)
		}
		for _, ga := range sub {
			appendAttr(sb, groups, ga)
		}
		return
	}
	if a.Equal(slog.Attr{}) {
		return
	}
	key := a.Key
	if len(groups) > 0 {
		key = strings.Join(groups, ".") + "." + key
	}
	fmt.Fprintf(sb, " %s=%s", key, quote(fmt.Sprint(a.Value.Any())))
}

// quote wraps values containing whitespace or quotes in %q form.
func quote(s string) string {
	if strings.ContainsAny(s, " \t\n\"=") || s == "" {
		return fmt.Sprintf("%q", s)
	}
	return s
}
