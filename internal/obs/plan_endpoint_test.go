package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"hyperhammer/internal/profile"
	"hyperhammer/internal/sched"
)

// TestPlanEndpointEmpty: without a plan source, /api/plan serves the
// empty-but-schema-valid report (arrays [], never null).
func TestPlanEndpointEmpty(t *testing.T) {
	srv, _, _ := newTestServer(t)
	code, body := get(t, srv, "/api/plan")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if strings.Contains(body, "null") {
		t.Fatalf("empty plan serves null:\n%s", body)
	}
	var r profile.PlanReport
	if err := json.Unmarshal([]byte(body), &r); err != nil {
		t.Fatal(err)
	}
	if r.Version != profile.PlanVersion || len(r.Units) != 0 {
		t.Fatalf("empty plan = %+v", r)
	}
}

// TestPlanEndpointServesInstalledSource: the installed callback's
// report is what the endpoint returns, reflecting the live schedule.
func TestPlanEndpointServesInstalledSource(t *testing.T) {
	srv, _, _ := newTestServer(t)
	sc := &sched.Schedule{
		Workers:     2,
		WallSeconds: 0.2,
		Units: []sched.UnitTiming{
			{Index: 0, Name: "exp.a", Worker: 0, EndSeconds: 0.1,
				DeliverStartSeconds: 0.1, DeliverEndSeconds: 0.11, Started: true, Delivered: true},
			{Index: 1, Name: "exp.b", Worker: 1, EndSeconds: 0.2,
				DeliverStartSeconds: 0.2, DeliverEndSeconds: 0.2, Started: true, Delivered: true},
		},
	}
	srv.plane.SetPlanFunc(func() *profile.PlanReport { return profile.BuildPlanReport(sc) })
	code, body := get(t, srv, "/api/plan")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	var r profile.PlanReport
	if err := json.Unmarshal([]byte(body), &r); err != nil {
		t.Fatal(err)
	}
	if r.Workers != 2 || len(r.Units) != 2 || len(r.CriticalPath) == 0 {
		t.Fatalf("served plan = %+v", r)
	}
	// A callback returning nil degrades to the empty report.
	srv.plane.SetPlanFunc(func() *profile.PlanReport { return nil })
	_, body = get(t, srv, "/api/plan")
	if strings.Contains(body, "null") {
		t.Fatalf("nil-returning source serves null:\n%s", body)
	}
}
