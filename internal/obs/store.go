package obs

import (
	"sort"
	"strings"
	"sync"

	"hyperhammer/internal/metrics"
)

// Point is one sampled value of a series.
type Point struct {
	// SimSeconds is the accumulated simulated time at the sample. When
	// several hosts share one plane (hh-tables), each host's clock
	// folds into the registry's accumulated base at rebind, so
	// SimSeconds is monotonic across hosts; Sample counts samples.
	SimSeconds float64 `json:"t"`
	// Value is the series value at the sample.
	Value float64 `json:"v"`
	// Sample is the global sample number the point was taken in.
	Sample uint64 `json:"n"`
	// Unit, when set, names the scheduled experiment unit whose merge
	// produced the sample (parallel runs sample the shared registry
	// once per completed unit, tagged so a viewer can attribute steps
	// in a series to the unit that caused them).
	Unit string `json:"unit,omitempty"`
}

// SeriesData is one series' retained points, oldest first.
type SeriesData struct {
	Name   string   `json:"name"`
	Labels []string `json:"labels,omitempty"` // alternating key/value
	Kind   string   `json:"kind"`
	Points []Point  `json:"points"`
}

// storedSeries is one series' ring buffer.
type storedSeries struct {
	name   string
	labels []string
	kind   string
	ring   []Point // fixed capacity once full
	next   int     // insertion index when the ring is full
	full   bool
}

func (ss *storedSeries) add(p Point, cap int) {
	if !ss.full {
		ss.ring = append(ss.ring, p)
		if len(ss.ring) >= cap {
			ss.full = true
			ss.next = 0
		}
		return
	}
	ss.ring[ss.next] = p
	ss.next = (ss.next + 1) % len(ss.ring)
}

func (ss *storedSeries) points() []Point {
	if !ss.full {
		out := make([]Point, len(ss.ring))
		copy(out, ss.ring)
		return out
	}
	out := make([]Point, 0, len(ss.ring))
	out = append(out, ss.ring[ss.next:]...)
	out = append(out, ss.ring[:ss.next]...)
	return out
}

// Store retains a bounded time series per metric: every Record appends
// the current value of each counter and gauge (and each histogram's
// _count and _sum) to a per-series ring. All methods are safe for
// concurrent use and no-op on a nil receiver.
type Store struct {
	mu      sync.Mutex
	cap     int
	series  map[string]*storedSeries
	samples uint64
}

// DefaultSeriesCap bounds each series' ring when the configuration
// doesn't: enough resolution for a multi-day campaign timeline without
// unbounded growth.
const DefaultSeriesCap = 720

// NewStore creates a store keeping at most capPerSeries points per
// series (<= 0 selects DefaultSeriesCap).
func NewStore(capPerSeries int) *Store {
	if capPerSeries <= 0 {
		capPerSeries = DefaultSeriesCap
	}
	return &Store{cap: capPerSeries, series: make(map[string]*storedSeries)}
}

// Record appends one point per series in the snapshot. Histograms
// contribute two derived series, name_count and name_sum.
func (s *Store) Record(snap metrics.Snapshot) {
	s.RecordTagged(snap, "")
}

// RecordTagged is Record with every appended point tagged as owned by
// the named scheduled unit (empty for untagged host-clock samples).
func (s *Store) RecordTagged(snap metrics.Snapshot, unit string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.samples++
	t := snap.SimSeconds
	for _, c := range snap.Counters {
		s.add(c.Name, c.Labels, "counter", t, c.Value, unit)
	}
	for _, g := range snap.Gauges {
		s.add(g.Name, g.Labels, "gauge", t, g.Value, unit)
	}
	for _, h := range snap.Histograms {
		s.add(h.Name+"_count", h.Labels, "histogram", t, float64(h.Count), unit)
		s.add(h.Name+"_sum", h.Labels, "histogram", t, h.Sum, unit)
	}
}

// add records one point under the store's lock.
func (s *Store) add(name string, labels []string, kind string, t, v float64, unit string) {
	key := name + "\xff" + strings.Join(labels, "\xfe")
	ss, ok := s.series[key]
	if !ok {
		ss = &storedSeries{name: name, labels: labels, kind: kind}
		s.series[key] = ss
	}
	ss.add(Point{SimSeconds: t, Value: v, Sample: s.samples, Unit: unit}, s.cap)
}

// Samples returns how many snapshots were recorded.
func (s *Store) Samples() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.samples
}

// Series returns the retained series, deterministically ordered by
// name then label signature. A non-empty name filters to that metric
// (histogram-derived series match their base name too, so
// name=foo returns foo_count and foo_sum for a histogram foo).
func (s *Store) Series(name string) []SeriesData {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []SeriesData
	for _, ss := range s.series {
		if name != "" && ss.name != name &&
			ss.name != name+"_count" && ss.name != name+"_sum" {
			continue
		}
		out = append(out, SeriesData{
			Name:   ss.name,
			Labels: ss.labels,
			Kind:   ss.kind,
			Points: ss.points(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return strings.Join(out[i].Labels, ",") < strings.Join(out[j].Labels, ",")
	})
	return out
}
