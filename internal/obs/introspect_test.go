package obs

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"hyperhammer/internal/inspect"
	"hyperhammer/internal/metrics"
	"hyperhammer/internal/simtime"
)

// TestIntrospectionEndpointsWithoutInspector checks /api/heatmap,
// /api/census, and /api/alerts serve schema-valid empty JSON — arrays
// [] and never null — even when no inspector is attached, so dashboards
// and CI curls never trip over a bare run.
func TestIntrospectionEndpointsWithoutInspector(t *testing.T) {
	srv, _, _ := newTestServer(t)
	for _, path := range []string{"/api/heatmap", "/api/census", "/api/alerts"} {
		code, body := get(t, srv, path)
		if code != 200 {
			t.Errorf("%s status = %d", path, code)
		}
		if strings.Contains(body, "null") {
			t.Errorf("%s serializes null: %s", path, body)
		}
		var v map[string]any
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Errorf("%s is not an object: %v", path, err)
		}
	}
}

// TestIntrospectionEndpointsWithInspector checks the endpoints reflect
// live inspector state: heat cells, the cached census, and fired
// alerts.
func TestIntrospectionEndpointsWithInspector(t *testing.T) {
	srv, reg, _ := newTestServer(t)
	ins := inspect.New(inspect.Config{Rules: []inspect.Rule{
		{Name: "hot", Metric: "x_total", Op: ">", Threshold: 5, Mode: inspect.Edge},
	}})
	ins.BindMachine(4, 1024)
	ins.SetMetrics(reg)
	ins.SetCensusFunc(func() inspect.Census { return inspect.Census{VMs: 2} })
	srv.plane.SetInspector(ins)

	ins.RecordRowActivations(1, 512, 9000)
	ins.RecordFlip(1, 512)
	reg.Counter("x_total", "test").Add(10)
	ins.Evaluate(3 * time.Second)

	var heat inspect.HeatmapSnapshot
	_, body := get(t, srv, "/api/heatmap")
	if err := json.Unmarshal([]byte(body), &heat); err != nil {
		t.Fatal(err)
	}
	if heat.Banks != 4 || heat.TotalActivations != 9000 || heat.TotalFlips != 1 {
		t.Errorf("heatmap = banks=%d act=%d flips=%d", heat.Banks, heat.TotalActivations, heat.TotalFlips)
	}

	var census inspect.CensusSnapshot
	_, body = get(t, srv, "/api/census")
	if err := json.Unmarshal([]byte(body), &census); err != nil {
		t.Fatal(err)
	}
	if len(census.Censuses) != 1 || census.Censuses[0].Census.VMs != 2 {
		t.Errorf("census = %+v", census)
	}

	var alerts inspect.AlertsSnapshot
	_, body = get(t, srv, "/api/alerts")
	if err := json.Unmarshal([]byte(body), &alerts); err != nil {
		t.Fatal(err)
	}
	if alerts.Total != 1 || len(alerts.ByRule) != 1 ||
		alerts.ByRule[0].Rule != "hot" || alerts.ByRule[0].Count != 1 {
		t.Errorf("alerts = %+v", alerts)
	}
}

// TestEventsSSEKeepalive checks a consumer on a quiet stream still
// receives comment heartbeats: no events are published at all, yet the
// connection carries ": keepalive" frames at the configured wall-clock
// interval, so slow or idle consumers (and the proxies in front of
// them) know the stream is alive.
func TestEventsSSEKeepalive(t *testing.T) {
	reg := metrics.New()
	clock := &simtime.Clock{}
	reg.BindClock(clock)
	p := NewPlane(reg, Config{SampleEvery: time.Second, KeepAlive: 50 * time.Millisecond})
	p.BindClock(clock)
	srv, err := p.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/api/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// A deliberately slow consumer: read one line at a time with pauses.
	sc := bufio.NewScanner(resp.Body)
	heartbeats := 0
	deadline := time.Now().Add(5 * time.Second)
	for heartbeats < 2 && time.Now().Before(deadline) {
		if !sc.Scan() {
			break
		}
		if strings.HasPrefix(sc.Text(), ": keepalive") {
			heartbeats++
			time.Sleep(75 * time.Millisecond)
		}
	}
	if heartbeats < 2 {
		t.Fatalf("saw %d keepalive frames on an idle stream, want >= 2", heartbeats)
	}
}

// TestBusDropCounterMetric checks the plane surfaces bus drops as the
// obs_bus_dropped_total registry counter, which the default watchpoint
// rules alert on.
func TestBusDropCounterMetric(t *testing.T) {
	reg := metrics.New()
	p := NewPlane(reg, Config{SampleEvery: time.Second})
	sub := p.Bus().Subscribe(2)
	defer sub.Cancel()
	for i := 0; i < 5; i++ {
		p.Bus().Publish("x", 0, nil)
	}
	snap := reg.Snapshot()
	var got float64
	found := false
	for _, c := range snap.Counters {
		if c.Name == "obs_bus_dropped_total" {
			got, found = c.Value, true
		}
	}
	if !found {
		t.Fatal("obs_bus_dropped_total not registered")
	}
	if got != 3 {
		t.Errorf("obs_bus_dropped_total = %g, want 3", got)
	}

	// The default rule set watches that exact metric.
	watched := false
	for _, r := range inspect.DefaultRules() {
		if r.Metric == "obs_bus_dropped_total" {
			watched = true
		}
	}
	if !watched {
		t.Error("default watchpoint rules do not cover obs_bus_dropped_total")
	}
}
