// Package obs is the simulation's live observability plane. Where
// internal/metrics and internal/trace record what happened (a registry
// exported at exit, a JSONL file read after the fact), obs makes the
// same signals watchable while a campaign runs:
//
//   - Bus: a bounded, drop-counting in-process pub/sub that the trace
//     recorder and the periodic sampler publish into,
//   - Store: a ring-buffered time-series store that snapshots every
//     registry series on a simulated-time interval, turning metrics
//     into series over campaign time,
//   - Plane: the wiring between a metrics registry, a trace recorder,
//     and a host's simulated clock,
//   - Server: an opt-in HTTP server exposing Prometheus text, JSON
//     snapshots and series, a live SSE event stream, pprof, and an
//     embedded status page,
//   - Inspect: offline analysis of recorded trace files (span trees,
//     kind counts, timelines, anomalies).
//
// Everything here observes the simulation from the host operator's
// side; nothing feeds back into simulated state, so enabling the plane
// cannot perturb an experiment's results.
package obs

import (
	"sync"
	"sync/atomic"

	"hyperhammer/internal/metrics"
)

// Event is one bus message: a trace event or a sampler tick, stamped
// with the simulated time it happened at.
type Event struct {
	// Seq is the bus's own monotonically increasing sequence number
	// (distinct from the trace recorder's).
	Seq uint64 `json:"seq"`
	// SimSeconds is the simulated time of the event.
	SimSeconds float64 `json:"simSeconds"`
	// Kind names the event, e.g. "span.start", "dram.flip",
	// "obs.sample".
	Kind string `json:"kind"`
	// Data holds the event's fields.
	Data map[string]any `json:"data,omitempty"`
}

// Bus is a bounded in-process pub/sub. Publishing never blocks: a
// subscriber whose buffer is full loses the event and both the
// subscription and the bus count the drop, so backpressure from a slow
// HTTP client can never stall the simulating goroutine. All methods
// are safe for concurrent use, and all no-op on a nil receiver.
type Bus struct {
	mu        sync.Mutex
	seq       uint64
	published uint64
	dropped   uint64
	subs      map[*Subscription]struct{}
	// keep retains the most recent events for replay to late
	// subscribers (0 disables).
	keep   int
	recent []Event
	// dropCtr, when set, mirrors the drop total into the metrics
	// registry (obs_bus_dropped_total), so silent event loss is
	// visible to dashboards and watchpoint rules.
	dropCtr *metrics.Counter
}

// NewBus creates a bus retaining the last keep events for replay.
func NewBus(keep int) *Bus {
	return &Bus{subs: make(map[*Subscription]struct{}), keep: keep}
}

// Subscription is one subscriber's bounded event feed.
type Subscription struct {
	bus     *Bus
	ch      chan Event
	dropped atomic.Uint64
	closed  bool // guarded by bus.mu
}

// Subscribe registers a subscriber with the given channel buffer
// (minimum 1). The caller must Cancel when done.
func (b *Bus) Subscribe(buf int) *Subscription {
	if b == nil {
		// A detached subscription: never receives, can be cancelled.
		return &Subscription{ch: make(chan Event)}
	}
	if buf < 1 {
		buf = 1
	}
	s := &Subscription{bus: b, ch: make(chan Event, buf)}
	b.mu.Lock()
	b.subs[s] = struct{}{}
	b.mu.Unlock()
	return s
}

// Events returns the subscription's feed. The channel is closed by
// Cancel.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Dropped returns how many events this subscriber lost to a full
// buffer.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Cancel detaches the subscription and closes its channel. Safe to
// call more than once.
func (s *Subscription) Cancel() {
	if s == nil {
		return
	}
	if s.bus == nil {
		if !s.closed {
			s.closed = true
			close(s.ch)
		}
		return
	}
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	delete(s.bus.subs, s)
	close(s.ch)
}

// Publish stamps the event with the bus's sequence number and fans it
// out to every subscriber, dropping at full buffers. Safe on a nil
// receiver.
func (b *Bus) Publish(kind string, simSeconds float64, data map[string]any) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.seq++
	b.published++
	ev := Event{Seq: b.seq, SimSeconds: simSeconds, Kind: kind, Data: data}
	if b.keep > 0 {
		b.recent = append(b.recent, ev)
		if len(b.recent) > b.keep {
			b.recent = b.recent[len(b.recent)-b.keep:]
		}
	}
	for s := range b.subs {
		select {
		case s.ch <- ev:
		default:
			s.dropped.Add(1)
			b.dropped++
			b.dropCtr.Inc()
		}
	}
}

// SetDropCounter installs a registry counter that mirrors the bus's
// drop total. Safe on a nil receiver and with a nil counter.
func (b *Bus) SetDropCounter(c *metrics.Counter) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.dropCtr = c
	b.mu.Unlock()
}

// Recent returns the replay ring, oldest first.
func (b *Bus) Recent() []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, len(b.recent))
	copy(out, b.recent)
	return out
}

// Stats returns totals: events published, events dropped across all
// subscribers, and the current subscriber count.
func (b *Bus) Stats() (published, dropped uint64, subscribers int) {
	if b == nil {
		return 0, 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.published, b.dropped, len(b.subs)
}
