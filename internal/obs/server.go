package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"hyperhammer/internal/runstore"
)

// Server is the plane's HTTP front end.
//
// Endpoints:
//
//	/              embedded HTML status page
//	/healthz       liveness + plane stats (JSON)
//	/metrics       Prometheus text exposition of the registry
//	/api/snapshot  JSON metrics snapshot
//	/api/series    ring-buffered sim-time series (?name= filters)
//	/api/events    live SSE stream off the event bus (recent events
//	               replayed first)
//	/api/profile   live sim-time cost profile (?format=json|folded|pprof)
//	/api/artifact  current run-artifact bundle, when the CLI installed
//	               a builder (404 otherwise)
//	/api/heatmap   bucketed DRAM activation/flip heatmap (introspection
//	               plane; empty-but-valid without an inspector)
//	/api/census    memory-layout census per plan unit + live host
//	/api/alerts    fired watchpoint alerts (totals, per-rule, ring)
//	/api/forensics flip-provenance snapshot: per-attempt flip lineage,
//	               verdict/owner taxonomies, campaign outcomes
//	/api/ledger    determinism-ledger snapshot: rolling per-stream
//	               fingerprints sealed into sim-time epochs, per unit
//	               (empty-but-valid without a recorder)
//	/api/plan      host-cost schedule analysis of the current batch:
//	               per-unit host timings, critical path, parallel
//	               efficiency (empty-but-valid until a CLI installs a
//	               plan source)
//	/api/history   run-history store index: one row per ingested run
//	               with config/content hashes and headline figures
//	               (empty-but-valid until a CLI opens a store with
//	               -store)
//	/api/trend     cross-run trend report over the store at default
//	               tolerances: per-figure series, drift attribution,
//	               host/bench regressions (hh-trend renders the same
//	               data offline)
//	/debug/pprof/  the standard Go profiler endpoints (wall-clock; the
//	               simulation's own profile is /api/profile)
type Server struct {
	plane *Plane
	ln    net.Listener
	srv   *http.Server
}

// Serve starts the plane's HTTP server on addr (":0" picks a free
// port) and serves in a background goroutine until Close.
func (p *Plane) Serve(addr string) (*Server, error) {
	if p == nil {
		return nil, fmt.Errorf("obs: serve on a nil plane")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{plane: p, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/api/snapshot", s.handleSnapshot)
	mux.HandleFunc("/api/series", s.handleSeries)
	mux.HandleFunc("/api/events", s.handleEvents)
	mux.HandleFunc("/api/profile", s.handleProfile)
	mux.HandleFunc("/api/artifact", s.handleArtifact)
	mux.HandleFunc("/api/heatmap", s.handleHeatmap)
	mux.HandleFunc("/api/census", s.handleCensus)
	mux.HandleFunc("/api/alerts", s.handleAlerts)
	mux.HandleFunc("/api/forensics", s.handleForensics)
	mux.HandleFunc("/api/ledger", s.handleLedger)
	mux.HandleFunc("/api/plan", s.handlePlan)
	mux.HandleFunc("/api/history", s.handleHistory)
	mux.HandleFunc("/api/trend", s.handleTrend)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the server's listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down immediately, unblocking any SSE
// streams.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, statusPageHTML)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	published, dropped, subs := s.plane.Bus().Stats()
	writeJSON(w, map[string]any{
		"ok":            true,
		"simSeconds":    s.plane.SimNow().Seconds(),
		"uptimeSeconds": s.plane.Uptime().Seconds(),
		"samples":       s.plane.Store().Samples(),
		"busPublished":  published,
		"busDropped":    dropped,
		"busSubs":       subs,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.plane.Registry().WriteProm(w) //nolint:errcheck // client went away
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.plane.Registry().WriteJSON(w) //nolint:errcheck // client went away
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	// Shape contract: "series" is always a JSON array, never null —
	// an unknown name or an empty store yields []. Dashboards iterate
	// the field without guarding.
	series := s.plane.Store().Series(name)
	if series == nil {
		series = []SeriesData{}
	}
	writeJSON(w, map[string]any{
		"simSeconds": s.plane.SimNow().Seconds(),
		"samples":    s.plane.Store().Samples(),
		"series":     series,
	})
}

// handleProfile serves the live cost profile in the requested format:
// JSON entry table (default), flamegraph folded stacks, or gzipped
// pprof protobuf (`go tool pprof http://.../api/profile?format=pprof`).
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	p := s.plane.Profile()
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, p)
	case "folded":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		p.WriteFolded(w) //nolint:errcheck // client went away
	case "pprof":
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", `attachment; filename="simprofile.pb.gz"`)
		p.WritePprof(w) //nolint:errcheck // client went away
	default:
		http.Error(w, fmt.Sprintf("unknown format %q (want json, folded, or pprof)", format), http.StatusBadRequest)
	}
}

// handleArtifact serves the CLI-installed run-artifact builder's
// current bundle; 404 until a CLI installs one.
func (s *Server) handleArtifact(w http.ResponseWriter, _ *http.Request) {
	fn := s.plane.ArtifactFunc()
	if fn == nil {
		http.Error(w, "no artifact builder installed (run with -artifact)", http.StatusNotFound)
		return
	}
	writeJSON(w, fn())
}

// handleHeatmap serves the introspection plane's DRAM heatmap. The
// snapshot methods are nil-safe, so the shape contract holds with no
// inspector installed: arrays are [] and never null.
func (s *Server) handleHeatmap(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.plane.Inspector().HeatmapSnapshot())
}

// handleCensus serves the memory-layout census (plan units in
// declaration order, live host last).
func (s *Server) handleCensus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.plane.Inspector().CensusSnapshot())
}

// handleAlerts serves the fired-watchpoint state.
func (s *Server) handleAlerts(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.plane.Inspector().AlertsSnapshot())
}

// handleForensics serves the flip-provenance snapshot. Snapshot is
// nil-safe, so the shape contract holds with no recorder installed:
// arrays are [] and never null.
func (s *Server) handleForensics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.plane.Forensics().Snapshot())
}

// handleLedger serves the determinism-ledger snapshot. Snapshot is
// nil-safe, so the shape contract holds with no recorder installed:
// arrays are [] and never null.
func (s *Server) handleLedger(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.plane.Ledger().Snapshot())
}

// handlePlan serves the host-cost schedule report. PlanReport is
// never nil, so the shape contract holds with no plan source
// installed: arrays are [] and never null.
func (s *Server) handlePlan(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.plane.PlanReport())
}

// handleHistory serves the run-history store's index. History returns
// a snapshot copy built under the store lock, so the response is never
// a partial view of an in-flight ingest; on a nil store the document
// is empty but schema-valid (entries is [] and never null).
func (s *Server) handleHistory(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.plane.RunStore().History())
}

// handleTrend serves the cross-run trend report at the default
// tolerances (sim figures exact, host durations listed but not gated,
// bench ns/op at ±30%). Like /api/history it folds a snapshot copy of
// the index, and on a nil store the report is empty but schema-valid.
func (s *Server) handleTrend(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.plane.RunStore().Trend(runstore.DefaultTrendOptions()))
}

// handleEvents streams the bus over SSE: the replay ring first, then
// live events until the client disconnects or the server closes.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	sub := s.plane.Bus().Subscribe(512)
	defer sub.Cancel()

	write := func(ev Event) bool {
		b, err := json.Marshal(ev)
		if err != nil {
			return true // skip unencodable event, keep the stream
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", b); err != nil {
			return false
		}
		return true
	}
	// Replay before going live; events published between Recent and
	// Subscribe-drain may duplicate, which SSE consumers dedupe by seq.
	lastSeq := uint64(0)
	for _, ev := range s.plane.Bus().Recent() {
		if !write(ev) {
			return
		}
		lastSeq = ev.Seq
	}
	flusher.Flush()
	// Keepalive comment frames ride alongside data on a wall-clock
	// ticker: a quiet simulation (or one the scheduler has parked)
	// still produces bytes, so clients and proxies can tell an idle
	// stream from a dead one.
	ka := time.NewTicker(s.plane.KeepAlive())
	defer ka.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-ka.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case ev, ok := <-sub.Events():
			if !ok {
				return
			}
			if ev.Seq <= lastSeq {
				continue // already replayed
			}
			if !write(ev) {
				return
			}
			flusher.Flush()
		}
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}
