package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"hyperhammer/internal/inspect"
	"hyperhammer/internal/metrics"
	"hyperhammer/internal/profile"
	"hyperhammer/internal/simtime"
	"hyperhammer/internal/trace"
)

// newTestServer boots a plane with one live counter and a ticking
// clock, serving on a random port.
func newTestServer(t *testing.T) (*Server, *metrics.Registry, *simtime.Clock) {
	t.Helper()
	reg := metrics.New()
	clock := &simtime.Clock{}
	reg.BindClock(clock)
	p := NewPlane(reg, Config{SampleEvery: time.Second})
	p.BindClock(clock)
	srv, err := p.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, reg, clock
}

func get(t *testing.T, srv *Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + srv.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestHealthz(t *testing.T) {
	srv, _, clock := newTestServer(t)
	clock.Advance(90 * time.Second)
	code, body := get(t, srv, "/healthz")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	var h map[string]any
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h["ok"] != true || h["simSeconds"].(float64) != 90 {
		t.Errorf("healthz = %v", h)
	}
}

func TestMetricsEndpointServesProm(t *testing.T) {
	srv, reg, _ := newTestServer(t)
	reg.Counter("dram_activations_total", "activations").Add(42)
	code, body := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, "sim_seconds") ||
		!strings.Contains(body, "dram_activations_total 42") {
		t.Errorf("prom body:\n%s", body)
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	srv, reg, _ := newTestServer(t)
	reg.Gauge("vms", "live").Set(3)
	code, body := get(t, srv, "/api/snapshot")
	if code != 200 || !strings.Contains(body, `"vms"`) {
		t.Errorf("snapshot = %d %s", code, body)
	}
}

func TestSeriesEndpointAccumulatesOverSimTime(t *testing.T) {
	srv, reg, clock := newTestServer(t)
	acts := reg.Counter("dram_activations_total", "activations")
	acts.Add(10)
	clock.Advance(1100 * time.Millisecond)
	acts.Add(20)
	clock.Advance(time.Second)

	code, body := get(t, srv, "/api/series?name=dram_activations_total")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	var out struct {
		Series []SeriesData `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Series) != 1 {
		t.Fatalf("series = %+v", out.Series)
	}
	pts := out.Series[0].Points
	if len(pts) < 2 {
		t.Fatalf("want >= 2 sample points, got %+v", pts)
	}
	if pts[len(pts)-1].Value != 30 {
		t.Errorf("last value = %v", pts[len(pts)-1].Value)
	}
	// Unknown names return an empty list, not null.
	_, body = get(t, srv, "/api/series?name=nope")
	if !strings.Contains(body, `"series": []`) {
		t.Errorf("empty filter body = %s", body)
	}
}

// TestSeriesShapeIsStable pins the /api/series JSON contract: the
// "series" field is an array in every state — fresh plane, no samples,
// no name filter — never null, and each series' "points" is an array
// too. Dashboards iterate these without guarding.
func TestSeriesShapeIsStable(t *testing.T) {
	p := NewPlane(nil, Config{}) // no registry, no samples ever
	srv, err := p.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/api/series", "/api/series?name=nope"} {
		code, body := get(t, srv, path)
		if code != 200 {
			t.Fatalf("GET %s status = %d", path, code)
		}
		if strings.Contains(body, `"series": null`) || !strings.Contains(body, `"series": []`) {
			t.Errorf("GET %s: series not an empty array:\n%s", path, body)
		}
	}

	// And with data present, every series' points is a real array.
	srv2, reg, clock := newTestServer(t)
	reg.Counter("dram_activations_total", "a").Add(1)
	clock.Advance(2 * time.Second)
	_, body := get(t, srv2, "/api/series")
	var out struct {
		Series []SeriesData `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Series) == 0 {
		t.Fatal("no series recorded")
	}
	if strings.Contains(body, `"points": null`) {
		t.Errorf("series with null points:\n%s", body)
	}
}

func TestProfileEndpoint(t *testing.T) {
	srv, reg, clock := newTestServer(t)
	rec := trace.New(nil, 0)
	rec.BindClock(clock)
	b := profile.NewBuilder(reg)
	srv.plane.AttachProfile(b)
	srv.plane.TapTrace(rec)

	root := rec.StartSpan("attack.campaign")
	child := root.StartChild("attack.steer")
	clock.Advance(30 * time.Second)
	child.End()
	root.End()

	code, body := get(t, srv, "/api/profile")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	var p profile.Profile
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Lookup("attack.campaign;attack.steer"); !ok {
		t.Errorf("profile entries = %+v", p.Entries)
	}

	_, folded := get(t, srv, "/api/profile?format=folded")
	if !strings.Contains(folded, "attack.campaign;attack.steer 30000000") {
		t.Errorf("folded body:\n%s", folded)
	}

	code, raw := get(t, srv, "/api/profile?format=pprof")
	if code != 200 || len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Errorf("pprof format: code=%d, first bytes % x", code, raw[:min(2, len(raw))])
	}

	if code, _ := get(t, srv, "/api/profile?format=bogus"); code != 400 {
		t.Errorf("bogus format status = %d", code)
	}
}

// TestProfileEndpointWithoutBuilder: the endpoint degrades to an empty
// profile rather than erroring when no profiler is attached.
func TestProfileEndpointWithoutBuilder(t *testing.T) {
	srv, _, _ := newTestServer(t)
	code, body := get(t, srv, "/api/profile")
	if code != 200 || !strings.Contains(body, `"events": 0`) {
		t.Errorf("code=%d body=%s", code, body)
	}
}

func TestArtifactEndpoint(t *testing.T) {
	srv, _, _ := newTestServer(t)
	if code, _ := get(t, srv, "/api/artifact"); code != 404 {
		t.Errorf("without builder: status = %d", code)
	}
	srv.plane.SetArtifactFunc(func() any {
		return map[string]any{"tool": "test", "seed": 4}
	})
	code, body := get(t, srv, "/api/artifact")
	if code != 200 || !strings.Contains(body, `"tool": "test"`) {
		t.Errorf("with builder: code=%d body=%s", code, body)
	}
}

func TestEventsSSEStreamsTraceEvents(t *testing.T) {
	srv, _, clock := newTestServer(t)
	rec := trace.New(nil, 0)
	rec.BindClock(clock)
	srv.plane.TapTrace(rec)

	resp, err := http.Get("http://" + srv.Addr() + "/api/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %s", ct)
	}

	clock.Advance(5 * time.Second)
	rec.Emit("vm.create", "memBytes", 7)

	sc := bufio.NewScanner(resp.Body)
	deadline := time.After(5 * time.Second)
	got := make(chan Event, 16)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev Event
			if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev) == nil {
				got <- ev
			}
		}
	}()
	for {
		select {
		case ev := <-got:
			if ev.Kind == "vm.create" {
				if ev.SimSeconds != 5 {
					t.Errorf("simSeconds = %v", ev.SimSeconds)
				}
				return
			}
		case <-deadline:
			t.Fatal("vm.create never arrived on the SSE stream")
		}
	}
}

func TestStatusPageServed(t *testing.T) {
	srv, _, _ := newTestServer(t)
	code, body := get(t, srv, "/")
	if code != 200 || !strings.Contains(body, "hyperhammer") ||
		!strings.Contains(body, "EventSource") {
		t.Errorf("status page = %d (%d bytes)", code, len(body))
	}
	code, _ = get(t, srv, "/nope")
	if code != 404 {
		t.Errorf("unknown path = %d", code)
	}
}

func TestPprofServed(t *testing.T) {
	srv, _, _ := newTestServer(t)
	code, body := get(t, srv, "/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index = %d", code)
	}
}

func TestServerCloseUnblocksSSE(t *testing.T) {
	srv, _, _ := newTestServer(t)
	resp, err := http.Get("http://" + srv.Addr() + "/api/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	done := make(chan struct{})
	go func() {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		close(done)
	}()
	srv.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream still open after server close")
	}
}

// TestConcurrentScrapeWhileSimulating is the live-plane race test: one
// goroutine drives the simulation (publishing trace events and
// crossing sample boundaries) while HTTP clients scrape every
// endpoint.
func TestConcurrentScrapeWhileSimulating(t *testing.T) {
	reg := metrics.New()
	clock := &simtime.Clock{}
	reg.BindClock(clock)
	p := NewPlane(reg, Config{SampleEvery: time.Second})
	rec := trace.New(nil, 0)
	rec.BindClock(clock)
	p.TapTrace(rec)
	p.BindClock(clock)
	ins := inspect.New(inspect.Config{})
	ins.BindMachine(4, 2048)
	ins.SetMetrics(reg)
	ins.SetCensusFunc(func() inspect.Census { return inspect.Census{VMs: 1} })
	p.SetInspector(ins)
	srv, err := p.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := reg.Counter("n", "")
	simDone := make(chan struct{})
	go func() {
		defer close(simDone)
		for i := 0; i < 300; i++ {
			c.Inc()
			rec.Emit("tick", "i", i)
			ins.RecordRowActivations(i%4, i%2048, 100)
			clock.Advance(500 * time.Millisecond)
			ins.Evaluate(clock.Now())
		}
	}()
	paths := []string{"/healthz", "/metrics", "/api/snapshot", "/api/series", "/",
		"/api/heatmap", "/api/census", "/api/alerts", "/api/forensics"}
	for _, path := range paths {
		path := path
		go func() {
			for i := 0; i < 20; i++ {
				resp, err := http.Get("http://" + srv.Addr() + path)
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
			}
		}()
	}
	<-simDone
	if got := p.Store().Samples(); got < 100 {
		t.Errorf("samples = %d, want many", got)
	}
	code, body := get(t, srv, "/api/series?name=n")
	if code != 200 {
		t.Fatalf("series status = %d", code)
	}
	var out struct {
		Series []SeriesData `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Series) != 1 || len(out.Series[0].Points) < 2 {
		t.Fatalf("series after run = %+v", out.Series)
	}
	_ = fmt.Sprint() // keep fmt import if asserts change
}
