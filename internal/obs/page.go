package obs

// statusPageHTML is the self-contained live status page: no external
// assets, plain JS polling /api/snapshot and streaming /api/events.
// It renders the simulated clock, per-subsystem counters, the span
// phase timeline, and a live event log.
const statusPageHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>hyperhammer live observability</title>
<style>
  body { font: 13px/1.5 ui-monospace, SFMono-Regular, Menlo, monospace;
         margin: 0; background: #101418; color: #d6dde4; }
  header { padding: 12px 20px; background: #181e25; border-bottom: 1px solid #2a323c;
           display: flex; gap: 28px; align-items: baseline; flex-wrap: wrap; }
  header h1 { font-size: 15px; margin: 0; color: #7fd1b9; }
  header .stat b { color: #e8b44c; }
  main { display: grid; grid-template-columns: 1fr 1fr; gap: 16px; padding: 16px 20px; }
  section { background: #181e25; border: 1px solid #2a323c; border-radius: 6px;
            padding: 10px 14px; overflow: auto; max-height: 44vh; }
  section h2 { font-size: 12px; text-transform: uppercase; letter-spacing: .08em;
               color: #8aa0b4; margin: 2px 0 8px; }
  table { border-collapse: collapse; width: 100%; }
  td, th { text-align: left; padding: 1px 10px 1px 0; white-space: nowrap; }
  td.num { text-align: right; color: #e8b44c; }
  .phase { display: flex; align-items: center; gap: 8px; margin: 2px 0; }
  .phase .bar { height: 9px; background: #3f7cac; border-radius: 2px; min-width: 2px; }
  .phase.open .bar { background: #7fd1b9; }
  .phase .lbl { min-width: 180px; }
  #events div { border-bottom: 1px solid #222a33; padding: 1px 0; }
  #events .k { color: #7fd1b9; }
  #events .t { color: #8aa0b4; }
  .muted { color: #5d6b78; }
</style>
</head>
<body>
<header>
  <h1>hyperhammer · live plane</h1>
  <span class="stat">sim <b id="sim">-</b></span>
  <span class="stat">samples <b id="samples">-</b></span>
  <span class="stat">bus <b id="bus">-</b></span>
  <span class="stat muted" id="conn">connecting…</span>
</header>
<main>
  <section><h2>phase timeline (spans, sim time)</h2><div id="phases" class="muted">no spans yet</div></section>
  <section><h2>live events</h2><div id="events"></div></section>
  <section style="grid-column: 1 / -1"><h2>counters &amp; gauges</h2>
    <table id="metrics"><tbody></tbody></table></section>
</main>
<script>
'use strict';
const fmtSim = s => {
  if (s >= 86400) return (s/86400).toFixed(1) + 'd';
  if (s >= 3600) return (s/3600).toFixed(1) + 'h';
  if (s >= 60) return (s/60).toFixed(1) + 'min';
  return s.toFixed(1) + 's';
};
const spans = new Map();   // id -> {name, start, end}
let maxSim = 0;

function renderPhases() {
  const el = document.getElementById('phases');
  if (!spans.size) return;
  const rows = [...spans.values()].slice(-40);
  el.classList.remove('muted');
  el.innerHTML = rows.map(s => {
    const end = s.end ?? maxSim;
    const w = maxSim > 0 ? Math.max(2, 100 * (end - s.start) / maxSim) : 2;
    const off = maxSim > 0 ? 100 * s.start / maxSim : 0;
    const dur = fmtSim(Math.max(0, end - s.start)) + (s.end == null ? ' (open)' : '');
    return '<div class="phase' + (s.end == null ? ' open' : '') + '">' +
      '<span class="lbl">' + s.name + ' · ' + dur + '</span>' +
      '<span style="flex:1;position:relative;height:9px">' +
      '<span class="bar" style="position:absolute;left:' + off + '%;width:' + w + '%"></span>' +
      '</span></div>';
  }).join('');
}

function onEvent(ev) {
  maxSim = Math.max(maxSim, ev.simSeconds || 0);
  if (ev.kind === 'span.start' && ev.data && ev.data.span != null) {
    spans.set(ev.data.span, {name: ev.data.name, start: ev.simSeconds, end: null});
    renderPhases();
  } else if (ev.kind === 'span.end' && ev.data && ev.data.span != null) {
    const s = spans.get(ev.data.span);
    if (s) s.end = ev.simSeconds; else spans.set(ev.data.span,
      {name: ev.data.name, start: ev.simSeconds - (ev.data.seconds || 0), end: ev.simSeconds});
    renderPhases();
  }
  if (ev.kind === 'obs.sample') return; // too chatty for the log
  const log = document.getElementById('events');
  const d = document.createElement('div');
  d.innerHTML = '<span class="t">' + fmtSim(ev.simSeconds || 0) + '</span> ' +
    '<span class="k">' + ev.kind + '</span> ' +
    (ev.data ? JSON.stringify(ev.data) : '');
  log.prepend(d);
  while (log.children.length > 60) log.removeChild(log.lastChild);
}

async function poll() {
  try {
    const [h, snap] = await Promise.all([
      fetch('/healthz').then(r => r.json()),
      fetch('/api/snapshot').then(r => r.json()),
    ]);
    document.getElementById('sim').textContent = fmtSim(h.simSeconds || 0);
    document.getElementById('samples').textContent = h.samples;
    document.getElementById('bus').textContent =
      h.busPublished + ' pub / ' + h.busDropped + ' drop';
    maxSim = Math.max(maxSim, h.simSeconds || 0);
    const rows = [...(snap.counters || []), ...(snap.gauges || [])].map(s =>
      '<tr><td>' + s.name + '</td><td class="muted">' +
      (s.labels ? s.labels.join('=').replace(/=([^=]*)(?=.)/g, '=$1 ') : '-') +
      '</td><td class="num">' + s.value + '</td></tr>');
    document.querySelector('#metrics tbody').innerHTML = rows.join('');
    renderPhases();
  } catch (e) { /* server going away; the SSE handler reports it */ }
}

function connect() {
  const es = new EventSource('/api/events');
  es.onopen = () => document.getElementById('conn').textContent = 'live';
  es.onmessage = m => onEvent(JSON.parse(m.data));
  es.onerror = () => {
    document.getElementById('conn').textContent = 'disconnected; retrying…';
  };
}
connect();
poll();
setInterval(poll, 2000);
</script>
</body>
</html>
`
