package obs

import (
	"sync"
	"testing"
)

func TestBusFanOut(t *testing.T) {
	b := NewBus(0)
	a := b.Subscribe(8)
	c := b.Subscribe(8)
	defer a.Cancel()
	defer c.Cancel()
	b.Publish("x", 1.5, map[string]any{"k": 1})
	for _, sub := range []*Subscription{a, c} {
		ev := <-sub.Events()
		if ev.Kind != "x" || ev.SimSeconds != 1.5 || ev.Seq != 1 {
			t.Errorf("event = %+v", ev)
		}
	}
	published, dropped, subs := b.Stats()
	if published != 1 || dropped != 0 || subs != 2 {
		t.Errorf("stats = %d %d %d", published, dropped, subs)
	}
}

func TestBusDropsAtFullBuffer(t *testing.T) {
	b := NewBus(0)
	s := b.Subscribe(2)
	defer s.Cancel()
	for i := 0; i < 5; i++ {
		b.Publish("x", 0, nil)
	}
	if got := s.Dropped(); got != 3 {
		t.Errorf("sub dropped = %d, want 3", got)
	}
	_, dropped, _ := b.Stats()
	if dropped != 3 {
		t.Errorf("bus dropped = %d, want 3", dropped)
	}
	// The retained events are the oldest ones (no displacement).
	ev := <-s.Events()
	if ev.Seq != 1 {
		t.Errorf("first retained seq = %d", ev.Seq)
	}
}

func TestBusReplayRing(t *testing.T) {
	b := NewBus(3)
	for i := 0; i < 5; i++ {
		b.Publish("x", float64(i), nil)
	}
	recent := b.Recent()
	if len(recent) != 3 || recent[0].Seq != 3 || recent[2].Seq != 5 {
		t.Errorf("recent = %+v", recent)
	}
}

func TestBusCancelClosesChannel(t *testing.T) {
	b := NewBus(0)
	s := b.Subscribe(1)
	s.Cancel()
	s.Cancel() // idempotent
	if _, ok := <-s.Events(); ok {
		t.Error("channel not closed")
	}
	b.Publish("x", 0, nil) // must not panic on a cancelled sub
	_, _, subs := b.Stats()
	if subs != 0 {
		t.Errorf("subs = %d after cancel", subs)
	}
}

func TestNilBusIsSafe(t *testing.T) {
	var b *Bus
	b.Publish("x", 0, nil)
	if b.Recent() != nil {
		t.Error("nil bus has recent events")
	}
	p, d, n := b.Stats()
	if p != 0 || d != 0 || n != 0 {
		t.Error("nil bus has stats")
	}
	s := b.Subscribe(4)
	s.Cancel()
	s.Cancel()
}

// TestBusConcurrentPublishSubscribe exercises the bus under the race
// detector: publishers, subscribers draining, and churn of
// subscribe/cancel, all at once.
func TestBusConcurrentPublishSubscribe(t *testing.T) {
	b := NewBus(16)
	var wg sync.WaitGroup
	const publishers = 4
	const perPublisher = 500

	// Steady subscribers that drain everything.
	received := make([]int, 3)
	for i := range received {
		sub := b.Subscribe(64)
		wg.Add(1)
		go func(i int, sub *Subscription) {
			defer wg.Done()
			for range sub.Events() {
				received[i]++
			}
		}(i, sub)
		defer sub.Cancel()
	}

	// Churning subscribers that come and go mid-stream.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			s := b.Subscribe(1)
			b.Recent()
			s.Cancel()
		}
	}()

	var pubWG sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pubWG.Add(1)
		go func(p int) {
			defer pubWG.Done()
			for i := 0; i < perPublisher; i++ {
				b.Publish("k", float64(i), map[string]any{"p": p})
			}
		}(p)
	}
	pubWG.Wait()

	published, dropped, _ := b.Stats()
	if published != publishers*perPublisher {
		t.Errorf("published = %d, want %d", published, publishers*perPublisher)
	}
	// Close the steady subscribers so their goroutines finish.
	// (deferred Cancels close the channels; Wait below needs them run
	// first, so cancel explicitly.)
	for _, s := range busSubs(b) {
		s.Cancel()
	}
	wg.Wait()
	for i, n := range received {
		if n+int(dropped) < perPublisher { // each sub saw most events
			t.Errorf("subscriber %d received only %d (dropped %d)", i, n, dropped)
		}
	}
}

// busSubs snapshots the live subscriptions (test helper).
func busSubs(b *Bus) []*Subscription {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*Subscription, 0, len(b.subs))
	for s := range b.subs {
		out = append(out, s)
	}
	return out
}
