package obs

import (
	"testing"
	"time"

	"hyperhammer/internal/metrics"
	"hyperhammer/internal/simtime"
	"hyperhammer/internal/trace"
)

func TestPlaneSamplesOnSimInterval(t *testing.T) {
	reg := metrics.New()
	clock := &simtime.Clock{}
	reg.BindClock(clock)
	acts := reg.Counter("dram_activations_total", "activations")

	p := NewPlane(reg, Config{SampleEvery: time.Second})
	sub := p.Bus().Subscribe(64)
	defer sub.Cancel()
	p.BindClock(clock) // immediate t=0 sample

	acts.Add(100)
	clock.Advance(1500 * time.Millisecond) // crosses 1s → sample
	acts.Add(50)
	clock.Advance(200 * time.Millisecond) // no boundary
	clock.Advance(400 * time.Millisecond) // crosses 2s → sample

	series := p.Store().Series("dram_activations_total")
	if len(series) != 1 {
		t.Fatalf("series = %+v", series)
	}
	pts := series[0].Points
	if len(pts) != 3 {
		t.Fatalf("points = %+v", pts)
	}
	if pts[0].Value != 0 || pts[1].Value != 100 || pts[2].Value != 150 {
		t.Errorf("values = %+v", pts)
	}
	if pts[1].SimSeconds != 1.5 || pts[2].SimSeconds != 2.1 {
		t.Errorf("stamps = %+v", pts)
	}
	// Each sample was announced on the bus.
	n := 0
	for len(sub.Events()) > 0 {
		ev := <-sub.Events()
		if ev.Kind == "obs.sample" {
			n++
		}
	}
	if n != 3 {
		t.Errorf("obs.sample events = %d, want 3", n)
	}
}

func TestPlaneTapTracePublishes(t *testing.T) {
	clock := &simtime.Clock{}
	rec := trace.New(nil, 0)
	rec.BindClock(clock)
	p := NewPlane(nil, Config{})
	p.TapTrace(rec)
	sub := p.Bus().Subscribe(16)
	defer sub.Cancel()

	clock.Advance(90 * time.Second)
	rec.Emit("vm.create", "memBytes", 42)
	span := rec.StartSpan("phase")
	span.End()

	ev := <-sub.Events()
	if ev.Kind != "vm.create" || ev.SimSeconds != 90 {
		t.Errorf("event = %+v", ev)
	}
	if ev.Data["memBytes"] != 42 {
		t.Errorf("data = %+v", ev.Data)
	}
	start := <-sub.Events()
	end := <-sub.Events()
	if start.Kind != "span.start" || end.Kind != "span.end" {
		t.Errorf("span events = %+v %+v", start, end)
	}
}

func TestPlaneRebindAcrossHosts(t *testing.T) {
	// hh-tables boots several hosts against one plane; each host's
	// clock gets its own sampler and the series keep growing.
	reg := metrics.New()
	c := reg.Counter("n", "")
	p := NewPlane(reg, Config{SampleEvery: time.Second})

	c1 := &simtime.Clock{}
	reg.BindClock(c1)
	p.BindClock(c1)
	c.Inc()
	c1.Advance(time.Second)

	c2 := &simtime.Clock{}
	reg.BindClock(c2)
	p.BindClock(c2)
	c.Inc()
	c2.Advance(time.Second)

	pts := p.Store().Series("n")[0].Points
	if len(pts) != 4 { // 2 binds × (immediate + 1 tick)
		t.Fatalf("points = %+v", pts)
	}
	last := pts[len(pts)-1]
	// Clock binding accumulates across hosts: after two hosts of 1
	// simulated second each, sim time reads 2s, not the second host's
	// 1s (the old last-boot-wins misattribution).
	if last.Value != 2 || last.SimSeconds != 2 {
		t.Errorf("last = %+v", last)
	}
	if last.Sample != 4 {
		t.Errorf("sample counter = %+v (should be globally monotonic)", last)
	}
}

func TestNilPlaneIsSafe(t *testing.T) {
	var p *Plane
	p.BindClock(&simtime.Clock{})
	p.TapTrace(trace.New(nil, 0))
	if p.Bus() != nil || p.Store() != nil || p.Registry() != nil {
		t.Error("nil plane leaked components")
	}
	if p.SimNow() != 0 || p.SampleEvery() != 0 || p.Uptime() != 0 {
		t.Error("nil plane not inert")
	}
	if _, err := p.Serve("127.0.0.1:0"); err == nil {
		t.Error("nil plane served")
	}
}
