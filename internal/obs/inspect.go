package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"hyperhammer/internal/report"
	"hyperhammer/internal/trace"
)

// SpanNode is one reconstructed span in a recorded trace.
type SpanNode struct {
	ID     uint64
	Parent uint64
	Name   string
	// StartSeconds is the simulated start time; Seconds the simulated
	// duration from the span.end event (0 while unmatched).
	StartSeconds float64
	Seconds      float64
	// Ended reports whether a matching span.end was found.
	Ended    bool
	Children []*SpanNode
}

// Inspection is the offline analysis of one recorded trace file, the
// engine behind the hh-inspect command.
type Inspection struct {
	// Events is the number of well-formed events read.
	Events int
	// Kinds counts events per kind.
	Kinds map[string]int
	// Roots are the top-level spans in start order.
	Roots []*SpanNode
	// LastSimSeconds is the largest simulated timestamp seen.
	LastSimSeconds float64

	// Anomaly counters.
	// MalformedLines are lines that failed to parse as events.
	MalformedLines int
	// SeqGaps counts missing sequence numbers — events the recorder
	// assigned but that never reached the file (lost tail, truncation,
	// or encode errors).
	SeqGaps int
	// UnmatchedStarts are spans that never ended (crash or missing
	// End); UnmatchedEnds are span.end events whose start was never
	// seen (e.g. a trace cut mid-file).
	UnmatchedStarts int
	UnmatchedEnds   int
	// Orphans are spans whose parent ID never appeared; they are
	// promoted to roots for rendering.
	Orphans int
}

// Inspect reads a JSONL trace (as written by trace.Recorder) and
// reconstructs its span forest, kind census, and anomaly counts.
func Inspect(r io.Reader) (*Inspection, error) {
	in := &Inspection{Kinds: make(map[string]int)}
	spans := make(map[uint64]*SpanNode)
	var order []uint64 // span IDs in start order
	prevSeq := uint64(0)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev trace.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			in.MalformedLines++
			continue
		}
		in.Events++
		in.Kinds[ev.Kind]++
		if prevSeq != 0 && ev.Seq > prevSeq+1 {
			in.SeqGaps += int(ev.Seq - prevSeq - 1)
		}
		prevSeq = ev.Seq
		sim := 0.0
		if d, err := time.ParseDuration(ev.SimTime); err == nil {
			sim = d.Seconds()
		}
		if sim > in.LastSimSeconds {
			in.LastSimSeconds = sim
		}
		switch ev.Kind {
		case "span.start":
			id := asUint(ev.Data["span"])
			if id == 0 {
				in.MalformedLines++
				continue
			}
			n := &SpanNode{
				ID:           id,
				Parent:       asUint(ev.Data["parent"]),
				Name:         asString(ev.Data["name"]),
				StartSeconds: sim,
			}
			spans[id] = n
			order = append(order, id)
		case "span.end":
			id := asUint(ev.Data["span"])
			n, ok := spans[id]
			if !ok {
				in.UnmatchedEnds++
				continue
			}
			n.Ended = true
			if sec, ok := ev.Data["seconds"].(float64); ok {
				n.Seconds = sec
			} else {
				n.Seconds = sim - n.StartSeconds
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}

	for _, id := range order {
		n := spans[id]
		if !n.Ended {
			in.UnmatchedStarts++
		}
		if n.Parent == 0 {
			in.Roots = append(in.Roots, n)
			continue
		}
		p, ok := spans[n.Parent]
		if !ok {
			in.Orphans++
			in.Roots = append(in.Roots, n)
			continue
		}
		p.Children = append(p.Children, n)
	}
	return in, nil
}

// asUint coerces a decoded JSON number (float64 after Unmarshal, or a
// native integer from in-memory events) to uint64.
func asUint(v any) uint64 {
	switch x := v.(type) {
	case float64:
		return uint64(x)
	case uint64:
		return x
	case int:
		return uint64(x)
	}
	return 0
}

func asString(v any) string {
	s, _ := v.(string)
	return s
}

// WriteSpanTree renders the span forest with per-span simulated
// durations, plus an aggregate per-name summary (count, total, mean).
func (in *Inspection) WriteSpanTree(w io.Writer) {
	if len(in.Roots) == 0 {
		fmt.Fprintln(w, "no spans recorded")
		return
	}
	fmt.Fprintln(w, "span tree (simulated time):")
	var walk func(n *SpanNode, prefix string, last bool)
	walk = func(n *SpanNode, prefix string, last bool) {
		connector := "├─ "
		childPrefix := prefix + "│  "
		if last {
			connector = "└─ "
			childPrefix = prefix + "   "
		}
		dur := report.FormatDuration(time.Duration(n.Seconds * float64(time.Second)))
		state := ""
		if !n.Ended {
			dur = "?"
			state = "  [never ended]"
		}
		fmt.Fprintf(w, "%s%s%s  %s  (start %s)%s\n",
			prefix, connector, n.Name, dur,
			report.FormatDuration(time.Duration(n.StartSeconds*float64(time.Second))), state)
		for i, c := range n.Children {
			walk(c, childPrefix, i == len(n.Children)-1)
		}
	}
	for i, root := range in.Roots {
		walk(root, "", i == len(in.Roots)-1)
	}

	// Aggregate: where does simulated time go, by span name.
	type agg struct {
		n     int
		total float64
	}
	byName := make(map[string]*agg)
	var collect func(n *SpanNode)
	collect = func(n *SpanNode) {
		a, ok := byName[n.Name]
		if !ok {
			a = &agg{}
			byName[n.Name] = a
		}
		if n.Ended {
			a.n++
			a.total += n.Seconds
		}
		for _, c := range n.Children {
			collect(c)
		}
	}
	for _, root := range in.Roots {
		collect(root)
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return byName[names[i]].total > byName[names[j]].total })
	t := report.NewTable("\nper-phase totals", "span", "count", "total sim", "mean sim")
	for _, name := range names {
		a := byName[name]
		if a.n == 0 {
			t.AddRow(name, 0, "-", "-")
			continue
		}
		t.AddRow(name, a.n,
			time.Duration(a.total*float64(time.Second)),
			time.Duration(a.total/float64(a.n)*float64(time.Second)))
	}
	fmt.Fprint(w, t.String())
}

// WriteKinds renders the per-kind event census, most frequent first.
func (in *Inspection) WriteKinds(w io.Writer) {
	kinds := make([]string, 0, len(in.Kinds))
	for k := range in.Kinds {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool {
		if in.Kinds[kinds[i]] != in.Kinds[kinds[j]] {
			return in.Kinds[kinds[i]] > in.Kinds[kinds[j]]
		}
		return kinds[i] < kinds[j]
	})
	t := report.NewTable("event kinds", "kind", "count")
	for _, k := range kinds {
		t.AddRow(k, in.Kinds[k])
	}
	fmt.Fprint(w, t.String())
}

// WriteTimeline renders top-level spans as bars over simulated
// campaign time, width characters wide.
func (in *Inspection) WriteTimeline(w io.Writer, width int) {
	if width < 20 {
		width = 60
	}
	if len(in.Roots) == 0 || in.LastSimSeconds <= 0 {
		fmt.Fprintln(w, "no timeline (no spans or zero simulated time)")
		return
	}
	fmt.Fprintf(w, "phase timeline over %s simulated:\n",
		report.FormatDuration(time.Duration(in.LastSimSeconds*float64(time.Second))))
	for _, n := range in.Roots {
		end := n.StartSeconds + n.Seconds
		if !n.Ended {
			end = in.LastSimSeconds
		}
		from := int(n.StartSeconds / in.LastSimSeconds * float64(width))
		to := int(end / in.LastSimSeconds * float64(width))
		if to <= from {
			to = from + 1
		}
		if to > width {
			to = width
		}
		bar := strings.Repeat(" ", from) + strings.Repeat("█", to-from) +
			strings.Repeat(" ", width-to)
		mark := ""
		if !n.Ended {
			mark = " (open)"
		}
		fmt.Fprintf(w, "|%s| %s%s\n", bar, n.Name, mark)
	}
}

// WriteAnomalies renders what the trace says went wrong — dropped
// events, unmatched spans, malformed lines — or "none".
func (in *Inspection) WriteAnomalies(w io.Writer) {
	fmt.Fprintln(w, "anomalies:")
	any := false
	line := func(n int, format string) {
		if n > 0 {
			any = true
			fmt.Fprintf(w, "  "+format+"\n", n)
		}
	}
	line(in.SeqGaps, "%d events missing from the file (seq gaps: lost tail or encode errors)")
	line(in.UnmatchedStarts, "%d spans never ended (crash before End, or truncated trace)")
	line(in.UnmatchedEnds, "%d span.end events without a matching start")
	line(in.Orphans, "%d spans reference a parent that never appeared (promoted to roots)")
	line(in.MalformedLines, "%d malformed lines")
	if !any {
		fmt.Fprintln(w, "  none")
	}
}
