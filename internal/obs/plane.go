package obs

import (
	"sync"
	"time"

	"hyperhammer/internal/forensics"
	"hyperhammer/internal/inspect"
	"hyperhammer/internal/ledger"
	"hyperhammer/internal/metrics"
	"hyperhammer/internal/profile"
	"hyperhammer/internal/runstore"
	"hyperhammer/internal/simtime"
	"hyperhammer/internal/trace"
)

// Config tunes the plane. The zero value selects usable defaults.
type Config struct {
	// SampleEvery is the simulated-time interval between registry
	// snapshots (default 1 simulated second).
	SampleEvery time.Duration
	// SeriesCap bounds each time series' ring (default
	// DefaultSeriesCap).
	SeriesCap int
	// EventKeep is how many bus events are retained for replay to
	// late subscribers (default 256).
	EventKeep int
	// KeepAlive is the wall-clock interval between SSE comment
	// frames on /api/events (default 5s). Keepalives let proxies and
	// clients distinguish a quiet simulation from a dead connection.
	KeepAlive time.Duration
}

// Plane wires a metrics registry, the trace recorder, and host clocks
// into one live view: a sampler turns the registry into time series on
// a simulated-time cadence, and trace events stream onto the bus. A
// nil *Plane is a valid no-op, matching the nil registry and recorder,
// so config threading never guards.
type Plane struct {
	reg       *metrics.Registry
	bus       *Bus
	store     *Store
	every     time.Duration
	keepalive time.Duration
	start     time.Time

	mu        sync.Mutex
	profiler  *profile.Builder
	artifact  func() any
	inspector *inspect.Inspector
	forensics *forensics.Recorder
	ledger    *ledger.Recorder
	plan      func() *profile.PlanReport
	runstore  *runstore.Store
}

// NewPlane creates a plane over reg (which may be nil: the plane then
// serves empty metrics but still carries trace events).
func NewPlane(reg *metrics.Registry, cfg Config) *Plane {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = time.Second
	}
	if cfg.EventKeep <= 0 {
		cfg.EventKeep = 256
	}
	if cfg.KeepAlive <= 0 {
		cfg.KeepAlive = 5 * time.Second
	}
	p := &Plane{
		reg:       reg,
		bus:       NewBus(cfg.EventKeep),
		store:     NewStore(cfg.SeriesCap),
		every:     cfg.SampleEvery,
		keepalive: cfg.KeepAlive,
		start:     time.Now(),
	}
	// Surface the bus's drop total as a registry metric so dashboards
	// and the default watchpoint rules see silent event loss; stays at
	// zero in deterministic runs (no slow subscribers).
	p.bus.SetDropCounter(reg.Counter("obs_bus_dropped_total",
		"Events the observability bus dropped on full subscriber buffers."))
	return p
}

// Registry returns the plane's registry (nil on a nil plane).
func (p *Plane) Registry() *metrics.Registry {
	if p == nil {
		return nil
	}
	return p.reg
}

// Bus returns the event bus (nil on a nil plane; Bus methods tolerate
// that).
func (p *Plane) Bus() *Bus {
	if p == nil {
		return nil
	}
	return p.bus
}

// Store returns the time-series store (nil on a nil plane).
func (p *Plane) Store() *Store {
	if p == nil {
		return nil
	}
	return p.store
}

// SampleEvery returns the simulated sampling interval.
func (p *Plane) SampleEvery() time.Duration {
	if p == nil {
		return 0
	}
	return p.every
}

// SimNow returns the bound registry clock's reading (zero without a
// registry), the plane's notion of "now" for log stamping.
func (p *Plane) SimNow() time.Duration {
	if p == nil {
		return 0
	}
	return p.reg.SimTime()
}

// Uptime returns the wall-clock age of the plane.
func (p *Plane) Uptime() time.Duration {
	if p == nil {
		return 0
	}
	return time.Since(p.start)
}

// BindClock installs the periodic sampler on a simulated clock.
// kvm.NewHost calls this at boot for the configured plane, so every
// host a campaign or experiment boots feeds the same series store.
// An immediate sample anchors each series at the host's t=0. Safe on
// a nil receiver and a nil clock.
func (p *Plane) BindClock(c *simtime.Clock) {
	if p == nil || c == nil {
		return
	}
	p.sample()
	c.OnTick(p.every, func(time.Duration) { p.sample() })
}

// sample snapshots the registry into the store and announces it on the
// bus.
func (p *Plane) sample() {
	snap := p.reg.Snapshot()
	p.store.Record(snap)
	p.bus.Publish("obs.sample", snap.SimSeconds, map[string]any{
		"sample":   p.store.Samples(),
		"counters": len(snap.Counters),
		"gauges":   len(snap.Gauges),
	})
}

// SampleUnit snapshots the registry into the store with every point
// tagged as owned by the named scheduled unit, and announces the merge
// on the bus as a "sched.unit" event. The parallel experiment engine
// calls this after folding a completed unit's scoped telemetry into
// the shared registry: concurrent units never drive the sampler
// directly (their clocks are scoped), so tagged merge-time samples are
// what keeps the live view coherent. Safe on a nil receiver.
func (p *Plane) SampleUnit(unit string) {
	if p == nil {
		return
	}
	snap := p.reg.Snapshot()
	p.store.RecordTagged(snap, unit)
	p.bus.Publish("sched.unit", snap.SimSeconds, map[string]any{
		"unit":     unit,
		"sample":   p.store.Samples(),
		"counters": len(snap.Counters),
	})
}

// AttachProfile installs a live cost profiler: once attached, every
// recorder tapped via TapTrace also feeds the builder, and the
// server's /api/profile endpoint serves its snapshots. Attach before
// booting hosts so span starts are not missed. Safe on a nil receiver.
func (p *Plane) AttachProfile(b *profile.Builder) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.profiler = b
	p.mu.Unlock()
}

// Profile snapshots the attached profiler (empty profile when none is
// attached, so handlers never nil-check).
func (p *Plane) Profile() *profile.Profile {
	if p == nil {
		return &profile.Profile{}
	}
	p.mu.Lock()
	b := p.profiler
	p.mu.Unlock()
	return b.Snapshot()
}

// SetInspector installs the hardware introspection plane the server's
// /api/heatmap, /api/census and /api/alerts endpoints serve from. A
// nil inspector (or never calling this) makes those endpoints serve
// empty-but-schema-valid snapshots. Safe on a nil receiver.
func (p *Plane) SetInspector(ins *inspect.Inspector) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.inspector = ins
	p.mu.Unlock()
}

// Inspector returns the installed introspection plane (nil when
// unset; inspect snapshots are nil-safe).
func (p *Plane) Inspector() *inspect.Inspector {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inspector
}

// SetForensics installs the flip-provenance recorder the server's
// /api/forensics endpoint serves from. A nil recorder (or never calling
// this) makes the endpoint serve an empty-but-schema-valid snapshot.
// Safe on a nil receiver.
func (p *Plane) SetForensics(r *forensics.Recorder) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.forensics = r
	p.mu.Unlock()
}

// Forensics returns the installed flip-provenance recorder (nil when
// unset; forensics snapshots are nil-safe).
func (p *Plane) Forensics() *forensics.Recorder {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.forensics
}

// SetLedger installs the determinism-ledger recorder the server's
// /api/ledger endpoint serves from. A nil recorder (or never calling
// this) makes the endpoint serve an empty-but-schema-valid snapshot.
// Safe on a nil receiver.
func (p *Plane) SetLedger(r *ledger.Recorder) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.ledger = r
	p.mu.Unlock()
}

// Ledger returns the installed determinism-ledger recorder (nil when
// unset; ledger snapshots are nil-safe).
func (p *Plane) Ledger() *ledger.Recorder {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ledger
}

// SetPlanFunc installs the callback /api/plan serves: the host-cost
// schedule analysis of the current batch. The CLIs hand in a closure
// (e.g. experiments.Plan.PlanReport) so the report reflects whatever
// has been scheduled by request time. A nil fn (or never calling
// this) makes the endpoint serve an empty-but-schema-valid report.
// Safe on a nil receiver.
func (p *Plane) SetPlanFunc(fn func() *profile.PlanReport) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.plan = fn
	p.mu.Unlock()
}

// PlanReport returns the installed plan callback's current report,
// never nil: without a callback (or when it returns nil) the empty
// report is served, so handlers and pollers never guard.
func (p *Plane) PlanReport() *profile.PlanReport {
	if p == nil {
		return profile.EmptyPlanReport()
	}
	p.mu.Lock()
	fn := p.plan
	p.mu.Unlock()
	if fn == nil {
		return profile.EmptyPlanReport()
	}
	if r := fn(); r != nil {
		return r
	}
	return profile.EmptyPlanReport()
}

// SetRunStore installs the run-history store the server's /api/history
// and /api/trend endpoints serve from. A nil store (or never calling
// this) makes both endpoints serve empty-but-schema-valid documents —
// runstore's readers are nil-safe and hand out snapshot copies, so the
// endpoints never race a CLI's in-flight ingest. Safe on a nil
// receiver.
func (p *Plane) SetRunStore(s *runstore.Store) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.runstore = s
	p.mu.Unlock()
}

// RunStore returns the installed run-history store (nil when unset;
// runstore methods are nil-safe).
func (p *Plane) RunStore() *runstore.Store {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.runstore
}

// KeepAlive returns the SSE keepalive interval.
func (p *Plane) KeepAlive() time.Duration {
	if p == nil {
		return 0
	}
	return p.keepalive
}

// SetArtifactFunc installs the callback /api/artifact serves. The
// value is JSON-encoded per request, so the CLIs hand in a closure
// building the current runartifact bundle without obs importing that
// package. Safe on a nil receiver.
func (p *Plane) SetArtifactFunc(fn func() any) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.artifact = fn
	p.mu.Unlock()
}

// ArtifactFunc returns the installed callback (nil when unset).
func (p *Plane) ArtifactFunc() func() any {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.artifact
}

// TapTrace streams every event the recorder emits onto the plane's
// bus, timestamps converted to seconds, and — when a profiler is
// attached — into the cost profile. The taps register under named
// sinks, so re-tapping at every host boot is idempotent and leaves
// other consumers of the recorder undisturbed. Safe on a nil receiver
// (the recorder keeps whatever sinks it had).
func (p *Plane) TapTrace(r *trace.Recorder) {
	if p == nil {
		return
	}
	r.SetNamedSink("obs", func(ev trace.Event) {
		sim := 0.0
		if d, err := time.ParseDuration(ev.SimTime); err == nil {
			sim = d.Seconds()
		}
		p.bus.Publish(ev.Kind, sim, ev.Data)
	})
	p.mu.Lock()
	b := p.profiler
	p.mu.Unlock()
	if b != nil {
		r.SetNamedSink("profile", b.Consume)
	}
}
