package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLogHandlerStampsSimTime(t *testing.T) {
	var buf bytes.Buffer
	now := time.Duration(0)
	log := NewLogger(&buf, func() time.Duration { return now }, nil)

	log.Info("campaign started", "hosts", 3)
	now = 90 * time.Minute
	log.Warn("attempt failed", "attempt", 2, "reason", "no landing")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %q", lines)
	}
	if lines[0] != `sim=0.0s level=INFO msg="campaign started" hosts=3` {
		t.Errorf("line 0 = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "sim=1.5h level=WARN") ||
		!strings.Contains(lines[1], `reason="no landing"`) {
		t.Errorf("line 1 = %q", lines[1])
	}
}

func TestLogHandlerNilSimNow(t *testing.T) {
	var buf bytes.Buffer
	NewLogger(&buf, nil, nil).Info("boot")
	if got := strings.TrimSpace(buf.String()); got != "sim=- level=INFO msg=boot" {
		t.Errorf("line = %q", got)
	}
}

func TestLogHandlerLevelFilter(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, nil, slog.LevelWarn)
	log.Debug("hidden")
	log.Info("hidden too")
	log.Error("shown")
	if n := strings.Count(buf.String(), "\n"); n != 1 {
		t.Errorf("records = %d:\n%s", n, buf.String())
	}
	if !strings.Contains(buf.String(), "level=ERROR") {
		t.Errorf("output = %q", buf.String())
	}
}

func TestLogHandlerWithAttrsAndGroups(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, nil, nil).With("host", "h1").WithGroup("dram")
	log.Info("flip", "row", 4096)
	got := strings.TrimSpace(buf.String())
	if !strings.Contains(got, "host=h1") || !strings.Contains(got, "dram.row=4096") {
		t.Errorf("line = %q", got)
	}
	// The derived handler must not have mutated the base.
	buf.Reset()
	NewLogger(&buf, nil, nil).Info("plain")
	if strings.Contains(buf.String(), "host=") {
		t.Errorf("base handler polluted: %q", buf.String())
	}
}

func TestLogHandlerQuoting(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, nil, nil)
	log.Info("x", "empty", "", "eq", "a=b", "plain", "ok")
	got := buf.String()
	for _, want := range []string{`empty=""`, `eq="a=b"`, `plain=ok`} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in %q", want, got)
		}
	}
}

func TestLogHandlerConcurrentWriters(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, func() time.Duration { return time.Second }, nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				log.Info("tick", "worker", i, "j", j)
			}
		}(i)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("lines = %d, want 400", len(lines))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "sim=1.0s level=INFO msg=tick") {
			t.Fatalf("interleaved line: %q", line)
		}
	}
}
