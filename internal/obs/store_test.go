package obs

import (
	"sync"
	"testing"
	"time"

	"hyperhammer/internal/metrics"
	"hyperhammer/internal/simtime"
)

func testSnapshot(reg *metrics.Registry) metrics.Snapshot { return reg.Snapshot() }

func TestStoreRecordsCountersGaugesHistograms(t *testing.T) {
	reg := metrics.New()
	clock := &simtime.Clock{}
	reg.BindClock(clock)
	c := reg.Counter("acts_total", "activations", "bank", "0")
	g := reg.Gauge("vms", "live VMs")
	h := reg.Histogram("lat_seconds", "latency", []float64{1, 10})

	s := NewStore(16)
	c.Add(5)
	g.Set(2)
	h.Observe(3)
	s.Record(testSnapshot(reg))
	clock.Advance(2 * time.Second)
	c.Add(7)
	s.Record(testSnapshot(reg))

	all := s.Series("")
	// acts_total, lat_seconds_count, lat_seconds_sum, vms
	if len(all) != 4 {
		t.Fatalf("series = %d: %+v", len(all), all)
	}
	acts := s.Series("acts_total")
	if len(acts) != 1 || len(acts[0].Points) != 2 {
		t.Fatalf("acts = %+v", acts)
	}
	p0, p1 := acts[0].Points[0], acts[0].Points[1]
	if p0.Value != 5 || p1.Value != 12 || p1.SimSeconds != 2 || p1.Sample != 2 {
		t.Errorf("points = %+v %+v", p0, p1)
	}
	if acts[0].Labels[0] != "bank" || acts[0].Kind != "counter" {
		t.Errorf("series meta = %+v", acts[0])
	}
	// Histogram filter by base name returns both derived series.
	lat := s.Series("lat_seconds")
	if len(lat) != 2 {
		t.Fatalf("lat = %+v", lat)
	}
	if lat[0].Name != "lat_seconds_count" || lat[0].Points[0].Value != 1 {
		t.Errorf("lat count = %+v", lat[0])
	}
	if lat[1].Name != "lat_seconds_sum" || lat[1].Points[0].Value != 3 {
		t.Errorf("lat sum = %+v", lat[1])
	}
}

func TestStoreRingEvictsOldest(t *testing.T) {
	reg := metrics.New()
	c := reg.Counter("n", "")
	s := NewStore(3)
	for i := 1; i <= 5; i++ {
		c.Inc()
		s.Record(testSnapshot(reg))
	}
	got := s.Series("n")[0].Points
	if len(got) != 3 {
		t.Fatalf("points = %d", len(got))
	}
	if got[0].Value != 3 || got[2].Value != 5 {
		t.Errorf("ring = %+v (want oldest evicted, order preserved)", got)
	}
	if got[0].Sample != 3 || got[2].Sample != 5 {
		t.Errorf("sample numbers = %+v", got)
	}
}

func TestNilStoreIsSafe(t *testing.T) {
	var s *Store
	s.Record(metrics.Snapshot{})
	if s.Series("") != nil || s.Samples() != 0 {
		t.Error("nil store not inert")
	}
}

func TestStoreConcurrentRecordAndRead(t *testing.T) {
	reg := metrics.New()
	c := reg.Counter("n", "")
	s := NewStore(32)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.Inc()
				s.Record(testSnapshot(reg))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 400; i++ {
			s.Series("")
			s.Samples()
		}
	}()
	wg.Wait()
	if s.Samples() != 800 {
		t.Errorf("samples = %d", s.Samples())
	}
}
