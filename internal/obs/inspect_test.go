package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"hyperhammer/internal/simtime"
	"hyperhammer/internal/trace"
)

// recordedTrace produces a realistic trace file: a campaign span with
// two attempts, each with a steer child, plus plain events.
func recordedTrace(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	clock := &simtime.Clock{}
	r := trace.New(&buf, 0)
	r.BindClock(clock)
	r.Emit("host.boot", "geometry", "test")
	camp := r.StartSpan("attack.campaign", "maxAttempts", 2)
	for i := 1; i <= 2; i++ {
		att := camp.StartChild("attack.attempt", "index", i)
		steer := att.StartChild("attack.steer")
		clock.Advance(3 * time.Minute)
		steer.End()
		clock.Advance(time.Minute)
		att.End("success", i == 2)
		r.Emit("dram.flip", "bit", 5)
	}
	camp.End()
	return &buf
}

func TestInspectReconstructsSpanForest(t *testing.T) {
	in, err := Inspect(recordedTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	// host.boot, camp.start, 2×(att.start, steer.start, steer.end,
	// att.end, dram.flip), camp.end = 13.
	if in.Events != 13 {
		t.Errorf("events = %d, want 13", in.Events)
	}
	if len(in.Roots) != 1 || in.Roots[0].Name != "attack.campaign" {
		t.Fatalf("roots = %+v", in.Roots)
	}
	camp := in.Roots[0]
	if len(camp.Children) != 2 {
		t.Fatalf("campaign children = %d", len(camp.Children))
	}
	att := camp.Children[0]
	if att.Name != "attack.attempt" || len(att.Children) != 1 ||
		att.Children[0].Name != "attack.steer" {
		t.Errorf("attempt subtree = %+v", att)
	}
	if att.Children[0].Seconds != 180 {
		t.Errorf("steer seconds = %v", att.Children[0].Seconds)
	}
	if in.Kinds["dram.flip"] != 2 || in.Kinds["span.start"] != 5 {
		t.Errorf("kinds = %v", in.Kinds)
	}
	if in.UnmatchedStarts != 0 || in.UnmatchedEnds != 0 || in.SeqGaps != 0 {
		t.Errorf("clean trace reported anomalies: %+v", in)
	}
}

// TestInspectConcurrentEmitterAttribution proves the end-to-end fix
// for the mis-parenting bug: spans from concurrent goroutines come out
// of the file attributed to their true parents.
func TestInspectConcurrentEmitterAttribution(t *testing.T) {
	var buf bytes.Buffer
	r := trace.New(&buf, 0)
	var wg sync.WaitGroup
	const workers = 6
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			root := r.StartSpan("worker", "w", w)
			for i := 0; i < 5; i++ {
				c := root.StartChild("step", "w", w)
				c.End()
			}
			root.End()
		}(w)
	}
	wg.Wait()
	in, err := Inspect(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Roots) != workers {
		t.Fatalf("roots = %d, want %d", len(in.Roots), workers)
	}
	for _, root := range in.Roots {
		if root.Name != "worker" || len(root.Children) != 5 {
			t.Fatalf("root %q has %d children, want worker/5", root.Name, len(root.Children))
		}
		for _, c := range root.Children {
			if c.Name != "step" || c.Parent != root.ID {
				t.Fatalf("child %+v misattributed under %d", c, root.ID)
			}
		}
	}
	if in.Orphans != 0 || in.UnmatchedStarts != 0 {
		t.Errorf("anomalies in clean concurrent trace: %+v", in)
	}
}

func TestInspectDetectsAnomalies(t *testing.T) {
	var buf bytes.Buffer
	clock := &simtime.Clock{}
	r := trace.New(&buf, 0)
	r.BindClock(clock)
	r.Emit("a")
	open := r.StartSpan("never.ends")
	_ = open // crash before End
	r.Emit("b")

	// Simulate a lost middle: drop the third line, append garbage and
	// an end for an unknown span.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	mangled := lines[0] + "\n" + lines[1] + "\n" +
		"not json\n" +
		`{"seq":9,"simTime":"0s","kind":"span.end","data":{"span":777,"name":"ghost","seconds":1}}` + "\n"

	in, err := Inspect(strings.NewReader(mangled))
	if err != nil {
		t.Fatal(err)
	}
	if in.UnmatchedStarts != 1 {
		t.Errorf("unmatched starts = %d", in.UnmatchedStarts)
	}
	if in.UnmatchedEnds != 1 {
		t.Errorf("unmatched ends = %d", in.UnmatchedEnds)
	}
	if in.MalformedLines != 1 {
		t.Errorf("malformed = %d", in.MalformedLines)
	}
	if in.SeqGaps != 6 { // seq 2 → 9 skips 3..8
		t.Errorf("seq gaps = %d", in.SeqGaps)
	}
	var out bytes.Buffer
	in.WriteAnomalies(&out)
	for _, want := range []string{"never ended", "without a matching start", "malformed", "seq gaps"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("anomaly report missing %q:\n%s", want, out.String())
		}
	}
}

func TestInspectRenderings(t *testing.T) {
	in, err := Inspect(recordedTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	var tree bytes.Buffer
	in.WriteSpanTree(&tree)
	s := tree.String()
	for _, want := range []string{"attack.campaign", "├─", "└─", "attack.steer", "per-phase totals"} {
		if !strings.Contains(s, want) {
			t.Errorf("span tree missing %q:\n%s", want, s)
		}
	}
	var kinds bytes.Buffer
	in.WriteKinds(&kinds)
	if !strings.Contains(kinds.String(), "span.start") ||
		!strings.Contains(kinds.String(), "dram.flip") {
		t.Errorf("kinds table:\n%s", kinds.String())
	}
	var tl bytes.Buffer
	in.WriteTimeline(&tl, 40)
	if !strings.Contains(tl.String(), "attack.campaign") ||
		!strings.Contains(tl.String(), "█") {
		t.Errorf("timeline:\n%s", tl.String())
	}
	var anom bytes.Buffer
	in.WriteAnomalies(&anom)
	if !strings.Contains(anom.String(), "none") {
		t.Errorf("clean trace anomalies:\n%s", anom.String())
	}
}

func TestInspectEmptyInput(t *testing.T) {
	in, err := Inspect(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if in.Events != 0 || len(in.Roots) != 0 {
		t.Errorf("empty inspection = %+v", in)
	}
	var out bytes.Buffer
	in.WriteSpanTree(&out)
	in.WriteTimeline(&out, 40)
	in.WriteKinds(&out)
	in.WriteAnomalies(&out) // none of these may panic
}
