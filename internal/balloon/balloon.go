// Package balloon models virtio-balloon, KVM's other memory
// overcommit device, for the paper's Section 6 feasibility analysis of
// adapting HyperHammer to it.
//
// Unlike virtio-mem, the balloon works at single-page (4 KiB)
// granularity, so the attacker needs no free-list exhaustion to reach
// small blocks — but without VFIO the guest's memory is not pinned
// MIGRATE_UNMOVABLE, so released pages land on the movable free lists
// and EPT allocations (unmovable) reach them only through fallback
// stealing, which the attacker must first force by draining the
// unmovable lists (e.g. with virtio-net-pci receive buffers).
package balloon

import (
	"errors"
	"fmt"

	"hyperhammer/internal/memdef"
	"hyperhammer/internal/metrics"
)

// Errors returned by device operations.
var (
	// ErrState reports inflating an already-ballooned page or
	// deflating one that is not in the balloon.
	ErrState = errors.New("balloon: wrong page state")
	// ErrBadRange reports a page outside the guest.
	ErrBadRange = errors.New("balloon: bad page")
)

// Backend is the hypervisor side: what QEMU does when the guest moves
// a page in or out of the balloon.
type Backend interface {
	// ReclaimPage releases the host backing of one guest page to the
	// host kernel (madvise(DONTNEED)); the page lands on the movable
	// free lists since nothing pins it.
	ReclaimPage(gpa memdef.GPA) error
	// ProvidePage re-populates the backing of one guest page.
	ProvidePage(gpa memdef.GPA) error
}

// Device is a virtio-balloon instance.
type Device struct {
	guestSize uint64
	backend   Backend
	inBalloon map[memdef.GPA]bool

	// target is the hypervisor's requested balloon size in pages.
	target int

	met deviceMetrics
}

// deviceMetrics caches the device's instrument handles; nil handles
// no-op.
type deviceMetrics struct {
	inflates *metrics.Counter
	deflates *metrics.Counter
	size     *metrics.Gauge
}

// SetMetrics attaches instrumentation. Devices share the balloon_*
// families, mirroring the virtio-mem device's series.
func (d *Device) SetMetrics(reg *metrics.Registry) {
	d.met = deviceMetrics{
		inflates: reg.Counter("balloon_inflates_total", "Pages moved into virtio-balloon devices."),
		deflates: reg.Counter("balloon_deflates_total", "Pages taken back out of virtio-balloon devices."),
		size:     reg.Gauge("balloon_pages", "Pages currently held across all balloon devices."),
	}
	d.met.size.Add(int64(len(d.inBalloon)))
}

// NewDevice creates a balloon for a guest of the given size.
func NewDevice(guestSize uint64, backend Backend) *Device {
	return &Device{
		guestSize: guestSize,
		backend:   backend,
		inBalloon: make(map[memdef.GPA]bool),
	}
}

// SetTarget sets the hypervisor's desired balloon size in pages. As
// with virtio-mem, nothing forces the guest to respect it — inflate
// requests for pages the hypervisor never asked for are accepted,
// which is the lack of enforcement a Page-Steering adaptation would
// exploit.
func (d *Device) SetTarget(pages int) { d.target = pages }

// Target returns the requested balloon size in pages.
func (d *Device) Target() int { return d.target }

// Size returns the current balloon size in pages.
func (d *Device) Size() int { return len(d.inBalloon) }

// Inflate moves one guest page into the balloon, releasing its host
// backing. The guest chooses the page — including, maliciously, a page
// whose physical backing it profiled as vulnerable.
func (d *Device) Inflate(gpa memdef.GPA) error {
	gpa &^= memdef.PageSize - 1
	if uint64(gpa) >= d.guestSize {
		return fmt.Errorf("%w: %#x", ErrBadRange, gpa)
	}
	if d.inBalloon[gpa] {
		return fmt.Errorf("%w: %#x already ballooned", ErrState, gpa)
	}
	if err := d.backend.ReclaimPage(gpa); err != nil {
		return err
	}
	d.inBalloon[gpa] = true
	d.met.inflates.Inc()
	d.met.size.Add(1)
	return nil
}

// Deflate takes one page back from the balloon.
func (d *Device) Deflate(gpa memdef.GPA) error {
	gpa &^= memdef.PageSize - 1
	if !d.inBalloon[gpa] {
		return fmt.Errorf("%w: %#x not ballooned", ErrState, gpa)
	}
	if err := d.backend.ProvidePage(gpa); err != nil {
		return err
	}
	delete(d.inBalloon, gpa)
	d.met.deflates.Inc()
	d.met.size.Add(-1)
	return nil
}

// IsBallooned reports whether the page containing gpa is in the
// balloon.
func (d *Device) IsBallooned(gpa memdef.GPA) bool {
	return d.inBalloon[gpa&^(memdef.PageSize-1)]
}
