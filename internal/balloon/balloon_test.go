package balloon

import (
	"errors"
	"testing"

	"hyperhammer/internal/memdef"
)

type fakeBackend struct {
	reclaimed, provided []memdef.GPA
	fail                bool
}

func (b *fakeBackend) ReclaimPage(gpa memdef.GPA) error {
	if b.fail {
		return errors.New("injected")
	}
	b.reclaimed = append(b.reclaimed, gpa)
	return nil
}

func (b *fakeBackend) ProvidePage(gpa memdef.GPA) error {
	b.provided = append(b.provided, gpa)
	return nil
}

func TestInflateDeflate(t *testing.T) {
	be := &fakeBackend{}
	d := NewDevice(64*memdef.MiB, be)
	if err := d.Inflate(0x5123); err != nil { // sub-page address rounds down
		t.Fatal(err)
	}
	if !d.IsBallooned(0x5FFF) || d.IsBallooned(0x6000) {
		t.Error("balloon membership wrong")
	}
	if d.Size() != 1 {
		t.Errorf("Size = %d", d.Size())
	}
	if err := d.Inflate(0x5000); !errors.Is(err, ErrState) {
		t.Errorf("double inflate: %v", err)
	}
	if err := d.Deflate(0x5000); err != nil {
		t.Fatal(err)
	}
	if err := d.Deflate(0x5000); !errors.Is(err, ErrState) {
		t.Errorf("double deflate: %v", err)
	}
	if len(be.reclaimed) != 1 || len(be.provided) != 1 {
		t.Errorf("backend calls: %v %v", be.reclaimed, be.provided)
	}
}

// The modelled vulnerability parallel to virtio-mem: inflation the
// hypervisor never requested is accepted.
func TestVoluntaryInflateAccepted(t *testing.T) {
	d := NewDevice(64*memdef.MiB, &fakeBackend{})
	d.SetTarget(0) // hypervisor wants no balloon at all
	if err := d.Inflate(2 * memdef.MiB); err != nil {
		t.Errorf("voluntary inflate rejected: %v", err)
	}
	if d.Target() != 0 || d.Size() != 1 {
		t.Error("state wrong after voluntary inflate")
	}
}

func TestInflateOutOfRange(t *testing.T) {
	d := NewDevice(4*memdef.MiB, &fakeBackend{})
	if err := d.Inflate(4 * memdef.MiB); !errors.Is(err, ErrBadRange) {
		t.Errorf("out-of-range inflate: %v", err)
	}
}

func TestBackendFailureKeepsState(t *testing.T) {
	be := &fakeBackend{fail: true}
	d := NewDevice(4*memdef.MiB, be)
	if err := d.Inflate(0); err == nil {
		t.Fatal("expected backend error")
	}
	if d.Size() != 0 {
		t.Error("failed inflate changed state")
	}
}
