package benchfmt

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: hyperhammer
cpu: Intel(R) Xeon(R) CPU
BenchmarkTable1MemoryProfiling-8   	       1	1524000000 ns/op	        52.00 bits_found	        68.20 sim_hours/profile	 5242880 B/op	    1024 allocs/op
BenchmarkSteerShort   	      10	  52400000 ns/op
--- BENCH: BenchmarkNoise
    bench_test.go:42: some log line
PASS
ok  	hyperhammer	12.345s
`

func TestParse(t *testing.T) {
	out, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if out.Goos != "linux" || out.Goarch != "amd64" || out.Pkg != "hyperhammer" {
		t.Errorf("headers = %+v", out)
	}
	if !out.Ok {
		t.Error("ok line not detected")
	}
	if len(out.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %+v", out.Benchmarks)
	}
	b := out.Benchmarks[0]
	if b.Name != "BenchmarkTable1MemoryProfiling" || b.Procs != 8 || b.Runs != 1 {
		t.Errorf("bench 0 = %+v", b)
	}
	for unit, want := range map[string]float64{
		"ns/op": 1524000000, "bits_found": 52,
		"sim_hours/profile": 68.2, "B/op": 5242880, "allocs/op": 1024,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Errorf("%s = %v, want %v", unit, got, want)
		}
	}
	b1 := out.Benchmarks[1]
	if b1.Name != "BenchmarkSteerShort" || b1.Procs != 1 || b1.Runs != 10 {
		t.Errorf("bench 1 = %+v", b1)
	}
	if b1.Metrics["ns/op"] != 52400000 {
		t.Errorf("bench 1 metrics = %+v", b1.Metrics)
	}
}

func TestParseEmptyAndGarbage(t *testing.T) {
	out, err := Parse(strings.NewReader("FAIL\nsomething else\nBenchmarkBroken trailing junk\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Benchmarks) != 0 || out.Ok {
		t.Errorf("out = %+v", out)
	}
}

// TestParseCPUSuffix is the regression test for -cpu runs: names like
// BenchmarkX-8-4 must neither be dropped nor keep the machine-specific
// suffix, so artifacts diff stably across machines.
func TestParseCPUSuffix(t *testing.T) {
	in := `BenchmarkHammer-8-4   	     100	  1200 ns/op
BenchmarkHammer-8   	     100	  1100 ns/op
ok  	hyperhammer	1.0s
`
	out, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Benchmarks) != 2 {
		t.Fatalf("-cpu lines dropped: %+v", out.Benchmarks)
	}
	if out.Benchmarks[0].Name != "BenchmarkHammer" || out.Benchmarks[0].Procs != 4 {
		t.Errorf("bench 0 = %+v", out.Benchmarks[0])
	}
	if out.Benchmarks[1].Name != "BenchmarkHammer" || out.Benchmarks[1].Procs != 8 {
		t.Errorf("bench 1 = %+v", out.Benchmarks[1])
	}
	// ByName keys both under one stable name, keeping the lowest-proc run.
	by := out.ByName()
	if len(by) != 1 || by["BenchmarkHammer"].Procs != 4 {
		t.Errorf("ByName = %+v", by)
	}
}

// TestParseSkipsUnparsableMetricPairs: a stray token inside a line no
// longer discards the whole benchmark.
func TestParseSkipsUnparsableMetricPairs(t *testing.T) {
	out, err := Parse(strings.NewReader("BenchmarkOdd-8 5 100 ns/op extra\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Benchmarks) != 1 || out.Benchmarks[0].Metrics["ns/op"] != 100 {
		t.Errorf("out = %+v", out.Benchmarks)
	}
}

func TestSplitProcs(t *testing.T) {
	for _, tc := range []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkX-8", "BenchmarkX", 8},
		{"BenchmarkX", "BenchmarkX", 1},
		{"BenchmarkX-y", "BenchmarkX-y", 1},
		{"Benchmark-Sub-16", "Benchmark-Sub", 16},
		{"BenchmarkX-8-4", "BenchmarkX", 4},
		{"BenchmarkFoo/size=1024-8", "BenchmarkFoo/size=1024", 8},
		{"BenchmarkFoo/1024-8", "BenchmarkFoo/1024", 8},
	} {
		name, procs := SplitProcs(tc.in)
		if name != tc.name || procs != tc.procs {
			t.Errorf("SplitProcs(%q) = %q,%d want %q,%d", tc.in, name, procs, tc.name, tc.procs)
		}
	}
}
