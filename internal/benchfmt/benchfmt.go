// Package benchfmt parses `go test -bench` text output into the
// machine-readable document CI archives as BENCH_*.json. It is shared
// by cmd/hh-benchjson (which writes the document) and cmd/hh-diff
// (which compares two of them), so the schema lives in one place.
//
// Benchmark names are normalized for cross-machine stability: the
// test binary appends a -GOMAXPROCS suffix to every name, and a -cpu
// list multiplies the same benchmark across several such suffixes
// (BenchmarkX-8, BenchmarkX-8-4, ...). All trailing -N groups of the
// final path segment are stripped into the Procs field, so the same
// benchmark diffs under the same key no matter which machine or -cpu
// setting produced it.
package benchfmt

import (
	"bufio"
	"io"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with any -GOMAXPROCS/-cpu suffixes
	// stripped (the stable cross-machine key).
	Name string `json:"name"`
	// Procs is the GOMAXPROCS the benchmark ran under (the outermost
	// stripped suffix; 1 when the name carried none).
	Procs int `json:"procs"`
	// Runs is the iteration count (b.N).
	Runs int64 `json:"runs"`
	// Metrics maps unit to value: ns/op, B/op, allocs/op, and any
	// custom units from b.ReportMetric (e.g. sim_hours/profile).
	Metrics map[string]float64 `json:"metrics"`
}

// Output is the whole document.
type Output struct {
	// GeneratedAt is the wall-clock parse time (RFC 3339).
	GeneratedAt string `json:"generatedAt"`
	// Goos/Goarch/Pkg/CPU echo the `go test` header lines when present.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Ok reports whether a final "ok" line was seen (the run completed).
	Ok         bool        `json:"ok"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// ByName indexes the benchmarks by normalized name. When a -cpu list
// produced several entries for one name, the entry with the fewest
// procs wins (the most comparable single-threaded figure).
func (o *Output) ByName() map[string]Benchmark {
	out := make(map[string]Benchmark, len(o.Benchmarks))
	for _, b := range o.Benchmarks {
		if prev, ok := out[b.Name]; ok && prev.Procs <= b.Procs {
			continue
		}
		out[b.Name] = b
	}
	return out
}

// Parse reads `go test -bench` output and extracts every benchmark
// line plus the run headers. Lines it doesn't recognize (test logs,
// PASS markers) are skipped; benchmarks are passed through to the
// document in input order.
func Parse(r io.Reader) (*Output, error) {
	out := &Output{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Benchmarks:  []Benchmark{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			out.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			out.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "ok "):
			out.Ok = true
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				out.Benchmarks = append(out.Benchmarks, b)
			}
		}
	}
	return out, sc.Err()
}

// parseBench parses one result line:
//
//	BenchmarkName-8  3  123456 ns/op  42.5 sim_hours/profile  16 B/op  2 allocs/op
//
// A malformed metric pair is skipped rather than dropping the whole
// line, so a benchmark that logged a stray token still contributes its
// parseable metrics.
func parseBench(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name, procs := SplitProcs(fields[0])
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Procs: procs, Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		b.Metrics[fields[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}

// SplitProcs strips the trailing -N GOMAXPROCS suffixes off a
// benchmark name. Repeated numeric suffixes (BenchmarkX-8-4 from a
// -cpu run) are all stripped; the reported proc count is the
// outermost suffix, the GOMAXPROCS the line actually ran under.
// Sub-benchmark segments keep their numeric names: stripping never
// crosses a '/' and never leaves an empty name.
func SplitProcs(name string) (string, int) {
	procs := 0
	for {
		i := strings.LastIndexByte(name, '-')
		if i <= 0 || name[i-1] == '/' {
			break
		}
		n, err := strconv.Atoi(name[i+1:])
		if err != nil || n <= 0 {
			break
		}
		name = name[:i]
		if procs == 0 {
			procs = n
		}
	}
	if procs == 0 {
		procs = 1
	}
	return name, procs
}
