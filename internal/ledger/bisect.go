package ledger

import "fmt"

// Divergence localizes the first point where two ledgers disagree:
// which unit, which sealed epoch (by index and sim time), and which
// stream first split. Epoch is -1 for structural divergences (unit or
// stream sets differ) and for final-state divergences when epoch
// sealing was off.
type Divergence struct {
	Unit       string  `json:"unit"`
	Epoch      int     `json:"epoch"`
	SimSeconds float64 `json:"simSeconds"`
	Stream     string  `json:"stream,omitempty"`
	// FPA/CountA and FPB/CountB are the two sides' states at the
	// divergence point (empty when the stream is missing on a side).
	FPA    string `json:"fpA,omitempty"`
	CountA uint64 `json:"countA,omitempty"`
	FPB    string `json:"fpB,omitempty"`
	CountB uint64 `json:"countB,omitempty"`
	// Detail is the one-line human explanation.
	Detail string `json:"detail"`
}

// Bisect walks two ledger snapshots in parallel — unit by unit, epoch
// by epoch, stream by stream in declaration order — and returns the
// first divergence, or nil when the ledgers agree completely. Because
// streams fold rolling fingerprints, the first divergent epoch bounds
// the first divergent *event* to one sealing interval: everything
// before that epoch was byte-identical.
func Bisect(a, b *Snapshot) *Divergence {
	if a == nil || b == nil {
		if a == b {
			return nil
		}
		return &Divergence{Epoch: -1, Detail: "one ledger is missing"}
	}
	for i := 0; i < len(a.Units) && i < len(b.Units); i++ {
		ua, ub := &a.Units[i], &b.Units[i]
		if ua.Unit != ub.Unit {
			return &Divergence{
				Unit: ua.Unit, Epoch: -1,
				Detail: fmt.Sprintf("unit sequence diverges at position %d: %q vs %q", i, ua.Unit, ub.Unit),
			}
		}
		if d := bisectUnit(ua, ub); d != nil {
			return d
		}
	}
	if len(a.Units) != len(b.Units) {
		extra, side := surplusUnit(a, b)
		return &Divergence{
			Unit: extra, Epoch: -1,
			Detail: fmt.Sprintf("unit %q present only in %s (%d vs %d units)", extra, side, len(a.Units), len(b.Units)),
		}
	}
	return nil
}

func surplusUnit(a, b *Snapshot) (unit, side string) {
	if len(a.Units) > len(b.Units) {
		return a.Units[len(b.Units)].Unit, "the first run"
	}
	return b.Units[len(a.Units)].Unit, "the second run"
}

// bisectUnit compares one unit's trails: the common epoch prefix, then
// any surplus epochs, then the final stream state.
func bisectUnit(ua, ub *UnitLedger) *Divergence {
	for e := 0; e < len(ua.Epochs) && e < len(ub.Epochs); e++ {
		ea, eb := &ua.Epochs[e], &ub.Epochs[e]
		if d := bisectStreams(ea.Streams, eb.Streams); d != nil {
			d.Unit = ua.Unit
			d.Epoch = ea.Index
			d.SimSeconds = ea.SimSeconds
			return d
		}
		if ea.SimSeconds != eb.SimSeconds {
			return &Divergence{
				Unit: ua.Unit, Epoch: ea.Index, SimSeconds: ea.SimSeconds,
				Detail: fmt.Sprintf("epoch %d sealed at different sim times: %.6fs vs %.6fs", ea.Index, ea.SimSeconds, eb.SimSeconds),
			}
		}
	}
	if len(ua.Epochs) != len(ub.Epochs) {
		e := min(len(ua.Epochs), len(ub.Epochs))
		side, from := "the first run", ua
		if len(ub.Epochs) > len(ua.Epochs) {
			side, from = "the second run", ub
		}
		return &Divergence{
			Unit: ua.Unit, Epoch: e, SimSeconds: from.Epochs[e].SimSeconds,
			Detail: fmt.Sprintf("epoch %d present only in %s (%d vs %d epochs)", e, side, len(ua.Epochs), len(ub.Epochs)),
		}
	}
	if d := bisectStreams(ua.Streams, ub.Streams); d != nil {
		d.Unit = ua.Unit
		d.Epoch = -1
		d.Detail = "final stream state diverges (no sealed epoch localizes it): " + d.Detail
		return d
	}
	return nil
}

// bisectStreams compares two stream lists in declaration order and
// returns the first mismatch (without unit/epoch context — the caller
// fills those in).
func bisectStreams(sa, sb []StreamFP) *Divergence {
	for j := 0; j < len(sa) && j < len(sb); j++ {
		fa, fb := &sa[j], &sb[j]
		if fa.Stream != fb.Stream {
			return &Divergence{
				Stream: fa.Stream,
				Detail: fmt.Sprintf("stream set diverges at position %d: %q vs %q", j, fa.Stream, fb.Stream),
			}
		}
		if fa.FP != fb.FP || fa.Count != fb.Count {
			return &Divergence{
				Stream: fa.Stream,
				FPA:    fa.FP, CountA: fa.Count,
				FPB: fb.FP, CountB: fb.Count,
				Detail: fmt.Sprintf("stream %s diverges: fp %s (count %d) vs %s (count %d)",
					fa.Stream, fa.FP, fa.Count, fb.FP, fb.Count),
			}
		}
	}
	if len(sa) != len(sb) {
		extra, side := sb[len(sa):], "the second run"
		if len(sa) > len(sb) {
			extra, side = sa[len(sb):], "the first run"
		}
		return &Divergence{
			Stream: extra[0].Stream,
			Detail: fmt.Sprintf("stream %q present only in %s", extra[0].Stream, side),
		}
	}
	return nil
}
