package ledger

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"hyperhammer/internal/simtime"
)

// driveRun replays a fixed fold schedule against a fresh recorder:
// three streams in a fixed declaration order, folding on a sim clock
// that crosses several epoch boundaries. extraAt injects one
// additional dram.rng fold before the given tick index (-1 for none) —
// the "single stray RNG draw" a bisection must localize.
func driveRun(epoch time.Duration, extraAt int) Snapshot {
	r := New(Config{Epoch: epoch})
	clock := &simtime.Clock{}
	r.BindClock(clock)
	rng := r.Stream("dram.rng")
	row := r.Stream("dram.row")
	flip := r.Stream("kvm.flip")
	for tick := 0; tick < 8; tick++ {
		if tick == extraAt {
			rng.Fold1(0xDEAD)
		}
		for i := 0; i < 5; i++ {
			rng.Fold1(uint64(tick*100 + i))
			row.Fold2(uint64(tick), uint64(i))
		}
		if tick%2 == 0 {
			flip.Fold3(uint64(tick), 7, 1)
		}
		clock.Advance(150 * time.Millisecond)
	}
	return r.Snapshot()
}

// TestIdenticalRunsIdenticalLedgers is the plane's base invariant:
// replaying the same fold schedule produces a byte-identical snapshot.
func TestIdenticalRunsIdenticalLedgers(t *testing.T) {
	a, _ := json.Marshal(driveRun(200*time.Millisecond, -1))
	b, _ := json.Marshal(driveRun(200*time.Millisecond, -1))
	if !bytes.Equal(a, b) {
		t.Fatalf("same schedule, different ledgers:\na: %s\nb: %s", a, b)
	}
	if d := Bisect(ptr(driveRun(200*time.Millisecond, -1)), ptr(driveRun(200*time.Millisecond, -1))); d != nil {
		t.Fatalf("Bisect on identical ledgers = %+v, want nil", d)
	}
}

// TestSingleDrawMovesOneStreamFromOneEpochOn: injecting one extra RNG
// draw perturbs exactly one stream's fingerprints, and only from the
// epoch containing the injection onward — the invariant hh-bisect's
// localization relies on.
func TestSingleDrawMovesOneStreamFromOneEpochOn(t *testing.T) {
	const injectTick = 4
	clean := driveRun(200*time.Millisecond, -1)
	drift := driveRun(200*time.Millisecond, injectTick)
	if len(clean.Units) != 1 || len(drift.Units) != 1 {
		t.Fatalf("units = %d vs %d, want 1 each", len(clean.Units), len(drift.Units))
	}
	uc, ud := clean.Units[0], drift.Units[0]
	if len(uc.Epochs) == 0 || len(uc.Epochs) != len(ud.Epochs) {
		t.Fatalf("epoch counts: %d vs %d", len(uc.Epochs), len(ud.Epochs))
	}
	// The injection lands before tick 4's folds; with a 200ms epoch on
	// 150ms ticks the divergent epoch is the first sealed at or after
	// sim-time 4*150ms. Every epoch before it must match exactly;
	// every epoch from it on must differ in dram.rng and nothing else.
	divergeFrom := -1
	for e := range uc.Epochs {
		sa, sb := uc.Epochs[e].Streams, ud.Epochs[e].Streams
		if len(sa) != len(sb) {
			t.Fatalf("epoch %d stream counts differ", e)
		}
		epochDiverged := false
		for j := range sa {
			same := sa[j] == sb[j]
			if sa[j].Stream == "dram.rng" {
				if !same {
					epochDiverged = true
				}
			} else if !same {
				t.Errorf("epoch %d: stream %s moved (%+v vs %+v), only dram.rng should", e, sa[j].Stream, sa[j], sb[j])
			}
		}
		if epochDiverged && divergeFrom == -1 {
			divergeFrom = e
		}
		if divergeFrom != -1 && !epochDiverged {
			t.Errorf("epoch %d: dram.rng re-converged after diverging at %d — rolling fps cannot", e, divergeFrom)
		}
	}
	if divergeFrom == -1 {
		t.Fatal("injected draw never showed up in any epoch")
	}

	d := Bisect(&clean, &drift)
	if d == nil {
		t.Fatal("Bisect missed the divergence")
	}
	if d.Stream != "dram.rng" || d.Epoch != divergeFrom {
		t.Errorf("Bisect = stream %q epoch %d, want dram.rng epoch %d (%s)", d.Stream, d.Epoch, divergeFrom, d.Detail)
	}
	if d.CountA+1 != d.CountB {
		t.Errorf("counts %d vs %d, want exactly one extra event on the drift side", d.CountA, d.CountB)
	}
}

// TestNilRecorderIsFree: the whole API chain no-ops on nil — the
// zero-cost-when-off contract the config threading relies on.
func TestNilRecorderIsFree(t *testing.T) {
	var r *Recorder
	r.BindClock(&simtime.Clock{})
	s := r.Stream("dram.rng")
	if s != nil {
		t.Fatal("nil recorder returned a live stream")
	}
	s.Fold1(1)
	s.Fold2(1, 2)
	s.Fold3(1, 2, 3)
	s.Fold4(1, 2, 3, 4)
	if r.Scoped() != nil {
		t.Fatal("nil.Scoped() != nil")
	}
	r.Absorb(New(Config{}), "u")
	(*Recorder)(nil).Absorb(nil, "u")
	snap := r.Snapshot()
	if snap.Units == nil || len(snap.Units) != 0 {
		t.Fatalf("nil snapshot units = %#v, want empty non-nil", snap.Units)
	}
	raw, _ := json.Marshal(snap)
	if strings.Contains(string(raw), "null") {
		t.Fatalf("nil snapshot marshals null: %s", raw)
	}
}

// TestScopedAbsorbDeclarationOrder: children absorbed in declaration
// order appear as unit trails in that order, regardless of fold
// timing — the parallel-determinism mechanism.
func TestScopedAbsorbDeclarationOrder(t *testing.T) {
	parent := New(Config{Epoch: time.Second})
	c1, c2 := parent.Scoped(), parent.Scoped()
	// Fold into c2 first: absorb order, not fold order, must decide.
	c2.Stream("dram.rng").Fold1(2)
	c1.Stream("dram.rng").Fold1(1)
	parent.Absorb(c1, "unit-a")
	parent.Absorb(c2, "unit-b")
	snap := parent.Snapshot()
	if len(snap.Units) != 2 || snap.Units[0].Unit != "unit-a" || snap.Units[1].Unit != "unit-b" {
		t.Fatalf("units = %+v, want unit-a then unit-b", snap.Units)
	}
	if snap.Units[0].Streams[0].Count != 1 || snap.Units[1].Streams[0].Count != 1 {
		t.Fatalf("stream counts wrong: %+v", snap.Units)
	}
	if snap.EpochSimSeconds != 1 {
		t.Fatalf("EpochSimSeconds = %v, want 1", snap.EpochSimSeconds)
	}
}

// TestSealSkipsQuietBoundaries: boundaries with no new folds seal
// nothing, and MaxEpochs truncates with an exact count.
func TestSealSkipsQuietBoundaries(t *testing.T) {
	r := New(Config{Epoch: time.Second, MaxEpochs: 2})
	clock := &simtime.Clock{}
	r.BindClock(clock)
	s := r.Stream("x")
	clock.Advance(5 * time.Second) // quiet: nothing sealed
	s.Fold1(1)
	clock.Advance(time.Second) // epoch 0
	clock.Advance(time.Second) // quiet again
	s.Fold1(2)
	clock.Advance(time.Second) // epoch 1
	s.Fold1(3)
	clock.Advance(time.Second) // past MaxEpochs: truncated
	snap := r.Snapshot()
	u := snap.Units[0]
	if len(u.Epochs) != 2 {
		t.Fatalf("epochs = %d, want 2 (quiet boundaries must not seal)", len(u.Epochs))
	}
	if u.Epochs[0].Index != 0 || u.Epochs[1].Index != 1 {
		t.Fatalf("epoch indices = %d,%d", u.Epochs[0].Index, u.Epochs[1].Index)
	}
	if u.EpochsTruncated != 1 {
		t.Fatalf("EpochsTruncated = %d, want 1", u.EpochsTruncated)
	}
	if u.Streams[0].Count != 3 {
		t.Fatalf("final count = %d, want 3", u.Streams[0].Count)
	}
}

// TestBisectStructural covers the structural divergence cases: unit
// sequence, stream set, and epoch count mismatches.
func TestBisectStructural(t *testing.T) {
	mk := func(units ...string) *Snapshot {
		s := &Snapshot{Version: Version, Units: []UnitLedger{}}
		for _, u := range units {
			s.Units = append(s.Units, UnitLedger{Unit: u, Epochs: []EpochRecord{}, Streams: []StreamFP{}})
		}
		return s
	}
	if d := Bisect(mk("a", "b"), mk("a", "c")); d == nil || !strings.Contains(d.Detail, "unit sequence") {
		t.Errorf("unit mismatch: %+v", d)
	}
	if d := Bisect(mk("a"), mk("a", "b")); d == nil || !strings.Contains(d.Detail, "present only in the second run") {
		t.Errorf("unit count mismatch: %+v", d)
	}
	a, b := mk("u"), mk("u")
	a.Units[0].Streams = []StreamFP{{Stream: "x", FP: "00", Count: 1}}
	b.Units[0].Streams = []StreamFP{{Stream: "y", FP: "00", Count: 1}}
	if d := Bisect(a, b); d == nil || !strings.Contains(d.Detail, "stream set") {
		t.Errorf("stream set mismatch: %+v", d)
	}
	a, b = mk("u"), mk("u")
	a.Units[0].Epochs = []EpochRecord{{Index: 0, SimSeconds: 1, Streams: []StreamFP{}}}
	if d := Bisect(a, b); d == nil || !strings.Contains(d.Detail, "epoch 0 present only in the first run") {
		t.Errorf("epoch count mismatch: %+v", d)
	}
	if d := Bisect(nil, mk()); d == nil {
		t.Error("nil vs non-nil must diverge")
	}
	if d := Bisect(nil, nil); d != nil {
		t.Errorf("nil vs nil = %+v", d)
	}
}

// TestHashString: stability and distinctness of the string reducer.
func TestHashString(t *testing.T) {
	if HashString("escaped") == HashString("steer-miss") {
		t.Error("distinct outcomes collide")
	}
	if HashString("") != fnvOffset {
		t.Error("empty string must hash to the offset basis")
	}
}

func ptr(s Snapshot) *Snapshot { return &s }
