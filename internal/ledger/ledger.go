// Package ledger is the determinism plane: where metrics count what
// happened and forensics explains why, this package proves *that two
// runs did the same thing* — and, when they did not, localizes the
// first divergence to a sim-time epoch, a subsystem, and a stream.
//
// Every deterministic event source in the simulation (RNG draws, DRAM
// row-state and flip emissions, EPT mutations, buddy allocator events,
// guest mapping changes, attack attempt outcomes) folds its values
// into a named Stream's rolling FNV-1a fingerprint. A clock tick at a
// configurable sim-time interval seals the current fingerprints into
// an epoch record, so the ledger is a time-indexed trail: two runs
// whose ledgers agree through epoch N and disagree at epoch N+1
// diverged somewhere in that interval, in exactly the streams whose
// fingerprints split. hh-bisect walks two ledgers and reports that
// point; hh-diff gates the whole section at zero tolerance.
//
// Like the other planes, every method is safe on a nil receiver (so
// config threading never guards), recorders scope per plan unit via
// Scoped/Absorb with declaration-order folding (snapshots are
// byte-identical at any -parallel setting), and the zero-perturbation
// contract holds: hooks only observe values the simulation already
// produced — they consume no RNG draws and never advance the clock, so
// enabling the ledger cannot change a single figure.
package ledger

import (
	"fmt"
	"sync"
	"time"

	"hyperhammer/internal/simtime"
)

// Version is the ledger snapshot schema version.
const Version = 1

// FNV-1a parameters (64-bit), folded word-at-a-time: the fingerprints
// are internal drift detectors, not interoperable FNV digests, so the
// wider mixing unit is fine and an order of magnitude cheaper than
// byte-at-a-time on the hot emission path.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// Config tunes a Recorder. The zero value records final stream
// fingerprints only; set Epoch to get the time-indexed trail.
type Config struct {
	// Epoch is the sim-time sealing interval: each time a bound clock
	// crosses a multiple of it, the current stream fingerprints are
	// sealed into an epoch record. Zero disables sealing — streams
	// still accumulate, but only their final values appear in
	// snapshots, which localizes divergence to a stream but not a
	// time.
	Epoch time.Duration
	// MaxEpochs bounds the sealed epoch records per unit (default
	// DefaultMaxEpochs). Sealing keeps counting past the bound;
	// EpochsTruncated reports how many seals were dropped.
	MaxEpochs int
}

// DefaultMaxEpochs bounds per-unit epoch history.
const DefaultMaxEpochs = 4096

func (c Config) withDefaults() Config {
	if c.MaxEpochs <= 0 {
		c.MaxEpochs = DefaultMaxEpochs
	}
	return c
}

// StreamFP is one stream's rolling fingerprint state: the FNV-1a hash
// of every word folded so far (16 hex digits, lossless — the float64
// diff machinery gets a 52-bit projection instead, see diff.go in
// runartifact) and the number of events folded.
type StreamFP struct {
	Stream string `json:"stream"`
	FP     string `json:"fp"`
	Count  uint64 `json:"count"`
}

// EpochRecord is the sealed state of every stream at one sim-time
// boundary. Streams appear in declaration order — the order the
// subsystems first resolved them — which is fixed by the wiring code,
// not by timing, so records compare byte-for-byte across runs.
type EpochRecord struct {
	Index      int        `json:"index"`
	SimSeconds float64    `json:"simSeconds"`
	Streams    []StreamFP `json:"streams"`
}

// UnitLedger is one plan unit's (or the live recorder's own) complete
// trail: the sealed epochs and the final stream state.
type UnitLedger struct {
	// Unit tags the plan unit ("" for the live recorder's own trail).
	Unit   string        `json:"unit,omitempty"`
	Epochs []EpochRecord `json:"epochs"`
	// Streams is the final fingerprint state, present even when epoch
	// sealing is off.
	Streams []StreamFP `json:"streams"`
	// EpochsTruncated counts seals dropped past MaxEpochs.
	EpochsTruncated int `json:"epochsTruncated,omitempty"`
}

// Snapshot is the serialized ledger: plan-unit trails in declaration
// order, then the live recorder's own.
type Snapshot struct {
	Version int `json:"version"`
	// EpochSimSeconds is the configured sealing interval in simulated
	// seconds (0 = sealing off).
	EpochSimSeconds float64      `json:"epochSimSeconds"`
	Units           []UnitLedger `json:"units"`
}

// Stream is a fold handle for one named event source. Subsystems
// resolve handles once at wiring time (Recorder.Stream) and call the
// FoldN methods on the emission path; a nil handle (ledger off)
// no-ops, which is the entire cost of the plane when disabled.
type Stream struct {
	r     *Recorder
	name  string
	fp    uint64
	count uint64
}

// Recorder accumulates fingerprint streams for one telemetry scope: a
// whole CLI run, or one scheduled plan unit (see Scoped/Absorb). All
// methods are safe for concurrent use and no-ops on a nil receiver.
type Recorder struct {
	cfg Config

	mu    sync.Mutex
	clock *simtime.Clock

	// streams holds fold handles in declaration order; byName makes
	// Stream idempotent per name.
	streams []*Stream
	byName  map[string]*Stream

	// absorbed holds unit trails folded in declaration order.
	absorbed []UnitLedger

	epochs    []EpochRecord
	truncated int

	// folds counts every fold event; seal skips boundaries where it
	// has not moved, so idle stretches cost no epoch records.
	folds       uint64
	sealedFolds uint64
}

// New creates a Recorder.
func New(cfg Config) *Recorder {
	return &Recorder{cfg: cfg.withDefaults(), byName: make(map[string]*Stream)}
}

// Scoped returns a fresh Recorder with the same configuration, for one
// scheduled plan unit; fold it back with Absorb. Nil-safe.
func (r *Recorder) Scoped() *Recorder {
	if r == nil {
		return nil
	}
	return New(r.cfg)
}

// BindClock points the recorder at a host's simulated clock and, when
// an epoch interval is configured, arms the sealing tick on it.
// kvm.NewHost calls this at boot; a recorder serving several
// sequential hosts seals against each host's clock in turn, appending
// to one trail.
func (r *Recorder) BindClock(c *simtime.Clock) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	r.clock = c
	r.mu.Unlock()
	if r.cfg.Epoch > 0 {
		c.OnTick(r.cfg.Epoch, r.seal)
	}
}

// seal captures every stream's fingerprint into an epoch record. Runs
// on the simulating goroutine inside Clock.Advance; boundaries where
// no stream moved are skipped so quiet stretches stay free.
func (r *Recorder) seal(now time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.folds == r.sealedFolds {
		return
	}
	r.sealedFolds = r.folds
	if len(r.epochs) >= r.cfg.MaxEpochs {
		r.truncated++
		return
	}
	r.epochs = append(r.epochs, EpochRecord{
		Index:      len(r.epochs),
		SimSeconds: now.Seconds(),
		Streams:    r.streamFPsLocked(),
	})
}

// Stream resolves the fold handle for a named event source, creating
// it on first use. Handles registered on a nil recorder are nil, and
// nil handles fold to nothing — subsystems thread them unguarded.
// Declaration order (first resolution) is the order streams appear in
// every epoch record, so wiring code must resolve streams
// deterministically (it does: handle resolution happens in setters,
// not on event paths).
func (r *Recorder) Stream(name string) *Stream {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byName[name]; ok {
		return s
	}
	s := &Stream{r: r, name: name, fp: fnvOffset}
	r.byName[name] = s
	r.streams = append(r.streams, s)
	return s
}

// Fold1 folds one event of one word into the stream. Nil-safe,
// allocation-free.
func (s *Stream) Fold1(a uint64) {
	if s == nil {
		return
	}
	s.r.mu.Lock()
	s.fp = (s.fp ^ a) * fnvPrime
	s.count++
	s.r.folds++
	s.r.mu.Unlock()
}

// Fold2 folds one event of two words.
func (s *Stream) Fold2(a, b uint64) {
	if s == nil {
		return
	}
	s.r.mu.Lock()
	s.fp = (s.fp ^ a) * fnvPrime
	s.fp = (s.fp ^ b) * fnvPrime
	s.count++
	s.r.folds++
	s.r.mu.Unlock()
}

// Fold3 folds one event of three words.
func (s *Stream) Fold3(a, b, c uint64) {
	if s == nil {
		return
	}
	s.r.mu.Lock()
	s.fp = (s.fp ^ a) * fnvPrime
	s.fp = (s.fp ^ b) * fnvPrime
	s.fp = (s.fp ^ c) * fnvPrime
	s.count++
	s.r.folds++
	s.r.mu.Unlock()
}

// Fold4 folds one event of four words.
func (s *Stream) Fold4(a, b, c, d uint64) {
	if s == nil {
		return
	}
	s.r.mu.Lock()
	s.fp = (s.fp ^ a) * fnvPrime
	s.fp = (s.fp ^ b) * fnvPrime
	s.fp = (s.fp ^ c) * fnvPrime
	s.fp = (s.fp ^ d) * fnvPrime
	s.count++
	s.r.folds++
	s.r.mu.Unlock()
}

// HashString reduces a string to one foldable word with the same
// FNV-1a construction (byte-at-a-time — strings are rare, cold
// values like attempt outcomes).
func HashString(v string) uint64 {
	fp := fnvOffset
	for i := 0; i < len(v); i++ {
		fp = (fp ^ uint64(v[i])) * fnvPrime
	}
	return fp
}

// streamFPsLocked serializes the current stream states in declaration
// order. Always non-nil.
func (r *Recorder) streamFPsLocked() []StreamFP {
	out := make([]StreamFP, 0, len(r.streams))
	for _, s := range r.streams {
		out = append(out, StreamFP{Stream: s.name, FP: fmt.Sprintf("%016x", s.fp), Count: s.count})
	}
	return out
}

// liveUnitLocked builds the recorder's own trail, or nil when it has
// recorded nothing (a plan-driving parent whose hooks all went to
// scoped children).
func (r *Recorder) liveUnitLocked() *UnitLedger {
	if len(r.streams) == 0 && len(r.epochs) == 0 {
		return nil
	}
	u := UnitLedger{
		Epochs:          append([]EpochRecord{}, r.epochs...),
		Streams:         r.streamFPsLocked(),
		EpochsTruncated: r.truncated,
	}
	return &u
}

// Absorb folds a completed scoped Recorder into this one as a unit
// trail tagged with the plan unit's name. The parallel experiment
// engine calls this at delivery, in declaration order, which is what
// keeps snapshots byte-identical at any -parallel setting. Nil-safe on
// both sides.
func (r *Recorder) Absorb(child *Recorder, unit string) {
	if r == nil || child == nil {
		return
	}
	child.mu.Lock()
	units := append([]UnitLedger{}, child.absorbed...)
	if live := child.liveUnitLocked(); live != nil {
		units = append(units, *live)
	}
	child.mu.Unlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	for _, u := range units {
		if u.Unit == "" {
			u.Unit = unit
		}
		r.absorbed = append(r.absorbed, u)
	}
}

// Snapshot serializes the plane: absorbed unit trails in declaration
// order, then the live recorder's own. Nil-safe (empty snapshot,
// lists never null).
func (r *Recorder) Snapshot() Snapshot {
	s := Snapshot{Version: Version, Units: []UnitLedger{}}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s.EpochSimSeconds = r.cfg.Epoch.Seconds()
	s.Units = append(s.Units, r.absorbed...)
	if live := r.liveUnitLocked(); live != nil {
		s.Units = append(s.Units, *live)
	}
	return s
}
