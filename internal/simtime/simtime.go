// Package simtime provides the virtual clock of the simulation.
//
// HyperHammer's evaluation reports wall-clock costs (72 h of profiling,
// ~4 minute attack attempts, multi-day campaigns). Re-running those on
// a real clock is impossible and unnecessary: every cost in the attack
// is dominated by a small set of primitive operations whose latency is
// known. The simulation therefore charges each primitive to a virtual
// clock and reports virtual durations, which reproduce the *shape* of
// the paper's timing tables.
package simtime

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Cost constants for primitive operations, expressed as virtual
// durations. They are calibrated so that the paper's headline numbers
// come out in the right regime (Section 5): one profiling pass over a
// 12 GiB space takes tens of hours, one attack attempt takes minutes.
const (
	// RowActivation is the cost of one DRAM row activation as driven
	// from a guest hammer loop: tRC on DDR4-2666 is ~47 ns, but each
	// activation costs a clflush, a fenced load and the EPT-translated
	// access path, putting the end-to-end loop iteration near a
	// microsecond. Calibrated so a full 12 GiB profiling pass lands in
	// the paper's multi-day regime (Table 1).
	RowActivation = 300 * time.Nanosecond

	// PageScan is the cost of scanning one 4 KiB page for flipped
	// bits or magic values (streaming read plus compare at ~25 GB/s).
	PageScan = 150 * time.Nanosecond

	// PageWrite is the cost of filling one 4 KiB page with a pattern.
	PageWrite = 500 * time.Nanosecond

	// IOVAMap is the cost of one vIOMMU MAP ioctl round trip
	// (guest driver -> QEMU vIOMMU emulation -> host VFIO ioctl).
	IOVAMap = 100 * time.Microsecond

	// VirtioUnplug is the cost of one virtio-mem sub-block unplug
	// request round trip including host madvise.
	VirtioUnplug = 150 * time.Microsecond

	// HugepageSplit is the cost of one exec-fault-triggered hugepage
	// split in the multihit countermeasure path (VM exit + EPT
	// surgery + resume).
	HugepageSplit = 40 * time.Microsecond

	// VMReboot is the cost of tearing down and respawning the
	// attacker VM after a failed attempt (Section 4.3: steering is
	// not reversible, so each failed attempt costs a reboot) plus
	// booting its guest OS back to the attack tooling.
	VMReboot = 180 * time.Second

	// Hypercall is the cost of the GPA->HPA debug hypercall the
	// paper adds for the Section 5.3.2 experiment.
	Hypercall = 2 * time.Microsecond
)

// Clock is a monotonic virtual clock. The zero value is a clock at
// time zero, ready to use. The clock is single-writer: Advance,
// Charge, OnTick and Reset must all be called from the one simulating
// goroutine (determinism, Section 3 of DESIGN.md), but Now is safe
// from any goroutine — the live observability plane reads the clock
// while the simulation runs. Tick hooks run on the simulating
// goroutine, inside Advance.
type Clock struct {
	now    atomic.Int64 // nanoseconds
	ticks  []*tick
	firing bool
}

// tick is one registered periodic hook.
type tick struct {
	every time.Duration
	next  time.Duration
	fn    func(now time.Duration)
}

// Now returns the current virtual time as a duration since the clock's
// epoch. Safe for concurrent use.
func (c *Clock) Now() time.Duration { return time.Duration(c.now.Load()) }

// OnTick registers fn to run whenever the clock crosses a multiple of
// every. A single Advance that jumps several boundaries fires fn once,
// at the post-advance reading — periodic observers want the latest
// state, not a replay of skipped intervals. fn runs on the simulating
// goroutine and must not advance the clock; hooks registered while a
// hook is firing take effect on the next Advance.
func (c *Clock) OnTick(every time.Duration, fn func(now time.Duration)) {
	if every <= 0 || fn == nil {
		return
	}
	// First boundary strictly after the current reading.
	now := c.Now()
	next := now - now%every + every
	c.ticks = append(c.ticks, &tick{every: every, next: next, fn: fn})
}

// Advance moves the clock forward by d. Negative d panics: the clock
// is monotonic and a negative charge is always a bookkeeping bug.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simtime: negative advance %v", d))
	}
	now := time.Duration(c.now.Load()) + d
	c.now.Store(int64(now))
	if c.firing {
		return // a hook advanced the clock; boundaries fire next Advance
	}
	c.firing = true
	for _, t := range c.ticks {
		if now >= t.next {
			t.next = now - now%t.every + t.every
			t.fn(now)
		}
	}
	c.firing = false
}

// Charge advances the clock by n repetitions of a unit cost.
// It saturates rather than overflowing for absurd n.
func (c *Clock) Charge(n int64, unit time.Duration) {
	if n <= 0 {
		return
	}
	total := time.Duration(n) * unit
	if total/unit != time.Duration(n) { // overflow
		total = 1<<63 - 1 - c.Now()
	}
	c.Advance(total)
}

// Reset rewinds the clock to zero. Only meant for reusing a machine
// across benchmark iterations. Registered tick hooks survive, rewound
// to their first boundary.
func (c *Clock) Reset() {
	c.now.Store(0)
	for _, t := range c.ticks {
		t.next = t.every
	}
}

// Stopwatch measures elapsed virtual time between two points.
type Stopwatch struct {
	clock *Clock
	start time.Duration
}

// NewStopwatch starts a stopwatch on c.
func NewStopwatch(c *Clock) Stopwatch {
	return Stopwatch{clock: c, start: c.Now()}
}

// Elapsed returns the virtual time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration { return s.clock.Now() - s.start }
