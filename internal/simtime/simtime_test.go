package simtime

import (
	"testing"
	"time"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("fresh clock not at zero")
	}
	c.Advance(3 * time.Second)
	c.Advance(0)
	if c.Now() != 3*time.Second {
		t.Errorf("Now = %v", c.Now())
	}
	defer func() {
		if recover() == nil {
			t.Error("negative advance did not panic")
		}
	}()
	c.Advance(-time.Second)
}

func TestCharge(t *testing.T) {
	var c Clock
	c.Charge(250_000, RowActivation)
	if got, want := c.Now(), 250_000*RowActivation; got != want {
		t.Errorf("Charge = %v, want %v", got, want)
	}
	c.Charge(-5, time.Second)
	c.Charge(0, time.Second)
	if c.Now() != 250_000*RowActivation {
		t.Error("non-positive charges advanced the clock")
	}
}

func TestChargeOverflowSaturates(t *testing.T) {
	var c Clock
	c.Charge(1<<62, time.Hour)
	if c.Now() <= 0 {
		t.Errorf("overflowed to %v", c.Now())
	}
}

func TestOnTickFiresOnBoundaries(t *testing.T) {
	var c Clock
	var fired []time.Duration
	c.OnTick(time.Second, func(now time.Duration) { fired = append(fired, now) })

	c.Advance(400 * time.Millisecond) // 0.4s: below first boundary
	if len(fired) != 0 {
		t.Fatalf("fired early: %v", fired)
	}
	c.Advance(700 * time.Millisecond) // 1.1s: crossed 1s
	c.Advance(100 * time.Millisecond) // 1.2s: no new boundary
	c.Advance(3 * time.Second)        // 4.2s: crossed 2s..4s, fires once
	want := []time.Duration{1100 * time.Millisecond, 4200 * time.Millisecond}
	if len(fired) != len(want) || fired[0] != want[0] || fired[1] != want[1] {
		t.Errorf("fired = %v, want %v", fired, want)
	}
	// Next boundary after 4.2s is 5s.
	c.Advance(800 * time.Millisecond)
	if len(fired) != 3 || fired[2] != 5*time.Second {
		t.Errorf("post-jump firing = %v", fired)
	}
}

func TestOnTickExactBoundary(t *testing.T) {
	var c Clock
	n := 0
	c.OnTick(time.Second, func(time.Duration) { n++ })
	c.Advance(time.Second)
	c.Advance(time.Second)
	if n != 2 {
		t.Errorf("fired %d times, want 2", n)
	}
}

func TestOnTickIgnoresBadArgs(t *testing.T) {
	var c Clock
	c.OnTick(0, func(time.Duration) {})
	c.OnTick(time.Second, nil)
	c.Advance(time.Hour) // must not panic or fire anything
}

func TestOnTickHookAdvanceDoesNotRecurse(t *testing.T) {
	var c Clock
	n := 0
	c.OnTick(time.Second, func(time.Duration) {
		n++
		if n < 3 {
			c.Advance(5 * time.Second) // misbehaving hook: must not recurse
		}
	})
	c.Advance(time.Second)
	if n != 1 {
		t.Errorf("hook fired %d times within one Advance, want 1", n)
	}
}

func TestResetRewindsTicks(t *testing.T) {
	var c Clock
	n := 0
	c.OnTick(time.Minute, func(time.Duration) { n++ })
	c.Advance(time.Minute)
	c.Reset()
	c.Advance(30 * time.Second)
	if n != 1 {
		t.Errorf("fired %d, want 1 (reset should rewind boundary)", n)
	}
	c.Advance(30 * time.Second)
	if n != 2 {
		t.Errorf("fired %d, want 2 after crossing rewound boundary", n)
	}
}

func TestStopwatch(t *testing.T) {
	var c Clock
	c.Advance(time.Minute)
	sw := NewStopwatch(&c)
	c.Advance(90 * time.Second)
	if got := sw.Elapsed(); got != 90*time.Second {
		t.Errorf("Elapsed = %v", got)
	}
	c.Reset()
	if c.Now() != 0 {
		t.Error("Reset failed")
	}
}
