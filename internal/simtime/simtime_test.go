package simtime

import (
	"testing"
	"time"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("fresh clock not at zero")
	}
	c.Advance(3 * time.Second)
	c.Advance(0)
	if c.Now() != 3*time.Second {
		t.Errorf("Now = %v", c.Now())
	}
	defer func() {
		if recover() == nil {
			t.Error("negative advance did not panic")
		}
	}()
	c.Advance(-time.Second)
}

func TestCharge(t *testing.T) {
	var c Clock
	c.Charge(250_000, RowActivation)
	if got, want := c.Now(), 250_000*RowActivation; got != want {
		t.Errorf("Charge = %v, want %v", got, want)
	}
	c.Charge(-5, time.Second)
	c.Charge(0, time.Second)
	if c.Now() != 250_000*RowActivation {
		t.Error("non-positive charges advanced the clock")
	}
}

func TestChargeOverflowSaturates(t *testing.T) {
	var c Clock
	c.Charge(1<<62, time.Hour)
	if c.Now() <= 0 {
		t.Errorf("overflowed to %v", c.Now())
	}
}

func TestStopwatch(t *testing.T) {
	var c Clock
	c.Advance(time.Minute)
	sw := NewStopwatch(&c)
	c.Advance(90 * time.Second)
	if got := sw.Elapsed(); got != 90*time.Second {
		t.Errorf("Elapsed = %v", got)
	}
	c.Reset()
	if c.Now() != 0 {
		t.Error("Reset failed")
	}
}
