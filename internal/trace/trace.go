// Package trace provides structured event tracing for the simulation:
// hypervisor-side observability (VM lifecycle, releases, splits,
// applied flips, machine checks) written as JSON lines, with simulated
// timestamps, plus span-style phase tracing (StartSpan/End) for
// attributing where simulated time goes. It records what a host
// operator could observe — it is diagnostics for the simulation's
// users, not an attacker channel.
package trace

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"hyperhammer/internal/simtime"
)

// Event is one trace record.
type Event struct {
	// Seq is a monotonically increasing sequence number.
	Seq uint64 `json:"seq"`
	// SimTime is the simulated time of the event.
	SimTime string `json:"simTime"`
	// Kind is a dotted event name, e.g. "virtio.unplug".
	Kind string `json:"kind"`
	// Data holds the event's fields.
	Data map[string]any `json:"data,omitempty"`
}

// Recorder writes events. A nil *Recorder is valid and drops
// everything, so instrumented code needs no guards. All methods are
// safe for concurrent use.
type Recorder struct {
	mu    sync.Mutex
	clock *simtime.Clock
	w     io.Writer
	enc   *json.Encoder
	seq   uint64
	// keep retains the most recent events in memory for tests and
	// programmatic inspection (0 disables).
	keep   int
	recent []Event
	errs   int
	// open tracks currently open span IDs, innermost last, so a new
	// span nests under whatever is open.
	nextSpan uint64
	open     []uint64
}

// New creates a recorder writing JSON lines to w (which may be nil for
// an in-memory-only recorder). keep bounds the in-memory ring (0
// disables retention). The recorder timestamps events from whatever
// clock it is bound to; the host binds its own clock at boot.
func New(w io.Writer, keep int) *Recorder {
	r := &Recorder{w: w, keep: keep}
	if w != nil {
		r.enc = json.NewEncoder(w)
	}
	return r
}

// BindClock attaches the simulated clock used for event timestamps.
// Safe on a nil receiver.
func (r *Recorder) BindClock(c *simtime.Clock) {
	if r != nil {
		r.mu.Lock()
		r.clock = c
		r.mu.Unlock()
	}
}

// Emit records one event. kv lists alternating keys and values; a
// trailing odd key gets the value nil. Safe on a nil receiver.
func (r *Recorder) Emit(kind string, kv ...any) {
	if r == nil {
		return
	}
	data := buildData(kv)
	r.mu.Lock()
	r.emitLocked(kind, data)
	r.mu.Unlock()
}

// buildData converts alternating key/value pairs into an event's Data
// map.
func buildData(kv []any) map[string]any {
	if len(kv) == 0 {
		return nil
	}
	data := make(map[string]any, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		if i+1 < len(kv) {
			data[key] = normalize(kv[i+1])
		} else {
			data[key] = nil
		}
	}
	return data
}

// emitLocked stamps, writes, and retains one event. Caller holds r.mu.
func (r *Recorder) emitLocked(kind string, data map[string]any) {
	r.seq++
	simNow := time.Duration(0)
	if r.clock != nil {
		simNow = r.clock.Now()
	}
	ev := Event{
		Seq:     r.seq,
		SimTime: simNow.Round(time.Millisecond).String(),
		Kind:    kind,
		Data:    data,
	}
	if r.enc != nil {
		if err := r.enc.Encode(ev); err != nil {
			r.errs++
		}
	}
	if r.keep > 0 {
		r.recent = append(r.recent, ev)
		if len(r.recent) > r.keep {
			r.recent = r.recent[len(r.recent)-r.keep:]
		}
	}
}

// normalize converts values that encode poorly into plain
// JSON-friendly forms: errors become their message, byte slices are
// hex-encoded (encoding/json would base64 them, which is useless in a
// grep-able trace), and Stringers render as their String().
func normalize(v any) any {
	switch x := v.(type) {
	case error:
		return x.Error()
	case []byte:
		return hex.EncodeToString(x)
	case interface{ String() string }:
		return x.String()
	default:
		return v
	}
}

// Recent returns the retained events, oldest first.
func (r *Recorder) Recent() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.recent))
	copy(out, r.recent)
	return out
}

// Count returns how many events were emitted.
func (r *Recorder) Count() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// EncodeErrors returns how many events failed to serialize or write.
func (r *Recorder) EncodeErrors() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.errs
}

// Span is one open phase. End closes it. A nil *Span is valid and
// no-ops, matching the nil Recorder.
type Span struct {
	r      *Recorder
	id     uint64
	parent uint64
	name   string
	start  time.Duration
}

// StartSpan opens a phase span named name and emits a "span.start"
// event carrying the span ID, its parent span ID (0 when top-level —
// spans nest under whichever span is currently open), and any extra
// key/value pairs. Safe on a nil receiver, returning a nil span.
func (r *Recorder) StartSpan(name string, kv ...any) *Span {
	if r == nil {
		return nil
	}
	data := buildData(kv)
	if data == nil {
		data = make(map[string]any, 3)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextSpan++
	id := r.nextSpan
	parent := uint64(0)
	if n := len(r.open); n > 0 {
		parent = r.open[n-1]
	}
	r.open = append(r.open, id)
	start := time.Duration(0)
	if r.clock != nil {
		start = r.clock.Now()
	}
	data["span"] = id
	data["name"] = name
	if parent != 0 {
		data["parent"] = parent
	}
	r.emitLocked("span.start", data)
	return &Span{r: r, id: id, parent: parent, name: name, start: start}
}

// End closes the span, emitting a "span.end" event with the simulated
// duration since StartSpan plus any extra key/value pairs. Safe on a
// nil receiver; ending twice emits twice (don't).
func (s *Span) End(kv ...any) {
	if s == nil || s.r == nil {
		return
	}
	r := s.r
	data := buildData(kv)
	if data == nil {
		data = make(map[string]any, 4)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Duration(0)
	if r.clock != nil {
		now = r.clock.Now()
	}
	dur := now - s.start
	data["span"] = s.id
	data["name"] = s.name
	if s.parent != 0 {
		data["parent"] = s.parent
	}
	data["durSim"] = dur.Round(time.Millisecond).String()
	data["seconds"] = dur.Seconds()
	r.emitLocked("span.end", data)
	// Drop the span from the open stack (search from the top: spans
	// normally close LIFO).
	for i := len(r.open) - 1; i >= 0; i-- {
		if r.open[i] == s.id {
			r.open = append(r.open[:i], r.open[i+1:]...)
			break
		}
	}
}

// Duration returns the simulated time elapsed since the span started.
func (s *Span) Duration() time.Duration {
	if s == nil || s.r == nil {
		return 0
	}
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	if s.r.clock == nil {
		return 0
	}
	return s.r.clock.Now() - s.start
}
