// Package trace provides structured event tracing for the simulation:
// hypervisor-side observability (VM lifecycle, releases, splits,
// applied flips, machine checks) written as JSON lines, with simulated
// timestamps, plus span-style phase tracing (StartSpan/End) for
// attributing where simulated time goes. It records what a host
// operator could observe — it is diagnostics for the simulation's
// users, not an attacker channel.
package trace

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"hyperhammer/internal/simtime"
)

// Event is one trace record.
type Event struct {
	// Seq is a monotonically increasing sequence number.
	Seq uint64 `json:"seq"`
	// SimTime is the simulated time of the event.
	SimTime string `json:"simTime"`
	// Kind is a dotted event name, e.g. "virtio.unplug".
	Kind string `json:"kind"`
	// Data holds the event's fields.
	Data map[string]any `json:"data,omitempty"`
}

// Recorder writes events. A nil *Recorder is valid and drops
// everything, so instrumented code needs no guards. All methods are
// safe for concurrent use.
type Recorder struct {
	mu    sync.Mutex
	clock *simtime.Clock
	w     io.Writer
	enc   *json.Encoder
	seq   uint64
	// keep retains the most recent events in memory for tests and
	// programmatic inspection (0 disables).
	keep   int
	recent []Event
	// capture, when set, retains every event (unbounded) so the whole
	// stream can later be replayed into a parent recorder via Absorb.
	// Scoped per-unit recorders use it; Absorb drains it.
	capture  bool
	captured []Event
	errs     int
	nextSpan uint64
	// sinks maps sink name to a live tap: every recorded event is
	// copied to each registered sink (the observability plane and the
	// cost profiler attach independently). sinkList is the same set
	// flattened in deterministic (name-sorted) order for lock-free
	// iteration after emit.
	sinks    map[string]func(Event)
	sinkList []func(Event)
}

// New creates a recorder writing JSON lines to w (which may be nil for
// an in-memory-only recorder). keep bounds the in-memory ring (0
// disables retention). The recorder timestamps events from whatever
// clock it is bound to; the host binds its own clock at boot.
func New(w io.Writer, keep int) *Recorder {
	r := &Recorder{w: w, keep: keep}
	if w != nil {
		r.enc = json.NewEncoder(w)
	}
	return r
}

// NewCapture creates an in-memory recorder that retains every event it
// records, in order, so a scoped unit (one experiment running
// concurrently with others) can trace into isolation and have its
// whole stream replayed into the shared recorder afterwards with
// Absorb. Retention is unbounded; Absorb drains it.
func NewCapture() *Recorder {
	return &Recorder{capture: true}
}

// BindClock attaches the simulated clock used for event timestamps.
// Safe on a nil receiver.
func (r *Recorder) BindClock(c *simtime.Clock) {
	if r != nil {
		r.mu.Lock()
		r.clock = c
		r.mu.Unlock()
	}
}

// SetSink installs fn as the default live tap: every subsequently
// recorded event is also passed to fn, after the recorder's own lock
// is released (so fn may call back into the recorder, though recursing
// from a sink is usually a mistake). A nil fn removes the tap.
// Equivalent to SetNamedSink("", fn). Safe on a nil receiver.
func (r *Recorder) SetSink(fn func(Event)) {
	r.SetNamedSink("", fn)
}

// SetNamedSink installs fn as the live tap registered under name,
// replacing any previous sink of the same name (so re-binding is
// idempotent: a plane that taps the same recorder at every host boot
// keeps exactly one tap). A nil fn removes that tap. Independent
// consumers — the observability bus, the cost profiler — use distinct
// names and all receive every event. Safe on a nil receiver.
func (r *Recorder) SetNamedSink(name string, fn func(Event)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.sinks == nil {
		r.sinks = make(map[string]func(Event))
	}
	if fn == nil {
		delete(r.sinks, name)
	} else {
		r.sinks[name] = fn
	}
	names := make([]string, 0, len(r.sinks))
	for n := range r.sinks {
		names = append(names, n)
	}
	sort.Strings(names)
	r.sinkList = make([]func(Event), 0, len(names))
	for _, n := range names {
		r.sinkList = append(r.sinkList, r.sinks[n])
	}
	r.mu.Unlock()
}

// Emit records one event. kv lists alternating keys and values; a
// trailing odd key gets the value nil. Safe on a nil receiver.
func (r *Recorder) Emit(kind string, kv ...any) {
	if r == nil {
		return
	}
	data := buildData(kv)
	r.mu.Lock()
	ev := r.emitLocked(kind, data)
	sinks := r.sinkList
	r.mu.Unlock()
	for _, sink := range sinks {
		sink(ev)
	}
}

// buildData converts alternating key/value pairs into an event's Data
// map.
func buildData(kv []any) map[string]any {
	if len(kv) == 0 {
		return nil
	}
	data := make(map[string]any, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		if i+1 < len(kv) {
			data[key] = normalize(kv[i+1])
		} else {
			data[key] = nil
		}
	}
	return data
}

// emitLocked stamps, writes, and retains one event, returning it for
// the sink. Caller holds r.mu.
func (r *Recorder) emitLocked(kind string, data map[string]any) Event {
	r.seq++
	simNow := time.Duration(0)
	if r.clock != nil {
		simNow = r.clock.Now()
	}
	ev := Event{
		Seq:     r.seq,
		SimTime: simNow.Round(time.Millisecond).String(),
		Kind:    kind,
		Data:    data,
	}
	if r.enc != nil {
		if err := r.enc.Encode(ev); err != nil {
			r.errs++
		}
	}
	if r.keep > 0 {
		r.recent = append(r.recent, ev)
		if len(r.recent) > r.keep {
			r.recent = r.recent[len(r.recent)-r.keep:]
		}
	}
	if r.capture {
		r.captured = append(r.captured, ev)
	}
	return ev
}

// Absorb replays everything a capture-mode child recorder accumulated
// into r, draining the child: events keep their simulated timestamps
// and relative order but are renumbered into r's sequence, and span
// IDs are offset past r's own so merged streams cannot collide. Each
// replayed event flows through r's writer, ring, and sinks exactly as
// if it had been emitted on r. Deterministic merging is the caller's
// job: absorbing completed units in declaration order (not completion
// order) yields a byte-identical stream regardless of how many workers
// ran the units. Safe on nil receiver or child.
func (r *Recorder) Absorb(child *Recorder) {
	if r == nil || child == nil || child == r {
		return
	}
	child.mu.Lock()
	events := child.captured
	child.captured = nil
	childSpans := child.nextSpan
	child.mu.Unlock()
	if len(events) == 0 && childSpans == 0 {
		return
	}
	r.mu.Lock()
	offset := r.nextSpan
	r.nextSpan += childSpans
	replayed := make([]Event, len(events))
	for i, ev := range events {
		if offset != 0 && (ev.Kind == "span.start" || ev.Kind == "span.end") {
			data := make(map[string]any, len(ev.Data))
			for k, v := range ev.Data {
				data[k] = v
			}
			if id := asSpanID(data["span"]); id != 0 {
				data["span"] = id + offset
			}
			if p := asSpanID(data["parent"]); p != 0 {
				data["parent"] = p + offset
			}
			ev.Data = data
		}
		r.seq++
		ev.Seq = r.seq
		if r.enc != nil {
			if err := r.enc.Encode(ev); err != nil {
				r.errs++
			}
		}
		if r.keep > 0 {
			r.recent = append(r.recent, ev)
			if len(r.recent) > r.keep {
				r.recent = r.recent[len(r.recent)-r.keep:]
			}
		}
		if r.capture {
			r.captured = append(r.captured, ev)
		}
		replayed[i] = ev
	}
	sinks := r.sinkList
	r.mu.Unlock()
	for _, ev := range replayed {
		for _, sink := range sinks {
			sink(ev)
		}
	}
}

// asSpanID coerces a span/parent ID out of event data: native uint64
// from in-memory events, float64 after a JSON round trip.
func asSpanID(v any) uint64 {
	switch x := v.(type) {
	case uint64:
		return x
	case float64:
		return uint64(x)
	case int:
		return uint64(x)
	}
	return 0
}

// normalize converts values that encode poorly into plain
// JSON-friendly forms: errors become their message, byte slices are
// hex-encoded (encoding/json would base64 them, which is useless in a
// grep-able trace), and Stringers render as their String().
func normalize(v any) any {
	switch x := v.(type) {
	case error:
		return x.Error()
	case []byte:
		return hex.EncodeToString(x)
	case interface{ String() string }:
		return x.String()
	default:
		return v
	}
}

// Recent returns the retained events, oldest first.
func (r *Recorder) Recent() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.recent))
	copy(out, r.recent)
	return out
}

// Count returns how many events were emitted.
func (r *Recorder) Count() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Flush pushes buffered events down to the underlying writer: if the
// recorder's writer implements Flush() error (e.g. *bufio.Writer) it is
// flushed, and a flush failure counts as an encode error. CLIs call
// this on every exit path — os.Exit skips defers, and a buffered tail
// of a trace is exactly the part that explains a crash. Safe on a nil
// receiver.
func (r *Recorder) Flush() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.w.(interface{ Flush() error })
	if !ok {
		return nil
	}
	if err := f.Flush(); err != nil {
		r.errs++
		return err
	}
	return nil
}

// EncodeErrors returns how many events failed to serialize or write.
func (r *Recorder) EncodeErrors() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.errs
}

// Span is one open phase. End closes it. A nil *Span is valid and
// no-ops, matching the nil Recorder.
type Span struct {
	r      *Recorder
	id     uint64
	parent uint64
	name   string
	start  time.Duration
}

// StartSpan opens a top-level phase span named name and emits a
// "span.start" event carrying the span ID and any extra key/value
// pairs. Nesting is explicit: child spans are opened with
// Span.StartChild, never inferred from what happens to be open, so
// spans started concurrently from different goroutines cannot corrupt
// each other's ancestry. Safe on a nil receiver, returning a nil span.
func (r *Recorder) StartSpan(name string, kv ...any) *Span {
	if r == nil {
		return nil
	}
	return r.startSpan(0, name, kv)
}

// StartChild opens a span nested under s, emitting a "span.start"
// event whose parent field is s's span ID. Safe on a nil receiver,
// returning a nil span, so call chains off a disabled recorder stay
// guard-free.
func (s *Span) StartChild(name string, kv ...any) *Span {
	if s == nil || s.r == nil {
		return nil
	}
	return s.r.startSpan(s.id, name, kv)
}

// startSpan allocates a span under the given parent ID (0 for roots)
// and emits its start event.
func (r *Recorder) startSpan(parent uint64, name string, kv []any) *Span {
	data := buildData(kv)
	if data == nil {
		data = make(map[string]any, 3)
	}
	r.mu.Lock()
	r.nextSpan++
	id := r.nextSpan
	start := time.Duration(0)
	if r.clock != nil {
		start = r.clock.Now()
	}
	data["span"] = id
	data["name"] = name
	if parent != 0 {
		data["parent"] = parent
	}
	ev := r.emitLocked("span.start", data)
	sinks := r.sinkList
	r.mu.Unlock()
	for _, sink := range sinks {
		sink(ev)
	}
	return &Span{r: r, id: id, parent: parent, name: name, start: start}
}

// End closes the span, emitting a "span.end" event with the simulated
// duration since StartSpan plus any extra key/value pairs. Safe on a
// nil receiver; ending twice emits twice (don't).
func (s *Span) End(kv ...any) {
	if s == nil || s.r == nil {
		return
	}
	r := s.r
	data := buildData(kv)
	if data == nil {
		data = make(map[string]any, 4)
	}
	r.mu.Lock()
	now := time.Duration(0)
	if r.clock != nil {
		now = r.clock.Now()
	}
	dur := now - s.start
	data["span"] = s.id
	data["name"] = s.name
	if s.parent != 0 {
		data["parent"] = s.parent
	}
	data["durSim"] = dur.Round(time.Millisecond).String()
	data["seconds"] = dur.Seconds()
	ev := r.emitLocked("span.end", data)
	sinks := r.sinkList
	r.mu.Unlock()
	for _, sink := range sinks {
		sink(ev)
	}
}

// Duration returns the simulated time elapsed since the span started.
func (s *Span) Duration() time.Duration {
	if s == nil || s.r == nil {
		return 0
	}
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	if s.r.clock == nil {
		return 0
	}
	return s.r.clock.Now() - s.start
}
