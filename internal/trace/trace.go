// Package trace provides structured event tracing for the simulation:
// hypervisor-side observability (VM lifecycle, releases, splits,
// applied flips, machine checks) written as JSON lines, with simulated
// timestamps. It records what a host operator could observe — it is
// diagnostics for the simulation's users, not an attacker channel.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"hyperhammer/internal/simtime"
)

// Event is one trace record.
type Event struct {
	// Seq is a monotonically increasing sequence number.
	Seq uint64 `json:"seq"`
	// SimTime is the simulated time of the event.
	SimTime string `json:"simTime"`
	// Kind is a dotted event name, e.g. "virtio.unplug".
	Kind string `json:"kind"`
	// Data holds the event's fields.
	Data map[string]any `json:"data,omitempty"`
}

// Recorder writes events. A nil *Recorder is valid and drops
// everything, so instrumented code needs no guards.
type Recorder struct {
	clock *simtime.Clock
	w     io.Writer
	enc   *json.Encoder
	seq   uint64
	// keep retains the most recent events in memory for tests and
	// programmatic inspection (0 disables).
	keep   int
	recent []Event
	errs   int
}

// New creates a recorder writing JSON lines to w (which may be nil for
// an in-memory-only recorder). keep bounds the in-memory ring (0
// disables retention). The recorder timestamps events from whatever
// clock it is bound to; the host binds its own clock at boot.
func New(w io.Writer, keep int) *Recorder {
	r := &Recorder{w: w, keep: keep}
	if w != nil {
		r.enc = json.NewEncoder(w)
	}
	return r
}

// BindClock attaches the simulated clock used for event timestamps.
// Safe on a nil receiver.
func (r *Recorder) BindClock(c *simtime.Clock) {
	if r != nil {
		r.clock = c
	}
}

// Emit records one event. kv lists alternating keys and values; a
// trailing odd key gets the value nil. Safe on a nil receiver.
func (r *Recorder) Emit(kind string, kv ...any) {
	if r == nil {
		return
	}
	r.seq++
	simNow := time.Duration(0)
	if r.clock != nil {
		simNow = r.clock.Now()
	}
	ev := Event{
		Seq:     r.seq,
		SimTime: simNow.Round(time.Millisecond).String(),
		Kind:    kind,
	}
	if len(kv) > 0 {
		ev.Data = make(map[string]any, (len(kv)+1)/2)
		for i := 0; i < len(kv); i += 2 {
			key, ok := kv[i].(string)
			if !ok {
				key = fmt.Sprint(kv[i])
			}
			if i+1 < len(kv) {
				ev.Data[key] = normalize(kv[i+1])
			} else {
				ev.Data[key] = nil
			}
		}
	}
	if r.enc != nil {
		if err := r.enc.Encode(ev); err != nil {
			r.errs++
		}
	}
	if r.keep > 0 {
		r.recent = append(r.recent, ev)
		if len(r.recent) > r.keep {
			r.recent = r.recent[len(r.recent)-r.keep:]
		}
	}
}

// normalize converts values that encode poorly (e.g. typed integers)
// into plain JSON-friendly forms.
func normalize(v any) any {
	switch x := v.(type) {
	case interface{ String() string }:
		return x.String()
	default:
		return v
	}
}

// Recent returns the retained events, oldest first.
func (r *Recorder) Recent() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, len(r.recent))
	copy(out, r.recent)
	return out
}

// Count returns how many events were emitted.
func (r *Recorder) Count() uint64 {
	if r == nil {
		return 0
	}
	return r.seq
}

// EncodeErrors returns how many events failed to serialize or write.
func (r *Recorder) EncodeErrors() int {
	if r == nil {
		return 0
	}
	return r.errs
}
