package trace

import (
	"strings"
	"testing"
	"time"

	"hyperhammer/internal/simtime"
)

// TestAbsorbRenumbersAndRemaps checks that replaying a captured child
// stream into a parent renumbers sequence numbers, offsets span IDs
// past the parent's, preserves simulated timestamps, and feeds the
// parent's writer and sinks.
func TestAbsorbRenumbersAndRemaps(t *testing.T) {
	var out strings.Builder
	parent := New(&out, 100)
	var sunk []Event
	parent.SetNamedSink("test", func(ev Event) { sunk = append(sunk, ev) })

	// Parent opens a span first so its nextSpan is nonzero.
	pSpan := parent.StartSpan("parent.phase")
	pSpan.End()

	child := NewCapture()
	clock := &simtime.Clock{}
	child.BindClock(clock)
	clock.Advance(42 * time.Second)
	root := child.StartSpan("unit.root")
	kid := root.StartChild("unit.child")
	child.Emit("unit.event", "k", "v")
	kid.End()
	root.End()

	parent.Absorb(child)

	evs := parent.Recent()
	if len(evs) != 7 { // 2 parent span events + 5 child events
		t.Fatalf("parent retained %d events, want 7", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has Seq %d, want %d", i, ev.Seq, i+1)
		}
	}
	// Child events start at index 2. Their span IDs must be offset by
	// the parent's one existing span.
	cs := evs[2:]
	if cs[0].Kind != "span.start" || cs[0].Data["span"].(uint64) != 2 {
		t.Fatalf("absorbed root start = %+v, want span 2", cs[0])
	}
	if cs[1].Data["span"].(uint64) != 3 || cs[1].Data["parent"].(uint64) != 2 {
		t.Fatalf("absorbed child start = %+v, want span 3 parent 2", cs[1])
	}
	if cs[0].SimTime != (42 * time.Second).String() {
		t.Fatalf("absorbed SimTime = %q, want %q", cs[0].SimTime, (42 * time.Second).String())
	}
	if cs[2].Kind != "unit.event" || cs[2].Data["k"] != "v" {
		t.Fatalf("absorbed event = %+v", cs[2])
	}
	if len(sunk) != 7 {
		t.Fatalf("sink saw %d events, want 7", len(sunk))
	}
	if got := strings.Count(out.String(), "\n"); got != 7 {
		t.Fatalf("writer got %d lines, want 7", got)
	}

	// A new parent span must not collide with absorbed IDs.
	next := parent.StartSpan("parent.after")
	if next.id != 4 {
		t.Fatalf("post-absorb span ID = %d, want 4", next.id)
	}

	// Absorb drained the child: a second absorb is a no-op for events.
	before := parent.Count()
	parent.Absorb(child)
	if parent.Count() != before {
		t.Fatalf("second absorb replayed events again")
	}
}

// TestAbsorbDeterministicOrder: absorbing the same two children in the
// same order into two parents yields identical streams, regardless of
// the order the children were produced in.
func TestAbsorbDeterministicOrder(t *testing.T) {
	mk := func(name string, sim time.Duration) *Recorder {
		c := NewCapture()
		clock := &simtime.Clock{}
		c.BindClock(clock)
		clock.Advance(sim)
		s := c.StartSpan(name)
		c.Emit(name+".work", "n", 1)
		s.End()
		return c
	}

	var a, b strings.Builder
	pa := New(&a, 0)
	pb := New(&b, 0)

	// Children built in opposite orders; absorbed in the same order.
	u1a, u2a := mk("u1", time.Second), mk("u2", 2*time.Second)
	u2b, u1b := mk("u2", 2*time.Second), mk("u1", time.Second)
	pa.Absorb(u1a)
	pa.Absorb(u2a)
	pb.Absorb(u1b)
	pb.Absorb(u2b)

	if a.String() != b.String() {
		t.Fatalf("streams differ:\n%s\nvs\n%s", a.String(), b.String())
	}
}
