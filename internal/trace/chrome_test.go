package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"hyperhammer/internal/sched"
)

// TestWriteChromeTraceSchema: output is valid trace_event JSON — the
// object format with a traceEvents array, every event ph "X" or "M",
// complete events carrying non-negative microsecond ts/dur, one thread
// per worker plus the deliver track.
func TestWriteChromeTraceSchema(t *testing.T) {
	sc := &sched.Schedule{
		Workers:     2,
		WallSeconds: 0.3,
		Units: []sched.UnitTiming{
			{Index: 0, Name: "a", Worker: 0, StartSeconds: 0, EndSeconds: 0.1,
				DeliverStartSeconds: 0.1, DeliverEndSeconds: 0.12, Started: true, Delivered: true},
			{Index: 1, Name: "b", Worker: 1, StartSeconds: 0, EndSeconds: 0.25,
				DeliverStartSeconds: 0.25, DeliverEndSeconds: 0.3, Started: true, Delivered: true},
			{Index: 2, Name: "never", Worker: -1}, // unstarted: no events
		},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sc); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	if parsed.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", parsed.DisplayTimeUnit)
	}
	threads := map[int]string{}
	var complete, meta int
	for _, ev := range parsed.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Name == "thread_name" {
				threads[ev.Tid] = ev.Args["name"].(string)
			}
		case "X":
			complete++
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Fatalf("negative ts/dur in %+v", ev)
			}
			if ev.Pid != 1 {
				t.Fatalf("pid = %d", ev.Pid)
			}
		default:
			t.Fatalf("unexpected ph %q", ev.Ph)
		}
	}
	// worker 0, worker 1, deliver.
	if len(threads) != 3 || threads[0] != "worker 0" || threads[1] != "worker 1" || threads[2] != "deliver" {
		t.Fatalf("thread tracks = %v", threads)
	}
	// 2 started units × (run + deliver) = 4 complete events; the
	// unstarted unit contributes none.
	if complete != 4 {
		t.Fatalf("complete events = %d, want 4", complete)
	}
	if meta != 4 { // process_name + 3 thread_names
		t.Fatalf("metadata events = %d, want 4", meta)
	}
	// Spot-check microsecond conversion: unit b ran 0→0.25s = 250000us.
	for _, ev := range parsed.TraceEvents {
		if ev.Ph == "X" && ev.Name == "b" {
			if ev.Dur < 249999 || ev.Dur > 250001 {
				t.Fatalf("unit b dur = %v us, want 250000", ev.Dur)
			}
		}
	}
}

// TestWriteChromeTraceNil: a nil schedule still writes a valid, empty
// trace object.
func TestWriteChromeTraceNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if evs, ok := parsed["traceEvents"].([]any); !ok || len(evs) != 0 {
		t.Fatalf("nil schedule trace: %s", buf.String())
	}
}
