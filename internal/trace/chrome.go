package trace

// Chrome trace_event export for the host-cost scheduler telemetry:
// turns a sched.Schedule into the JSON object format Perfetto and
// chrome://tracing load directly — one track (thread) per worker plus
// a "deliver" track for the index-ordered delivery chain. This is a
// host-time view; the JSONL sim trace is a different clock entirely.

import (
	"encoding/json"
	"io"
	"strconv"

	"hyperhammer/internal/sched"
)

// chromeEvent is one trace_event record. Only the fields the viewers
// require: ph "M" metadata (process/thread names) and ph "X" complete
// events with microsecond ts/dur.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts,omitempty"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes sc as Chrome trace_event JSON. Worker w's
// units land on tid w; deliveries land on the extra track tid ==
// sc.Workers, where the serialized delivery chain is visible as one
// contiguous lane. Timestamps are microseconds from batch start. Safe
// on a nil schedule (writes a valid empty trace).
func WriteChromeTrace(w io.Writer, sc *sched.Schedule) error {
	ct := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	if sc != nil {
		const pid = 1
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": "hyperhammer sched"},
		})
		for wi := 0; wi < sc.Workers; wi++ {
			ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: wi,
				Args: map[string]any{"name": workerName(wi)},
			})
		}
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: sc.Workers,
			Args: map[string]any{"name": "deliver"},
		})
		for _, u := range sc.Units {
			if !u.Started {
				continue
			}
			ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
				Name: u.Name, Ph: "X", Pid: pid, Tid: u.Worker,
				Ts:  u.StartSeconds * 1e6,
				Dur: clampNonNeg(u.RunSeconds()) * 1e6,
				Args: map[string]any{
					"index":            u.Index,
					"queueWaitSeconds": u.QueueWaitSeconds(),
				},
			})
			if u.Delivered {
				ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
					Name: "deliver " + u.Name, Ph: "X", Pid: pid, Tid: sc.Workers,
					Ts:  u.DeliverStartSeconds * 1e6,
					Dur: clampNonNeg(u.DeliverSeconds()) * 1e6,
					Args: map[string]any{
						"index":              u.Index,
						"deliverHoldSeconds": u.DeliverHoldSeconds(),
					},
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ct)
}

func workerName(w int) string {
	return "worker " + strconv.Itoa(w)
}

func clampNonNeg(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}
