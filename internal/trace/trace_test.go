package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"hyperhammer/internal/simtime"
)

func TestEmitWritesJSONLines(t *testing.T) {
	var buf bytes.Buffer
	clock := &simtime.Clock{}
	r := New(&buf, 10)
	r.BindClock(clock)
	clock.Advance(90 * time.Second)
	r.Emit("vm.create", "memBytes", 123, "name", "test")
	r.Emit("dram.flip", "bit", uint(3))
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Seq != 1 || ev.Kind != "vm.create" || ev.SimTime != "1m30s" {
		t.Errorf("event = %+v", ev)
	}
	if ev.Data["memBytes"].(float64) != 123 || ev.Data["name"] != "test" {
		t.Errorf("data = %v", ev.Data)
	}
	if r.Count() != 2 || r.EncodeErrors() != 0 {
		t.Errorf("count=%d errs=%d", r.Count(), r.EncodeErrors())
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Emit("anything", "k", 1)
	if r.Count() != 0 || r.Recent() != nil || r.EncodeErrors() != 0 {
		t.Error("nil recorder not inert")
	}
}

func TestRecentRing(t *testing.T) {
	r := New(nil, 3)
	for i := 0; i < 5; i++ {
		r.Emit("e", "i", i)
	}
	recent := r.Recent()
	if len(recent) != 3 {
		t.Fatalf("recent = %d", len(recent))
	}
	if recent[0].Data["i"].(int) != 2 || recent[2].Data["i"].(int) != 4 {
		t.Errorf("ring contents wrong: %v", recent)
	}
}

func TestOddKeyValueHandled(t *testing.T) {
	r := New(nil, 1)
	r.Emit("e", "lonely")
	if v, ok := r.Recent()[0].Data["lonely"]; !ok || v != nil {
		t.Error("odd trailing key mishandled")
	}
}

func TestStringerNormalization(t *testing.T) {
	r := New(nil, 1)
	r.Emit("e", "d", 5*time.Second)
	if got := r.Recent()[0].Data["d"]; got != "5s" {
		t.Errorf("stringer value = %v", got)
	}
}

func TestErrorAndBytesNormalization(t *testing.T) {
	r := New(nil, 2)
	r.Emit("e", "err", errors.New("boom"), "blob", []byte{0xde, 0xad})
	data := r.Recent()[0].Data
	if data["err"] != "boom" {
		t.Errorf("error value = %v", data["err"])
	}
	if data["blob"] != "dead" {
		t.Errorf("bytes value = %v", data["blob"])
	}
	// Both forms must also survive JSON encoding without errors.
	var buf bytes.Buffer
	r2 := New(&buf, 0)
	r2.Emit("e", "err", errors.New("boom"), "blob", []byte{1, 2, 3})
	if r2.EncodeErrors() != 0 {
		t.Errorf("encode errors = %d", r2.EncodeErrors())
	}
}

func TestSpanNesting(t *testing.T) {
	clock := &simtime.Clock{}
	r := New(nil, 10)
	r.BindClock(clock)

	outer := r.StartSpan("outer", "k", 1)
	clock.Advance(2 * time.Second)
	inner := outer.StartChild("inner")
	clock.Advance(3 * time.Second)
	inner.End("ok", true)
	outer.End()

	evs := r.Recent()
	if len(evs) != 4 {
		t.Fatalf("events = %d", len(evs))
	}
	start0, start1, end1, end0 := evs[0], evs[1], evs[2], evs[3]
	if start0.Kind != "span.start" || start0.Data["name"] != "outer" {
		t.Errorf("outer start = %+v", start0)
	}
	if _, hasParent := start0.Data["parent"]; hasParent {
		t.Error("top-level span has a parent")
	}
	if start1.Data["parent"] != outer.id {
		t.Errorf("inner parent = %v, want %d", start1.Data["parent"], outer.id)
	}
	if end1.Data["durSim"] != "3s" || end1.Data["seconds"] != 3.0 {
		t.Errorf("inner end = %+v", end1.Data)
	}
	if end0.Data["durSim"] != "5s" {
		t.Errorf("outer durSim = %v", end0.Data["durSim"])
	}
	if end1.Data["ok"] != true {
		t.Errorf("extra kv lost: %+v", end1.Data)
	}
}

func TestSpanSiblingsShareParent(t *testing.T) {
	r := New(nil, 10)
	root := r.StartSpan("root")
	a := root.StartChild("a")
	a.End()
	b := root.StartChild("b")
	b.End()
	root.End()
	evs := r.Recent()
	// events: root.start a.start a.end b.start b.end root.end
	if evs[3].Data["parent"] != root.id {
		t.Errorf("sibling b parent = %v, want %d", evs[3].Data["parent"], root.id)
	}
}

func TestUnrelatedSpansStayRoots(t *testing.T) {
	r := New(nil, 10)
	a := r.StartSpan("a")
	b := r.StartSpan("b") // opened while a is open — NOT a child of a
	for _, ev := range r.Recent() {
		if _, has := ev.Data["parent"]; has {
			t.Errorf("independent span got a parent: %+v", ev.Data)
		}
	}
	b.End()
	a.End()
}

// TestConcurrentParentAttribution is the regression test for the
// shared-open-stack bug: spans started on one goroutine must never be
// attributed to a span another goroutine happens to have open.
func TestConcurrentParentAttribution(t *testing.T) {
	r := New(nil, 0)
	const workers = 8
	const each = 100
	type rec struct{ parent, child uint64 }
	got := make([][]rec, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				p := r.StartSpan("p")
				c := p.StartChild("c")
				got[w] = append(got[w], rec{parent: p.id, child: c.parent})
				c.End()
				p.End()
			}
		}(w)
	}
	wg.Wait()
	for w, recs := range got {
		for i, rc := range recs {
			if rc.child != rc.parent {
				t.Fatalf("worker %d iter %d: child attributed to span %d, want %d",
					w, i, rc.child, rc.parent)
			}
		}
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	var r *Recorder
	span := r.StartSpan("x", "k", 1)
	if span != nil {
		t.Fatal("nil recorder returned non-nil span")
	}
	span.End("k", 2) // must not panic
	if child := span.StartChild("y"); child != nil {
		t.Fatal("nil span returned non-nil child")
	}
	if span.Duration() != 0 {
		t.Error("nil span has duration")
	}
}

func TestSinkReceivesEveryEvent(t *testing.T) {
	r := New(nil, 0)
	var mu sync.Mutex
	var kinds []string
	r.SetSink(func(ev Event) {
		mu.Lock()
		kinds = append(kinds, ev.Kind)
		mu.Unlock()
	})
	r.Emit("plain")
	s := r.StartSpan("s")
	c := s.StartChild("c")
	c.End()
	s.End()
	want := []string{"plain", "span.start", "span.start", "span.end", "span.end"}
	if len(kinds) != len(want) {
		t.Fatalf("sink saw %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("sink saw %v, want %v", kinds, want)
		}
	}
	r.SetSink(nil)
	r.Emit("after")
	if len(kinds) != len(want) {
		t.Error("removed sink still receiving")
	}
	var nilRec *Recorder
	nilRec.SetSink(func(Event) {}) // must not panic
}

// TestNamedSinksAreIndependent covers the multi-consumer contract: the
// observability tap and the cost profiler attach under distinct names
// and both see every event; re-registering a name replaces only that
// sink (idempotent plane re-taps at host boot).
func TestNamedSinksAreIndependent(t *testing.T) {
	r := New(nil, 0)
	var a, b int
	r.SetNamedSink("obs", func(Event) { a++ })
	r.SetNamedSink("profile", func(Event) { b++ })
	r.Emit("one")
	r.Emit("two")
	if a != 2 || b != 2 {
		t.Errorf("sink counts = %d/%d, want 2/2", a, b)
	}
	// Replacing one name must not duplicate or disturb the other.
	r.SetNamedSink("obs", func(Event) { a += 10 })
	r.Emit("three")
	if a != 12 || b != 3 {
		t.Errorf("after replace: counts = %d/%d, want 12/3", a, b)
	}
	r.SetNamedSink("profile", nil)
	r.Emit("four")
	if a != 22 || b != 3 {
		t.Errorf("after removal: counts = %d/%d, want 22/3", a, b)
	}
	var nilRec *Recorder
	nilRec.SetNamedSink("x", func(Event) {}) // must not panic
}

func TestFlushFlushesBufferedWriter(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriterSize(&buf, 1<<16)
	r := New(bw, 0)
	r.Emit("e", "k", 1)
	if buf.Len() != 0 {
		t.Skip("event larger than buffer; nothing to test")
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("Flush did not reach the underlying writer")
	}
	var nilRec *Recorder
	if err := nilRec.Flush(); err != nil {
		t.Error("nil recorder Flush errored")
	}
	if err := New(nil, 0).Flush(); err != nil {
		t.Error("unbuffered recorder Flush errored")
	}
}

func TestConcurrentEmitAndSpans(t *testing.T) {
	var buf bytes.Buffer
	clock := &simtime.Clock{}
	r := New(&buf, 64)
	r.BindClock(clock)
	var wg sync.WaitGroup
	const workers = 8
	const each = 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				switch i % 3 {
				case 0:
					r.Emit("e", "w", w, "i", i)
				case 1:
					span := r.StartSpan("s", "w", w)
					span.End()
				default:
					r.Recent()
				}
			}
		}(w)
	}
	wg.Wait()
	if r.EncodeErrors() != 0 {
		t.Errorf("encode errors = %d", r.EncodeErrors())
	}
	// Every JSON line must be well-formed despite concurrent writers.
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("corrupt line %q: %v", line, err)
		}
	}
}
