package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"hyperhammer/internal/simtime"
)

func TestEmitWritesJSONLines(t *testing.T) {
	var buf bytes.Buffer
	clock := &simtime.Clock{}
	r := New(&buf, 10)
	r.BindClock(clock)
	clock.Advance(90 * time.Second)
	r.Emit("vm.create", "memBytes", 123, "name", "test")
	r.Emit("dram.flip", "bit", uint(3))
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Seq != 1 || ev.Kind != "vm.create" || ev.SimTime != "1m30s" {
		t.Errorf("event = %+v", ev)
	}
	if ev.Data["memBytes"].(float64) != 123 || ev.Data["name"] != "test" {
		t.Errorf("data = %v", ev.Data)
	}
	if r.Count() != 2 || r.EncodeErrors() != 0 {
		t.Errorf("count=%d errs=%d", r.Count(), r.EncodeErrors())
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Emit("anything", "k", 1)
	if r.Count() != 0 || r.Recent() != nil || r.EncodeErrors() != 0 {
		t.Error("nil recorder not inert")
	}
}

func TestRecentRing(t *testing.T) {
	r := New(nil, 3)
	for i := 0; i < 5; i++ {
		r.Emit("e", "i", i)
	}
	recent := r.Recent()
	if len(recent) != 3 {
		t.Fatalf("recent = %d", len(recent))
	}
	if recent[0].Data["i"].(int) != 2 || recent[2].Data["i"].(int) != 4 {
		t.Errorf("ring contents wrong: %v", recent)
	}
}

func TestOddKeyValueHandled(t *testing.T) {
	r := New(nil, 1)
	r.Emit("e", "lonely")
	if v, ok := r.Recent()[0].Data["lonely"]; !ok || v != nil {
		t.Error("odd trailing key mishandled")
	}
}

func TestStringerNormalization(t *testing.T) {
	r := New(nil, 1)
	r.Emit("e", "d", 5*time.Second)
	if got := r.Recent()[0].Data["d"]; got != "5s" {
		t.Errorf("stringer value = %v", got)
	}
}
