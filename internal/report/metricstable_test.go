package report_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"hyperhammer/internal/metrics"
	"hyperhammer/internal/report"
	"hyperhammer/internal/simtime"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a fixed registry covering every series kind,
// label shapes, and the float formats the table must render stably.
func goldenRegistry() *metrics.Registry {
	reg := metrics.New()
	clock := &simtime.Clock{}
	reg.BindClock(clock)
	clock.Advance(90*time.Minute + 30*time.Second)

	reg.Counter("dram_activations_total", "Row activations issued.").Add(57_056_000_000)
	reg.Counter("attack_attempts_total", "Attempts run.").Add(33)
	reg.Gauge("vms_live", "Live VMs.").Set(1)
	reg.Gauge("buddy_free_pages", "Free pages.").Set(61_503)
	reg.Counter("virtio_unplug_total", "Unplugs.", "result", "ack").Add(96)
	reg.Counter("virtio_unplug_total", "Unplugs.", "result", "nack").Add(3)
	h := reg.Histogram("attack_phase_seconds", "Phase timing.",
		[]float64{60, 300, 3600}, "phase", "steer")
	h.Observe(42)
	h.Observe(180)
	h.Observe(7200)
	return reg
}

// TestMetricsTableGolden pins the exact rendering of the end-of-run
// -metrics-table output. Regenerate with `go test ./internal/report
// -run TestMetricsTableGolden -update` after intentional changes.
func TestMetricsTableGolden(t *testing.T) {
	got := report.MetricsTable(goldenRegistry().Snapshot()).String()
	golden := filepath.Join("testdata", "metrics_table.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("metrics table drifted from golden file:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRowsAgreeWithPromExporter round-trips every series: the values
// the human-readable table prints must be exactly the values the
// Prometheus endpoint serves.
func TestRowsAgreeWithPromExporter(t *testing.T) {
	reg := goldenRegistry()
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}

	// Parse the exposition text into name+sortedLabels -> value.
	prom := map[string]string{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable prom line %q", line)
		}
		prom[line[:sp]] = line[sp+1:]
	}

	promKey := func(name, labels string) string {
		if labels == "-" {
			return name
		}
		var parts []string
		for _, kv := range strings.Split(labels, ",") {
			k, v, _ := strings.Cut(kv, "=")
			parts = append(parts, k+`="`+v+`"`)
		}
		return name + "{" + strings.Join(parts, ",") + "}"
	}

	rows := reg.Snapshot().Rows()
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		name, labels, kind, value := r[0], r[1], r[2], r[3]
		switch kind {
		case "counter", "gauge":
			got, ok := prom[promKey(name, labels)]
			if !ok {
				t.Errorf("series %s{%s} missing from prom output", name, labels)
				continue
			}
			if got != value {
				t.Errorf("%s{%s}: table says %s, prom says %s", name, labels, value, got)
			}
		case "histogram":
			// Table value is "count=N sum=S"; prom serves name_count
			// and name_sum.
			var count, sum string
			for _, f := range strings.Fields(value) {
				if v, ok := strings.CutPrefix(f, "count="); ok {
					count = v
				}
				if v, ok := strings.CutPrefix(f, "sum="); ok {
					sum = v
				}
			}
			if got := prom[promKey(name+"_count", labels)]; got != count {
				t.Errorf("%s_count{%s}: table %s, prom %s", name, labels, count, got)
			}
			if got := prom[promKey(name+"_sum", labels)]; got != sum {
				t.Errorf("%s_sum{%s}: table %s, prom %s", name, labels, sum, got)
			}
		default:
			t.Errorf("unknown kind %q", kind)
		}
	}
	// And sim_seconds, which only the exporter synthesizes, matches the
	// snapshot's clock reading.
	if got := prom["sim_seconds"]; got == "" {
		t.Error("sim_seconds missing from prom output")
	} else if v, err := strconv.ParseFloat(got, 64); err != nil || v != 5430 {
		t.Errorf("sim_seconds = %q, want 5430", got)
	}
}
