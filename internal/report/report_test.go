package report

import (
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table X", "System", "Time", "Total")
	tb.AddRow("S1", 72*time.Hour, 395)
	tb.AddRow("S2", 48*time.Hour, 650)
	out := tb.String()
	for _, want := range []string{"Table X", "System", "S1", "72.0h", "650"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("table has %d lines", len(lines))
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("", "R_N")
	tb.AddRow(0.1014)
	if !strings.Contains(tb.String(), "0.1") {
		t.Errorf("float row: %s", tb.String())
	}
}

func TestFigureRendering(t *testing.T) {
	f := NewFigure("Figure 3(a)", "time (s)", "noise pages")
	s1 := f.AddSeries("S1")
	s1.Add(0, 30000)
	s1.Add(60, 500)
	s2 := f.AddSeries("S2")
	s2.Add(0, 35000)
	out := f.String()
	for _, want := range []string{"Figure 3(a)", "series: S1", "0\t30000", "60\t500", "series: S2"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
	sum := f.Summary()
	if !strings.Contains(sum, "S1: start=30000 min=500 max=30000 final=500") {
		t.Errorf("summary: %s", sum)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		30 * time.Second:       "30.0s",
		5 * time.Minute:        "5.0min",
		16*time.Hour + 42*60e9: "16.7h",
		192 * 24 * time.Hour:   "192.0d",
	}
	for d, want := range cases {
		if got := FormatDuration(d); got != want {
			t.Errorf("FormatDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.913); got != "91.3%" {
		t.Errorf("Percent = %q", got)
	}
}
