// Package report formats experiment results as aligned text tables and
// plot-ready series, shared by the hh-tables command and the benchmark
// harness so every table and figure of the paper is regenerated with
// one consistent look.
package report

import (
	"fmt"
	"strings"
	"time"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			if x != 0 && x > -0.1 && x < 0.1 {
				row[i] = fmt.Sprintf("%.3g", x)
			} else {
				row[i] = fmt.Sprintf("%.1f", x)
			}
		case time.Duration:
			row[i] = FormatDuration(x)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one line of a figure: (x, y) points with a label.
type Series struct {
	Label  string
	Points []Point
}

// Point is one figure sample.
type Point struct {
	X, Y float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// Figure is a set of series with axis labels, rendered as TSV columns
// (x, then one column per series) so the output can be piped straight
// into a plotting tool.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates a figure.
func NewFigure(title, xLabel, yLabel string) *Figure {
	return &Figure{Title: title, XLabel: xLabel, YLabel: yLabel}
}

// AddSeries registers and returns a new series.
func (f *Figure) AddSeries(label string) *Series {
	s := &Series{Label: label}
	f.Series = append(f.Series, s)
	return s
}

// String renders the figure as commented TSV. Series are emitted
// sequentially (they may have different x grids).
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n# x: %s, y: %s\n", f.Title, f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "# series: %s\n", s.Label)
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%g\t%g\n", p.X, p.Y)
		}
	}
	return b.String()
}

// Summary returns per-series min/max/final values, the quick textual
// readout used in benchmark logs.
func (f *Figure) Summary() string {
	var b strings.Builder
	for _, s := range f.Series {
		if len(s.Points) == 0 {
			continue
		}
		minY, maxY := s.Points[0].Y, s.Points[0].Y
		for _, p := range s.Points {
			if p.Y < minY {
				minY = p.Y
			}
			if p.Y > maxY {
				maxY = p.Y
			}
		}
		final := s.Points[len(s.Points)-1].Y
		fmt.Fprintf(&b, "%s: start=%g min=%g max=%g final=%g points=%d\n",
			s.Label, s.Points[0].Y, minY, maxY, final, len(s.Points))
	}
	return b.String()
}

// MetricsSnapshot is the subset of metrics.Snapshot this package needs,
// duplicated here so report does not import the metrics package (report
// sits below every subsystem in the dependency order).
type MetricsSnapshot interface {
	// Rows yields one (name, labels, kind, value) row per series, in
	// deterministic order. Histograms are summarized as count and sum.
	Rows() [][4]string
}

// MetricsTable renders a metrics snapshot as a human-readable table:
// one row per series, histograms summarized by count and sum.
func MetricsTable(snap MetricsSnapshot) *Table {
	t := NewTable("Metrics", "metric", "labels", "kind", "value")
	for _, r := range snap.Rows() {
		t.AddRow(r[0], r[1], r[2], r[3])
	}
	return t
}

// FormatDuration renders simulated durations in the paper's units:
// seconds up to minutes, then hours, then days.
func FormatDuration(d time.Duration) string {
	switch {
	case d < time.Minute:
		return fmt.Sprintf("%.1fs", d.Seconds())
	case d < time.Hour:
		return fmt.Sprintf("%.1fmin", d.Minutes())
	case d < 100*time.Hour:
		return fmt.Sprintf("%.1fh", d.Hours())
	default:
		return fmt.Sprintf("%.1fd", d.Hours()/24)
	}
}

// Percent formats a ratio as a paper-style percentage.
func Percent(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
