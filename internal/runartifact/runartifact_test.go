package runartifact

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"hyperhammer/internal/benchfmt"
	"hyperhammer/internal/metrics"
	"hyperhammer/internal/profile"
	"hyperhammer/internal/simtime"
	"hyperhammer/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// sampleArtifact builds a small but fully populated artifact through
// the real profiler and registry, the way the CLIs do.
func sampleArtifact(t *testing.T, hammerSeconds int) *Artifact {
	t.Helper()
	clock := &simtime.Clock{}
	reg := metrics.New()
	reg.BindClock(clock)
	rec := trace.New(nil, 0)
	rec.BindClock(clock)
	b := profile.NewBuilder(reg)
	rec.SetNamedSink("profile", b.Consume)
	acts := reg.Counter("dram_activations_total", "")

	campaign := rec.StartSpan("attack.campaign")
	attempt := campaign.StartChild("attack.attempt")
	steer := attempt.StartChild("attack.steer")
	clock.Advance(30 * time.Second)
	steer.End()
	hammer := attempt.StartChild("attack.exploit")
	acts.Add(uint64(100 * hammerSeconds))
	clock.Advance(time.Duration(hammerSeconds) * time.Second)
	hammer.End()
	attempt.End()
	campaign.End()

	a := New("hyperhammer", 4, "short")
	a.Config["attempts"] = "1"
	a.SimSeconds = clock.Now().Seconds()
	a.Outcome["attempts"] = 1
	a.Outcome["successes"] = 1
	a.Metrics = reg.Snapshot()
	a.SetProfile(b.Snapshot())
	a.Series = []Series{{
		Name: "dram_activations_total", Kind: "counter",
		Points: []SeriesPoint{{T: 30, V: 0}, {T: a.SimSeconds, V: float64(100 * hammerSeconds)}},
	}}
	return a
}

func TestWriteReadRoundTrip(t *testing.T) {
	a := sampleArtifact(t, 60)
	a.CreatedAt = "2026-08-06T00:00:00Z"
	path := filepath.Join(t.TempDir(), "run.json")
	if err := a.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, got) {
		t.Errorf("round trip diverged:\nwrote %+v\nread  %+v", a, got)
	}
}

func TestReadRejectsNonArtifact(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"generatedAt":"x","benchmarks":[]}`)); err == nil {
		t.Error("bench document accepted as artifact")
	}
	if _, err := Read(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("future version accepted")
	}
	if _, err := Read(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

// TestSelfCompareIsZero is the acceptance check: an artifact diffed
// against itself (or a same-seed re-run) has zero deltas at zero
// tolerance.
func TestSelfCompareIsZero(t *testing.T) {
	a := sampleArtifact(t, 60)
	b := sampleArtifact(t, 60) // independent identical run
	d := Compare(a, b, Tolerances{})
	if d.Regressed() || d.Flagged != 0 {
		t.Fatalf("same-seed artifacts diverged:\n%s", d.Table(true))
	}
	if len(d.Deltas) == 0 {
		t.Fatal("no figures compared")
	}
	for _, row := range d.Deltas {
		if row.Delta != 0 {
			t.Errorf("nonzero delta: %+v", row)
		}
	}
	if a.Folded() != b.Folded() {
		t.Error("folded profiles differ between identical runs")
	}
}

// TestDifferentBudgetsFlagged: changing the hammer budget must flag
// the phase that spent the extra simulated time.
func TestDifferentBudgetsFlagged(t *testing.T) {
	a := sampleArtifact(t, 60)
	b := sampleArtifact(t, 120)
	d := Compare(a, b, Tolerances{})
	if !d.Regressed() {
		t.Fatal("different hammer budgets not flagged")
	}
	var exploitFlagged bool
	for _, row := range d.Deltas {
		if row.Kind == "phase" && strings.Contains(row.Key, "attack.exploit") && row.Flagged {
			exploitFlagged = true
		}
	}
	if !exploitFlagged {
		t.Errorf("exploit phase not named in:\n%s", d.Table(true))
	}
	// Generous tolerance swallows the drift.
	loose := Compare(a, b, Tolerances{SimFrac: 2, CountFrac: 2})
	if loose.Regressed() {
		t.Errorf("tolerant compare still flagged:\n%s", loose.Table(true))
	}
}

func TestWithinTolRules(t *testing.T) {
	for _, tc := range []struct {
		a, b, frac, abs float64
		want            bool
	}{
		{100, 100, 0, 0, true},
		{100, 101, 0, 0, false},
		{100, 101, 0.02, 0, true},
		{100, 101, 0, 1, true},
		{100, 103, 0.02, 1, false},
		{0, 0, 0, 0, true},
		{0, 5, 0.5, 0, false}, // growth from zero is never a fraction
		{0, 5, 0, 10, true},
	} {
		if got := withinTol(tc.a, tc.b, tc.frac, tc.abs); got != tc.want {
			t.Errorf("withinTol(%v,%v,%v,%v) = %v", tc.a, tc.b, tc.frac, tc.abs, got)
		}
	}
}

func TestCompareBench(t *testing.T) {
	parse := func(s string) *benchfmt.Output {
		out, err := benchfmt.Parse(strings.NewReader(s))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a := parse("BenchmarkSteer-8 10 1000 ns/op\nBenchmarkGone-8 10 50 ns/op\nok x 1s\n")
	b := parse("BenchmarkSteer-8 10 1200 ns/op\nok x 1s\n")
	d := CompareBench(a, b, DefaultTolerances())
	// +20% is inside the default 30% band; the vanished benchmark is not.
	if d.Flagged != 1 {
		t.Fatalf("flagged = %d:\n%s", d.Flagged, d.Table(false))
	}
	tight := CompareBench(a, b, Tolerances{BenchFrac: 0.05})
	if tight.Flagged != 2 {
		t.Errorf("tight flagged = %d", tight.Flagged)
	}
}

// TestVerdictTableGolden pins the rendered verdict table so its format
// is a reviewed artifact, not an accident.
func TestVerdictTableGolden(t *testing.T) {
	a := sampleArtifact(t, 60)
	b := sampleArtifact(t, 120)
	d := Compare(a, b, Tolerances{})
	var buf bytes.Buffer
	buf.WriteString(d.Table(false).String())
	buf.WriteString(d.Summary())
	buf.WriteByte('\n')

	golden := filepath.Join("testdata", "verdict.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("verdict table drifted:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}
