package runartifact

import (
	"bytes"
	"strings"
	"testing"

	"hyperhammer/internal/profile"
)

func hashTestArtifact() *Artifact {
	a := New("hyperhammer", 4, "short")
	a.Config["short"] = "true"
	a.Config["attempts"] = "2"
	a.Config["hammer-rounds"] = "150000"
	a.Config["parallel"] = "1"
	a.SimSeconds = 123.5
	a.Outcome["attempts"] = 2
	a.Outcome["successes"] = 0
	a.Profile = []profile.Entry{
		{Path: "attack.campaign", SimSeconds: 120, Activations: 500},
		{Path: "attack.campaign;attempt", SimSeconds: 100},
	}
	return a
}

// TestConfigHashDeterministicConfigOnly: the hash covers the
// deterministic config identity and nothing else — host-only keys
// (parallel, selection) never move it, simulated knobs always do.
func TestConfigHashDeterministicConfigOnly(t *testing.T) {
	a := hashTestArtifact()
	base := a.ComputeConfigHash()
	if len(base) != 16 {
		t.Fatalf("hash %q: want 16 hex chars", base)
	}

	b := hashTestArtifact()
	b.Config["parallel"] = "8"
	b.Config["selection"] = "-short -all -parallel 8"
	if got := b.ComputeConfigHash(); got != base {
		t.Errorf("host-only config keys moved the hash: %s != %s", got, base)
	}

	for _, perturb := range []func(*Artifact){
		func(a *Artifact) { a.Config["hammer-rounds"] = "400000" },
		func(a *Artifact) { a.Seed = 5 },
		func(a *Artifact) { a.Scale = "full" },
		func(a *Artifact) { a.Tool = "hh-tables" },
		func(a *Artifact) { a.Config["new-knob"] = "1" },
	} {
		c := hashTestArtifact()
		perturb(c)
		if got := c.ComputeConfigHash(); got == base {
			t.Errorf("deterministic config change did not move the hash (%+v)", c.Config)
		}
	}

	// Results never enter the config hash.
	d := hashTestArtifact()
	d.SimSeconds = 999
	d.Outcome["successes"] = 1
	if got := d.ComputeConfigHash(); got != base {
		t.Errorf("outcome change moved the config hash: %s != %s", got, base)
	}
}

// TestWriteStampsHeader: serialization stamps ConfigHash and
// ToolVersion on every path, and the stamped document round-trips.
func TestWriteStampsHeader(t *testing.T) {
	a := hashTestArtifact()
	var buf bytes.Buffer
	if err := a.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if a.ConfigHash == "" || a.ToolVersion != ToolVersion {
		t.Fatalf("Write did not stamp: hash=%q version=%q", a.ConfigHash, a.ToolVersion)
	}
	if !strings.Contains(buf.String(), `"configHash"`) || !strings.Contains(buf.String(), `"toolVersion"`) {
		t.Fatal("stamped fields missing from serialized artifact")
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.ConfigHash != a.ConfigHash || back.ToolVersion != ToolVersion {
		t.Fatalf("round-trip lost the stamp: %+v", back)
	}
}

// TestContentHashIgnoresHostFields: two byte-identical-figure runs
// hash equal even when wall clock, host plan, and release stamp
// differ; any simulated figure moves it.
func TestContentHashIgnoresHostFields(t *testing.T) {
	a, b := hashTestArtifact(), hashTestArtifact()
	b.CreatedAt = "2026-08-07T00:00:00Z"
	b.Plan = profile.EmptyPlanReport()
	b.Series = []Series{{Name: "x", Points: []SeriesPoint{{T: 1, V: 2}}}}
	b.Config["parallel"] = "8"
	b.Config["selection"] = "-short -all -parallel 8"
	if a.ContentHash() != b.ContentHash() {
		t.Error("host-only sections moved the content hash")
	}
	c := hashTestArtifact()
	c.Outcome["successes"] = 1
	if a.ContentHash() == c.ContentHash() {
		t.Error("outcome change did not move the content hash")
	}
}

// TestFingerprintsLocalizeDrift: equal artifacts fingerprint equal per
// section; perturbing one section moves exactly that fingerprint.
func TestFingerprintsLocalizeDrift(t *testing.T) {
	a, b := hashTestArtifact(), hashTestArtifact()
	fa, fb := a.Fingerprints(), b.Fingerprints()
	if len(fa) != 3 {
		t.Fatalf("sections = %v, want outcome/profile/counters", fa)
	}
	for k, v := range fa {
		if fb[k] != v {
			t.Errorf("identical artifacts disagree on fingerprint[%s]", k)
		}
	}

	b.Profile[0].SimSeconds = 121
	fb = b.Fingerprints()
	if fb["profile"] == fa["profile"] {
		t.Error("profile drift did not move the profile fingerprint")
	}
	if fb["outcome"] != fa["outcome"] || fb["counters"] != fa["counters"] {
		t.Error("profile drift leaked into other section fingerprints")
	}
}

func TestWithinTolMatchesDiffRule(t *testing.T) {
	if !WithinTol(100, 100, 0, 0) {
		t.Error("exact match must be within zero tolerance")
	}
	if WithinTol(100, 101, 0, 0) {
		t.Error("drift must exceed zero tolerance")
	}
	if !WithinTol(100, 129, 0.30, 0) || WithinTol(100, 190, 0.30, 0) {
		t.Error("relative band misapplied")
	}
	if !WithinTol(0, 0.5, 0, 1.0) {
		t.Error("absolute band misapplied")
	}
}
