package runartifact

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sort"
	"strconv"
)

// ToolVersion is the release stamp written into every artifact header.
// Bump it when a release intentionally changes simulated figures: the
// run-history trend engine then shows *why* same-config runs diverged
// (code moved, not config).
const ToolVersion = "0.8.0"

// HostOnlyConfigKeys names config entries that describe how a run was
// *executed* rather than what was simulated, so they are excluded from
// ConfigHash (DESIGN fidelity rule 6: host cost never enters a
// deterministic section). "parallel" cannot change any simulated
// figure by construction (the plan engine folds results in declaration
// order), and "selection" is the raw command line, which drags
// host-only flags and output paths into the identity; hh-tables
// records the normalized experiment set under "selected" instead.
var HostOnlyConfigKeys = map[string]bool{
	"parallel":  true,
	"selection": true,
}

// Stamp fills the derived header fields. Write calls it on every
// serialization; runstore.Ingest calls it before indexing.
func (a *Artifact) Stamp() {
	a.ToolVersion = ToolVersion
	a.ConfigHash = a.ComputeConfigHash()
}

// ComputeConfigHash hashes the deterministic config section: tool,
// seed, scale, and the Config map minus HostOnlyConfigKeys, serialized
// as canonical JSON (encoding/json sorts map keys, and the struct
// field order below is fixed). The result is 16 hex characters —
// enough to never collide in a local store while staying readable in
// tables and directory names.
func (a *Artifact) ComputeConfigHash() string {
	cfg := make(map[string]string, len(a.Config))
	for k, v := range a.Config {
		if !HostOnlyConfigKeys[k] {
			cfg[k] = v
		}
	}
	doc := struct {
		Tool   string            `json:"tool"`
		Seed   uint64            `json:"seed"`
		Scale  string            `json:"scale"`
		Config map[string]string `json:"config"`
	}{a.Tool, a.Seed, a.Scale, cfg}
	b, err := json.Marshal(doc)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// ContentHash hashes the deterministic content of the artifact: the
// full bundle minus the fields that legitimately differ between
// byte-identical-figure runs (CreatedAt is wall clock, Plan is host
// cost, Series depends on the live sampling cadence, ToolVersion is a
// release stamp, and HostOnlyConfigKeys describe execution, not
// simulation — hh-tables at -parallel 1 and -parallel 4 produces the
// same hash). Two same-config runs of the same code hash equal — the
// single-value determinism check the run-history store records per
// run, and the visible suffix of every stored run ID.
func (a *Artifact) ContentHash() string {
	c := *a
	c.CreatedAt = ""
	c.ToolVersion = ""
	c.Plan = nil
	c.Series = nil
	cfg := make(map[string]string, len(a.Config))
	for k, v := range a.Config {
		if !HostOnlyConfigKeys[k] {
			cfg[k] = v
		}
	}
	c.Config = cfg
	b, err := json.Marshal(&c)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// Fingerprints folds each deterministic artifact section into one
// FNV-1a figure, keyed by section name: "outcome" (headline sim time
// and campaign outcome), "profile" (per-path sim cost), "counters"
// (the metrics snapshot), and — when the run carried them — "heatmap",
// "census", "alerts", and "forensics". The flattenings are exactly the
// maps Compare diffs at zero tolerance, so two artifacts with equal
// fingerprints are hh-diff-clean on simulated figures, and a drifted
// section names where the divergence lives without storing every
// figure. Values are folded to 52 bits so they survive float64
// comparison machinery unchanged (like the heatmap grid fingerprint).
func (a *Artifact) Fingerprints() map[string]float64 {
	out := map[string]float64{
		"outcome":  fingerprintMap(outcomeMap(a)),
		"profile":  fingerprintMap(profileMap(a)),
		"counters": fingerprintMap(counterMap(a)),
	}
	if a.Heatmap != nil {
		out["heatmap"] = fingerprintMap(heatmapMap(a.Heatmap))
	}
	if a.Census != nil {
		out["census"] = fingerprintMap(censusMap(a.Census))
	}
	if a.Alerts != nil {
		out["alerts"] = fingerprintMap(alertsMap(a.Alerts))
	}
	if a.Forensics != nil {
		out["forensics"] = fingerprintMap(forensicsMap(a.Forensics))
	}
	return out
}

// outcomeMap flattens the headline figures: final sim time plus every
// outcome row.
func outcomeMap(a *Artifact) map[string]float64 {
	m := make(map[string]float64, len(a.Outcome)+1)
	m["sim_seconds"] = a.SimSeconds
	for k, v := range a.Outcome {
		m["outcome["+k+"]"] = v
	}
	return m
}

// profileMap flattens the folded cost profile the same way Compare
// does: per-path sim seconds plus per-path activation counts.
func profileMap(a *Artifact) map[string]float64 {
	m := make(map[string]float64, 2*len(a.Profile))
	for _, e := range a.Profile {
		m[e.Path] = e.SimSeconds
		if e.Activations != 0 {
			m[e.Path+" activations"] = float64(e.Activations)
		}
	}
	return m
}

// fingerprintMap hashes a figure map order-independently: sorted
// key=value lines through FNV-1a, value formatted with the shortest
// round-trippable float encoding, folded to float-exact 52 bits.
func fingerprintMap(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fp := uint64(14695981039346656037)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			fp ^= uint64(s[i])
			fp *= 1099511628211
		}
	}
	for _, k := range keys {
		mix(k)
		mix("=")
		mix(strconv.FormatFloat(m[k], 'g', -1, 64))
		mix("\n")
	}
	return float64(fp % (1 << 52))
}

// WithinTol reports |b−a| ≤ max(abs, frac·max(|a|,|b|)) — the single
// tolerance rule hh-diff applies everywhere, exported so the run-
// history trend engine attributes host/bench regressions with exactly
// the -host-tol machinery.
func WithinTol(a, b, frac, absTol float64) bool {
	return withinTol(a, b, frac, absTol)
}
