package runartifact

import (
	"strings"
	"testing"

	"hyperhammer/internal/profile"
	"hyperhammer/internal/sched"
)

// planFor builds a plan report over a 2-unit schedule whose run times
// scale with the given factor, simulating host-time noise between two
// runs of the same matrix.
func planFor(scale float64) *profile.PlanReport {
	return profile.BuildPlanReport(&sched.Schedule{
		Workers:     2,
		WallSeconds: 0.5 * scale,
		CPUSeconds:  0.8 * scale,
		Units: []sched.UnitTiming{
			{Index: 0, Name: "exp.a", Worker: 0, EndSeconds: 0.2 * scale,
				DeliverStartSeconds: 0.2 * scale, DeliverEndSeconds: 0.21 * scale,
				Started: true, Delivered: true},
			{Index: 1, Name: "exp.b", Worker: 1, EndSeconds: 0.5 * scale,
				DeliverStartSeconds: 0.5 * scale, DeliverEndSeconds: 0.5 * scale,
				Started: true, Delivered: true},
		},
	})
}

// TestPlanDiffDefaultToleratesHostNoise: under default tolerances two
// runs whose host timings differ 3x compare clean — durations are
// listed, not gated — while the shape rows still compare exactly.
func TestPlanDiffDefaultToleratesHostNoise(t *testing.T) {
	a, b := sampleArtifact(t, 60), sampleArtifact(t, 60)
	a.Plan = planFor(1)
	b.Plan = planFor(3)
	d := Compare(a, b, DefaultTolerances())
	if d.Regressed() {
		t.Fatalf("host noise flagged under defaults:\n%s", d.Table(true))
	}
	var planRows, hostRows int
	for _, row := range d.Deltas {
		if row.Kind != "plan" {
			continue
		}
		planRows++
		if strings.HasPrefix(row.Key, "host ") {
			hostRows++
		}
	}
	if planRows == 0 || hostRows == 0 {
		t.Fatalf("plan rows missing: plan=%d host=%d", planRows, hostRows)
	}
}

// TestPlanDiffShapeIsExact: a unit disappearing from the matrix is
// flagged even at default tolerances — shape compares at the
// (zero-default) count tolerance.
func TestPlanDiffShapeIsExact(t *testing.T) {
	a, b := sampleArtifact(t, 60), sampleArtifact(t, 60)
	a.Plan = planFor(1)
	shrunk := planFor(1)
	shrunk.Units = shrunk.Units[:1]
	b.Plan = shrunk
	d := Compare(a, b, DefaultTolerances())
	if !d.Regressed() {
		t.Fatal("dropped unit not flagged")
	}
	var unitsFlagged bool
	for _, row := range d.Deltas {
		if row.Kind == "plan" && row.Key == "units" && row.Flagged {
			unitsFlagged = true
		}
	}
	if !unitsFlagged {
		t.Fatalf("units row not flagged:\n%s", d.Table(true))
	}
}

// TestPlanDiffTightenedHostTolerance: a caller tightening the host
// tolerance (hh-diff -host-tol) turns real host drift into a failure.
func TestPlanDiffTightenedHostTolerance(t *testing.T) {
	a, b := sampleArtifact(t, 60), sampleArtifact(t, 60)
	a.Plan = planFor(1)
	b.Plan = planFor(3)
	tol := DefaultTolerances()
	tol.HostFrac, tol.HostAbs = 0.10, 0.001
	d := Compare(a, b, tol)
	if !d.Regressed() {
		t.Fatal("3x host drift not flagged at 10% tolerance")
	}
}

// TestPlanDiffOnlyWhenBothPresent: like bench, the plan section is
// skipped unless both artifacts carry one, so old baselines keep
// comparing clean against plan-bearing runs.
func TestPlanDiffOnlyWhenBothPresent(t *testing.T) {
	a, b := sampleArtifact(t, 60), sampleArtifact(t, 60)
	b.Plan = planFor(1)
	d := Compare(a, b, Tolerances{})
	for _, row := range d.Deltas {
		if row.Kind == "plan" {
			t.Fatalf("plan compared with one side missing: %+v", row)
		}
	}
	if d.Regressed() {
		t.Fatalf("one-sided plan flagged:\n%s", d.Table(true))
	}
}
