package runartifact

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"hyperhammer/internal/benchfmt"
	"hyperhammer/internal/forensics"
	"hyperhammer/internal/inspect"
	"hyperhammer/internal/ledger"
	"hyperhammer/internal/profile"
	"hyperhammer/internal/report"
)

// Tolerances bounds how far two artifacts may drift before hh-diff
// flags them. Simulated metrics default to zero tolerance — the clock
// is simulated and the run is seed-deterministic, so any drift means
// the code's behavior changed. Wall-clock benchmark figures are noisy
// and get a generous relative band.
type Tolerances struct {
	// SimFrac/SimAbs bound per-phase and total simulated-time drift:
	// a delta is within tolerance when |Δ| ≤ max(SimAbs, SimFrac·max(|a|,|b|)).
	SimFrac float64
	SimAbs  float64
	// CountFrac/CountAbs bound counter drift (DRAM activations,
	// hammer rounds, attempt counts, ...), same rule.
	CountFrac float64
	CountAbs  float64
	// BenchFrac bounds benchmark ns/op drift relative to the old
	// value; other bench metrics are informational only.
	BenchFrac float64
	// HostFrac/HostAbs bound the plan section's host-time figures
	// (wall seconds, per-unit run times, critical path). Host time is
	// real wall clock — noisy by nature and legitimately different
	// across -parallel settings — so the default is HostFrac = 1.0,
	// which under the max(|a|,|b|)-relative rule never flags
	// non-negative durations: plan durations are listed for the
	// record, and only gate when the caller tightens -host-tol. The
	// plan's *shape* (unit count, per-unit presence) always compares
	// at the exact count tolerance.
	HostFrac float64
	HostAbs  float64
}

// DefaultTolerances: exact on everything simulated, ±30% on ns/op,
// host durations listed but not gated.
func DefaultTolerances() Tolerances {
	return Tolerances{BenchFrac: 0.30, HostFrac: 1.0}
}

// Delta is one compared figure.
type Delta struct {
	// Kind groups the row: "run" (headline), "phase" (profile path),
	// "counter", "outcome", "heatmap", "census", "alerts", "plan", or
	// "bench".
	Kind string `json:"kind"`
	// Key identifies the figure within its kind (span path, metric
	// name+labels, benchmark name).
	Key string `json:"key"`
	// A and B are the old and new values; Delta = B − A.
	A     float64 `json:"a"`
	B     float64 `json:"b"`
	Delta float64 `json:"delta"`
	// Flagged reports the delta exceeded its tolerance.
	Flagged bool `json:"flagged,omitempty"`
}

// Frac returns the relative change of the delta against the larger
// magnitude (0 when both sides are 0).
func (d Delta) Frac() float64 {
	base := abs(d.A)
	if b := abs(d.B); b > base {
		base = b
	}
	if base == 0 {
		return 0
	}
	return abs(d.Delta) / base
}

// Diff is the comparison of two artifacts (or bench documents).
type Diff struct {
	// Deltas lists every compared figure, flagged rows first within
	// each kind, kinds in run/phase/counter/outcome/bench order.
	Deltas []Delta `json:"deltas"`
	// Flagged counts deltas beyond tolerance; nonzero means the runs
	// diverged and the gate should fail.
	Flagged int `json:"flagged"`
}

// Regressed reports whether any figure drifted beyond tolerance.
func (d *Diff) Regressed() bool { return d.Flagged > 0 }

// withinTol applies the |Δ| ≤ max(abs, frac·max(|a|,|b|)) rule.
func withinTol(a, b, frac, absTol float64) bool {
	d := abs(b - a)
	base := abs(a)
	if x := abs(b); x > base {
		base = x
	}
	limit := frac * base
	if absTol > limit {
		limit = absTol
	}
	return d <= limit
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Compare diffs two artifacts figure by figure under the given
// tolerances. It compares headline sim time, per-path profile costs,
// every counter in the metrics snapshot, the outcome table, and — when
// both artifacts embed one — the benchmark documents.
func Compare(a, b *Artifact, tol Tolerances) *Diff {
	d := &Diff{}
	add := func(kind, key string, va, vb float64, frac, absTol float64) {
		row := Delta{Kind: kind, Key: key, A: va, B: vb, Delta: vb - va}
		if !withinTol(va, vb, frac, absTol) {
			row.Flagged = true
			d.Flagged++
		}
		d.Deltas = append(d.Deltas, row)
	}

	add("run", "sim_seconds", a.SimSeconds, b.SimSeconds, tol.SimFrac, tol.SimAbs)

	// Per-phase simulated time and activations from the folded profile.
	type phaseCost struct{ seconds, acts float64 }
	collect := func(art *Artifact) map[string]phaseCost {
		m := make(map[string]phaseCost, len(art.Profile))
		for _, e := range art.Profile {
			m[e.Path] = phaseCost{seconds: e.SimSeconds, acts: float64(e.Activations)}
		}
		return m
	}
	pa, pb := collect(a), collect(b)
	for _, path := range unionKeys(pa, pb) {
		add("phase", path, pa[path].seconds, pb[path].seconds, tol.SimFrac, tol.SimAbs)
		if pa[path].acts != 0 || pb[path].acts != 0 {
			add("phase", path+" activations", pa[path].acts, pb[path].acts, tol.CountFrac, tol.CountAbs)
		}
	}

	// Every counter in the final snapshot.
	ca, cb := counterMap(a), counterMap(b)
	for _, key := range unionKeys(ca, cb) {
		add("counter", key, ca[key], cb[key], tol.CountFrac, tol.CountAbs)
	}

	// Outcome headline numbers.
	for _, key := range unionKeys(a.Outcome, b.Outcome) {
		add("outcome", key, a.Outcome[key], b.Outcome[key], tol.CountFrac, tol.CountAbs)
	}

	// Introspection-plane sections (heatmap / census / alerts) compare
	// under the counter tolerance, which defaults to zero: any drift in
	// where activations landed or which watchpoints fired means the
	// simulation behaved differently.
	if a.Heatmap != nil || b.Heatmap != nil {
		ha, hb := heatmapMap(a.Heatmap), heatmapMap(b.Heatmap)
		for _, key := range unionKeys(ha, hb) {
			add("heatmap", key, ha[key], hb[key], tol.CountFrac, tol.CountAbs)
		}
	}
	if a.Census != nil || b.Census != nil {
		ca, cb := censusMap(a.Census), censusMap(b.Census)
		for _, key := range unionKeys(ca, cb) {
			add("census", key, ca[key], cb[key], tol.CountFrac, tol.CountAbs)
		}
	}
	if a.Alerts != nil || b.Alerts != nil {
		aa, ab := alertsMap(a.Alerts), alertsMap(b.Alerts)
		for _, key := range unionKeys(aa, ab) {
			add("alerts", key, aa[key], ab[key], tol.CountFrac, tol.CountAbs)
		}
	}

	// The forensics section likewise compares at the (zero-default)
	// counter tolerance: attempt outcomes, flip verdicts, and owner
	// attributions are all seed-deterministic.
	if a.Forensics != nil || b.Forensics != nil {
		fa, fb := forensicsMap(a.Forensics), forensicsMap(b.Forensics)
		for _, key := range unionKeys(fa, fb) {
			add("forensics", key, fa[key], fb[key], tol.CountFrac, tol.CountAbs)
		}
	}

	// The ledger section compares fingerprints at the (zero-default)
	// counter tolerance: any fractional or absolute slack would defeat
	// its purpose, since a fingerprint either matches or does not.
	if a.Ledger != nil || b.Ledger != nil {
		la, lb := ledgerMap(a.Ledger), ledgerMap(b.Ledger)
		for _, key := range unionKeys(la, lb) {
			add("ledger", key, la[key], lb[key], tol.CountFrac, tol.CountAbs)
		}
	}

	// The plan section (host-cost schedule) compares only when both
	// artifacts carry one (like bench): shape and counts exactly
	// (under the count tolerance), durations loosely (under the host
	// tolerance, which defaults to never-flag).
	if a.Plan != nil && b.Plan != nil {
		sa, sb := planShapeMap(a.Plan), planShapeMap(b.Plan)
		for _, key := range unionKeys(sa, sb) {
			add("plan", key, sa[key], sb[key], tol.CountFrac, tol.CountAbs)
		}
		ha, hb := planHostMap(a.Plan), planHostMap(b.Plan)
		for _, key := range unionKeys(ha, hb) {
			add("plan", key, ha[key], hb[key], tol.HostFrac, tol.HostAbs)
		}
	}

	if a.Bench != nil && b.Bench != nil {
		benchDeltas(d, a.Bench, b.Bench, tol)
	}
	return d
}

// planShapeMap flattens a plan report's deterministic shape: how many
// units were scheduled, and that each declared unit ran and was
// delivered. These must agree exactly across runs of the same matrix
// regardless of -parallel (the worker count itself is configuration,
// not shape, so it is compared as a host figure).
func planShapeMap(p *profile.PlanReport) map[string]float64 {
	m := map[string]float64{}
	if p == nil {
		return m
	}
	m["units"] = float64(len(p.Units))
	for _, u := range p.Units {
		b2f := func(b bool) float64 {
			if b {
				return 1
			}
			return 0
		}
		m["unit["+u.Name+"].started"] = b2f(u.Started)
		m["unit["+u.Name+"].delivered"] = b2f(u.Delivered)
	}
	return m
}

// planHostMap flattens a plan report's host-time figures: headline
// costs, the efficiency line, and per-unit run durations.
func planHostMap(p *profile.PlanReport) map[string]float64 {
	m := map[string]float64{}
	if p == nil {
		return m
	}
	m["host workers"] = float64(p.Workers)
	m["host wall_seconds"] = p.WallSeconds
	m["host cpu_seconds"] = p.CPUSeconds
	m["host busy_seconds"] = p.BusySeconds
	m["host sequential_seconds"] = p.SequentialSeconds
	m["host critical_path_seconds"] = p.CriticalPathSeconds
	m["host max_speedup"] = p.MaxSpeedup
	m["host actual_speedup"] = p.ActualSpeedup
	m["host efficiency"] = p.Efficiency
	for _, u := range p.Units {
		m["host unit["+u.Name+"].run_seconds"] = u.RunSeconds
	}
	return m
}

// heatmapMap flattens a heatmap snapshot to comparison keys: the
// headline totals, per-bank sums, and an FNV-1a fingerprint over the
// full per-bucket grid so any cell-level drift is caught without
// emitting thousands of rows.
func heatmapMap(h *inspect.HeatmapSnapshot) map[string]float64 {
	m := map[string]float64{}
	if h == nil {
		return m
	}
	m["banks"] = float64(h.Banks)
	m["buckets"] = float64(h.Buckets)
	m["total_activations"] = float64(h.TotalActivations)
	m["total_flips"] = float64(h.TotalFlips)
	m["max_row_window"] = float64(h.MaxRowWindowActivations)
	fp := uint64(14695981039346656037)
	mix := func(v int64) {
		for i := 0; i < 8; i++ {
			fp ^= uint64(v>>(8*i)) & 0xff
			fp *= 1099511628211
		}
	}
	for bank := 0; bank < len(h.Activations); bank++ {
		var act, flips int64
		for _, c := range h.Activations[bank] {
			act += c
			mix(c)
		}
		if bank < len(h.Flips) {
			for _, c := range h.Flips[bank] {
				flips += c
				mix(c)
			}
		}
		m[fmt.Sprintf("bank[%d].activations", bank)] = float64(act)
		m[fmt.Sprintf("bank[%d].flips", bank)] = float64(flips)
	}
	// Fold to float-exact 52 bits so the value survives the float64
	// comparison machinery unchanged.
	m["grid_fingerprint"] = float64(fp % (1 << 52))
	return m
}

// forensicsMap flattens a forensics snapshot to comparison keys: the
// headline totals, the verdict/owner/outcome tables, and an FNV-1a
// fingerprint over the serialized campaign records so any drift in
// per-attempt lineage (causes, flip details, sim times) is caught
// without emitting a row per flip.
func forensicsMap(s *forensics.Snapshot) map[string]float64 {
	m := map[string]float64{}
	if s == nil {
		return m
	}
	m["version"] = float64(s.Version)
	m["campaigns"] = float64(len(s.Campaigns))
	attempts := 0
	for i := range s.Campaigns {
		attempts += len(s.Campaigns[i].Attempts)
	}
	m["attempts"] = float64(attempts)
	m["flips_recorded"] = float64(s.FlipsRecorded)
	m["flips_truncated"] = float64(s.FlipsTruncated)
	for _, r := range s.Verdicts {
		m["verdict["+r.Key+"]"] = float64(r.N)
	}
	for _, r := range s.Owners {
		m["owner["+r.Key+"]"] = float64(r.N)
	}
	for _, r := range s.Outcomes {
		m["outcome["+r.Key+"]"] = float64(r.N)
	}
	raw, err := json.Marshal(s.Campaigns)
	if err == nil {
		fp := uint64(14695981039346656037)
		for _, c := range raw {
			fp ^= uint64(c)
			fp *= 1099511628211
		}
		// Fold to float-exact 52 bits, like the heatmap grid fingerprint.
		m["campaign_fingerprint"] = float64(fp % (1 << 52))
	}
	return m
}

// ledgerMap flattens a determinism-ledger snapshot to comparison keys:
// per unit and stream, the final fingerprint (folded to float-exact 52
// bits, like the grid fingerprint) and event count, plus the epoch
// counts. Per-epoch fingerprints are implied by the finals — a run
// whose final fingerprints match at every stream had identical epoch
// trails — so flattening them would only multiply rows; hh-bisect is
// the tool that walks epochs.
func ledgerMap(s *ledger.Snapshot) map[string]float64 {
	m := map[string]float64{}
	if s == nil {
		return m
	}
	m["version"] = float64(s.Version)
	m["epoch_seconds"] = s.EpochSimSeconds
	m["units"] = float64(len(s.Units))
	for _, u := range s.Units {
		prefix := ""
		if u.Unit != "" {
			prefix = u.Unit + "."
		}
		m[prefix+"epochs"] = float64(len(u.Epochs))
		m[prefix+"epochs_truncated"] = float64(u.EpochsTruncated)
		for _, sf := range u.Streams {
			fp, err := strconv.ParseUint(sf.FP, 16, 64)
			if err == nil {
				m[prefix+sf.Stream+".fp"] = float64(fp % (1 << 52))
			}
			m[prefix+sf.Stream+".count"] = float64(sf.Count)
		}
	}
	return m
}

// censusMap flattens census snapshots to comparison keys.
func censusMap(s *inspect.CensusSnapshot) map[string]float64 {
	m := map[string]float64{}
	inspect.FlattenCensuses(s, func(key string, v float64) { m[key] = v })
	return m
}

// alertsMap flattens the alert table: overall total and per-rule fired
// counts.
func alertsMap(s *inspect.AlertsSnapshot) map[string]float64 {
	m := map[string]float64{}
	if s == nil {
		return m
	}
	m["total"] = float64(s.Total)
	for _, rc := range s.ByRule {
		m["rule["+rc.Rule+"]"] = float64(rc.Count)
	}
	return m
}

// CompareBench diffs two plain benchmark documents (BENCH_*.json).
func CompareBench(a, b *benchfmt.Output, tol Tolerances) *Diff {
	d := &Diff{}
	benchDeltas(d, a, b, tol)
	return d
}

func benchDeltas(d *Diff, a, b *benchfmt.Output, tol Tolerances) {
	ba, bb := a.ByName(), b.ByName()
	names := make([]string, 0, len(ba))
	for n := range ba {
		names = append(names, n)
	}
	for n := range bb {
		if _, ok := ba[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		oa, oka := ba[n]
		ob, okb := bb[n]
		if !oka || !okb {
			// A benchmark appearing or disappearing is always flagged.
			d.Deltas = append(d.Deltas, Delta{
				Kind: "bench", Key: n + " ns/op",
				A: oa.Metrics["ns/op"], B: ob.Metrics["ns/op"],
				Delta:   ob.Metrics["ns/op"] - oa.Metrics["ns/op"],
				Flagged: true,
			})
			d.Flagged++
			continue
		}
		va, vb := oa.Metrics["ns/op"], ob.Metrics["ns/op"]
		row := Delta{Kind: "bench", Key: n + " ns/op", A: va, B: vb, Delta: vb - va}
		if !withinTol(va, vb, tol.BenchFrac, 0) {
			row.Flagged = true
			d.Flagged++
		}
		d.Deltas = append(d.Deltas, row)
	}
}

// counterMap flattens an artifact's counter samples to "name{k=v,...}"
// keys.
func counterMap(a *Artifact) map[string]float64 {
	m := make(map[string]float64, len(a.Metrics.Counters))
	for _, s := range a.Metrics.Counters {
		m[sampleKey(s.Name, s.Labels)] = s.Value
	}
	return m
}

func sampleKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	var parts []string
	for i := 0; i+1 < len(labels); i += 2 {
		parts = append(parts, labels[i]+"="+labels[i+1])
	}
	return name + "{" + strings.Join(parts, ",") + "}"
}

func unionKeys[V any](a, b map[string]V) []string {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Table renders the verdict table. When onlyFlagged is set, in-
// tolerance rows are omitted (the usual CI view); otherwise every
// compared figure is listed.
func (d *Diff) Table(onlyFlagged bool) *report.Table {
	t := report.NewTable("run comparison", "kind", "key", "old", "new", "delta", "rel", "verdict")
	for _, row := range d.Deltas {
		if onlyFlagged && !row.Flagged {
			continue
		}
		verdict := "ok"
		if row.Flagged {
			verdict = "FAIL"
		}
		t.AddRow(row.Kind, row.Key,
			formatVal(row.A), formatVal(row.B), formatVal(row.Delta),
			fmt.Sprintf("%+.1f%%", 100*signedFrac(row)), verdict)
	}
	return t
}

// Summary is the one-line verdict.
func (d *Diff) Summary() string {
	if d.Flagged == 0 {
		return fmt.Sprintf("hh-diff: %d figures compared, all within tolerance", len(d.Deltas))
	}
	return fmt.Sprintf("hh-diff: %d of %d figures beyond tolerance", d.Flagged, len(d.Deltas))
}

func signedFrac(d Delta) float64 {
	f := d.Frac()
	if d.Delta < 0 {
		return -f
	}
	return f
}

// formatVal prints values compactly but deterministically: integers
// without a fraction, everything else with enough digits to show the
// drift.
func formatVal(v float64) string {
	if v == float64(int64(v)) && abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}
