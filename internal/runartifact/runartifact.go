// Package runartifact defines the self-describing run bundle the CLIs
// write with -artifact: everything needed to compare two runs after
// the fact — the configuration and seed of record, the final metrics
// snapshot, the folded cost profile (see internal/profile), a small
// time-series extract, the campaign outcome, and optionally an
// embedded benchmark document.
//
// Because the simulation is deterministic for a fixed seed and its
// clock is simulated (machine-speed independent), two artifacts from
// the same seed must agree exactly on every sim-time and counter
// figure; cmd/hh-diff exploits this to gate regressions with zero
// tolerance on simulated metrics while allowing generous slack on
// wall-clock benchmark numbers.
package runartifact

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"hyperhammer/internal/benchfmt"
	"hyperhammer/internal/forensics"
	"hyperhammer/internal/inspect"
	"hyperhammer/internal/ledger"
	"hyperhammer/internal/metrics"
	"hyperhammer/internal/profile"
)

// Version is the artifact schema version this package writes.
const Version = 1

// SeriesPoint is one (sim-time, value) sample of an extracted series.
type SeriesPoint struct {
	T float64 `json:"t"` // simulated seconds
	V float64 `json:"v"`
}

// Series is a compact extract of one observability time series, kept
// in the artifact so a run's shape (not just its endpoint) survives.
type Series struct {
	Name   string        `json:"name"`
	Labels []string      `json:"labels,omitempty"` // alternating key/value
	Kind   string        `json:"kind,omitempty"`
	Points []SeriesPoint `json:"points"`
}

// Artifact is the whole bundle. CreatedAt is the only wall-clock field
// and is excluded from comparison; everything else is reproducible
// from Seed + Config.
type Artifact struct {
	Version int `json:"version"`
	// Tool names the producing command (hyperhammer, hh-tables).
	Tool string `json:"tool"`
	// ToolVersion is the release of the producing tool, stamped at
	// write time. It identifies *code*, not configuration: two runs
	// with equal ConfigHash but different ToolVersion that disagree on
	// figures point at a code change, not a config change.
	ToolVersion string `json:"toolVersion,omitempty"`
	// ConfigHash is the canonical hash of the deterministic config
	// section (tool, seed, scale, and Config minus the host-only keys
	// in HostOnlyConfigKeys), stamped at write time. Same hash ⇒ the
	// runs claim identical simulated inputs, so every simulated figure
	// must match exactly; internal/runstore indexes its artifact store
	// by this hash and hh-diff prints a notice when hashes differ.
	ConfigHash string `json:"configHash,omitempty"`
	CreatedAt  string `json:"createdAt,omitempty"`
	// Seed and Scale identify the run: same seed + scale + code ⇒
	// byte-identical simulated results.
	Seed  uint64 `json:"seed"`
	Scale string `json:"scale,omitempty"` // "short" or "full"
	// Config records the effective knob settings (flag name → value).
	Config map[string]string `json:"config,omitempty"`
	// SimSeconds is the final simulated-clock reading.
	SimSeconds float64 `json:"simSeconds"`
	// Outcome holds the campaign's headline numbers (attempts,
	// successes, bits found, per-phase seconds, ...).
	Outcome map[string]float64 `json:"outcome,omitempty"`
	// Metrics is the final registry snapshot.
	Metrics metrics.Snapshot `json:"metrics"`
	// Profile is the folded cost profile's entry table.
	Profile []profile.Entry `json:"profile,omitempty"`
	// Series is the time-series extract (informational; hh-diff
	// compares endpoints, not curves).
	Series []Series `json:"series,omitempty"`
	// Bench optionally embeds a benchmark document so one artifact can
	// carry both simulated and wall-clock figures.
	Bench *benchfmt.Output `json:"bench,omitempty"`
	// Heatmap, Census and Alerts embed the hardware introspection
	// plane's snapshots when the run carried an inspector; hh-diff
	// compares all three with zero default tolerance and hh-top/
	// hh-inspect render them offline.
	Heatmap *inspect.HeatmapSnapshot `json:"heatmap,omitempty"`
	Census  *inspect.CensusSnapshot  `json:"census,omitempty"`
	Alerts  *inspect.AlertsSnapshot  `json:"alerts,omitempty"`
	// Forensics embeds the flip-provenance plane's snapshot when the
	// run carried a recorder: per-attempt flip lineage, verdict and
	// owner taxonomies, and campaign outcome tables. cmd/hh-why reads
	// this section offline; hh-diff compares it at zero tolerance.
	Forensics *forensics.Snapshot `json:"forensics,omitempty"`
	// Ledger embeds the determinism-ledger plane's snapshot when the
	// run carried a recorder: rolling per-stream fingerprints sealed
	// into sim-time epochs, per unit. cmd/hh-bisect localizes
	// divergence between two artifacts from this section; hh-diff
	// compares it at zero tolerance.
	Ledger *ledger.Snapshot `json:"ledger,omitempty"`
	// Plan embeds the host-cost schedule analysis (per-unit host
	// timings, critical path, parallel efficiency). Unlike every other
	// section it measures the *host*, so it is the one part of the
	// artifact that legitimately differs across runs and -parallel
	// settings; hh-diff checks its shape exactly but its durations only
	// loosely (Tolerances.HostFrac). hh-plan and hh-inspect plan render
	// it offline.
	Plan *profile.PlanReport `json:"plan,omitempty"`
}

// SetInspector embeds the inspector's three snapshots; a nil inspector
// leaves the artifact without introspection sections (old readers and
// hh-diff treat missing sections as absent, not as zeros drifting).
func (a *Artifact) SetInspector(ins *inspect.Inspector) {
	if ins == nil {
		return
	}
	h := ins.HeatmapSnapshot()
	c := ins.CensusSnapshot()
	al := ins.AlertsSnapshot()
	a.Heatmap, a.Census, a.Alerts = &h, &c, &al
}

// SetForensics embeds the recorder's snapshot; a nil recorder leaves
// the artifact without a forensics section.
func (a *Artifact) SetForensics(r *forensics.Recorder) {
	if r == nil {
		return
	}
	s := r.Snapshot()
	a.Forensics = &s
}

// SetLedger embeds the recorder's snapshot; a nil recorder leaves the
// artifact without a ledger section.
func (a *Artifact) SetLedger(r *ledger.Recorder) {
	if r == nil {
		return
	}
	s := r.Snapshot()
	a.Ledger = &s
}

// SetPlan embeds the host-cost plan report; a nil report leaves the
// artifact without a plan section.
func (a *Artifact) SetPlan(p *profile.PlanReport) {
	if p != nil {
		a.Plan = p
	}
}

// New returns an artifact shell with the identifying fields set.
func New(tool string, seed uint64, scale string) *Artifact {
	return &Artifact{
		Version: Version,
		Tool:    tool,
		Seed:    seed,
		Scale:   scale,
		Config:  map[string]string{},
		Outcome: map[string]float64{},
	}
}

// SetProfile stores a profile snapshot's entries.
func (a *Artifact) SetProfile(p *profile.Profile) {
	if p != nil {
		a.Profile = p.Entries
	}
}

// Folded renders the stored profile entries as flamegraph folded
// stacks, identical to profile.Profile.Folded on the source profile.
func (a *Artifact) Folded() string {
	p := profile.Profile{Entries: a.Profile}
	return p.Folded()
}

// Write serializes the artifact as indented JSON, stamping the
// derived header fields (ConfigHash, ToolVersion) first so every
// written artifact carries them regardless of which exit path built
// it.
func (a *Artifact) Write(w io.Writer) error {
	a.Stamp()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a); err != nil {
		return fmt.Errorf("runartifact: encode: %w", err)
	}
	return nil
}

// WriteFile writes the artifact to path, creating or truncating it.
func (a *Artifact) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("runartifact: %w", err)
	}
	if err := a.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses an artifact. It rejects documents that are not
// artifacts (no version stamp) so hh-diff can fall back to treating
// the file as a plain benchmark document.
func Read(r io.Reader) (*Artifact, error) {
	var a Artifact
	dec := json.NewDecoder(r)
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("runartifact: decode: %w", err)
	}
	if a.Version == 0 {
		return nil, fmt.Errorf("runartifact: not a run artifact (no version field)")
	}
	if a.Version > Version {
		return nil, fmt.Errorf("runartifact: version %d is newer than supported %d", a.Version, Version)
	}
	return &a, nil
}

// ReadFile reads an artifact from path.
func ReadFile(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("runartifact: %w", err)
	}
	defer f.Close()
	a, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}
