package runartifact

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"hyperhammer/internal/inspect"
	"hyperhammer/internal/metrics"
)

// inspectedArtifact builds an artifact carrying the three
// introspection sections, fed through a real inspector the way the
// CLIs do. Varying act perturbs one heatmap cell.
func inspectedArtifact(t *testing.T, act int64) *Artifact {
	t.Helper()
	reg := metrics.New()
	reg.Counter("dram_flips_total", "", "direction", "1to0").Add(2)
	ins := inspect.New(inspect.Config{})
	ins.BindMachine(2, 2048)
	ins.SetMetrics(reg)
	ins.SetCensusFunc(func() inspect.Census {
		return inspect.Census{
			SimSeconds: 5,
			VMs:        1,
			EPT:        inspect.EPTCensus{Leaves4K: 100, Leaves2M: 3, Splits: 2},
			Buddy:      inspect.BuddyCensus{FreePages: 5000, NoiseUnmovable: 40},
			Phys:       inspect.PhysCensus{FlipsApplied: 2},
		}
	})
	ins.RecordRowActivations(0, 100, act)
	ins.RecordRowActivations(1, 2000, 130_000) // trips dram-row-pressure
	ins.RecordFlip(1, 2000)
	ins.RecordFlip(1, 2000)
	ins.Evaluate(5 * time.Second) // fires pressure + flips-applied

	a := New("hyperhammer", 4, "short")
	a.SimSeconds = 5
	a.Metrics = reg.Snapshot()
	a.SetInspector(ins)
	return a
}

// TestInspectSectionsRoundTrip checks heatmap, census, and alerts
// survive a write/read cycle byte-exactly.
func TestInspectSectionsRoundTrip(t *testing.T) {
	a := inspectedArtifact(t, 500)
	a.CreatedAt = "2026-08-06T00:00:00Z"
	path := filepath.Join(t.TempDir(), "run.json")
	if err := a.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Heatmap, got.Heatmap) ||
		!reflect.DeepEqual(a.Census, got.Census) ||
		!reflect.DeepEqual(a.Alerts, got.Alerts) {
		t.Error("introspection sections diverged through the round trip")
	}
	if got.Heatmap == nil || got.Heatmap.TotalActivations != 130_500 {
		t.Errorf("heatmap = %+v", got.Heatmap)
	}
}

// TestInspectSelfCompareIsZero is the acceptance check for the new
// sections: two same-seed runs diff to exactly zero drift on heatmap,
// census, and alerts at zero tolerance.
func TestInspectSelfCompareIsZero(t *testing.T) {
	a := inspectedArtifact(t, 500)
	b := inspectedArtifact(t, 500)
	d := Compare(a, b, Tolerances{})
	if d.Regressed() || d.Flagged != 0 {
		t.Fatalf("same-seed introspection diverged:\n%s", d.Table(true))
	}
	kinds := map[string]bool{}
	for _, row := range d.Deltas {
		kinds[row.Kind] = true
		if row.Delta != 0 {
			t.Errorf("nonzero delta: %+v", row)
		}
	}
	for _, k := range []string{"heatmap", "census", "alerts"} {
		if !kinds[k] {
			t.Errorf("no %s figures compared", k)
		}
	}
}

// TestInspectBucketDriftFlagged checks a single perturbed heatmap cell
// is caught: the totals move and the grid fingerprint flips even when
// per-bank sums would round away.
func TestInspectBucketDriftFlagged(t *testing.T) {
	a := inspectedArtifact(t, 500)
	b := inspectedArtifact(t, 501)
	d := Compare(a, b, Tolerances{})
	if !d.Regressed() {
		t.Fatal("perturbed heatmap not flagged")
	}
	var fingerprintFlagged bool
	for _, row := range d.Deltas {
		if row.Kind == "heatmap" && strings.Contains(row.Key, "grid_fingerprint") && row.Flagged {
			fingerprintFlagged = true
		}
	}
	if !fingerprintFlagged {
		t.Errorf("grid_fingerprint did not flip:\n%s", d.Table(true))
	}
}

// TestInspectSectionsAbsentStaysCompatible checks artifacts without
// the sections (older producers) still compare cleanly against each
// other and asymmetrically against newer artifacts.
func TestInspectSectionsAbsentStaysCompatible(t *testing.T) {
	old1 := sampleArtifact(t, 60)
	old2 := sampleArtifact(t, 60)
	d := Compare(old1, old2, Tolerances{})
	for _, row := range d.Deltas {
		if row.Kind == "heatmap" || row.Kind == "census" || row.Kind == "alerts" {
			t.Errorf("sectionless artifacts grew a %s figure: %+v", row.Kind, row)
		}
	}
	// One side carrying sections: the comparison runs and flags the gap
	// instead of crashing or silently skipping.
	vNew := inspectedArtifact(t, 500)
	asym := Compare(old1, vNew, Tolerances{})
	var sawNewKind bool
	for _, row := range asym.Deltas {
		if row.Kind == "heatmap" || row.Kind == "census" || row.Kind == "alerts" {
			sawNewKind = true
		}
	}
	if !sawNewKind {
		t.Error("asymmetric sections not surfaced in the diff")
	}
}
