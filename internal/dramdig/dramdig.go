// Package dramdig reimplements the part of the DRAMDig methodology the
// paper uses (Section 5.1): reverse engineering the XOR-based DRAM
// bank address function from row-buffer-conflict timing, and verifying
// that every recovered function bit lies below bit 21 — the property
// that lets a THP-backed guest predict bank collisions from the low
// address bits alone.
//
// The recovery runs on physical addresses (the tool runs on bare metal
// with root, as DRAMDig does); the attack then carries only the
// recovered masks into the guest.
package dramdig

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
	"sort"
	"time"

	"hyperhammer/internal/dram"
	"hyperhammer/internal/memdef"
	"hyperhammer/internal/trace"
)

// Prober measures access-pair latency, the only primitive DRAMDig
// needs. dram.Timing implements it.
type Prober interface {
	ProbePair(a, b memdef.HPA) time.Duration
}

// Config tunes the recovery.
type Config struct {
	// Seed drives address sampling.
	Seed uint64
	// Probes is the number of timing measurements averaged per
	// address pair to beat jitter.
	Probes int
	// ReferencePairs is how many same-bank reference addresses are
	// collected; every candidate mask is tested against all of them.
	ReferencePairs int
	// MinBit/MaxBit bound the address bits considered for the bank
	// function. The evaluated machines' functions use bits 6..21.
	MinBit, MaxBit uint
	// RowToggleBit is an address bit guaranteed to select a different
	// DRAM row without touching the bank function (bit 24 here: row
	// bits span 18-33 and no modelled bank mask reaches past 21).
	RowToggleBit uint
	// MemSize is the probed physical range.
	MemSize uint64
	// Trace, when non-nil, receives a "dramdig.recover" span covering
	// the run plus events for threshold calibration, reference-pair
	// discovery, and the recovered masks.
	Trace *trace.Recorder
}

// DefaultConfig returns settings adequate for the modelled machines.
func DefaultConfig(memSize uint64) Config {
	return Config{
		Seed:           1,
		Probes:         8,
		ReferencePairs: 8,
		MinBit:         6,
		MaxBit:         22,
		RowToggleBit:   24,
		MemSize:        memSize,
	}
}

// Result is the recovered bank addressing information.
type Result struct {
	// Masks form a canonical basis of the recovered bank function.
	// Any basis of the same GF(2) span defines identical bank
	// collision classes, which is all the attack needs.
	Masks []uint64
	// Banks is 2^len(Masks).
	Banks int
	// ProbeCount is how many timing probes were spent.
	ProbeCount int
}

// AllBitsBelow reports whether every recovered mask uses only address
// bits below the given position — the THP-compatibility check of
// Section 5.1.
func (r Result) AllBitsBelow(bit uint) bool {
	for _, m := range r.Masks {
		if m>>bit != 0 {
			return false
		}
	}
	return true
}

// SameBank reports whether two addresses collide under the recovered
// function.
func (r Result) SameBank(a, b memdef.HPA) bool {
	for _, m := range r.Masks {
		if bits.OnesCount64(uint64(a)&m)&1 != bits.OnesCount64(uint64(b)&m)&1 {
			return false
		}
	}
	return true
}

// Recover reverse engineers the bank function:
//
//  1. Calibrate a conflict/hit latency threshold from random pairs.
//  2. Collect reference addresses a for which (a, a XOR 2^RowToggleBit)
//     conflicts — same bank, different row.
//  3. For every XOR mask m over the candidate bits, decide whether m
//     preserves the bank: (a, a XOR m XOR 2^RowToggleBit) must still
//     conflict for every reference. The preserving masks form the
//     bank function's GF(2) null space.
//  4. Return a basis of the orthogonal complement — the bank function.
func Recover(p Prober, cfg Config) (Result, error) {
	if cfg.Probes <= 0 || cfg.ReferencePairs <= 0 || cfg.MemSize == 0 ||
		cfg.MinBit >= cfg.MaxBit || cfg.MaxBit-cfg.MinBit > 20 {
		return Result{}, fmt.Errorf("dramdig: bad config %+v", cfg)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xBF58476D1CE4E5B9))
	res := Result{}
	span := cfg.Trace.StartSpan("dramdig.recover", "memSize", cfg.MemSize, "seed", cfg.Seed)

	measure := func(a, b memdef.HPA) time.Duration {
		var sum time.Duration
		for i := 0; i < cfg.Probes; i++ {
			sum += p.ProbePair(a, b)
		}
		res.ProbeCount += cfg.Probes
		return sum / time.Duration(cfg.Probes)
	}

	// Step 1: threshold calibration on random pairs. Same-bank
	// different-row pairs form a slow conflict mode well above the
	// hit mode; place the threshold in the widest gap of the sorted
	// sample means and require that gap to dominate the jitter —
	// otherwise the sample simply contained no conflicts and we need
	// more data, not a threshold in the middle of the noise.
	rowToggle := memdef.HPA(1) << cfg.RowToggleBit
	var samples []time.Duration
	for i := 0; i < 512; i++ {
		a := memdef.HPA(rng.Uint64N(cfg.MemSize/2)) &^ (dram.LineSize - 1)
		b := a ^ rowToggle ^ memdef.HPA(rng.Uint64N(uint64(1)<<cfg.MaxBit))&^(dram.LineSize-1)
		samples = append(samples, measure(a, b))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	gapAt, gap := 0, time.Duration(0)
	for i := 1; i < len(samples); i++ {
		if d := samples[i] - samples[i-1]; d > gap {
			gap, gapAt = d, i
		}
	}
	if gap < 40*time.Nanosecond {
		err := fmt.Errorf("dramdig: no bimodal timing separation (largest gap %v)", gap)
		span.End("err", err)
		return Result{}, err
	}
	threshold := samples[gapAt-1] + gap/2
	cfg.Trace.Emit("dramdig.threshold", "threshold", threshold, "gap", gap)
	conflicts := func(a, b memdef.HPA) bool { return measure(a, b) > threshold }

	// Step 2: same-bank references.
	var refs []memdef.HPA
	for i := 0; i < 64*cfg.ReferencePairs && len(refs) < cfg.ReferencePairs; i++ {
		a := memdef.HPA(rng.Uint64N(cfg.MemSize/2)) &^ (dram.LineSize - 1)
		if conflicts(a, a^rowToggle) {
			refs = append(refs, a)
		}
	}
	if len(refs) == 0 {
		err := fmt.Errorf("dramdig: found no same-bank reference pairs")
		span.End("err", err)
		return Result{}, err
	}
	cfg.Trace.Emit("dramdig.references", "count", len(refs))

	// Step 3: exhaustively classify every candidate mask.
	nBits := int(cfg.MaxBit - cfg.MinBit)
	var nullVecs []uint64
	for iter := uint64(1); iter < uint64(1)<<nBits; iter++ {
		m := iter << cfg.MinBit
		ok := true
		for _, a := range refs {
			b := a ^ memdef.HPA(m) ^ rowToggle
			if uint64(b) >= cfg.MemSize {
				b = a ^ memdef.HPA(m) // row toggle down instead
			}
			if !conflicts(a, b) {
				ok = false
				break
			}
		}
		if ok {
			nullVecs = append(nullVecs, m)
		}
	}

	// Step 4: orthogonal complement of the null space over the
	// candidate bits.
	masks := orthogonalComplement(nullVecs, cfg.MinBit, cfg.MaxBit)
	sort.Slice(masks, func(i, j int) bool { return masks[i] > masks[j] })
	res.Masks = masks
	res.Banks = 1 << len(masks)
	for _, m := range masks {
		cfg.Trace.Emit("dramdig.mask", "mask", fmt.Sprintf("%#x", m))
	}
	span.End("masks", len(masks), "banks", res.Banks, "probes", res.ProbeCount)
	return res, nil
}

// gauss row-reduces a set of GF(2) vectors to a basis.
func gauss(vs []uint64) []uint64 {
	var basis []uint64
	for _, v := range vs {
		for _, b := range basis {
			top := uint64(1) << (63 - bits.LeadingZeros64(b))
			if v&top != 0 {
				v ^= b
			}
		}
		if v != 0 {
			basis = append(basis, v)
			sort.Slice(basis, func(i, j int) bool { return basis[i] > basis[j] })
		}
	}
	return basis
}

// orthogonalComplement returns a basis of the vectors over bits
// [minBit, maxBit) orthogonal to every vector in nullSpace.
func orthogonalComplement(nullSpace []uint64, minBit, maxBit uint) []uint64 {
	nullBasis := gauss(nullSpace)
	n := int(maxBit - minBit)
	var ortho []uint64
	for iter := uint64(1); iter < uint64(1)<<n; iter++ {
		m := iter << minBit
		ok := true
		for _, nv := range nullBasis {
			if bits.OnesCount64(m&nv)&1 != 0 {
				ok = false
				break
			}
		}
		if ok {
			ortho = append(ortho, m)
		}
	}
	return gauss(ortho)
}
