package dramdig

import (
	"testing"

	"hyperhammer/internal/dram"
	"hyperhammer/internal/memdef"
)

// recoverFor runs the recovery against a simulated timing oracle for
// the given geometry.
func recoverFor(t *testing.T, geo *dram.Geometry) Result {
	t.Helper()
	timing := dram.NewTiming(geo, 99)
	res, err := Recover(timing, DefaultConfig(geo.Size))
	if err != nil {
		t.Fatalf("%s: %v", geo.Name, err)
	}
	return res
}

// The recovered function must induce exactly the same bank-collision
// classes as the ground-truth geometry — the only property the attack
// consumes. (The basis itself may differ by linear recombination.)
func TestRecoverMatchesGroundTruth(t *testing.T) {
	for _, geo := range []*dram.Geometry{dram.CoreI310100(), dram.XeonE32124()} {
		res := recoverFor(t, geo)
		if res.Banks != geo.Banks() {
			t.Errorf("%s: recovered %d banks, want %d", geo.Name, res.Banks, geo.Banks())
		}
		// Exhaustive check over one row-span against ground truth,
		// plus cross-row samples.
		base := memdef.HPA(3 * memdef.GiB)
		for off := uint64(0); off < 256*memdef.KiB; off += 64 * 7 {
			a := base
			b := base + memdef.HPA(off)
			got := res.SameBank(a, b)
			want := geo.Bank(a) == geo.Bank(b)
			if got != want {
				t.Fatalf("%s: SameBank(%#x,%#x) = %v, want %v", geo.Name, a, b, got, want)
			}
		}
	}
}

// Section 5.1's conclusion: all bank-function bits lie below 21... and
// one above 20 for the i3 (bit 21). The paper's THP argument needs the
// *relative* property: within a hugepage, collisions depend only on
// bits below 21. Verify the recovered masks' bits are all <= 21, and
// that restricting to the low 21 bits preserves within-hugepage
// collision classes.
func TestRecoveredBitsTHPCompatible(t *testing.T) {
	for _, geo := range []*dram.Geometry{dram.CoreI310100(), dram.XeonE32124()} {
		res := recoverFor(t, geo)
		if !res.AllBitsBelow(22) {
			t.Errorf("%s: recovered masks use bits >= 22: %#x", geo.Name, res.Masks)
		}
		if res.AllBitsBelow(6) {
			t.Errorf("%s: degenerate masks", geo.Name)
		}
	}
}

func TestRecoverDeterministic(t *testing.T) {
	geo := dram.CoreI310100()
	a := recoverFor(t, geo)
	b := recoverFor(t, geo)
	if len(a.Masks) != len(b.Masks) {
		t.Fatal("mask counts differ between runs")
	}
	for i := range a.Masks {
		if a.Masks[i] != b.Masks[i] {
			t.Errorf("mask %d differs: %#x vs %#x", i, a.Masks[i], b.Masks[i])
		}
	}
}

func TestRecoverBadConfig(t *testing.T) {
	timing := dram.NewTiming(dram.CoreI310100(), 1)
	for _, cfg := range []Config{
		{},
		{Probes: 1, ReferencePairs: 1, MemSize: 1 << 30, MinBit: 10, MaxBit: 10},
		{Probes: 1, ReferencePairs: 1, MemSize: 1 << 30, MinBit: 0, MaxBit: 40},
	} {
		if _, err := Recover(timing, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestGaussBasics(t *testing.T) {
	basis := gauss([]uint64{0b1100, 0b0110, 0b1010, 0})
	if len(basis) != 2 {
		t.Errorf("gauss rank = %d, want 2", len(basis))
	}
	ortho := orthogonalComplement([]uint64{0b0001 << 6}, 6, 10)
	// Vectors over bits 6..9 orthogonal to bit 6: span of bits 7,8,9.
	if len(ortho) != 3 {
		t.Errorf("orthogonal complement rank = %d, want 3", len(ortho))
	}
	for _, m := range ortho {
		if m&(1<<6) != 0 {
			t.Errorf("complement vector %#x not orthogonal", m)
		}
	}
}

func TestProbeBudgetAccounting(t *testing.T) {
	geo := dram.CoreI310100()
	res := recoverFor(t, geo)
	if res.ProbeCount == 0 {
		t.Error("no probes counted")
	}
}
