package ept

import (
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"hyperhammer/internal/memdef"
	"hyperhammer/internal/phys"
)

// Property: for any set of non-overlapping 4 KiB and 2 MiB mappings,
// Translate returns exactly what was mapped (with correct page offset)
// and ErrNotMapped everywhere else.
func TestPropertyMapTranslate(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		mem := phys.New(512 * memdef.MiB)
		alloc := &bumpAlloc{next: 1}
		tbl, err := New(mem, alloc)
		if err != nil {
			return false
		}
		type mapping struct {
			va    uint64
			frame memdef.PFN
			huge  bool
		}
		var maps []mapping
		usedChunks := make(map[uint64]bool)
		n := int(nRaw)%40 + 5
		for i := 0; i < n; i++ {
			chunk := rng.Uint64N(1 << 12) // chunk index within a 8 GiB space
			if usedChunks[chunk] {
				continue
			}
			usedChunks[chunk] = true
			if rng.IntN(2) == 0 {
				va := chunk << memdef.HugePageShift
				frame := memdef.PFN(rng.Uint64N(100)+1) << 9 // huge-aligned
				if tbl.Map2M(va, frame, PermRW) != nil {
					return false
				}
				maps = append(maps, mapping{va, frame, true})
			} else {
				va := chunk<<memdef.HugePageShift | rng.Uint64N(512)<<memdef.PageShift
				frame := memdef.PFN(rng.Uint64N(100_000) + 1)
				if tbl.Map4K(va, frame, PermRW) != nil {
					return false
				}
				maps = append(maps, mapping{va, frame, false})
			}
		}
		for _, m := range maps {
			off := rng.Uint64N(memdef.PageSize) &^ 7
			tr, err := tbl.Translate(m.va + off)
			if err != nil {
				return false
			}
			want := m.frame.HPAOf() + memdef.HPA(off)
			if tr.HPA != want {
				return false
			}
		}
		// Unmapped chunks fault.
		for i := 0; i < 10; i++ {
			chunk := rng.Uint64N(1 << 12)
			if usedChunks[chunk] {
				continue
			}
			if _, err := tbl.Translate(chunk << memdef.HugePageShift); !errors.Is(err, ErrNotMapped) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: SplitHuge preserves the translation of every 4 KiB page of
// the hugepage while adding exactly one table page.
func TestPropertySplitPreservesTranslation(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		mem := phys.New(256 * memdef.MiB)
		alloc := &bumpAlloc{next: 1}
		tbl, err := New(mem, alloc)
		if err != nil {
			return false
		}
		va := rng.Uint64N(256) << memdef.HugePageShift
		frame := memdef.PFN(rng.Uint64N(64)+1) << 9
		if tbl.Map2M(va, frame, PermRW) != nil {
			return false
		}
		before := tbl.NumTables()
		if _, err := tbl.SplitHuge(va+rng.Uint64N(memdef.HugePageSize), PermRWX); err != nil {
			return false
		}
		if tbl.NumTables() != before+1 {
			return false
		}
		for i := 0; i < memdef.PagesPerHuge; i += 17 {
			tr, err := tbl.Translate(va + uint64(i)<<memdef.PageShift)
			if err != nil || tr.HPA != (frame+memdef.PFN(i)).HPAOf() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
