package ept

import (
	"testing"

	"hyperhammer/internal/memdef"
	"hyperhammer/internal/phys"
)

// FuzzEntryRoundTrip checks that entry construction and field
// extraction are exact inverses for arbitrary inputs, and that no
// input smuggles bits between fields.
func FuzzEntryRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint8(0), false)
	f.Add(uint64(0xFFFFFFFFF), uint8(7), true)
	f.Add(uint64(12345), uint8(3), false)
	f.Fuzz(func(t *testing.T, pfnRaw uint64, permRaw uint8, large bool) {
		pfn := memdef.PFN(pfnRaw & 0xFFFFFFFFF) // bits 12-47 => 36-bit PFN
		perm := Perm(permRaw & 7)
		e := NewEntry(pfn, perm, large)
		if e.PFN() != pfn {
			t.Fatalf("PFN %#x -> %#x", pfn, e.PFN())
		}
		if e.Perm() != perm {
			t.Fatalf("Perm %v -> %v", perm, e.Perm())
		}
		if e.Large() != large {
			t.Fatal("large bit mangled")
		}
		if e.Present() != (perm != 0) {
			t.Fatal("present inconsistent with perm")
		}
		// WithPerm must not disturb the other fields.
		e2 := e.WithPerm(PermRead)
		if e2.PFN() != pfn || e2.Large() != large || e2.Perm() != PermRead {
			t.Fatal("WithPerm disturbed other fields")
		}
	})
}

// FuzzTranslateRobustness writes arbitrary garbage into a leaf table
// page and checks that translation never panics and never returns an
// address outside physical memory — the EPT-misconfiguration guarantee
// the attack's flip chaos relies on.
func FuzzTranslateRobustness(f *testing.F) {
	f.Add(uint64(0xDEADBEEF), uint64(0))
	f.Add(^uint64(0), uint64(511))
	f.Add(uint64(1)<<63|7, uint64(42))
	f.Fuzz(func(t *testing.T, word uint64, idxRaw uint64) {
		mem := phys.New(32 * memdef.MiB)
		alloc := &bumpAlloc{next: 1}
		tbl, err := New(mem, alloc)
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.Map2M(0, 512, PermRW); err != nil {
			t.Fatal(err)
		}
		leaf, err := tbl.SplitHuge(0, PermRWX)
		if err != nil {
			t.Fatal(err)
		}
		idx := int(idxRaw % memdef.EntriesPerTable)
		mem.SetPageWord(leaf, idx, word)
		va := uint64(idx) << memdef.PageShift
		tr, err := tbl.Translate(va + 8)
		if err != nil {
			return // fault or misconfiguration: fine
		}
		if uint64(memdef.PFNOf(tr.HPA)) >= uint64(mem.Frames()) {
			t.Fatalf("translation escaped memory: %#x", tr.HPA)
		}
	})
}
