package ept

import (
	"errors"
	"testing"

	"hyperhammer/internal/memdef"
	"hyperhammer/internal/phys"
)

// bumpAlloc hands out frames top-down from a private pool.
type bumpAlloc struct {
	next  memdef.PFN
	freed []memdef.PFN
}

func (b *bumpAlloc) AllocTable() (memdef.PFN, error) {
	p := b.next
	b.next++
	return p, nil
}

func (b *bumpAlloc) FreeTable(p memdef.PFN) { b.freed = append(b.freed, p) }

func newTestTable(t *testing.T) (*Table, *phys.Memory, *bumpAlloc) {
	t.Helper()
	mem := phys.New(64 * memdef.MiB)
	alloc := &bumpAlloc{next: 1000}
	tbl, err := New(mem, alloc)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, mem, alloc
}

func TestEntryFormat(t *testing.T) {
	e := NewEntry(0x12345, PermRW, false)
	if !e.Present() || e.Large() {
		t.Error("entry flags wrong")
	}
	if e.PFN() != 0x12345 {
		t.Errorf("PFN = %#x", e.PFN())
	}
	if e.Perm() != PermRW {
		t.Errorf("Perm = %v", e.Perm())
	}
	h := NewEntry(0x200, PermRWX, true)
	if !h.Large() {
		t.Error("large bit lost")
	}
	if got := h.WithPerm(PermRead); got.Perm() != PermRead || !got.Large() {
		t.Error("WithPerm mangled entry")
	}
	var zero Entry
	if zero.Present() {
		t.Error("zero entry present")
	}
}

func TestMap4KTranslate(t *testing.T) {
	tbl, _, _ := newTestTable(t)
	if err := tbl.Map4K(0x7000_2000, 42, PermRW); err != nil {
		t.Fatal(err)
	}
	tr, err := tbl.Translate(0x7000_2ABC)
	if err != nil {
		t.Fatal(err)
	}
	if want := memdef.HPA(42*memdef.PageSize + 0xABC); tr.HPA != want {
		t.Errorf("HPA = %#x, want %#x", tr.HPA, want)
	}
	if tr.PageSize != memdef.PageSize || tr.Perm != PermRW || tr.Level != 1 {
		t.Errorf("translation meta wrong: %+v", tr)
	}
	// A 4-level walk for one page allocates root + 3 tables.
	if got := tbl.NumTables(); got != 4 {
		t.Errorf("NumTables = %d, want 4", got)
	}
}

func TestMap2MTranslate(t *testing.T) {
	tbl, _, _ := newTestTable(t)
	framesPerHuge := memdef.PFN(memdef.PagesPerHuge)
	if err := tbl.Map2M(4*memdef.MiB, 2*framesPerHuge, PermRWX); err != nil {
		t.Fatal(err)
	}
	tr, err := tbl.Translate(4*memdef.MiB + 0x12345)
	if err != nil {
		t.Fatal(err)
	}
	if want := memdef.HPA(4*memdef.MiB + 0x12345); tr.HPA != want {
		t.Errorf("HPA = %#x, want %#x", tr.HPA, want)
	}
	if tr.PageSize != memdef.HugePageSize || tr.Level != 2 {
		t.Errorf("translation meta wrong: %+v", tr)
	}
}

func TestMapErrors(t *testing.T) {
	tbl, _, _ := newTestTable(t)
	if err := tbl.Map2M(123, 0, PermRW); err == nil {
		t.Error("unaligned Map2M accepted")
	}
	if err := tbl.Map4K(0x1000, 1, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Map4K(0x1000, 2, PermRW); !errors.Is(err, ErrAlreadyMapped) {
		t.Errorf("double Map4K: %v", err)
	}
	if err := tbl.Map2M(0, 512, PermRW); !errors.Is(err, ErrAlreadyMapped) {
		t.Errorf("Map2M over 4K: %v", err)
	}
	if _, err := tbl.Translate(0x9999_0000); !errors.Is(err, ErrNotMapped) {
		t.Errorf("Translate unmapped: %v", err)
	}
}

func TestSplitHuge(t *testing.T) {
	tbl, mem, _ := newTestTable(t)
	if err := tbl.Map2M(2*memdef.MiB, 512, PermRW); err != nil { // NX hugepage
		t.Fatal(err)
	}
	before := tbl.NumTables()
	leaf, err := tbl.SplitHuge(2*memdef.MiB+0x555, PermRWX)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumTables() != before+1 {
		t.Errorf("split allocated %d tables, want 1", tbl.NumTables()-before)
	}
	// Every 4 KiB page translates to the same frames as before, now
	// executable and via a level-1 leaf.
	for i := 0; i < memdef.PagesPerHuge; i += 37 {
		va := uint64(2*memdef.MiB + i*memdef.PageSize + 8)
		tr, err := tbl.Translate(va)
		if err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		if want := memdef.HPA(512*memdef.PageSize + uint64(i*memdef.PageSize) + 8); tr.HPA != want {
			t.Errorf("page %d HPA = %#x, want %#x", i, tr.HPA, want)
		}
		if tr.Perm != PermRWX || tr.Level != 1 {
			t.Errorf("page %d: perm %v level %d", i, tr.Perm, tr.Level)
		}
	}
	// The new leaf table's content is real memory: 512 entries.
	if w := mem.PageWord(leaf, 0); Entry(w).PFN() != 512 {
		t.Errorf("leaf entry 0 PFN = %d", Entry(w).PFN())
	}
	// Splitting again fails: no longer huge.
	if _, err := tbl.SplitHuge(2*memdef.MiB, PermRWX); !errors.Is(err, ErrNotHuge) {
		t.Errorf("second split: %v", err)
	}
}

func TestSetLeafPerm(t *testing.T) {
	tbl, _, _ := newTestTable(t)
	if err := tbl.Map2M(0, 512, PermRWX); err != nil {
		t.Fatal(err)
	}
	if err := tbl.SetLeafPerm(0x1234, PermRW); err != nil {
		t.Fatal(err)
	}
	tr, _ := tbl.Translate(0)
	if tr.Perm != PermRW {
		t.Errorf("perm after SetLeafPerm = %v", tr.Perm)
	}
}

func TestUnmap(t *testing.T) {
	tbl, _, _ := newTestTable(t)
	if err := tbl.Map4K(0x4000, 7, PermRW); err != nil {
		t.Fatal(err)
	}
	e, err := tbl.Unmap(0x4000)
	if err != nil {
		t.Fatal(err)
	}
	if e.PFN() != 7 {
		t.Errorf("unmapped entry PFN = %d", e.PFN())
	}
	if _, err := tbl.Translate(0x4000); !errors.Is(err, ErrNotMapped) {
		t.Errorf("translate after unmap: %v", err)
	}
}

// A bit flip in a leaf EPTE must redirect translation — the physical
// mechanism of the whole attack.
func TestFlipInLeafEntryRedirectsTranslation(t *testing.T) {
	tbl, mem, _ := newTestTable(t)
	if err := tbl.Map4K(0x8000, 64, PermRW); err != nil { // PFN 64 = bit 6
		t.Fatal(err)
	}
	tr, _ := tbl.Translate(0x8000)
	// Flip bit 12+7=19 of the entry: PFN 64 -> 64+128 = 192.
	byteAddr := tr.EntryAddr + 2 // bits 16..23 live in byte 2
	if !mem.FlipBit(byteAddr, 3, false) {
		t.Fatal("flip did not apply")
	}
	tr2, err := tbl.Translate(0x8000)
	if err != nil {
		t.Fatal(err)
	}
	if want := memdef.HPA(192 * memdef.PageSize); tr2.HPA != want {
		t.Errorf("post-flip HPA = %#x, want %#x", tr2.HPA, want)
	}
}

// A flip that pushes the PFN outside physical memory must surface as a
// misconfiguration, not a crash.
func TestFlipOutOfRangeIsMisconfiguration(t *testing.T) {
	tbl, mem, _ := newTestTable(t)
	if err := tbl.Map4K(0x8000, 3, PermRW); err != nil {
		t.Fatal(err)
	}
	tr, _ := tbl.Translate(0x8000)
	// Set a high PFN bit (bit 40 of the entry = byte 5, bit 0).
	if !mem.FlipBit(tr.EntryAddr+5, 0, false) {
		t.Fatal("flip did not apply")
	}
	if _, err := tbl.Translate(0x8000); !errors.Is(err, ErrMisconfigured) {
		t.Errorf("expected misconfiguration, got %v", err)
	}
}

func TestTablePagesAndDestroy(t *testing.T) {
	tbl, _, alloc := newTestTable(t)
	for i := 0; i < 4; i++ {
		if err := tbl.Map2M(uint64(i)*memdef.HugePageSize, memdef.PFN(512*(i+1)), PermRW); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tbl.SplitHuge(0, PermRWX); err != nil {
		t.Fatal(err)
	}
	if got := len(tbl.TablePages(1)); got != 1 {
		t.Errorf("leaf tables = %d, want 1", got)
	}
	if _, ok := tbl.IsTablePage(tbl.Root()); !ok {
		t.Error("root not a table page")
	}
	n := tbl.NumTables()
	tbl.Destroy()
	if len(alloc.freed) != n {
		t.Errorf("Destroy freed %d pages, want %d", len(alloc.freed), n)
	}
}

func TestFiveLevelMode(t *testing.T) {
	mem := phys.New(64 * memdef.MiB)
	alloc := &bumpAlloc{next: 2000}
	tbl, err := NewWithLevels(mem, alloc, Levels5)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Levels() != 5 {
		t.Fatalf("Levels = %d", tbl.Levels())
	}
	// An address above the 4-level 48-bit limit, reachable only with
	// 5-level paging.
	const va = uint64(1)<<52 | 0x1234_5000
	if err := tbl.Map4K(va, 99, PermRW); err != nil {
		t.Fatal(err)
	}
	tr, err := tbl.Translate(va + 0x18)
	if err != nil {
		t.Fatal(err)
	}
	if want := memdef.HPA(99*memdef.PageSize + 0x18); tr.HPA != want {
		t.Errorf("HPA = %#x, want %#x", tr.HPA, want)
	}
	// One page through 5 levels allocates root + 4 intermediate tables.
	if got := tbl.NumTables(); got != 5 {
		t.Errorf("NumTables = %d, want 5", got)
	}
	// Hugepage mapping and splitting work identically at level 2.
	if err := tbl.Map2M(uint64(1)<<52|4*memdef.MiB, 512, PermRW); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.SplitHuge(uint64(1)<<52|4*memdef.MiB, PermRWX); err != nil {
		t.Fatal(err)
	}
	if got := len(tbl.TablePages(1)); got != 2 {
		t.Errorf("leaf tables = %d, want 2", got)
	}
}

func TestNewWithLevelsRejectsBadDepth(t *testing.T) {
	mem := phys.New(4 * memdef.MiB)
	alloc := &bumpAlloc{next: 1}
	for _, levels := range []int{0, 3, 6} {
		if _, err := NewWithLevels(mem, alloc, levels); err == nil {
			t.Errorf("depth %d accepted", levels)
		}
	}
}
