package ept

import (
	"testing"

	"hyperhammer/internal/memdef"
	"hyperhammer/internal/phys"
)

func benchTable(b *testing.B) *Table {
	b.Helper()
	mem := phys.New(256 * memdef.MiB)
	tbl, err := New(mem, &bumpAlloc{next: 1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := tbl.Map2M(uint64(i)*memdef.HugePageSize, memdef.PFN(512*(i+1)), PermRW); err != nil {
			b.Fatal(err)
		}
	}
	return tbl
}

func BenchmarkTranslateHuge(b *testing.B) {
	tbl := benchTable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Translate(uint64(i%64)*memdef.HugePageSize + 0x1234); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTranslate4K(b *testing.B) {
	tbl := benchTable(b)
	for i := 0; i < 64; i++ {
		if _, err := tbl.SplitHuge(uint64(i)*memdef.HugePageSize, PermRWX); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Translate(uint64(i%64)*memdef.HugePageSize + 0x1234); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSplitHuge(b *testing.B) {
	// Splits are one-way (the attack relies on that), so each
	// iteration rebuilds a minimal table outside the timed section.
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		mem := phys.New(16 * memdef.MiB)
		tbl, err := New(mem, &bumpAlloc{next: 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := tbl.Map2M(0, 512, PermRW); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := tbl.SplitHuge(0, PermRWX); err != nil {
			b.Fatal(err)
		}
	}
}
