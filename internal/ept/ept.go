// Package ept implements 4-level hardware page tables stored inside
// the simulated physical memory. The same machinery backs both the
// extended page tables (EPT) that KVM uses to translate guest physical
// to host physical addresses (Section 2.2) and the IOMMU page tables
// (IOPT) that translate I/O virtual addresses (Section 2.5).
//
// Crucially, table pages live in phys.Memory and every walk re-reads
// the stored words. A Rowhammer bit flip that lands in a table page
// therefore genuinely changes address translation — which is the whole
// attack.
package ept

import (
	"errors"
	"fmt"
	"sort"

	"hyperhammer/internal/ledger"
	"hyperhammer/internal/memdef"
	"hyperhammer/internal/metrics"
)

// Ledger event codes for the ept.mutation determinism stream.
const (
	ledEPTMap4K = uint64(iota + 1)
	ledEPTMap2M
	ledEPTSetPerm
	ledEPTSplit
	ledEPTUnmap
)

// Perm is the permission triple of an EPT entry (bits 0-2).
type Perm uint8

const (
	// PermRead allows reads through the mapping.
	PermRead Perm = 1 << 0
	// PermWrite allows writes through the mapping.
	PermWrite Perm = 1 << 1
	// PermExec allows instruction fetches through the mapping. The
	// iTLB Multihit countermeasure clears this bit on 2 MiB leaves.
	PermExec Perm = 1 << 2

	// PermRW is the usual data permission set.
	PermRW = PermRead | PermWrite
	// PermRWX grants everything.
	PermRWX = PermRead | PermWrite | PermExec
)

// Entry is one 64-bit EPT/IOPT entry.
//
// Layout (Intel SDM Vol 3C, simplified to the bits the paper uses):
//
//	bits 0-2   R/W/X permissions; all zero means not present
//	bit 7      large page (2 MiB leaf when set at level 2)
//	bits 12-47 physical frame number
type Entry uint64

const (
	largeBit = 1 << 7
	pfnMask  = 0x0000FFFFFFFFF000
)

// NewEntry builds an entry pointing at frame pfn with the given
// permissions; large marks a 2 MiB leaf.
func NewEntry(pfn memdef.PFN, perm Perm, large bool) Entry {
	e := Entry(uint64(pfn)<<memdef.PageShift&pfnMask) | Entry(perm&7)
	if large {
		e |= largeBit
	}
	return e
}

// Present reports whether the entry grants any access.
func (e Entry) Present() bool { return e&7 != 0 }

// Perm returns the entry's permission bits.
func (e Entry) Perm() Perm { return Perm(e & 7) }

// Large reports the 2 MiB-leaf bit.
func (e Entry) Large() bool { return e&largeBit != 0 }

// PFN returns the frame number in bits 12-47.
func (e Entry) PFN() memdef.PFN { return memdef.PFN((uint64(e) & pfnMask) >> memdef.PageShift) }

// WithPerm returns the entry with its permission bits replaced.
func (e Entry) WithPerm(p Perm) Entry { return (e &^ 7) | Entry(p&7) }

// Memory is the word-addressable storage a table structure lives in.
// The hypervisor's EPT/IOPT structures live in host physical memory
// (phys.Memory); a guest's own page tables live in guest physical
// memory through the same interface, so both are subject to whatever
// corruption reaches their storage.
type Memory interface {
	// Word returns the 64-bit word at an 8-byte-aligned address.
	Word(a memdef.HPA) uint64
	// SetWord writes the 64-bit word at an 8-byte-aligned address.
	SetWord(a memdef.HPA, v uint64)
	// ZeroPage clears one frame.
	ZeroPage(p memdef.PFN)
	// PageWord returns word idx (0..511) of a frame.
	PageWord(p memdef.PFN, idx int) uint64
	// SetPageWord writes word idx of a frame.
	SetPageWord(p memdef.PFN, idx int, v uint64)
	// Frames returns the number of addressable frames.
	Frames() int
}

// Allocator provides zeroable table pages. The hypervisor implements
// it on top of the host buddy allocator with MIGRATE_UNMOVABLE order-0
// pages — the allocation the attacker steers onto vulnerable frames.
type Allocator interface {
	// AllocTable returns a frame to be used as a table page.
	AllocTable() (memdef.PFN, error)
	// FreeTable returns a table frame.
	FreeTable(p memdef.PFN)
}

// Errors returned by table operations.
var (
	// ErrNotMapped reports a translation of an unmapped address
	// (an EPT violation, which KVM handles by faulting in pages).
	ErrNotMapped = errors.New("ept: address not mapped")
	// ErrMisconfigured reports a walk through an entry whose frame
	// number points outside physical memory — what the hardware
	// reports as an EPT misconfiguration. Flips can cause this.
	ErrMisconfigured = errors.New("ept: misconfigured entry")
	// ErrAlreadyMapped reports a conflicting Map call.
	ErrAlreadyMapped = errors.New("ept: range already mapped")
	// ErrNotHuge reports SplitHuge on a non-hugepage mapping.
	ErrNotHuge = errors.New("ept: mapping is not a 2 MiB leaf")
)

// Structure levels. The root is level 4 (PML4-equivalent) in the
// common 4-level mode or level 5 (PML5) in 5-level mode (Section 2.2
// describes both; the paper's attack targets the 4-level leaf pages,
// which exist identically in both modes). Level 1 is the leaf page
// table; a 2 MiB leaf terminates the walk at level 2.
const (
	leafLevel = 1
	// Levels4 and Levels5 select the paging depth at construction.
	Levels4 = 4
	Levels5 = 5
)

// Table is one 4- or 5-level translation structure.
type Table struct {
	mem       Memory
	alloc     Allocator
	root      memdef.PFN
	rootLevel int

	// tables records every table page the *hypervisor* allocated for
	// this structure and its level. It is bookkeeping, not the truth:
	// translation always follows the (possibly flip-corrupted) words
	// in memory. Used for instrumentation such as Table 2's EPT-page
	// dump and for teardown.
	tables map[memdef.PFN]int

	// leaf4k and leaf2m count installed leaf mappings by page size.
	// Like tables, this is hypervisor bookkeeping — flip-corrupted
	// entries still count as whatever was installed — maintained O(1)
	// so the layout census never walks the structure.
	leaf4k, leaf2m int

	met tableMetrics
	led *ledger.Stream
}

// tableMetrics caches the structure's instrument handles; all nil
// (no-op) until SetMetrics. Series are shared by name across every
// Table wired to the same registry, so per-VM EPTs and per-group IOPTs
// aggregate into one family.
type tableMetrics struct {
	translations *metrics.Counter
	violations   *metrics.Counter
	splits       *metrics.Counter
	tablePages   *metrics.Gauge
}

// SetMetrics registers the structure's instruments with reg and
// credits its already-allocated table pages to the shared gauge. A nil
// registry leaves the structure uninstrumented at zero cost.
func (t *Table) SetMetrics(reg *metrics.Registry) {
	t.met = tableMetrics{
		translations: reg.Counter("ept_translations_total", "Page-table walks attempted (EPT and IOPT)."),
		violations:   reg.Counter("ept_violations_total", "Walks that faulted: not-mapped (EPT violation) or misconfigured entries."),
		splits:       reg.Counter("ept_splits_total", "2 MiB leaves demoted to 4 KiB leaf tables."),
		tablePages:   reg.Gauge("ept_table_pages", "Live hypervisor-allocated table pages across all structures."),
	}
	t.met.tablePages.Add(int64(len(t.tables)))
}

// SetLedger attaches a determinism-ledger stream for structure
// mutations. The caller passes the resolved stream handle rather than
// a recorder so every Table of one host (per-VM EPTs, per-group IOPTs)
// folds into the same "ept.mutation" stream; a nil handle leaves the
// structure unledgered at zero cost.
func (t *Table) SetLedger(s *ledger.Stream) {
	t.led = s
}

// New allocates an empty 4-level table structure, the mode the paper
// evaluates.
func New(mem Memory, alloc Allocator) (*Table, error) {
	return NewWithLevels(mem, alloc, Levels4)
}

// NewWithLevels allocates an empty table structure with the given
// paging depth (Levels4 or Levels5).
func NewWithLevels(mem Memory, alloc Allocator, levels int) (*Table, error) {
	if levels != Levels4 && levels != Levels5 {
		return nil, fmt.Errorf("ept: unsupported paging depth %d", levels)
	}
	root, err := alloc.AllocTable()
	if err != nil {
		return nil, fmt.Errorf("ept: allocating root: %w", err)
	}
	mem.ZeroPage(root)
	t := &Table{
		mem:       mem,
		alloc:     alloc,
		root:      root,
		rootLevel: levels,
		tables:    map[memdef.PFN]int{root: levels},
	}
	return t, nil
}

// Levels returns the structure's paging depth.
func (t *Table) Levels() int { return t.rootLevel }

// Root returns the root table frame.
func (t *Table) Root() memdef.PFN { return t.root }

func index(va uint64, level int) int {
	return int(va>>(memdef.PageShift+9*uint(level-1))) & (memdef.EntriesPerTable - 1)
}

// entryAddr returns the physical address of the entry for va within
// table page tp at the given level.
func entryAddr(tp memdef.PFN, va uint64, level int) memdef.HPA {
	return tp.HPAOf() + memdef.HPA(index(va, level)*8)
}

func (t *Table) readEntry(tp memdef.PFN, va uint64, level int) Entry {
	return Entry(t.mem.Word(entryAddr(tp, va, level)))
}

func (t *Table) writeEntry(tp memdef.PFN, va uint64, level int, e Entry) {
	t.mem.SetWord(entryAddr(tp, va, level), uint64(e))
}

func (t *Table) frameValid(p memdef.PFN) bool {
	return uint64(p) < uint64(t.mem.Frames())
}

// walkTo descends to the table page holding the entry for va at
// toLevel, allocating intermediate tables if create is set. It returns
// the table page at toLevel.
func (t *Table) walkTo(va uint64, toLevel int, create bool) (memdef.PFN, error) {
	tp := t.root
	for level := t.rootLevel; level > toLevel; level-- {
		e := t.readEntry(tp, va, level)
		if !e.Present() {
			if !create {
				return 0, ErrNotMapped
			}
			next, err := t.alloc.AllocTable()
			if err != nil {
				return 0, fmt.Errorf("ept: allocating level-%d table: %w", level-1, err)
			}
			t.mem.ZeroPage(next)
			t.tables[next] = level - 1
			t.met.tablePages.Add(1)
			t.writeEntry(tp, va, level, NewEntry(next, PermRWX, false))
			tp = next
			continue
		}
		if e.Large() {
			return 0, ErrAlreadyMapped
		}
		next := e.PFN()
		if !t.frameValid(next) {
			return 0, ErrMisconfigured
		}
		tp = next
	}
	return tp, nil
}

// Map4K installs a 4 KiB mapping va -> frame with permissions perm.
func (t *Table) Map4K(va uint64, frame memdef.PFN, perm Perm) error {
	tp, err := t.walkTo(va, leafLevel, true)
	if err != nil {
		return err
	}
	if t.readEntry(tp, va, leafLevel).Present() {
		return ErrAlreadyMapped
	}
	t.writeEntry(tp, va, leafLevel, NewEntry(frame, perm, false))
	t.leaf4k++
	t.led.Fold4(ledEPTMap4K, va, uint64(frame), uint64(perm))
	return nil
}

// Map2M installs a 2 MiB leaf mapping at level 2. va and frame must be
// 2 MiB aligned.
func (t *Table) Map2M(va uint64, frame memdef.PFN, perm Perm) error {
	if !memdef.HugeAligned(va) || !memdef.HugeAligned(uint64(frame)<<memdef.PageShift) {
		return fmt.Errorf("ept: unaligned 2M mapping va=%#x frame=%d", va, frame)
	}
	tp, err := t.walkTo(va, 2, true)
	if err != nil {
		return err
	}
	if t.readEntry(tp, va, 2).Present() {
		return ErrAlreadyMapped
	}
	t.writeEntry(tp, va, 2, NewEntry(frame, perm, true))
	t.leaf2m++
	t.led.Fold4(ledEPTMap2M, va, uint64(frame), uint64(perm))
	return nil
}

// Translation is the result of a successful walk.
type Translation struct {
	// HPA is the translated physical address.
	HPA memdef.HPA
	// Perm is the effective permission of the leaf entry.
	Perm Perm
	// PageSize is 4 KiB or 2 MiB.
	PageSize uint64
	// EntryAddr is the physical address of the leaf entry used —
	// exposed so instrumentation (and tests) can locate the EPTE
	// without re-walking.
	EntryAddr memdef.HPA
	// Level is the level the walk terminated at (1 or 2).
	Level int
}

// Translate walks the structure for va. It follows whatever the table
// words currently say, so corrupted entries translate "successfully"
// to wherever they now point, exactly like hardware.
func (t *Table) Translate(va uint64) (Translation, error) {
	t.met.translations.Inc()
	tp := t.root
	for level := t.rootLevel; level >= leafLevel; level-- {
		e := t.readEntry(tp, va, level)
		if !e.Present() {
			t.met.violations.Inc()
			return Translation{}, ErrNotMapped
		}
		isLeaf := level == leafLevel || (level == 2 && e.Large())
		if isLeaf {
			var pageSize uint64 = memdef.PageSize
			if level == 2 {
				pageSize = memdef.HugePageSize
			}
			base := uint64(e.PFN()) << memdef.PageShift
			hpa := memdef.HPA(base&^(pageSize-1) | va&(pageSize-1))
			if !t.frameValid(memdef.PFNOf(hpa)) {
				t.met.violations.Inc()
				return Translation{}, ErrMisconfigured
			}
			return Translation{
				HPA:       hpa,
				Perm:      e.Perm(),
				PageSize:  pageSize,
				EntryAddr: entryAddr(tp, va, level),
				Level:     level,
			}, nil
		}
		if e.Large() {
			t.met.violations.Inc()
			return Translation{}, ErrMisconfigured
		}
		next := e.PFN()
		if !t.frameValid(next) {
			t.met.violations.Inc()
			return Translation{}, ErrMisconfigured
		}
		tp = next
	}
	panic("unreachable")
}

// SetLeafPerm replaces the permission bits of the leaf entry mapping
// va (either page size). Used by the multihit countermeasure to mark
// hugepages non-executable.
func (t *Table) SetLeafPerm(va uint64, perm Perm) error {
	tr, err := t.Translate(va)
	if err != nil {
		return err
	}
	e := Entry(t.mem.Word(tr.EntryAddr))
	t.mem.SetWord(tr.EntryAddr, uint64(e.WithPerm(perm)))
	t.led.Fold3(ledEPTSetPerm, va, uint64(perm))
	return nil
}

// SplitHuge demotes the 2 MiB leaf covering va into 512 4 KiB entries
// with permissions perm, allocating one new leaf table page — the
// exact operation the iTLB Multihit countermeasure performs and the
// allocation that Page Steering targets (Section 4.2.3). It returns
// the frame of the new leaf table.
func (t *Table) SplitHuge(va uint64, perm Perm) (memdef.PFN, error) {
	va = uint64(memdef.HugeBase(va))
	tp, err := t.walkTo(va, 2, false)
	if err != nil {
		return 0, err
	}
	e := t.readEntry(tp, va, 2)
	if !e.Present() || !e.Large() {
		return 0, ErrNotHuge
	}
	leaf, err := t.alloc.AllocTable()
	if err != nil {
		return 0, fmt.Errorf("ept: allocating split leaf: %w", err)
	}
	t.mem.ZeroPage(leaf)
	t.tables[leaf] = leafLevel
	t.met.splits.Inc()
	t.met.tablePages.Add(1)
	base := e.PFN()
	for i := 0; i < memdef.PagesPerHuge; i++ {
		t.mem.SetPageWord(leaf, i, uint64(NewEntry(base+memdef.PFN(i), perm, false)))
	}
	t.writeEntry(tp, va, 2, NewEntry(leaf, PermRWX, false))
	t.leaf2m--
	t.leaf4k += memdef.PagesPerHuge
	t.led.Fold3(ledEPTSplit, va, uint64(leaf))
	return leaf, nil
}

// Unmap clears the leaf entry covering va (4 KiB or 2 MiB leaf) and
// returns the entry that was removed. Table pages are not reclaimed on
// unmap, matching KVM's behaviour of keeping the paging structure.
func (t *Table) Unmap(va uint64) (Entry, error) {
	tr, err := t.Translate(va)
	if err != nil {
		return 0, err
	}
	e := Entry(t.mem.Word(tr.EntryAddr))
	t.mem.SetWord(tr.EntryAddr, 0)
	t.led.Fold3(ledEPTUnmap, va, uint64(e))
	if tr.Level == 2 {
		t.leaf2m--
	} else {
		t.leaf4k--
	}
	return e, nil
}

// Leaves returns the installed leaf-mapping counts by page size
// (4 KiB, 2 MiB), per bookkeeping. The memory-layout census reads the
// guest's page-size distribution from here without walking the
// structure.
func (t *Table) Leaves() (leaf4k, leaf2m int) { return t.leaf4k, t.leaf2m }

// TableCountByLevel returns how many table pages exist at each level
// (index = level, 0 unused), the O(levels) form of TablePages for the
// layout census.
func (t *Table) TableCountByLevel() [Levels5 + 1]int {
	var counts [Levels5 + 1]int
	for _, l := range t.tables {
		if l >= 0 && l <= Levels5 {
			counts[l]++
		}
	}
	return counts
}

// TablePages returns the frames of all hypervisor-allocated table
// pages at the given level (per bookkeeping, not memory contents).
// Level 1 returns the leaf tables — the paper's "EPT pages" count E.
func (t *Table) TablePages(level int) []memdef.PFN {
	var out []memdef.PFN
	for p, l := range t.tables {
		if l == level {
			out = append(out, p)
		}
	}
	return out
}

// NumTables returns the total number of table pages at all levels.
func (t *Table) NumTables() int { return len(t.tables) }

// IsTablePage reports whether frame p is a bookkept table page of this
// structure and its level.
func (t *Table) IsTablePage(p memdef.PFN) (int, bool) {
	l, ok := t.tables[p]
	return l, ok
}

// Destroy frees every bookkept table page back to the allocator, in
// frame order so the allocator's free-list state stays deterministic.
func (t *Table) Destroy() {
	pages := make([]memdef.PFN, 0, len(t.tables))
	for p := range t.tables {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	for _, p := range pages {
		t.alloc.FreeTable(p)
	}
	t.met.tablePages.Add(-int64(len(pages)))
	t.tables = nil
}
