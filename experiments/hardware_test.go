package experiments

import "testing"

// The TRRespass shape: TRR kills the paper's narrow pattern but not
// the many-sided one; without TRR both work.
func TestTRRExperiment(t *testing.T) {
	res, err := TRR(shortOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	get := func(dimm, pattern string) TRRRow {
		for _, r := range res.Rows {
			if r.DIMM == dimm && r.Pattern == pattern {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", dimm, pattern)
		return TRRRow{}
	}
	if get("no TRR", "single-sided-2").Flips == 0 {
		t.Error("single-sided found nothing without TRR")
	}
	if got := get("TRR (4 slots)", "single-sided-2").Flips; got != 0 {
		t.Errorf("TRR let %d single-sided flips through", got)
	}
	if get("TRR (4 slots)", "many-sided-8").Flips == 0 {
		t.Error("many-sided pattern failed to overwhelm the TRR tracker")
	}
}

func TestECCExperiment(t *testing.T) {
	res, err := ECC(shortOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.FlipsNonECC == 0 {
		t.Fatal("no flips without ECC; fault model too sparse")
	}
	if res.FlipsECC != 0 {
		t.Errorf("ECC host exposed %d flips to the guest", res.FlipsECC)
	}
	if res.Corrected == 0 && res.Detected == 0 {
		t.Error("ECC host recorded no error activity despite hammering")
	}
}

// The countermeasure trade-off: with NX hugepages the DoS fails and
// splits abound (HyperHammer's precondition); without it the DoS
// succeeds and no splits happen.
func TestMultihitExperiment(t *testing.T) {
	res, err := Multihit(shortOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.DoSWithMitigation {
		t.Error("DoS succeeded despite the countermeasure")
	}
	if !res.DoSWithoutMitigation {
		t.Error("DoS failed on an unmitigated affected CPU")
	}
	if res.SplitsWithMitigation < 64 {
		t.Errorf("splits with mitigation = %d, want >= 64 (one per exec'd hugepage)", res.SplitsWithMitigation)
	}
	if res.SplitsWithoutMitigation != 0 {
		t.Errorf("splits without mitigation = %d, want 0", res.SplitsWithoutMitigation)
	}
}
