package experiments

import (
	"time"

	"hyperhammer/internal/attack"
	"hyperhammer/internal/memdef"
	"hyperhammer/internal/report"
)

// VMSizeRow is one point of the Section 5.3.1 sensitivity analysis:
// how the attack's prospects scale with the share of host memory the
// attacker's VM gets.
type VMSizeRow struct {
	// GuestMem is the VM size.
	GuestMem uint64
	// Bound is the per-attempt success bound.
	Bound float64
	// ExpectedAttempts is its reciprocal.
	ExpectedAttempts float64
	// TargetBits is the most vulnerable bits one attempt can exploit
	// (1 GiB of guest memory per bit, Section 4.3).
	TargetBits int
	// ExpectedDays is the end-to-end estimate with the paper's S1
	// profiling inputs scaled to the profiled fraction of the VM.
	ExpectedDays float64
}

// VMSizeResult is the sweep over guest sizes on a 16 GiB host.
type VMSizeResult struct {
	HostMem uint64
	Rows    []VMSizeRow
}

// Table renders the sweep.
func (r *VMSizeResult) Table() *report.Table {
	t := report.NewTable(
		"Section 5.3.1 sensitivity: attack prospects vs attacker VM size (16 GiB host)",
		"VM size", "bound (1/attempts)", "expected attempts", "max bits/attempt", "end-to-end est.")
	for _, row := range r.Rows {
		t.AddRow(
			report.Percent(float64(row.GuestMem)/float64(r.HostMem))+" of host",
			row.Bound, row.ExpectedAttempts, row.TargetBits,
			report.FormatDuration(time.Duration(row.ExpectedDays*24)*time.Hour))
	}
	return t
}

// VMSize computes the Section 5.3.1 sensitivity sweep. The per-attempt
// success bound scales with the EPTE spray the VM can afford — 1 GiB
// of guest memory per exploited bit (Section 4.3) — so a small VM both
// tries fewer bits per attempt and needs proportionally more attempts.
// Per-attempt profiling cost shrinks with the bit budget (the
// economics cancel to first order), but the fixed per-attempt overhead
// (steering, marking, respawn and reboot) is amplified by the inflated
// attempt count, so the total grows as VMs shrink — the paper's "in
// the case that the VM is relatively small, the attack is likely to
// be much longer".
func VMSize(o Options) *VMSizeResult {
	hostMem := uint64(16 * memdef.GiB)
	res := &VMSizeResult{HostMem: hostMem}
	// The paper's S1 profiling economics: a full 12 GiB profile takes
	// 72 h and yields 96 exploitable bits; steering, exploitation and
	// the respawn cost ~10 min per attempt on top.
	const fullProfileHours = 72.0
	const fullProfileBits = 96.0
	const overheadHours = 10.0 / 60.0
	for _, gib := range []uint64{2, 4, 8, 13} {
		guestMem := gib * memdef.GiB
		// Usable memory after the guest's own OS: roughly 1 GiB per
		// exploited bit, at least one.
		bits := int(gib) - 1
		if bits < 1 {
			bits = 1
		}
		sprayMem := uint64(bits) * memdef.GiB
		bound := attack.SuccessBound(sprayMem, hostMem)
		attempts := attack.ExpectedAttempts(sprayMem, hostMem)
		perAttemptHours := fullProfileHours*float64(bits)/fullProfileBits + overheadHours
		days := perAttemptHours * attempts / 24
		res.Rows = append(res.Rows, VMSizeRow{
			GuestMem:         guestMem,
			Bound:            bound,
			ExpectedAttempts: attempts,
			TargetBits:       bits,
			ExpectedDays:     days,
		})
	}
	return res
}
