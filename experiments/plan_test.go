package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"hyperhammer/internal/inspect"
	"hyperhammer/internal/metrics"
	"hyperhammer/internal/profile"
	"hyperhammer/internal/trace"
)

// planRun executes a representative multi-experiment plan (the
// hh-tables -short -all shape, minus the two slowest campaigns) at the
// given worker count with the full telemetry plane attached, and
// returns everything an artifact would be built from: the rendered
// results, the final metrics snapshot, the profile, and the raw span
// stream.
func planRun(t *testing.T, parallel int) (results []byte, snap metrics.Snapshot, prof *profile.Profile, spans, inspection []byte) {
	t.Helper()
	var spanBuf bytes.Buffer
	o := shortOpts()
	o.Parallel = parallel
	o.Trace = trace.New(&spanBuf, 0)
	o.Metrics = metrics.New()
	o.Inspect = inspect.New(inspect.Config{})

	p := NewPlan(o)
	profiler := profile.NewBuilder(o.Metrics)
	p.SetProfiler(profiler)

	t1 := p.Table1()
	f3 := p.Figure3()
	dd := p.DRAMDig()
	mit := p.Mitigation()
	xen := p.Xen()
	bal := p.Balloon()
	ecc := p.ECC()
	mh := p.Multihit()
	sd := p.AblationSidedness()
	ne := p.AblationNoExhaust()
	an := p.Analysis(t1)
	if err := p.Run(); err != nil {
		t.Fatalf("plan run (parallel=%d): %v", parallel, err)
	}

	out, err := json.Marshal(map[string]any{
		"table1":    t1.Get(),
		"figure3":   f3.Get(),
		"dramdig":   dd.Get(),
		"mitigate":  mit.Get(),
		"xen":       xen.Get(),
		"balloon":   bal.Get(),
		"ecc":       ecc.Get(),
		"multihit":  mh.Get(),
		"sidedness": sd.Get(),
		"noexhaust": ne.Get(),
		"analysis":  an.Get(),
	})
	if err != nil {
		t.Fatalf("marshal results: %v", err)
	}
	// The three introspection sections marshal exactly as a run
	// artifact would embed them.
	insp, err := json.Marshal(map[string]any{
		"heatmap": o.Inspect.HeatmapSnapshot(),
		"census":  o.Inspect.CensusSnapshot(),
		"alerts":  o.Inspect.AlertsSnapshot(),
	})
	if err != nil {
		t.Fatalf("marshal inspection: %v", err)
	}
	return out, o.Metrics.Snapshot(), profiler.Snapshot(), spanBuf.Bytes(), insp
}

// TestParallelMatchesSequential is the determinism gate in miniature:
// the same plan at -parallel 1 and -parallel 4 must produce
// byte-identical results, metrics, profiles, and span streams. Run
// under -race this also exercises the scheduler's concurrency.
func TestParallelMatchesSequential(t *testing.T) {
	seqRes, seqSnap, seqProf, seqSpans, seqInsp := planRun(t, 1)
	parRes, parSnap, parProf, parSpans, parInsp := planRun(t, 4)

	if !bytes.Equal(seqRes, parRes) {
		t.Errorf("results differ between parallel 1 and 4:\nseq: %s\npar: %s", seqRes, parRes)
	}
	seqSnapJSON, _ := json.Marshal(seqSnap)
	parSnapJSON, _ := json.Marshal(parSnap)
	if !bytes.Equal(seqSnapJSON, parSnapJSON) {
		t.Errorf("metrics snapshots differ:\nseq: %s\npar: %s", seqSnapJSON, parSnapJSON)
	}
	seqProfJSON, _ := json.Marshal(seqProf)
	parProfJSON, _ := json.Marshal(parProf)
	if !bytes.Equal(seqProfJSON, parProfJSON) {
		t.Errorf("profiles differ:\nseq: %s\npar: %s", seqProfJSON, parProfJSON)
	}
	if !bytes.Equal(seqSpans, parSpans) {
		t.Errorf("span streams differ (%d vs %d bytes)", len(seqSpans), len(parSpans))
	}
	if !bytes.Equal(seqInsp, parInsp) {
		t.Errorf("introspection snapshots differ:\nseq: %s\npar: %s", seqInsp, parInsp)
	}
}

// TestPlanErrorPropagates checks that a failing unit surfaces its
// error from Run and that units before it still deliver.
func TestPlanErrorPropagates(t *testing.T) {
	o := shortOpts()
	o.Parallel = 4
	p := NewPlan(o)
	delivered := 0
	addTyped(p, "ok",
		func(Options) (int, error) { return 1, nil },
		func(int) { delivered++ })
	addTyped(p, "boom",
		func(Options) (int, error) { return 0, errBoom },
		func(int) { t.Error("failing unit must not be delivered") })
	finals := 0
	p.finally(func() error { finals++; return nil })
	if err := p.Run(); err != errBoom {
		t.Fatalf("Run error = %v, want errBoom", err)
	}
	if delivered != 1 {
		t.Errorf("delivered = %d, want 1", delivered)
	}
	if finals != 0 {
		t.Errorf("finals ran despite error: %d", finals)
	}
}

var errBoom = errorString("boom")

type errorString string

func (e errorString) Error() string { return string(e) }
