package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"hyperhammer/internal/inspect"
	"hyperhammer/internal/metrics"
	"hyperhammer/internal/profile"
	"hyperhammer/internal/trace"
)

// planRun executes a representative multi-experiment plan (the
// hh-tables -short -all shape, minus the two slowest campaigns) at the
// given worker count with the full telemetry plane attached, and
// returns everything an artifact would be built from: the rendered
// results, the final metrics snapshot, the profile, and the raw span
// stream.
func planRun(t *testing.T, parallel int) (results []byte, snap metrics.Snapshot, prof *profile.Profile, spans, inspection []byte) {
	t.Helper()
	var spanBuf bytes.Buffer
	o := shortOpts()
	o.Parallel = parallel
	o.Trace = trace.New(&spanBuf, 0)
	o.Metrics = metrics.New()
	o.Inspect = inspect.New(inspect.Config{})

	p := NewPlan(o)
	profiler := profile.NewBuilder(o.Metrics)
	p.SetProfiler(profiler)

	t1 := p.Table1()
	f3 := p.Figure3()
	dd := p.DRAMDig()
	mit := p.Mitigation()
	xen := p.Xen()
	bal := p.Balloon()
	ecc := p.ECC()
	mh := p.Multihit()
	sd := p.AblationSidedness()
	ne := p.AblationNoExhaust()
	an := p.Analysis(t1)
	if err := p.Run(); err != nil {
		t.Fatalf("plan run (parallel=%d): %v", parallel, err)
	}

	out, err := json.Marshal(map[string]any{
		"table1":    t1.Get(),
		"figure3":   f3.Get(),
		"dramdig":   dd.Get(),
		"mitigate":  mit.Get(),
		"xen":       xen.Get(),
		"balloon":   bal.Get(),
		"ecc":       ecc.Get(),
		"multihit":  mh.Get(),
		"sidedness": sd.Get(),
		"noexhaust": ne.Get(),
		"analysis":  an.Get(),
	})
	if err != nil {
		t.Fatalf("marshal results: %v", err)
	}
	// The three introspection sections marshal exactly as a run
	// artifact would embed them.
	insp, err := json.Marshal(map[string]any{
		"heatmap": o.Inspect.HeatmapSnapshot(),
		"census":  o.Inspect.CensusSnapshot(),
		"alerts":  o.Inspect.AlertsSnapshot(),
	})
	if err != nil {
		t.Fatalf("marshal inspection: %v", err)
	}
	return out, o.Metrics.Snapshot(), profiler.Snapshot(), spanBuf.Bytes(), insp
}

// TestParallelMatchesSequential is the determinism gate in miniature:
// the same plan at -parallel 1 and -parallel 4 must produce
// byte-identical results, metrics, profiles, and span streams. Run
// under -race this also exercises the scheduler's concurrency.
//
// Metrics compare after StripHost, exactly as artifact builders
// snapshot them: the sched_* families are real host observations
// (worker count, queue waits) and legitimately differ across
// -parallel — that host view belongs to the artifact's plan section,
// not its deterministic metrics section.
func TestParallelMatchesSequential(t *testing.T) {
	seqRes, seqSnap, seqProf, seqSpans, seqInsp := planRun(t, 1)
	parRes, parSnap, parProf, parSpans, parInsp := planRun(t, 4)

	if !bytes.Equal(seqRes, parRes) {
		t.Errorf("results differ between parallel 1 and 4:\nseq: %s\npar: %s", seqRes, parRes)
	}
	// The live registry must carry scheduler telemetry before the
	// strip (the /metrics satellite) ...
	for _, snap := range []metrics.Snapshot{seqSnap, parSnap} {
		if !hasSample(snap.Counters, "sched_units_total") {
			t.Error("sched_units_total missing from live snapshot")
		}
		if !hasSample(snap.Gauges, "sched_workers") {
			t.Error("sched_workers missing from live snapshot")
		}
		found := false
		for _, h := range snap.Histograms {
			if h.Name == "sched_queue_wait_seconds" {
				found = true
			}
		}
		if !found {
			t.Error("sched_queue_wait_seconds missing from live snapshot")
		}
	}
	// ... and byte-identity holds on the stripped view.
	seqSnapJSON, _ := json.Marshal(seqSnap.StripHost())
	parSnapJSON, _ := json.Marshal(parSnap.StripHost())
	if !bytes.Equal(seqSnapJSON, parSnapJSON) {
		t.Errorf("metrics snapshots differ:\nseq: %s\npar: %s", seqSnapJSON, parSnapJSON)
	}
	seqProfJSON, _ := json.Marshal(seqProf)
	parProfJSON, _ := json.Marshal(parProf)
	if !bytes.Equal(seqProfJSON, parProfJSON) {
		t.Errorf("profiles differ:\nseq: %s\npar: %s", seqProfJSON, parProfJSON)
	}
	if !bytes.Equal(seqSpans, parSpans) {
		t.Errorf("span streams differ (%d vs %d bytes)", len(seqSpans), len(parSpans))
	}
	if !bytes.Equal(seqInsp, parInsp) {
		t.Errorf("introspection snapshots differ:\nseq: %s\npar: %s", seqInsp, parInsp)
	}
}

// TestPlanErrorPropagates checks that a failing unit surfaces its
// error from Run and that units before it still deliver.
func TestPlanErrorPropagates(t *testing.T) {
	o := shortOpts()
	o.Parallel = 4
	p := NewPlan(o)
	delivered := 0
	addTyped(p, "ok",
		func(Options) (int, error) { return 1, nil },
		func(int) { delivered++ })
	addTyped(p, "boom",
		func(Options) (int, error) { return 0, errBoom },
		func(int) { t.Error("failing unit must not be delivered") })
	finals := 0
	p.finally(func() error { finals++; return nil })
	if err := p.Run(); err != errBoom {
		t.Fatalf("Run error = %v, want errBoom", err)
	}
	if delivered != 1 {
		t.Errorf("delivered = %d, want 1", delivered)
	}
	if finals != 0 {
		t.Errorf("finals ran despite error: %d", finals)
	}
}

// hasSample reports whether a sample list carries the named family.
func hasSample(samples []metrics.Sample, name string) bool {
	for _, s := range samples {
		if s.Name == name {
			return true
		}
	}
	return false
}

// TestPlanHostSchedule: after Run, the plan exposes the host-cost
// schedule — every unit timed and delivered on the effective pool —
// and PlanReport derives a non-empty critical path and sane
// efficiency figures. Before any run both are safely empty.
func TestPlanHostSchedule(t *testing.T) {
	o := shortOpts()
	o.Parallel = 2
	p := NewPlan(o)
	if p.Schedule() != nil {
		t.Fatal("schedule non-nil before run")
	}
	if r := p.PlanReport(); r == nil || len(r.Units) != 0 {
		t.Fatalf("pre-run report = %+v, want empty", r)
	}
	for range [4]int{} {
		addTyped(p, "unit",
			func(Options) (int, error) { return 1, nil },
			func(int) {})
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	sc := p.Schedule()
	if sc == nil || sc.Workers != 2 || len(sc.Units) != 4 {
		t.Fatalf("schedule = %+v", sc)
	}
	for _, u := range sc.Units {
		if !u.Started || !u.Delivered {
			t.Fatalf("unit %d not fully timed: %+v", u.Index, u)
		}
	}
	r := p.PlanReport()
	if len(r.CriticalPath) == 0 {
		t.Error("critical path empty after a successful run")
	}
	if r.MaxSpeedup <= 0 || r.ActualSpeedup <= 0 || r.Efficiency <= 0 {
		t.Errorf("speedup figures not positive: max=%v actual=%v eff=%v",
			r.MaxSpeedup, r.ActualSpeedup, r.Efficiency)
	}
	if len(r.WorkerBusySeconds) != 2 {
		t.Errorf("WorkerBusySeconds = %v, want 2 rows", r.WorkerBusySeconds)
	}
}

var errBoom = errorString("boom")

type errorString string

func (e errorString) Error() string { return string(e) }
