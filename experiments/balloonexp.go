package experiments

import (
	"hyperhammer/internal/guest"
	"hyperhammer/internal/kvm"
	"hyperhammer/internal/memdef"
	"hyperhammer/internal/report"
)

// BalloonRow is one release-path measurement.
type BalloonRow struct {
	// Path names the release mechanism.
	Path string
	// Released is how many pages the guest gave back to the host.
	Released int
	// TablePages is how many EPT leaf tables exist after the run.
	TablePages int
	// Reused is how many released pages ended up holding EPT leaf
	// tables.
	Reused int
}

// RN returns Reused/Released.
func (r BalloonRow) RN() float64 {
	if r.Released == 0 {
		return 0
	}
	return float64(r.Reused) / float64(r.Released)
}

// BalloonResult is the Section 6 virtio-balloon feasibility analysis,
// run end to end on the full simulated stack and compared against the
// paper's virtio-mem path.
type BalloonResult struct {
	Rows []BalloonRow
}

// Table renders the comparison.
func (r *BalloonResult) Table() *report.Table {
	t := report.NewTable("Section 6: release paths — virtio-mem vs virtio-balloon",
		"Path", "Released pages", "EPT leaf tables", "Reused", "R_N")
	for _, row := range r.Rows {
		t.AddRow(row.Path, row.Released, row.TablePages, row.Reused, report.Percent(row.RN()))
	}
	return t
}

// Balloon runs Page Steering's release-and-reuse core through both
// overcommit devices. The virtio-mem path is the paper's: released
// 2 MiB blocks land on the unmovable lists the EPT allocator draws
// from, and reuse is high. The balloon path releases single pages —
// no exhaustion granularity problem — but without VFIO the guest's
// memory is movable, so the released singles sit on the wrong side of
// the migratetype wall: EPT allocations reach them only after
// migratetype stealing has consumed every larger movable block, which
// a spray never does. The numbers quantify why the paper leaves the
// balloon variant to future work.
func Balloon(o Options) (*BalloonResult, error) {
	return planOne(o, (*Plan).Balloon)
}

// Balloon registers the virtio-mem reference and both balloon variants
// as independent units and returns the future of the comparison. Row
// order (mem reference, drained, undrained) is preserved by the
// scheduler's ordered delivery.
func (p *Plan) Balloon() *Future[*BalloonResult] {
	f := &Future[*BalloonResult]{}
	res := &BalloonResult{}
	store := func(row BalloonRow) { res.Rows = append(res.Rows, row) }
	// Reference: the paper's virtio-mem path at the same scale.
	addTyped(p, "balloon.mem-ref",
		func(o Options) (BalloonRow, error) {
			memRow, err := steerOnce(o, true, 2, 0)
			if err != nil {
				return BalloonRow{}, err
			}
			return BalloonRow{
				Path:       "virtio-mem (paper)",
				Released:   memRow.Released,
				TablePages: memRow.EPTPages,
				Reused:     memRow.Reused,
			}, nil
		}, store)
	for _, drain := range []bool{true, false} {
		drain := drain
		name := "balloon.no-drain"
		if drain {
			name = "balloon.drain"
		}
		addTyped(p, name,
			func(o Options) (BalloonRow, error) { return balloonRun(o, drain) },
			store)
	}
	p.finally(func() error { f.set(res); return nil })
	return f
}

func balloonRun(o Options, drain bool) (BalloonRow, error) {
	sc := shortScale()
	h, err := o.newHostAt(sc, SystemS1)
	if err != nil {
		return BalloonRow{}, err
	}
	// No VFIO: the balloon scenario's defining condition. Guest
	// memory is MIGRATE_MOVABLE.
	vm, err := h.CreateVM(kvm.VMConfig{MemSize: sc.vmSize})
	if err != nil {
		return BalloonRow{}, err
	}
	vm.AttachBalloon()
	gos := guest.Boot(vm)
	n := gos.FreeHugepages()
	base, err := gos.AllocHuge(n)
	if err != nil {
		return BalloonRow{}, err
	}

	if drain {
		// The virtio-net-pci step: dry out the unmovable lists so
		// subsequent kernel allocations must steal movable blocks.
		gos.DrainNetBuffers(1 << 20)
	}

	// Release single pages across the buffer — the balloon's per-page
	// granularity in action. Track their physical frames (via the
	// experiment hypercall) for the host-side reuse count.
	released := make(map[memdef.PFN]bool)
	for i := 0; i < n; i += 4 {
		for _, pg := range []int{37, 205, 411} {
			gva := base + memdef.GVA(i)*memdef.HugePageSize + memdef.GVA(pg)*memdef.PageSize
			hpa, err := gos.Hypercall(gva)
			if err != nil {
				return BalloonRow{}, err
			}
			if err := gos.InflateBalloonPage(gva); err != nil {
				return BalloonRow{}, err
			}
			released[memdef.PFNOf(hpa)] = true
		}
	}

	// EPT-creation pressure: execute in every remaining huge chunk.
	for i := 0; i < n; i++ {
		gva := base + memdef.GVA(i)*memdef.HugePageSize
		if _, err := gos.Exec(gva); err != nil {
			return BalloonRow{}, err
		}
	}

	reused := 0
	leaves := vm.EPTTablePages(1)
	for _, p := range leaves {
		if released[p] {
			reused++
		}
	}
	path := "virtio-balloon, no net drain"
	if drain {
		path = "virtio-balloon + net drain"
	}
	return BalloonRow{
		Path:       path,
		Released:   len(released),
		TablePages: len(leaves),
		Reused:     reused,
	}, nil
}
