// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 5), plus the Section 6 analyses and a
// set of ablations for the design choices DESIGN.md calls out. Each
// experiment returns both structured data and a formatted table or
// figure, and is driven by the hh-tables command and by the benchmark
// harness in the repository root.
//
// Absolute numbers come from the simulated substrate, so they match
// the paper's *shape* — who wins, by what rough factor, where the
// thresholds sit — rather than its exact values; EXPERIMENTS.md
// records the comparison.
package experiments

import (
	"time"

	"hyperhammer/internal/dram"
	"hyperhammer/internal/forensics"
	"hyperhammer/internal/inspect"
	"hyperhammer/internal/kvm"
	"hyperhammer/internal/ledger"
	"hyperhammer/internal/memdef"
	"hyperhammer/internal/metrics"
	"hyperhammer/internal/obs"
	"hyperhammer/internal/trace"
)

// Options control experiment scale and determinism.
type Options struct {
	// Seed drives all randomness.
	Seed uint64
	// Short runs a reduced-scale variant (smaller machines, fewer
	// attempts) for CI; the full scale reproduces the paper's
	// machine sizes.
	Short bool
	// MaxAttempts caps the Table 3 campaigns (0 = scale default).
	MaxAttempts int
	// Parallel is the experiment engine's worker-pool size: how many
	// independent units (hosts) run concurrently. 0 selects GOMAXPROCS.
	// Results are byte-identical at every value — units run against
	// scoped telemetry and are folded in declaration order (see
	// plan.go).
	Parallel int
	// Trace, when non-nil, receives host- and tool-side events from
	// every host the experiments boot. Each scheduled unit records into
	// its own scoped recorder; completed units replay into this one in
	// declaration order, so the merged stream is deterministic for a
	// fixed seed regardless of Parallel.
	Trace *trace.Recorder
	// Metrics, when non-nil, aggregates instrumentation across every
	// booted host into one registry. Each unit meters into its own
	// scoped registry, bound to its host's clock exactly once;
	// completed units' snapshots are absorbed in declaration order, and
	// sim_seconds accumulates across hosts instead of reflecting only
	// the most recent boot.
	Metrics *metrics.Registry
	// Obs, when non-nil, is the live observability plane. Concurrent
	// units never drive its sampler directly (their telemetry is
	// scoped); the engine samples the shared registry once per
	// completed unit, tagging the series points with the unit's name.
	Obs *obs.Plane
	// Inspect, when non-nil, is the hardware introspection plane every
	// booted host feeds: DRAM heatmaps, layout censuses and watchpoint
	// alerts. Units run against scoped inspectors absorbed in
	// declaration order, so its snapshots are byte-identical at every
	// Parallel setting.
	Inspect *inspect.Inspector
	// Forensics, when non-nil, is the flip-provenance plane every booted
	// host and campaign feeds: per-attempt flip lineage, verdicts, frame
	// owners, and outcome taxonomies. Units run against scoped recorders
	// absorbed in declaration order, like Inspect.
	Forensics *forensics.Recorder
	// Ledger, when non-nil, is the determinism-ledger plane every booted
	// host feeds: rolling per-stream fingerprints of RNG draws, DRAM
	// row/flip events, allocator traffic, EPT and guest-mapping
	// mutations, and attack outcomes, sealed into sim-time epochs. Units
	// run against scoped recorders absorbed in declaration order, so the
	// ledger is byte-identical at every Parallel setting.
	Ledger *ledger.Recorder
}

// DefaultOptions returns the full-scale deterministic defaults.
func DefaultOptions() Options { return Options{Seed: 1} }

// System identifies one evaluation setup.
type System int

// The paper's three systems (Section 5).
const (
	// SystemS1 is the Intel Core i3-10100 host with plain KVM.
	SystemS1 System = iota
	// SystemS2 is the Intel Xeon E3-2124 host with plain KVM.
	SystemS2
	// SystemS3 is the S1 hardware running single-node OpenStack.
	SystemS3
)

// String returns the paper's name for the system.
func (s System) String() string {
	switch s {
	case SystemS1:
		return "S1"
	case SystemS2:
		return "S2"
	case SystemS3:
		return "S3"
	default:
		return "S?"
	}
}

// scale bundles the machine dimensions an experiment runs at.
type scale struct {
	geometry    func(System) *dram.Geometry
	fault       func(System, uint64) dram.FaultModelConfig
	hostNoise   func(System) int
	vmSize      uint64
	profileSize uint64
	iovaMaps    int
	targetBits  int
	hostMemBits uint
	bootSplits  int
}

// fullScale is the paper's configuration: 16 GiB hosts, 13 GiB VM,
// 12 GiB profiled, 60,000 exhaustion mappings, 12 target bits.
func fullScale() scale {
	return scale{
		geometry: func(s System) *dram.Geometry {
			if s == SystemS2 {
				return dram.XeonE32124()
			}
			return dram.CoreI310100()
		},
		fault: func(s System, seed uint64) dram.FaultModelConfig {
			if s == SystemS2 {
				return dram.S2FaultModel(seed)
			}
			return dram.S1FaultModel(seed)
		},
		hostNoise: func(s System) int {
			switch s {
			case SystemS2:
				return 34000
			case SystemS3:
				return 12000 // plus the OpenStack workload's noise
			default:
				return 30000
			}
		},
		vmSize:      13 * memdef.GiB,
		profileSize: 12 * memdef.GiB,
		iovaMaps:    60000,
		targetBits:  12,
		hostMemBits: 34,
		bootSplits:  500,
	}
}

// shortScale is a 4 GiB host / 3.5 GiB VM variant with a denser fault
// model so CI runs exercise the same dynamics in seconds.
func shortScale() scale {
	small := func(s System) *dram.Geometry {
		masks := dram.CoreI310100().BankMasks
		if s == SystemS2 {
			masks = dram.XeonE32124().BankMasks
		}
		return dram.MustGeometry(dram.Geometry{
			Name:      "short-4G (" + s.String() + ")",
			Size:      4 * memdef.GiB,
			BankMasks: masks,
			RowShift:  18,
			RowBits:   14,
		})
	}
	return scale{
		geometry: small,
		fault: func(s System, seed uint64) dram.FaultModelConfig {
			cfg := dram.FaultModelConfig{
				Seed: seed, CellsPerRow: 0.02,
				ThresholdMin: 120_000, ThresholdMax: 400_000,
				StableFraction: 0.54, FlakyP: 0.35,
				NeighborWeight1: 1.0, NeighborWeight2: 0.25,
			}
			if s == SystemS2 {
				cfg.CellsPerRow = 0.05
				cfg.StableFraction = 0.1
			}
			return cfg
		},
		hostNoise: func(s System) int {
			if s == SystemS3 {
				return 3000
			}
			return 2000
		},
		vmSize:      3584 * memdef.MiB,
		profileSize: 3 * memdef.GiB,
		iovaMaps:    6000,
		targetBits:  3,
		hostMemBits: 32,
		bootSplits:  150,
	}
}

func (o Options) scale() scale {
	if o.Short {
		return shortScale()
	}
	return fullScale()
}

// newHost boots a host for one system at the chosen scale, attaching
// the OpenStack workload for S3.
func (o Options) newHost(sys System) (*kvm.Host, error) {
	sc := o.scale()
	cfg := kvm.Config{
		Geometry:       sc.geometry(sys),
		Fault:          sc.fault(sys, o.Seed),
		THP:            true,
		NXHugepages:    true,
		BootNoisePages: sc.hostNoise(sys),
		Seed:           o.Seed ^ uint64(sys)<<32,
		Trace:          o.Trace,
		Metrics:        o.Metrics,
		Obs:            o.Obs,
		Inspect:        o.Inspect,
		Forensics:      o.Forensics,
		Ledger:         o.Ledger,
		// Intra-host parallelism rides the same -parallel knob as the
		// experiment engine: the DRAM module shards its batched
		// per-bank pass without perturbing any deterministic stream.
		DRAMShardWorkers: o.Parallel,
	}
	h, err := kvm.NewHost(cfg)
	if err != nil {
		return nil, err
	}
	if sys == SystemS3 {
		if err := attachS3Load(h, o); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// Durations below are shared formatting helpers.
func hours(d time.Duration) float64 { return d.Hours() }
